"""Static planning of Memory Allocation Points (MAPs) — section 3.3.

MAPs are positions between consecutive tasks of a processor's schedule.
Each MAP:

1. **frees** the volatile objects that will not be accessed after the
   current point (their dead points come from the static liveness
   analysis of :mod:`repro.core.liveness`);
2. **allocates** volatile space for the tasks that follow, walking the
   execution chain ``T_1, T_2, ...`` and stopping after ``T_k`` when the
   space for ``T_{k+1}`` cannot be allocated — the next MAP is placed
   right before ``T_{k+1}``;
3. **assembles address packages** for the collaborating processors: for
   every newly allocated volatile object, the object's owner (its
   producer under owner-compute) must learn the local address before it
   can deposit data with an RMA put.

The first MAP is always at the beginning of each processor's schedule.
Because freeing happens eagerly at every MAP, a schedule is executable
exactly when ``capacity >= MIN_MEM`` (Definition 6) — the planner and
:func:`repro.core.liveness.analyze_memory` agree by construction, and the
property tests assert it.

With unconstrained memory the plan has a single MAP per processor, which
models the *original* RAPID strategy ("each processor allocates its
volatile space at once and notifies object addresses") whose cost the
100% columns of Tables 2/3 measure.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..errors import NonExecutableScheduleError
from .liveness import MemoryProfile, analyze_memory
from .schedule import Schedule


@dataclass
class MapPoint:
    """One memory allocation point on one processor."""

    proc: int
    #: The MAP sits immediately before ``orders[proc][position]``; the
    #: initial MAP has position 0.
    position: int
    #: Volatile objects freed here (dead before ``position``).
    frees: list[str] = field(default_factory=list)
    #: Volatile objects allocated here, in first-use order.
    allocs: list[str] = field(default_factory=list)
    #: Owner processor -> volatile objects whose fresh addresses must be
    #: notified to it (it will RMA-put their contents here).
    notifications: dict[int, list[str]] = field(default_factory=dict)
    #: Last task position whose volatiles this MAP allocated (filled in
    #: by the planner; ``None`` on hand-built points).
    covers_through: Optional[int] = None


@dataclass
class MapPlan:
    """MAP positions and actions for a whole schedule under a capacity."""

    schedule: Schedule
    capacity: int
    #: per-processor list of MAPs in execution order
    points: list[list[MapPoint]]
    profile: MemoryProfile

    @property
    def maps_per_proc(self) -> list[int]:
        return [len(pts) for pts in self.points]

    @property
    def avg_maps(self) -> float:
        """Average number of MAPs per processor (the ``#MAPs`` columns of
        Tables 2/3/5).  Processors with no tasks are excluded."""
        counts = [len(pts) for pts, order in zip(self.points, self.schedule.orders) if order]
        return sum(counts) / len(counts) if counts else 0.0

    @property
    def total_allocations(self) -> int:
        return sum(len(m.allocs) for pts in self.points for m in pts)

    @property
    def total_frees(self) -> int:
        return sum(len(m.frees) for pts in self.points for m in pts)

    @property
    def total_packages(self) -> int:
        """Number of address packages sent (one per MAP per destination)."""
        return sum(len(m.notifications) for pts in self.points for m in pts)

    def map_positions(self, proc: int) -> list[int]:
        return [m.position for m in self.points[proc]]

    def allocation_points(self, proc: int) -> dict[str, int]:
        """Object -> index (into ``points[proc]``) of the MAP that first
        allocates it.  Static-analysis metadata; O(plan)."""
        where: dict[str, int] = {}
        for k, mp in enumerate(self.points[proc]):
            for o in mp.allocs:
                where.setdefault(o, k)
        return where

    def packages(self, proc: int) -> list[tuple[int, int, tuple[str, ...]]]:
        """Address packages sent by ``proc``'s MAPs, in plan order:
        ``(map_index, owner_proc, objects)`` triples.  Each package
        occupies the owner's one-slot unbuffered channel from this
        processor until the owner performs its RA (section 3.3)."""
        out: list[tuple[int, int, tuple[str, ...]]] = []
        for k, mp in enumerate(self.points[proc]):
            for owner in sorted(mp.notifications):
                objs = tuple(mp.notifications[owner])
                if objs:
                    out.append((k, owner, objs))
        return out

    def predicted_peaks(self) -> list[int]:
        """Statically predicted per-processor peak memory of *executing*
        this plan: permanent bytes plus the high-water of replaying each
        MAP's frees-then-allocs.

        Because a MAP frees before it allocates and allocations only
        grow the footprint until the next MAP, the running total after
        each MAP's allocations is the exact peak between MAPs.  The
        dynamic execution must observe exactly these peaks — the
        :class:`~repro.obs.instruments.MemoryTimeline` instrument's
        high-water marks are asserted equal in the property tests.  At
        ``capacity == MIN_MEM`` the maximum over processors equals the
        liveness-derived ``MEM_REQ`` peak (Definition 5)."""
        g = self.schedule.graph
        peaks: list[int] = []
        for p, pts in enumerate(self.points):
            used = self.profile.procs[p].perm_bytes
            peak = used
            for mp in pts:
                for o in mp.frees:
                    used -= g.object(o).size
                for o in mp.allocs:
                    used += g.object(o).size
                if used > peak:
                    peak = used
            peaks.append(peak)
        return peaks


def plan_maps(
    schedule: Schedule,
    capacity: int,
    profile: Optional[MemoryProfile] = None,
) -> MapPlan:
    """Compute the MAP plan of ``schedule`` under ``capacity`` memory per
    processor.

    Raises :class:`~repro.errors.NonExecutableScheduleError` when the
    schedule needs more than ``capacity`` on some processor (Definition
    6; the ``inf`` entries of the paper's tables).
    """
    if profile is None:
        profile = analyze_memory(schedule)
    g = schedule.graph
    placement = schedule.placement
    points: list[list[MapPoint]] = []
    for p, order in enumerate(schedule.orders):
        pp = profile.procs[p]
        if pp.min_mem > capacity:
            raise NonExecutableScheduleError(p, pp.min_mem, capacity)
        budget = capacity - pp.perm_bytes  # space available for volatiles
        proc_points: list[MapPoint] = []
        if not order:
            points.append(proc_points)
            continue
        # First use of each volatile object, grouped by position.
        first_at: dict[int, list[str]] = {}
        for o, (f, _l) in pp.span.items():
            first_at.setdefault(f, []).append(o)
        size = {o: g.object(o).size for o in pp.span}
        last = {o: pp.span[o][1] for o in pp.span}

        allocated: set[str] = set()
        used = 0
        i = 0
        n = len(order)
        while i < n:
            mp = MapPoint(proc=p, position=i)
            # 1) free volatiles dead before position i.
            for o in sorted(allocated):
                if last[o] < i:
                    allocated.discard(o)
                    used -= size[o]
                    mp.frees.append(o)
            # 2) allocate forward along the chain until the next task no
            #    longer fits.
            j = i
            while j < n:
                need = [
                    o
                    for o in first_at.get(j, ())
                    if o not in allocated
                ]
                extra = sum(size[o] for o in need)
                if used + extra > budget:
                    break
                for o in need:
                    allocated.add(o)
                    used += size[o]
                    mp.allocs.append(o)
                    owner = placement[o]
                    mp.notifications.setdefault(owner, []).append(o)
                j += 1
            if j == i:
                # Even the next task does not fit — contradicts the
                # MIN_MEM check above; defensive.
                raise NonExecutableScheduleError(p, pp.mem_req[i], capacity)
            mp.covers_through = j - 1
            proc_points.append(mp)
            i = j
        points.append(proc_points)
    return MapPlan(schedule=schedule, capacity=capacity, points=points, profile=profile)


def unconstrained_plan(schedule: Schedule, profile: Optional[MemoryProfile] = None) -> MapPlan:
    """The original-RAPID plan: one MAP per processor allocating all
    volatile space up-front (section 3.1)."""
    if profile is None:
        profile = analyze_memory(schedule)
    return plan_maps(schedule, capacity=max(profile.tot, 1), profile=profile)
