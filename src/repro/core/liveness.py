"""Volatile-object liveness and memory requirements (Definitions 4-6).

Given a static schedule, this module computes for every processor:

* the life span of every volatile object along the processor's task
  order (Definition 4: a volatile object is *alive* at a position if it
  is accessed there, or has been accessed before and will be accessed
  after; otherwise it is *dead/obsolete*);
* ``MEM_REQ(T_w, P_x)`` — permanent space plus alive volatile space at
  each task (Definition 5);
* ``MIN_MEM`` — the minimum capacity under which the schedule is
  executable (Definitions 5-6);
* ``TOT`` — the space needed *without* any recycling (all volatile
  objects held simultaneously), the 100% reference of section 5.1;
* the dead map used by the MAP planner: which volatile objects die right
  after each position.

The dead-point information "can be statically calculated by performing a
data flow analysis on a given DAG with a complexity proportional to the
size of the graph" (section 3.3) — here a single walk over each
processor's order, O(total accesses).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..errors import NonExecutableScheduleError
from .placement import perm_vola_sets
from .schedule import Schedule


@dataclass
class ProcessorMemoryProfile:
    """Memory behaviour of one processor under a schedule."""

    proc: int
    perm_bytes: int
    #: volatile object -> (first position, last position) in the order.
    span: dict[str, tuple[int, int]]
    #: ``mem_req[i]`` = MEM_REQ at the i-th task of the order.
    mem_req: list[int]
    #: position -> volatile objects whose last access is that position
    #: (they may be freed at any later MAP).
    dead_after: dict[int, list[str]]
    #: total volatile bytes (no recycling).
    vola_bytes: int

    @property
    def min_mem(self) -> int:
        """Peak MEM_REQ on this processor."""
        return max(self.mem_req, default=self.perm_bytes)

    @property
    def tot(self) -> int:
        """Space with no recycling: permanent + all volatile objects."""
        return self.perm_bytes + self.vola_bytes

    def first_use(self, obj: str) -> Optional[int]:
        """Position of the first access to a volatile object on this
        processor, or ``None`` when it is never accessed here."""
        s = self.span.get(obj)
        return s[0] if s is not None else None

    def last_use(self, obj: str) -> Optional[int]:
        """Position of the last access to a volatile object on this
        processor, or ``None`` when it is never accessed here."""
        s = self.span.get(obj)
        return s[1] if s is not None else None


@dataclass
class MemoryProfile:
    """Memory behaviour of a whole schedule (all processors)."""

    schedule: Schedule
    procs: list[ProcessorMemoryProfile]

    @property
    def min_mem(self) -> int:
        """Definition 5: ``MIN_MEM = max_P max_T MEM_REQ(T, P)``."""
        return max((p.min_mem for p in self.procs), default=0)

    @property
    def tot(self) -> int:
        """The 100% memory reference of section 5.1 (max over procs of
        permanent + volatile space with no recycling)."""
        return max((p.tot for p in self.procs), default=0)

    @property
    def s1(self) -> int:
        """Sequential space requirement (sum of all object sizes)."""
        return self.schedule.graph.total_data()

    def executable_under(self, capacity: int) -> bool:
        """Definition 6: the schedule runs iff ``capacity >= MIN_MEM``."""
        return capacity >= self.min_mem

    def require_executable(self, capacity: int) -> None:
        for p in self.procs:
            if p.min_mem > capacity:
                raise NonExecutableScheduleError(p.proc, p.min_mem, capacity)

    # -- evaluation metrics (Table 1, Figure 7) -------------------------

    def per_proc_usage(self, recycling: bool = True) -> list[int]:
        """Per-processor space requirement: peak with recycling
        (``MIN_MEM`` style) or total without."""
        return [p.min_mem if recycling else p.tot for p in self.procs]

    def usage_ratio_vs_ideal(self, recycling: bool = False, reduce: str = "mean") -> float:
        """Table 1's metric: per-processor memory usage over ``S1/p``.

        The paper reports the *average* over processors of space used
        (permanent + volatile, no recycling in the original RAPID)
        divided by the lower bound ``S1/p``.
        """
        usage = self.per_proc_usage(recycling)
        ideal = self.s1 / max(1, self.schedule.num_procs)
        if ideal <= 0:
            return 1.0
        vals = [u / ideal for u in usage]
        if reduce == "mean":
            return sum(vals) / len(vals)
        if reduce == "max":
            return max(vals)
        raise ValueError(f"unknown reduce {reduce!r}")

    def memory_scalability(self, recycling: bool = True) -> float:
        """Figure 7's metric: ``S1 / S_p^A`` where ``S_p^A`` is the peak
        per-processor space requirement of the schedule.  Perfect
        scalability equals ``p``."""
        sp = max(self.per_proc_usage(recycling), default=0)
        return self.s1 / sp if sp > 0 else float("inf")


def analyze_memory(schedule: Schedule) -> MemoryProfile:
    """Compute the full memory profile of a schedule.

    Single pass per processor over its task order; positions are indices
    into ``schedule.orders[p]``.
    """
    g = schedule.graph
    placement = schedule.placement
    perm, vola = perm_vola_sets(g, placement, schedule.assignment)
    procs: list[ProcessorMemoryProfile] = []
    for p, order in enumerate(schedule.orders):
        perm_bytes = sum(g.object(o).size for o in perm[p])
        vola_set = vola[p]
        vola_bytes = sum(g.object(o).size for o in vola_set)
        first: dict[str, int] = {}
        last: dict[str, int] = {}
        for i, tname in enumerate(order):
            for o in g.task(tname).accesses:
                if o in vola_set:
                    first.setdefault(o, i)
                    last[o] = i
        span = {o: (first[o], last[o]) for o in first}
        # Sweep: alive volatile bytes per position.
        alloc_at: dict[int, list[str]] = {}
        free_after: dict[int, list[str]] = {}
        for o, (f, l) in span.items():
            alloc_at.setdefault(f, []).append(o)
            free_after.setdefault(l, []).append(o)
        mem_req: list[int] = []
        alive = 0
        for i in range(len(order)):
            for o in alloc_at.get(i, ()):
                alive += g.object(o).size
            mem_req.append(perm_bytes + alive)
            for o in free_after.get(i, ()):
                alive -= g.object(o).size
        procs.append(
            ProcessorMemoryProfile(
                proc=p,
                perm_bytes=perm_bytes,
                span=span,
                mem_req=mem_req,
                dead_after={i: sorted(objs) for i, objs in free_after.items()},
                vola_bytes=vola_bytes,
            )
        )
    return MemoryProfile(schedule, procs)


def min_mem(schedule: Schedule) -> int:
    """Convenience wrapper returning Definition 5's ``MIN_MEM``."""
    return analyze_memory(schedule).min_mem


def mem_req_of_task(profile: MemoryProfile, task: str) -> int:
    """``MEM_REQ(T, P)`` for a single task (Definition 5)."""
    p = profile.schedule.assignment[task]
    i = profile.schedule.orders[p].index(task)
    return profile.procs[p].mem_req[i]
