"""The paper's primary contribution: memory model, memory-efficient
scheduling heuristics (RCP / MPO / DTS) and MAP planning.

Typical flow::

    placement  = cyclic_placement(graph, p)
    assignment = owner_compute_assignment(graph, placement)
    schedule   = mpo_order(graph, placement, assignment)
    profile    = analyze_memory(schedule)
    plan       = plan_maps(schedule, capacity)
"""

from .placement import (
    Placement,
    block_placement,
    cyclic_placement,
    derive_placement,
    owner_compute_assignment,
    perm_vola_sets,
    placement_from_dict,
    validate_owner_compute,
)
from .schedule import CommModel, GanttChart, Schedule, UNIT_COMM, gantt, serial_schedule
from .liveness import (
    MemoryProfile,
    ProcessorMemoryProfile,
    analyze_memory,
    mem_req_of_task,
    min_mem,
)
from .rcp import rcp_order, rcp_priorities
from .mpo import MemoryPriorityPolicy, mpo_order
from .dcg import DCG, build_dcg, slice_volatile_space, task_association
from .dts import dts_order, dts_space_bound, merge_slices
from .maps import MapPlan, MapPoint, plan_maps, unconstrained_plan
from .clustering import colocate_writers, dsc_cluster, dsc_map, lpt_map_clusters
from .depmem import (
    RecordSizes,
    dependence_memory_report,
    distributed_dependence_memory,
    replicated_dependence_memory,
)
from .dynamic import etf_schedule
from .listsched import StaticPolicy, run_list_scheduler
from .treesched import liu_postorder, tree_order
from .viz import gantt_svg, memory_svg

__all__ = [
    "CommModel",
    "DCG",
    "GanttChart",
    "MapPlan",
    "MapPoint",
    "MemoryPriorityPolicy",
    "MemoryProfile",
    "Placement",
    "ProcessorMemoryProfile",
    "RecordSizes",
    "dependence_memory_report",
    "distributed_dependence_memory",
    "replicated_dependence_memory",
    "Schedule",
    "StaticPolicy",
    "UNIT_COMM",
    "analyze_memory",
    "block_placement",
    "build_dcg",
    "colocate_writers",
    "cyclic_placement",
    "derive_placement",
    "dsc_cluster",
    "dsc_map",
    "dts_order",
    "dts_space_bound",
    "etf_schedule",
    "gantt",
    "gantt_svg",
    "liu_postorder",
    "lpt_map_clusters",
    "memory_svg",
    "mem_req_of_task",
    "merge_slices",
    "min_mem",
    "mpo_order",
    "owner_compute_assignment",
    "perm_vola_sets",
    "placement_from_dict",
    "plan_maps",
    "rcp_order",
    "rcp_priorities",
    "run_list_scheduler",
    "serial_schedule",
    "slice_volatile_space",
    "task_association",
    "tree_order",
    "unconstrained_plan",
    "validate_owner_compute",
]
