"""Data placement (ownership) and the owner-compute rule.

Definition 1 of the paper: a static schedule assigns every data object a
unique *owner* processor.  Definition 3 splits the objects a processor
accesses, ``DO(P)``, into **permanent** objects (owned, allocated for the
whole computation) and **volatile** objects (non-owned, candidates for
active memory management).

The owner-compute rule ("all the tasks that modify the same object are
assigned to the same cluster", section 4) turns a placement into a task
assignment; conversely a task assignment produced by a general clustering
algorithm (DSC) induces a placement.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping, Sequence

from ..errors import PlacementError
from ..graph.taskgraph import TaskGraph


@dataclass(frozen=True)
class Placement:
    """Immutable object -> owner-processor map."""

    num_procs: int
    owner: Mapping[str, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.num_procs <= 0:
            raise PlacementError(f"num_procs must be positive, got {self.num_procs}")
        bad = {o: p for o, p in self.owner.items() if not (0 <= p < self.num_procs)}
        if bad:
            raise PlacementError(f"owners out of range [0, {self.num_procs}): {bad}")

    def __getitem__(self, obj: str) -> int:
        try:
            return self.owner[obj]
        except KeyError:
            raise PlacementError(f"object {obj!r} has no owner") from None

    def __contains__(self, obj: str) -> bool:
        return obj in self.owner

    def owned_by(self, proc: int) -> list[str]:
        """Objects owned by ``proc`` (sorted for determinism)."""
        return sorted(o for o, p in self.owner.items() if p == proc)


def cyclic_placement(graph: TaskGraph, num_procs: int, order: Sequence[str] | None = None) -> Placement:
    """Assign objects to processors round-robin.

    With ``order`` left as ``None`` objects are taken in name-sorted
    order; the paper's worked example uses ``owner(d_i) = (i-1) mod p``,
    reproduced by passing the objects in index order.
    """
    names = list(order) if order is not None else sorted(o.name for o in graph.objects())
    return Placement(num_procs, {o: i % num_procs for i, o in enumerate(names)})


def block_placement(graph: TaskGraph, num_procs: int, order: Sequence[str] | None = None) -> Placement:
    """Assign contiguous chunks of the object list to processors."""
    names = list(order) if order is not None else sorted(o.name for o in graph.objects())
    n = len(names)
    if n == 0:
        return Placement(num_procs, {})
    per = -(-n // num_procs)  # ceil
    return Placement(num_procs, {o: min(i // per, num_procs - 1) for i, o in enumerate(names)})


def placement_from_dict(num_procs: int, owner: Mapping[str, int]) -> Placement:
    """Wrap an explicit owner map (used by the sparse 2-D/1-D mappings)."""
    return Placement(num_procs, dict(owner))


# ----------------------------------------------------------------------
# owner-compute task assignment
# ----------------------------------------------------------------------


def owner_compute_assignment(graph: TaskGraph, placement: Placement) -> dict[str, int]:
    """Assign every task to the owner of the object(s) it writes.

    Read-only tasks go to the owner of their first read object (they
    produce nothing, so any placement is legal; co-locating with an input
    avoids a message).  Raises :class:`~repro.errors.PlacementError` if a
    task writes objects owned by different processors — such a task graph
    cannot follow the owner-compute rule under this placement.
    """
    assignment: dict[str, int] = {}
    for t in graph.tasks():
        if t.writes:
            owners = {placement[o] for o in t.writes}
            if len(owners) > 1:
                raise PlacementError(
                    f"task {t.name!r} writes objects owned by processors "
                    f"{sorted(owners)}; owner-compute requires a single owner"
                )
            assignment[t.name] = owners.pop()
        elif t.reads:
            assignment[t.name] = placement[t.reads[0]]
        else:
            assignment[t.name] = 0
    return assignment


def derive_placement(graph: TaskGraph, assignment: Mapping[str, int], num_procs: int) -> Placement:
    """Induce a placement from a task assignment.

    The owner of an object is the processor running its writers; all
    writers must be co-located (general clusterings are post-processed by
    :func:`repro.core.clustering.colocate_writers` to guarantee this).
    Objects that are never written are owned by their first reader's
    processor.
    """
    owner: dict[str, int] = {}
    for t in graph.tasks():
        p = assignment[t.name]
        for o in t.writes:
            prev = owner.get(o)
            if prev is None:
                owner[o] = p
            elif prev != p:
                raise PlacementError(
                    f"object {o!r} is written on processors {prev} and {p}; "
                    "cannot derive a unique owner"
                )
    for t in graph.tasks():
        for o in t.reads:
            owner.setdefault(o, assignment[t.name])
    for o in graph.objects():
        owner.setdefault(o.name, 0)
    return Placement(num_procs, owner)


def validate_owner_compute(
    graph: TaskGraph, placement: Placement, assignment: Mapping[str, int]
) -> None:
    """Raise unless every writer of every object runs on the owner."""
    for t in graph.tasks():
        for o in t.writes:
            if assignment[t.name] != placement[o]:
                raise PlacementError(
                    f"task {t.name!r} writes {o!r} on processor "
                    f"{assignment[t.name]} but the owner is {placement[o]}"
                )


# ----------------------------------------------------------------------
# permanent / volatile object sets (Definition 3)
# ----------------------------------------------------------------------


def accessed_objects(graph: TaskGraph, tasks: Iterable[str]) -> set[str]:
    """``DO``: the set of objects accessed by the given tasks."""
    out: set[str] = set()
    for name in tasks:
        out.update(graph.task(name).accesses)
    return out


def perm_vola_sets(
    graph: TaskGraph,
    placement: Placement,
    assignment: Mapping[str, int],
) -> tuple[list[set[str]], list[set[str]]]:
    """``(PERM(P), VOLA(P))`` for every processor (Definition 3)."""
    p = placement.num_procs
    do: list[set[str]] = [set() for _ in range(p)]
    for t in graph.tasks():
        do[assignment[t.name]].update(t.accesses)
    perm = [set() for _ in range(p)]
    vola = [set() for _ in range(p)]
    for proc in range(p):
        for o in do[proc]:
            (perm if placement[o] == proc else vola)[proc].add(o)
    return perm, vola
