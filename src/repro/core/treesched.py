"""Tree-specialised postorder ordering for elimination-tree graphs.

Elimination trees (and the column-level task graphs they induce) admit
much stronger ordering heuristics than general DAGs: a *postorder*
traversal keeps every processor working on one subtree at a time, so a
subtree's volatile objects die before the next subtree allocates.  The
child-ordering rule is Liu's classic minimum-memory traversal (visit
children in decreasing ``peak - net``), the same rule behind the
tree-scheduling results of Marchal, Sinnen & Vivien (2012).

The heuristic is defined on arbitrary DAGs: the "children" of a task are
its predecessors, the recursion treats every task once (shared
predecessors make the peak estimate approximate, which only affects tie
breaking), and the resulting global order is a topological order, so its
per-processor projection is always a valid schedule.  Two candidate
traversals are evaluated against the exact memory model
(:func:`~repro.core.liveness.analyze_memory`) and the macro-dataflow
timing model (:func:`~repro.core.schedule.gantt`), and the better one —
smaller peak first, then smaller makespan — is returned.
"""

from __future__ import annotations

from typing import Mapping, Optional

from ..graph.taskgraph import TaskGraph
from .liveness import analyze_memory
from .placement import Placement
from .schedule import CommModel, Schedule, UNIT_COMM, gantt


def liu_postorder(
    graph: TaskGraph,
    placement: Placement,
    assignment: Mapping[str, int],
) -> list[str]:
    """Global memory-guided postorder of ``graph`` (children = preds).

    For each task the traversal estimates ``net`` (volatile bytes its
    output keeps alive) and ``peak`` (volatile bytes the subtree rooted
    at it needs), then visits children in decreasing ``peak - net`` —
    Liu's rule: run the hungriest subtree while the least residue from
    siblings is held.  The returned list is a topological order.
    """
    names = graph.task_names
    index = {t: i for i, t in enumerate(names)}
    net: dict[str, int] = {}
    peak: dict[str, int] = {}
    kids: dict[str, list[str]] = {}

    for t in graph.topological_order():
        task = graph.task(t)
        p = assignment[t]
        out_b = sum(
            graph.object(o).size for o in task.writes if placement[o] != p
        )
        acc_b = sum(
            graph.object(o).size for o in task.accesses if placement[o] != p
        )
        children = sorted(
            graph.predecessors(t),
            key=lambda c: (net[c] - peak[c], index[c]),
        )
        kids[t] = children
        run = 0
        pk = acc_b + sum(net[c] for c in children)
        for c in children:
            pk = max(pk, run + peak[c])
            run += net[c]
        net[t] = out_b
        peak[t] = pk

    roots = sorted(
        (t for t in names if not graph.successors(t)),
        key=lambda t: (net[t] - peak[t], index[t]),
    )
    order: list[str] = []
    seen: set[str] = set()
    for root in roots:
        if root in seen:
            continue
        stack: list[tuple[str, int]] = [(root, 0)]
        seen.add(root)
        while stack:
            node, i = stack[-1]
            cs = kids[node]
            while i < len(cs) and cs[i] in seen:
                i += 1
            if i < len(cs):
                stack[-1] = (node, i + 1)
                child = cs[i]
                seen.add(child)
                stack.append((child, 0))
            else:
                stack.pop()
                order.append(node)
    return order


def _project(
    graph: TaskGraph,
    placement: Placement,
    assignment: Mapping[str, int],
    order: list[str],
    meta: dict,
) -> Schedule:
    """Per-processor projection of a global topological order."""
    orders: list[list[str]] = [[] for _ in range(placement.num_procs)]
    for t in order:
        orders[assignment[t]].append(t)
    sched = Schedule(
        graph=graph,
        placement=placement,
        assignment=dict(assignment),
        orders=orders,
        meta=meta,
    )
    sched.validate()
    return sched


def tree_order(
    graph: TaskGraph,
    placement: Placement,
    assignment: Mapping[str, int],
    comm: CommModel = UNIT_COMM,
    meta: Optional[dict] = None,
) -> Schedule:
    """Tree-specialised postorder schedule (Liu child ordering).

    Evaluates the memory-guided postorder and the program-order
    traversal against the exact memory and timing models, returning the
    candidate with the smaller peak (ties: smaller makespan).  The
    winning traversal is recorded in ``meta["tree_variant"]``.
    """
    candidates = (
        ("liu-postorder", liu_postorder(graph, placement, assignment)),
        ("program-order", graph.topological_order()),
    )
    best: Optional[tuple[tuple, str, Schedule]] = None
    for variant, order in candidates:
        m = dict(meta or {})
        m.update({"heuristic": "TREE", "tree_variant": variant})
        sched = _project(graph, placement, assignment, order, m)
        key = (analyze_memory(sched).min_mem, gantt(sched, comm).makespan)
        if best is None or key < best[0]:
            best = (key, variant, sched)
    assert best is not None
    return best[2]
