"""RCP — Ready Critical Path ordering (the time-efficient baseline).

The paper's baseline ordering (section 4, citing Yang & Gerasoulis [20])
"executes tasks in the order of importance based on the critical path
information": at each scheduling cycle the processor with the earliest
idle time schedules its ready task with the longest path to an exit task,
*including communication delays on cross-processor edges* (see the
worked example: the path ``T[7,8], T[8], T[8,9]`` has length 4 because
one unit of communication delay is counted).

RCP is time efficient but not memory scalable (Figure 7): it freely
interleaves work on many volatile objects, stretching their lifetimes.
"""

from __future__ import annotations

from typing import Mapping, Optional

from ..graph.analysis import b_levels, mapped_edge_cost, size_edge_cost
from ..graph.taskgraph import TaskGraph
from .listsched import StaticPolicy, run_list_scheduler
from .placement import Placement
from .schedule import CommModel, Schedule, UNIT_COMM


def rcp_priorities(
    graph: TaskGraph,
    assignment: Mapping[str, int],
    comm: CommModel = UNIT_COMM,
) -> dict[str, float]:
    """Mapping-aware critical-path (bottom-level) priority of each task."""
    base = size_edge_cost(graph, comm.latency, comm.byte_time)
    return b_levels(graph, mapped_edge_cost(assignment, base))


def rcp_order(
    graph: TaskGraph,
    placement: Placement,
    assignment: Mapping[str, int],
    comm: CommModel = UNIT_COMM,
    meta: Optional[dict] = None,
) -> Schedule:
    """Order tasks on each processor by ready-critical-path priority."""
    prio = rcp_priorities(graph, assignment, comm)
    info = {"heuristic": "RCP"}
    info.update(meta or {})
    return run_list_scheduler(
        graph,
        placement,
        assignment,
        StaticPolicy(prio),
        comm=comm,
        meta=info,
    )
