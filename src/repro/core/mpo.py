"""MPO — Memory-Priority guided Ordering (section 4.1, Figure 4).

MPO simulates an execution following the task dependencies.  At each
cycle the processor with the earliest idle time schedules the ready task
with the highest *memory priority*: the fraction of the task's data
objects whose space is already available on the processor — permanent
objects count as always available, volatile objects count once some
scheduled task of the processor touched them ("when a task is chosen to
be scheduled, all volatile objects this task needs are allocated").
Ties break on the critical-path (bottom-level) priority.

The goal is to reference volatile objects as early as possible after
their allocation, shortening lifetimes and reducing ``MIN_MEM``
(compare Figures 2(b) and 2(c)): in the worked example, at time 6 on
``P1``, ``T[3,10]`` (memory priority 1: ``d3`` allocated, ``d10``
permanent) is preferred over the longer-path ``T[7,8]`` (priority 0.5:
``d7`` not yet allocated).

The implementation keeps the update cost low, as the paper requires
(line (5) of Figure 4 refreshes only children and siblings): when a task
is scheduled, only the tasks of the same processor that access a newly
allocated volatile object get their priority refreshed — each
(task, object) pair is touched at most once overall, so the bookkeeping
is ``O(total accesses)`` on top of the heap operations.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Optional

from ..graph.taskgraph import TaskGraph
from .listsched import run_list_scheduler
from .placement import Placement
from .rcp import rcp_priorities
from .schedule import CommModel, Schedule, UNIT_COMM


class MemoryPriorityPolicy:
    """Dynamic (memory ratio, critical path) priority for MPO."""

    def __init__(
        self,
        graph: TaskGraph,
        placement: Placement,
        assignment: Mapping[str, int],
        cp: Mapping[str, float],
    ):
        self._graph = graph
        self._placement = placement
        self._assignment = assignment
        self._cp = cp
        # Per-task denominator and (mutable) numerator of the memory ratio.
        self._need: dict[str, int] = {}
        self._have: dict[str, int] = {}
        # (proc, volatile object) -> tasks of that processor accessing it.
        self._watchers: dict[tuple[int, str], list[str]] = {}
        # Volatile objects already allocated, per processor.
        self._allocated: list[set[str]] = [set() for _ in range(placement.num_procs)]
        for t in graph.tasks():
            p = assignment[t.name]
            have = 0
            for o in t.accesses:
                if placement[o] == p:
                    have += 1  # permanent: always available
                else:
                    self._watchers.setdefault((p, o), []).append(t.name)
            self._need[t.name] = max(len(t.accesses), 1)
            self._have[t.name] = have

    def priority(self, task: str) -> tuple:
        return (self._have[task] / self._need[task], self._cp[task])

    def memory_priority(self, task: str) -> float:
        """The paper's memory-priority ratio for one task."""
        return self._have[task] / self._need[task]

    def on_scheduled(self, task: str, proc: int) -> Iterable[str]:
        changed: list[str] = []
        alloc = self._allocated[proc]
        for o in self._graph.task(task).accesses:
            if self._placement[o] != proc and o not in alloc:
                alloc.add(o)
                for u in self._watchers.get((proc, o), ()):
                    if u != task:
                        self._have[u] += 1
                        changed.append(u)
        return changed


def mpo_order(
    graph: TaskGraph,
    placement: Placement,
    assignment: Mapping[str, int],
    comm: CommModel = UNIT_COMM,
    meta: Optional[dict] = None,
) -> Schedule:
    """Order tasks on each processor with the MPO heuristic (Figure 4)."""
    cp = rcp_priorities(graph, assignment, comm)
    policy = MemoryPriorityPolicy(graph, placement, assignment, cp)
    info = {"heuristic": "MPO"}
    info.update(meta or {})
    return run_list_scheduler(
        graph,
        placement,
        assignment,
        policy,
        comm=comm,
        meta=info,
    )
