"""Stage-1 mapping: task clustering and cluster -> processor mapping.

The paper's two-stage mapping (section 4) first groups tasks into
clusters to exploit data locality — either with the **owner-compute
rule** (all tasks modifying the same object form one cluster; used by
the sparse experiments) or with **DSC** (Dominant Sequence Clustering,
Yang & Gerasoulis [21]) for general DAGs — and then maps clusters to
physical processors with a load-balancing criterion.

The DSC variant implemented here is the standard greedy edge-zeroing
walk: tasks are examined in topological order; a task joins the
predecessor cluster that minimises its start time (edges internal to a
cluster cost zero, the cluster executes sequentially), or starts its own
cluster when no merge helps.  This preserves DSC's defining property —
never increasing the dominant-sequence length estimate — without the
full incremental machinery, which the paper itself does not rely on
(its experiments cluster by owner-compute).

Cluster mapping uses LPT (longest processing time first) bin packing
onto ``p`` processors, the "load balancing criterion" of section 4.
After a general clustering, :func:`colocate_writers` merges clusters so
that every object keeps all its writers in one cluster, re-establishing
the owner-compute invariant required by the memory model.
"""

from __future__ import annotations

import heapq
from typing import Sequence

from ..graph.analysis import size_edge_cost
from ..graph.taskgraph import TaskGraph
from .placement import Placement, derive_placement
from .schedule import CommModel, UNIT_COMM


class _UnionFind:
    def __init__(self, n: int):
        self.parent = list(range(n))

    def find(self, x: int) -> int:
        while self.parent[x] != x:
            self.parent[x] = self.parent[self.parent[x]]
            x = self.parent[x]
        return x

    def union(self, a: int, b: int) -> int:
        ra, rb = self.find(a), self.find(b)
        if ra != rb:
            self.parent[rb] = ra
        return ra


def dsc_cluster(graph: TaskGraph, comm: CommModel = UNIT_COMM) -> list[int]:
    """Greedy DSC-style clustering.

    Returns ``cluster_id`` per task (dense ids, order of creation).
    Tasks are walked in topological order; each either joins the cluster
    of one of its predecessors (the one minimising its start time, with
    intra-cluster edges free) or opens a new cluster.
    """
    cost = size_edge_cost(graph, comm.latency, comm.byte_time)
    cluster_of: dict[str, int] = {}
    cluster_ready: list[float] = []  # finish time of the cluster's last task
    finish: dict[str, float] = {}

    for t in graph.topological_order():
        w = graph.task(t).weight
        preds = list(graph.predecessors(t))
        # Start time if placed in a fresh cluster: all messages paid.
        best_start = max(
            (finish[p] + cost(p, t, graph.edge_objects(p, t)) for p in preds),
            default=0.0,
        )
        best_cluster = -1
        for p in preds:
            c = cluster_of[p]
            # Appending to cluster c: its edge becomes free, the cluster
            # is busy until cluster_ready[c]; other messages still paid.
            start = cluster_ready[c]
            for q in preds:
                arr = finish[q]
                if cluster_of[q] != c:
                    arr += cost(q, t, graph.edge_objects(q, t))
                start = max(start, arr)
            if start < best_start:
                best_start = start
                best_cluster = c
        if best_cluster < 0:
            best_cluster = len(cluster_ready)
            cluster_ready.append(0.0)
        cluster_of[t] = best_cluster
        finish[t] = best_start + w
        cluster_ready[best_cluster] = finish[t]

    # Densify ids in task order.
    remap: dict[int, int] = {}
    out: list[int] = []
    for t in graph.task_names:
        c = cluster_of[t]
        if c not in remap:
            remap[c] = len(remap)
        out.append(remap[c])
    return out


def colocate_writers(graph: TaskGraph, clusters: Sequence[int]) -> list[int]:
    """Merge clusters so all writers of each object share one cluster
    (the owner-compute invariant)."""
    n = max(clusters, default=-1) + 1
    uf = _UnionFind(n)
    first_writer_cluster: dict[str, int] = {}
    idx = {t: i for i, t in enumerate(graph.task_names)}
    for t in graph.tasks():
        c = clusters[idx[t.name]]
        for o in t.writes:
            prev = first_writer_cluster.get(o)
            if prev is None:
                first_writer_cluster[o] = c
            else:
                uf.union(prev, c)
    remap: dict[int, int] = {}
    out: list[int] = []
    for i, _t in enumerate(graph.task_names):
        r = uf.find(clusters[i])
        if r not in remap:
            remap[r] = len(remap)
        out.append(remap[r])
    return out


def lpt_map_clusters(
    graph: TaskGraph, clusters: Sequence[int], num_procs: int
) -> dict[str, int]:
    """Map clusters to processors, heaviest cluster first onto the least
    loaded processor (LPT load balancing).  Returns task -> processor."""
    idx = {t: i for i, t in enumerate(graph.task_names)}
    nclusters = max(clusters, default=-1) + 1
    work = [0.0] * nclusters
    for t in graph.tasks():
        work[clusters[idx[t.name]]] += t.weight
    heap = [(0.0, p) for p in range(num_procs)]
    heapq.heapify(heap)
    proc_of_cluster = [0] * nclusters
    for c in sorted(range(nclusters), key=lambda c: -work[c]):
        load, p = heapq.heappop(heap)
        proc_of_cluster[c] = p
        heapq.heappush(heap, (load + work[c], p))
    return {t: proc_of_cluster[clusters[idx[t]]] for t in graph.task_names}


def dsc_map(
    graph: TaskGraph,
    num_procs: int,
    comm: CommModel = UNIT_COMM,
) -> tuple[dict[str, int], Placement]:
    """Full stage-1 pipeline for general DAGs: DSC clustering, writer
    co-location, LPT mapping, induced placement."""
    clusters = colocate_writers(graph, dsc_cluster(graph, comm))
    assignment = lpt_map_clusters(graph, clusters, num_procs)
    placement = derive_placement(graph, assignment, num_procs)
    return assignment, placement
