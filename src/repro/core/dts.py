"""DTS — Data-access directed Time Slicing (section 4.2).

DTS is the aggressive memory-saving ordering: it slices the computation
via the DCG (see :mod:`repro.core.dcg`) so that all tasks within a slice
access a small group of volatile objects, then schedules slice by slice.
Within a slice, ready tasks are ordered by critical-path priority; a
ready task of a later slice is *not* scheduled while its processor still
has unscheduled tasks of earlier slices (the slice gate of the list
scheduler).

Theorem 2: a DTS schedule with slices ``L_1..L_k`` and assignment ``R``
is executable under ``S1/p + h`` per-processor space, where
``h = max_i H(R, L_i)`` — because once a slice's tasks have run, all its
volatile objects are dead (any later user would have placed the task in
this slice).  :func:`dts_space_bound` exposes the bound, and the test
suite asserts it against :func:`repro.core.liveness.analyze_memory`.

When the available memory is known, consecutive slices are merged while
their combined volatile requirement fits (Figure 6), giving the
scheduler more critical-path freedom — the "DTS with slice merging"
variant of Table 7.
"""

from __future__ import annotations

from typing import Mapping, Optional

from ..errors import SchedulingError
from ..graph.taskgraph import TaskGraph
from .dcg import DCG, build_dcg, slice_volatile_space
from .listsched import StaticPolicy, run_list_scheduler
from .placement import Placement, perm_vola_sets
from .rcp import rcp_priorities
from .schedule import CommModel, Schedule, UNIT_COMM


def merge_slices(h_values: list[int], avail_volatile: int) -> list[int]:
    """Figure 6: greedily merge consecutive slices while the *sum* of
    their volatile requirements fits in ``avail_volatile``.

    Returns ``new_index[i]`` — the merged slice of original slice ``i``.
    The sum is a safe over-estimate of the merged slice's requirement.

    Raises :class:`~repro.errors.SchedulingError` when the budget is not
    positive or a single slice already needs more than the budget —
    merging such an input would silently produce a slicing whose
    schedule can never execute under the capacity, and the failure would
    only surface much later as a confusing planner/simulator error.
    """
    if not h_values:
        return []
    if avail_volatile <= 0:
        raise SchedulingError(
            "slice merging needs a positive volatile budget "
            f"(got {avail_volatile}; the permanent footprint already "
            "exhausts the capacity)"
        )
    for i, h in enumerate(h_values):
        if h > avail_volatile:
            raise SchedulingError(
                f"slice {i} needs {h} volatile bytes but only "
                f"{avail_volatile} are available; no merging can make "
                "this schedule executable"
            )
    new_index = [0] * len(h_values)
    space_req = h_values[0]
    k = 0
    for i in range(1, len(h_values)):
        if space_req + h_values[i] <= avail_volatile:
            space_req += h_values[i]
        else:
            k += 1
            space_req = h_values[i]
        new_index[i] = k
    return new_index


def dts_order(
    graph: TaskGraph,
    placement: Placement,
    assignment: Mapping[str, int],
    comm: CommModel = UNIT_COMM,
    avail_mem: Optional[int] = None,
    meta: Optional[dict] = None,
    dcg: Optional[DCG] = None,
) -> Schedule:
    """Order tasks slice-by-slice (DTS).

    Parameters
    ----------
    avail_mem:
        Per-processor memory capacity.  When given, consecutive slices
        are merged while they jointly fit (Figure 6) — pass ``None`` for
        plain DTS.
    dcg:
        Optionally reuse a precomputed DCG.
    """
    if dcg is None:
        dcg = build_dcg(graph)
    if dcg.graph is not graph:
        raise SchedulingError("DCG was built from a different graph")
    slice_of = dcg.slice_of()
    h_values = slice_volatile_space(dcg, placement, assignment)
    h = max(h_values, default=0)

    merged = False
    if avail_mem is not None:
        # Volatile budget: capacity minus the largest permanent footprint.
        perm, _vola = perm_vola_sets(graph, placement, assignment)
        perm_bytes = max(
            (sum(graph.object(o).size for o in s) for s in perm), default=0
        )
        budget = avail_mem - perm_bytes
        try:
            new_index = merge_slices(h_values, budget)
        except SchedulingError:
            # Over-budget slice (or no volatile budget at all): merging
            # cannot help, so fall back to plain DTS — the most
            # memory-frugal ordering; downstream MIN_MEM checks decide
            # executability.
            pass
        else:
            slice_of = {t: new_index[s] for t, s in slice_of.items()}
            merged = True

    cp = rcp_priorities(graph, assignment, comm)
    info = {
        "heuristic": "DTS+merge" if merged else "DTS",
        "num_slices": len(set(slice_of.values())) if slice_of else 0,
        "dts_h": h,
        "dcg_acyclic": dcg.is_acyclic(),
    }
    info.update(meta or {})
    return run_list_scheduler(
        graph,
        placement,
        assignment,
        StaticPolicy(cp),
        comm=comm,
        levels=slice_of,
        meta=info,
    )


def dts_space_bound(
    graph: TaskGraph,
    placement: Placement,
    assignment: Mapping[str, int],
    dcg: Optional[DCG] = None,
) -> int:
    """Theorem 2's per-processor space bound for a DTS schedule:
    ``max_P perm_bytes(P) + max_i H(R, L_i)``.

    (The theorem states ``S1/p + h`` under the assumption that the
    assignment distributes permanent space evenly; this function uses the
    actual permanent footprint, which is the tight form.)
    """
    if dcg is None:
        dcg = build_dcg(graph)
    perm, _ = perm_vola_sets(graph, placement, assignment)
    perm_bytes = max((sum(graph.object(o).size for o in s) for s in perm), default=0)
    h = max(slice_volatile_space(dcg, placement, assignment), default=0)
    return perm_bytes + h
