"""Dynamic (greedy, runtime-style) scheduling baseline.

The paper's related work (section 1) contrasts its *static* approach
with dynamic schedulers: Blelloch et al.'s provably space-efficient
scheme (``S1/p + O(D)`` under a shared pool) and Cilk's work stealing
(``O(S1)`` per processor).  "In practice it is difficult to minimize the
run-time control overhead of dynamic scheduling in parallelizing sparse
code with mixed granularities."

This module implements an ETF-style greedy scheduler — the idealised
behaviour of a dynamic runtime: every ready task is placed on the
processor where it can *start earliest*, with zero control overhead (so
it is an upper bound on dynamic-runtime time efficiency).  The only
constraint retained is writer co-location (all writers of an object on
one processor), without which the distributed memory model has no
owner.  Comparing its memory profile against RCP/MPO/DTS reproduces the
related-work argument: time-greedy placement is memory-oblivious.
"""

from __future__ import annotations

from ..graph.taskgraph import TaskGraph
from .placement import derive_placement
from .schedule import CommModel, Schedule, UNIT_COMM


def etf_schedule(
    graph: TaskGraph,
    num_procs: int,
    comm: CommModel = UNIT_COMM,
) -> Schedule:
    """Earliest-task-first greedy schedule on ``num_procs`` processors.

    At every step, among all (ready task, processor) pairs the one with
    the earliest feasible start time runs (ties: larger task first).
    Writers of an object are pinned to the first writer's processor.
    Returns a :class:`~repro.core.schedule.Schedule` with the placement
    derived from the resulting assignment.
    """
    remaining = {t: graph.in_degree(t) for t in graph.task_names}
    finish: dict[str, float] = {}
    assignment: dict[str, int] = {}
    idle = [0.0] * num_procs
    orders: list[list[str]] = [[] for _ in range(num_procs)]
    pinned: dict[str, int] = {}  # object -> processor of its writers

    ready = [t for t in graph.task_names if remaining[t] == 0]
    scheduled = 0
    total = graph.num_tasks
    while scheduled < total:
        best = None  # (est, -weight, task, proc)
        for t in ready:
            task = graph.task(t)
            pin = None
            for o in task.writes:
                q = pinned.get(o)
                if q is not None:
                    pin = q
                    break
            procs = (pin,) if pin is not None else range(num_procs)
            for p in procs:
                est = idle[p]
                for pred in graph.predecessors(t):
                    arr = finish[pred]
                    if assignment[pred] != p:
                        objs = graph.edge_objects(pred, t)
                        nbytes = sum(graph.object(o).size for o in objs)
                        arr += comm.cost(nbytes) if objs else comm.latency
                    est = max(est, arr)
                cand = (est, -task.weight, t, p)
                if best is None or cand < best:
                    best = cand
        est, _negw, t, p = best
        task = graph.task(t)
        assignment[t] = p
        finish[t] = est + task.weight
        idle[p] = finish[t]
        orders[p].append(t)
        for o in task.writes:
            pinned.setdefault(o, p)
        ready.remove(t)
        scheduled += 1
        for s in graph.successors(t):
            remaining[s] -= 1
            if remaining[s] == 0:
                ready.append(s)

    placement = derive_placement(graph, assignment, num_procs)
    sched = Schedule(
        graph=graph,
        placement=placement,
        assignment=assignment,
        orders=orders,
        meta={"heuristic": "ETF-dynamic"},
    )
    sched.validate()
    return sched
