"""Dependency-free SVG rendering of schedules and memory profiles.

Produces standalone SVG documents (no matplotlib) for:

* :func:`gantt_svg` — the classic Gantt chart of a schedule (Figure 2
  style): one lane per processor, one rectangle per task, colored by
  task family (the prefix before ``(`` or ``[``);
* :func:`memory_svg` — the ``MEM_REQ`` step curves of a memory profile
  (one polyline per processor) with optional capacity and ``MIN_MEM``
  rules — the picture behind Definitions 4-6;
* :func:`stacked_bars_svg` / :func:`step_curves_svg` — generic building
  blocks (horizontal 100%-stacked bars, step-function time series) used
  by the telemetry report of :mod:`repro.obs.report`.

All return the SVG text and optionally write it to a file.
"""

from __future__ import annotations

import html
from typing import Optional

from .liveness import MemoryProfile
from .schedule import GanttChart

_PALETTE = (
    "#4e79a7", "#f28e2b", "#e15759", "#76b7b2", "#59a14f",
    "#edc948", "#b07aa1", "#ff9da7", "#9c755f", "#bab0ac",
)


def _family(task: str) -> str:
    for sep in ("(", "[", "@"):
        if sep in task:
            return task.split(sep, 1)[0]
    return task


def _color(key: str) -> str:
    return _PALETTE[hash(key) % len(_PALETTE)]


def _document(body: list[str], width: int, height: int) -> str:
    head = (
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
        f'height="{height}" viewBox="0 0 {width} {height}" '
        'font-family="monospace" font-size="11">'
    )
    return "\n".join([head, *body, "</svg>"])


def gantt_svg(
    chart: GanttChart,
    path: Optional[str] = None,
    width: int = 960,
    lane_height: int = 28,
    label_tasks: bool = False,
) -> str:
    """Render a Gantt chart as SVG; returns the document text."""
    sched = chart.schedule
    p = sched.num_procs
    ms = chart.makespan or 1.0
    margin_l, margin_t = 48, 24
    plot_w = width - margin_l - 12
    height = margin_t + p * lane_height + 30
    scale = plot_w / ms

    body: list[str] = [
        f'<text x="{margin_l}" y="14">Gantt: PT = {ms:g} '
        f'({sched.meta.get("heuristic", "?")})</text>'
    ]
    for q in range(p):
        y = margin_t + q * lane_height
        body.append(
            f'<text x="4" y="{y + lane_height * 0.65:.0f}">P{q}</text>'
        )
        body.append(
            f'<line x1="{margin_l}" y1="{y + lane_height - 2}" '
            f'x2="{margin_l + plot_w}" y2="{y + lane_height - 2}" '
            'stroke="#ddd"/>'
        )
        for t in sched.orders[q]:
            x = margin_l + chart.start[t] * scale
            w = max((chart.finish[t] - chart.start[t]) * scale, 0.5)
            title = html.escape(
                f"{t}: [{chart.start[t]:g}, {chart.finish[t]:g}]"
            )
            body.append(
                f'<rect x="{x:.2f}" y="{y + 2}" width="{w:.2f}" '
                f'height="{lane_height - 6}" fill="{_color(_family(t))}" '
                f'stroke="#333" stroke-width="0.4"><title>{title}</title></rect>'
            )
            if label_tasks and w > 40:
                body.append(
                    f'<text x="{x + 2:.2f}" y="{y + lane_height * 0.65:.0f}" '
                    f'font-size="9">{html.escape(t)}</text>'
                )
    # time axis
    axis_y = margin_t + p * lane_height + 14
    body.append(
        f'<line x1="{margin_l}" y1="{axis_y - 10}" '
        f'x2="{margin_l + plot_w}" y2="{axis_y - 10}" stroke="#333"/>'
    )
    for i in range(5):
        tx = ms * i / 4
        x = margin_l + tx * scale
        body.append(f'<text x="{x:.0f}" y="{axis_y}">{tx:g}</text>')
    doc = _document(body, width, height)
    if path:
        with open(path, "w") as fh:
            fh.write(doc)
    return doc


def stacked_bars_svg(
    rows: list[tuple[str, dict[str, float]]],
    colors: Optional[dict[str, str]] = None,
    path: Optional[str] = None,
    width: int = 960,
    bar_height: int = 22,
    title: str = "",
) -> str:
    """Horizontal stacked bars, one per row, normalised to each row's
    total.  ``rows`` is ``[(label, {category: value}), ...]``; categories
    keep their first-seen order and share one legend."""
    cats: list[str] = []
    for _label, parts in rows:
        for c in parts:
            if c not in cats:
                cats.append(c)
    if colors is None:
        colors = {c: _PALETTE[i % len(_PALETTE)] for i, c in enumerate(cats)}
    margin_l, margin_t = 64, 24
    plot_w = width - margin_l - 12
    height = margin_t + len(rows) * (bar_height + 6) + 26
    body: list[str] = []
    if title:
        body.append(f'<text x="{margin_l}" y="14">{html.escape(title)}</text>')
    for i, (label, parts) in enumerate(rows):
        y = margin_t + i * (bar_height + 6)
        body.append(f'<text x="4" y="{y + bar_height * 0.7:.0f}">{html.escape(label)}</text>')
        total = sum(parts.values()) or 1.0
        x = float(margin_l)
        for c in cats:
            v = parts.get(c, 0.0)
            if v <= 0:
                continue
            w = plot_w * v / total
            tip = html.escape(f"{c}: {v:g} ({100 * v / total:.1f}%)")
            body.append(
                f'<rect x="{x:.2f}" y="{y}" width="{w:.2f}" '
                f'height="{bar_height}" fill="{colors[c]}" stroke="#333" '
                f'stroke-width="0.3"><title>{tip}</title></rect>'
            )
            x += w
    # legend
    ly = margin_t + len(rows) * (bar_height + 6) + 12
    lx = margin_l
    for c in cats:
        body.append(
            f'<rect x="{lx}" y="{ly - 9}" width="10" height="10" '
            f'fill="{colors[c]}"/>'
        )
        body.append(f'<text x="{lx + 14}" y="{ly}">{html.escape(c)}</text>')
        lx += 14 + 8 * len(c) + 18
    doc = _document(body, width, height)
    if path:
        with open(path, "w") as fh:
            fh.write(doc)
    return doc


def step_curves_svg(
    series: list[tuple[str, list[tuple[float, float]]]],
    hlines: tuple[tuple[str, Optional[float]], ...] = (),
    path: Optional[str] = None,
    width: int = 960,
    height: int = 320,
    title: str = "",
    x_max: Optional[float] = None,
) -> str:
    """Step-function curves (sample-and-hold): one polyline per series.

    ``series`` is ``[(label, [(x, y), ...]), ...]`` with samples in x
    order; each value holds until the next sample.  ``hlines`` draws
    dashed horizontal rules (e.g. a capacity line)."""
    margin_l, margin_t, margin_b = 64, 24, 28
    plot_w = width - margin_l - 12
    plot_h = height - margin_t - margin_b
    xs = [x for _l, pts in series for x, _y in pts]
    right = x_max if x_max is not None else (max(xs, default=1.0) or 1.0)
    top = max(
        [v for _l, v in hlines if v]
        + [y for _l, pts in series for _x, y in pts]
    ) or 1
    body: list[str] = []
    if title:
        body.append(f'<text x="{margin_l}" y="14">{html.escape(title)}</text>')

    def xy(x: float, y: float) -> str:
        px = margin_l + plot_w * min(x / right, 1.0)
        py = margin_t + plot_h * (1 - y / top)
        return f"{px:.1f},{py:.1f}"

    for i, (label, pts) in enumerate(series):
        color = _PALETTE[i % len(_PALETTE)]
        if pts:
            poly = []
            prev_y = pts[0][1]
            poly.append(xy(pts[0][0], prev_y))
            for x, y in pts[1:]:
                poly.append(xy(x, prev_y))
                poly.append(xy(x, y))
                prev_y = y
            poly.append(xy(right, prev_y))
            body.append(
                f'<polyline points="{" ".join(poly)}" fill="none" '
                f'stroke="{color}" stroke-width="1.4"/>'
            )
        body.append(
            f'<text x="{margin_l + 6 + 48 * i}" y="{height - 8}" '
            f'fill="{color}">{html.escape(label)}</text>'
        )
    for label, value in hlines:
        if value:
            y = margin_t + plot_h * (1 - value / top)
            body.append(
                f'<line x1="{margin_l}" y1="{y:.1f}" '
                f'x2="{margin_l + plot_w}" y2="{y:.1f}" stroke="#e15759" '
                'stroke-dasharray="4 3"/>'
            )
            body.append(
                f'<text x="4" y="{y + 4:.1f}" fill="#e15759">{html.escape(label)}</text>'
            )
    doc = _document(body, width, height)
    if path:
        with open(path, "w") as fh:
            fh.write(doc)
    return doc


def memory_svg(
    profile: MemoryProfile,
    path: Optional[str] = None,
    capacity: Optional[int] = None,
    width: int = 960,
    height: int = 320,
) -> str:
    """Render per-processor ``MEM_REQ`` step curves as SVG."""
    margin_l, margin_t, margin_b = 64, 24, 28
    plot_w = width - margin_l - 12
    plot_h = height - margin_t - margin_b
    top = max(
        [capacity or 0, profile.min_mem]
        + [max(pp.mem_req, default=0) for pp in profile.procs]
    ) or 1
    body: list[str] = [
        f'<text x="{margin_l}" y="14">MEM_REQ per task position '
        f'(MIN_MEM = {profile.min_mem}, TOT = {profile.tot})</text>'
    ]

    def y_of(v: float) -> float:
        return margin_t + plot_h * (1 - v / top)

    for q, pp in enumerate(profile.procs):
        n = max(len(pp.mem_req), 1)
        pts = []
        for i, v in enumerate(pp.mem_req):
            x0 = margin_l + plot_w * i / n
            x1 = margin_l + plot_w * (i + 1) / n
            pts.append(f"{x0:.1f},{y_of(v):.1f}")
            pts.append(f"{x1:.1f},{y_of(v):.1f}")
        color = _PALETTE[q % len(_PALETTE)]
        if pts:
            body.append(
                f'<polyline points="{" ".join(pts)}" fill="none" '
                f'stroke="{color}" stroke-width="1.4"/>'
            )
        body.append(
            f'<text x="{margin_l + 6 + 48 * q}" y="{height - 8}" '
            f'fill="{color}">P{q}</text>'
        )
    for label, value, dash in (
        ("MIN_MEM", profile.min_mem, "4 3"),
        ("capacity", capacity, "1 3"),
    ):
        if value:
            y = y_of(value)
            body.append(
                f'<line x1="{margin_l}" y1="{y:.1f}" '
                f'x2="{margin_l + plot_w}" y2="{y:.1f}" stroke="#e15759" '
                f'stroke-dasharray="{dash}"/>'
            )
            body.append(
                f'<text x="4" y="{y + 4:.1f}" fill="#e15759">{label}</text>'
            )
    doc = _document(body, width, height)
    if path:
        with open(path, "w") as fh:
            fh.write(doc)
    return doc
