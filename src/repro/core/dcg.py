"""Data Connection Graph (DCG) and computation slices (section 4.2).

DTS slices the computation by data-access pattern.  The DCG has one node
per data object and a directed edge ``d_i -> d_j`` whenever a task
associated with ``d_i`` precedes (in the task DAG) a task associated
with ``d_j``.  Association rules from the paper:

* a task that *uses but does not modify* ``d_i`` is associated with
  ``d_i`` (so a task is associated with every object it reads without
  writing);
* a task that *only modifies* ``d_i`` *and does not use any other
  objects* is associated with ``d_i`` (covers pure producers and
  read-modify-write tasks touching a single object);
* a task associated with multiple data nodes makes them mutually
  strongly connected (doubly directed edges).

Strongly connected components of the DCG become *slices*; the
condensation is a DAG whose topological order is the slice order.  Each
task lies in exactly one component (all its associated nodes are, by
construction, in the same SCC).  Objects associated with no task are
isolated in the DCG and yield no slice — matching Figure 5, where only
7 of the 11 objects appear.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from ..errors import SchedulingError
from ..graph.builder import is_source_task
from ..graph.taskgraph import TaskGraph
from .placement import Placement


def task_association(graph: TaskGraph, task: str) -> tuple[str, ...]:
    """Data nodes a task is associated with under the DCG rules.

    Implicit source tasks (initial-data loads materialised by the
    builder) are associated with nothing: they are zero-weight and run
    on the owner, so tying them to a data node would thread artificial
    temporal edges through the DCG — e.g. the 1-D LU graphs would lose
    the acyclicity that Corollary 2 proves.  They land in the first
    slice instead.
    """
    if is_source_task(task):
        return ()
    t = graph.task(task)
    ro = t.read_only
    if ro:
        return ro
    # No read-only objects: associate with the written object(s); this
    # covers ``T[j]`` pure producers and read-modify-write tasks whose
    # only input is the object they update.
    if t.writes:
        return t.writes
    if t.reads:  # read-only task reading objects it also ... cannot happen
        return t.reads
    return ()


@dataclass
class DCG:
    """The data connection graph and its SCC condensation."""

    graph: TaskGraph
    #: adjacency over object names
    succ: dict[str, set[str]] = field(default_factory=dict)
    #: object -> SCC id (only for objects that appear in the DCG)
    component: dict[str, int] = field(default_factory=dict)
    #: SCC id (dense, in topological order) -> member objects
    comp_objects: list[list[str]] = field(default_factory=list)
    #: SCC id -> tasks associated with the component
    comp_tasks: list[list[str]] = field(default_factory=list)

    @property
    def num_slices(self) -> int:
        return len(self.comp_tasks)

    def slice_of(self) -> dict[str, int]:
        """Task -> slice index (topological slice order)."""
        out: dict[str, int] = {}
        for s, tasks in enumerate(self.comp_tasks):
            for t in tasks:
                out[t] = s
        return out

    def is_acyclic(self) -> bool:
        """True when every SCC is a single node (Corollary 1's case)."""
        return all(len(objs) == 1 for objs in self.comp_objects)


def build_dcg(graph: TaskGraph) -> DCG:
    """Construct the DCG of a task graph and slice it by SCCs."""
    assoc: dict[str, tuple[str, ...]] = {}
    nodes: set[str] = set()
    succ: dict[str, set[str]] = {}

    def link(a: str, b: str) -> None:
        if a != b:
            succ.setdefault(a, set()).add(b)

    for t in graph.tasks():
        a = task_association(graph, t.name)
        assoc[t.name] = a
        nodes.update(a)
        # Rule 2: multiple associated nodes become strongly connected.
        for x in a:
            for y in a:
                link(x, y)
    # Rule 3: temporal order of data accessing along task dependences.
    for u, v, _objs in graph.edges():
        for x in assoc[u]:
            for y in assoc[v]:
                link(x, y)
    # Sorted so the DCG (and every downstream slice order) is independent
    # of the process hash seed — DTS schedules must be reproducible.
    for n in sorted(nodes):
        succ.setdefault(n, set())

    comp = tarjan_scc(succ)
    # Condensation + topological order of components.
    ncomp = max(comp.values(), default=-1) + 1
    cond_succ: list[set[int]] = [set() for _ in range(ncomp)]
    indeg = [0] * ncomp
    for a, outs in succ.items():
        ca = comp[a]
        for b in outs:
            cb = comp[b]
            if ca != cb and cb not in cond_succ[ca]:
                cond_succ[ca].add(cb)
                indeg[cb] += 1
    order: list[int] = []
    stack = [c for c in range(ncomp) if indeg[c] == 0]
    while stack:
        c = stack.pop()
        order.append(c)
        for d in cond_succ[c]:
            indeg[d] -= 1
            if indeg[d] == 0:
                stack.append(d)
    if len(order) != ncomp:
        raise SchedulingError("DCG condensation is not acyclic (SCC bug)")

    # Group tasks per component; drop empty components, renumber densely
    # in topological order.
    tasks_by_comp: dict[int, list[str]] = {}
    for t in graph.task_names:
        a = assoc[t]
        if not a:
            continue
        cids = {comp[x] for x in a}
        if len(cids) != 1:
            raise SchedulingError(
                f"task {t!r} associated with several components {sorted(cids)}"
            )
        tasks_by_comp.setdefault(cids.pop(), []).append(t)

    comp_objects: list[list[str]] = []
    comp_tasks: list[list[str]] = []
    remap: dict[int, int] = {}
    objs_by_comp: dict[int, list[str]] = {}
    for o, c in comp.items():
        objs_by_comp.setdefault(c, []).append(o)
    for c in order:
        if c in tasks_by_comp:
            remap[c] = len(comp_tasks)
            comp_objects.append(sorted(objs_by_comp.get(c, [])))
            comp_tasks.append(tasks_by_comp[c])

    component = {o: remap[c] for o, c in comp.items() if c in remap}
    dcg = DCG(
        graph=graph,
        succ=succ,
        component=component,
        comp_objects=comp_objects,
        comp_tasks=comp_tasks,
    )
    # Tasks with no association (no reads, no writes) default to slice 0;
    # such tasks have no data footprint so any slice is safe.
    if any(not assoc[t] for t in graph.task_names) and not comp_tasks:
        dcg.comp_objects.append([])
        dcg.comp_tasks.append([t for t in graph.task_names if not assoc[t]])
    elif any(not assoc[t] for t in graph.task_names):
        dcg.comp_tasks[0] = [t for t in graph.task_names if not assoc[t]] + dcg.comp_tasks[0]
    return dcg


def tarjan_scc(succ: Mapping[str, set[str]]) -> dict[str, int]:
    """Iterative Tarjan SCC; returns node -> component id (ids are in
    *reverse* topological order of discovery, remapped by the caller).

    Shared SCC machinery: the DCG slicer condenses object graphs with
    it, and the static protocol analyzer runs it over processor
    wait-for graphs to extract deadlock cycles (Theorem 1).  Nodes only
    need to be sortable (strings or ints)."""
    index: dict[str, int] = {}
    low: dict[str, int] = {}
    on_stack: set[str] = set()
    stack: list[str] = []
    comp: dict[str, int] = {}
    counter = 0
    ncomp = 0
    for root in succ:
        if root in index:
            continue
        work: list[tuple[str, list[str]]] = [(root, sorted(succ[root]))]
        index[root] = low[root] = counter
        counter += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            node, children = work[-1]
            if children:
                child = children.pop()
                if child not in index:
                    index[child] = low[child] = counter
                    counter += 1
                    stack.append(child)
                    on_stack.add(child)
                    work.append((child, sorted(succ[child])))
                elif child in on_stack:
                    low[node] = min(low[node], index[child])
            else:
                work.pop()
                if work:
                    parent = work[-1][0]
                    low[parent] = min(low[parent], low[node])
                if low[node] == index[node]:
                    while True:
                        w = stack.pop()
                        on_stack.discard(w)
                        comp[w] = ncomp
                        if w == node:
                            break
                    ncomp += 1
    return comp


# ----------------------------------------------------------------------
# slice volatile-space requirements (Definition 7)
# ----------------------------------------------------------------------


def slice_volatile_space(
    dcg: DCG,
    placement: Placement,
    assignment: Mapping[str, int],
) -> list[int]:
    """``H(R, L)`` for every slice: the maximum over processors of the
    volatile space needed to execute the slice's tasks (Definition 7)."""
    g = dcg.graph
    out: list[int] = []
    for tasks in dcg.comp_tasks:
        per_proc: dict[int, set[str]] = {}
        for t in tasks:
            p = assignment[t]
            objs = per_proc.setdefault(p, set())
            for o in g.task(t).accesses:
                if placement[o] != p:
                    objs.add(o)
        h = 0
        for objs in per_proc.values():
            h = max(h, sum(g.object(o).size for o in objs))
        out.append(h)
    return out
