"""Dependence-structure memory accounting (the paper's conclusion).

Beyond data objects, the runtime itself consumes memory: "other space
overhead ... includes the space for the operating system kernel, hash
tables for indexing irregular objects, task dependence graphs etc."
(section 1), and the conclusion measures it: "dependence structures can
take from 18% to 50% of the total memory space. Although a complete
dependence structure is needed for scheduling at the inspector stage, it
is possible to distribute the dependence structure during the executor
stage."

This module models that bookkeeping with a simple record-size model
(sizes configurable): per task a fixed descriptor plus its access list,
per edge a record, per object an index entry.  Two layouts:

* **replicated** — every processor holds the whole graph (what the
  inspector needs for scheduling);
* **distributed** — each processor holds only its own tasks, their
  incident edges, and index entries for the objects it touches (what the
  executor needs).

:func:`dependence_memory_report` compares both against the data space
``S1`` — reproducing the 18-50% observation and quantifying what
distribution recovers.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..graph.taskgraph import TaskGraph
from .schedule import Schedule


@dataclass(frozen=True)
class RecordSizes:
    """Bytes per runtime record (defaults: a 90s C runtime with 4-byte
    ids and pointer-linked lists)."""

    task: int = 48  # descriptor: state, weight, counters, list heads
    access: int = 8  # (object id, mode) entry in a task's access list
    edge: int = 16  # (src, dst, object, next) record
    object_index: int = 32  # hash-table entry: name hash, size, address


@dataclass
class DependenceMemory:
    """Dependence-structure footprint under one layout."""

    per_proc: list[int]

    @property
    def max_bytes(self) -> int:
        return max(self.per_proc, default=0)

    @property
    def total_bytes(self) -> int:
        return sum(self.per_proc)


def replicated_dependence_memory(
    graph: TaskGraph, num_procs: int, sizes: RecordSizes = RecordSizes()
) -> DependenceMemory:
    """Every processor stores the full graph (inspector-stage layout)."""
    one = (
        graph.num_tasks * sizes.task
        + sum(len(t.accesses) for t in graph.tasks()) * sizes.access
        + graph.num_edges * sizes.edge
        + graph.num_objects * sizes.object_index
    )
    return DependenceMemory(per_proc=[one] * num_procs)


def distributed_dependence_memory(
    schedule: Schedule, sizes: RecordSizes = RecordSizes()
) -> DependenceMemory:
    """Each processor stores its tasks, incident edges and the index
    entries of objects it touches (executor-stage layout).  Cross-
    processor edges are counted on both endpoints (each side needs the
    record to send / await)."""
    g = schedule.graph
    asg = schedule.assignment
    p = schedule.num_procs
    per = [0] * p
    objs: list[set[str]] = [set() for _ in range(p)]
    for t in g.tasks():
        q = asg[t.name]
        per[q] += sizes.task + len(t.accesses) * sizes.access
        objs[q].update(t.accesses)
    for u, v, _o in g.edges():
        qu, qv = asg[u], asg[v]
        per[qu] += sizes.edge
        if qv != qu:
            per[qv] += sizes.edge
    for q in range(p):
        per[q] += len(objs[q]) * sizes.object_index
    return DependenceMemory(per_proc=per)


@dataclass
class DependenceMemoryReport:
    """Comparison of dependence-structure layouts against data space."""

    s1: int
    data_per_proc: int  # peak data bytes per processor (MIN_MEM)
    replicated: DependenceMemory
    distributed: DependenceMemory

    @property
    def replicated_fraction(self) -> float:
        """Dependence share of total per-processor memory, replicated
        layout — the paper's 18-50% figure."""
        d = self.replicated.max_bytes
        return d / (d + self.data_per_proc) if d + self.data_per_proc else 0.0

    @property
    def distributed_fraction(self) -> float:
        d = self.distributed.max_bytes
        return d / (d + self.data_per_proc) if d + self.data_per_proc else 0.0

    @property
    def savings(self) -> float:
        """Fraction of dependence memory recovered by distribution."""
        r = self.replicated.max_bytes
        return 1.0 - self.distributed.max_bytes / r if r else 0.0


def dependence_memory_report(
    schedule: Schedule,
    data_per_proc: int,
    sizes: RecordSizes = RecordSizes(),
) -> DependenceMemoryReport:
    """Build the replicated-vs-distributed comparison for a schedule."""
    return DependenceMemoryReport(
        s1=schedule.graph.total_data(),
        data_per_proc=data_per_proc,
        replicated=replicated_dependence_memory(
            schedule.graph, schedule.num_procs, sizes
        ),
        distributed=distributed_dependence_memory(schedule, sizes),
    )
