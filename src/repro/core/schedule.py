"""Static schedules and their predicted timing (Gantt charts).

A *static schedule* (Definition 1) is a task -> processor assignment plus
an execution order of the tasks on each processor.  Its predicted
parallel time uses the macro-dataflow model of the paper's worked
example (Figure 2): a task starts once its processor is free and all its
input data has arrived; messages travel asynchronously and cost
``latency + size * byte_time`` (one unit in the worked examples); the
sending processor is not blocked.

The Gantt computation treats the schedule as a DAG: dependence edges of
the task graph plus the implicit sequence edges along each processor's
order.  A schedule is *valid* exactly when that combined graph is
acyclic; :func:`gantt` detects invalid interleavings.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Sequence

from ..errors import SchedulingError
from ..graph.taskgraph import TaskGraph
from .placement import Placement


@dataclass(frozen=True)
class CommModel:
    """Linear communication cost model for schedule prediction.

    ``cost(bytes) = latency + bytes * byte_time`` for data-carrying
    edges; synchronisation edges cost ``latency`` alone.  The defaults
    reproduce the unit-cost model of the paper's Figure 2 ("each task and
    each message cost one unit of time").
    """

    latency: float = 1.0
    byte_time: float = 0.0

    def cost(self, nbytes: int) -> float:
        return self.latency + nbytes * self.byte_time


#: The unit-cost model of the worked examples.
UNIT_COMM = CommModel(latency=1.0, byte_time=0.0)


@dataclass
class Schedule:
    """A static schedule: assignment + per-processor task orders.

    Attributes
    ----------
    graph:
        The scheduled task graph.
    placement:
        Object ownership (Definition 1).
    assignment:
        Task name -> processor.
    orders:
        ``orders[p]`` lists the tasks of processor ``p`` in execution
        order.
    """

    graph: TaskGraph
    placement: Placement
    assignment: dict[str, int]
    orders: list[list[str]]
    meta: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if len(self.orders) != self.placement.num_procs:
            raise SchedulingError(
                f"{len(self.orders)} order lists for {self.placement.num_procs} processors"
            )

    @property
    def num_procs(self) -> int:
        return self.placement.num_procs

    def processor_of(self, task: str) -> int:
        return self.assignment[task]

    def position(self) -> dict[str, int]:
        """Task -> index within its processor's order."""
        pos: dict[str, int] = {}
        for order in self.orders:
            for i, t in enumerate(order):
                pos[t] = i
        return pos

    def validate(self) -> None:
        """Structural validation: orders partition the task set and agree
        with the assignment.  (Precedence validity is checked by
        :func:`gantt`.)"""
        seen: set[str] = set()
        for p, order in enumerate(self.orders):
            for t in order:
                if not self.graph.has_task(t):
                    raise SchedulingError(f"order of P{p} contains unknown task {t!r}")
                if t in seen:
                    raise SchedulingError(f"task {t!r} appears on two processors")
                if self.assignment.get(t) != p:
                    raise SchedulingError(
                        f"task {t!r} ordered on P{p} but assigned to "
                        f"P{self.assignment.get(t)}"
                    )
                seen.add(t)
        if len(seen) != self.graph.num_tasks:
            missing = [t for t in self.graph.task_names if t not in seen]
            raise SchedulingError(f"schedule misses tasks: {missing[:5]}...")


@dataclass
class GanttChart:
    """Predicted start/finish times of a schedule."""

    schedule: Schedule
    start: dict[str, float]
    finish: dict[str, float]

    @property
    def makespan(self) -> float:
        """The predicted parallel time ``PT``."""
        return max(self.finish.values(), default=0.0)

    def busy_time(self, proc: int) -> float:
        return sum(
            self.schedule.graph.task(t).weight for t in self.schedule.orders[proc]
        )

    def utilization(self) -> float:
        """Average fraction of time processors spend computing."""
        ms = self.makespan
        if ms <= 0:
            return 1.0
        p = self.schedule.num_procs
        return sum(self.busy_time(q) for q in range(p)) / (p * ms)

    def as_ascii(self, width: int = 72, unit: float | None = None) -> str:
        """Render the chart like Figure 2 of the paper (one row per
        processor, task names placed at their start slots)."""
        ms = self.makespan
        if ms <= 0:
            return "(empty schedule)"
        scale = (width / ms) if unit is None else (1.0 / unit)
        rows = []
        for p, order in enumerate(self.schedule.orders):
            cells: list[str] = []
            cursor = 0
            for t in order:
                col = int(self.start[t] * scale)
                if col > cursor:
                    cells.append(" " * (col - cursor))
                    cursor = col
                label = f"[{t}]"
                cells.append(label)
                cursor += len(label)
            rows.append(f"P{p}: " + "".join(cells))
        rows.append(f"PT = {ms:g}")
        return "\n".join(rows)


def gantt(schedule: Schedule, comm: CommModel = UNIT_COMM) -> GanttChart:
    """Compute predicted start/finish times under the macro-dataflow
    model.

    Raises :class:`~repro.errors.SchedulingError` when the per-processor
    orders are inconsistent with the dependence DAG (the combined graph
    has a cycle).
    """
    g = schedule.graph
    # Combined-graph Kahn evaluation: dependence edges + sequence edges.
    indeg: dict[str, int] = {}
    prev_on_proc: dict[str, str] = {}
    pos: dict[str, int] = {}
    for order in schedule.orders:
        for i, t in enumerate(order):
            pos[t] = i
            if i > 0:
                prev_on_proc[t] = order[i - 1]
    for name in g.task_names:
        d = g.in_degree(name)
        prev = prev_on_proc.get(name)
        # Avoid double counting when the previous task on the processor is
        # also a DAG predecessor.
        if prev is not None and not g.has_edge(prev, name):
            d += 1
        indeg[name] = d

    start: dict[str, float] = {}
    finish: dict[str, float] = {}
    ready: deque[str] = deque(n for n in g.task_names if indeg[n] == 0)
    done = 0
    while ready:
        u = ready.popleft()
        t = g.task(u)
        pu = schedule.assignment[u]
        s = 0.0
        prev = prev_on_proc.get(u)
        if prev is not None:
            s = finish[prev]
        for pred in g.predecessors(u):
            arr = finish[pred]
            if schedule.assignment[pred] != pu:
                objs = g.edge_objects(pred, u)
                nbytes = sum(g.object(o).size for o in objs)
                arr += comm.cost(nbytes) if objs else comm.latency
            if arr > s:
                s = arr
        start[u] = s
        finish[u] = s + t.weight
        done += 1
        # Release combined-graph successors.
        for v in g.successors(u):
            indeg[v] -= 1
            if indeg[v] == 0:
                ready.append(v)
        order = schedule.orders[pu]
        # Release the next task on this processor (sequence edge), unless
        # it was already counted as a DAG successor above.
        i = pos[u]
        if i + 1 < len(order):
            nxt = order[i + 1]
            if not g.has_edge(u, nxt):
                indeg[nxt] -= 1
                if indeg[nxt] == 0:
                    ready.append(nxt)
    if done != g.num_tasks:
        stuck = [n for n in g.task_names if n not in finish]
        raise SchedulingError(
            f"schedule order conflicts with dependencies; stuck tasks: {stuck[:5]}"
        )
    return GanttChart(schedule, start, finish)


def serial_schedule(graph: TaskGraph, order: Sequence[str] | None = None) -> Schedule:
    """A one-processor schedule (the sequential execution)."""
    seq = list(order) if order is not None else graph.topological_order()
    placement = Placement(1, {o.name: 0 for o in graph.objects()})
    return Schedule(graph, placement, {t: 0 for t in seq}, [seq])
