"""Shared list-scheduling engine for the ordering heuristics.

The second mapping stage of the paper (section 4) orders the tasks of
each processor given a fixed task -> processor assignment.  RCP, MPO and
DTS all instantiate the same scheduling cycle (Figure 4):

1. find the processor with the earliest idle time among processors that
   have *ready* tasks (a task is ready when all its predecessors have
   been scheduled — their data "can be received at this point");
2. on that processor, schedule the ready task with the highest priority;
3. update priorities and ready sets.

The engine is parameterised by a :class:`PriorityPolicy`:

* ``priority(task)`` returns a sortable tuple (larger = scheduled
  first);
* ``on_scheduled(task, proc)`` lets the policy update internal state and
  return the set of tasks whose priority changed (their heap entries are
  refreshed lazily);
* optional per-task *levels* implement DTS's slice gate: a ready task
  whose level is higher than its processor's minimum incomplete level is
  parked until every lower-level task of that processor is scheduled.

Start times follow the macro-dataflow model: a task starts at
``max(processor idle time, latest data arrival)`` where cross-processor
arrivals pay the :class:`~repro.core.schedule.CommModel` cost.
"""

from __future__ import annotations

import heapq
from typing import Iterable, Mapping, Optional, Protocol

from ..errors import SchedulingError
from ..graph.taskgraph import TaskGraph
from .placement import Placement
from .schedule import CommModel, Schedule, UNIT_COMM


class PriorityPolicy(Protocol):
    """Strategy object consumed by :func:`run_list_scheduler`."""

    def priority(self, task: str) -> tuple:
        """Sort key of a ready task; larger tuples are scheduled first."""
        ...

    def on_scheduled(self, task: str, proc: int) -> Iterable[str]:
        """Notify that ``task`` was placed; return tasks whose priority
        changed (only ready tasks need to be reported)."""
        ...


class StaticPolicy:
    """Priorities fixed up-front (RCP, DTS-within-slice)."""

    def __init__(self, priorities: Mapping[str, tuple | float]):
        self._p = {
            t: (v if isinstance(v, tuple) else (v,)) for t, v in priorities.items()
        }

    def priority(self, task: str) -> tuple:
        return self._p[task]

    def on_scheduled(self, task: str, proc: int) -> Iterable[str]:
        return ()


def run_list_scheduler(
    graph: TaskGraph,
    placement: Placement,
    assignment: Mapping[str, int],
    policy: PriorityPolicy,
    comm: CommModel = UNIT_COMM,
    levels: Optional[Mapping[str, int]] = None,
    meta: Optional[dict] = None,
) -> Schedule:
    """Order the tasks of every processor with the given policy.

    Returns a validated :class:`~repro.core.schedule.Schedule`.
    """
    nprocs = placement.num_procs
    for t in graph.task_names:
        if t not in assignment:
            raise SchedulingError(f"task {t!r} has no processor assignment")

    remaining = {t: graph.in_degree(t) for t in graph.task_names}
    finish: dict[str, float] = {}
    idle = [0.0] * nprocs
    orders: list[list[str]] = [[] for _ in range(nprocs)]

    # Per-processor ready heaps with lazy invalidation.
    heaps: list[list[tuple]] = [[] for _ in range(nprocs)]
    version: dict[str, int] = {t: 0 for t in graph.task_names}
    counter = 0

    # Earliest-idle selection: processors with (potentially) ready tasks
    # sit in a priority queue keyed by (idle, proc).  A processor holds
    # at most one entry; its idle time only changes while it is *out* of
    # the queue (it is popped before being scheduled on), so entries are
    # never stale.  Popping yields the minimum idle with the smallest
    # processor id on ties — the same choice as a linear scan.
    proc_pq: list[tuple[float, int]] = []
    in_pq = [False] * nprocs

    def activate(p: int) -> None:
        if not in_pq[p]:
            in_pq[p] = True
            heapq.heappush(proc_pq, (idle[p], p))

    # DTS slice gate state.
    lvl_remaining: list[dict[int, int]] = [dict() for _ in range(nprocs)]
    min_level: list[int] = [0] * nprocs
    parked: list[list[tuple[int, int, str]]] = [[] for _ in range(nprocs)]
    if levels is not None:
        for t in graph.task_names:
            p = assignment[t]
            l = levels[t]
            lvl_remaining[p][l] = lvl_remaining[p].get(l, 0) + 1
        for p in range(nprocs):
            min_level[p] = min(lvl_remaining[p], default=0)

    def neg(t: tuple) -> tuple:
        return tuple(-x for x in t)

    def push(task: str) -> None:
        nonlocal counter
        p = assignment[task]
        if levels is not None and levels[task] > min_level[p]:
            heapq.heappush(parked[p], (levels[task], counter, task))
            counter += 1
            return
        counter += 1
        heapq.heappush(heaps[p], (neg(policy.priority(task)), counter, task, version[task]))
        activate(p)

    def unpark(p: int) -> None:
        """Move parked tasks whose level became current into the heap."""
        nonlocal counter
        while parked[p] and parked[p][0][0] <= min_level[p]:
            _, _, task = heapq.heappop(parked[p])
            counter += 1
            heapq.heappush(
                heaps[p], (neg(policy.priority(task)), counter, task, version[task])
            )
            activate(p)

    def pop(p: int) -> Optional[str]:
        """Pop the highest-priority non-stale entry of processor ``p``."""
        h = heaps[p]
        while h:
            _, _, task, ver = h[0]
            if ver != version[task] or task in finish:
                heapq.heappop(h)
                continue
            heapq.heappop(h)
            return task
        return None

    scheduled = 0
    total = graph.num_tasks
    for t in graph.task_names:
        if remaining[t] == 0:
            push(t)

    while scheduled < total:
        # Processor with earliest idle time among those with ready tasks.
        best_p = -1
        while proc_pq:
            _, p = heapq.heappop(proc_pq)
            in_pq[p] = False
            h = heaps[p]
            # Drop stale heads so emptiness is accurate.
            while h:
                _, _, t, ver = h[0]
                if ver != version[t] or t in finish:
                    heapq.heappop(h)
                else:
                    break
            if h:
                best_p = p
                break
            # Only stale entries: dormant until the next push wakes it.
        if best_p < 0:
            raise SchedulingError(
                f"list scheduler stalled with {total - scheduled} tasks left "
                "(inconsistent levels or assignment)"
            )
        task = pop(best_p)
        assert task is not None
        # Earliest start: processor idle time vs data arrivals.
        est = idle[best_p]
        for pred in graph.predecessors(task):
            arr = finish[pred]
            if assignment[pred] != best_p:
                objs = graph.edge_objects(pred, task)
                nbytes = sum(graph.object(o).size for o in objs)
                arr += comm.cost(nbytes) if objs else comm.latency
            if arr > est:
                est = arr
        w = graph.task(task).weight
        finish[task] = est + w
        idle[best_p] = est + w
        orders[best_p].append(task)
        scheduled += 1

        # Slice-gate bookkeeping.
        if levels is not None:
            l = levels[task]
            lvl_remaining[best_p][l] -= 1
            if lvl_remaining[best_p][l] == 0:
                del lvl_remaining[best_p][l]
                min_level[best_p] = min(lvl_remaining[best_p], default=min_level[best_p])
                unpark(best_p)

        # Ready-set updates.
        for s in graph.successors(task):
            remaining[s] -= 1
            if remaining[s] == 0:
                push(s)

        # Priority refreshes from the policy.
        for u in policy.on_scheduled(task, best_p):
            if u in finish or remaining.get(u, 1) != 0:
                continue
            version[u] += 1
            push(u)

        # The chosen processor left the queue; requeue it (at its new
        # idle time) while it still has queued entries.
        if heaps[best_p]:
            activate(best_p)

    schedule = Schedule(
        graph=graph,
        placement=placement,
        assignment=dict(assignment),
        orders=orders,
        meta=dict(meta or {}),
    )
    schedule.validate()
    return schedule
