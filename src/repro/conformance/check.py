"""The conformance harness: checked runs over schedules and batches.

:func:`run_check` executes one schedule with the online
:class:`~repro.conformance.invariants.InvariantChecker` attached (plus
optional fault injection and the differential oracle) and returns a
structured :class:`CheckReport`.  :func:`check_batch` sweeps the paper's
worked example and a batch of seeded random DAGs across the three
ordering heuristics — the engine behind ``repro check``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from ..core import cyclic_placement, owner_compute_assignment
from ..core.liveness import analyze_memory
from ..core.maps import MapPlan, MapPoint
from ..core.rcp import rcp_order
from ..core.mpo import mpo_order
from ..core.dts import dts_order
from ..errors import DeadlockError, ReproError
from ..graph import generators
from ..machine.simulator import CompiledSchedule, Simulator
from ..machine.spec import UNIT_MACHINE, MachineSpec
from .faults import FaultSpec
from .invariants import InvariantChecker, Violation, deadlock_witness
from .oracle import OracleReport, differential_check

__all__ = [
    "CheckReport",
    "batch_cases",
    "check_batch",
    "overwrite_demo",
    "run_check",
]

_ORDERINGS = {"rcp": rcp_order, "mpo": mpo_order, "dts": dts_order}


@dataclass
class CheckReport:
    """Outcome of one checked execution."""

    label: str
    capacity: int
    violations: list[Violation] = field(default_factory=list)
    #: Witness report when the run deadlocked (``None`` otherwise).
    deadlock: Optional[str] = None
    #: Error text of a non-deadlock simulator abort (``None`` otherwise).
    error: Optional[str] = None
    oracle: Optional[OracleReport] = None
    parallel_time: Optional[float] = None
    #: The checker that observed the run (window buffer, raw state).
    checker: Optional[InvariantChecker] = None

    @property
    def ok(self) -> bool:
        return (
            not self.violations
            and self.deadlock is None
            and self.error is None
            and (self.oracle is None or self.oracle.ok)
        )

    def summary(self) -> str:
        if self.ok:
            oracle = "" if self.oracle is None else ", oracle ok"
            return (
                f"{self.label}: OK (capacity={self.capacity}, "
                f"PT={self.parallel_time:g}{oracle})"
            )
        parts = []
        if self.violations:
            parts.append(f"{len(self.violations)} violation(s)")
        if self.deadlock is not None:
            parts.append("deadlock")
        if self.error is not None:
            parts.append("aborted")
        if self.oracle is not None and not self.oracle.ok:
            parts.append("oracle mismatch")
        return f"{self.label}: FAIL ({', '.join(parts)}; capacity={self.capacity})"


def _pick_capacity(profile, fraction: Optional[float]) -> int:
    """Capacity between MIN_MEM (0.0) and TOT (1.0); ``None`` = TOT.

    Canonical implementation lives in :mod:`repro.analysis.engine` so
    the static analyzer and the checked runs resolve identical
    capacities for a given fraction (imported lazily: conformance must
    stay importable before the analysis package)."""
    from ..analysis.engine import pick_capacity

    return pick_capacity(profile, fraction)


def run_check(
    schedule,
    *,
    spec: MachineSpec = UNIT_MACHINE,
    capacity: Optional[int] = None,
    fraction: Optional[float] = None,
    faults: Optional[FaultSpec] = None,
    oracle: bool = True,
    label: str = "",
    compiled: Optional[CompiledSchedule] = None,
    plan=None,
) -> CheckReport:
    """One checked execution of ``schedule``.

    Capacity resolution order: explicit ``capacity``; the fault's
    ``capacity_fraction`` (the *tighten* knob); ``fraction``; else the
    schedule's TOT.  A deadlock is captured as a witness report rather
    than propagating; other simulator errors are captured as ``error``.
    """
    if compiled is None:
        compiled = CompiledSchedule(schedule)
    if capacity is None:
        frac = fraction
        if faults is not None and faults.capacity_fraction is not None:
            frac = faults.capacity_fraction
        capacity = _pick_capacity(compiled.profile, frac)
    checker = InvariantChecker(compiled)
    report = CheckReport(
        label=label or compiled.schedule.meta.get("heuristic", "schedule"),
        capacity=capacity,
        checker=checker,
    )
    sim = Simulator(
        spec=spec,
        capacity=capacity,
        compiled=compiled,
        instrument=checker,
        faults=faults,
        plan=plan,
    )
    try:
        res = sim.run()
        report.parallel_time = res.parallel_time
    except DeadlockError as err:
        report.deadlock = deadlock_witness(err)
    except ReproError as err:
        report.error = f"{type(err).__name__}: {err}"
    report.violations = list(checker.violations)
    if oracle and report.deadlock is None and report.error is None:
        report.oracle = differential_check(
            schedule, spec=spec, capacity=capacity, compiled=compiled
        )
    return report


def overwrite_scenario():
    """A (schedule, plan, capacity) triple that loses an address package
    under the ``overwrite`` fault.

    The planner of :mod:`repro.core.maps` is self-throttling: a second
    package to one destination is only assembled after the tasks covered
    by the previous one executed, so its plans never overwrite a live
    slot even when told to.  The overwrite fault therefore ships with a
    *buggy-planner* scenario: a hand-built plan whose two early MAPs on
    ``P0`` both notify ``P1`` while ``P1`` is stuck in a long task — the
    second package overwrites the first, ``d1``'s address is lost,
    ``P1``'s suspended put never drains and the pair deadlocks in the
    cycle ``P0 -> P1 -> P0``.
    """
    from ..core.placement import Placement
    from ..core.schedule import Schedule
    from ..graph.builder import GraphBuilder

    b = GraphBuilder()
    b.add_object("a", 1)
    b.add_object("d1", 2)
    b.add_object("d2", 2)
    b.add_object("z", 1)
    b.add_task("p1", writes=["d1"], weight=0.5)
    b.add_task("p2", writes=["d2"], weight=8.0)
    b.add_task("long", writes=["z"], weight=50.0)
    b.add_task("l1", writes=["a"], weight=1.0)
    b.add_task("l2", reads=["a"], writes=["a"], weight=1.0)
    b.add_task("r12", reads=["d1", "d2"], writes=["a"], weight=1.0)
    g = b.build()
    pl = Placement(2, {"a": 0, "d1": 1, "d2": 1, "z": 1})
    asg = {"p1": 1, "p2": 1, "long": 1, "l1": 0, "l2": 0, "r12": 0}
    sched = Schedule(
        graph=g,
        placement=pl,
        assignment=asg,
        orders=[["l1", "l2", "r12"], ["p1", "p2", "long"]],
        meta={"heuristic": "overwrite-demo"},
    )
    sched.validate()
    capacity = 5  # a + d1 + d2
    plan = MapPlan(
        schedule=sched,
        capacity=capacity,
        points=[
            [
                MapPoint(proc=0, position=0, allocs=["d1"],
                         notifications={1: ["d1"]}),
                MapPoint(proc=0, position=1, allocs=["d2"],
                         notifications={1: ["d2"]}),
            ],
            [MapPoint(proc=1, position=0)],
        ],
        profile=analyze_memory(sched),
    )
    return sched, plan, capacity


def overwrite_demo(seed: int = 0) -> CheckReport:
    """Checked run of :func:`overwrite_scenario` under the overwrite
    fault: expects a ``slot-overwrite`` violation plus a deadlock whose
    witness shows the ``P0 -> P1 -> P0`` cycle."""
    sched, plan, capacity = overwrite_scenario()
    return run_check(
        sched,
        capacity=capacity,
        plan=plan,
        faults=FaultSpec(seed=seed, overwrite_slots=True),
        oracle=False,
        label="overwrite-demo",
    )


def batch_cases(
    seed: int,
    *,
    graphs: int = 10,
    procs: int = 3,
    tasks: int = 30,
    objects: int = 6,
    include_paper: bool = True,
) -> list[tuple[str, object, object, object]]:
    """The canonical ``(name, graph, placement, assignment)`` batch:
    the paper's worked example plus ``graphs`` seeded random DAGs.

    Single source of the case construction shared by ``repro check``
    (dynamic) and ``repro analyze`` (static), so both commands judge
    exactly the same schedules for a given seed.
    """
    cases: list[tuple[str, object, object, object]] = []
    if include_paper:
        from ..graph.paper_example import (
            paper_assignment,
            paper_example_graph,
            paper_placement,
        )

        g = paper_example_graph()
        pl = paper_placement()
        cases.append(("paper", g, pl, paper_assignment(g, pl)))
    for i in range(graphs):
        g = generators.random_trace(tasks, objects, seed=seed + i)
        pl = cyclic_placement(g, procs)
        cases.append((f"dag{seed + i}", g, pl, owner_compute_assignment(g, pl)))
    return cases


def check_batch(
    seed: int,
    *,
    graphs: int = 10,
    procs: int = 3,
    heuristics: Sequence[str] = ("rcp", "mpo", "dts"),
    faults: Optional[FaultSpec] = None,
    fraction: Optional[float] = 0.5,
    spec: MachineSpec = UNIT_MACHINE,
    tasks: int = 30,
    objects: int = 6,
    include_paper: bool = True,
) -> list[CheckReport]:
    """Checked runs over the paper example plus ``graphs`` seeded DAGs.

    Every graph is scheduled with each heuristic; seeds are
    ``seed .. seed + graphs - 1`` so a batch is fully reproducible.
    """
    reports: list[CheckReport] = []
    for name, g, pl, asg in batch_cases(
        seed, graphs=graphs, procs=procs, tasks=tasks, objects=objects,
        include_paper=include_paper,
    ):
        for h in heuristics:
            sched = _ORDERINGS[h](g, pl, asg)
            reports.append(
                run_check(
                    sched,
                    spec=spec,
                    fraction=fraction,
                    faults=faults,
                    label=f"{name}/{h}",
                )
            )
    return reports
