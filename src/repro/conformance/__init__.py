"""Conformance layer: fault injection, online invariants, oracle.

This package turns Theorem 1 from a claim into a test surface.  It
provides a deterministic fault-injection layer for the simulator
(:mod:`~repro.conformance.faults`), an online invariant checker built on
the Instrument hooks (:mod:`~repro.conformance.invariants`), a
differential oracle comparing the simulator's modeled dataflow against
the untimed executors (:mod:`~repro.conformance.oracle`), a failing-
window trace exporter (:mod:`~repro.conformance.vtrace`) and the
``repro check`` harness (:mod:`~repro.conformance.check`).

See ``docs/conformance.md`` for the invariant catalogue and fault-knob
reference.
"""

from .check import CheckReport, check_batch, run_check
from .faults import FAULT_KINDS, FaultInjector, FaultSpec, fault_preset
from .invariants import (
    INVARIANTS,
    InvariantChecker,
    Violation,
    deadlock_witness,
    find_cycle,
)
from .oracle import DataflowRecorder, OracleReport, differential_check, replay_versions
from .vtrace import violation_trace, write_violation_trace

__all__ = [
    "FAULT_KINDS",
    "INVARIANTS",
    "CheckReport",
    "DataflowRecorder",
    "FaultInjector",
    "FaultSpec",
    "InvariantChecker",
    "OracleReport",
    "Violation",
    "check_batch",
    "deadlock_witness",
    "differential_check",
    "fault_preset",
    "find_cycle",
    "replay_versions",
    "run_check",
    "violation_trace",
    "write_violation_trace",
]
