"""Differential oracle: three executions, one answer.

Section 3.4 of the paper argues that any dependence-respecting
interleaving of the transformed task graph computes the same values.
The repo has three independent execution layers that should therefore
agree on the final state of the data store:

1. **serial** — :func:`repro.rapid.executor.execute_serial` in a
   topological order of the graph;
2. **scheduled** — :func:`repro.rapid.executor.execute_schedule`, the
   schedule's own global linearization;
3. **simulated** — the timed
   :class:`~repro.machine.simulator.Simulator`, whose dataflow the
   :class:`DataflowRecorder` instrument observes (which producer-unit
   version each object ends the run with).

Kernels are optional in this codebase (the paper-table graphs are
timing-only), so the oracle always compares final *versions* — the
(object -> last-writing producer unit) map, which the simulator's
consistency machinery also enforces per message — and additionally
compares final *values* whenever the graph carries kernels.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

import numpy as np

from ..machine.simulator import CompiledSchedule, Simulator
from ..machine.spec import UNIT_MACHINE, MachineSpec
from ..obs.instrument import Instrument
from ..rapid.executor import execute_serial, global_order

__all__ = ["DataflowRecorder", "OracleReport", "differential_check", "replay_versions"]


class DataflowRecorder(Instrument):
    """Observe which producer-unit version each object ends a run with.

    Write-write dependences order the EXE events of any two writers of
    one object, so applying the writes in EXE order reproduces the
    simulator's final ``current_version`` map without touching its
    internals.
    """

    def __init__(self, compiled: CompiledSchedule):
        self.compiled = compiled
        self.final: dict[str, str] = {}

    def on_run_begin(self, t, nprocs, capacity, memory_managed) -> None:
        self.final = {}

    def on_exe(self, t0, t1, proc, task) -> None:
        for obj, unit in self.compiled.write_version[task]:
            self.final[obj] = unit


def replay_versions(graph, order) -> dict[str, str]:
    """Final (object -> producer unit) map of replaying ``order``."""
    final: dict[str, str] = {}
    for name in order:
        t = graph.task(name)
        unit = t.commute if t.commute is not None else name
        for obj in t.writes:
            final[obj] = unit
    return final


@dataclass
class OracleReport:
    """Outcome of one differential check."""

    versions_ok: bool
    #: ``None`` when the graph carries no kernels (nothing to compare).
    values_ok: Optional[bool]
    mismatches: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return self.versions_ok and self.values_ok is not False

    def __str__(self) -> str:
        if self.ok:
            values = "skipped (no kernels)" if self.values_ok is None else "ok"
            return f"oracle: versions ok, values {values}"
        return "oracle MISMATCH:\n" + "\n".join(f"  {m}" for m in self.mismatches)


def _values_equal(a, b, rtol: float, atol: float) -> bool:
    try:
        return bool(np.allclose(a, b, rtol=rtol, atol=atol))
    except (TypeError, ValueError):
        return a == b


def differential_check(
    schedule,
    *,
    spec: MachineSpec = UNIT_MACHINE,
    capacity: Optional[int] = None,
    compiled: Optional[CompiledSchedule] = None,
    store_factory: Optional[Callable[[], dict]] = None,
    rtol: float = 1e-9,
    atol: float = 1e-12,
) -> OracleReport:
    """Run the three execution layers and compare their final state.

    ``store_factory`` builds a fresh initial data store per numeric
    execution (required for value comparison when the graph has
    kernels; each layer must start from identical state).  ``capacity``
    defaults to the schedule's ``TOT`` so the timed run is always
    executable.
    """
    if compiled is None:
        compiled = CompiledSchedule(schedule)
    g = compiled.graph
    mismatches: list[str] = []

    serial_order = g.topological_order()
    sched_order = global_order(schedule)
    expect = replay_versions(g, serial_order)
    got_sched = replay_versions(g, sched_order)
    if capacity is None:
        capacity = max(compiled.profile.tot, 1)
    recorder = DataflowRecorder(compiled)
    Simulator(
        spec=spec, capacity=capacity, compiled=compiled, instrument=recorder
    ).run()
    got_sim = recorder.final
    for obj in sorted(expect):
        a, b, c = expect[obj], got_sched.get(obj), got_sim.get(obj)
        if not (a == b == c):
            mismatches.append(
                f"version of {obj!r}: serial={a!r} schedule={b!r} "
                f"simulator={c!r}"
            )
    versions_ok = not mismatches

    values_ok: Optional[bool] = None
    has_kernels = any(t.kernel is not None for t in g.tasks())
    if has_kernels and store_factory is not None:
        store_a = execute_serial(g, store_factory(), serial_order)
        store_b = execute_serial(g, store_factory(), sched_order)
        values_ok = True
        if set(store_a) != set(store_b):
            values_ok = False
            mismatches.append(
                f"store keys differ: {sorted(set(store_a) ^ set(store_b))}"
            )
        else:
            for k in sorted(store_a):
                if not _values_equal(store_a[k], store_b[k], rtol, atol):
                    values_ok = False
                    mismatches.append(
                        f"value of {k!r}: serial={store_a[k]!r} "
                        f"schedule={store_b[k]!r}"
                    )
    return OracleReport(
        versions_ok=versions_ok, values_ok=values_ok, mismatches=mismatches
    )
