"""Export the failing window of a checked run as a Chrome trace.

When an invariant fails mid-run there may be no :class:`SimResult` to
feed the full :mod:`repro.obs.chrome_trace` exporter (strict mode raises
out of ``run()``, a deadlock aborts it).  The
:class:`~repro.conformance.invariants.InvariantChecker` therefore keeps
a bounded window of recent protocol events; this module serialises that
window — per-processor tracks of instant events, with violations marked
on their processor's track — in the Trace Event JSON format, loadable at
https://ui.perfetto.dev like every other trace the repo emits.
"""

from __future__ import annotations

import json
from typing import Optional

#: Simulator seconds -> trace microseconds.
_US = 1e6

__all__ = ["violation_trace", "write_violation_trace"]


def violation_trace(checker, label: str = "conformance window") -> dict:
    """Trace-event document of a checker's recent-event window.

    Ordinary protocol events become thread-scoped instants; violations
    become process-scoped instants (rendered prominently by Perfetto)
    carrying the full violation text in ``args``.
    """
    events: list[dict] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": 0,
            "tid": 0,
            "args": {"name": f"repro conformance ({label})"},
        }
    ]
    for q in range(checker.nprocs):
        events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": 0,
                "tid": q,
                "args": {"name": f"P{q}"},
            }
        )
    body: list[dict] = []
    for t, proc, kind, detail in checker.window:
        ev = {
            "name": kind,
            "cat": "violation" if kind == "VIOLATION" else "protocol",
            "ph": "i",
            "s": "p" if kind == "VIOLATION" else "t",
            "pid": 0,
            "tid": proc,
            "ts": t * _US,
            "args": {"detail": detail},
        }
        body.append(ev)
    body.sort(key=lambda e: e["ts"])
    events.extend(body)
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "schema": "repro-conformance-trace/1",
            "violations": len(checker.violations),
            "window_events": len(checker.window),
        },
    }


def write_violation_trace(
    checker, path: Optional[str] = None, label: str = "conformance window"
) -> str:
    """Serialise :func:`violation_trace`; optionally write to ``path``."""
    text = json.dumps(violation_trace(checker, label=label)) + "\n"
    if path:
        with open(path, "w") as fh:
            fh.write(text)
    return text
