"""Online invariant checking: the paper's proofs as executable checks.

:class:`InvariantChecker` is an :class:`~repro.obs.instrument.Instrument`
that watches one simulated execution and asserts, per event, the
properties Theorem 1 and Definitions 1-6 of the paper promise:

``input-residency``
    No task enters EXE before every remote input object (and every
    synchronisation message) it needs is locally available — the REC
    state's contract (Figure 3(b)).
``landing-space``
    Arriving data lands in allocated volatile space (Definition 3: a
    put may only target space a MAP has allocated and notified).
``slot-overwrite``
    The unbuffered address slot of an ordered processor pair is never
    overwritten before the receiver consumed the previous package
    (Definition 4's one-package-in-flight rule).
``capacity``
    Allocated bytes never exceed the per-processor capacity
    (Definitions 5/6: the MAP plan keeps every prefix within budget).
``suspended-drain``
    Every put suspended for an unknown address is eventually dispatched
    (the END state drains the queue before termination).
``termination``
    Every processor reaches END/DONE — the run terminates (Theorem 1's
    deadlock freedom).

Violations are collected on :attr:`InvariantChecker.violations` (or
raised immediately with ``strict=True``).  The checker also keeps a
bounded window of recent protocol events so a violation can be exported
as a Perfetto-loadable trace of the failing neighbourhood
(:mod:`repro.conformance.vtrace`).

Deadlocks surface as :class:`~repro.errors.DeadlockError` from the
simulator itself; :func:`deadlock_witness` turns the error's structured
wait-for edges into a human-readable report with the blocking cycle
(:func:`find_cycle`) when one exists.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Iterable, Mapping, Optional

from ..errors import DeadlockError, InvariantViolationError
from ..obs.instrument import Instrument

__all__ = [
    "INVARIANTS",
    "InvariantChecker",
    "Violation",
    "deadlock_witness",
    "find_cycle",
]

#: Invariant catalogue: name -> (paper anchor, one-line statement).
INVARIANTS = {
    "input-residency": (
        "Figure 3(b), REC",
        "no task enters EXE before all its remote inputs are resident",
    ),
    "landing-space": (
        "Definition 3",
        "arriving data lands in allocated volatile space",
    ),
    "slot-overwrite": (
        "Definition 4",
        "an address slot is never overwritten before consumption",
    ),
    "capacity": (
        "Definitions 5/6",
        "allocated volatile bytes never exceed the capacity",
    ),
    "suspended-drain": (
        "Figure 3(b), END",
        "every suspended put is eventually dispatched",
    ),
    "termination": (
        "Theorem 1",
        "the run terminates with every processor in END",
    ),
}

_EPS = 1e-9


@dataclass(frozen=True)
class Violation:
    """One failed invariant check."""

    time: float
    proc: int
    #: Key into :data:`INVARIANTS`.
    invariant: str
    detail: str

    @property
    def rule(self) -> str:
        """Static rule code proving the same property (shared registry
        with :mod:`repro.analysis.diagnostics`)."""
        from ..analysis.diagnostics import INVARIANT_RULES

        return INVARIANT_RULES[self.invariant]

    def __str__(self) -> str:
        anchor, _stmt = INVARIANTS[self.invariant]
        return (
            f"[{self.invariant}] t={self.time:g} P{self.proc}: {self.detail} "
            f"({anchor})"
        )


class InvariantChecker(Instrument):
    """Online checker of the protocol invariants of one execution.

    Parameters
    ----------
    compiled:
        The :class:`~repro.machine.simulator.CompiledSchedule` being
        executed (supplies per-task requirement lists).
    strict:
        Raise :class:`~repro.errors.InvariantViolationError` at the
        first violation instead of collecting.
    allow_early_arrival:
        Accept data arriving into unallocated space — legal in the
        steady-state iterative mode (``preknown_addresses=True``), a
        violation in the first-iteration protocol.
    window:
        Number of recent events retained for the failure-trace export.

    One checker instance observes one schedule but any number of runs
    (``on_run_begin`` resets all per-run state); ``violations`` holds
    the most recent run's findings.
    """

    def __init__(
        self,
        compiled,
        strict: bool = False,
        allow_early_arrival: bool = False,
        window: int = 256,
    ):
        self.compiled = compiled
        self.strict = strict
        self.allow_early_arrival = allow_early_arrival
        self._window_size = window
        self.on_run_begin(0.0, compiled.num_procs, 0, True)

    # -- framing -------------------------------------------------------

    def on_run_begin(self, t, nprocs, capacity, memory_managed) -> None:
        self.nprocs = nprocs
        self.capacity = capacity
        self.memory_managed = memory_managed
        self.violations: list[Violation] = []
        #: per processor: resident received contents, as (obj, unit).
        self._resident: list[set] = [set() for _ in range(nprocs)]
        #: per processor: objects with allocated space.
        self._allocated: list[set] = [set() for _ in range(nprocs)]
        #: per processor: sync unit -> arrival time.
        self._sync_at: list[dict] = [dict() for _ in range(nprocs)]
        #: (src, dst) -> send time of the not-yet-consumed package.
        self._slot_unread: dict[tuple[int, int], float] = {}
        self._suspended_out = [0] * nprocs
        self._ended: set[int] = set()
        self._finished = False
        self.window: deque = deque(maxlen=self._window_size)

    def on_run_end(self, parallel_time) -> None:
        self._finished = True
        for q in range(self.nprocs):
            if q not in self._ended:
                self._flag(parallel_time, q, "termination",
                           "run ended but processor never terminated")
            if self._suspended_out[q]:
                self._flag(
                    parallel_time, q, "suspended-drain",
                    f"{self._suspended_out[q]} suspended put(s) never "
                    "dispatched",
                )
        for (src, dst), t0 in sorted(self._slot_unread.items()):
            self._flag(
                parallel_time, src, "slot-overwrite",
                f"package to P{dst} sent at t={t0:g} never consumed",
            )

    # -- protocol events ----------------------------------------------

    def on_exe(self, t0, t1, proc, task) -> None:
        self._note(t0, proc, "EXE", task)
        resident = self._resident[proc]
        sync_at = self._sync_at[proc]
        for req in self.compiled.needs[task]:
            if req[0] == "data":
                if (req[1], req[2]) not in resident:
                    self._flag(
                        t0, proc, "input-residency",
                        f"{task} entered EXE without {req[1]!r}@{req[2]!r}",
                    )
            else:
                ta = sync_at.get(req[1])
                if ta is None or ta > t0 + _EPS:
                    self._flag(
                        t0, proc, "input-residency",
                        f"{task} entered EXE without sync from {req[1]!r}",
                    )

    def on_data_arrive(self, t, proc, obj, unit, src) -> None:
        self._note(t, proc, "ARRIVE", f"{obj}@{unit} from P{src}")
        if (
            self.memory_managed
            and not self.allow_early_arrival
            and obj not in self._allocated[proc]
        ):
            self._flag(
                t, proc, "landing-space",
                f"{obj!r}@{unit!r} arrived with no allocated space",
            )
        self._resident[proc].add((obj, unit))

    def on_sync(self, t_send, t_arrive, proc, dest, unit) -> None:
        self._note(t_send, proc, "SYNC", f"{unit} -> P{dest}")
        prev = self._sync_at[dest].get(unit)
        if prev is None or t_arrive < prev:
            self._sync_at[dest][unit] = t_arrive

    # -- memory --------------------------------------------------------

    def on_alloc(self, t, proc, obj, size, used) -> None:
        self._note(t, proc, "ALLOC", f"{obj} ({size} B, used={used})")
        self._allocated[proc].add(obj)
        if used > self.capacity:
            self._flag(
                t, proc, "capacity",
                f"allocating {obj!r} brings usage to {used} > "
                f"capacity {self.capacity}",
            )

    def on_free(self, t, proc, obj, size, used) -> None:
        self._note(t, proc, "FREE", f"{obj} ({size} B, used={used})")
        self._allocated[proc].discard(obj)
        # The content dies with the space.
        self._resident[proc] = {
            (m, u) for m, u in self._resident[proc] if m != obj
        }

    def on_map(self, t, proc, position, frees, allocs) -> None:
        self._note(
            t, proc, "MAP",
            f"@pos{position} free={len(frees)} alloc={len(allocs)}",
        )

    # -- address packages ---------------------------------------------

    def on_package_send(self, t, proc, dest, naddrs) -> None:
        self._note(t, proc, "PKG-SEND", f"{naddrs} addr -> P{dest}")
        key = (proc, dest)
        prev = self._slot_unread.get(key)
        if prev is not None:
            self._flag(
                t, proc, "slot-overwrite",
                f"package to P{dest} overwrites the one sent at "
                f"t={prev:g} (never consumed)",
            )
        self._slot_unread[key] = t

    def on_package_read(self, t, proc, src, naddrs) -> None:
        self._note(t, proc, "PKG-READ", f"{naddrs} addr from P{src}")
        self._slot_unread.pop((src, proc), None)

    # -- sends ---------------------------------------------------------

    def on_put(self, t_send, t_arrive, proc, dest, obj, unit, nbytes) -> None:
        self._note(t_send, proc, "PUT", f"{obj}@{unit} -> P{dest}")

    def on_put_suspend(self, t, proc, dest, obj, unit, qlen) -> None:
        self._note(t, proc, "SUSPEND", f"{obj}@{unit} -> P{dest} (q={qlen})")
        self._suspended_out[proc] += 1

    def on_put_drain(self, t, proc, dest, obj, qlen) -> None:
        self._note(t, proc, "DRAIN", f"{obj} -> P{dest} (q={qlen})")
        self._suspended_out[proc] -= 1
        if self._suspended_out[proc] < 0:
            self._flag(
                t, proc, "suspended-drain",
                "more puts drained than were ever suspended",
            )

    def on_proc_end(self, t, proc) -> None:
        self._note(t, proc, "END", "terminated")
        self._ended.add(proc)
        if self._suspended_out[proc]:
            self._flag(
                t, proc, "suspended-drain",
                f"terminated with {self._suspended_out[proc]} suspended "
                "put(s) still queued",
            )

    # -- reporting -----------------------------------------------------

    @property
    def ok(self) -> bool:
        return not self.violations

    def report(self) -> str:
        """Human-readable summary of the run's violations."""
        if not self.violations:
            return "all invariants held"
        lines = [f"{len(self.violations)} invariant violation(s):"]
        lines += [f"  {v}" for v in self.violations]
        return "\n".join(lines)

    def _note(self, t, proc, kind, detail) -> None:
        self.window.append((t, proc, kind, detail))

    def _flag(self, t, proc, invariant, detail) -> None:
        v = Violation(time=t, proc=proc, invariant=invariant, detail=detail)
        self.violations.append(v)
        self.window.append((t, proc, "VIOLATION", str(v)))
        if self.strict:
            raise InvariantViolationError(v)


# ---------------------------------------------------------------------
# deadlock witnesses
# ---------------------------------------------------------------------

def find_cycle(wait_for: Mapping[int, Iterable[int]]) -> Optional[list[int]]:
    """A cycle in the wait-for graph, as ``[p0, p1, ..., p0]``;
    ``None`` when the graph is acyclic."""
    graph = {p: sorted(set(deps)) for p, deps in wait_for.items()}
    WHITE, GREY, BLACK = 0, 1, 2
    color: dict[int, int] = dict.fromkeys(graph, WHITE)
    stack: list[int] = []

    def dfs(u: int) -> Optional[list[int]]:
        color[u] = GREY
        stack.append(u)
        for v in graph.get(u, ()):
            if color.get(v, WHITE) == GREY:
                i = stack.index(v)
                return stack[i:] + [v]
            if color.get(v, WHITE) == WHITE and v in graph:
                found = dfs(v)
                if found:
                    return found
        stack.pop()
        color[u] = BLACK
        return None

    for p in graph:
        if color[p] == WHITE:
            found = dfs(p)
            if found:
                return found
    return None


def deadlock_witness(err: DeadlockError) -> str:
    """Render a :class:`~repro.errors.DeadlockError` as a witness report:
    blocked states, per-processor diagnosis and — when the simulator
    attached structured wait-for edges — the blocking cycle."""
    lines = [
        f"DEADLOCK: {err.completed}/{err.total} tasks completed; "
        f"blocked: "
        + ", ".join(f"P{p}:{s}" for p, s in sorted(err.blocked.items()))
    ]
    details = getattr(err, "details", None) or {}
    for q in sorted(details):
        lines.append(f"  P{q}: {details[q]}")
    wait_for = getattr(err, "wait_for", None)
    if wait_for:
        for q in sorted(wait_for):
            deps = ", ".join(f"P{d}" for d in sorted(set(wait_for[q])))
            lines.append(f"  wait-for: P{q} -> {{{deps or '-'}}}")
        cycle = find_cycle(wait_for)
        if cycle:
            lines.append(
                "  cycle: " + " -> ".join(f"P{p}" for p in cycle)
            )
        else:
            lines.append(
                "  no wait-for cycle: progress is blocked by lost or "
                "never-produced events (e.g. an overwritten address slot)"
            )
    return "\n".join(lines)
