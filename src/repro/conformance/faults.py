"""Deterministic, seedable fault injection for the simulator.

The conformance harness stresses the five-state protocol in exactly the
regimes where limited-memory schedulers break: slow or jittery
communication (puts arrive late and out of their usual interleaving),
lazy consumption of address packages (the unbuffered slot of each
ordered processor pair stays busy longer, so MAPs block), asymmetric
processor speeds (receivers fall behind their senders) and memory
tightened down to ``MIN_MEM`` (maximum MAP pressure).  Theorem 1 claims
the protocol stays deadlock-free and data-consistent under *any* such
timing — the invariant checker verifies that claim on faulted runs.

A :class:`FaultSpec` is a frozen description of the perturbation; the
simulator asks it for a run-local :class:`FaultInjector` at the start of
each :meth:`~repro.machine.simulator.Simulator.run`, so repeated runs of
one simulator are bit-identical and a spec can be shared across
simulators.  All randomness comes from one ``random.Random(seed)``
consumed in event order — the simulation itself is deterministic, so a
(spec, schedule, capacity) triple always produces the same execution.

One knob is deliberately protocol-*breaking*: ``overwrite_slots`` makes
a MAP ignore a busy address slot and overwrite the unconsumed package —
the exact bug Definition 4's one-package-in-flight rule prevents.  It
exists so the negative tests can prove the checker actually detects
slot overwrites (and the deadlocks they cause) rather than vacuously
passing.

``capacity_fraction`` is interpreted by the check harness, not the
simulator: it positions the capacity between ``MIN_MEM`` (0.0) and
``TOT`` (1.0) before the run starts.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional

__all__ = ["FAULT_KINDS", "FaultInjector", "FaultSpec", "fault_preset"]


@dataclass(frozen=True)
class FaultSpec:
    """Immutable description of an injected perturbation.

    All sim-level knobs default to the identity; a spec whose sim-level
    knobs are all identity reports ``active == False`` and the simulator
    skips injection entirely (the disabled path stays at engine speed —
    the conformance section of the engine benchmark records the ratio).
    """

    #: Seed of the run-local RNG behind the jitter knobs.
    seed: int = 0
    #: Multiplies the network time of every data put (>= 1 inflates).
    put_latency_factor: float = 1.0
    #: Extra put delay, uniform in ``[0, put_jitter) x`` the put's own
    #: network time (seeded).
    put_jitter: float = 0.0
    #: Multiplies the delay between RA reading an address package and
    #: the sender's slot becoming free (lazy consumption).
    package_consume_factor: float = 1.0
    #: Extra slot-free delay, uniform in ``[0, jitter) x put_latency``.
    package_consume_jitter: float = 0.0
    #: Multiplies task weights (per-processor slowdown).
    slowdown: float = 1.0
    #: Processors the slowdown applies to (``None`` = all).
    slow_procs: Optional[tuple[int, ...]] = None
    #: Protocol-BREAKING: MAPs overwrite busy address slots instead of
    #: blocking.  Exists only to exercise the invariant checker.
    overwrite_slots: bool = False
    #: Harness-level capacity tightening: 0.0 = ``MIN_MEM``, 1.0 =
    #: ``TOT`` (``None`` leaves the caller's capacity untouched).
    capacity_fraction: Optional[float] = None

    @property
    def active(self) -> bool:
        """True when any sim-level knob differs from the identity."""
        return (
            self.put_latency_factor != 1.0
            or self.put_jitter != 0.0
            or self.package_consume_factor != 1.0
            or self.package_consume_jitter != 0.0
            or self.slowdown != 1.0
            or self.overwrite_slots
        )

    def injector(self) -> "FaultInjector":
        """A fresh run-local injector (one per ``Simulator.run``)."""
        return FaultInjector(self)


class FaultInjector:
    """Run-local fault state: the RNG stream plus the spec's knobs.

    The simulator calls the ``*_delay`` methods with the unperturbed
    base time of the action, so all knobs scale with the machine spec
    instead of assuming unit costs.
    """

    __slots__ = (
        "_rng", "_put_factor", "_put_jitter", "_consume_factor",
        "_consume_jitter", "_slowdown", "_slow_procs", "overwrite_slots",
    )

    def __init__(self, spec: FaultSpec):
        self._rng = random.Random(spec.seed)
        self._put_factor = spec.put_latency_factor
        self._put_jitter = spec.put_jitter
        self._consume_factor = spec.package_consume_factor
        self._consume_jitter = spec.package_consume_jitter
        self._slowdown = spec.slowdown
        self._slow_procs = (
            None if spec.slow_procs is None else frozenset(spec.slow_procs)
        )
        self.overwrite_slots = spec.overwrite_slots

    def put_delay(self, src: int, dest: int, base: float) -> float:
        """Extra network time of one data put whose unperturbed network
        time is ``base``."""
        extra = base * (self._put_factor - 1.0)
        if self._put_jitter:
            extra += self._rng.random() * self._put_jitter * base
        return extra

    def consume_delay(self, proc: int, src: int, base: float) -> float:
        """Extra delay before the ``src -> proc`` slot frees after RA
        consumed the package (``base`` is the unperturbed latency)."""
        extra = base * (self._consume_factor - 1.0)
        if self._consume_jitter:
            extra += self._rng.random() * self._consume_jitter * base
        return extra

    def exe_factor(self, proc: int) -> float:
        """Task-weight multiplier of ``proc``."""
        if self._slow_procs is None or proc in self._slow_procs:
            return self._slowdown
        return 1.0


#: Named presets of the fault matrix (see ``docs/conformance.md``).
FAULT_KINDS = ("delay", "jitter", "consume", "slow", "tighten", "overwrite")


def fault_preset(kind: str, seed: int = 0) -> FaultSpec:
    """A canonical :class:`FaultSpec` per fault kind.

    ``delay``     puts take 8x their network time;
    ``jitter``    puts gain up to 4x extra seeded latency;
    ``consume``   address slots free 10x late, with jitter;
    ``slow``      processor 0 computes at one-third speed;
    ``tighten``   capacity pinned to ``MIN_MEM`` (harness-level);
    ``overwrite`` protocol-breaking slot overwrite (negative testing).
    """
    if kind == "delay":
        return FaultSpec(seed=seed, put_latency_factor=8.0)
    if kind == "jitter":
        return FaultSpec(seed=seed, put_jitter=4.0)
    if kind == "consume":
        return FaultSpec(
            seed=seed, package_consume_factor=10.0, package_consume_jitter=4.0
        )
    if kind == "slow":
        return FaultSpec(seed=seed, slowdown=3.0, slow_procs=(0,))
    if kind == "tighten":
        return FaultSpec(seed=seed, capacity_fraction=0.0)
    if kind == "overwrite":
        return FaultSpec(
            seed=seed,
            overwrite_slots=True,
            package_consume_factor=25.0,
            package_consume_jitter=8.0,
        )
    raise ValueError(f"unknown fault kind {kind!r}; known: {FAULT_KINDS}")
