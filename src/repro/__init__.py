"""repro — reproduction of Fu & Yang, *Space and Time Efficient Execution
of Parallel Irregular Computations* (PPoPP 1997).

The package provides:

* :mod:`repro.graph` — task/data-object parallelism model and the
  inspector-style graph builder;
* :mod:`repro.core` — the paper's contribution: the memory model
  (Definitions 1-7), RCP/MPO/DTS ordering heuristics, DSC clustering and
  the MAP (memory allocation point) planner;
* :mod:`repro.machine` — a discrete-event simulator of a distributed
  memory machine with RMA communication (the Cray-T3D stand-in),
  executing schedules under the five-state active memory management
  protocol of section 3;
* :mod:`repro.rapid` — the RAPID-style runtime API (Figure 1 pipeline);
* :mod:`repro.sparse` — sparse Cholesky / LU application substrates;
* :mod:`repro.experiments` — regeneration of every table and figure of
  the paper's evaluation.
"""

from . import errors
from .graph import DataObject, GraphBuilder, Task, TaskGraph
from .core import (
    CommModel,
    Placement,
    Schedule,
    analyze_memory,
    cyclic_placement,
    dts_order,
    gantt,
    mpo_order,
    owner_compute_assignment,
    plan_maps,
    rcp_order,
)

__version__ = "1.0.0"

__all__ = [
    "CommModel",
    "DataObject",
    "GraphBuilder",
    "Placement",
    "Schedule",
    "Task",
    "TaskGraph",
    "analyze_memory",
    "cyclic_placement",
    "dts_order",
    "errors",
    "gantt",
    "mpo_order",
    "owner_compute_assignment",
    "plan_maps",
    "rcp_order",
    "__version__",
]
