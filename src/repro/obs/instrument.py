"""The instrument hook interface driven by the simulator's event loop.

An :class:`Instrument` observes one simulated execution through *typed*
events: the :meth:`~repro.machine.simulator.Simulator.run` loop calls
one hook per protocol action — state transitions (REC/SND/MAP/END
blocking, task execution, processor termination), RA/CQ operations,
data puts (issued / suspended / drained), address-package traffic
(send / block / consume) and MAP free/allocate decisions.

Design rules
------------

* **Null-object pattern.**  The base class implements every hook as a
  no-op, so an instrument overrides only the events it cares about and
  the simulator never branches on *which* hooks exist — dispatching an
  event is one attribute call.
* **Zero overhead when disabled.**  The simulator hoists a single
  ``observing`` boolean out of its hot loop (computed once per run from
  :attr:`Instrument.enabled`); with no instrument attached the per-event
  cost is one local-bool test and **no allocation** — ``trace=False`` /
  ``metrics=False`` runs stay at the uninstrumented engine's speed (the
  engine benchmark records this).
* **Run-local state.**  :meth:`on_run_begin` must (re)initialise all
  per-run state so one instrument instance can observe many runs.

The full taxonomy is the :data:`HOOKS` tuple; ``docs/observability.md``
describes each event and its arguments.
"""

from __future__ import annotations

#: Every hook of the instrument interface, in taxonomy order.
HOOKS = (
    "on_run_begin",
    "on_state",
    "on_exe",
    "on_overhead",
    "on_map",
    "on_alloc",
    "on_free",
    "on_put",
    "on_put_suspend",
    "on_put_drain",
    "on_sync",
    "on_package_send",
    "on_package_block",
    "on_package_read",
    "on_data_arrive",
    "on_proc_end",
    "on_run_end",
)

#: Overhead categories reported by :meth:`Instrument.on_overhead` —
#: the CPU-cost buckets of the five-state protocol.
OVERHEAD_KINDS = ("map", "package", "ra", "send")


class Instrument:
    """Typed observer of one simulated execution (null-object base).

    Every hook is a no-op here; subclass and override the events you
    need.  Times are simulator seconds; ``proc``/``dest``/``src`` are
    processor indices.  Hooks receiving lists (``on_map``) must treat
    them as read-only — they alias the simulator's plan.
    """

    #: The simulator skips all dispatch when this is False (checked once
    #: per run, not per event).
    enabled: bool = True

    # -- run framing ---------------------------------------------------
    def on_run_begin(self, t: float, nprocs: int, capacity: int,
                     memory_managed: bool) -> None:
        """A run starts; (re)initialise all per-run state."""

    def on_run_end(self, parallel_time: float) -> None:
        """The run finished; ``parallel_time`` is the makespan."""

    # -- protocol state machine ---------------------------------------
    def on_state(self, t: float, proc: int, state: str) -> None:
        """``proc`` enters protocol state ``state`` (``"REC"``,
        ``"SND"``, ``"MAP"`` or ``"END"``; EXE is conveyed by
        :meth:`on_exe`, termination by :meth:`on_proc_end`).  REC/MAP/END
        mark *blocking* waits."""

    def on_exe(self, t0: float, t1: float, proc: int, task: str) -> None:
        """Task computation interval (the EXE state)."""

    def on_overhead(self, t0: float, t1: float, proc: int, kind: str) -> None:
        """Protocol CPU work on ``proc``; ``kind`` is one of
        :data:`OVERHEAD_KINDS`."""

    def on_proc_end(self, t: float, proc: int) -> None:
        """``proc`` drained its queues and terminated (DONE)."""

    # -- MAP decisions and memory -------------------------------------
    def on_map(self, t: float, proc: int, position: int,
               frees: list, allocs: list) -> None:
        """A memory allocation point executes before ``position``."""

    def on_alloc(self, t: float, proc: int, obj: str, size: int,
                 used: int) -> None:
        """``obj`` allocated; ``used`` is the allocator's total after."""

    def on_free(self, t: float, proc: int, obj: str, size: int,
                used: int) -> None:
        """``obj`` freed; ``used`` is the allocator's total after."""

    # -- data movement -------------------------------------------------
    def on_put(self, t_send: float, t_arrive: float, proc: int, dest: int,
               obj: str, unit: str, nbytes: int) -> None:
        """A data put issued (address known): departs ``t_send``,
        lands on ``dest`` at ``t_arrive``."""

    def on_put_suspend(self, t: float, proc: int, dest: int, obj: str,
                       unit: str, qlen: int) -> None:
        """A put whose remote address is unknown joins the suspended
        sending queue (``qlen`` = queue length after enqueuing)."""

    def on_put_drain(self, t: float, proc: int, dest: int, obj: str,
                     qlen: int) -> None:
        """A suspended put dispatched by CQ after its address became
        known (``qlen`` = suspended sends still queued)."""

    def on_sync(self, t_send: float, t_arrive: float, proc: int, dest: int,
                unit: str) -> None:
        """A synchronisation-only message (no payload)."""

    def on_data_arrive(self, t: float, proc: int, obj: str, unit: str,
                       src: int) -> None:
        """A data put landed in ``proc``'s allocated volatile space."""

    # -- address packages ----------------------------------------------
    def on_package_send(self, t: float, proc: int, dest: int,
                        naddrs: int) -> None:
        """An address package with ``naddrs`` fresh addresses sent."""

    def on_package_block(self, t: float, proc: int, dest: int,
                         naddrs: int) -> None:
        """A MAP blocked: ``dest`` has not consumed the previous package
        (the unbuffered slot of the ordered pair is busy)."""

    def on_package_read(self, t: float, proc: int, src: int,
                        naddrs: int) -> None:
        """RA consumed a package from ``src``, freeing its slot."""


class _NullInstrument(Instrument):
    """Explicitly disabled instrument: attaching it is exactly as cheap
    as attaching nothing (the simulator sees ``enabled = False`` and
    skips all dispatch)."""

    enabled = False


#: Shared disabled instrument (safe: it holds no state).
NULL_INSTRUMENT = _NullInstrument()


class MultiInstrument(Instrument):
    """Composite instrument: forwards every event to each child.

    Disabled children are dropped at construction; a composite with no
    enabled children is itself disabled.
    """

    def __init__(self, children) -> None:
        self.children: tuple = tuple(c for c in children if c.enabled)
        self.enabled = bool(self.children)


def _forwarder(name):
    def forward(self, *args):
        for child in self.children:
            getattr(child, name)(*args)

    forward.__name__ = name
    forward.__qualname__ = f"MultiInstrument.{name}"
    forward.__doc__ = f"Forward ``{name}`` to every child instrument."
    return forward


for _name in HOOKS:
    setattr(MultiInstrument, _name, _forwarder(_name))
del _name
