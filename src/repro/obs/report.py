"""Self-contained HTML telemetry report (SVG via :mod:`repro.core.viz`).

One instrumented run renders to a single HTML file with no external
assets: a state-residency stacked bar per processor, the per-processor
allocated-memory step curves against the capacity line, the queue-depth
histograms, and the counter table.  The SVG building blocks are the
generic helpers of :mod:`repro.core.viz`, so the report shares the
visual language of the Gantt / ``MEM_REQ`` figures.
"""

from __future__ import annotations

import html
from typing import Optional

from ..core.viz import stacked_bars_svg, step_curves_svg
from .instruments import RESIDENCY_KEYS
from .metrics import build_metrics

#: Fixed residency colours so every report reads the same.
_RESIDENCY_COLORS = {
    "exe": "#59a14f",
    "map": "#e15759",
    "package": "#f28e2b",
    "ra": "#edc948",
    "send": "#4e79a7",
    "idle": "#bab0ac",
    "done": "#eeeeee",
}


def _table(headers: list[str], rows: list[list]) -> str:
    head = "".join(f"<th>{html.escape(str(h))}</th>" for h in headers)
    body = "".join(
        "<tr>" + "".join(f"<td>{html.escape(str(c))}</td>" for c in row) + "</tr>"
        for row in rows
    )
    return f"<table><tr>{head}</tr>{body}</table>"


def html_report(result, path: Optional[str] = None) -> str:
    """Render the telemetry report of an instrumented run.

    Requires ``Simulator(..., metrics=True)``; raises ``ValueError``
    otherwise.  Returns the HTML text (optionally written to ``path``).
    """
    suite = getattr(result, "telemetry", None)
    if suite is None:
        raise ValueError(
            "html_report needs an instrumented run: Simulator(..., metrics=True)"
        )
    metrics = result.metrics if result.metrics is not None else build_metrics(
        result, suite
    )
    nprocs = len(result.stats)

    residency_rows = [
        (f"P{q}", {k: metrics["per_proc"][q]["residency"][k] for k in RESIDENCY_KEYS})
        for q in range(nprocs)
    ]
    residency_svg = stacked_bars_svg(
        residency_rows,
        colors=_RESIDENCY_COLORS,
        title=f"State residency (PT = {result.parallel_time:g})",
    )
    mem_series = [
        (f"P{q}", [(t, float(used)) for t, used in suite.memory.samples[q]])
        for q in range(nprocs)
    ]
    mem_svg = step_curves_svg(
        mem_series,
        hlines=(("capacity", float(result.capacity)),),
        title="Allocated volatile+permanent bytes per processor",
        x_max=result.parallel_time or None,
    )

    summary = metrics["summary"]
    summary_tbl = _table(
        ["metric", "value"],
        [[k, summary[k]] for k in sorted(summary)],
    )
    counter_tbl = _table(
        ["counter", "count"],
        [[k, v] for k, v in metrics["counters"].items()],
    )
    proc_tbl = _table(
        ["proc", "tasks", "maps", "map_overhead_frac", "hwm", "predicted_hwm",
         "max_suspq", "finish"],
        [
            [
                r["proc"], r["num_tasks"], r["num_maps"],
                f"{r['map_overhead_frac']:.4f}", r["hwm"],
                r["predicted_hwm"], r["max_suspq"], f"{r['finish_time']:g}",
            ]
            for r in metrics["per_proc"]
        ],
    )
    queue_tbl = _table(
        ["suspended-queue depth", "occurrences"],
        metrics["queues"]["suspended_hist"],
    )
    block_tbl = _table(
        ["pending packages at block", "occurrences"],
        metrics["queues"]["package_block_hist"],
    )

    doc = f"""<!DOCTYPE html>
<html><head><meta charset="utf-8">
<title>repro telemetry — {html.escape(result.schedule_label)}</title>
<style>
 body {{ font-family: monospace; margin: 24px; color: #222; }}
 table {{ border-collapse: collapse; margin: 8px 0 20px; }}
 td, th {{ border: 1px solid #ccc; padding: 2px 8px; text-align: right; }}
 th {{ background: #f4f4f4; }}
 h2 {{ margin-top: 28px; }}
</style></head><body>
<h1>Telemetry: {html.escape(result.schedule_label)}</h1>
<p>capacity = {result.capacity} · memory_managed = {result.memory_managed}
 · parallel_time = {result.parallel_time:g}
 · map_overhead_frac = {summary["map_overhead_frac"]:.4f}</p>
<h2>State residency</h2>
{residency_svg}
<h2>Memory timeline</h2>
{mem_svg}
<h2>Per-processor metrics</h2>
{proc_tbl}
<h2>Summary</h2>
{summary_tbl}
<h2>Counters</h2>
{counter_tbl}
<h2>Queue depths</h2>
{queue_tbl}
{block_tbl}
</body></html>
"""
    if path:
        with open(path, "w") as fh:
            fh.write(doc)
    return doc
