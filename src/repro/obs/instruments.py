"""Built-in instruments: residency, memory, queues, counters, timeline.

Each class observes one axis of the execution:

* :class:`StateResidency` — where each processor's wall-clock goes:
  compute, the MAP-protocol overhead buckets (``map``/``package``/
  ``ra``), send overheads, blocked/idle time and post-termination slack.
  Per processor the categories sum *exactly* to the run's parallel time
  (floating-point summation error only) — the accounting identity the
  tests assert to 1e-9.
* :class:`MemoryTimeline` — the allocated-bytes step curve of every
  processor with its high-water mark; for memory-managed runs the mark
  must equal the static prediction
  (:meth:`repro.core.maps.MapPlan.predicted_peaks`).
* :class:`QueueDepth` — suspended-sending-queue depth and address-slot
  blocking histograms (the ``O(e)`` worst case of section 3.3).
* :class:`Counters` — monotonic event counts.
* :class:`Timeline` — per-processor activity slices, blocked-state
  intervals and put flows: the raw material of the Chrome-trace and
  HTML exporters.

:class:`MetricsSuite` bundles all five behind one instrument — it is
what ``Simulator(metrics=True)`` attaches.
"""

from __future__ import annotations

from typing import Optional

from .instrument import Instrument, MultiInstrument, OVERHEAD_KINDS

#: Residency categories, in reporting order.  ``idle`` is blocked time
#: (REC/MAP/END waits); ``done`` is slack between a processor's own
#: finish and the run's parallel time.
RESIDENCY_KEYS = ("exe",) + OVERHEAD_KINDS + ("idle", "done")

#: The overhead buckets charged to the memory-management scheme itself
#: (MAP actions + package assembly + RA reads; sends happen in the
#: baseline too).
MAP_OVERHEAD_KINDS = ("map", "package", "ra")


class StateResidency(Instrument):
    """Per-processor time-in-state breakdown."""

    def __init__(self) -> None:
        self.on_run_begin(0.0, 0, 0, True)

    def on_run_begin(self, t, nprocs, capacity, memory_managed) -> None:
        self.nprocs = nprocs
        self.exe = [0.0] * nprocs
        self.overhead = {k: [0.0] * nprocs for k in OVERHEAD_KINDS}
        self.finish = [0.0] * nprocs
        self.parallel_time = 0.0

    def on_exe(self, t0, t1, proc, task) -> None:
        self.exe[proc] += t1 - t0

    def on_overhead(self, t0, t1, proc, kind) -> None:
        self.overhead[kind][proc] += t1 - t0

    def on_proc_end(self, t, proc) -> None:
        self.finish[proc] = t

    def on_run_end(self, parallel_time) -> None:
        self.parallel_time = parallel_time

    def residency(self, proc: int) -> dict[str, float]:
        """Seconds per category; values sum to ``parallel_time``."""
        out = {"exe": self.exe[proc]}
        for k in OVERHEAD_KINDS:
            out[k] = self.overhead[k][proc]
        busy = out["exe"] + sum(out[k] for k in OVERHEAD_KINDS)
        out["idle"] = self.finish[proc] - busy
        out["done"] = self.parallel_time - self.finish[proc]
        return out

    def fractions(self, proc: int) -> dict[str, float]:
        pt = self.parallel_time
        res = self.residency(proc)
        if pt <= 0.0:
            return dict.fromkeys(res, 0.0)
        return {k: v / pt for k, v in res.items()}

    def map_overhead(self, proc: int) -> float:
        """Seconds of memory-management overhead (MAP + package + RA)."""
        return sum(self.overhead[k][proc] for k in MAP_OVERHEAD_KINDS)

    def map_overhead_frac(self, proc: Optional[int] = None) -> float:
        """MAP-protocol overhead as a fraction of parallel time; with
        ``proc=None``, the machine-wide fraction (total overhead over
        ``nprocs * parallel_time``)."""
        pt = self.parallel_time
        if pt <= 0.0 or self.nprocs == 0:
            return 0.0
        if proc is not None:
            return self.map_overhead(proc) / pt
        total = sum(self.map_overhead(q) for q in range(self.nprocs))
        return total / (self.nprocs * pt)


class MemoryTimeline(Instrument):
    """Allocated-bytes step curve per processor, from alloc/free events."""

    def __init__(self) -> None:
        self.on_run_begin(0.0, 0, 0, True)

    def on_run_begin(self, t, nprocs, capacity, memory_managed) -> None:
        self.capacity = capacity
        #: per processor: [(time, used-after-op), ...] in event order.
        self.samples: list[list[tuple[float, int]]] = [[] for _ in range(nprocs)]

    def on_alloc(self, t, proc, obj, size, used) -> None:
        self.samples[proc].append((t, used))

    def on_free(self, t, proc, obj, size, used) -> None:
        self.samples[proc].append((t, used))

    def high_water(self, proc: int) -> int:
        """Peak allocated bytes observed on ``proc`` (0 if untouched)."""
        return max((used for _t, used in self.samples[proc]), default=0)

    def high_waters(self) -> list[int]:
        return [self.high_water(q) for q in range(len(self.samples))]


class QueueDepth(Instrument):
    """Suspended-send queue depth and address-slot blocking histograms."""

    def __init__(self) -> None:
        self.on_run_begin(0.0, 0, 0, True)

    def on_run_begin(self, t, nprocs, capacity, memory_managed) -> None:
        self.max_suspq = [0] * nprocs
        #: histogram: queue depth after an enqueue -> occurrences.
        self.suspq_hist: dict[int, int] = {}
        self.package_blocks = [0] * nprocs
        #: histogram: pending-package count at a blocked MAP -> occurrences.
        self.block_hist: dict[int, int] = {}

    def on_put_suspend(self, t, proc, dest, obj, unit, qlen) -> None:
        if qlen > self.max_suspq[proc]:
            self.max_suspq[proc] = qlen
        self.suspq_hist[qlen] = self.suspq_hist.get(qlen, 0) + 1

    def on_package_block(self, t, proc, dest, naddrs) -> None:
        self.package_blocks[proc] += 1
        self.block_hist[naddrs] = self.block_hist.get(naddrs, 0) + 1

    @property
    def max_suspended(self) -> int:
        """Deepest suspended queue seen on any processor."""
        return max(self.max_suspq, default=0)


class Counters(Instrument):
    """Monotonic event counts for the whole run."""

    FIELDS = (
        "tasks", "maps", "allocs", "frees", "puts", "puts_suspended",
        "puts_drained", "syncs", "data_arrivals", "packages_sent",
        "packages_read", "package_blocks",
    )

    def __init__(self) -> None:
        self.on_run_begin(0.0, 0, 0, True)

    def on_run_begin(self, t, nprocs, capacity, memory_managed) -> None:
        self.counts = dict.fromkeys(self.FIELDS, 0)

    def on_exe(self, t0, t1, proc, task) -> None:
        self.counts["tasks"] += 1

    def on_map(self, t, proc, position, frees, allocs) -> None:
        self.counts["maps"] += 1

    def on_alloc(self, t, proc, obj, size, used) -> None:
        self.counts["allocs"] += 1

    def on_free(self, t, proc, obj, size, used) -> None:
        self.counts["frees"] += 1

    def on_put(self, t_send, t_arrive, proc, dest, obj, unit, nbytes) -> None:
        self.counts["puts"] += 1

    def on_put_suspend(self, t, proc, dest, obj, unit, qlen) -> None:
        self.counts["puts_suspended"] += 1

    def on_put_drain(self, t, proc, dest, obj, qlen) -> None:
        self.counts["puts_drained"] += 1

    def on_sync(self, t_send, t_arrive, proc, dest, unit) -> None:
        self.counts["syncs"] += 1

    def on_data_arrive(self, t, proc, obj, unit, src) -> None:
        self.counts["data_arrivals"] += 1

    def on_package_send(self, t, proc, dest, naddrs) -> None:
        self.counts["packages_sent"] += 1

    def on_package_block(self, t, proc, dest, naddrs) -> None:
        self.counts["package_blocks"] += 1

    def on_package_read(self, t, proc, src, naddrs) -> None:
        self.counts["packages_read"] += 1


class Timeline(Instrument):
    """Per-processor activity slices, blocked intervals and put flows.

    This is the exporter feed: activity slices are ``(t0, t1, name,
    cat)`` with ``cat`` one of ``exe``/``map``/``package``/``ra``/
    ``send``; blocked-state intervals are derived from the REC/MAP/END
    transition marks; puts keep both endpoints so the Chrome exporter
    can draw flow arrows between tracks.
    """

    #: Blocked protocol states rendered as intervals.
    BLOCKED = ("REC", "MAP", "END")

    def __init__(self) -> None:
        self.on_run_begin(0.0, 0, 0, True)

    def on_run_begin(self, t, nprocs, capacity, memory_managed) -> None:
        self.nprocs = nprocs
        self.activity: list[list[tuple[float, float, str, str]]] = [
            [] for _ in range(nprocs)
        ]
        self.marks: list[list[tuple[float, str]]] = [[] for _ in range(nprocs)]
        #: (t_send, t_arrive, src, dest, obj)
        self.puts: list[tuple[float, float, int, int, str]] = []
        #: (t, proc, position, nfrees, nallocs)
        self.map_points: list[tuple[float, int, int, int, int]] = []
        self.finish = [0.0] * nprocs
        self.parallel_time = 0.0

    def on_exe(self, t0, t1, proc, task) -> None:
        self.activity[proc].append((t0, t1, task, "exe"))

    def on_overhead(self, t0, t1, proc, kind) -> None:
        self.activity[proc].append((t0, t1, kind.upper(), kind))

    def on_state(self, t, proc, state) -> None:
        if state in self.BLOCKED:
            self.marks[proc].append((t, state))

    def on_map(self, t, proc, position, frees, allocs) -> None:
        self.map_points.append((t, proc, position, len(frees), len(allocs)))

    def on_put(self, t_send, t_arrive, proc, dest, obj, unit, nbytes) -> None:
        self.puts.append((t_send, t_arrive, proc, dest, obj))

    def on_proc_end(self, t, proc) -> None:
        self.finish[proc] = t

    def on_run_end(self, parallel_time) -> None:
        self.parallel_time = parallel_time

    def blocked_intervals(self, proc: int) -> list[tuple[float, float, str]]:
        """Blocked-state intervals ``(t0, t1, state)`` of ``proc``.

        A mark opens an interval; it closes at the next activity slice,
        the next *different* state mark, or the processor's finish time.
        Repeated same-state marks with no activity in between (re-checks
        of a still-blocked processor) extend the open interval.
        """
        acts = self.activity[proc]
        marks = self.marks[proc]
        out: list[tuple[float, float, str]] = []
        ai = 0
        open_t: Optional[float] = None
        open_state: Optional[str] = None

        def close(end: float) -> None:
            nonlocal open_t, open_state
            if open_t is not None and end > open_t:
                out.append((open_t, end, open_state))
            open_t = open_state = None

        for t, state in marks:
            # Activity that started since the mark closes the open interval.
            while ai < len(acts) and acts[ai][0] <= t:
                if open_t is not None and acts[ai][0] > open_t:
                    close(acts[ai][0])
                ai += 1
            if open_t is not None:
                if state == open_state:
                    continue  # still blocked the same way
                close(t)
            open_t, open_state = t, state
        if open_t is not None:
            nxt = acts[ai][0] if ai < len(acts) else self.finish[proc]
            close(max(nxt, open_t))
        return out


class MetricsSuite(MultiInstrument):
    """The standard instrument bundle behind ``Simulator(metrics=True)``:
    residency + memory + queues + counters + timeline, addressable by
    name."""

    def __init__(self) -> None:
        self.residency = StateResidency()
        self.memory = MemoryTimeline()
        self.queues = QueueDepth()
        self.counters = Counters()
        self.timeline = Timeline()
        super().__init__(
            (self.residency, self.memory, self.queues, self.counters,
             self.timeline)
        )
