"""Versioned, JSON-serialisable metrics documents.

:func:`build_metrics` flattens a :class:`~repro.obs.instruments.MetricsSuite`
plus the :class:`~repro.machine.simulator.SimResult` it observed into a
plain-``dict`` document (schema :data:`METRICS_SCHEMA`) containing only
JSON-native types, so ``from_json(to_json(doc)) == doc`` holds exactly.

Document layout::

    schema            "repro-metrics/1"
    schedule          label of the executed schedule
    parallel_time     makespan (s)
    task_finish_time  last task completion (s)
    capacity / memory_managed / num_procs
    counters          monotonic event counts (Counters.FIELDS)
    queues            {"suspended_hist": [[depth, n], ...],
                       "package_block_hist": [[pending, n], ...]}
    per_proc          one record per processor (residency seconds and
                      fractions, map_overhead_frac, hwm/predicted_hwm,
                      max_suspq, counters)
    summary           machine-wide rollups (map_overhead_frac, max_hwm,
                      max_suspq, utilization, ...)

The per-processor ``residency`` values sum to ``parallel_time`` (to
floating-point roundoff): the accounting identity behind the paper's
overhead tables.
"""

from __future__ import annotations

import json
from typing import Optional

from .instruments import RESIDENCY_KEYS, MetricsSuite

#: Version tag of the metrics document format.
METRICS_SCHEMA = "repro-metrics/1"


def _hist(d: dict[int, int]) -> list[list[int]]:
    return [[k, d[k]] for k in sorted(d)]


def build_metrics(result, suite: MetricsSuite) -> dict:
    """Flatten ``suite``'s observations of ``result`` into a document."""
    pt = result.parallel_time
    residency = suite.residency
    predicted: Optional[list[int]] = (
        result.plan.predicted_peaks() if result.plan is not None else None
    )
    per_proc = []
    for q, st in enumerate(result.stats):
        res = residency.residency(q)
        frac = residency.fractions(q)
        hwm = suite.memory.high_water(q)
        per_proc.append(
            {
                "proc": q,
                "num_tasks": st.num_tasks,
                "num_maps": st.num_maps,
                "finish_time": st.finish_time,
                "residency": {k: res[k] for k in RESIDENCY_KEYS},
                "residency_frac": {k: frac[k] for k in RESIDENCY_KEYS},
                "map_overhead_frac": residency.map_overhead_frac(q),
                "hwm": hwm,
                "predicted_hwm": None if predicted is None else predicted[q],
                "max_suspq": suite.queues.max_suspq[q],
                "suspended_sends": st.suspended_sends,
                "package_blocks": suite.queues.package_blocks[q],
                "data_msgs_sent": st.data_msgs_sent,
                "packages_sent": st.packages_sent,
                "packages_read": st.packages_read,
            }
        )
    hwms = suite.memory.high_waters()
    summary = {
        "map_overhead_frac": residency.map_overhead_frac(),
        "max_hwm": max(hwms, default=0),
        "max_suspq": suite.queues.max_suspended,
        "utilization": result.utilization,
        "idle_frac": (
            sum(residency.residency(q)["idle"] for q in range(len(result.stats)))
            / (len(result.stats) * pt)
            if pt > 0 and result.stats
            else 0.0
        ),
        "hwm_matches_prediction": (
            None if predicted is None else hwms == predicted
        ),
    }
    return {
        "schema": METRICS_SCHEMA,
        "schedule": result.schedule_label,
        "parallel_time": pt,
        "task_finish_time": result.task_finish_time,
        "capacity": result.capacity,
        "memory_managed": result.memory_managed,
        "num_procs": len(result.stats),
        "counters": dict(suite.counters.counts),
        "queues": {
            "suspended_hist": _hist(suite.queues.suspq_hist),
            "package_block_hist": _hist(suite.queues.block_hist),
        },
        "per_proc": per_proc,
        "summary": summary,
    }


def to_json(metrics: dict, path: Optional[str] = None) -> str:
    """Serialise a metrics document; optionally write it to ``path``."""
    text = json.dumps(metrics, indent=2, sort_keys=False) + "\n"
    if path:
        with open(path, "w") as fh:
            fh.write(text)
    return text


def from_json(text: str) -> dict:
    """Parse a metrics document, checking the schema tag."""
    doc = json.loads(text)
    schema = doc.get("schema")
    if schema != METRICS_SCHEMA:
        raise ValueError(
            f"unsupported metrics schema {schema!r} (expected {METRICS_SCHEMA!r})"
        )
    return doc
