"""Structured cross-process tracing for the sweep runtime.

The supervised sweep executor (:mod:`repro.experiments.runtime`) and its
worker processes each append events to their own JSONL *shard* file
(schema ``repro-runtime-trace/1``) — group dispatch, attempt start and
finish, retry with backoff, timeout, pool teardown, crash quarantine,
structured cell failures, checkpoint shard commits, resume cache hits
and engine introspection counters.  One shard per process means the
files are append-only with no cross-process locking; the merger
(:mod:`repro.obs.sweep_trace`) folds all shards into a single
Perfetto-loadable trace with one track per pid.

Clock discipline
----------------
Every event timestamp is a **monotonic-clock offset** (``t`` seconds
since the shard was opened); the shard *header* carries a single
wall-clock anchor (``wall0``) so the merger can align shards from
different processes (``wall = wall0 + t``).  ``tools/lint_rules.py``
(rule ``wallclock-span``) forbids ``time.time()``/``datetime.now()``
everywhere else under ``src/repro/`` — this module and the supervised
runtime are the only places allowed to touch the wall clock.

Cost discipline
---------------
Tracing is strictly opt-in: the supervised executor takes
``tracer=None`` by default and every emit site is guarded by an
``is None`` test, so a sweep without ``--obs-dir`` performs **zero**
extra syscalls on the hot path and its CSV stays byte-identical.

The module also holds the shared progress/summary helpers: the
``--progress`` live ticker (:class:`SweepProgress`) consumes exactly
the same event stream as the JSONL tracer, and the final stderr summary
(:func:`status_counts` / :func:`format_summary`) is the single source
of truth the CLI uses whether or not observability is on.
"""

from __future__ import annotations

import json
import os
import pathlib
import sys
import time
from typing import Optional, Sequence, TextIO

__all__ = [
    "SCHEMA",
    "RUNTIME_TRACE_SCHEMA",
    "SHARD_GLOB",
    "MultiSink",
    "RuntimeTracer",
    "SweepProgress",
    "format_summary",
    "status_counts",
]

#: Runtime-trace schema identifier, written into every shard header.
SCHEMA = "repro-runtime-trace/1"

#: Package-level alias (``repro.obs.RUNTIME_TRACE_SCHEMA``).
RUNTIME_TRACE_SCHEMA = SCHEMA

#: Glob matching the shard files of one observability directory.
SHARD_GLOB = "runtime-*.jsonl"


class RuntimeTracer:
    """Append-only JSONL event writer for one process.

    Each instance owns one shard file named
    ``runtime-<role>-<pid>.jsonl``; opening the tracer appends a header
    record carrying the schema, role, pid and the monotonic/wall clock
    anchors.  Re-opening the same path (a worker process surviving
    across sweeps, or a recycled pid) appends a fresh header — the
    merger processes headers in sequence, so every event is interpreted
    under the anchors that were current when it was written.

    Events are flushed line-by-line: a SIGKILLed worker loses at most
    the event it was writing, never the shard.
    """

    def __init__(self, directory: str | os.PathLike, role: str = "supervisor"):
        self.dir = pathlib.Path(directory)
        self.dir.mkdir(parents=True, exist_ok=True)
        self.role = role
        self.pid = os.getpid()
        self.path = self.dir / f"runtime-{role}-{self.pid}.jsonl"
        self._mono0 = time.monotonic()
        self._fh: Optional[TextIO] = open(self.path, "a")
        header = {
            "kind": "header",
            "schema": SCHEMA,
            "role": role,
            "pid": self.pid,
            "wall0": time.time(),
        }
        self._write(header)

    def _write(self, rec: dict) -> None:
        fh = self._fh
        if fh is None:  # pragma: no cover - emit after close is a no-op
            return
        fh.write(json.dumps(rec, sort_keys=True) + "\n")
        fh.flush()

    def emit(
        self,
        kind: str,
        group: Optional[tuple[str, int]] = None,
        attempt: Optional[int] = None,
        **fields,
    ) -> None:
        """Append one event.  ``t`` is seconds since the shard header's
        monotonic anchor; ``group`` expands to ``workload``/``procs``."""
        rec: dict = {
            "kind": kind,
            "pid": self.pid,
            "t": round(time.monotonic() - self._mono0, 6),
        }
        if group is not None:
            rec["workload"] = group[0]
            rec["procs"] = int(group[1])
        if attempt is not None:
            rec["attempt"] = int(attempt)
        rec.update(fields)
        self._write(rec)

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "RuntimeTracer":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class MultiSink:
    """Fan one event stream out to several sinks (tracer + ticker)."""

    def __init__(self, sinks: Sequence):
        self.sinks = list(sinks)

    def emit(self, kind: str, group=None, attempt=None, **fields) -> None:
        for sink in self.sinks:
            sink.emit(kind, group=group, attempt=attempt, **fields)

    def close(self) -> None:
        for sink in self.sinks:
            close = getattr(sink, "close", None)
            if close is not None:
                close()


def status_counts(records) -> dict[str, int]:
    """Per-status cell counts of a finished sweep.

    Healthy cells (``status is None``) count as ``"ok"``; failed cells
    count under their structured status (``"timeout"``/``"crashed"``/
    ``"error"``).  This is the one source of truth for the CLI summary
    and the progress ticker's final line.
    """
    counts: dict[str, int] = {}
    for r in records:
        key = r.status if getattr(r, "status", None) is not None else "ok"
        counts[key] = counts.get(key, 0) + 1
    return counts


def format_summary(counts: dict[str, int], elapsed_s: float) -> str:
    """One-line sweep summary: per-status cell counts + wall clock."""
    total = sum(counts.values())
    order = sorted(counts, key=lambda k: (k != "ok", k))
    parts = ", ".join(f"{counts[k]} {k}" for k in order)
    return f"sweep: {total} cells ({parts}) in {elapsed_s:.1f}s"


class SweepProgress:
    """Live stderr ticker driven by the runtime-trace event stream.

    Tracks each (workload, procs) group through the supervisor's events
    — ``dispatch`` → running, ``retry``/``requeue``/``crash_quarantine``
    → retrying, ``group_done`` → done, ``cell_failure`` → failed — and
    redraws a single carriage-returned status line on every event.  The
    ``sweep_end`` event terminates the line and prints the same
    :func:`format_summary` text the CLI uses without ``--progress``.
    """

    def __init__(self, total: int, stream: Optional[TextIO] = None):
        self.total = total
        self.stream = stream if stream is not None else sys.stderr
        self._state: dict[tuple[str, int], str] = {}
        self._line_open = False

    def _counts(self) -> dict[str, int]:
        out = {"done": 0, "running": 0, "retrying": 0, "failed": 0}
        for state in self._state.values():
            out[state] += 1
        return out

    def emit(self, kind: str, group=None, attempt=None, **fields) -> None:
        if group is not None:
            key = (group[0], int(group[1]))
            if kind == "dispatch":
                self._state[key] = "running"
            elif kind in ("retry", "requeue", "crash_quarantine"):
                self._state[key] = "retrying"
            elif kind == "group_done":
                self._state[key] = "done"
            elif kind == "cell_failure":
                self._state[key] = "failed"
            elif kind == "resume_hit":
                self._state[key] = "done"
        if kind == "sweep_end":
            self._finish(fields)
            return
        if kind in (
            "dispatch", "retry", "requeue", "crash_quarantine",
            "group_done", "cell_failure", "resume_hit",
        ):
            self._redraw()

    def _redraw(self) -> None:
        c = self._counts()
        line = (
            f"sweep: {c['done']}/{self.total} groups done, "
            f"{c['running']} running, {c['retrying']} retrying, "
            f"{c['failed']} failed"
        )
        self.stream.write("\r" + line.ljust(72))
        self.stream.flush()
        self._line_open = True

    def _finish(self, fields: dict) -> None:
        if self._line_open:
            self.stream.write("\n")
            self._line_open = False
        counts = fields.get("counts")
        elapsed = fields.get("elapsed")
        if counts is not None and elapsed is not None:
            self.stream.write(format_summary(counts, float(elapsed)) + "\n")
        self.stream.flush()

    def close(self) -> None:
        if self._line_open:  # pragma: no cover - defensive (no sweep_end)
            self.stream.write("\n")
            self.stream.flush()
            self._line_open = False
