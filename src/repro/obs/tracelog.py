"""Human-readable execution traces as an instrument.

:class:`TraceLog` is the instrument behind ``Simulator(trace=True)``:
it turns the typed event stream into the flat
:class:`TraceEvent` records of
:meth:`~repro.machine.simulator.SimResult.render_trace`.  Because it is
an ordinary :class:`~repro.obs.instrument.Instrument`, the detail
strings (f-string assembly is hot-loop work) are only ever built when
tracing is enabled — ``trace=False`` runs construct no
:class:`TraceEvent` at all.
"""

from __future__ import annotations

from dataclasses import dataclass

from .instrument import Instrument


@dataclass(frozen=True)
class TraceEvent:
    """One event of an execution trace (``trace=True``)."""

    time: float
    proc: int
    kind: str  # start | done | map | send | suspend | data | addr | end
    detail: str


class TraceLog(Instrument):
    """Record a flat, time-sorted event log of one run."""

    def __init__(self) -> None:
        self.events: list[TraceEvent] = []

    def on_run_begin(self, t, nprocs, capacity, memory_managed) -> None:
        self.events = []

    def on_exe(self, t0, t1, proc, task) -> None:
        self.events.append(TraceEvent(t0, proc, "start", task))

    def on_map(self, t, proc, position, frees, allocs) -> None:
        self.events.append(
            TraceEvent(t, proc, "map", f"@pos{position} free={frees} alloc={allocs}")
        )

    def on_put(self, t_send, t_arrive, proc, dest, obj, unit, nbytes) -> None:
        self.events.append(
            TraceEvent(t_send, proc, "send", f"{obj}@{unit} -> P{dest} ({nbytes} B)")
        )

    def on_put_suspend(self, t, proc, dest, obj, unit, qlen) -> None:
        self.events.append(
            TraceEvent(t, proc, "suspend", f"{obj}@{unit} -> P{dest} (no address)")
        )

    def on_proc_end(self, t, proc) -> None:
        self.events.append(TraceEvent(t, proc, "end", "all tasks drained"))

    def on_run_end(self, parallel_time) -> None:
        self.events.sort(key=lambda e: (e.time, e.proc))
