"""``repro.obs`` — telemetry for the simulator and the sweep engine.

A zero-overhead-when-disabled instrument layer
(:class:`~repro.obs.instrument.Instrument`) that the simulator drives
with typed protocol events, built-in instruments (state residency,
memory timelines, queue depths, counters, activity timeline), and
exporters: a versioned metrics JSON document, a Chrome ``trace_event``
file for Perfetto, and a standalone HTML report.

Quick use::

    from repro.machine import Simulator
    from repro.obs import to_json, write_chrome_trace, html_report

    res = Simulator(schedule, metrics=True).run()
    to_json(res.metrics, "metrics.json")
    write_chrome_trace(res, "trace.json")     # open in ui.perfetto.dev
    html_report(res, "report.html")

See ``docs/observability.md`` for the event taxonomy and formats.
"""

from .chrome_trace import chrome_trace, merge_chrome_traces, write_chrome_trace
from .instrument import (
    HOOKS,
    NULL_INSTRUMENT,
    OVERHEAD_KINDS,
    Instrument,
    MultiInstrument,
)
from .instruments import (
    MAP_OVERHEAD_KINDS,
    RESIDENCY_KEYS,
    Counters,
    MemoryTimeline,
    MetricsSuite,
    QueueDepth,
    StateResidency,
    Timeline,
)
from .metrics import METRICS_SCHEMA, build_metrics, from_json, to_json
from .report import html_report
from .runtime import (
    RUNTIME_TRACE_SCHEMA,
    MultiSink,
    RuntimeTracer,
    SweepProgress,
    format_summary,
    status_counts,
)
from .sweep_trace import (
    load_runtime_shards,
    merge_obs_dir,
    runtime_chrome_doc,
    write_sweep_trace,
)
from .tracelog import TraceEvent, TraceLog

__all__ = [
    "HOOKS",
    "OVERHEAD_KINDS",
    "MAP_OVERHEAD_KINDS",
    "RESIDENCY_KEYS",
    "METRICS_SCHEMA",
    "NULL_INSTRUMENT",
    "Instrument",
    "MultiInstrument",
    "MetricsSuite",
    "StateResidency",
    "MemoryTimeline",
    "QueueDepth",
    "Counters",
    "Timeline",
    "TraceEvent",
    "TraceLog",
    "build_metrics",
    "to_json",
    "from_json",
    "chrome_trace",
    "merge_chrome_traces",
    "write_chrome_trace",
    "html_report",
    "RUNTIME_TRACE_SCHEMA",
    "RuntimeTracer",
    "MultiSink",
    "SweepProgress",
    "format_summary",
    "status_counts",
    "load_runtime_shards",
    "runtime_chrome_doc",
    "merge_obs_dir",
    "write_sweep_trace",
]
