"""Merge runtime-trace shards into one Perfetto-loadable sweep trace.

Loads every ``runtime-*.jsonl`` shard an observed sweep wrote into its
``--obs-dir`` (see :mod:`repro.obs.runtime`), converts the event stream
into Chrome ``trace_event`` form — one **track per os pid** (supervisor
and each worker), attempt spans as complete (``ph: "X"``) events, the
supervisor's dispatch/retry/timeout/quarantine/failure decisions as
instant events, and **flow events linking the successive dispatches of
a retried group** — then folds in any per-cell Chrome traces
(``*.trace.json``) found in the same directory via
:func:`~repro.obs.chrome_trace.merge_chrome_traces`.

Shards from different processes are aligned on their wall-clock header
anchors: the merged timeline's origin is the earliest ``wall0`` of any
shard, and every event lands at ``wall0 + t`` relative to it, so
supervisor decisions and the worker attempts they caused line up on
screen.  Exposed as ``repro sweep --obs-dir DIR`` (auto-merge on exit)
and ``repro obs merge --obs-dir DIR``.
"""

from __future__ import annotations

import json
import pathlib
from typing import Optional

from .chrome_trace import merge_chrome_traces
from .runtime import SHARD_GLOB

__all__ = [
    "load_runtime_shards",
    "merge_obs_dir",
    "runtime_chrome_doc",
    "write_sweep_trace",
]

#: Trace seconds -> microseconds.
_US = 1e6

#: Supervisor decision events rendered as instants on the owning track.
_INSTANT_KINDS = (
    "sweep_begin",
    "dispatch",
    "retry",
    "requeue",
    "timeout",
    "pool_kill",
    "pool_broken",
    "crash_quarantine",
    "cell_failure",
    "group_done",
    "checkpoint_shard",
    "resume_hit",
    "engine_counters",
    "sweep_end",
)


def load_runtime_shards(directory) -> list[dict]:
    """Parse every shard in ``directory`` into anchored event blocks.

    Returns one ``{"role", "pid", "wall0", "events"}`` block per header
    record — a shard re-opened by a surviving process yields several
    blocks, each carrying the anchors current when its events were
    written.  Truncated trailing lines (a worker SIGKILLed mid-write)
    and events preceding a header (clock anchors lost) are dropped.
    """
    blocks: list[dict] = []
    for path in sorted(pathlib.Path(directory).glob(SHARD_GLOB)):
        current: Optional[dict] = None
        with open(path) as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    rec = json.loads(line)
                except json.JSONDecodeError:
                    continue
                if rec.get("kind") == "header":
                    current = {
                        "role": rec.get("role", "worker"),
                        "pid": int(rec.get("pid", 0)),
                        "wall0": float(rec.get("wall0", 0.0)),
                        "events": [],
                    }
                    blocks.append(current)
                elif current is not None:
                    current["events"].append(rec)
    return blocks


def _group_label(rec: dict) -> Optional[str]:
    if "workload" not in rec:
        return None
    return f"{rec['workload']}@{rec.get('procs', '?')}"


def runtime_chrome_doc(shards: list[dict]) -> dict:
    """Convert anchored shard blocks into one Chrome trace document."""
    events: list[dict] = []
    body: list[dict] = []
    if shards:
        t0_wall = min(s["wall0"] for s in shards)
    else:
        t0_wall = 0.0

    named: set[int] = set()
    for shard in shards:
        pid = shard["pid"]
        if pid not in named:
            named.add(pid)
            events.append(
                {
                    "name": "process_name",
                    "ph": "M",
                    "pid": pid,
                    "tid": 0,
                    "args": {"name": f"{shard['role']} {pid}"},
                }
            )

    # (workload, procs, attempt) -> pending attempt_start (ts µs, pid)
    open_attempts: dict[tuple, tuple[float, int]] = {}
    # (workload, procs) -> dispatch timestamps (µs), for retry flows
    dispatches: dict[tuple, list[float]] = {}

    for shard in shards:
        pid = shard["pid"]
        base = shard["wall0"] - t0_wall
        for rec in shard["events"]:
            kind = rec.get("kind")
            ts = (base + float(rec.get("t", 0.0))) * _US
            label = _group_label(rec)
            gkey = (rec.get("workload"), rec.get("procs"))
            akey = gkey + (rec.get("attempt"),)
            args = {
                k: v
                for k, v in rec.items()
                if k not in ("kind", "pid", "t")
            }
            if kind == "attempt_start":
                open_attempts[akey] = (ts, pid)
                continue
            if kind == "attempt_finish":
                pending = open_attempts.pop(akey, None)
                if pending is None:
                    start = ts - float(rec.get("dur", 0.0)) * _US
                else:
                    start = pending[0]
                body.append(
                    {
                        "name": f"{label} attempt {rec.get('attempt', '?')}",
                        "cat": "attempt",
                        "ph": "X",
                        "pid": pid,
                        "tid": 0,
                        "ts": start,
                        "dur": max(ts - start, 0.0),
                        "args": args,
                    }
                )
                continue
            if kind in _INSTANT_KINDS:
                name = f"{kind} {label}" if label else kind
                body.append(
                    {
                        "name": name,
                        "cat": "engine" if kind == "engine_counters" else "runtime",
                        "ph": "i",
                        "s": "p",
                        "pid": pid,
                        "tid": 0,
                        "ts": ts,
                        "args": args,
                    }
                )
                if kind == "dispatch" and label is not None:
                    dispatches.setdefault(gkey, []).append(ts)

    # Attempts that started but never finished: the SIGKILLed workers.
    for akey, (ts, apid) in open_attempts.items():
        label = f"{akey[0]}@{akey[1]}"
        body.append(
            {
                "name": f"{label} attempt {akey[2]} (no finish)",
                "cat": "attempt",
                "ph": "i",
                "s": "p",
                "pid": apid,
                "tid": 0,
                "ts": ts,
                "args": {"workload": akey[0], "procs": akey[1], "attempt": akey[2]},
            }
        )

    # Flow arrows chaining the successive dispatches of retried groups.
    flow_id = 0
    for gkey, stamps in sorted(dispatches.items(), key=lambda kv: str(kv[0])):
        stamps.sort()
        for prev, nxt in zip(stamps, stamps[1:]):
            flow_id += 1
            name = f"retry {gkey[0]}@{gkey[1]}"
            body.append(
                {
                    "name": name,
                    "cat": "retry",
                    "ph": "s",
                    "id": flow_id,
                    "pid": _supervisor_pid(shards),
                    "tid": 0,
                    "ts": prev,
                }
            )
            body.append(
                {
                    "name": name,
                    "cat": "retry",
                    "ph": "f",
                    "bp": "e",
                    "id": flow_id,
                    "pid": _supervisor_pid(shards),
                    "tid": 0,
                    "ts": nxt,
                }
            )

    body.sort(key=lambda e: e["ts"])
    events.extend(body)
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "schema": "repro-sweep-trace/1",
            "shards": len(shards),
            "t0_wall": t0_wall,
        },
    }


def _supervisor_pid(shards: list[dict]) -> int:
    for shard in shards:
        if shard["role"] == "supervisor":
            return shard["pid"]
    return shards[0]["pid"] if shards else 0


def merge_obs_dir(directory) -> dict:
    """Merge an ``--obs-dir`` into one Perfetto-loadable document.

    Folds the runtime-trace shards together with any per-cell Chrome
    traces (``*.trace.json``, as written by ``repro trace``) dropped in
    the same directory.
    """
    docs = [runtime_chrome_doc(load_runtime_shards(directory))]
    for path in sorted(pathlib.Path(directory).glob("*.trace.json")):
        try:
            with open(path) as fh:
                docs.append(json.load(fh))
        except (json.JSONDecodeError, OSError):
            continue
    return merge_chrome_traces(docs)


def write_sweep_trace(directory, path: Optional[str] = None) -> str:
    """Merge ``directory`` and write the trace; returns the output path."""
    out = str(path) if path else str(pathlib.Path(directory) / "sweep_trace.json")
    doc = merge_obs_dir(directory)
    with open(out, "w") as fh:
        json.dump(doc, fh)
        fh.write("\n")
    return out