"""Chrome ``trace_event`` export (Perfetto / ``chrome://tracing``).

Turns the :class:`~repro.obs.instruments.Timeline` and
:class:`~repro.obs.instruments.MemoryTimeline` of an instrumented run
into the JSON object format of the Trace Event specification:

* one **track** (``tid``) per simulated processor under a single
  process (``pid`` 0), named via ``M``-phase metadata events;
* protocol activity as **complete** (``ph: "X"``) duration events —
  task execution (category ``exe``), MAP work, package assembly, RA
  reads, send overheads — plus the derived blocked-state intervals
  (REC / MAP-blocked / END-drain, category ``state``);
* every data put as a **flow** (``ph: "s"`` → ``ph: "f"``) from the
  sender's track at issue time to the receiver's track at arrival;
* per-processor allocated-bytes **counter** (``ph: "C"``) series.

Timestamps are microseconds (the unit the viewers expect); events are
sorted by ``ts`` so each track is monotonic.  Load the file with
https://ui.perfetto.dev or ``chrome://tracing``.
"""

from __future__ import annotations

import json
from typing import Optional

#: Simulator seconds -> trace microseconds.
_US = 1e6


def chrome_trace(result) -> dict:
    """Build the trace document for an instrumented :class:`SimResult`.

    Requires the result of a ``Simulator(..., metrics=True)`` run
    (``result.telemetry`` holds the suite); raises ``ValueError``
    otherwise.
    """
    suite = getattr(result, "telemetry", None)
    if suite is None:
        raise ValueError(
            "chrome_trace needs an instrumented run: Simulator(..., metrics=True)"
        )
    tl = suite.timeline
    events: list[dict] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": 0,
            "tid": 0,
            "args": {"name": f"repro simulator ({result.schedule_label})"},
        }
    ]
    for q in range(tl.nprocs):
        events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": 0,
                "tid": q,
                "args": {"name": f"P{q}"},
            }
        )

    body: list[dict] = []
    for q in range(tl.nprocs):
        for t0, t1, name, cat in tl.activity[q]:
            body.append(
                {
                    "name": name,
                    "cat": cat,
                    "ph": "X",
                    "pid": 0,
                    "tid": q,
                    "ts": t0 * _US,
                    "dur": (t1 - t0) * _US,
                }
            )
        for t0, t1, state in tl.blocked_intervals(q):
            label = {"REC": "REC(wait)", "MAP": "MAP(blocked)", "END": "END(drain)"}
            body.append(
                {
                    "name": label.get(state, state),
                    "cat": "state",
                    "ph": "X",
                    "pid": 0,
                    "tid": q,
                    "ts": t0 * _US,
                    "dur": (t1 - t0) * _US,
                }
            )
    for t, proc, position, nfrees, nallocs in tl.map_points:
        body.append(
            {
                "name": f"MAP@{position}",
                "cat": "map",
                "ph": "i",
                "s": "t",
                "pid": 0,
                "tid": proc,
                "ts": t * _US,
                "args": {"frees": nfrees, "allocs": nallocs},
            }
        )
    for i, (t_send, t_arrive, src, dest, obj) in enumerate(tl.puts):
        body.append(
            {
                "name": f"put {obj}",
                "cat": "put",
                "ph": "s",
                "id": i,
                "pid": 0,
                "tid": src,
                "ts": t_send * _US,
            }
        )
        body.append(
            {
                "name": f"put {obj}",
                "cat": "put",
                "ph": "f",
                "bp": "e",
                "id": i,
                "pid": 0,
                "tid": dest,
                "ts": t_arrive * _US,
            }
        )
    for q, samples in enumerate(suite.memory.samples):
        for t, used in samples:
            body.append(
                {
                    "name": f"allocated P{q}",
                    "cat": "memory",
                    "ph": "C",
                    "pid": 0,
                    "tid": q,
                    "ts": t * _US,
                    "args": {"bytes": used},
                }
            )
    body.sort(key=lambda e: e["ts"])
    events.extend(body)
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "schema": "repro-chrome-trace/1",
            "schedule": result.schedule_label,
            "capacity": result.capacity,
            "memory_managed": result.memory_managed,
            "parallel_time": result.parallel_time,
        },
    }


def write_chrome_trace(result, path: Optional[str] = None) -> str:
    """Serialise :func:`chrome_trace`; optionally write to ``path``."""
    text = json.dumps(chrome_trace(result)) + "\n"
    if path:
        with open(path, "w") as fh:
            fh.write(text)
    return text


def merge_chrome_traces(docs) -> dict:
    """Fold several Chrome trace documents into one multi-track trace.

    Each input keeps its own set of tracks: when two documents claim the
    same ``pid`` (every per-cell trace uses pid 0), the later document's
    colliding pids are remapped to fresh ids so their tracks never
    interleave.  Empty documents (no ``traceEvents``) are tolerated and
    contribute nothing.  The merged body is re-sorted — ``M``-phase
    metadata first, then by ``ts`` — so out-of-order inputs still yield
    a Perfetto-loadable file with monotonic tracks.
    """
    merged: list[dict] = []
    used_pids: set[int] = set()
    sources: list[dict] = []
    for doc in docs:
        events = doc.get("traceEvents") or []
        other = doc.get("otherData") or {}
        sources.append(
            {"schema": other.get("schema"), "events": len(events)}
        )
        if not events:
            continue
        pids = sorted({int(e.get("pid", 0)) for e in events})
        mapping: dict[int, int] = {}
        for pid in pids:
            new = pid
            while new in used_pids:
                new = (max(used_pids) if used_pids else 0) + 1
            mapping[pid] = new
            used_pids.add(new)
        for e in events:
            out = dict(e)
            out["pid"] = mapping[int(e.get("pid", 0))]
            merged.append(out)
    merged.sort(key=lambda e: (0 if e.get("ph") == "M" else 1, e.get("ts", 0)))
    return {
        "traceEvents": merged,
        "displayTimeUnit": "ms",
        "otherData": {
            "schema": "repro-sweep-trace/1",
            "sources": sources,
        },
    }
