"""Inspector-style construction of transformed task graphs.

The RAPID pipeline (Figure 1 of the paper) starts from *task and data
access patterns*: the program is described as a sequential trace of tasks
each declaring which objects it reads and writes.  From this trace the
inspector derives a data dependence graph with true, anti and output
dependencies, then *transforms* it into a graph containing true
dependencies only (section 2):

* an anti/output dependence is *redundant* when it is subsumed by a true
  dependence edge (e.g. read-modify-write chains: the next writer reads
  the value produced by the previous one);
* remaining anti/output dependencies are eliminated "by program
  transformation" — we model this by inserting a pure synchronisation
  edge (no data flows), which preserves ordering at zero communication
  volume, keeping the graph *dependence-complete* (needed by Theorem 1's
  data-consistency argument);
* *commuting tasks* (RAPID's extension for commutative operations such
  as the update accumulations of sparse factorizations) are tagged with
  a group key: no edges are created among members of one group, so the
  scheduler is free to serialize them in any order.

The builder can also *materialize inputs*: an object read before any
write gets an implicit zero-weight source task on its owner, so that the
executor has a producer to send the initial content from.
"""

from __future__ import annotations

from typing import Optional

from ..errors import DependenceError, GraphError
from .objects import DataObject
from .tasks import Kernel, Task
from .taskgraph import TaskGraph

#: Prefix of implicit source-task names created by ``materialize_inputs``.
SOURCE_PREFIX = "_src:"


def source_task_name(obj: str) -> str:
    """Name of the implicit source task materialising input object ``obj``."""
    return SOURCE_PREFIX + obj


def is_source_task(name: str) -> bool:
    """True for implicit source tasks created by the builder."""
    return name.startswith(SOURCE_PREFIX)


class GraphBuilder:
    """Builds a transformed (true-dependence-only) :class:`TaskGraph`
    from a sequential access trace.

    Parameters
    ----------
    materialize_inputs:
        When an object is read before being written, insert an implicit
        zero-weight source task producing it (default ``True``).
    dependence_mode:
        What to do with anti/output dependencies not subsumed by a direct
        true edge: ``"transform"`` inserts a synchronisation edge (the
        default, mirrors RAPID's program transformation), ``"check"``
        raises :class:`~repro.errors.DependenceError`, ``"ignore"`` drops
        them (only safe for graphs known to be dependence-complete).
    source_weight:
        Weight given to implicit source tasks.
    """

    def __init__(
        self,
        materialize_inputs: bool = True,
        dependence_mode: str = "transform",
        source_weight: float = 0.0,
    ) -> None:
        if dependence_mode not in ("transform", "check", "ignore"):
            raise ValueError(f"bad dependence_mode {dependence_mode!r}")
        self._graph = TaskGraph()
        self._materialize = materialize_inputs
        self._mode = dependence_mode
        self._source_weight = source_weight
        # Per-object trace state.
        self._last_writers: dict[str, list[str]] = {}  # current version producers
        self._readers_since: dict[str, list[str]] = {}  # readers of current version
        self._active_group: dict[str, str] = {}  # obj -> commute key of open group
        self._group_base: dict[str, list[str]] = {}  # obj -> writers before group
        self._closed_groups: dict[str, set[str]] = {}  # obj -> keys already closed
        self._built = False

    # ------------------------------------------------------------------

    @property
    def graph(self) -> TaskGraph:
        """The graph under construction (mutable until :meth:`build`)."""
        return self._graph

    def add_object(self, name: str | DataObject, size: int = 1) -> DataObject:
        """Register a data object."""
        return self._graph.add_object(name, size)

    def add_task(
        self,
        name: str,
        reads: tuple[str, ...] | list[str] = (),
        writes: tuple[str, ...] | list[str] = (),
        weight: float = 1.0,
        commute: Optional[str] = None,
        kernel: Optional[Kernel] = None,
    ) -> Task:
        """Append a task to the trace and derive its dependence edges."""
        if self._built:
            raise GraphError("builder already finalised")
        task = Task(
            name=name,
            reads=tuple(reads),
            writes=tuple(writes),
            weight=weight,
            commute=commute,
            kernel=kernel,
        )
        g = self._graph
        g.add_task(task)
        joining: set[str] = set()
        if commute is not None:
            for m in task.writes:
                if self._active_group.get(m) == commute:
                    joining.add(m)
                elif commute in self._closed_groups.get(m, ()):
                    raise GraphError(
                        f"commuting group {commute!r} on object {m!r} is not "
                        f"contiguous in the trace (reopened by task {name!r})"
                    )

        # --- true dependencies: last writer(s) -> this reader -------------
        for m in task.reads:
            if m in joining:
                # A commuting member accumulates onto the value that
                # existed before the group opened; fellow members are not
                # predecessors (that is the point of commuting).
                writers = self._group_base.get(m, [])
            else:
                writers = self._last_writers.get(m)
                if writers is None:
                    if self._materialize:
                        writers = [self._make_source(m)]
                    else:
                        writers = []
                        self._last_writers[m] = writers
            for w in writers:
                if w != name:
                    g.add_edge(w, name, m)
            self._readers_since.setdefault(m, []).append(name)
            # A read by a non-member closes any open commuting group on m:
            # the reader observes the fully accumulated value, so every
            # member became one of its true predecessors above.
            key = self._active_group.get(m)
            if key is not None and key != commute:
                self._close_group(m)

        # --- writes: version bookkeeping + anti/output handling ----------
        for m in task.writes:
            writers = self._last_writers.get(m, [])
            readers = self._readers_since.get(m, [])
            if m in joining:
                # Join the open commuting group: no anti/output handling
                # against fellow members, no new version.
                self._last_writers.setdefault(m, []).append(name)
                continue
            # Close any open group on m (a non-member writes it).
            self._close_group(m)
            # Output dependence from previous writers, anti dependence from
            # previous readers: subsumed if a direct true edge exists.
            for w in writers:
                if w != name:
                    self._enforce(w, name, "output", m)
            for r in readers:
                if r != name:
                    self._enforce(r, name, "anti", m)
            # New version.
            if commute is not None:
                # Opening a commuting group: remember the pre-group
                # producers so later members depend on them too.
                self._group_base[m] = list(writers)
                self._active_group[m] = commute
            self._last_writers[m] = [name]
            self._readers_since[m] = [name] if m in task.reads else []
        return task

    # ------------------------------------------------------------------

    def _close_group(self, obj: str) -> None:
        key = self._active_group.pop(obj, None)
        if key is not None:
            self._closed_groups.setdefault(obj, set()).add(key)
            self._group_base.pop(obj, None)

    def _enforce(self, u: str, v: str, kind: str, obj: str) -> None:
        """Handle a non-true dependence ``u -> v`` of the given kind."""
        g = self._graph
        if g.has_edge(u, v):
            return  # subsumed by an existing true edge
        if self._mode == "ignore":
            return
        if self._mode == "check":
            raise DependenceError(
                f"{kind} dependence {u!r} -> {v!r} on object {obj!r} is not "
                "subsumed by a true dependence"
            )
        # transform: enforce ordering with a data-less sync edge.
        g.add_edge(u, v, None)

    def _make_source(self, obj: str) -> str:
        name = source_task_name(obj)
        self._graph.add_task(
            Task(name=name, reads=(), writes=(obj,), weight=self._source_weight)
        )
        self._last_writers[obj] = [name]
        self._readers_since[obj] = []
        return name

    # ------------------------------------------------------------------

    def build(self) -> TaskGraph:
        """Finalise and freeze the graph."""
        self._built = True
        return self._graph.freeze()
