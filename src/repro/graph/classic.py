"""Classic task-graph families from the scheduling literature.

The DSC/RCP line of work (Yang & Gerasoulis [20, 21], Gerasoulis et al.
[8] — "Scheduling of Structured and Unstructured Computation") evaluates
on a standard set of structured DAGs.  These generators provide them as
additional stress workloads for the schedulers and the memory model:

* :func:`dense_lu_graph` — column-oriented dense LU elimination DAG
  (``n(n+1)/2``-ish tasks, the classic triangular wavefront);
* :func:`fft_graph` — the butterfly DAG of an ``2^m``-point FFT;
* :func:`stencil_1d` — a 1-D Jacobi stencil over ``T`` timesteps
  (in-place variant: tight WAR coupling; out-of-place: clean wavefront);
* :func:`cholesky_column_graph` — column-level dense Cholesky DAG.

All are built through :class:`~repro.graph.builder.GraphBuilder`, so the
derived graphs carry the same transformed-dependence semantics as the
applications.
"""

from __future__ import annotations

from .builder import GraphBuilder
from .taskgraph import TaskGraph


def dense_lu_graph(n: int, weight: float = 1.0, size: int = 8) -> TaskGraph:
    """Column-oriented dense LU elimination DAG on ``n`` columns.

    ``F(k)`` factors column ``k``; ``U(k, j)`` updates column ``j > k``
    with it — the dense special case of the paper's 1-D sparse LU (every
    update exists).
    """
    b = GraphBuilder(materialize_inputs=True)
    for j in range(n):
        b.add_object(f"c{j}", size * (n - j))
    for k in range(n):
        b.add_task(f"F({k})", reads=(f"c{k}",), writes=(f"c{k}",), weight=weight)
        for j in range(k + 1, n):
            b.add_task(
                f"U({k},{j})",
                reads=(f"c{k}", f"c{j}"),
                writes=(f"c{j}",),
                weight=weight,
            )
    return b.build()


def cholesky_column_graph(n: int, weight: float = 1.0, size: int = 8) -> TaskGraph:
    """Column-level dense Cholesky DAG: ``CDIV(k)`` scales column ``k``,
    ``CMOD(j, k)`` updates column ``j`` with it (updates commute)."""
    b = GraphBuilder(materialize_inputs=True)
    for j in range(n):
        b.add_object(f"c{j}", size * (n - j))
    for k in range(n):
        b.add_task(f"CDIV({k})", reads=(f"c{k}",), writes=(f"c{k}",), weight=weight)
        for j in range(k + 1, n):
            b.add_task(
                f"CMOD({j},{k})",
                reads=(f"c{k}", f"c{j}"),
                writes=(f"c{j}",),
                weight=weight,
                commute=f"cmod:{j}",
            )
    return b.build()


def fft_graph(m: int, weight: float = 1.0, size: int = 8) -> TaskGraph:
    """Butterfly DAG of a ``2^m``-point FFT: ``m`` stages of ``2^(m-1)``
    butterflies; each butterfly reads two values of the previous stage
    and writes two of the next."""
    if m < 1:
        raise ValueError("m must be >= 1")
    n = 1 << m
    b = GraphBuilder(materialize_inputs=True)
    for s in range(m + 1):
        for i in range(n):
            b.add_object(f"x{s}_{i}", size)
    for s in range(m):
        span = 1 << s
        done = set()
        for i in range(n):
            j = i ^ span
            lo, hi = min(i, j), max(i, j)
            if (lo, hi) in done:
                continue
            done.add((lo, hi))
            b.add_task(
                f"B({s},{lo})",
                reads=(f"x{s}_{lo}", f"x{s}_{hi}"),
                writes=(f"x{s+1}_{lo}", f"x{s+1}_{hi}"),
                weight=weight,
            )
    return b.build()


def stencil_1d(
    cells: int,
    steps: int,
    weight: float = 1.0,
    size: int = 8,
    in_place: bool = False,
) -> TaskGraph:
    """1-D three-point Jacobi stencil over ``steps`` timesteps.

    ``in_place=False`` double-buffers (even/odd arrays, a clean
    wavefront); ``in_place=True`` writes back into the same cells,
    exercising the WAR-transform machinery heavily.
    """
    b = GraphBuilder(materialize_inputs=True)
    buffers = 1 if in_place else 2
    for buf in range(buffers):
        for i in range(cells):
            b.add_object(f"u{buf}_{i}", size)
    for t in range(steps):
        src = 0 if in_place else t % 2
        dst = 0 if in_place else (t + 1) % 2
        for i in range(cells):
            reads = [f"u{src}_{j}" for j in (i - 1, i, i + 1) if 0 <= j < cells]
            b.add_task(
                f"S({t},{i})",
                reads=tuple(dict.fromkeys(reads + ([f"u{dst}_{i}"] if in_place else []))),
                writes=(f"u{dst}_{i}",),
                weight=weight,
            )
    return b.build()
