"""Data objects of the irregular computation model.

The paper's computation model (section 2) consists of a set of tasks and
a set of *distinct data objects*; each task reads/writes a subset of the
objects.  A data object is the unit of placement (it has a unique owner
processor, Definition 1), the unit of communication (its whole content is
deposited into a remote processor's memory with one RMA put) and the unit
of memory management (volatile copies are allocated once and freed at
their dead point, section 3.2).

Sizes are plain non-negative integers in abstract *units*; the sparse
substrates use bytes (8 bytes per stored double) while the worked
examples of the paper use unit-size objects.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum


class AccessMode(Enum):
    """How a task touches a data object."""

    READ = "read"
    WRITE = "write"
    READWRITE = "readwrite"

    @property
    def reads(self) -> bool:
        return self in (AccessMode.READ, AccessMode.READWRITE)

    @property
    def writes(self) -> bool:
        return self in (AccessMode.WRITE, AccessMode.READWRITE)


@dataclass(frozen=True)
class DataObject:
    """A named, fixed-size unit of application data.

    Parameters
    ----------
    name:
        Unique identifier within a :class:`~repro.graph.taskgraph.TaskGraph`.
    size:
        Memory footprint in abstract units (``>= 0``).  One unit for the
        paper's worked example, bytes for the sparse-matrix substrates.
    """

    name: str
    size: int = 1

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("data object name must be non-empty")
        if self.size < 0:
            raise ValueError(f"data object {self.name!r} has negative size {self.size}")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"DataObject({self.name!r}, size={self.size})"


@dataclass(frozen=True)
class Access:
    """A single (object, mode) pair in a task's access list."""

    obj: str
    mode: AccessMode

    @property
    def reads(self) -> bool:
        return self.mode.reads

    @property
    def writes(self) -> bool:
        return self.mode.writes
