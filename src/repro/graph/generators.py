"""Synthetic task-graph families for tests and micro-benchmarks.

These generators produce graphs through the same
:class:`~repro.graph.builder.GraphBuilder` trace interface as the sparse
substrates, so they exercise identical code paths (dependence
derivation, ownership, liveness).  All generators are deterministic
given a seed.

Families:

* :func:`chain` — a linear pipeline (worst-case depth);
* :func:`fork_join` — fan-out / fan-in stages;
* :func:`out_tree` / :func:`in_tree` — (inverted) binary trees;
* :func:`layered_random` — random layered DAGs with tunable width,
  density and weight/size variation (the "mixed granularity" setting of
  the paper);
* :func:`reduction_tree` — commutative reduction using commuting groups;
* :func:`random_trace` — a fully random sequential access trace, useful
  for property tests of the builder itself.
"""

from __future__ import annotations

import numpy as np

from .builder import GraphBuilder
from .taskgraph import TaskGraph


def chain(n: int, weight: float = 1.0, size: int = 1) -> TaskGraph:
    """A linear chain ``T0 -> T1 -> ... -> T(n-1)``; task ``i`` reads the
    object written by task ``i-1`` and writes its own object."""
    b = GraphBuilder(materialize_inputs=False)
    for i in range(n):
        b.add_object(f"d{i}", size)
    for i in range(n):
        reads = (f"d{i-1}",) if i > 0 else ()
        b.add_task(f"T{i}", reads=reads, writes=(f"d{i}",), weight=weight)
    return b.build()


def fork_join(stages: int, width: int, weight: float = 1.0, size: int = 1) -> TaskGraph:
    """``stages`` repetitions of: one root task, ``width`` parallel tasks
    reading the root's object, one join task reading all of them."""
    b = GraphBuilder(materialize_inputs=False)
    prev: str | None = None
    for s in range(stages):
        root_obj = f"r{s}"
        b.add_object(root_obj, size)
        reads = (prev,) if prev else ()
        b.add_task(f"fork{s}", reads=reads, writes=(root_obj,), weight=weight)
        mids = []
        for i in range(width):
            o = f"m{s}_{i}"
            b.add_object(o, size)
            b.add_task(f"mid{s}_{i}", reads=(root_obj,), writes=(o,), weight=weight)
            mids.append(o)
        join_obj = f"j{s}"
        b.add_object(join_obj, size)
        b.add_task(f"join{s}", reads=tuple(mids), writes=(join_obj,), weight=weight)
        prev = join_obj
    return b.build()


def out_tree(levels: int, weight: float = 1.0, size: int = 1) -> TaskGraph:
    """A binary out-tree: each task produces an object read by two
    children; ``2**levels - 1`` tasks."""
    b = GraphBuilder(materialize_inputs=False)
    total = 2**levels - 1
    for i in range(total):
        b.add_object(f"d{i}", size)
    for i in range(total):
        reads = (f"d{(i - 1) // 2}",) if i > 0 else ()
        b.add_task(f"T{i}", reads=reads, writes=(f"d{i}",), weight=weight)
    return b.build()


def in_tree(levels: int, weight: float = 1.0, size: int = 1) -> TaskGraph:
    """A binary in-tree (reduction shape): leaves first, root last."""
    b = GraphBuilder(materialize_inputs=False)
    total = 2**levels - 1
    for i in range(total):
        b.add_object(f"d{i}", size)
    # Node i of the in-tree consumes children 2i+1 and 2i+2 (heap layout);
    # emit in reverse heap order so producers precede consumers.
    for i in reversed(range(total)):
        kids = [j for j in (2 * i + 1, 2 * i + 2) if j < total]
        b.add_task(
            f"T{i}",
            reads=tuple(f"d{j}" for j in kids),
            writes=(f"d{i}",),
            weight=weight,
        )
    return b.build()


def reduction_tree(leaves: int, weight: float = 1.0, size: int = 1) -> TaskGraph:
    """A commutative reduction: ``leaves`` producer tasks each write a
    leaf object, then ``leaves`` commuting update tasks accumulate the
    leaves into a single accumulator object.  Exercises commuting
    groups."""
    b = GraphBuilder(materialize_inputs=False)
    b.add_object("acc", size)
    b.add_task("init", writes=("acc",), weight=weight)
    for i in range(leaves):
        b.add_object(f"leaf{i}", size)
        b.add_task(f"prod{i}", writes=(f"leaf{i}",), weight=weight)
    for i in range(leaves):
        b.add_task(
            f"add{i}",
            reads=(f"leaf{i}", "acc"),
            writes=("acc",),
            weight=weight,
            commute="acc-sum",
        )
    b.add_object("out", size)
    b.add_task("final", reads=("acc",), writes=("out",), weight=weight)
    return b.build()


def layered_random(
    layers: int,
    width: int,
    density: float = 0.4,
    seed: int = 0,
    min_weight: float = 0.5,
    max_weight: float = 4.0,
    min_size: int = 1,
    max_size: int = 8,
) -> TaskGraph:
    """Random layered DAG with mixed granularity.

    Each of ``layers`` layers holds ``width`` tasks; a task in layer
    ``l > 0`` reads a random non-empty subset of layer ``l-1``'s objects
    (each with probability ``density``) and writes its own object.
    Weights and sizes are drawn uniformly from the given ranges.
    """
    if not (0.0 < density <= 1.0):
        raise ValueError("density must be in (0, 1]")
    rng = np.random.default_rng(seed)
    b = GraphBuilder(materialize_inputs=False)
    names: list[list[str]] = []
    for l in range(layers):
        row = []
        for i in range(width):
            o = f"d{l}_{i}"
            b.add_object(o, int(rng.integers(min_size, max_size + 1)))
            row.append(o)
        names.append(row)
    for l in range(layers):
        for i in range(width):
            reads: tuple[str, ...] = ()
            if l > 0:
                mask = rng.random(width) < density
                if not mask.any():
                    mask[int(rng.integers(width))] = True
                reads = tuple(names[l - 1][j] for j in range(width) if mask[j])
            w = float(rng.uniform(min_weight, max_weight))
            b.add_task(f"T{l}_{i}", reads=reads, writes=(names[l][i],), weight=w)
    return b.build()


def random_trace(
    num_tasks: int,
    num_objects: int,
    seed: int = 0,
    max_reads: int = 3,
    p_write: float = 0.9,
    min_size: int = 1,
    max_size: int = 4,
) -> TaskGraph:
    """A fully random sequential access trace.

    Every task reads up to ``max_reads`` random objects and, with
    probability ``p_write``, read-modify-writes one more.  Because the
    builder enforces the trace semantics, the resulting graph is a valid
    transformed DAG whatever the random choices — the workhorse of the
    builder/scheduler property tests.
    """
    rng = np.random.default_rng(seed)
    b = GraphBuilder(materialize_inputs=True)
    for i in range(num_objects):
        b.add_object(f"d{i}", int(rng.integers(min_size, max_size + 1)))
    for i in range(num_tasks):
        k = int(rng.integers(0, max_reads + 1))
        reads = list(rng.choice(num_objects, size=min(k, num_objects), replace=False))
        writes: list[int] = []
        if rng.random() < p_write or not reads:
            w = int(rng.integers(num_objects))
            writes = [w]
            if w not in reads:
                reads.append(w)
        b.add_task(
            f"T{i}",
            reads=tuple(f"d{j}" for j in reads),
            writes=tuple(f"d{j}" for j in writes),
            weight=float(rng.uniform(0.5, 2.0)),
        )
    return b.build()
