"""Tasks of the irregular computation model.

A task is a sequential unit of computation that reads a set of data
objects and writes a set of data objects (section 2 of the paper).  The
paper's notation ``T[i, j]`` denotes a task that reads ``d_i`` and
updates ``d_j``; ``T[j]`` denotes a task that updates ``d_j`` only.

Tasks may carry:

* a *weight* — predicted execution time (derived from flop counts by the
  sparse substrates, one unit in the worked examples);
* a *commuting group* tag — RAPID's extension for commutative
  operations: tasks in the same group read-modify-write the same object
  and may be executed in any relative order (e.g. the ``GEMM`` updates
  accumulating into one block of a sparse Cholesky factor);
* an optional *kernel* — a Python callable executed by the serial
  numeric executor to verify that schedules preserve program semantics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional


#: Signature of a numeric kernel: ``kernel(store)`` where ``store`` maps
#: object names to mutable payloads (NumPy arrays for the sparse codes).
Kernel = Callable[[dict], None]


@dataclass(frozen=True)
class Task:
    """A node of the task dependence graph.

    Parameters
    ----------
    name:
        Unique identifier within a graph.
    reads:
        Names of the objects the task reads (its *use* set).
    writes:
        Names of the objects the task writes (its *mod* set).  Objects in
        both sets are read-modify-written, the common case in sparse
        factorizations.
    weight:
        Predicted execution time in seconds (or abstract units).
    commute:
        Optional commuting-group key.  Tasks sharing a key are mutually
        commutative: the builder omits dependence edges among them and
        ordering heuristics may serialize them in any order.
    kernel:
        Optional callable executed by the numeric executor.
    """

    name: str
    reads: tuple[str, ...] = ()
    writes: tuple[str, ...] = ()
    weight: float = 1.0
    commute: Optional[str] = None
    kernel: Optional[Kernel] = field(default=None, compare=False, repr=False)

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("task name must be non-empty")
        if self.weight < 0:
            raise ValueError(f"task {self.name!r} has negative weight {self.weight}")
        # Normalise to tuples so Task stays hashable even when callers
        # pass lists.
        if not isinstance(self.reads, tuple):
            object.__setattr__(self, "reads", tuple(self.reads))
        if not isinstance(self.writes, tuple):
            object.__setattr__(self, "writes", tuple(self.writes))
        seen: set[str] = set()
        for o in self.reads:
            if o in seen:
                raise ValueError(f"task {self.name!r} lists object {o!r} twice in reads")
            seen.add(o)
        seen.clear()
        for o in self.writes:
            if o in seen:
                raise ValueError(f"task {self.name!r} lists object {o!r} twice in writes")
            seen.add(o)

    # -- derived access sets -------------------------------------------------

    @property
    def accesses(self) -> tuple[str, ...]:
        """All distinct objects the task touches (reads first)."""
        return self.reads + tuple(o for o in self.writes if o not in self.reads)

    @property
    def read_only(self) -> tuple[str, ...]:
        """Objects read but not written."""
        return tuple(o for o in self.reads if o not in self.writes)

    @property
    def write_only(self) -> tuple[str, ...]:
        """Objects written but not read."""
        return tuple(o for o in self.writes if o not in self.reads)

    def touches(self, obj: str) -> bool:
        return obj in self.reads or obj in self.writes

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        r = ",".join(self.reads)
        w = ",".join(self.writes)
        return f"Task({self.name!r}, reads=[{r}], writes=[{w}], w={self.weight:g})"
