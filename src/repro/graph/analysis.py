"""Structural analyses of task graphs.

Provides the classic list-scheduling quantities used by the ordering
heuristics of the paper:

* **b-level** (bottom level): length of the longest path from a task to
  an exit task, *including* the task's own weight and, optionally,
  communication delays on the edges.  This is the "critical path
  priority" used by RCP ordering and as the tie-break of MPO
  (section 4.1: "the length of the longest path from this task to an
  exit task").
* **t-level** (top level): length of the longest path from an entry task
  to the task, excluding the task's weight — used by DSC clustering.

Edge communication costs are supplied by a callable so the same routines
serve the pre-mapping stage (all cross-task edges cost their message
time, DSC) and the post-mapping stage (only cross-processor edges cost,
RCP/MPO ordering — see the worked example of section 4.1 where the path
``T[7,8], T[8], T[8,9]`` has length 4 because one communication delay is
included).
"""

from __future__ import annotations

from typing import Callable, Iterable, Mapping

from .taskgraph import TaskGraph

#: ``edge_cost(u, v, objects) -> float`` — communication delay charged on
#: the dependence edge ``u -> v`` carrying ``objects``.
EdgeCost = Callable[[str, str, frozenset[str]], float]


def zero_edge_cost(u: str, v: str, objs: frozenset[str]) -> float:
    """Edge-cost function for a shared-address-space / same-processor view."""
    return 0.0


def uniform_edge_cost(cost: float) -> EdgeCost:
    """Every data-carrying edge costs ``cost``; sync edges are free."""

    def f(u: str, v: str, objs: frozenset[str]) -> float:
        return cost if objs else 0.0

    return f


def size_edge_cost(graph: TaskGraph, latency: float, byte_time: float) -> EdgeCost:
    """Linear cost model ``latency + byte_time * sum(sizeof(obj))``."""

    def f(u: str, v: str, objs: frozenset[str]) -> float:
        if not objs:
            return 0.0
        return latency + byte_time * sum(graph.object(o).size for o in objs)

    return f


def mapped_edge_cost(assignment: Mapping[str, int], base: EdgeCost) -> EdgeCost:
    """Charge ``base`` only on cross-processor edges of ``assignment``."""

    def f(u: str, v: str, objs: frozenset[str]) -> float:
        if assignment[u] == assignment[v]:
            return 0.0
        return base(u, v, objs)

    return f


# ----------------------------------------------------------------------
# levels
# ----------------------------------------------------------------------


def b_levels(graph: TaskGraph, edge_cost: EdgeCost = zero_edge_cost) -> dict[str, float]:
    """Bottom level of every task (critical-path priority).

    ``blevel(t) = w(t) + max over successors s of (edge_cost + blevel(s))``.
    """
    bl: dict[str, float] = {}
    for name in reversed(graph.topological_order()):
        t = graph.task(name)
        best = 0.0
        for s in graph.successors(name):
            c = edge_cost(name, s, graph.edge_objects(name, s))
            cand = c + bl[s]
            if cand > best:
                best = cand
        bl[name] = t.weight + best
    return bl


def t_levels(graph: TaskGraph, edge_cost: EdgeCost = zero_edge_cost) -> dict[str, float]:
    """Top level of every task (earliest possible start time).

    ``tlevel(t) = max over predecessors p of (tlevel(p) + w(p) + edge_cost)``.
    """
    tl: dict[str, float] = {}
    for name in graph.topological_order():
        best = 0.0
        for p in graph.predecessors(name):
            c = edge_cost(p, name, graph.edge_objects(p, name))
            cand = tl[p] + graph.task(p).weight + c
            if cand > best:
                best = cand
        tl[name] = best
    return tl


def critical_path_length(graph: TaskGraph, edge_cost: EdgeCost = zero_edge_cost) -> float:
    """Length of the longest weighted path through the DAG."""
    bl = b_levels(graph, edge_cost)
    return max(bl.values(), default=0.0)


def depth(graph: TaskGraph) -> int:
    """Number of tasks on the longest (unweighted) path — the DAG depth
    ``D`` of the Blelloch et al. space bound discussed in section 1."""
    d: dict[str, int] = {}
    best = 0
    for name in graph.topological_order():
        d[name] = 1 + max((d[p] for p in graph.predecessors(name)), default=0)
        if d[name] > best:
            best = d[name]
    return best


def level_sets(graph: TaskGraph) -> list[list[str]]:
    """Tasks grouped by unweighted topological level (entry tasks first)."""
    lvl: dict[str, int] = {}
    for name in graph.topological_order():
        lvl[name] = 1 + max((lvl[p] for p in graph.predecessors(name)), default=-1)
    out: list[list[str]] = [[] for _ in range(max(lvl.values(), default=-1) + 1)]
    for name, l in lvl.items():
        out[l].append(name)
    return out


# ----------------------------------------------------------------------
# reachability / validation helpers
# ----------------------------------------------------------------------


def reachable_from(graph: TaskGraph, sources: Iterable[str]) -> set[str]:
    """All tasks reachable from ``sources`` (inclusive)."""
    seen: set[str] = set()
    stack = list(sources)
    while stack:
        n = stack.pop()
        if n in seen:
            continue
        seen.add(n)
        stack.extend(s for s in graph.successors(n) if s not in seen)
    return seen


def has_path(graph: TaskGraph, u: str, v: str) -> bool:
    """True when a directed path ``u`` leads to ``v``."""
    if u == v:
        return True
    seen: set[str] = {u}
    stack = [u]
    while stack:
        n = stack.pop()
        for s in graph.successors(n):
            if s == v:
                return True
            if s not in seen:
                seen.add(s)
                stack.append(s)
    return False


def is_topological(graph: TaskGraph, order: Iterable[str]) -> bool:
    """Check that ``order`` lists every task exactly once, respecting
    every dependence edge."""
    pos = {n: i for i, n in enumerate(order)}
    if len(pos) != graph.num_tasks or any(n not in pos for n in graph.task_names):
        return False
    return all(pos[u] < pos[v] for u, v, _ in graph.edges())


def graph_stats(graph: TaskGraph) -> dict[str, float]:
    """Summary statistics used by reports and benchmark logs."""
    v = graph.num_tasks
    e = graph.num_edges
    work = graph.total_work()
    cp = critical_path_length(graph)
    return {
        "tasks": v,
        "edges": e,
        "objects": graph.num_objects,
        "total_work": work,
        "critical_path": cp,
        "depth": depth(graph),
        "parallelism": (work / cp) if cp > 0 else float(v > 0),
        "S1": graph.total_data(),
    }
