"""The task dependence graph (transformed DAG of true dependencies).

This is the central data structure of the library.  A
:class:`TaskGraph` holds

* the data objects of the computation,
* the tasks, each with its read/write sets,
* the *true* dependence edges ``u -> v`` annotated with the set of data
  objects whose values flow along the edge (an empty set denotes a pure
  synchronisation edge inserted by the dependence-completeness
  transformation),
* the commuting groups (RAPID's commutative-task extension).

The graph is append-only while being built and *frozen* afterwards;
freezing assigns dense integer ids to tasks and objects and computes
CSR-like adjacency used by the scheduling algorithms, which would be far
too slow on dict-of-set adjacency for graphs with tens of thousands of
tasks.
"""

from __future__ import annotations

from collections import deque
from typing import Iterable, Iterator, Mapping, Optional, Sequence

from ..errors import CycleError, GraphError
from .objects import DataObject
from .tasks import Task


class TaskGraph:
    """A DAG of tasks over shared data objects.

    Typical construction goes through
    :class:`~repro.graph.builder.GraphBuilder`, which derives the edges
    from a sequential access trace; this class also allows explicit edge
    insertion for tests and synthetic generators.
    """

    def __init__(self) -> None:
        self._objects: dict[str, DataObject] = {}
        self._tasks: dict[str, Task] = {}
        self._task_order: list[str] = []  # insertion (program) order
        self._succ: dict[str, dict[str, set[str]]] = {}  # u -> v -> objs
        self._pred: dict[str, dict[str, set[str]]] = {}
        self._commute_groups: dict[str, list[str]] = {}
        self._frozen = False
        # Dense-index views, populated by freeze().
        self.task_names: list[str] = []
        self.object_names: list[str] = []
        self.task_index: dict[str, int] = {}
        self.object_index: dict[str, int] = {}
        self.object_size: dict[str, int] = {}

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------

    def _check_mutable(self) -> None:
        if self._frozen:
            raise GraphError("graph is frozen; no further mutation allowed")

    def add_object(self, obj: DataObject | str, size: int = 1) -> DataObject:
        """Register a data object (idempotent for identical definitions)."""
        self._check_mutable()
        if isinstance(obj, str):
            obj = DataObject(obj, size)
        existing = self._objects.get(obj.name)
        if existing is not None:
            if existing != obj:
                raise GraphError(f"object {obj.name!r} redefined with different size")
            return existing
        self._objects[obj.name] = obj
        return obj

    def add_task(self, task: Task) -> Task:
        """Register a task; all accessed objects must already exist."""
        self._check_mutable()
        if task.name in self._tasks:
            raise GraphError(f"duplicate task name {task.name!r}")
        for o in task.accesses:
            if o not in self._objects:
                raise GraphError(f"task {task.name!r} accesses unknown object {o!r}")
        self._tasks[task.name] = task
        self._task_order.append(task.name)
        self._succ[task.name] = {}
        self._pred[task.name] = {}
        if task.commute is not None:
            self._commute_groups.setdefault(task.commute, []).append(task.name)
        return task

    def add_edge(self, u: str, v: str, obj: Optional[str] = None) -> None:
        """Add a true-dependence edge ``u -> v``.

        ``obj`` names the data object whose value flows along the edge;
        ``None`` adds a pure synchronisation edge.  Parallel edges for
        different objects are merged into one edge with a set of objects.
        """
        self._check_mutable()
        if u not in self._tasks or v not in self._tasks:
            missing = u if u not in self._tasks else v
            raise GraphError(f"edge endpoint {missing!r} is not a task")
        if u == v:
            raise GraphError(f"self-dependence on task {u!r}")
        if obj is not None and obj not in self._objects:
            raise GraphError(f"edge {u!r}->{v!r} carries unknown object {obj!r}")
        objs = self._succ[u].setdefault(v, set())
        self._pred[v].setdefault(u, objs)
        if obj is not None:
            objs.add(obj)

    # ------------------------------------------------------------------
    # freezing and indexed views
    # ------------------------------------------------------------------

    def freeze(self) -> "TaskGraph":
        """Validate acyclicity and build dense-index adjacency.

        Returns ``self`` for chaining.  Freezing is idempotent.
        """
        if self._frozen:
            return self
        self.task_names = list(self._task_order)
        self.object_names = sorted(self._objects)
        self.task_index = {n: i for i, n in enumerate(self.task_names)}
        self.object_index = {n: i for i, n in enumerate(self.object_names)}
        self.object_size = {n: o.size for n, o in self._objects.items()}
        self._topo_cache = self._toposort()  # raises CycleError on cycles
        self._edge_count_cache = sum(len(s) for s in self._succ.values())
        self._frozen = True
        return self

    @property
    def frozen(self) -> bool:
        return self._frozen

    def _toposort(self) -> list[str]:
        indeg = {n: len(self._pred[n]) for n in self._task_order}
        queue = deque(n for n in self._task_order if indeg[n] == 0)
        out: list[str] = []
        while queue:
            n = queue.popleft()
            out.append(n)
            for m in self._succ[n]:
                indeg[m] -= 1
                if indeg[m] == 0:
                    queue.append(m)
        if len(out) != len(self._task_order):
            stuck = [n for n in self._task_order if indeg[n] > 0]
            raise CycleError(", ".join(stuck[:5]))
        return out

    def topological_order(self) -> list[str]:
        """A topological order of the tasks (cached once frozen)."""
        if self._frozen:
            return list(self._topo_cache)
        return self._toposort()

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------

    @property
    def num_tasks(self) -> int:
        return len(self._tasks)

    @property
    def num_objects(self) -> int:
        return len(self._objects)

    @property
    def num_edges(self) -> int:
        # Frozen graphs cannot gain edges, so the count computed by
        # freeze() stays valid; recomputing it here would make every
        # fingerprint check O(tasks).
        if self._frozen:
            return self._edge_count_cache
        return sum(len(s) for s in self._succ.values())

    def tasks(self) -> Iterator[Task]:
        """Tasks in program (insertion) order."""
        return (self._tasks[n] for n in self._task_order)

    def objects(self) -> Iterator[DataObject]:
        return iter(self._objects.values())

    def task(self, name: str) -> Task:
        try:
            return self._tasks[name]
        except KeyError:
            raise GraphError(f"unknown task {name!r}") from None

    def object(self, name: str) -> DataObject:
        try:
            return self._objects[name]
        except KeyError:
            raise GraphError(f"unknown object {name!r}") from None

    def has_task(self, name: str) -> bool:
        return name in self._tasks

    def has_object(self, name: str) -> bool:
        return name in self._objects

    def successors(self, name: str) -> Iterable[str]:
        return self._succ[name].keys()

    def successor_map(self) -> dict[str, dict[str, set[str]]]:
        """The internal ``u -> {v -> objects}`` adjacency, for analyses
        that sweep the whole graph without per-node accessor calls.
        Treat as read-only."""
        return self._succ

    def predecessor_map(self) -> dict[str, dict[str, set[str]]]:
        """The internal ``v -> {u -> objects}`` reverse adjacency.
        Treat as read-only."""
        return self._pred

    def predecessors(self, name: str) -> Iterable[str]:
        return self._pred[name].keys()

    def edge_objects(self, u: str, v: str) -> frozenset[str]:
        """Objects flowing along edge ``u -> v`` (empty for sync edges)."""
        try:
            return frozenset(self._succ[u][v])
        except KeyError:
            raise GraphError(f"no edge {u!r} -> {v!r}") from None

    def has_edge(self, u: str, v: str) -> bool:
        return v in self._succ.get(u, ())

    def edges(self) -> Iterator[tuple[str, str, frozenset[str]]]:
        for u, succs in self._succ.items():
            for v, objs in succs.items():
                yield u, v, frozenset(objs)

    def in_degree(self, name: str) -> int:
        return len(self._pred[name])

    def out_degree(self, name: str) -> int:
        return len(self._succ[name])

    def entry_tasks(self) -> list[str]:
        """Tasks without predecessors."""
        return [n for n in self._task_order if not self._pred[n]]

    def exit_tasks(self) -> list[str]:
        """Tasks without successors."""
        return [n for n in self._task_order if not self._succ[n]]

    def writers(self, obj: str) -> list[str]:
        """Tasks that write ``obj``, in program order."""
        return [n for n in self._task_order if obj in self._tasks[n].writes]

    def readers(self, obj: str) -> list[str]:
        """Tasks that read ``obj``, in program order."""
        return [n for n in self._task_order if obj in self._tasks[n].reads]

    def commute_groups(self) -> Mapping[str, Sequence[str]]:
        """Map commuting-group key -> task names in the group."""
        return {k: tuple(v) for k, v in self._commute_groups.items()}

    def commute_peers(self, name: str) -> tuple[str, ...]:
        """Other tasks in the same commuting group as ``name``."""
        t = self._tasks[name]
        if t.commute is None:
            return ()
        return tuple(x for x in self._commute_groups[t.commute] if x != name)

    def total_work(self) -> float:
        """Sum of task weights (the sequential execution time ``PT_1``)."""
        return sum(t.weight for t in self._tasks.values())

    def total_data(self) -> int:
        """Sum of object sizes: the sequential space requirement ``S1``.

        The paper's ``S1`` counts the space dedicated to storing the
        content of data objects (section 1, last paragraph) — exactly the
        sum of all object sizes since a sequential execution holds every
        object exactly once.
        """
        return sum(o.size for o in self._objects.values())

    # ------------------------------------------------------------------
    # misc
    # ------------------------------------------------------------------

    def __contains__(self, name: str) -> bool:
        return name in self._tasks

    def __len__(self) -> int:
        return len(self._tasks)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"TaskGraph(tasks={self.num_tasks}, objects={self.num_objects}, "
            f"edges={self.num_edges}, frozen={self._frozen})"
        )
