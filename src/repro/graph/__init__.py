"""Task/data parallelism substrate: objects, tasks, DAGs, builders.

See :class:`~repro.graph.taskgraph.TaskGraph` for the central data
structure and :class:`~repro.graph.builder.GraphBuilder` for the
inspector-style trace interface.
"""

from .objects import Access, AccessMode, DataObject
from .tasks import Kernel, Task
from .taskgraph import TaskGraph
from .builder import GraphBuilder, is_source_task, source_task_name
from .repeat import base_name, iter_name, repeat_graph, repeat_schedule
from .renaming import rename_versions, renaming_memory_overhead
from . import analysis, classic, generators

__all__ = [
    "Access",
    "AccessMode",
    "DataObject",
    "GraphBuilder",
    "Kernel",
    "Task",
    "TaskGraph",
    "analysis",
    "base_name",
    "classic",
    "generators",
    "is_source_task",
    "iter_name",
    "rename_versions",
    "renaming_memory_overhead",
    "repeat_graph",
    "repeat_schedule",
    "source_task_name",
]
