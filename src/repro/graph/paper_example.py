"""Reconstruction of the paper's worked example (Figures 2, 3 and 5).

Figure 2(a) of the paper shows a DAG with 20 tasks and 11 data objects
``d1..d11``; the figure itself is not machine readable, so this module
reconstructs a DAG consistent with **every** fact stated in the text:

* tasks are ``T[i,j]`` (reads ``d_i``, updates ``d_j``) or ``T[j]``
  (updates ``d_j``); 20 tasks, 11 unit-size objects;
* cyclic mapping ``owner(d_i) = (i-1) mod 2`` on ``p = 2`` processors
  with owner-compute clustering, giving
  ``PERM(P0) = {d1,d3,d5,d7,d9,d11}``, ``PERM(P1) = {d2,d4,d6,d8,d10}``,
  ``VOLA(P0) = {d8}``, ``VOLA(P1) = {d1,d3,d5,d7}``;
* in the RCP-style schedule of Figure 2(b): ``d3`` dies after
  ``T[3,10]``, ``d5`` dies after ``T[5,10]``,
  ``MEM_REQ(T[8,9], P0) = 7``, ``MEM_REQ(T[7,8], P1) = 9`` and
  ``MIN_MEM = 9``;
* the MPO-style schedule of Figure 2(c) has ``MIN_MEM = 8`` (the
  lifetimes of ``d7`` and ``d3`` are disjoint on ``P1``), with a MAP
  right after ``T[5,10]`` freeing ``d3``/``d5`` and allocating ``d7``
  (Figure 3(a));
* the DCG (Figure 5(a)) is acyclic with slice order
  ``d1 -> d3 -> d4 -> d5 -> d7 -> d8 -> d2`` (this reconstruction makes
  that topological order *unique*), and the DTS schedule has
  ``MIN_MEM = 7`` — the paper's 9 / 8 / 7 progression.

Tasks whose target object already has a writer are chained by the
builder's dependence-completeness transformation (sync edges), exactly
the "transformed task graph" semantics of section 2.

One known inconsistency in the paper itself: section 3.3 says capacity 8
leaves "2 units of memory for volatile objects on P1" although
``PERM(P1)`` as defined holds 5 unit objects (leaving 3); the
reconstruction follows the definitions.
"""

from __future__ import annotations

from ..core.placement import Placement, owner_compute_assignment
from ..core.schedule import Schedule
from .builder import GraphBuilder
from .taskgraph import TaskGraph

#: Sequential trace of the reconstructed Figure 2(a) DAG.  Each entry is
#: ``(name, reads, writes)``; weights are 1, object sizes are 1.
TRACE: list[tuple[str, tuple[str, ...], tuple[str, ...]]] = [
    ("T[1]", (), ("d1",)),
    ("T[1,2]", ("d1",), ("d2",)),
    ("T[1,3]", ("d1",), ("d3",)),
    ("T[1,4]", ("d1",), ("d4",)),
    ("T[3,4]", ("d3",), ("d4",)),
    ("T[3,5]", ("d3",), ("d5",)),
    ("T[3,10]", ("d3",), ("d10",)),
    ("T[4,6]", ("d4",), ("d6",)),
    ("T[4,2]", ("d4",), ("d2",)),
    ("T[5,6]", ("d5",), ("d6",)),
    ("T[5,7]", ("d5",), ("d7",)),
    ("T[5,10]", ("d5",), ("d10",)),
    ("T[7,8]", ("d7",), ("d8",)),
    ("T[7,10]", ("d7",), ("d10",)),
    ("T[8]", (), ("d8",)),
    ("T[8,2]", ("d8",), ("d2",)),
    ("T[8,9]", ("d8",), ("d9",)),
    ("T[8,11]", ("d8",), ("d11",)),
    ("T[2,6]", ("d2",), ("d6",)),
    ("T[2,10]", ("d2",), ("d10",)),
]

OBJECTS = tuple(f"d{i}" for i in range(1, 12))

#: Expected DCG slice order of Figure 5(a).
DCG_SLICE_ORDER = ("d1", "d3", "d4", "d5", "d7", "d8", "d2")


def paper_example_graph() -> TaskGraph:
    """The reconstructed 20-task / 11-object DAG of Figure 2(a)."""
    b = GraphBuilder(materialize_inputs=False, dependence_mode="transform")
    for o in OBJECTS:
        b.add_object(o, 1)
    for name, reads, writes in TRACE:
        b.add_task(name, reads=reads, writes=writes, weight=1.0)
    return b.build()


def paper_placement() -> Placement:
    """Cyclic mapping ``owner(d_i) = (i-1) mod 2`` on two processors."""
    return Placement(2, {f"d{i}": (i - 1) % 2 for i in range(1, 12)})


def paper_assignment(graph: TaskGraph, placement: Placement) -> dict[str, int]:
    """Owner-compute task assignment of the example."""
    return owner_compute_assignment(graph, placement)


#: Processor-0 order shared by all three schedules of the example.
P0_ORDER = ["T[1]", "T[1,3]", "T[3,5]", "T[5,7]", "T[8,9]", "T[8,11]"]

#: Figure 2(b): RCP-style order of P1 — critical-path driven, it starts
#: ``T[7,8]`` while ``d1``, ``d3`` and ``d5`` are still alive, so four
#: volatile objects coexist (``MIN_MEM = 9``).
P1_ORDER_B = [
    "T[1,4]", "T[3,4]", "T[4,6]", "T[5,6]", "T[7,8]", "T[8]", "T[1,2]",
    "T[3,10]", "T[5,10]", "T[7,10]", "T[4,2]", "T[8,2]", "T[2,6]", "T[2,10]",
]

#: Figure 2(c): MPO-style order of P1 — volatile objects are re-used as
#: soon as possible; ``d7``'s lifetime is disjoint from ``d3``'s
#: (``MIN_MEM = 8``), and a MAP right after ``T[5,10]`` frees ``d3``/
#: ``d5`` and allocates ``d7`` (Figure 3(a)).
P1_ORDER_C = [
    "T[1,4]", "T[3,4]", "T[4,6]", "T[5,6]", "T[1,2]", "T[3,10]", "T[5,10]",
    "T[7,8]", "T[8]", "T[7,10]", "T[4,2]", "T[8,2]", "T[2,6]", "T[2,10]",
]


def _make_schedule(graph: TaskGraph, p1_order: list[str], label: str) -> Schedule:
    placement = paper_placement()
    assignment = paper_assignment(graph, placement)
    s = Schedule(
        graph=graph,
        placement=placement,
        assignment=assignment,
        orders=[list(P0_ORDER), list(p1_order)],
        meta={"heuristic": label},
    )
    s.validate()
    return s


def schedule_b(graph: TaskGraph | None = None) -> Schedule:
    """The RCP-style schedule of Figure 2(b) (``MIN_MEM = 9``)."""
    return _make_schedule(graph or paper_example_graph(), P1_ORDER_B, "Fig2b/RCP")


def schedule_c(graph: TaskGraph | None = None) -> Schedule:
    """The MPO-style schedule of Figure 2(c) (``MIN_MEM = 8``)."""
    return _make_schedule(graph or paper_example_graph(), P1_ORDER_C, "Fig2c/MPO")
