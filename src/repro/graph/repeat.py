"""Graph repetition: unroll an iterative computation.

RAPID's applications "involve iterative computation and have invariant
or slowly changed dependence structures" (section 2).  Given the task
graph of one iteration, :func:`repeat_graph` replays its sequential
trace ``n`` times over the *same* data objects: iteration ``i+1``'s
reads see the versions written by iteration ``i``, so the unrolled graph
is exactly the multi-iteration computation — and executing it on the
simulator captures the cross-iteration pipelining that running
iterations back-to-back would miss.

:func:`repeat_schedule` unrolls a single-iteration schedule the same
way (each processor's order repeated), producing a valid schedule of
the repeated graph; the MAP planner and the simulator then handle
volatile liveness *across* iteration boundaries exactly.
"""

from __future__ import annotations

from ..core.placement import Placement
from ..core.schedule import Schedule
from .builder import GraphBuilder, is_source_task
from .taskgraph import TaskGraph

SEP = "#it"


def iter_name(task: str, i: int) -> str:
    """Name of iteration ``i``'s clone of ``task``."""
    return f"{task}{SEP}{i}"


def base_name(task: str) -> str:
    """Original name of a repeated task (identity for others)."""
    return task.split(SEP, 1)[0]


def repeat_graph(graph: TaskGraph, n: int) -> TaskGraph:
    """Unroll ``graph`` ``n`` times over the same data objects.

    The original graph's implicit source tasks are dropped from the
    replay (the new builder re-materialises initial data exactly once);
    commuting-group keys are renamed per iteration.
    """
    if n < 1:
        raise ValueError("n must be >= 1")
    b = GraphBuilder(materialize_inputs=True, dependence_mode="transform")
    for o in graph.objects():
        b.add_object(o.name, o.size)
    for i in range(n):
        for t in graph.tasks():
            if is_source_task(t.name):
                continue
            b.add_task(
                iter_name(t.name, i),
                reads=t.reads,
                writes=t.writes,
                weight=t.weight,
                commute=f"{t.commute}{SEP}{i}" if t.commute is not None else None,
                kernel=t.kernel,
            )
    return b.build()


def repeat_schedule(schedule: Schedule, n: int) -> Schedule:
    """Unroll a single-iteration schedule over the repeated graph.

    Each processor executes its original order once per iteration;
    implicit source tasks of the repeated graph go first on their
    owners' processors (position of the originals, iteration 0 only).
    """
    rg = repeat_graph(schedule.graph, n)
    assignment: dict[str, int] = {}
    orders: list[list[str]] = [[] for _ in range(schedule.num_procs)]
    # Sources of the repeated graph: schedule them first on the owner.
    placement = Placement(schedule.placement.num_procs, dict(schedule.placement.owner))
    for t in rg.task_names:
        if is_source_task(t):
            obj = t.split(":", 1)[1]
            q = placement[obj]
            assignment[t] = q
            orders[q].append(t)
    for i in range(n):
        for q, order in enumerate(schedule.orders):
            for t in order:
                if is_source_task(t):
                    continue
                name = iter_name(t, i)
                assignment[name] = q
                orders[q].append(name)
    out = Schedule(
        graph=rg,
        placement=placement,
        assignment=assignment,
        orders=orders,
        meta={**schedule.meta, "iterations": n},
    )
    out.validate()
    return out
