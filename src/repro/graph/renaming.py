"""Data renaming (multi-buffering) — the alternative the paper weighs.

Section 3.1: an address becomes stale when a volatile copy dies; "Data
renaming would avoid this problem [4], but it creates more complexity in
indexing data objects and memory optimization."  This module implements
the renaming transformation so the trade-off can be *measured*:

:func:`rename_versions` rewrites a task graph so that selected objects
rotate through ``k`` buffers (``o | o#b1 | ... | o#b{k-1}``): each write
targets the next buffer, readers read the buffer their version lives in.
With ``k >= 2`` consecutive versions live in different storage, so the
write-after-read handshake between a producer and its remote readers
disappears — producer/consumer loops pipeline — at the price of ``k``
times the object's memory.

The paper's RAPID chooses *not* to rename (allocated-once volatile
objects, weaker invalidation criterion); the renaming ablation benchmark
quantifies what that choice costs and saves.
"""

from __future__ import annotations

from typing import Iterable, Optional

from .builder import GraphBuilder, is_source_task
from .taskgraph import TaskGraph

BUF_SEP = "#b"


def buffer_name(obj: str, b: int) -> str:
    """Name of buffer ``b`` of a renamed object (buffer 0 keeps the
    original name)."""
    return obj if b == 0 else f"{obj}{BUF_SEP}{b}"


def renamed_objects(obj: str, buffers: int) -> list[str]:
    return [buffer_name(obj, b) for b in range(buffers)]


def rename_versions(
    graph: TaskGraph,
    buffers: int = 2,
    objects: Optional[Iterable[str]] = None,
) -> TaskGraph:
    """Rewrite ``graph`` with ``buffers``-deep rotation on ``objects``
    (default: every object written more than once).

    Task names are preserved; the trace is replayed so all derived
    dependences (including the now-relaxed anti/output chains) are
    recomputed.  ``buffers=1`` reproduces the original graph.
    """
    if buffers < 1:
        raise ValueError("buffers must be >= 1")
    if objects is None:
        objects = [
            o.name
            for o in graph.objects()
            if len([w for w in graph.writers(o.name) if not is_source_task(w)]) > 1
        ]
    targets = set(objects)
    for o in targets:
        if not graph.has_object(o):
            raise ValueError(f"unknown object {o!r}")

    b = GraphBuilder(materialize_inputs=True, dependence_mode="transform")
    for o in graph.objects():
        if o.name in targets:
            for name in renamed_objects(o.name, buffers):
                b.add_object(name, o.size)
        else:
            b.add_object(o.name, o.size)

    current: dict[str, int] = {o: 0 for o in targets}  # live buffer index

    def read_name(o: str) -> str:
        if o in targets:
            return buffer_name(o, current[o])
        return o

    def write_name(o: str, also_reads: bool) -> str:
        if o not in targets:
            return o
        if also_reads:
            # read-modify-write stays in place: the new version is
            # derived from the old one in the same buffer (rotating would
            # need a copy, which renaming is meant to avoid for RMW).
            return buffer_name(o, current[o])
        current[o] = (current[o] + 1) % buffers
        return buffer_name(o, current[o])

    for t in graph.tasks():
        if is_source_task(t.name):
            continue
        reads = [read_name(o) for o in t.read_only]
        writes = []
        for o in t.writes:
            rmw = o in t.reads
            if rmw:
                reads.append(read_name(o))
            writes.append(write_name(o, also_reads=rmw))
        # de-duplicate while preserving order (a task may read two
        # versions that now map to one buffer name); reads legitimately
        # overlap writes for read-modify-write tasks.
        reads = list(dict.fromkeys(reads))
        b.add_task(
            t.name,
            reads=tuple(reads),
            writes=tuple(writes),
            weight=t.weight,
            commute=t.commute,
            # Kernels address the store by the original object names, so
            # they are dropped: the renamed graph is a scheduling/timing
            # model (which is what the renaming trade-off is about).
            kernel=None,
        )
    return b.build()


def renaming_memory_overhead(graph: TaskGraph, renamed: TaskGraph) -> float:
    """Ratio of total data footprint after/before renaming."""
    before = graph.total_data()
    return renamed.total_data() / before if before else 1.0
