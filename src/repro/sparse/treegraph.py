"""Column-level elimination-tree task graphs (the tree workloads).

The block Cholesky graphs of :mod:`repro.sparse.cholesky` are DAGs; the
*column-level* view of the same factorization is a forest — the
elimination tree (:mod:`repro.sparse.etree`).  This module builds that
forest as a first-class workload: one task per column ``j`` (weight
``nnz(col j)**2`` flops — the dense-column update cost), one object per
column vector (``nnz(col j)`` stored entries), task ``C{j}`` reading its
etree children's columns and writing its own.  It is the instance
family the tree-specialised heuristic
(:func:`~repro.core.treesched.tree_order`) is built for, and the
optimality-gap scorecard measures the generic heuristics on it.

The matrix is minimum-degree ordered by default: the natural ordering
of the ``bcsstk``-style band matrices degenerates the etree into a path
(no tree parallelism at all), while ``md`` yields the bushy forests the
tree results are about.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp

from ..core.placement import Placement, owner_compute_assignment
from ..graph.builder import GraphBuilder
from ..graph.taskgraph import TaskGraph
from .etree import elimination_tree
from .ordering import order_matrix

BYTES_PER_ENTRY = 8


def column_name(j: int) -> str:
    return f"x{j}"


def task_name(j: int) -> str:
    return f"C{j}"


@dataclass
class EtreeProblem:
    """A column-level elimination-tree instance.

    Exposes the workload interface of
    :meth:`repro.experiments.common.ExperimentContext.register`:
    ``graph``, ``placement(p)`` and ``assignment(placement)``.
    Picklable (plain data), so it can ship to parallel sweep workers.
    """

    parent: np.ndarray
    graph: TaskGraph

    @property
    def n(self) -> int:
        return len(self.parent)

    def placement(self, p: int) -> Placement:
        """Cyclic ownership of the column vectors."""
        owner = {column_name(j): j % p for j in range(self.n)}
        return Placement(p, owner)

    def assignment(self, placement: Placement) -> dict[str, int]:
        return owner_compute_assignment(self.graph, placement)


def build_etree_problem(
    a: sp.spmatrix,
    ordering: str = "md",
    flop_time: float = 1.0,
) -> EtreeProblem:
    """Elimination-tree workload of (the ordered) ``a``.

    ``ordering`` is applied first (see
    :func:`repro.sparse.ordering.order_matrix`); the etree of the
    permuted pattern defines the task forest.
    """
    a2, _perm = order_matrix(a, ordering)
    parent = elimination_tree(a2)
    n = len(parent)
    s = sp.csr_matrix(a2)
    s = sp.csc_matrix((s + s.T).astype(bool))
    # Lower-triangular column counts (diagonal included) of the
    # symmetrised pattern: the stored length of column j's vector.
    colnnz = np.empty(n, dtype=np.int64)
    for j in range(n):
        rows = s.indices[s.indptr[j]:s.indptr[j + 1]]
        colnnz[j] = int(np.count_nonzero(rows >= j))
    children: list[list[int]] = [[] for _ in range(n)]
    for v in range(n):
        if parent[v] != -1:
            children[parent[v]].append(v)

    b = GraphBuilder(materialize_inputs=False)
    for j in range(n):
        b.add_object(column_name(j), int(colnnz[j]) * BYTES_PER_ENTRY)
    # parent[j] > j in an elimination tree, so the natural column order
    # is already children-before-parents.
    for j in range(n):
        b.add_task(
            task_name(j),
            reads=tuple(column_name(c) for c in children[j]),
            writes=(column_name(j),),
            weight=float(colnnz[j]) ** 2 * flop_time,
        )
    return EtreeProblem(parent=parent, graph=b.build())
