"""End-to-end sparse linear solvers built from the task-graph phases.

``cholesky_solve`` chains the three RAPID-scheduled phases —
factorization, forward substitution, backward substitution — entirely
through task kernels, so the whole solver path is exercised by the same
scheduling/execution machinery the paper evaluates.  ``lu_solve`` does
the same for the unsymmetric case using the factored panels directly
(the substitution there is performed from the assembled factors, since
the paper's LU evaluation covers factorization only).
"""

from __future__ import annotations

import numpy as np
import scipy.linalg as sla

from ..rapid.executor import execute_serial
from .cholesky import CholeskyProblem
from .lu import LUProblem
from .trisolve import build_trisolve


def cholesky_solve(
    prob: CholeskyProblem, b: np.ndarray, flop_time: float = 1.0
) -> np.ndarray:
    """Solve ``A x = b`` (A in the problem's permuted ordering) through
    the factorization + two substitution task graphs."""
    if b.shape != (prob.n,):
        raise ValueError(f"b must have shape ({prob.n},)")
    factor_store = prob.initial_store()
    execute_serial(prob.graph, factor_store)

    fwd = build_trisolve(prob, lower=True, flop_time=flop_time)
    store = fwd.initial_store(factor_store, b)
    execute_serial(fwd.graph, store)
    y = fwd.gather(store)

    bwd = build_trisolve(prob, lower=False, flop_time=flop_time)
    store = bwd.initial_store(factor_store, y)
    execute_serial(bwd.graph, store)
    return bwd.gather(store)


def lu_solve(prob: LUProblem, b: np.ndarray) -> np.ndarray:
    """Solve ``A x = b`` via the 1-D column-block LU task graph."""
    if b.shape != (prob.n,):
        raise ValueError(f"b must have shape ({prob.n},)")
    store = prob.initial_store()
    execute_serial(prob.graph, store)
    p, l, u = prob.assemble(store)
    y = sla.solve_triangular(l, p @ b, lower=True, unit_diagonal=True)
    return sla.solve_triangular(u, y, lower=False)
