"""1-D column-block sparse LU with partial pivoting (section 5, app 2).

The paper's second application: Gaussian elimination with partial
pivoting, parallelised with *static symbolic factorization* (a
pivoting-independent pattern bound, here George-Ng's ``AᵀA`` rule) to
avoid dynamic dependence changes, and a *1-D column-block mapping* so
that pivot search and row swapping stay local to a panel's owner.

Task graph (trace order ``k = 0..N-1``):

* ``Factor(k)`` — factor panel ``k`` (pivot search + swaps recorded in
  the panel payload);
* ``Update(k, j)`` — replay panel ``k``'s eliminations on a later panel
  ``j`` that the static pattern marks as affected.  Unlike Cholesky's
  additive GEMMs, LU updates to one panel do **not** commute (they apply
  row swaps), so they form a read-modify-write chain in ``k`` order —
  which is why the 1-D LU DCG is acyclic with one slice per panel and
  Corollary 2 gives the ``S1/p + w`` space bound.

Panels are cyclically owned (``owner(P[k]) = k mod p``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np
import scipy.sparse as sp

from ..core.placement import Placement, owner_compute_assignment
from ..graph.builder import GraphBuilder
from ..graph.taskgraph import TaskGraph
from .blocks import BlockPartition, lu_update_pattern, panel_nnz_1d
from .kernels import lu_factor_flops, lu_factor_panel, lu_update_flops, lu_update_panel
from .ordering import order_matrix
from .symbolic import ColumnPattern, symbolic_lu_static

BYTES_PER_ENTRY = 8


def panel_name(k: int) -> str:
    return f"P[{k}]"


@dataclass
class LUProblem:
    """A 1-D column-block LU instance: matrix, static pattern, graph."""

    a: sp.csr_matrix  # permuted matrix
    perm: np.ndarray
    part: BlockPartition
    lower: ColumnPattern
    upper: ColumnPattern
    panel_nnz: list[int]
    updates: list[list[int]]  # Update(k, j) for j in updates[k]
    graph: TaskGraph

    @property
    def n(self) -> int:
        return self.a.shape[0]

    @property
    def num_panels(self) -> int:
        return self.part.num_blocks

    def placement(self, p: int) -> Placement:
        """Cyclic panel ownership."""
        return Placement(
            p, {panel_name(k): k % p for k in range(self.num_panels)}
        )

    def assignment(self, placement: Placement) -> dict[str, int]:
        return owner_compute_assignment(self.graph, placement)

    # -- numerics -----------------------------------------------------

    def permute(self, a: sp.spmatrix) -> sp.csr_matrix:
        """Apply this problem's fill-reducing permutation to a matrix
        with the same (or contained) sparsity pattern — used when the
        numeric values change but the structure is invariant (Newton's
        method, time stepping)."""
        return sp.csr_matrix(sp.csr_matrix(a)[self.perm][:, self.perm])

    def initial_store(self, a: Optional[sp.spmatrix] = None) -> dict[str, dict]:
        """Panel payloads.  ``a`` (already in permuted order, same
        pattern bound) defaults to the problem's own matrix."""
        dense = (self.a if a is None else sp.csr_matrix(a)).toarray()
        if dense.shape != (self.n, self.n):
            raise ValueError(f"matrix must be {self.n}x{self.n}")
        store: dict[str, dict] = {}
        for k in range(self.num_panels):
            c0, c1 = self.part.bounds(k)
            store[panel_name(k)] = {"A": np.array(dense[:, c0:c1]), "piv": []}
        return store

    def assemble(self, store: dict[str, dict]) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Rebuild ``(P, L, U)`` with ``P @ A = L @ U`` from the panels.

        A panel's row interchanges are applied *forward* to later panels
        by the Update tasks, but — as in LAPACK's ``getrf`` — they must
        also permute the multiplier (L) rows of **earlier** panels to
        express the factorization in final row order.  The distributed
        scheme leaves that implicit (each panel stays in its owner's
        memory, exactly why the 1-D mapping eliminates swap
        communication); assembly performs the left-swaps here.
        """
        n = self.n
        m = np.zeros((n, n))
        for k in range(self.num_panels):
            c0, c1 = self.part.bounds(k)
            m[:, c0:c1] = store[panel_name(k)]["A"]
        for k in range(self.num_panels):
            c0, _c1 = self.part.bounds(k)
            if c0 == 0:
                continue
            for gc, r in store[panel_name(k)]["piv"]:
                if r != gc:
                    m[[gc, r], :c0] = m[[r, gc], :c0]
        l = np.tril(m, -1) + np.eye(n)
        u = np.triu(m)
        rows = np.arange(n)
        for k in range(self.num_panels):
            for gc, r in store[panel_name(k)]["piv"]:
                if r != gc:
                    rows[[gc, r]] = rows[[r, gc]]
        p = np.zeros((n, n))
        p[np.arange(n), rows] = 1.0
        return p, l, u

    def factor_error(self, store: dict[str, dict]) -> float:
        """``max |L U - P A|`` relative to ``max |A|``."""
        p, l, u = self.assemble(store)
        a = self.a.toarray()
        return float(np.max(np.abs(l @ u - p @ a)) / max(np.max(np.abs(a)), 1e-300))


def build_lu(
    a: sp.spmatrix,
    block_size: int = 8,
    ordering: str = "md",
    flop_time: float = 1.0,
    with_kernels: bool = True,
    partition: str = "uniform",
) -> LUProblem:
    """Build the 1-D column-block LU task graph of ``a``.

    ``partition="supernodal"`` derives structure-driven panel widths
    from the static factor pattern (capped at ``block_size``).
    """
    am, perm = order_matrix(a, ordering)
    lower, upper = symbolic_lu_static(am)
    n = am.shape[0]
    if partition == "supernodal":
        from .supernodes import supernode_partition

        part = supernode_partition(lower, max_width=block_size)
    elif partition == "uniform":
        part = BlockPartition(n, block_size)
    else:
        raise ValueError(f"unknown partition {partition!r}")
    nnz = panel_nnz_1d(lower, upper, part)
    updates = lu_update_pattern(lower, part)

    b = GraphBuilder(materialize_inputs=True, dependence_mode="transform")
    for k in range(part.num_blocks):
        b.add_object(panel_name(k), nnz[k] * BYTES_PER_ENTRY)

    def k_factor(k: int):
        c0, c1 = part.bounds(k)
        name = panel_name(k)

        def kernel(store: dict) -> None:
            lu_factor_panel(store[name], c0, c1)

        return kernel

    def k_update(k: int, j: int):
        c0, c1 = part.bounds(k)
        src, dst = panel_name(k), panel_name(j)

        def kernel(store: dict) -> None:
            lu_update_panel(store[src], store[dst], c0, c1)

        return kernel

    for k in range(part.num_blocks):
        wk = part.width(k)
        c0, _c1 = part.bounds(k)
        active = n - c0
        b.add_task(
            f"Factor({k})",
            reads=(panel_name(k),),
            writes=(panel_name(k),),
            weight=lu_factor_flops(active, wk) * flop_time,
            kernel=k_factor(k) if with_kernels else None,
        )
        for j in updates[k]:
            b.add_task(
                f"Update({k},{j})",
                reads=(panel_name(k), panel_name(j)),
                writes=(panel_name(j),),
                weight=lu_update_flops(active, wk, part.width(j)) * flop_time,
                kernel=k_update(k, j) if with_kernels else None,
            )
    graph = b.build()
    return LUProblem(
        a=am,
        perm=perm,
        part=part,
        lower=lower,
        upper=upper,
        panel_nnz=nnz,
        updates=updates,
        graph=graph,
    )
