"""Sparse-matrix application substrates (section 5 of the paper).

* :mod:`repro.sparse.matrices` — synthetic Harwell-Boeing stand-ins;
* :mod:`repro.sparse.ordering` — minimum degree / RCM fill-reducing
  orderings;
* :mod:`repro.sparse.etree`, :mod:`repro.sparse.symbolic` — elimination
  trees and symbolic factorizations (including the static LU bound);
* :mod:`repro.sparse.cholesky` — 2-D block sparse Cholesky task graphs;
* :mod:`repro.sparse.lu` — 1-D column-block sparse LU with partial
  pivoting.
"""

from .blocks import BlockPartition, block_col_pattern, block_nnz_2d
from .cholesky import CholeskyProblem, build_cholesky
from .etree import elimination_tree, postorder, tree_height
from .lu import LUProblem, build_lu
from .matrices import (
    bcsstk15_like,
    bcsstk24_like,
    bcsstk33_like,
    convection_diffusion_2d,
    goodwin_like,
    grid_laplacian_2d,
    grid_laplacian_3d,
    perturbed_grid_spd,
    random_spd,
    truncate,
)
from .ordering import minimum_degree, order_matrix, rcm
from .solve import cholesky_solve, lu_solve
from .symbolic import (
    cholesky_flops,
    fill_nnz,
    symbolic_cholesky,
    symbolic_lu_static,
)
from .supernodes import (
    VariablePartition,
    supernode_partition,
    supernode_stats,
    uniform_partition,
)
from .trisolve import TrisolveProblem, build_trisolve
from . import hb

__all__ = [
    "BlockPartition",
    "CholeskyProblem",
    "LUProblem",
    "bcsstk15_like",
    "bcsstk24_like",
    "bcsstk33_like",
    "block_col_pattern",
    "block_nnz_2d",
    "build_cholesky",
    "build_lu",
    "cholesky_flops",
    "convection_diffusion_2d",
    "elimination_tree",
    "fill_nnz",
    "goodwin_like",
    "grid_laplacian_2d",
    "grid_laplacian_3d",
    "minimum_degree",
    "order_matrix",
    "perturbed_grid_spd",
    "postorder",
    "random_spd",
    "rcm",
    "symbolic_cholesky",
    "symbolic_lu_static",
    "tree_height",
    "truncate",
    "TrisolveProblem",
    "VariablePartition",
    "build_trisolve",
    "cholesky_solve",
    "hb",
    "lu_solve",
    "supernode_partition",
    "supernode_stats",
    "uniform_partition",
]
