"""2-D block sparse Cholesky factorization (section 5, application 1).

Builds the task graph of the right-looking block Cholesky on the filled
pattern of a (pre-ordered) SPD matrix:

* one data object per nonzero ``w x w`` block of ``L``'s pattern, sized
  by the block's stored entries (8 bytes each);
* ``POTRF(k)`` factors diagonal block ``(k,k)``; ``TRSM(i,k)`` scales
  subdiagonal block ``(i,k)``; ``GEMM(i,j,k)`` applies the Schur update
  ``A_ij -= L_ik L_jk^T`` — updates into the same block form a
  *commuting group* (RAPID's commutative-task extension), since they are
  additive;
* the 2-D block-cyclic mapping of [14] (Rothberg & Schreiber) assigns
  ``owner(A[i,j]) = (i mod Pr) * Pc + (j mod Pc)``, and owner-compute
  clusters tasks onto the owners of the blocks they write;
* implicit source tasks materialise each block's initial content on its
  owner.

Numeric kernels are attached to every task so the serial executor can
verify that any schedule produced by the library computes the true
factor (tested against dense NumPy Cholesky).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp

from ..core.placement import Placement, owner_compute_assignment
from ..graph.builder import GraphBuilder
from ..graph.taskgraph import TaskGraph
from .blocks import BlockPartition, block_col_pattern, block_nnz_2d
from .kernels import gemm_flops, gemm_update, potrf, potrf_flops, trsm_flops, trsm_lower
from .ordering import order_matrix
from .symbolic import ColumnPattern, symbolic_cholesky

BYTES_PER_ENTRY = 8


def block_name(i: int, j: int) -> str:
    return f"A[{i},{j}]"


@dataclass
class CholeskyProblem:
    """A 2-D block Cholesky instance: matrix, pattern, task graph."""

    a: sp.csr_matrix  # permuted matrix
    perm: np.ndarray
    part: BlockPartition
    cols: ColumnPattern
    nonzero_blocks: dict[tuple[int, int], int]  # block -> nnz
    graph: TaskGraph

    @property
    def n(self) -> int:
        return self.a.shape[0]

    @property
    def num_block_cols(self) -> int:
        return self.part.num_blocks

    def processor_grid(self, p: int) -> tuple[int, int]:
        """Near-square ``Pr x Pc`` grid with ``Pr * Pc = p``."""
        pr = int(np.sqrt(p))
        while p % pr:
            pr -= 1
        return max(pr, 1), p // max(pr, 1)

    def placement(self, p: int) -> Placement:
        """2-D block-cyclic ownership of the nonzero blocks."""
        pr, pc = self.processor_grid(p)
        owner = {
            block_name(i, j): (i % pr) * pc + (j % pc)
            for (i, j) in self.nonzero_blocks
        }
        return Placement(p, owner)

    def assignment(self, placement: Placement) -> dict[str, int]:
        return owner_compute_assignment(self.graph, placement)

    # -- numerics -----------------------------------------------------

    def initial_store(self) -> dict[str, np.ndarray]:
        """Dense per-block payloads holding the permuted matrix values."""
        dense = self.a.toarray()
        store: dict[str, np.ndarray] = {}
        for (i, j) in self.nonzero_blocks:
            r0, r1 = self.part.bounds(i)
            c0, c1 = self.part.bounds(j)
            store[block_name(i, j)] = np.array(dense[r0:r1, c0:c1])
        return store

    def assemble_factor(self, store: dict[str, np.ndarray]) -> np.ndarray:
        """Rebuild the dense lower factor from the block store."""
        l = np.zeros((self.n, self.n))
        for (i, j) in self.nonzero_blocks:
            r0, r1 = self.part.bounds(i)
            c0, c1 = self.part.bounds(j)
            blk = store[block_name(i, j)]
            l[r0:r1, c0:c1] = np.tril(blk) if i == j else blk
        return l

    def factor_error(self, store: dict[str, np.ndarray]) -> float:
        """``max |L L^T - A|`` relative to ``max |A|``."""
        l = self.assemble_factor(store)
        a = self.a.toarray()
        return float(np.max(np.abs(l @ l.T - a)) / max(np.max(np.abs(a)), 1e-300))


def build_cholesky(
    a: sp.spmatrix,
    block_size: int = 8,
    ordering: str = "md",
    flop_time: float = 1.0,
    with_kernels: bool = True,
    partition: str = "uniform",
) -> CholeskyProblem:
    """Build the 2-D block Cholesky task graph of ``a``.

    ``flop_time`` converts flop counts to task weights (pass
    ``1 / spec.flop_rate`` for machine-time weights).  ``partition``
    selects fixed-width blocks (``"uniform"``) or structure-driven
    fundamental supernodes capped at ``block_size`` (``"supernodal"``).
    """
    am, perm = order_matrix(a, ordering)
    cols, _parent = symbolic_cholesky(am)
    n = am.shape[0]
    if partition == "supernodal":
        from .supernodes import supernode_partition

        part = supernode_partition(cols, max_width=block_size)
    elif partition == "uniform":
        part = BlockPartition(n, block_size)
    else:
        raise ValueError(f"unknown partition {partition!r}")
    nz = block_nnz_2d(cols, part)
    col_pat = block_col_pattern(cols, part)
    nblocks = part.num_blocks

    b = GraphBuilder(materialize_inputs=True, dependence_mode="transform")
    for (i, j), cnt in sorted(nz.items()):
        b.add_object(block_name(i, j), cnt * BYTES_PER_ENTRY)

    wk = part.width

    def k_potrf(k: int):
        name = block_name(k, k)

        def kernel(store: dict) -> None:
            store[name] = potrf(store[name])

        return kernel

    def k_trsm(i: int, k: int):
        nd, nk = block_name(i, k), block_name(k, k)

        def kernel(store: dict) -> None:
            store[nd] = trsm_lower(store[nk], store[nd])

        return kernel

    def k_gemm(i: int, j: int, k: int):
        nij, nik, njk = block_name(i, j), block_name(i, k), block_name(j, k)

        def kernel(store: dict) -> None:
            gemm_update(store[nij], store[nik], store[njk])

        return kernel

    for k in range(nblocks):
        below = [i for i in col_pat[k] if i > k]
        b.add_task(
            f"POTRF({k})",
            reads=(block_name(k, k),),
            writes=(block_name(k, k),),
            weight=potrf_flops(wk(k)) * flop_time,
            kernel=k_potrf(k) if with_kernels else None,
        )
        for i in below:
            b.add_task(
                f"TRSM({i},{k})",
                reads=(block_name(k, k), block_name(i, k)),
                writes=(block_name(i, k),),
                weight=trsm_flops(wk(k), wk(i)) * flop_time,
                kernel=k_trsm(i, k) if with_kernels else None,
            )
        for j in below:
            for i in below:
                if i < j or (i, j) not in nz:
                    continue
                reads = [block_name(i, k), block_name(i, j)]
                if i != j:
                    reads.insert(1, block_name(j, k))
                b.add_task(
                    f"GEMM({i},{j},{k})",
                    reads=tuple(reads),
                    writes=(block_name(i, j),),
                    weight=gemm_flops(wk(i), wk(j), wk(k)) * flop_time,
                    commute=f"upd:{i},{j}",
                    kernel=k_gemm(i, j, k) if with_kernels else None,
                )
    graph = b.build()
    return CholeskyProblem(
        a=am, perm=perm, part=part, cols=cols, nonzero_blocks=nz, graph=graph
    )
