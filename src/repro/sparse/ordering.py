"""Fill-reducing orderings.

Sparse direct solvers permute the matrix symmetrically before
factorization to limit fill.  Two orderings are provided:

* :func:`minimum_degree` — a from-scratch implementation of the classic
  minimum-degree heuristic on the quotient-free elimination graph
  (exact degrees, no supervariables — adequate for the problem sizes of
  the reproduction);
* :func:`rcm` — reverse Cuthill-McKee via SciPy (bandwidth-reducing).

Both return a permutation ``perm`` such that ``A[perm][:, perm]`` is the
matrix to factorize.
"""

from __future__ import annotations

import heapq

import numpy as np
import scipy.sparse as sp
from scipy.sparse.csgraph import reverse_cuthill_mckee


def _symmetric_pattern(a: sp.spmatrix) -> sp.csr_matrix:
    """Boolean symmetric pattern of ``a`` without the diagonal."""
    s = sp.csr_matrix(a, copy=True)
    s.data = np.ones_like(s.data)
    s = sp.csr_matrix((s + s.T) > 0, dtype=np.int8)
    s.setdiag(0)
    s.eliminate_zeros()
    return s


def minimum_degree(a: sp.spmatrix) -> np.ndarray:
    """Minimum-degree ordering of the symmetric pattern of ``a``.

    Classic elimination-graph algorithm: repeatedly eliminate a vertex
    of minimum degree and connect its neighbours into a clique.  Uses a
    lazy heap; complexity is fine for n up to a few thousand.
    """
    s = _symmetric_pattern(a)
    n = s.shape[0]
    adj: list[set[int]] = [set(s.indices[s.indptr[i] : s.indptr[i + 1]]) for i in range(n)]
    heap: list[tuple[int, int]] = [(len(adj[i]), i) for i in range(n)]
    heapq.heapify(heap)
    eliminated = np.zeros(n, dtype=bool)
    perm = np.empty(n, dtype=np.int64)
    k = 0
    while heap:
        deg, v = heapq.heappop(heap)
        if eliminated[v] or deg != len(adj[v]):
            continue  # stale entry
        eliminated[v] = True
        perm[k] = v
        k += 1
        nbrs = [u for u in adj[v] if not eliminated[u]]
        # Form the clique among v's neighbours.
        for u in nbrs:
            adj[u].discard(v)
        for i, u in enumerate(nbrs):
            au = adj[u]
            for w in nbrs[i + 1 :]:
                if w not in au:
                    au.add(w)
                    adj[w].add(u)
        for u in nbrs:
            heapq.heappush(heap, (len(adj[u]), u))
        adj[v] = set()
    assert k == n
    return perm


def rcm(a: sp.spmatrix) -> np.ndarray:
    """Reverse Cuthill-McKee ordering (SciPy)."""
    s = _symmetric_pattern(a)
    return np.asarray(reverse_cuthill_mckee(s, symmetric_mode=True), dtype=np.int64)


def natural(a: sp.spmatrix) -> np.ndarray:
    """The identity ordering."""
    return np.arange(a.shape[0], dtype=np.int64)


ORDERINGS = {"md": minimum_degree, "rcm": rcm, "natural": natural}


def apply_ordering(a: sp.spmatrix, perm: np.ndarray) -> sp.csr_matrix:
    """Symmetric permutation ``A[perm][:, perm]``."""
    a = sp.csr_matrix(a)
    return sp.csr_matrix(a[perm][:, perm])


def order_matrix(a: sp.spmatrix, method: str = "md") -> tuple[sp.csr_matrix, np.ndarray]:
    """Order ``a`` with the named method; returns (permuted matrix, perm)."""
    try:
        fn = ORDERINGS[method]
    except KeyError:
        raise ValueError(f"unknown ordering {method!r}; use one of {sorted(ORDERINGS)}")
    perm = fn(a)
    return apply_ordering(a, perm), perm
