"""Synthetic sparse matrix suite.

The paper evaluates on Harwell-Boeing matrices (BCSSTK15, BCSSTK24,
BCSSTK33 — structural engineering stiffness matrices — and ``goodwin``,
a fluid-mechanics Jacobian).  Those files are not redistributable and
this environment has no network access, so this module provides
*structure-compatible stand-ins*:

* 2-D/3-D grid Laplacians — the canonical sparse SPD model problems,
  with elimination DAGs exhibiting the same mixed-granularity, deep-
  dependence behaviour as stiffness matrices;
* random-perturbation variants that add longer-range couplings, which
  raises fill and irregularity (closer to real FE meshes);
* an unsymmetric convection-diffusion operator for the LU experiments.

The ``*_like`` constructors default to a ``scale`` that keeps the Python
event-driven simulator in the seconds range; pass ``scale=1.0`` for the
original dimensions.  EXPERIMENTS.md records the scaled sizes used for
each table.

All functions return ``scipy.sparse.csr_matrix`` with float64 data.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp


def grid_laplacian_2d(k: int, stencil: int = 5) -> sp.csr_matrix:
    """SPD Laplacian of a ``k x k`` grid (5- or 9-point stencil)."""
    if stencil not in (5, 9):
        raise ValueError("stencil must be 5 or 9")
    main = sp.eye(k, format="csr")
    off = sp.diags([1.0, 1.0], [-1, 1], shape=(k, k), format="csr")
    a = sp.kron(main, off) + sp.kron(off, main)
    if stencil == 9:
        a = a + sp.kron(off, off)
    deg = np.asarray(a.sum(axis=1)).ravel()
    lap = sp.diags(deg + 1.0) - a
    return sp.csr_matrix(lap)


def grid_laplacian_3d(k: int) -> sp.csr_matrix:
    """SPD 7-point Laplacian of a ``k^3`` grid."""
    eye = sp.eye(k, format="csr")
    off = sp.diags([1.0, 1.0], [-1, 1], shape=(k, k), format="csr")
    a = (
        sp.kron(sp.kron(off, eye), eye)
        + sp.kron(sp.kron(eye, off), eye)
        + sp.kron(sp.kron(eye, eye), off)
    )
    deg = np.asarray(a.sum(axis=1)).ravel()
    return sp.csr_matrix(sp.diags(deg + 1.0) - a)


def random_spd(n: int, extra_per_row: float = 2.0, seed: int = 0) -> sp.csr_matrix:
    """Random sparse SPD matrix: symmetric pattern + diagonal dominance."""
    rng = np.random.default_rng(seed)
    nnz = int(n * extra_per_row)
    rows = rng.integers(0, n, size=nnz)
    cols = rng.integers(0, n, size=nnz)
    vals = rng.uniform(-1.0, 1.0, size=nnz)
    b = sp.coo_matrix((vals, (rows, cols)), shape=(n, n)).tocsr()
    a = b + b.T
    diag = np.asarray(np.abs(a).sum(axis=1)).ravel()
    return sp.csr_matrix(a + sp.diags(diag + 1.0))


def perturbed_grid_spd(
    k: int, extra_per_row: float = 0.5, seed: int = 0, stencil: int = 5
) -> sp.csr_matrix:
    """Grid Laplacian with random long-range symmetric couplings — the
    stiffness-matrix stand-in (irregular fill like BCSSTK matrices)."""
    a = grid_laplacian_2d(k, stencil)
    n = a.shape[0]
    rng = np.random.default_rng(seed)
    nnz = int(n * extra_per_row)
    rows = rng.integers(0, n, size=nnz)
    cols = rng.integers(0, n, size=nnz)
    vals = rng.uniform(0.1, 1.0, size=nnz)
    b = sp.coo_matrix((vals, (rows, cols)), shape=(n, n)).tocsr()
    b = b + b.T
    deg = np.asarray(np.abs(b).sum(axis=1)).ravel()
    return sp.csr_matrix(a + b + sp.diags(deg + 0.5))


def convection_diffusion_2d(k: int, wind: float = 4.0, seed: int = 0) -> sp.csr_matrix:
    """Unsymmetric convection-diffusion operator on a ``k x k`` grid —
    the ``goodwin`` (fluid mechanics) stand-in for LU with pivoting.

    The default ``wind`` makes several off-diagonal entries dominate
    their diagonal, so partial pivoting genuinely swaps rows (the whole
    point of the paper's second application); the constant diagonal
    shift keeps the operator comfortably nonsingular.
    """
    rng = np.random.default_rng(seed)
    n = k * k
    a = grid_laplacian_2d(k, 5)
    # Skew the off-diagonal couplings to break symmetry.
    coo = a.tocoo()
    data = coo.data.copy()
    mask = coo.row != coo.col
    data[mask] += wind * rng.uniform(-1.0, 1.0, size=mask.sum())
    m = sp.coo_matrix((data, (coo.row, coo.col)), shape=(n, n)).tocsr()
    return sp.csr_matrix(m + sp.diags(np.full(n, 0.5)))


# ----------------------------------------------------------------------
# Harwell-Boeing stand-ins (see module docstring and EXPERIMENTS.md)
# ----------------------------------------------------------------------

#: Original dimensions of the paper's matrices, for reference.
PAPER_DIMENSIONS = {
    "bcsstk15": 3948,
    "bcsstk24": 3562,
    "goodwin": 7320,
    "bcsstk33": 8738,
}


def _scaled_grid(n_target: int, scale: float) -> int:
    """Grid edge length whose n = k^2 approximates ``n_target * scale``."""
    return max(4, int(round((n_target * scale) ** 0.5)))


def bcsstk15_like(scale: float = 0.12, seed: int = 15) -> sp.csr_matrix:
    """Structural-engineering-like SPD stand-in for BCSSTK15 (n=3948)."""
    return perturbed_grid_spd(_scaled_grid(3948, scale), extra_per_row=0.6, seed=seed)


def bcsstk24_like(scale: float = 0.12, seed: int = 24) -> sp.csr_matrix:
    """Structural-engineering-like SPD stand-in for BCSSTK24 (n=3562)."""
    return perturbed_grid_spd(
        _scaled_grid(3562, scale), extra_per_row=0.4, seed=seed, stencil=9
    )


def goodwin_like(scale: float = 0.08, seed: int = 7) -> sp.csr_matrix:
    """Fluid-mechanics-like unsymmetric stand-in for ``goodwin`` (n=7320)."""
    return convection_diffusion_2d(_scaled_grid(7320, scale), wind=4.0, seed=seed)


def bcsstk33_like(scale: float = 0.08, seed: int = 33) -> sp.csr_matrix:
    """Stand-in for BCSSTK33 (n=8738), used by the Table 8 large-problem
    experiment; ``scale`` plays the role of the paper's column/row
    truncation (they solved columns 1..5600 then 1..6080)."""
    return perturbed_grid_spd(_scaled_grid(8738, scale), extra_per_row=0.8, seed=seed)


def truncate(a: sp.csr_matrix, n: int) -> sp.csr_matrix:
    """Leading principal submatrix — the paper's 'take data from
    column/row 1 up to n' device for BCSSTK33."""
    return sp.csr_matrix(a[:n, :n])
