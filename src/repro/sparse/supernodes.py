"""Supernodal partitioning of factor patterns.

The paper's column blocks follow the matrix structure — Corollary 2
speaks of "the size of the largest column block of the *partitioned
input matrix*".  Real sparse solvers group columns into **fundamental
supernodes**: maximal runs of consecutive columns with identical
below-diagonal pattern (column ``j+1``'s pattern is column ``j``'s minus
one row and ``parent(j) = j+1`` in the elimination tree).  Supernodal
blocks make the dense kernels genuinely dense and the block widths
follow the problem's own structure instead of an arbitrary ``w``.

:class:`VariablePartition` generalises the fixed-width
:class:`~repro.sparse.blocks.BlockPartition` interface (``num_blocks``,
``bounds``, ``width``, ``block_of``), so the Cholesky/LU builders accept
either.  :func:`supernode_partition` detects fundamental supernodes
(optionally relaxed by a small pattern-difference tolerance, and capped
at ``max_width`` to bound Corollary 2's ``w``).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .symbolic import ColumnPattern


@dataclass(frozen=True)
class VariablePartition:
    """1-D partition with arbitrary block boundaries.

    ``boundaries`` is the ascending tuple of block start indices plus the
    terminal ``n`` (so ``len(boundaries) = num_blocks + 1``).
    """

    n: int
    boundaries: tuple[int, ...]
    _starts: np.ndarray = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        bs = self.boundaries
        if len(bs) < 2 or bs[0] != 0 or bs[-1] != self.n:
            raise ValueError("boundaries must run from 0 to n")
        if any(b >= c for b, c in zip(bs, bs[1:])):
            raise ValueError("boundaries must be strictly increasing")
        object.__setattr__(self, "_starts", np.asarray(bs[:-1], dtype=np.int64))

    @property
    def num_blocks(self) -> int:
        return len(self.boundaries) - 1

    def block_of(self, i: int) -> int:
        if not (0 <= i < self.n):
            raise IndexError(i)
        return int(np.searchsorted(self._starts, i, side="right") - 1)

    def bounds(self, b: int) -> tuple[int, int]:
        return self.boundaries[b], self.boundaries[b + 1]

    def width(self, b: int) -> int:
        s, e = self.bounds(b)
        return e - s

    def indices(self, b: int) -> np.ndarray:
        s, e = self.bounds(b)
        return np.arange(s, e)

    def block_of_array(self, idx: np.ndarray) -> np.ndarray:
        return np.searchsorted(self._starts, np.asarray(idx), side="right") - 1

    @property
    def max_width(self) -> int:
        """Corollary 2's ``w``: the widest block."""
        return max(self.width(b) for b in range(self.num_blocks))


def uniform_partition(n: int, w: int) -> VariablePartition:
    """Fixed-width partition expressed as a :class:`VariablePartition`."""
    if w <= 0:
        raise ValueError("w must be positive")
    bounds = list(range(0, n, w)) + [n]
    if len(bounds) >= 2 and bounds[-2] == n:
        bounds.pop(-2)
    return VariablePartition(n, tuple(bounds))


def supernode_partition(
    cols: ColumnPattern,
    max_width: int = 32,
) -> VariablePartition:
    """Fundamental supernodes of a symbolic Cholesky pattern.

    Column ``j+1`` joins column ``j``'s supernode when its pattern below
    the diagonal equals column ``j``'s minus the row ``j+1`` itself —
    i.e. ``struct(L_{j+1}) = struct(L_j) \\ {j, j+1} ∪ {j+1}``, the
    classic test ``|L_j| = |L_{j+1}| + 1`` with containment, which for
    exact symbolic patterns reduces to the count test plus
    ``parent(j) = j+1``.
    """
    n = len(cols)
    if n == 0:
        raise ValueError("empty pattern")
    boundaries = [0]
    width = 1
    for j in range(1, n):
        prev, cur = cols[j - 1], cols[j]
        fundamental = (
            width < max_width
            and len(prev) == len(cur) + 1
            and len(prev) >= 2
            and prev[1] == j  # parent(j-1) == j
            and np.array_equal(prev[1:], cur)
        )
        if fundamental:
            width += 1
        else:
            boundaries.append(j)
            width = 1
    boundaries.append(n)
    return VariablePartition(n, tuple(boundaries))


def supernode_stats(part: VariablePartition) -> dict[str, float]:
    widths = [part.width(b) for b in range(part.num_blocks)]
    return {
        "num_blocks": part.num_blocks,
        "max_width": max(widths, default=0),
        "mean_width": float(np.mean(widths)) if widths else 0.0,
    }
