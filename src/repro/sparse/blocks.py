"""Block partitioning of sparse factor patterns.

The paper's applications use two data layouts (section 5):

* **2-D block** sparse Cholesky: the (filled) factor pattern is cut into
  a ``N x N`` grid of ``w x w`` blocks; each nonzero block is one data
  object, mapped block-cyclically on a processor grid;
* **1-D column-block** sparse LU: the columns are cut into panels of
  width ``w``; each panel (with the static L+U pattern) is one data
  object, mapped cyclically.

This module computes the block boundaries, the nonzero-block sets and
per-block nnz counts from a symbolic column pattern.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .symbolic import ColumnPattern


@dataclass(frozen=True)
class BlockPartition:
    """Uniform 1-D partition of ``n`` indices into blocks of width ``w``."""

    n: int
    w: int

    def __post_init__(self) -> None:
        if self.w <= 0 or self.n < 0:
            raise ValueError("need n >= 0 and w > 0")

    @property
    def num_blocks(self) -> int:
        return -(-self.n // self.w) if self.n else 0

    def block_of(self, i: int) -> int:
        return i // self.w

    def bounds(self, b: int) -> tuple[int, int]:
        """Half-open index range ``[start, end)`` of block ``b``."""
        return b * self.w, min((b + 1) * self.w, self.n)

    def width(self, b: int) -> int:
        s, e = self.bounds(b)
        return e - s

    def indices(self, b: int) -> np.ndarray:
        s, e = self.bounds(b)
        return np.arange(s, e)

    def block_of_array(self, idx: np.ndarray) -> np.ndarray:
        return np.asarray(idx, dtype=np.int64) // self.w


def block_nnz_2d(cols: ColumnPattern, part) -> dict[tuple[int, int], int]:
    """Per-block nnz of a lower-triangular column pattern.

    Returns ``{(I, J): nnz}`` over nonzero blocks, ``I >= J`` (block row,
    block column).  ``part`` may be a fixed-width
    :class:`BlockPartition` or a
    :class:`~repro.sparse.supernodes.VariablePartition`.
    """
    counts: dict[tuple[int, int], int] = {}
    for j, rows in enumerate(cols):
        J = part.block_of(j)
        if len(rows) == 0:
            continue
        blocks, reps = np.unique(part.block_of_array(rows), return_counts=True)
        for i, c in zip(blocks, reps):
            key = (int(i), J)
            counts[key] = counts.get(key, 0) + int(c)
    return counts


def panel_nnz_1d(lower: ColumnPattern, upper: ColumnPattern, part) -> list[int]:
    """Stored entries per column panel for the static LU pattern
    (L below the diagonal plus U on/above it; the diagonal is counted
    once)."""
    out = [0] * part.num_blocks
    for j in range(part.n):
        J = part.block_of(j)
        out[J] += len(lower[j]) + max(len(upper[j]) - 1, 0)
    return out


def block_col_pattern(cols: ColumnPattern, part) -> list[list[int]]:
    """For each block column ``K``, the sorted list of nonzero block rows
    ``I >= K`` of the lower pattern."""
    nz = block_nnz_2d(cols, part)
    out: list[list[int]] = [[] for _ in range(part.num_blocks)]
    for (i, j) in nz:
        out[j].append(i)
    for lst in out:
        lst.sort()
    return out


def lu_update_pattern(lower: ColumnPattern, part) -> list[list[int]]:
    """For each panel ``K``, the panels ``J > K`` it updates.

    ``Update(K, J)`` is needed when the static pattern has an entry in
    the U-block region (rows of panel ``K``, columns of panel ``J``) —
    with the symmetric George-Ng bound this is exactly a nonzero block
    ``(J, K)`` of the lower pattern (transposed view).
    """
    nz = block_nnz_2d(lower, part)
    out: list[list[int]] = [[] for _ in range(part.num_blocks)]
    for (i, j) in nz:
        if i > j:
            out[j].append(i)
    for lst in out:
        lst.sort()
    return out
