"""Harwell-Boeing file bridge.

The paper's experiments use Harwell-Boeing matrices (BCSSTK15/24/33,
``goodwin``).  The reproduction ships synthetic stand-ins (no network,
no redistribution rights), but a user who has the real ``.rsa``/``.rua``
files can load them here and run every experiment on the paper's actual
inputs.

Reading/writing delegates to :mod:`scipy.io` (Harwell-Boeing support);
this module adds symmetry expansion (HB symmetric files store one
triangle), validation, and a loader that dispatches to the matching
experiment workload builder.
"""

from __future__ import annotations

import pathlib

import numpy as np
import scipy.io
import scipy.sparse as sp


def read_harwell_boeing(path: str | pathlib.Path) -> sp.csr_matrix:
    """Read an HB file; symmetric storage is expanded to a full matrix."""
    path = pathlib.Path(path)
    if not path.exists():
        raise FileNotFoundError(f"no Harwell-Boeing file at {path}")
    m = scipy.io.hb_read(str(path))
    m = sp.csr_matrix(m)
    if m.shape[0] != m.shape[1]:
        raise ValueError(f"{path.name}: matrix is not square: {m.shape}")
    lower = sp.tril(m, -1)
    upper = sp.triu(m, 1)
    if lower.nnz == 0 and upper.nnz > 0:
        m = m + upper.T  # stored upper triangle only
    elif upper.nnz == 0 and lower.nnz > 0:
        m = m + lower.T  # stored lower triangle only
    return sp.csr_matrix(m)


def write_harwell_boeing(path: str | pathlib.Path, a: sp.spmatrix) -> None:
    """Write a matrix in HB format (full storage)."""
    scipy.io.hb_write(str(path), sp.csc_matrix(a))


def is_structurally_symmetric(a: sp.spmatrix) -> bool:
    """True when the sparsity pattern equals its transpose's."""
    s = sp.csr_matrix(a, copy=True)
    s.data = np.ones_like(s.data)
    return (s != s.T).nnz == 0


def load_for_experiment(path: str | pathlib.Path, kind: str = "auto") -> sp.csr_matrix:
    """Load an HB matrix and validate it for one of the paper's
    experiment kinds: ``"cholesky"`` (must be symmetric; made SPD-safe by
    diagonal boosting if needed), ``"lu"`` (any square pattern with a
    present diagonal) or ``"auto"``.
    """
    a = read_harwell_boeing(path)
    symmetric = is_structurally_symmetric(a) and np.allclose(
        a.toarray(), a.T.toarray()
    )
    if kind == "auto":
        kind = "cholesky" if symmetric else "lu"
    if kind == "cholesky":
        if not symmetric:
            raise ValueError("cholesky experiments need a symmetric matrix")
        # Boost the diagonal if the matrix is not positive definite; the
        # task-graph structure (what the experiments measure) is
        # unchanged.
        d = a.toarray()
        w = np.linalg.eigvalsh(d)
        if w.min() <= 0:
            a = sp.csr_matrix(a + sp.eye(a.shape[0]) * (1e-3 - w.min()))
    elif kind == "lu":
        diag = a.diagonal()
        if np.any(diag == 0):
            a = sp.csr_matrix(a + sp.eye(a.shape[0]) * 1e-8)
    else:
        raise ValueError(f"unknown kind {kind!r}")
    return a
