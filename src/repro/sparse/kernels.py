"""Dense numerical kernels for the block factorizations.

The task graphs of :mod:`repro.sparse.cholesky` and
:mod:`repro.sparse.lu` attach these kernels to tasks; the serial numeric
executor (:mod:`repro.rapid.executor`) runs them against a shared object
store to verify that every schedule the library produces preserves the
program's semantics (any dependence-respecting interleaving must give
the same factors).

Cholesky blocks are ``w x w`` NumPy arrays; LU panels are dicts
``{"A": (n x w) array, "piv": [(col, pivot_row), ...]}`` so the partial
pivoting choices travel with the factored panel (the 1-D column layout
keeps pivot search and row swaps local, as in section 5 of the paper).
"""

from __future__ import annotations

import numpy as np
import scipy.linalg as _sla


# ----------------------------------------------------------------------
# Cholesky block kernels (right-looking, lower triangular)
# ----------------------------------------------------------------------


def potrf(a: np.ndarray) -> np.ndarray:
    """In-place-style Cholesky of a diagonal block: returns ``L`` with
    the strict upper triangle zeroed."""
    return np.linalg.cholesky(a)


def trsm_lower(l_kk: np.ndarray, a_ik: np.ndarray) -> np.ndarray:
    """Solve ``X @ L_kk^T = A_ik`` (scale a subdiagonal block)."""
    # X = A_ik @ L_kk^{-T}: solve L_kk @ X^T = A_ik^T.
    return np.linalg.solve(l_kk, a_ik.T).T


def gemm_update(a_ij: np.ndarray, l_ik: np.ndarray, l_jk: np.ndarray) -> None:
    """Schur update ``A_ij -= L_ik @ L_jk^T`` (also covers SYRK when
    ``i == j``).  In place."""
    a_ij -= l_ik @ l_jk.T


def potrf_flops(w: int) -> float:
    return w**3 / 3.0


def trsm_flops(w_k: int, w_i: int) -> float:
    return w_k**2 * w_i


def gemm_flops(w_i: int, w_j: int, w_k: int) -> float:
    return 2.0 * w_i * w_j * w_k


# ----------------------------------------------------------------------
# LU panel kernels (1-D column blocks, partial pivoting)
# ----------------------------------------------------------------------


def lu_factor_panel(panel: dict, col_start: int, col_end: int) -> None:
    """Factor the columns ``[col_start, col_end)`` of a panel in place.

    Performs the standard right-looking elimination with partial
    pivoting restricted to the panel: for each global column ``gc``, the
    pivot is searched in rows ``gc..n-1`` of the panel, the row swap is
    applied to the whole panel and recorded in ``panel["piv"]``, and the
    trailing panel columns receive the rank-1 update.
    """
    a = panel["A"]
    piv = panel["piv"]
    n = a.shape[0]
    for gc in range(col_start, col_end):
        c = gc - col_start
        r = int(np.argmax(np.abs(a[gc:, c]))) + gc
        if abs(a[r, c]) == 0.0:
            raise ZeroDivisionError(f"structurally singular at column {gc}")
        if r != gc:
            a[[gc, r], :] = a[[r, gc], :]
        piv.append((gc, r))
        if gc + 1 < n:
            a[gc + 1 :, c] /= a[gc, c]
            if c + 1 < a.shape[1]:
                a[gc + 1 :, c + 1 :] -= np.outer(a[gc + 1 :, c], a[gc, c + 1 :])


def lu_update_panel(src: dict, dst: dict, col_start: int, col_end: int) -> None:
    """Apply a factored panel's eliminations to a later panel in place —
    the Update(k, j) task of the 1-D column-block algorithm.

    LAPACK-style: apply the source panel's row interchanges to the
    destination (``laswp``), compute the U rows with a unit-lower
    triangular solve against the pivoted ``L_kk``, then apply the Schur
    update with the stored (already pivoted) multipliers ``L_2k``.
    This is the correct formulation when pivoting permutes rows *after*
    a column's elimination: the stored multipliers are in final (fully
    permuted) row order, so the destination must be brought to the same
    order before the update.
    """
    a_src = src["A"]
    a_dst = dst["A"]
    for gc, r in src["piv"]:
        if r != gc:
            a_dst[[gc, r], :] = a_dst[[r, gc], :]
    l_kk = a_src[col_start:col_end, :]
    u_rows = _sla.solve_triangular(
        l_kk, a_dst[col_start:col_end, :], lower=True, unit_diagonal=True
    )
    a_dst[col_start:col_end, :] = u_rows
    if col_end < a_dst.shape[0]:
        a_dst[col_end:, :] -= a_src[col_end:, :] @ u_rows


def lu_factor_flops(n_below: int, w: int) -> float:
    """Rough flop count of factoring a panel with ``n_below`` active rows."""
    return 2.0 * n_below * w * w


def lu_update_flops(n_below: int, w_src: int, w_dst: int) -> float:
    return 2.0 * n_below * w_src * w_dst
