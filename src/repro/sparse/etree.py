"""Elimination tree of a symmetric sparse pattern.

The elimination tree (etree) drives symbolic Cholesky factorization and
the layer-by-layer structure of the 2-D block task graphs (the proof of
Corollary 2 leans on it).  Implementation follows Liu's classic
path-compression algorithm, O(nnz * alpha(n)).
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp


def elimination_tree(a: sp.spmatrix) -> np.ndarray:
    """Parent array of the elimination tree of ``A``'s symmetric pattern.

    ``parent[j] = -1`` marks a root.  Only the lower triangle of the
    (symmetrised) pattern is consulted.
    """
    s = sp.csr_matrix(a)
    s = sp.csr_matrix((s + s.T).astype(bool))
    n = s.shape[0]
    parent = np.full(n, -1, dtype=np.int64)
    ancestor = np.full(n, -1, dtype=np.int64)
    indptr, indices = s.indptr, s.indices
    for j in range(n):
        for p in range(indptr[j], indptr[j + 1]):
            i = indices[p]
            if i >= j:
                continue
            # Walk from i up to the root, compressing with `ancestor`.
            while True:
                anc = ancestor[i]
                if anc == -1 or anc == j:
                    break
                ancestor[i] = j
                i = anc
            if ancestor[i] == -1:
                ancestor[i] = j
                parent[i] = j
    return parent


def postorder(parent: np.ndarray) -> np.ndarray:
    """A postorder of the elimination forest (children before parents)."""
    n = len(parent)
    children: list[list[int]] = [[] for _ in range(n)]
    roots: list[int] = []
    for v in range(n):
        p = parent[v]
        if p == -1:
            roots.append(v)
        else:
            children[p].append(v)
    out = np.empty(n, dtype=np.int64)
    k = 0
    for root in roots:
        stack = [(root, iter(children[root]))]
        while stack:
            node, it = stack[-1]
            child = next(it, None)
            if child is None:
                stack.pop()
                out[k] = node
                k += 1
            else:
                stack.append((child, iter(children[child])))
    assert k == n, "parent array is not a forest"
    return out


def tree_depths(parent: np.ndarray) -> np.ndarray:
    """Depth of each node (roots have depth 0)."""
    n = len(parent)
    depth = np.full(n, -1, dtype=np.int64)
    for v in range(n):
        path = []
        u = v
        while u != -1 and depth[u] == -1:
            path.append(u)
            u = parent[u]
        base = 0 if u == -1 else depth[u] + 1
        for node in reversed(path):
            depth[node] = base
            base += 1
    return depth


def tree_height(parent: np.ndarray) -> int:
    """Height of the elimination forest — a proxy for the critical-path
    length of the column-level factorization DAG."""
    d = tree_depths(parent)
    return int(d.max()) + 1 if len(d) else 0
