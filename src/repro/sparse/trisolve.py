"""Block sparse triangular solves (forward and backward substitution).

The paper credits RAPID with "good performance for sparse code such as
Cholesky factorization and triangular solvers" (section 2).  This module
builds the task graphs of the two substitution phases that turn the 2-D
block Cholesky factor into a full linear solver:

* **forward** — solve ``L y = b``:  ``SOLVE(k)`` computes
  ``y_k = L_kk^{-1} y_k`` and ``XUPD(i,k)`` applies ``y_i -= L_ik y_k``
  for every nonzero subdiagonal block; updates into one segment are
  additive, hence *commuting*;
* **backward** — solve ``L^T x = y``:  block columns run in reverse,
  ``XUPD(k,i)`` applies ``x_k -= L_ik^T x_i``.

Vector segments ``y[k]`` are owned by the owner of the diagonal block
``A[k,k]``; factor blocks are materialised on their owners by implicit
source tasks (they are resident after factorization), so the solve
graphs exhibit genuine volatile traffic: a segment owner must fetch
remote ``L_ik`` blocks — the irregular, low-computation-density pattern
that makes triangular solves communication-sensitive.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.linalg as sla

from ..core.placement import Placement, owner_compute_assignment
from ..graph.builder import GraphBuilder
from ..graph.taskgraph import TaskGraph
from .cholesky import CholeskyProblem, block_name

BYTES_PER_ENTRY = 8


def seg_name(k: int) -> str:
    return f"y[{k}]"


@dataclass
class TrisolveProblem:
    """A block triangular-solve instance tied to a Cholesky factor."""

    chol: CholeskyProblem
    lower: bool  # True: solve L y = b, False: solve L^T x = y
    graph: TaskGraph

    @property
    def num_blocks(self) -> int:
        return self.chol.num_block_cols

    def placement(self, p: int) -> Placement:
        """Factor blocks keep the 2-D block-cyclic owners; segment ``k``
        lives with diagonal block ``(k, k)``."""
        base = self.chol.placement(p)
        owner = dict(base.owner)
        pr, pc = self.chol.processor_grid(p)
        for k in range(self.num_blocks):
            owner[seg_name(k)] = (k % pr) * pc + (k % pc)
        # Restrict to objects present in this graph.
        owner = {o: q for o, q in owner.items() if self.graph.has_object(o)}
        return Placement(p, owner)

    def assignment(self, placement: Placement) -> dict[str, int]:
        return owner_compute_assignment(self.graph, placement)

    # -- numerics -----------------------------------------------------

    def initial_store(self, factor_store: dict, b: np.ndarray) -> dict:
        """Store holding the factor blocks plus the right-hand side
        split into segments."""
        store = dict(factor_store)
        for k in range(self.num_blocks):
            r0, r1 = self.chol.part.bounds(k)
            store[seg_name(k)] = np.array(b[r0:r1], dtype=float)
        return store

    def gather(self, store: dict) -> np.ndarray:
        out = np.empty(self.chol.n)
        for k in range(self.num_blocks):
            r0, r1 = self.chol.part.bounds(k)
            out[r0:r1] = store[seg_name(k)]
        return out


def _solve_kernel(diag: str, seg: str, lower: bool):
    def kernel(store: dict) -> None:
        l = store[diag]
        store[seg] = sla.solve_triangular(l, store[seg], lower=True, trans=0 if lower else 1)

    return kernel


def _upd_kernel(blk: str, src_seg: str, dst_seg: str, lower: bool):
    def kernel(store: dict) -> None:
        l = store[blk]
        if lower:
            store[dst_seg] -= l @ store[src_seg]
        else:
            store[dst_seg] -= l.T @ store[src_seg]

    return kernel


def build_trisolve(chol: CholeskyProblem, lower: bool = True, flop_time: float = 1.0,
                   with_kernels: bool = True) -> TrisolveProblem:
    """Build the forward (``lower=True``) or backward substitution graph
    for a factored :class:`~repro.sparse.cholesky.CholeskyProblem`."""
    part = chol.part
    nblocks = part.num_blocks
    sub = {k: [] for k in range(nblocks)}  # k -> nonzero block rows i > k
    for (i, j) in chol.nonzero_blocks:
        if i > j:
            sub[j].append(i)
    for lst in sub.values():
        lst.sort()

    b = GraphBuilder(materialize_inputs=True, dependence_mode="transform")
    used_blocks = {(k, k) for k in range(nblocks)}
    for k in range(nblocks):
        used_blocks.update((i, k) for i in sub[k])
    for (i, j) in sorted(used_blocks):
        b.add_object(block_name(i, j), chol.nonzero_blocks[(i, j)] * BYTES_PER_ENTRY)
    for k in range(nblocks):
        b.add_object(seg_name(k), part.width(k) * BYTES_PER_ENTRY)

    wk = part.width
    if lower:
        # Forward: y_k finalized in ascending k; updates push downward.
        for k in range(nblocks):
            b.add_task(
                f"SOLVE({k})",
                reads=(block_name(k, k), seg_name(k)),
                writes=(seg_name(k),),
                weight=wk(k) ** 2 * flop_time,
                kernel=_solve_kernel(block_name(k, k), seg_name(k), True)
                if with_kernels else None,
            )
            for i in sub[k]:
                b.add_task(
                    f"XUPD({i},{k})",
                    reads=(block_name(i, k), seg_name(k), seg_name(i)),
                    writes=(seg_name(i),),
                    weight=2.0 * wk(i) * wk(k) * flop_time,
                    commute=f"acc:y{i}",
                    kernel=_upd_kernel(block_name(i, k), seg_name(k), seg_name(i), True)
                    if with_kernels else None,
                )
    else:
        # Backward: x_k finalized in descending k; updates pull upward.
        for k in reversed(range(nblocks)):
            for i in reversed(sub[k]):
                b.add_task(
                    f"XUPD({k},{i})",
                    reads=(block_name(i, k), seg_name(i), seg_name(k)),
                    writes=(seg_name(k),),
                    weight=2.0 * wk(i) * wk(k) * flop_time,
                    commute=f"acc:x{k}",
                    kernel=_upd_kernel(block_name(i, k), seg_name(i), seg_name(k), False)
                    if with_kernels else None,
                )
            b.add_task(
                f"SOLVE({k})",
                reads=(block_name(k, k), seg_name(k)),
                writes=(seg_name(k),),
                weight=wk(k) ** 2 * flop_time,
                kernel=_solve_kernel(block_name(k, k), seg_name(k), False)
                if with_kernels else None,
            )
    return TrisolveProblem(chol=chol, lower=lower, graph=b.build())
