"""Symbolic factorization: fill patterns of the Cholesky and LU factors.

Two entry points:

* :func:`symbolic_cholesky` — exact pattern of ``L`` for the SPD case,
  computed with the children-union recurrence on the elimination tree:
  ``struct(L_j) = struct(A_{j:, j})  U  (U_{c: parent(c)=j} struct(L_c) \\ {c})``.

* :func:`symbolic_lu_static` — the paper's "static symbolic
  factorization approach to avoid the data structure variation" for LU
  with partial pivoting (section 5): an upper bound on the possible fill
  over every pivot choice.  We use the classic George-Ng bound: the
  pattern of the Cholesky factor of ``AᵀA`` contains ``struct(U)`` of
  ``PA = LU`` for *any* partial pivoting ``P`` (the guarantee the 1-D LU
  builder's update pruning relies on); the mirrored lower pattern serves
  as the static storage container for the ``L`` side, whose rows live in
  pivoted order.

Patterns are returned as a list of sorted NumPy index arrays per column
(rows ``>= j`` for the lower factor).
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from .etree import elimination_tree

ColumnPattern = list[np.ndarray]


def symbolic_cholesky(a: sp.spmatrix) -> tuple[ColumnPattern, np.ndarray]:
    """Column patterns of ``L`` (including the diagonal) and the etree.

    Returns ``(cols, parent)`` where ``cols[j]`` is the sorted array of
    row indices ``i >= j`` with ``L[i, j] != 0``.
    """
    s = sp.csc_matrix(a)
    s = sp.csc_matrix((s + s.T).astype(bool))
    n = s.shape[0]
    parent = elimination_tree(s)
    children: list[list[int]] = [[] for _ in range(n)]
    for v in range(n):
        if parent[v] != -1:
            children[parent[v]].append(v)
    cols: ColumnPattern = [None] * n  # type: ignore[list-item]
    indptr, indices = s.indptr, s.indices
    col_sets: list[set[int]] = [set() for _ in range(n)]
    for j in range(n):
        pat = col_sets[j]
        pat.add(j)
        for p in range(indptr[j], indptr[j + 1]):
            i = indices[p]
            if i > j:
                pat.add(i)
        for c in children[j]:
            # struct(L_c) \ {c}: every entry i > c; those are >= j because
            # parent(c) = j is the smallest off-diagonal row of column c.
            pat.update(i for i in col_sets[c] if i > c)
            col_sets[c] = set()  # release
        cols[j] = np.array(sorted(pat), dtype=np.int64)
    return cols, parent


def fill_nnz(cols: ColumnPattern) -> int:
    """Number of stored entries of the (lower) factor."""
    return int(sum(len(c) for c in cols))


def pattern_to_csc(cols: ColumnPattern, n: int) -> sp.csc_matrix:
    """Lower-triangular boolean CSC matrix of a column pattern."""
    indptr = np.zeros(n + 1, dtype=np.int64)
    for j, c in enumerate(cols):
        indptr[j + 1] = indptr[j] + len(c)
    indices = np.concatenate(cols) if cols else np.empty(0, dtype=np.int64)
    data = np.ones(len(indices), dtype=np.int8)
    return sp.csc_matrix((data, indices, indptr), shape=(n, n))


def symbolic_lu_static(a: sp.spmatrix) -> tuple[ColumnPattern, ColumnPattern]:
    """Static (pivoting-independent) patterns for sparse LU.

    Returns ``(lower, upper)`` column patterns: ``lower[j]`` are rows
    ``i >= j`` that may be nonzero in ``L`` (union over pivot choices),
    ``upper[j]`` rows ``i <= j`` that may be nonzero in ``U`` — both
    bounded by the George-Ng ``AᵀA`` Cholesky pattern, which is symmetric,
    so ``upper[j]`` mirrors ``lower[j]``.
    """
    s = sp.csc_matrix(a).astype(bool).astype(np.int8)
    ata = sp.csc_matrix((s.T @ s) > 0, dtype=np.int8)
    # Ensure the diagonal is present (A has nonzero columns).
    ata = sp.csc_matrix(ata + sp.eye(s.shape[0], dtype=np.int8, format="csc"))
    cols, _parent = symbolic_cholesky(ata)
    lower = cols
    upper: ColumnPattern = [c.copy() for c in cols]  # by symmetry of the bound
    return lower, upper


def cholesky_flops(cols: ColumnPattern) -> float:
    """Flop count of the numeric Cholesky with this pattern:
    ``sum_j |L_{>=j, j}|^2`` (the standard column-count formula)."""
    return float(sum(len(c) ** 2 for c in cols))
