"""Conjugate gradients over a block-row SpMV task graph.

Iterative solvers are the archetypal RAPID workload ("iterative
computation ... invariant dependence structures", section 2): every CG
iteration performs the same sparse matrix-vector product, dot products
and vector updates, over a structure fixed by the matrix pattern.

One CG iteration becomes the following tasks on a block-row partition
(all writes respect owner-compute: vector segments live with their
block-row, scalars on processor 0):

* ``SPMV(i)``   — ``q_i = A_i p`` reading only the ``p`` segments the
  block-row's pattern needs (the volatile traffic);
* ``DOTPQ(i)`` / ``DOTR(i)`` — local partial dot products into
  per-block scalars;
* ``RED_PQ`` / ``RED_RR`` — fan-in reductions of the partials;
* ``ALPHA`` / ``BETA`` — the CG scalar updates;
* ``XR(i)``     — ``x_i += alpha p_i``;  ``r_i -= alpha q_i``;
* ``P(i)``      — ``p_i = r_i + beta p_i``.

:func:`cg_solve` drives the numeric kernels to convergence (verified
against NumPy);  :func:`repro.graph.repeat.repeat_graph` unrolls the
iteration graph for pipelined multi-iteration simulation.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
import scipy.sparse as sp

from ..core.placement import Placement, owner_compute_assignment
from ..core.schedule import Schedule
from ..graph.builder import GraphBuilder
from ..graph.taskgraph import TaskGraph
from ..rapid.executor import execute_schedule, execute_serial

BYTES = 8


@dataclass
class CGProblem:
    """One-iteration CG task graph over a block-row partition."""

    a: sp.csr_matrix
    block_size: int
    graph: TaskGraph = field(repr=False)
    #: needed[i] = block columns whose ``p`` segment block-row i reads
    needed: list[list[int]] = field(repr=False)

    @property
    def n(self) -> int:
        return self.a.shape[0]

    @property
    def num_blocks(self) -> int:
        return -(-self.n // self.block_size)

    def bounds(self, i: int) -> tuple[int, int]:
        return i * self.block_size, min((i + 1) * self.block_size, self.n)

    def placement(self, p: int) -> Placement:
        """Cyclic block-row ownership; global scalars on processor 0."""
        owner: dict[str, int] = {
            s: 0 for s in ("alpha", "beta", "dot_pq", "dot_rr", "rr_new")
        }
        for i in range(self.num_blocks):
            q = i % p
            for pre in ("A", "x", "r", "p", "q", "pdq", "pdr"):
                owner[f"{pre}[{i}]"] = q
        return Placement(p, owner)

    def assignment(self, placement: Placement) -> dict[str, int]:
        return owner_compute_assignment(self.graph, placement)

    # -- numerics -----------------------------------------------------

    def initial_store(self, b: np.ndarray, x0: np.ndarray | None = None) -> dict:
        if b.shape != (self.n,):
            raise ValueError(f"b must have shape ({self.n},)")
        x = np.zeros(self.n) if x0 is None else np.array(x0, dtype=float)
        r = b - self.a @ x
        store: dict = {
            "alpha": 0.0,
            "beta": 0.0,
            "dot_pq": 0.0,
            "dot_rr": float(r @ r),
            "rr_new": 0.0,
        }
        for i in range(self.num_blocks):
            s, e = self.bounds(i)
            store[f"A[{i}]"] = self.a[s:e]
            store[f"x[{i}]"] = x[s:e].copy()
            store[f"r[{i}]"] = r[s:e].copy()
            store[f"p[{i}]"] = r[s:e].copy()
            store[f"q[{i}]"] = np.zeros(e - s)
            store[f"pdq[{i}]"] = 0.0
            store[f"pdr[{i}]"] = 0.0
        return store

    def gather(self, store: dict, what: str = "x") -> np.ndarray:
        return np.concatenate([store[f"{what}[{i}]"] for i in range(self.num_blocks)])

    def residual(self, store: dict, b: np.ndarray) -> float:
        return float(np.linalg.norm(b - self.a @ self.gather(store)))


def build_cg(
    a: sp.spmatrix,
    block_size: int = 32,
    flop_time: float = 1.0,
    with_kernels: bool = True,
) -> CGProblem:
    """Build the one-iteration CG task graph of an SPD matrix."""
    a = sp.csr_matrix(a)
    n = a.shape[0]
    nb = -(-n // block_size)

    def bounds(i: int) -> tuple[int, int]:
        return i * block_size, min((i + 1) * block_size, n)

    needed: list[list[int]] = []
    for i in range(nb):
        s, e = bounds(i)
        cols = np.unique(a[s:e].indices) if a[s:e].nnz else np.empty(0, int)
        needed.append(sorted({int(c) // block_size for c in cols}))

    g = GraphBuilder(materialize_inputs=True, dependence_mode="transform")
    for s_name in ("alpha", "beta", "dot_pq", "dot_rr", "rr_new"):
        g.add_object(s_name, BYTES)
    for i in range(nb):
        s, e = bounds(i)
        w = e - s
        g.add_object(f"A[{i}]", max(int(a[s:e].nnz), 1) * BYTES * 2)
        for pre in ("x", "r", "p", "q"):
            g.add_object(f"{pre}[{i}]", w * BYTES)
        g.add_object(f"pdq[{i}]", BYTES)
        g.add_object(f"pdr[{i}]", BYTES)

    # --- kernels -------------------------------------------------------
    def k_spmv(i, deps):
        def kernel(store):
            blk = store[f"A[{i}]"]
            pfull = np.zeros(n)
            for j in deps:
                js, je = bounds(j)
                pfull[js:je] = store[f"p[{j}]"]
            store[f"q[{i}]"] = blk @ pfull

        return kernel

    def k_dotpq(i):
        def kernel(store):
            store[f"pdq[{i}]"] = float(store[f"p[{i}]"] @ store[f"q[{i}]"])

        return kernel

    def k_red(partials, target):
        def kernel(store):
            store[target] = float(sum(store[p] for p in partials))

        return kernel

    def k_alpha(store):
        store["alpha"] = store["dot_rr"] / store["dot_pq"] if store["dot_pq"] else 0.0

    def k_xr(i):
        def kernel(store):
            al = store["alpha"]
            store[f"x[{i}]"] = store[f"x[{i}]"] + al * store[f"p[{i}]"]
            store[f"r[{i}]"] = store[f"r[{i}]"] - al * store[f"q[{i}]"]

        return kernel

    def k_dotr(i):
        def kernel(store):
            store[f"pdr[{i}]"] = float(store[f"r[{i}]"] @ store[f"r[{i}]"])

        return kernel

    def k_beta(store):
        store["beta"] = store["rr_new"] / store["dot_rr"] if store["dot_rr"] else 0.0
        store["dot_rr"] = store["rr_new"]

    def k_p(i):
        def kernel(store):
            store[f"p[{i}]"] = store[f"r[{i}]"] + store["beta"] * store[f"p[{i}]"]

        return kernel

    kn = with_kernels
    ft = flop_time
    for i in range(nb):
        s, e = bounds(i)
        reads = tuple(dict.fromkeys([f"A[{i}]"] + [f"p[{j}]" for j in needed[i]]))
        g.add_task(
            f"SPMV({i})", reads=reads, writes=(f"q[{i}]",),
            weight=2.0 * max(int(a[s:e].nnz), 1) * ft,
            kernel=k_spmv(i, needed[i]) if kn else None,
        )
        g.add_task(
            f"DOTPQ({i})", reads=(f"p[{i}]", f"q[{i}]"), writes=(f"pdq[{i}]",),
            weight=2.0 * (e - s) * ft, kernel=k_dotpq(i) if kn else None,
        )
    g.add_task(
        "RED_PQ", reads=tuple(f"pdq[{i}]" for i in range(nb)), writes=("dot_pq",),
        weight=nb * ft, kernel=k_red([f"pdq[{i}]" for i in range(nb)], "dot_pq") if kn else None,
    )
    g.add_task("ALPHA", reads=("dot_pq", "dot_rr"), writes=("alpha",),
               weight=ft, kernel=k_alpha if kn else None)
    for i in range(nb):
        s, e = bounds(i)
        g.add_task(
            f"XR({i})",
            reads=tuple(dict.fromkeys(("alpha", f"p[{i}]", f"q[{i}]", f"x[{i}]", f"r[{i}]"))),
            writes=(f"x[{i}]", f"r[{i}]"),
            weight=4.0 * (e - s) * ft, kernel=k_xr(i) if kn else None,
        )
        g.add_task(
            f"DOTR({i})", reads=(f"r[{i}]",), writes=(f"pdr[{i}]",),
            weight=2.0 * (e - s) * ft, kernel=k_dotr(i) if kn else None,
        )
    g.add_task(
        "RED_RR", reads=tuple(f"pdr[{i}]" for i in range(nb)), writes=("rr_new",),
        weight=nb * ft, kernel=k_red([f"pdr[{i}]" for i in range(nb)], "rr_new") if kn else None,
    )
    g.add_task("BETA", reads=("rr_new", "dot_rr"), writes=("beta", "dot_rr"),
               weight=ft, kernel=k_beta if kn else None)
    for i in range(nb):
        s, e = bounds(i)
        g.add_task(
            f"P({i})", reads=(f"beta", f"r[{i}]", f"p[{i}]"), writes=(f"p[{i}]",),
            weight=2.0 * (e - s) * ft, kernel=k_p(i) if kn else None,
        )
    return CGProblem(a=a, block_size=block_size, graph=g.build(), needed=needed)


@dataclass
class CGResult:
    x: np.ndarray
    residuals: list[float]
    converged: bool

    @property
    def iterations(self) -> int:
        return len(self.residuals) - 1


def cg_solve(
    prob: CGProblem,
    b: np.ndarray,
    tol: float = 1e-10,
    max_iter: int = 500,
    schedule: Schedule | None = None,
) -> CGResult:
    """Run CG by re-executing the one-iteration task graph.

    With ``schedule`` given, every iteration executes in that schedule's
    interleaving (any valid schedule converges identically up to
    floating-point reassociation of the commutative reductions).
    """
    store = prob.initial_store(b)
    nb = float(np.linalg.norm(b)) or 1.0
    residuals = [prob.residual(store, b) / nb]
    for _ in range(max_iter):
        if residuals[-1] <= tol:
            return CGResult(prob.gather(store), residuals, True)
        if schedule is None:
            execute_serial(prob.graph, store)
        else:
            execute_schedule(schedule, store)
        residuals.append(prob.residual(store, b) / nb)
    return CGResult(prob.gather(store), residuals, residuals[-1] <= tol)
