"""Newton's method over the RAPID-scheduled sparse LU (section 2).

"We have also used this system in parallelizing Newton's method to
solve nonlinear systems."  The defining property that makes Newton a
RAPID workload: the Jacobian's *sparsity structure is invariant* across
iterations, so the inspector runs once (symbolic factorization, task
graph, schedule) and every Newton step re-executes the same task graph
on fresh numeric values.

:func:`newton_solve` drives the iteration: per step it permutes the
fresh Jacobian into the problem's fill-reducing order, re-populates the
panel store, executes the factorization kernels (optionally in a
specific schedule's interleaving — any schedule gives the same result,
which the tests assert), and back-substitutes.

:class:`BratuProblem` supplies the classic test case: the 2-D Bratu
(solid-fuel ignition) equation ``-Δu = λ e^u`` discretised on a grid;
its Jacobian ``A - λ h² diag(e^u)`` has the Laplacian's fixed pattern.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

import numpy as np
import scipy.linalg as sla
import scipy.sparse as sp

from ..core.schedule import Schedule
from ..rapid.executor import execute_schedule, execute_serial
from ..sparse.lu import LUProblem, build_lu


@dataclass
class NewtonResult:
    x: np.ndarray
    residuals: list[float]
    converged: bool

    @property
    def iterations(self) -> int:
        return len(self.residuals) - 1


def newton_solve(
    lu_prob: LUProblem,
    f: Callable[[np.ndarray], np.ndarray],
    jac: Callable[[np.ndarray], sp.spmatrix],
    x0: np.ndarray,
    tol: float = 1e-10,
    max_iter: int = 25,
    schedule: Optional[Schedule] = None,
) -> NewtonResult:
    """Solve ``f(x) = 0`` with Newton steps through the task-graph LU.

    ``lu_prob`` must have been built from a matrix with the (fixed)
    pattern of ``jac`` — typically ``build_lu(jac(x0), ...)``.  With
    ``schedule`` given, every factorization runs in that schedule's
    interleaving (exercising the parallel execution path).
    """
    perm = lu_prob.perm
    x = np.array(x0, dtype=float)
    residuals = [float(np.linalg.norm(f(x)))]
    for _ in range(max_iter):
        if residuals[-1] <= tol:
            return NewtonResult(x, residuals, True)
        j = jac(x)
        store = lu_prob.initial_store(lu_prob.permute(j))
        if schedule is None:
            execute_serial(lu_prob.graph, store)
        else:
            execute_schedule(schedule, store)
        p, l, u = lu_prob.assemble(store)
        rhs = -f(x)[perm]
        y = sla.solve_triangular(l, p @ rhs, lower=True, unit_diagonal=True)
        delta_p = sla.solve_triangular(u, y, lower=False)
        delta = np.empty_like(x)
        delta[perm] = delta_p
        x = x + delta
        residuals.append(float(np.linalg.norm(f(x))))
    return NewtonResult(x, residuals, residuals[-1] <= tol)


@dataclass
class BratuProblem:
    """2-D Bratu equation ``-Δu = λ e^u`` on a ``k x k`` interior grid
    with homogeneous Dirichlet boundary (finite differences)."""

    k: int
    lam: float = 1.0
    a: sp.csr_matrix = field(init=False)
    h2: float = field(init=False)

    def __post_init__(self) -> None:
        k = self.k
        eye = sp.eye(k, format="csr")
        off = sp.diags([1.0, 1.0], [-1, 1], shape=(k, k), format="csr")
        lap = sp.kron(eye, 2 * eye - off) + sp.kron(2 * eye - off, eye)
        self.a = sp.csr_matrix(lap)
        self.h2 = 1.0 / (k + 1) ** 2

    @property
    def n(self) -> int:
        return self.k * self.k

    def f(self, u: np.ndarray) -> np.ndarray:
        return self.a @ u - self.lam * self.h2 * np.exp(u)

    def jacobian(self, u: np.ndarray) -> sp.csr_matrix:
        return sp.csr_matrix(self.a - sp.diags(self.lam * self.h2 * np.exp(u)))

    def build_lu(self, block_size: int = 8, **kw) -> LUProblem:
        """The inspector stage: symbolic structure from the Jacobian at
        ``u = 0`` (the pattern never changes)."""
        return build_lu(self.jacobian(np.zeros(self.n)), block_size=block_size, **kw)
