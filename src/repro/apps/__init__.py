"""Higher-level applications driving the RAPID pipeline."""

from .cg import CGProblem, CGResult, build_cg, cg_solve
from .newton import BratuProblem, NewtonResult, newton_solve

__all__ = [
    "BratuProblem",
    "CGProblem",
    "CGResult",
    "NewtonResult",
    "build_cg",
    "cg_solve",
    "newton_solve",
]
