"""Small-instance exact solver: branch-and-bound over schedules.

Ground truth for the RCP/MPO/DTS heuristics (ROADMAP item 4).  Under a
fixed data placement and owner-compute assignment, the solver branches
over *global append orders*: at every node one globally-ready task is
appended to its processor's order, its start time fixed immediately by
the macro-dataflow model (``max(processor idle, data arrivals)`` with
:class:`~repro.core.schedule.CommModel` costs on cross-processor
edges).  A complete sequence is exactly one
:class:`~repro.core.schedule.Schedule`; the search space is the set of
per-processor order tuples, i.e. everything the ordering heuristics can
produce.

Pruning rules
-------------

* **Canonical interleavings** — distinct append orders that produce the
  same per-processor orders are collapsed: only sequences whose
  ``(start time, processor)`` keys are nondecreasing are explored.  Any
  valid schedule has exactly one such linearization (when every task
  weight is positive; the filter is disabled otherwise), so each
  schedule is enumerated at most once.
* **Lower bounds (time objective)** — a node is cut when
  ``max(per-processor idle + remaining assigned work,
  ready-task earliest start + its mapping-aware b-level)`` reaches the
  incumbent.  The b-level term is the critical-path bound; the
  remaining-work term is the per-processor refinement of the paper's
  total-work/P bound (work is pre-assigned, so the per-processor form
  dominates the average).
* **Memory feasibility (Defs 5-6)** — volatile liveness is tracked
  incrementally: an object is alive on processor P between the first
  and last scheduled access by P's tasks, which depends only on the
  *set* of appended tasks, never on their interleaving.  The MEM_REQ of
  every appended task (Def 5) therefore equals
  :func:`~repro.core.liveness.analyze_memory`'s value in any completion
  of the prefix, and a prefix exceeding the capacity can be cut without
  losing feasible schedules.
* **Downset memoisation (memory objective)** — the live sets, hence all
  future peaks, are a function of the scheduled set, so a set reached
  again with an equal-or-worse running peak is cut.

A configurable node budget bounds the search: exhausting it degrades
the result to ``BEST_FOUND`` (the incumbent plus a certified root lower
bound); ``PROVED_OPTIMAL`` is reported only when the search space was
exhausted.  The incumbent is seeded from the RCP/MPO/DTS/tree
heuristics, so ``BEST_FOUND`` is never worse than the best heuristic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping, Optional

from ..core.dts import dts_order
from ..core.liveness import analyze_memory
from ..core.mpo import mpo_order
from ..core.placement import Placement, perm_vola_sets
from ..core.rcp import rcp_order, rcp_priorities
from ..core.schedule import CommModel, Schedule, UNIT_COMM, gantt
from ..core.treesched import tree_order
from ..errors import SchedulingError
from ..graph.taskgraph import TaskGraph

PROVED_OPTIMAL = "PROVED_OPTIMAL"
BEST_FOUND = "BEST_FOUND"

#: Search budget of :func:`solve` (exhaustive proofs on small DAGs).
DEFAULT_NODE_BUDGET = 200_000
#: Search budget of :func:`exact_order` (sweep-facing; improves on the
#: heuristic seeds when it can, degrades to BEST_FOUND when it cannot).
DEFAULT_ORDER_BUDGET = 20_000

#: Heuristics used to seed the incumbent, tried in this order.
SEED_HEURISTICS = ("rcp", "mpo", "dts", "tree")

_SEED_FNS = {
    "rcp": rcp_order,
    "mpo": mpo_order,
    "dts": dts_order,
    "tree": tree_order,
}

#: Cap on the downset memo of the memory objective; beyond it new
#: states are explored unmemoised (correct, just slower).
_MEMO_CAP = 1 << 20

#: Float slop of the time objective: lower-bound pruning may discard
#: improvements smaller than this, so ``PROVED_OPTIMAL`` makespans are
#: optimal up to ``TIME_EPS`` (b-levels and starts accumulate the same
#: sums in different association orders).  The memory objective is
#: integral and unaffected.
TIME_EPS = 1e-9


@dataclass(frozen=True)
class ExactResult:
    """Outcome of one branch-and-bound run.

    ``value`` is the makespan (``objective="time"``) or the MIN_MEM peak
    (``objective="memory"``) of ``schedule``.  ``status`` is
    ``PROVED_OPTIMAL`` only when the search space was exhausted within
    the node budget; otherwise ``BEST_FOUND`` with ``lower_bound`` the
    certified root bound (``lower_bound == value`` when proved).
    ``schedule`` is ``None`` only when a capacity made the instance
    infeasible (no feasible schedule found; provably none exists iff
    ``status == PROVED_OPTIMAL``).
    """

    objective: str
    status: str
    value: float
    lower_bound: float
    nodes: int
    node_budget: int
    capacity: Optional[int]
    incumbent_source: str
    schedule: Optional[Schedule]

    @property
    def proved(self) -> bool:
        return self.status == PROVED_OPTIMAL


class _Search:
    """Mutable branch-and-bound state over one instance."""

    def __init__(
        self,
        graph: TaskGraph,
        placement: Placement,
        assignment: Mapping[str, int],
        comm: CommModel,
        objective: str,
        capacity: Optional[int],
    ):
        names = graph.task_names
        n = len(names)
        index = {t: i for i, t in enumerate(names)}
        self.graph = graph
        self.placement = placement
        self.assignment = assignment
        self.names = names
        self.n = n
        self.nprocs = placement.num_procs
        self.objective = objective
        self.capacity = capacity
        self.track_mem = capacity is not None or objective == "memory"

        self.proc = [assignment[t] for t in names]
        self.w = [graph.task(t).weight for t in names]
        self.preds: list[list[tuple[int, float]]] = []
        for t in names:
            row = []
            for u in graph.predecessors(t):
                c = 0.0
                if assignment[u] != assignment[t]:
                    objs = graph.edge_objects(u, t)
                    nbytes = sum(graph.object(o).size for o in objs)
                    c = comm.cost(nbytes) if objs else comm.latency
                row.append((index[u], c))
            self.preds.append(row)
        # The canonical-interleaving filter is sound iff start times
        # strictly increase along every cross-processor edge (same-proc
        # ties are resolved by per-processor append order): it needs
        # ``w(u) + comm > 0`` on each such edge.
        self.canonical = all(
            self.w[u] + c > 0
            for i in range(n)
            for (u, c) in self.preds[i]
            if self.proc[u] != self.proc[i]
        )
        self.succs = [
            [index[s] for s in graph.successors(t)] for t in names
        ]
        bl = rcp_priorities(graph, assignment, comm)
        self.blevel = [bl[t] for t in names]

        perm_sets, _vola = perm_vola_sets(graph, placement, assignment)
        self.perm = [
            sum(graph.object(o).size for o in s) for s in perm_sets
        ]
        self.vol: list[list[tuple[str, int]]] = [[] for _ in range(n)]
        self.remcnt: list[dict[str, int]] = [dict() for _ in range(self.nprocs)]
        for i, t in enumerate(names):
            p = self.proc[i]
            for o in graph.task(t).accesses:
                if placement[o] != p:
                    self.vol[i].append((o, graph.object(o).size))
                    self.remcnt[p][o] = self.remcnt[p].get(o, 0) + 1
        #: Def 5 floor per task: its own volatile objects are alive
        #: while it runs, whatever the ordering.
        self.hold = [
            self.perm[self.proc[i]] + sum(sz for _o, sz in self.vol[i])
            for i in range(n)
        ]

        # Mutable search state.
        self.indeg = [len(self.preds[i]) for i in range(n)]
        self.ready = {i for i in range(n) if self.indeg[i] == 0}
        self.finish = [0.0] * n
        self.idle = [0.0] * self.nprocs
        self.orders: list[list[int]] = [[] for _ in range(self.nprocs)]
        self.remwork = [0.0] * self.nprocs
        for i in range(n):
            self.remwork[self.proc[i]] += self.w[i]
        self.alive: list[set[str]] = [set() for _ in range(self.nprocs)]
        self.live = [0] * self.nprocs
        self.base_peak = max(self.perm) if self.perm else 0
        self.cur_peak = self.base_peak
        self.scheduled = 0
        self.mask = 0
        self.last_key: tuple[float, int] = (float("-inf"), -1)
        self.nodes = 0
        self.memo: dict[int, int] = {}

    # -- moves ---------------------------------------------------------

    def est(self, i: int) -> float:
        s = self.idle[self.proc[i]]
        for (u, c) in self.preds[i]:
            a = self.finish[u] + c
            if a > s:
                s = a
        return s

    def added_bytes(self, i: int) -> int:
        p = self.proc[i]
        alive = self.alive[p]
        return sum(sz for o, sz in self.vol[i] if o not in alive)

    def apply(self, i: int, start: float) -> tuple:
        """Append task ``i`` at ``start``; returns the undo record."""
        p = self.proc[i]
        undo_mem: Optional[tuple] = None
        if self.track_mem:
            newly = []
            freed = []
            alive = self.alive[p]
            remcnt = self.remcnt[p]
            for o, sz in self.vol[i]:
                if o not in alive:
                    alive.add(o)
                    self.live[p] += sz
                    newly.append((o, sz))
            mem_at = self.perm[p] + self.live[p]
            for o, sz in self.vol[i]:
                remcnt[o] -= 1
                if remcnt[o] == 0:
                    alive.remove(o)
                    self.live[p] -= sz
                    freed.append((o, sz))
            undo_mem = (newly, freed, self.cur_peak)
            if mem_at > self.cur_peak:
                self.cur_peak = mem_at
        old_idle = self.idle[p]
        self.finish[i] = start + self.w[i]
        self.idle[p] = self.finish[i]
        self.orders[p].append(i)
        self.remwork[p] -= self.w[i]
        self.ready.discard(i)
        woken = []
        for s in self.succs[i]:
            self.indeg[s] -= 1
            if self.indeg[s] == 0:
                self.ready.add(s)
                woken.append(s)
        old_key = self.last_key
        self.last_key = (start, p)
        self.scheduled += 1
        self.mask |= 1 << i
        self.nodes += 1
        return (i, p, old_idle, woken, old_key, undo_mem)

    def undo(self, rec: tuple) -> None:
        i, p, old_idle, woken, old_key, undo_mem = rec
        self.mask &= ~(1 << i)
        self.scheduled -= 1
        self.last_key = old_key
        for s in woken:
            self.ready.discard(s)
            self.indeg[s] += 1
        for s in self.succs[i]:
            if s not in woken:
                self.indeg[s] += 1
        self.ready.add(i)
        self.remwork[p] += self.w[i]
        self.orders[p].pop()
        self.idle[p] = old_idle
        self.finish[i] = 0.0
        if undo_mem is not None:
            newly, freed, old_peak = undo_mem
            alive = self.alive[p]
            remcnt = self.remcnt[p]
            for o, sz in freed:
                alive.add(o)
                self.live[p] += sz
            for o, sz in self.vol[i]:
                remcnt[o] += 1
            for o, sz in newly:
                alive.remove(o)
                self.live[p] -= sz
            self.cur_peak = old_peak

    # -- bounds and branching ------------------------------------------

    def mem_feasible(self, i: int) -> bool:
        """Would appending ``i`` keep MEM_REQ within the capacity?"""
        if self.capacity is None:
            return True
        p = self.proc[i]
        return self.perm[p] + self.live[p] + self.added_bytes(i) <= self.capacity

    def time_lb(self, ests: dict[int, float]) -> float:
        lb = 0.0
        for p in range(self.nprocs):
            v = self.idle[p] + self.remwork[p]
            if v > lb:
                lb = v
        for i, s in ests.items():
            v = s + self.blevel[i]
            if v > lb:
                lb = v
        return lb

    def candidates_time(self) -> tuple[float, list[tuple[float, int]]]:
        """(lower bound, canonical candidate moves sorted best-first)."""
        ests = {i: self.est(i) for i in self.ready}
        lb = self.time_lb(ests)
        cands = []
        for i, s in ests.items():
            if self.canonical and (s, self.proc[i]) < self.last_key:
                continue
            if not self.mem_feasible(i):
                continue
            cands.append((s, i))
        cands.sort(key=lambda si: (si[0], -self.blevel[si[1]], si[1]))
        return lb, cands

    def candidates_mem(self) -> tuple[float, list[tuple[float, int]]]:
        lb = float(self.cur_peak)
        cands = []
        for i in self.ready:
            if not self.mem_feasible(i):
                continue
            cands.append((float(self.added_bytes(i)), i))
        cands.sort()
        return lb, cands

    def root_lower_bound(self) -> float:
        if self.objective == "time":
            lb, _ = self.candidates_time()
            return lb
        lb = float(self.base_peak)
        for i in range(self.n):
            if self.hold[i] > lb:
                lb = float(self.hold[i])
        return lb


def _evaluate(schedule: Schedule, objective: str, comm: CommModel) -> float:
    if objective == "time":
        return gantt(schedule, comm).makespan
    return float(analyze_memory(schedule).min_mem)


def _seed_incumbent(
    graph: TaskGraph,
    placement: Placement,
    assignment: Mapping[str, int],
    comm: CommModel,
    objective: str,
    capacity: Optional[int],
) -> tuple[float, Optional[Schedule], str]:
    best_val = float("inf")
    best_sched: Optional[Schedule] = None
    best_src = "none"
    for name in SEED_HEURISTICS:
        try:
            sched = _SEED_FNS[name](graph, placement, assignment, comm)
        except SchedulingError:
            continue
        if capacity is not None and analyze_memory(sched).min_mem > capacity:
            continue
        val = _evaluate(sched, objective, comm)
        if val < best_val:
            best_val, best_sched, best_src = val, sched, name
    return best_val, best_sched, best_src


def solve(
    graph: TaskGraph,
    placement: Placement,
    assignment: Mapping[str, int],
    comm: CommModel = UNIT_COMM,
    *,
    objective: str = "time",
    capacity: Optional[int] = None,
    node_budget: int = DEFAULT_NODE_BUDGET,
) -> ExactResult:
    """Branch-and-bound over all schedules of a fixed assignment.

    ``objective="time"`` minimises the macro-dataflow makespan,
    ``objective="memory"`` minimises MIN_MEM (Def 6).  ``capacity``
    restricts the search to schedules executable under that
    per-processor capacity (Def 5); when no such schedule exists the
    result carries ``schedule=None``.  ``node_budget`` caps the number
    of branch-and-bound nodes; exhausting it degrades ``status`` to
    ``BEST_FOUND`` (never a wrong ``PROVED_OPTIMAL`` claim).
    """
    if objective not in ("time", "memory"):
        raise ValueError(
            f"unknown objective {objective!r}; use 'time' or 'memory'"
        )
    if not graph.frozen:
        graph.freeze()
    search = _Search(graph, placement, assignment, comm, objective, capacity)
    best_val, best_sched, best_src = _seed_incumbent(
        graph, placement, assignment, comm, objective, capacity
    )
    best_orders: Optional[list[list[int]]] = None
    root_lb = search.root_lower_bound()

    def result(status: str, lower: float) -> ExactResult:
        sched = best_sched
        if best_orders is not None:
            sched = Schedule(
                graph=graph,
                placement=placement,
                assignment=dict(assignment),
                orders=[[search.names[i] for i in o] for o in best_orders],
                meta={"heuristic": "EXACT"},
            )
            sched.validate()
        return ExactResult(
            objective=objective,
            status=status,
            value=best_val,
            lower_bound=lower,
            nodes=search.nodes,
            node_budget=node_budget,
            capacity=capacity,
            incumbent_source=best_src if best_orders is None else "bnb",
            schedule=sched,
        )

    # A seed meeting the certified root bound is already optimal.
    if best_sched is not None and best_val <= root_lb + TIME_EPS:
        return result(PROVED_OPTIMAL, best_val)

    branch = (
        search.candidates_time
        if objective == "time"
        else search.candidates_mem
    )
    exhausted = False
    _lb0, cands0 = branch()
    stack: list[list] = [[cands0, 0, None]]
    while stack:
        frame = stack[-1]
        if frame[2] is not None:
            search.undo(frame[2])
            frame[2] = None
        cands, i = frame[0], frame[1]
        if i >= len(cands):
            stack.pop()
            continue
        if search.nodes >= node_budget:
            exhausted = True
            break
        frame[1] = i + 1
        start, task = cands[i]
        if objective == "memory":
            start = search.est(task)
        rec = search.apply(task, start)
        if search.scheduled == search.n:
            val = (
                max(search.idle)
                if objective == "time"
                else float(search.cur_peak)
            )
            if val < best_val:
                best_val = val
                best_orders = [list(o) for o in search.orders]
            search.undo(rec)
            continue
        lb, sub = branch()
        if lb >= best_val - TIME_EPS:
            search.undo(rec)
            continue
        if objective == "memory":
            seen = search.memo.get(search.mask)
            if seen is not None and seen <= search.cur_peak:
                search.undo(rec)
                continue
            if len(search.memo) < _MEMO_CAP:
                search.memo[search.mask] = search.cur_peak
        frame[2] = rec
        stack.append([sub, 0, None])

    status = BEST_FOUND if exhausted else PROVED_OPTIMAL
    lower = best_val if status == PROVED_OPTIMAL else min(root_lb, best_val)
    if best_sched is None and best_orders is None:
        # Capacity-infeasible: no heuristic seed fits and the search
        # found nothing (provably nothing exists iff the space was
        # exhausted).
        return ExactResult(
            objective=objective,
            status=status,
            value=float("inf"),
            lower_bound=lower if status == BEST_FOUND else float("inf"),
            nodes=search.nodes,
            node_budget=node_budget,
            capacity=capacity,
            incumbent_source="none",
            schedule=None,
        )
    return result(status, lower)


def solve_over_placements(
    graph: TaskGraph,
    cases: Iterable[tuple[Placement, Mapping[str, int]]],
    comm: CommModel = UNIT_COMM,
    *,
    objective: str = "time",
    capacity: Optional[int] = None,
    node_budget: int = DEFAULT_NODE_BUDGET,
) -> ExactResult:
    """Exact search over (ordering, placement): solve every candidate
    placement/assignment pair and return the best result.

    The result is ``PROVED_OPTIMAL`` (over the supplied candidates) only
    when every per-placement search proved its own optimum.
    """
    best: Optional[ExactResult] = None
    all_proved = True
    for placement, assignment in cases:
        res = solve(
            graph,
            placement,
            assignment,
            comm,
            objective=objective,
            capacity=capacity,
            node_budget=node_budget,
        )
        all_proved = all_proved and res.proved
        if best is None or res.value < best.value:
            best = res
    if best is None:
        raise ValueError("solve_over_placements needs at least one case")
    if not all_proved and best.proved:
        best = ExactResult(
            objective=best.objective,
            status=BEST_FOUND,
            value=best.value,
            lower_bound=best.lower_bound,
            nodes=best.nodes,
            node_budget=best.node_budget,
            capacity=best.capacity,
            incumbent_source=best.incumbent_source,
            schedule=best.schedule,
        )
    return best


def exact_order(
    graph: TaskGraph,
    placement: Placement,
    assignment: Mapping[str, int],
    comm: CommModel = UNIT_COMM,
    capacity: Optional[int] = None,
    objective: str = "time",
    node_budget: int = DEFAULT_ORDER_BUDGET,
    meta: Optional[dict] = None,
) -> Schedule:
    """The exact solver as a first-class ordering heuristic.

    Returns the best schedule the budgeted branch-and-bound can certify
    or find (never worse than the heuristic seeds); the search outcome
    is recorded in the schedule's ``meta`` (``exact_status``,
    ``exact_nodes``, ``exact_lower_bound``).
    """
    res = solve(
        graph,
        placement,
        assignment,
        comm,
        objective=objective,
        capacity=capacity,
        node_budget=node_budget,
    )
    if res.schedule is None:
        detail = (
            "provably no schedule fits"
            if res.proved
            else "no schedule found within the node budget"
        )
        raise SchedulingError(f"exact: {detail} under capacity {capacity}")
    m = dict(meta or {})
    m.update(
        {
            "heuristic": "EXACT",
            "exact_objective": res.objective,
            "exact_status": res.status,
            "exact_nodes": res.nodes,
            "exact_lower_bound": res.lower_bound,
            "exact_source": res.incumbent_source,
        }
    )
    sched = Schedule(
        graph=graph,
        placement=placement,
        assignment=dict(res.schedule.assignment),
        orders=[list(o) for o in res.schedule.orders],
        meta=m,
    )
    sched.validate()
    return sched
