"""Optimality gaps of the ordering heuristics against the exact solver.

For one (graph, placement, assignment) instance this module runs the
branch-and-bound of :mod:`repro.opt.exact` twice — once per objective —
and measures every heuristic against the outcome:

``gap = value / reference - 1``

where the reference is the proved optimum when the solver finished
(``PROVED_OPTIMAL``: the gap is exact) and a certified lower bound when
the node budget ran out (``BEST_FOUND``: the reported gap is an *upper
bound* on the true gap).  In the unproved case the reference is the
*stronger* of the solver's root lower bound and the closed-form static
bound of :mod:`repro.analysis.bounds` — both are certified, so taking
the max tightens the reported gap without ever overstating it.  ETF
derives its own placement, so its row is flagged ``own_placement`` — it
competes against an optimum computed for the owner-compute placement
and may legitimately beat it on time while losing on memory (the
paper's section 1 argument).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Optional, Sequence

from ..core.dts import dts_order
from ..core.dynamic import etf_schedule
from ..core.liveness import analyze_memory
from ..core.mpo import mpo_order
from ..core.placement import Placement
from ..core.rcp import rcp_order
from ..core.schedule import CommModel, Schedule, UNIT_COMM, gantt
from ..analysis.bounds import certified_bounds
from ..core.treesched import tree_order
from ..graph.taskgraph import TaskGraph
from .exact import DEFAULT_NODE_BUDGET, ExactResult, solve

#: Default heuristic line-up of the scorecard.
GAP_HEURISTICS = ("rcp", "mpo", "dts", "etf", "tree")


@dataclass(frozen=True)
class GapRow:
    """One heuristic's measurement against the exact references."""

    heuristic: str
    pt: float
    peak: int
    gap_pt: float
    gap_peak: float
    #: ETF ignores the given placement; its gaps compare across
    #: placements and the time gap may be negative.
    own_placement: bool = False


@dataclass(frozen=True)
class WorkloadGaps:
    """Scorecard data of one (workload, processors) instance."""

    workload: str
    procs: int
    time: ExactResult
    memory: ExactResult
    rows: tuple[GapRow, ...]
    #: Closed-form static bounds (:mod:`repro.analysis.bounds`) for the
    #: same instance; they strengthen the gap denominators whenever the
    #: solver stopped at ``BEST_FOUND``.
    pt_bound: float = 0.0
    mem_bound: float = 0.0

    @property
    def time_ref(self) -> float:
        """Gap denominator: proved optimum, else the stronger of the
        solver's root lower bound and the certified static bound."""
        if self.time.proved:
            return self.time.value
        return max(self.time.lower_bound, self.pt_bound)

    @property
    def mem_ref(self) -> float:
        if self.memory.proved:
            return self.memory.value
        return max(self.memory.lower_bound, self.mem_bound)

    @property
    def time_ref_source(self) -> str:
        """Provenance of :attr:`time_ref` (``"proved"``,
        ``"solver-bound"`` or ``"static-bound"``)."""
        if self.time.proved:
            return "proved"
        if self.pt_bound > self.time.lower_bound:
            return "static-bound"
        return "solver-bound"

    @property
    def mem_ref_source(self) -> str:
        if self.memory.proved:
            return "proved"
        if self.mem_bound > self.memory.lower_bound:
            return "static-bound"
        return "solver-bound"

    def row(self, heuristic: str) -> GapRow:
        for r in self.rows:
            if r.heuristic == heuristic:
                return r
        raise KeyError(f"no gap row for heuristic {heuristic!r}")


def _heuristic_schedule(
    name: str,
    graph: TaskGraph,
    placement: Placement,
    assignment: Mapping[str, int],
    comm: CommModel,
) -> tuple[Schedule, bool]:
    if name == "etf":
        return etf_schedule(graph, placement.num_procs, comm), True
    fns = {
        "rcp": rcp_order,
        "mpo": mpo_order,
        "dts": dts_order,
        "tree": tree_order,
    }
    if name not in fns:
        raise ValueError(
            f"unknown scorecard heuristic {name!r}; "
            f"use one of {GAP_HEURISTICS}"
        )
    return fns[name](graph, placement, assignment, comm), False


def optimality_gaps(
    graph: TaskGraph,
    placement: Placement,
    assignment: Mapping[str, int],
    comm: CommModel = UNIT_COMM,
    *,
    workload: str = "",
    procs: Optional[int] = None,
    heuristics: Sequence[str] = GAP_HEURISTICS,
    node_budget: int = DEFAULT_NODE_BUDGET,
) -> WorkloadGaps:
    """Measure every heuristic against the exact solver's references."""
    time_res = solve(
        graph, placement, assignment, comm,
        objective="time", node_budget=node_budget,
    )
    mem_res = solve(
        graph, placement, assignment, comm,
        objective="memory", node_budget=node_budget,
    )
    bset = certified_bounds(graph, placement, assignment, comm)
    t_ref = (
        time_res.value if time_res.proved
        else max(time_res.lower_bound, bset.pt.value)
    )
    m_ref = (
        mem_res.value if mem_res.proved
        else max(mem_res.lower_bound, bset.min_mem.value)
    )
    rows = []
    for name in heuristics:
        sched, own = _heuristic_schedule(
            name, graph, placement, assignment, comm
        )
        pt = gantt(sched, comm).makespan
        peak = analyze_memory(sched).min_mem
        rows.append(
            GapRow(
                heuristic=name,
                pt=pt,
                peak=peak,
                gap_pt=pt / t_ref - 1.0 if t_ref > 0 else 0.0,
                gap_peak=peak / m_ref - 1.0 if m_ref > 0 else 0.0,
                own_placement=own,
            )
        )
    return WorkloadGaps(
        workload=workload,
        procs=procs if procs is not None else placement.num_procs,
        time=time_res,
        memory=mem_res,
        rows=tuple(rows),
        pt_bound=bset.pt.value,
        mem_bound=bset.min_mem.value,
    )
