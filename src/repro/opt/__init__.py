"""Exact optimality baselines for the scheduling heuristics.

:mod:`repro.opt.exact` holds the small-instance branch-and-bound solver
(proved optima / certified bounds on makespan and MIN_MEM);
:func:`~repro.core.treesched.tree_order` — the tree-specialised
postorder heuristic the solver benchmarks — lives in :mod:`repro.core`
next to RCP/MPO/DTS and is re-exported here for convenience.
"""

from ..core.treesched import liu_postorder, tree_order
from .exact import (
    BEST_FOUND,
    DEFAULT_NODE_BUDGET,
    DEFAULT_ORDER_BUDGET,
    PROVED_OPTIMAL,
    ExactResult,
    exact_order,
    solve,
    solve_over_placements,
)
from .gaps import GapRow, WorkloadGaps, optimality_gaps

__all__ = [
    "BEST_FOUND",
    "DEFAULT_NODE_BUDGET",
    "DEFAULT_ORDER_BUDGET",
    "ExactResult",
    "GapRow",
    "PROVED_OPTIMAL",
    "WorkloadGaps",
    "exact_order",
    "liu_postorder",
    "optimality_gaps",
    "solve",
    "solve_over_placements",
    "tree_order",
]
