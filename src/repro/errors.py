"""Exception hierarchy for the :mod:`repro` package.

All errors raised by the library derive from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
still being able to discriminate the interesting cases (most notably
:class:`NonExecutableScheduleError`, which corresponds to the ``infinity``
entries of Tables 2/3 of the paper: a schedule whose ``MIN_MEM`` exceeds
the per-processor memory capacity).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by :mod:`repro`."""


class GraphError(ReproError):
    """Malformed task graph: unknown objects, duplicate tasks, cycles, ..."""


class CycleError(GraphError):
    """The dependence graph contains a cycle (it must be a DAG)."""

    def __init__(self, cycle_hint: str = ""):
        msg = "task dependence graph contains a cycle"
        if cycle_hint:
            msg += f" (involving {cycle_hint})"
        super().__init__(msg)


class DependenceError(GraphError):
    """The transformed graph is not dependence-complete.

    An anti or output dependence between two tasks is not subsumed by a
    true-dependence path, so executing the true-dependence graph alone
    could produce a wrong value (see paper section 2 and 3.4).
    """


class SchedulingError(ReproError):
    """A scheduling algorithm was invoked with inconsistent inputs."""


class PlacementError(ReproError):
    """Data placement / ownership constraints are violated.

    Under the owner-compute rule every task that modifies a data object
    must run on the object's owner processor (paper, Definition 1).
    """


class NonExecutableScheduleError(ReproError):
    """The schedule cannot run under the given memory capacity.

    Mirrors Definition 6 of the paper: ``MIN_MEM`` of the schedule is
    greater than the available per-processor memory.  Experiment tables
    print such configurations as ``inf``.
    """

    def __init__(self, processor: int, required: int, capacity: int):
        self.processor = processor
        self.required = required
        self.capacity = capacity
        super().__init__(
            f"schedule is non-executable: processor {processor} needs "
            f"{required} units of memory but only {capacity} are available"
        )


class MemoryError_(ReproError):
    """Raised by the simulated per-processor allocator on misuse.

    Named with a trailing underscore to avoid shadowing the builtin
    :class:`MemoryError`.
    """


class SimulationError(ReproError):
    """The discrete-event simulation reached an inconsistent state."""


class DeadlockError(SimulationError):
    """The simulation stopped making progress before completion.

    Theorem 1 of the paper proves this cannot happen when the memory
    capacity admits the schedule; the simulator still detects the
    condition defensively and reports the set of blocked processors.
    """

    def __init__(self, blocked: dict[int, str], completed: int, total: int):
        self.blocked = dict(blocked)
        self.completed = completed
        self.total = total
        states = ", ".join(f"P{p}:{s}" for p, s in sorted(blocked.items()))
        super().__init__(
            f"no progress possible: {completed}/{total} tasks completed; "
            f"blocked processors: {states or 'none'}"
        )


class DataConsistencyError(SimulationError):
    """A processor observed a stale or wrong version of a data object."""


class InvariantViolationError(SimulationError):
    """An online protocol invariant failed during a checked execution.

    Raised by :class:`repro.conformance.InvariantChecker` in strict mode;
    in the default collecting mode violations are recorded instead.  The
    ``violation`` attribute carries the structured
    :class:`~repro.conformance.invariants.Violation` record.
    """

    def __init__(self, violation):
        self.violation = violation
        super().__init__(
            f"invariant {violation.invariant!r} violated at "
            f"t={violation.time:g} on P{violation.proc}: {violation.detail}"
        )
