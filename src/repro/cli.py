"""Command-line interface: regenerate the paper's experiments.

Usage::

    python -m repro list                # available experiments
    python -m repro table1             # one table
    python -m repro table2 --procs 4 8
    python -m repro figure7 --app lu
    python -m repro table8
    python -m repro example            # the Figure 2/3/5 walkthrough
    python -m repro all                # everything (a few minutes)
    python -m repro sweep --jobs 0 --metrics   # grid CSV + telemetry columns
    python -m repro sweep --check      # + invariant-violations column
    python -m repro sweep --jobs 4 --checkpoint ckpt/   # journal progress
    python -m repro sweep --jobs 4 --checkpoint ckpt/ --resume  # finish it
    python -m repro sweep --jobs 4 --obs-dir obs/ --progress  # traced sweep
    python -m repro sweep --heuristics rcp mpo dts etf tree  # wider line-up
    python -m repro obs merge --obs-dir obs/   # re-merge the sweep trace
    python -m repro gaps               # optimality-gap scorecard (exact solver)
    python -m repro gaps --workloads paper --node-budget 50000
    python -m repro trace --metrics metrics.json --trace-out trace.json \
        --report report.html           # one instrumented run, exported
    python -m repro check --seed 7     # conformance batch: invariants + oracle
    python -m repro check --fault overwrite --trace-out fail.json
    python -m repro analyze --seed 7   # static sanitizer, no simulation
    python -m repro analyze --fault overwrite --format sarif --out out.sarif
    python -m repro analyze --workload etree15 --heuristic rcp --verify-ir
    python -m repro analyze --strict   # advisory findings fail the run too
    python -m repro sweep --bounds     # + certified-bound columns
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from .experiments import (
    ExperimentContext,
    run_figure7,
    run_table8,
    table1,
    table2,
    table3,
    table4,
    table5,
    table6,
    table7,
)

EXPERIMENTS = (
    "table1", "table2", "table3", "table4", "table5", "table6", "table7",
    "table8", "figure7",
)


def _paper_example_walkthrough() -> str:
    from .core import analyze_memory, dts_order, plan_maps
    from .core.dcg import build_dcg
    from .graph.paper_example import (
        paper_assignment,
        paper_example_graph,
        paper_placement,
        schedule_b,
        schedule_c,
    )

    g = paper_example_graph()
    pl = paper_placement()
    asg = paper_assignment(g, pl)
    lines = [f"Figure 2(a): {g.num_tasks} tasks, {g.num_objects} objects"]
    lines.append(f"MIN_MEM Fig2(b) = {analyze_memory(schedule_b(g)).min_mem} (paper: 9)")
    lines.append(f"MIN_MEM Fig2(c) = {analyze_memory(schedule_c(g)).min_mem} (paper: 8)")
    lines.append(
        "MIN_MEM DTS     = "
        f"{analyze_memory(dts_order(g, pl, asg)).min_mem} (paper: 7)"
    )
    dcg = build_dcg(g)
    lines.append(
        "DCG slices: " + " -> ".join(o[0] for o in dcg.comp_objects)
    )
    plan = plan_maps(schedule_c(g), 8)
    lines.append(f"MAPs under capacity 8: {plan.maps_per_proc} per processor")
    return "\n".join(lines)


def _render_example_svgs(out_dir: str) -> list[str]:
    """Write Gantt + memory SVGs of the paper example's three schedules."""
    import pathlib

    from .core import analyze_memory, dts_order, gantt
    from .core.viz import gantt_svg, memory_svg
    from .graph.paper_example import (
        paper_assignment,
        paper_example_graph,
        paper_placement,
        schedule_b,
        schedule_c,
    )

    out = pathlib.Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    g = paper_example_graph()
    pl = paper_placement()
    asg = paper_assignment(g, pl)
    written = []
    for label, sched in (
        ("fig2b_rcp", schedule_b(g)),
        ("fig2c_mpo", schedule_c(g)),
        ("fig5_dts", dts_order(g, pl, asg)),
    ):
        p1 = out / f"{label}_gantt.svg"
        gantt_svg(gantt(sched), path=str(p1), label_tasks=True)
        p2 = out / f"{label}_memory.svg"
        memory_svg(analyze_memory(sched), path=str(p2), capacity=8)
        written += [str(p1), str(p2)]
    return written


def _parse_harness_faults(specs):
    """Parse repeated ``--harness-fault KIND:WORKLOAD:PROCS[:ATTEMPTS]``
    flags into a :class:`~repro.experiments.runtime.HarnessFaultSpec`.

    ``KIND`` is ``kill``, ``hang`` or ``error``; ``ATTEMPTS`` is a
    comma-separated list of 1-based attempt numbers or ``all`` (default
    ``1`` — the fault fires once and the retry succeeds).
    """
    from .experiments.runtime import HarnessFaultSpec

    groups = {"kill": [], "hang": [], "error": []}
    on_attempts = None
    for spec in specs:
        parts = spec.split(":")
        if len(parts) not in (3, 4) or parts[0] not in groups:
            raise ValueError(
                f"bad --harness-fault {spec!r}; expected "
                "KIND:WORKLOAD:PROCS[:ATTEMPTS] with KIND in kill/hang/error"
            )
        kind, workload = parts[0], parts[1]
        procs = int(parts[2])
        attempts = (1,)
        if len(parts) == 4:
            attempts = (
                () if parts[3] == "all"
                else tuple(int(a) for a in parts[3].split(","))
            )
        if on_attempts is None:
            on_attempts = attempts
        elif on_attempts != attempts:
            raise ValueError(
                "all --harness-fault flags must agree on ATTEMPTS"
            )
        groups[kind].append((workload, procs))
    return HarnessFaultSpec(
        kill=tuple(groups["kill"]),
        hang=tuple(groups["hang"]),
        error=tuple(groups["error"]),
        on_attempts=(1,) if on_attempts is None else on_attempts,
    )


def _resolve_workload(args):
    """Resolve ``--workload/--procs/--heuristic/--fraction`` into
    ``(spec, compiled, capacity, profile)``.

    The single place the CLI turns workload flags into a compiled
    schedule — shared by ``trace`` and ``analyze`` (and, through
    :func:`repro.conformance.check.batch_cases`, consistent with the
    batch the ``check`` command builds).
    """
    import math

    from .machine.simulator import CompiledSchedule

    if args.workload == "paper":
        from .graph.paper_example import schedule_c
        from .machine.spec import UNIT_MACHINE

        compiled = CompiledSchedule(schedule_c())
        return UNIT_MACHINE, compiled, 8, compiled.profile
    ctx = ExperimentContext()
    p = args.procs[0] if args.procs else 4
    prof = ctx.profile(args.workload, p, args.heuristic)
    capacity = int(math.floor(prof.tot * args.fraction))
    compiled = ctx.compiled(args.workload, p, args.heuristic)
    return ctx.spec, compiled, capacity, prof


def _run_trace(args) -> int:
    """One instrumented simulation; export metrics / Chrome trace / report."""
    from .machine.simulator import Simulator
    from .obs import html_report, to_json, write_chrome_trace

    spec, compiled, capacity, prof = _resolve_workload(args)
    if prof.min_mem > capacity:
        print(
            f"not executable: MIN_MEM {prof.min_mem} > capacity {capacity} "
            f"({args.fraction:.0%} of TOT {prof.tot})",
            file=sys.stderr,
        )
        return 2
    sim = Simulator(spec=spec, capacity=capacity, compiled=compiled, metrics=True)
    res = sim.run()
    s = res.metrics["summary"]
    print(
        f"{res.schedule_label}: PT={res.parallel_time:g} "
        f"map_overhead={s['map_overhead_frac']:.4%} max_hwm={s['max_hwm']} "
        f"max_suspq={s['max_suspq']} utilization={s['utilization']:.2%}"
    )
    wrote = False
    if args.metrics is not None:
        path = args.metrics or "metrics.json"
        to_json(res.metrics, path)
        print(f"wrote {path}")
        wrote = True
    if args.trace_out:
        write_chrome_trace(res, args.trace_out)
        print(f"wrote {args.trace_out} (open at ui.perfetto.dev)")
        wrote = True
    if args.report:
        html_report(res, args.report)
        print(f"wrote {args.report}")
        wrote = True
    if not wrote:
        print("(no --metrics/--trace-out/--report given; summary only)")
    return 0


def _run_check_cmd(args) -> int:
    """Conformance batch: invariant checking + differential oracle.

    Exit status is 0 iff every checked run is clean — so
    ``repro check --fault overwrite`` exits non-zero by design (the
    deliberately injected slot overwrite must be detected).
    """
    from .conformance import check_batch, fault_preset, write_violation_trace
    from .conformance.check import overwrite_demo

    faults = fault_preset(args.fault, seed=args.seed) if args.fault else None
    procs = args.procs[0] if args.procs else 3
    reports = check_batch(
        args.seed,
        graphs=args.graphs,
        procs=procs,
        faults=faults,
        fraction=args.fraction,
    )
    if args.fault == "overwrite":
        # Organic plans are self-throttling (see overwrite_scenario), so
        # the overwrite kind additionally runs the buggy-planner demo.
        reports.append(overwrite_demo(seed=args.seed))
    failing = None
    for r in reports:
        print(r.summary())
        for v in r.violations:
            print(f"    {v}")
        if r.deadlock:
            print("    " + r.deadlock.replace("\n", "\n    "))
        if r.oracle is not None and not r.oracle.ok:
            print("    " + str(r.oracle).replace("\n", "\n    "))
        if not r.ok and failing is None:
            failing = r
    bad = sum(1 for r in reports if not r.ok)
    print(f"{len(reports) - bad}/{len(reports)} checked runs clean")
    if failing is not None and args.trace_out and failing.checker is not None:
        write_violation_trace(
            failing.checker, args.trace_out, label=failing.label
        )
        print(f"wrote {args.trace_out} (open at ui.perfetto.dev)")
    return 0 if bad == 0 else 1


def _run_analyze(args) -> int:
    """Static schedule sanitizer: the same cases as ``check``, analyzed
    in O(plan) with no simulation.

    Exit codes (documented in ``docs/analysis.md``): 0 — every report
    clean of error-severity findings (advisories allowed); 1 — at least
    one error finding, or, under ``--strict``, at least one advisory
    (warning/info) finding; 2 — usage errors.  So
    ``repro analyze --fault overwrite`` exits 1 by design (the
    buggy-planner demo must be flagged with its SA3xx cycle witness).

    ``--verify-ir`` appends an IR-verifier report (SA5xx; see
    :mod:`repro.analysis.irverify`) over the workload's lowering and
    exec plan; ``--bounds`` runs the certified-bound pass
    (SA401-SA403) on the workload report.
    """
    import json

    from .analysis import (
        analyze_batch,
        analyze_overwrite_demo,
        analyze_schedule,
        render_text,
        to_json,
        to_sarif,
        verify_report,
    )

    reports = []
    if args.workload != "paper":
        spec, compiled, capacity, prof = _resolve_workload(args)
        reports = [analyze_schedule(
            compiled.schedule,
            capacity=max(capacity, 1),
            profile=prof,
            label=f"{args.workload}/{args.heuristic}",
            bounds=args.bounds,
            comm=spec.comm_model() if args.bounds else None,
        )]
        if args.verify_ir:
            reports.append(verify_report(
                compiled, capacity=max(capacity, 1), spec=spec,
                label=f"{args.workload}/{args.heuristic}/irverify",
            ))
    else:
        faults = None
        if args.fault:
            from .conformance import fault_preset

            faults = fault_preset(args.fault, seed=args.seed)
        reports = analyze_batch(
            args.seed,
            graphs=args.graphs,
            procs=args.procs[0] if args.procs else 3,
            fraction=args.fraction,
            faults=faults,
        )
        if args.fault == "overwrite":
            # Same extra case as `check --fault overwrite`: organic
            # plans are self-throttling, the demo plan is not.
            reports.append(analyze_overwrite_demo())
        if args.verify_ir:
            # Verify the worked example's lowering alongside the batch.
            spec, compiled, capacity, _prof = _resolve_workload(args)
            reports.append(verify_report(
                compiled, capacity=capacity, spec=spec,
                label="paper/irverify",
            ))

    if args.format == "json":
        doc = json.dumps(to_json(reports), indent=2, sort_keys=True)
    elif args.format == "sarif":
        doc = json.dumps(to_sarif(reports), indent=2, sort_keys=True)
    else:
        doc = render_text(reports)
    out = args.out if args.out not in (None, ".") else None
    if out is not None:
        import pathlib

        target = pathlib.Path(out)
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(doc + "\n")
        print(f"wrote {target}")
    else:
        print(doc)
    clean = sum(1 for r in reports if r.ok)
    advisory = sum(1 for r in reports if r.ok and r.diagnostics)
    if args.format == "text" or out is not None:
        tail = f" ({advisory} with advisories)" if advisory else ""
        print(f"{clean}/{len(reports)} plans statically clean{tail}")
    if clean != len(reports):
        return 1
    if args.strict and advisory:
        return 1
    return 0


def run_experiment(name: str, ctx: ExperimentContext, args) -> str:
    procs = tuple(args.procs) if args.procs else None
    if name == "table1":
        return table1(ctx, procs=procs or (2, 4, 8, 16)).render()
    if name == "table2":
        return table2(ctx, procs=procs or (2, 4, 8, 16, 32)).render()
    if name == "table3":
        return table3(ctx, procs=procs or (2, 4, 8, 16, 32)).render()
    if name in ("table4", "table6", "table7"):
        fn = {"table4": table4, "table6": table6, "table7": table7}[name]
        out = []
        apps = (args.app,) if args.app else ("cholesky", "lu")
        for app in apps:
            out.append(fn(ctx, app, procs=procs or (2, 4, 8, 16, 32)).render())
        return "\n\n".join(out)
    if name == "table5":
        return table5(ctx, procs=procs or (2, 4, 8, 16, 32)).render()
    if name == "table8":
        return run_table8().render()
    if name == "figure7":
        apps = (args.app,) if args.app else ("cholesky", "lu")
        return "\n\n".join(
            run_figure7(ctx, app, procs=procs or (2, 4, 8, 16, 32)).render()
            for app in apps
        )
    raise ValueError(f"unknown experiment {name!r}")


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate the evaluation of Fu & Yang, PPoPP 1997.",
    )
    parser.add_argument(
        "experiment",
        help="one of: " + ", ".join(EXPERIMENTS)
             + ", example, svg, gaps, list, all",
    )
    parser.add_argument(
        "action", nargs="?", default=None,
        help="subcommand of 'obs' (currently: merge)",
    )
    parser.add_argument("--app", choices=("cholesky", "lu"), default=None,
                        help="restrict comparison tables to one application")
    parser.add_argument("--procs", type=int, nargs="*", default=None,
                        help="processor counts to sweep")
    parser.add_argument("--jobs", type=int, default=1,
                        help="worker processes for the 'sweep' command "
                             "(0 = one per CPU; results are identical to "
                             "--jobs 1)")
    parser.add_argument("--out", default=".",
                        help="output directory for the 'svg' command")
    parser.add_argument("--metrics", nargs="?", const="", default=None,
                        metavar="PATH",
                        help="sweep: add per-cell telemetry columns to the "
                             "CSV; trace: write the metrics JSON to PATH "
                             "(default metrics.json)")
    parser.add_argument("--trace-out", default=None, metavar="PATH",
                        help="trace: write a Chrome trace_event JSON "
                             "(load at ui.perfetto.dev)")
    parser.add_argument("--report", default=None, metavar="PATH",
                        help="trace: write a standalone HTML telemetry report")
    parser.add_argument("--workload", default="paper",
                        help="trace: workload key ('paper' = the Figure 2 "
                             "example; else chol15/chol24/lu-goodwin)")
    parser.add_argument("--heuristic", default="mpo",
                        choices=("rcp", "mpo", "dts", "etf", "tree", "exact"),
                        help="trace/analyze: ordering heuristic")
    parser.add_argument("--heuristics", nargs="*", default=None,
                        metavar="NAME",
                        help="sweep: ordering heuristics of the grid "
                             "(default rcp mpo dts); gaps: scorecard "
                             "line-up (default rcp mpo dts etf tree)")
    parser.add_argument("--node-budget", type=int, default=None, metavar="N",
                        help="gaps: branch-and-bound node budget per "
                             "(instance, objective) solve (default 20000)")
    parser.add_argument("--fraction", type=float, default=0.5,
                        help="trace/check: memory capacity as a fraction of "
                             "TOT (check: position between MIN_MEM and TOT)")
    parser.add_argument("--check", action="store_true",
                        help="sweep: attach the invariant checker to every "
                             "cell and add a 'violations' column")
    parser.add_argument("--seed", type=int, default=0,
                        help="check: base seed of the random-DAG batch")
    parser.add_argument("--graphs", type=int, default=10,
                        help="check: number of seeded random DAGs")
    parser.add_argument("--fault", default=None,
                        choices=("delay", "jitter", "consume", "slow",
                                 "tighten", "overwrite"),
                        help="check/analyze: fault-injection preset to apply "
                             "(see docs/conformance.md; analyze uses only "
                             "its capacity knob plus the overwrite demo)")
    parser.add_argument("--format", default="text",
                        choices=("text", "json", "sarif"),
                        help="analyze: output format (sarif/json for CI "
                             "annotation; see docs/analysis.md)")
    parser.add_argument("--analyze", action="store_true",
                        help="sweep: statically analyze every cell and add "
                             "an 'analysis_errors' column")
    parser.add_argument("--strict", action="store_true",
                        help="analyze: exit 1 on advisory (warning/info) "
                             "findings too, not only on errors")
    parser.add_argument("--verify-ir", action="store_true",
                        help="analyze: verify the workload's compiled-engine "
                             "lowering and exec plan (SA5xx; see "
                             "docs/analysis.md)")
    parser.add_argument("--bounds", action="store_true",
                        help="sweep: add certified-bound columns (pt_bound, "
                             "mem_bound, *_gap) to the CSV; analyze: run the "
                             "certified-bound pass (SA401-SA403)")
    parser.add_argument("--engine", default="interpreted",
                        choices=("interpreted", "compiled"),
                        help="sweep: simulator engine; 'compiled' runs the "
                             "array-compiled engine (same CSV bytes, "
                             "faster; observed cells fall back)")
    parser.add_argument("--workloads", nargs="*", default=None,
                        metavar="KEY",
                        help="sweep: workload keys of the grid "
                             "(default chol15 lu-goodwin)")
    parser.add_argument("--supervised", action="store_true",
                        help="sweep: run under the fault-tolerant "
                             "supervisor (timeouts, retries, structured "
                             "failure records; see docs/resilience.md)")
    parser.add_argument("--timeout", type=float, default=None, metavar="S",
                        help="sweep: per-group wall-clock timeout in "
                             "seconds (0 = never; implies --supervised)")
    parser.add_argument("--retries", type=int, default=None, metavar="N",
                        help="sweep: charged attempts per group before it "
                             "is recorded as failed (implies --supervised)")
    parser.add_argument("--checkpoint", default=None, metavar="DIR",
                        help="sweep: journal completed groups to DIR as "
                             "they finish (implies --supervised)")
    parser.add_argument("--resume", action="store_true",
                        help="sweep: replay groups already committed to "
                             "the --checkpoint journal and run only the "
                             "remainder (CSV identical to an "
                             "uninterrupted run)")
    parser.add_argument("--harness-fault", action="append", default=None,
                        metavar="KIND:WORKLOAD:PROCS[:ATTEMPTS]",
                        help="sweep: inject a deterministic harness fault "
                             "(kill/hang/error) into one group, for "
                             "resilience testing; repeatable")
    parser.add_argument("--obs-dir", default=None, metavar="DIR",
                        help="sweep: write runtime-trace shards to DIR and "
                             "merge them into DIR/sweep_trace.json on exit "
                             "(implies --supervised); obs merge: the "
                             "directory to merge")
    parser.add_argument("--progress", action="store_true",
                        help="sweep: live stderr ticker (done/running/"
                             "retrying/failed groups; implies --supervised)")
    parser.add_argument("--engine-stats", action="store_true",
                        help="sweep: add opt-in engine columns (engine_used, "
                             "fallback_reason) to the CSV")
    args = parser.parse_args(argv)

    if args.experiment == "obs":
        if args.action != "merge":
            print("usage: repro obs merge --obs-dir DIR [--trace-out PATH]",
                  file=sys.stderr)
            return 2
        if not args.obs_dir:
            print("repro obs merge requires --obs-dir DIR", file=sys.stderr)
            return 2
        from .obs.sweep_trace import write_sweep_trace

        path = write_sweep_trace(args.obs_dir, args.trace_out)
        print(f"wrote {path} (open at ui.perfetto.dev)")
        return 0

    if args.experiment == "list":
        print("\n".join(
            EXPERIMENTS
            + ("example", "svg", "sweep", "gaps", "trace", "check",
               "analyze", "validate", "obs merge")
        ))
        return 0
    if args.experiment == "trace":
        return _run_trace(args)
    if args.experiment == "check":
        return _run_check_cmd(args)
    if args.experiment == "analyze":
        return _run_analyze(args)
    if args.experiment == "example":
        print(_paper_example_walkthrough())
        return 0
    if args.experiment == "svg":
        for path in _render_example_svgs(args.out):
            print(f"wrote {path}")
        return 0
    if args.experiment == "validate":
        from .experiments.validate import render_scorecard, validate

        claims = validate(ExperimentContext())
        print(render_scorecard(claims))
        return 0 if all(c.passed for c in claims) else 1
    if args.experiment == "gaps":
        from .experiments.tables import (
            SCORECARD_NODE_BUDGET,
            SCORECARD_PROCS,
            SCORECARD_WORKLOADS,
            gap_scorecard,
        )
        from .opt.gaps import GAP_HEURISTICS

        heuristics = tuple(args.heuristics) if args.heuristics else None
        if heuristics:
            bad = [h for h in heuristics if h not in GAP_HEURISTICS]
            if bad:
                print(
                    f"unknown heuristic(s) {bad}; "
                    f"choose from {list(GAP_HEURISTICS)}",
                    file=sys.stderr,
                )
                return 2
        try:
            card = gap_scorecard(
                ExperimentContext(),
                workloads=(
                    tuple(args.workloads) if args.workloads
                    else SCORECARD_WORKLOADS
                ),
                procs=tuple(args.procs) if args.procs else SCORECARD_PROCS,
                heuristics=heuristics,
                node_budget=(
                    args.node_budget if args.node_budget is not None
                    else SCORECARD_NODE_BUDGET
                ),
            )
        except KeyError as err:
            print(str(err).strip('"'), file=sys.stderr)
            return 2
        print(card.render())
        return 0
    if args.experiment == "sweep":
        import pathlib
        from time import monotonic

        from .experiments.sweep import full_sweep, to_csv
        from .obs.runtime import format_summary, status_counts

        supervise = bool(
            args.supervised or args.checkpoint or args.resume
            or args.timeout is not None or args.retries is not None
            or args.harness_fault or args.obs_dir or args.progress
        )
        runtime = harness_faults = None
        if supervise:
            from .experiments.runtime import RuntimePolicy

            policy_kw = {}
            if args.timeout is not None:
                policy_kw["timeout"] = args.timeout or None
            if args.retries is not None:
                policy_kw["max_attempts"] = args.retries
            runtime = RuntimePolicy(**policy_kw)
            if args.harness_fault:
                try:
                    harness_faults = _parse_harness_faults(args.harness_fault)
                except ValueError as err:
                    print(str(err), file=sys.stderr)
                    return 2

        ctx = ExperimentContext()
        sweep_kw = {}
        if args.workloads:
            sweep_kw["workloads"] = tuple(args.workloads)
        if args.heuristics:
            sweep_kw["heuristics"] = tuple(args.heuristics)
        t0 = monotonic()
        try:
            records = full_sweep(
                ctx,
                procs=tuple(args.procs) if args.procs else (2, 4, 8, 16, 32),
                jobs=args.jobs,
                metrics=args.metrics is not None,
                check=args.check,
                analyze=args.analyze,
                engine=args.engine,
                engine_stats=args.engine_stats,
                bounds=args.bounds,
                runtime=runtime,
                checkpoint=args.checkpoint,
                resume=args.resume,
                harness_faults=harness_faults,
                obs_dir=args.obs_dir,
                progress=args.progress,
                **sweep_kw,
            )
        except (KeyError, ValueError) as err:
            # Bad --heuristics / --workloads names: surface the choice
            # listing instead of a traceback.
            print(str(err).strip('"'), file=sys.stderr)
            return 2
        elapsed = monotonic() - t0
        out = pathlib.Path(args.out)
        target = out / "sweep.csv" if out.is_dir() or not out.suffix else out
        target.parent.mkdir(parents=True, exist_ok=True)
        to_csv(records, path=str(target))
        print(f"wrote {target} ({len(records)} records)")
        if args.obs_dir:
            from .obs.sweep_trace import write_sweep_trace

            merged = write_sweep_trace(args.obs_dir)
            print(f"wrote {merged} (open at ui.perfetto.dev)")
        if not args.progress:
            # One-line wall-clock + per-status summary; --progress runs
            # already printed the identical line via the ticker's
            # sweep_end handler (same helpers, one source of truth).
            print(format_summary(status_counts(records), elapsed),
                  file=sys.stderr)
        failed = sorted({
            (r.workload, r.procs, r.status)
            for r in records if r.status is not None
        })
        if failed:
            # Controlled degradation: completed cells were written (and
            # journaled under --checkpoint); the exit status still flags
            # the run so CI and drivers notice.
            for key, p, status in failed:
                print(f"group {key}@{p} failed: {status}", file=sys.stderr)
            print(
                f"{len(failed)} group(s) failed; re-run with --checkpoint/"
                "--resume to retry only the failed groups",
                file=sys.stderr,
            )
            return 3
        return 0

    ctx = ExperimentContext()
    names = EXPERIMENTS if args.experiment == "all" else (args.experiment,)
    for name in names:
        if name not in EXPERIMENTS:
            print(f"unknown experiment {name!r}; try 'list'", file=sys.stderr)
            return 2
        print(run_experiment(name, ctx, args))
        print()
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
