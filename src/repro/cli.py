"""Command-line interface: regenerate the paper's experiments.

Usage::

    python -m repro list                # available experiments
    python -m repro table1             # one table
    python -m repro table2 --procs 4 8
    python -m repro figure7 --app lu
    python -m repro table8
    python -m repro example            # the Figure 2/3/5 walkthrough
    python -m repro all                # everything (a few minutes)
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from .experiments import (
    ExperimentContext,
    run_figure7,
    run_table8,
    table1,
    table2,
    table3,
    table4,
    table5,
    table6,
    table7,
)

EXPERIMENTS = (
    "table1", "table2", "table3", "table4", "table5", "table6", "table7",
    "table8", "figure7",
)


def _paper_example_walkthrough() -> str:
    from .core import analyze_memory, dts_order, plan_maps
    from .core.dcg import build_dcg
    from .graph.paper_example import (
        paper_assignment,
        paper_example_graph,
        paper_placement,
        schedule_b,
        schedule_c,
    )

    g = paper_example_graph()
    pl = paper_placement()
    asg = paper_assignment(g, pl)
    lines = [f"Figure 2(a): {g.num_tasks} tasks, {g.num_objects} objects"]
    lines.append(f"MIN_MEM Fig2(b) = {analyze_memory(schedule_b(g)).min_mem} (paper: 9)")
    lines.append(f"MIN_MEM Fig2(c) = {analyze_memory(schedule_c(g)).min_mem} (paper: 8)")
    lines.append(
        "MIN_MEM DTS     = "
        f"{analyze_memory(dts_order(g, pl, asg)).min_mem} (paper: 7)"
    )
    dcg = build_dcg(g)
    lines.append(
        "DCG slices: " + " -> ".join(o[0] for o in dcg.comp_objects)
    )
    plan = plan_maps(schedule_c(g), 8)
    lines.append(f"MAPs under capacity 8: {plan.maps_per_proc} per processor")
    return "\n".join(lines)


def _render_example_svgs(out_dir: str) -> list[str]:
    """Write Gantt + memory SVGs of the paper example's three schedules."""
    import pathlib

    from .core import analyze_memory, dts_order, gantt
    from .core.viz import gantt_svg, memory_svg
    from .graph.paper_example import (
        paper_assignment,
        paper_example_graph,
        paper_placement,
        schedule_b,
        schedule_c,
    )

    out = pathlib.Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    g = paper_example_graph()
    pl = paper_placement()
    asg = paper_assignment(g, pl)
    written = []
    for label, sched in (
        ("fig2b_rcp", schedule_b(g)),
        ("fig2c_mpo", schedule_c(g)),
        ("fig5_dts", dts_order(g, pl, asg)),
    ):
        p1 = out / f"{label}_gantt.svg"
        gantt_svg(gantt(sched), path=str(p1), label_tasks=True)
        p2 = out / f"{label}_memory.svg"
        memory_svg(analyze_memory(sched), path=str(p2), capacity=8)
        written += [str(p1), str(p2)]
    return written


def run_experiment(name: str, ctx: ExperimentContext, args) -> str:
    procs = tuple(args.procs) if args.procs else None
    if name == "table1":
        return table1(ctx, procs=procs or (2, 4, 8, 16)).render()
    if name == "table2":
        return table2(ctx, procs=procs or (2, 4, 8, 16, 32)).render()
    if name == "table3":
        return table3(ctx, procs=procs or (2, 4, 8, 16, 32)).render()
    if name in ("table4", "table6", "table7"):
        fn = {"table4": table4, "table6": table6, "table7": table7}[name]
        out = []
        apps = (args.app,) if args.app else ("cholesky", "lu")
        for app in apps:
            out.append(fn(ctx, app, procs=procs or (2, 4, 8, 16, 32)).render())
        return "\n\n".join(out)
    if name == "table5":
        return table5(ctx, procs=procs or (2, 4, 8, 16, 32)).render()
    if name == "table8":
        return run_table8().render()
    if name == "figure7":
        apps = (args.app,) if args.app else ("cholesky", "lu")
        return "\n\n".join(
            run_figure7(ctx, app, procs=procs or (2, 4, 8, 16, 32)).render()
            for app in apps
        )
    raise ValueError(f"unknown experiment {name!r}")


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate the evaluation of Fu & Yang, PPoPP 1997.",
    )
    parser.add_argument(
        "experiment",
        help="one of: " + ", ".join(EXPERIMENTS) + ", example, svg, list, all",
    )
    parser.add_argument("--app", choices=("cholesky", "lu"), default=None,
                        help="restrict comparison tables to one application")
    parser.add_argument("--procs", type=int, nargs="*", default=None,
                        help="processor counts to sweep")
    parser.add_argument("--jobs", type=int, default=1,
                        help="worker processes for the 'sweep' command "
                             "(0 = one per CPU; results are identical to "
                             "--jobs 1)")
    parser.add_argument("--out", default=".",
                        help="output directory for the 'svg' command")
    args = parser.parse_args(argv)

    if args.experiment == "list":
        print("\n".join(EXPERIMENTS + ("example", "svg", "sweep", "validate")))
        return 0
    if args.experiment == "example":
        print(_paper_example_walkthrough())
        return 0
    if args.experiment == "svg":
        for path in _render_example_svgs(args.out):
            print(f"wrote {path}")
        return 0
    if args.experiment == "validate":
        from .experiments.validate import render_scorecard, validate

        claims = validate(ExperimentContext())
        print(render_scorecard(claims))
        return 0 if all(c.passed for c in claims) else 1
    if args.experiment == "sweep":
        import pathlib

        from .experiments.sweep import full_sweep, to_csv

        ctx = ExperimentContext()
        records = full_sweep(
            ctx,
            procs=tuple(args.procs) if args.procs else (2, 4, 8, 16, 32),
            jobs=args.jobs,
        )
        out = pathlib.Path(args.out)
        target = out / "sweep.csv" if out.is_dir() or not out.suffix else out
        target.parent.mkdir(parents=True, exist_ok=True)
        to_csv(records, path=str(target))
        print(f"wrote {target} ({len(records)} records)")
        return 0

    ctx = ExperimentContext()
    names = EXPERIMENTS if args.experiment == "all" else (args.experiment,)
    for name in names:
        if name not in EXPERIMENTS:
            print(f"unknown experiment {name!r}; try 'list'", file=sys.stderr)
            return 2
        print(run_experiment(name, ctx, args))
        print()
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
