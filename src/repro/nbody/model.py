"""Cell-based N-body force computation — the paper's other motivating
irregular application ("RAPID is targeted at irregular applications
which involve iterative computation and have invariant or slowly changed
dependence structures, such as those in sparse matrix computation and
N-body galaxy simulations", section 2).

The model is a fixed-structure spatial decomposition: particles live in
a ``k x k`` grid of cells with *non-uniform* occupancy (mixed
granularity); every timestep

* ``ZERO(c)``    resets cell ``c``'s force accumulator,
* ``FORCE(c,d)`` accumulates the softened gravitational forces exerted
  on ``c``'s particles by neighbour cell ``d`` (including ``d = c``) —
  accumulations into one cell *commute*,
* ``MOVE(c)``    integrates positions/velocities (symplectic Euler),

and the next step's ``FORCE`` tasks read the moved particles, giving the
iterative DAG with an invariant dependence structure that RAPID targets.
Cell states are owned block-cyclically; a cell's force tasks run on its
owner and fetch neighbour cells as volatile objects.

Numeric kernels are attached, and :meth:`NBodyProblem.reference_step`
computes the same physics directly with NumPy so tests can verify that
*every* schedule reproduces the trajectory exactly.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..core.placement import Placement, owner_compute_assignment
from ..graph.builder import GraphBuilder
from ..graph.taskgraph import TaskGraph

BYTES_PER_FLOAT = 8
SOFTENING = 0.05


def cell_name(i: int, j: int) -> str:
    return f"C[{i},{j}]"


def force_name(i: int, j: int) -> str:
    return f"F[{i},{j}]"


def _pairwise_force(
    pos_dst: np.ndarray, pos_src: np.ndarray, mass_src: np.ndarray
) -> np.ndarray:
    """Softened gravitational acceleration on ``dst`` particles from
    ``src`` particles (unit G)."""
    d = pos_src[None, :, :] - pos_dst[:, None, :]  # (ndst, nsrc, 2)
    r2 = (d**2).sum(axis=2) + SOFTENING**2
    inv = mass_src[None, :] / (r2 * np.sqrt(r2))
    return (d * inv[:, :, None]).sum(axis=1)


@dataclass
class NBodyProblem:
    """A fixed-structure N-body timestepping instance."""

    k: int
    steps: int
    dt: float
    counts: np.ndarray  # particles per cell, shape (k, k)
    init_pos: dict[tuple[int, int], np.ndarray]
    init_vel: dict[tuple[int, int], np.ndarray]
    masses: dict[tuple[int, int], np.ndarray]
    graph: TaskGraph = field(repr=False)

    @property
    def num_cells(self) -> int:
        return self.k * self.k

    @property
    def total_particles(self) -> int:
        return int(self.counts.sum())

    def cells(self):
        for i in range(self.k):
            for j in range(self.k):
                yield (i, j)

    def neighbours(self, i: int, j: int):
        """The 3x3 stencil clipped to the grid (includes the cell)."""
        for di in (-1, 0, 1):
            for dj in (-1, 0, 1):
                ii, jj = i + di, j + dj
                if 0 <= ii < self.k and 0 <= jj < self.k:
                    yield (ii, jj)

    def placement(self, p: int) -> Placement:
        """Block-cyclic cell ownership; forces live with their cell."""
        pr = max(int(np.sqrt(p)), 1)
        while p % pr:
            pr -= 1
        pc = p // pr
        owner = {}
        for (i, j) in self.cells():
            q = (i % pr) * pc + (j % pc)
            owner[cell_name(i, j)] = q
            owner[force_name(i, j)] = q
        return Placement(p, owner)

    def assignment(self, placement: Placement) -> dict[str, int]:
        return owner_compute_assignment(self.graph, placement)

    # -- numerics -----------------------------------------------------

    def initial_store(self) -> dict:
        store: dict = {}
        for c in self.cells():
            store[cell_name(*c)] = {
                "pos": self.init_pos[c].copy(),
                "vel": self.init_vel[c].copy(),
                "mass": self.masses[c].copy(),
            }
            store[force_name(*c)] = np.zeros_like(self.init_pos[c])
        return store

    def gather_positions(self, store: dict) -> np.ndarray:
        return np.concatenate(
            [store[cell_name(*c)]["pos"] for c in self.cells() if len(store[cell_name(*c)]["pos"])]
        )

    def reference_trajectory(self) -> np.ndarray:
        """Direct NumPy simulation of the same physics (per-cell order of
        accumulation does not matter analytically; float tolerance covers
        reassociation)."""
        pos = {c: self.init_pos[c].copy() for c in self.cells()}
        vel = {c: self.init_vel[c].copy() for c in self.cells()}
        for _ in range(self.steps):
            forces = {}
            for c in self.cells():
                if len(pos[c]) == 0:
                    forces[c] = np.zeros((0, 2))
                    continue
                acc = np.zeros_like(pos[c])
                for d in self.neighbours(*c):
                    if len(pos[d]):
                        acc += _pairwise_force(pos[c], pos[d], self.masses[d])
                forces[c] = acc
            for c in self.cells():
                if len(pos[c]) == 0:
                    continue
                vel[c] = vel[c] + self.dt * forces[c]
                pos[c] = pos[c] + self.dt * vel[c]
        return np.concatenate([pos[c] for c in self.cells() if len(pos[c])])


def build_nbody(
    k: int = 4,
    steps: int = 2,
    mean_particles: float = 6.0,
    dt: float = 0.01,
    seed: int = 0,
    flop_time: float = 1.0,
    with_kernels: bool = True,
) -> NBodyProblem:
    """Build the ``steps``-timestep N-body task graph.

    Cell occupancy is Poisson-distributed (mixed granularity); particle
    positions are uniform in the cell, masses log-uniform.
    """
    rng = np.random.default_rng(seed)
    counts = rng.poisson(mean_particles, size=(k, k))
    init_pos: dict[tuple[int, int], np.ndarray] = {}
    init_vel: dict[tuple[int, int], np.ndarray] = {}
    masses: dict[tuple[int, int], np.ndarray] = {}
    for i in range(k):
        for j in range(k):
            n = int(counts[i, j])
            base = np.array([i, j], dtype=float)
            init_pos[(i, j)] = base + rng.uniform(0, 1, size=(n, 2))
            init_vel[(i, j)] = rng.normal(0, 0.05, size=(n, 2))
            masses[(i, j)] = np.exp(rng.uniform(-1, 1, size=n))

    b = GraphBuilder(materialize_inputs=True, dependence_mode="transform")
    for i in range(k):
        for j in range(k):
            n = int(counts[i, j])
            b.add_object(cell_name(i, j), max(n, 1) * 5 * BYTES_PER_FLOAT)
            b.add_object(force_name(i, j), max(n, 1) * 2 * BYTES_PER_FLOAT)

    def k_zero(c):
        fn, cn = force_name(*c), cell_name(*c)

        def kernel(store):
            store[fn] = np.zeros_like(store[cn]["pos"])

        return kernel

    def k_force(c, d):
        fn, cn, dn = force_name(*c), cell_name(*c), cell_name(*d)

        def kernel(store):
            dst, src = store[cn], store[dn]
            if len(dst["pos"]) and len(src["pos"]):
                store[fn] += _pairwise_force(dst["pos"], src["pos"], src["mass"])

        return kernel

    def k_move(c, dt):
        fn, cn = force_name(*c), cell_name(*c)

        def kernel(store):
            cell = store[cn]
            if len(cell["pos"]):
                cell["vel"] = cell["vel"] + dt * store[fn]
                cell["pos"] = cell["pos"] + dt * cell["vel"]

        return kernel

    cells = [(i, j) for i in range(k) for j in range(k)]
    for s in range(steps):
        for c in cells:
            b.add_task(
                f"ZERO({c[0]},{c[1]})@{s}",
                reads=(cell_name(*c),),
                writes=(force_name(*c),),
                weight=max(counts[c], 1) * flop_time,
                kernel=k_zero(c) if with_kernels else None,
            )
        for c in cells:
            nc = max(int(counts[c]), 1)
            for di in (-1, 0, 1):
                for dj in (-1, 0, 1):
                    d = (c[0] + di, c[1] + dj)
                    if not (0 <= d[0] < k and 0 <= d[1] < k):
                        continue
                    nd = max(int(counts[d]), 1)
                    b.add_task(
                        f"FORCE({c[0]},{c[1]}|{d[0]},{d[1]})@{s}",
                        reads=tuple(
                            dict.fromkeys(
                                (cell_name(*c), cell_name(*d), force_name(*c))
                            )
                        ),
                        writes=(force_name(*c),),
                        weight=20.0 * nc * nd * flop_time,
                        commute=f"acc:F{c}@{s}",
                        kernel=k_force(c, d) if with_kernels else None,
                    )
        for c in cells:
            b.add_task(
                f"MOVE({c[0]},{c[1]})@{s}",
                reads=(cell_name(*c), force_name(*c)),
                writes=(cell_name(*c),),
                weight=4.0 * max(int(counts[c]), 1) * flop_time,
                kernel=k_move(c, dt) if with_kernels else None,
            )
    return NBodyProblem(
        k=k,
        steps=steps,
        dt=dt,
        counts=counts,
        init_pos=init_pos,
        init_vel=init_vel,
        masses=masses,
        graph=b.build(),
    )
