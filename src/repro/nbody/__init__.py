"""Cell-based N-body application (the paper's second motivating domain)."""

from .model import NBodyProblem, build_nbody, cell_name, force_name

__all__ = ["NBodyProblem", "build_nbody", "cell_name", "force_name"]
