"""Figure 7 — memory scalability of the three scheduling heuristics.

The memory reduction ratio is ``S1 / S_p^A`` where ``S_p^A`` is the
per-processor space requirement (peak, with recycling — i.e. MIN_MEM) of
the schedule produced by algorithm ``A`` on ``p`` processors.  The
upper-most curve of the paper's plots is perfect scalability ``S1/p``
over ``S1/p = p``.
"""

from __future__ import annotations

from dataclasses import dataclass

from .common import ExperimentContext
from .report import render_series

HEURISTICS = ("rcp", "mpo", "dts")


@dataclass
class Figure7:
    app: str
    procs: tuple[int, ...]
    #: series["perfect" | heuristic] -> ratio per p
    series: dict[str, list[float]]

    def render(self) -> str:
        return render_series(
            f"Figure 7 ({self.app}): memory scalability S1/S_p",
            "p",
            self.series,
            list(self.procs),
        )


def figure7(
    ctx: ExperimentContext, app: str = "cholesky", procs=(2, 4, 8, 16, 32)
) -> Figure7:
    key = "chol15" if app == "cholesky" else "lu-goodwin"
    series: dict[str, list[float]] = {"perfect": [float(p) for p in procs]}
    for h in HEURISTICS:
        vals = []
        for p in procs:
            prof = ctx.profile(key, p, h)
            vals.append(prof.memory_scalability(recycling=True))
        series[h.upper()] = vals
    return Figure7(app=app, procs=tuple(procs), series=series)
