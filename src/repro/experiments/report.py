"""ASCII rendering of experiment results in the paper's table style."""

from __future__ import annotations

import math
from typing import Sequence


def fmt_pct(x: float | str, digits: int = 1) -> str:
    """Percentage cell: ``12.3%``, ``inf`` for non-executable, or a
    pass-through marker (``*``, ``-``)."""
    if isinstance(x, str):
        return x
    if math.isinf(x):
        return "inf"
    return f"{100.0 * x:.{digits}f}%"


def fmt_maps(x: float) -> str:
    if math.isinf(x):
        return "inf"
    return f"{x:.2f}"


def fmt_ratio(x: float, digits: int = 2) -> str:
    if math.isinf(x):
        return "inf"
    return f"{x:.{digits}f}"


def render_table(
    headers: Sequence[str], rows: Sequence[Sequence[str]], title: str = ""
) -> str:
    """Fixed-width table with a header rule."""
    cols = len(headers)
    widths = [len(h) for h in headers]
    for r in rows:
        for i in range(cols):
            widths[i] = max(widths[i], len(str(r[i])))
    def line(cells):
        return " | ".join(str(c).rjust(widths[i]) for i, c in enumerate(cells))

    out = []
    if title:
        out.append(title)
    out.append(line(headers))
    out.append("-+-".join("-" * w for w in widths))
    for r in rows:
        out.append(line(r))
    return "\n".join(out)


def render_series(title: str, xlabel: str, series: dict[str, list[float]], xs: list) -> str:
    """Figure-style output: one column per series (for Figure 7)."""
    headers = [xlabel] + list(series)
    rows = []
    for i, x in enumerate(xs):
        rows.append([str(x)] + [fmt_ratio(series[k][i]) for k in series])
    return render_table(headers, rows, title=title)
