"""Fault-tolerant execution layer under :func:`full_sweep`.

Scaling the sweep grid toward multi-hour runs means treating per-group
failure as *data*, not as a crash: one hung cell, one OOM-killed worker
or one :class:`~repro.errors.DeadlockError` must not abort the sweep
and discard every completed record.  This module supervises the
(workload, procs) groups that :mod:`repro.experiments.sweep` fans out
to worker processes:

* **Timeouts** — every group gets a wall-clock budget
  (:attr:`RuntimePolicy.timeout`); on expiry the worker pool is killed
  and resurrected, the culprit is charged an attempt, and bystander
  groups are requeued for free.
* **Retries** — charged attempts are bounded
  (:attr:`RuntimePolicy.max_attempts`) with exponential backoff and
  deterministic jitter (seeded per group+attempt, so two runs of the
  same policy sleep identically).
* **Crash attribution** — a dead worker breaks the whole
  :class:`~concurrent.futures.ProcessPoolExecutor`, taking innocent
  in-flight groups with it.  The supervisor resurrects the pool and
  re-runs the involved groups one at a time (*quarantine*), so only the
  group that actually kills its worker is charged.
* **Graceful degradation** — a group that exhausts its retries (or
  fails deterministically: any :class:`~repro.errors.ReproError` such
  as ``DeadlockError`` or ``MemoryError_`` is not retried) becomes a
  structured :class:`CellFailure` instead of poisoning the run.
* **Streaming checkpoints** — an ``on_complete`` callback fires as each
  group finishes, which :func:`full_sweep` uses to journal progress
  (:mod:`repro.experiments.checkpoint`).

Worker-side exceptions are converted to a picklable :class:`WorkerError`
*inside* the worker — simulator exceptions with multi-argument
constructors (``DeadlockError``) do not survive the executor's pickle
round trip, and a failure report must never be the thing that crashes
the harness.

To keep the layer honest, :class:`HarnessFaultSpec` extends the
PR-4 fault-injection philosophy to the harness itself: it deterministically
kills the worker, raises an injected exception, or sleeps past the
timeout in chosen groups and attempts, driving the kill/hang/resume
tests and the CI resilience job.

Every supervision decision can be traced: ``run_supervised`` accepts a
duck-typed ``tracer`` sink (``.emit(kind, group=..., attempt=...,
**fields)`` — see :mod:`repro.obs.runtime`) and an ``obs_dir`` that
workers use to open their own per-process JSONL shards.  Both default
to ``None`` and every emit site is ``is None``-guarded, so an
unobserved sweep takes zero extra syscalls on the hot path.

This module is the one place in the repository allowed to call
``time.sleep`` (enforced by ``tools/lint_rules.py``): all waiting —
backoff, timeout polling — is centralised here.  It shares the wall
clock exemption of :mod:`repro.obs` (lint rule ``wallclock-span``);
everything else times spans with the monotonic clock.
"""

from __future__ import annotations

import heapq
import os
import signal
import time
from collections import deque
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from random import Random
from typing import Callable, Optional, Sequence

__all__ = [
    "CellFailure",
    "HarnessFaultSpec",
    "InjectedHarnessError",
    "RuntimePolicy",
    "WorkerError",
    "run_supervised",
]

#: A sweep group identifier: (workload key, processor count).
GroupKey = tuple[str, int]


@dataclass(frozen=True)
class RuntimePolicy:
    """Supervision knobs of one sweep run.

    The defaults are production-shaped (generous timeout, three
    attempts, sub-second backoff); tests tighten them.  All waits
    derived from a policy are deterministic given ``seed``.
    """

    #: Wall-clock seconds one group attempt may take before its worker
    #: pool is killed (``None`` = never time out).  The budget starts at
    #: submission and therefore includes worker warm-up.
    timeout: Optional[float] = 300.0
    #: Charged attempts per group before it is recorded as failed.
    max_attempts: int = 3
    #: First backoff delay in seconds; attempt ``n`` waits
    #: ``backoff_base * backoff_factor**(n-1)`` plus jitter.
    backoff_base: float = 0.5
    backoff_factor: float = 2.0
    #: Jitter fraction: the delay is multiplied by a deterministic
    #: ``1 + uniform(0, backoff_jitter)`` drawn from ``seed``.
    backoff_jitter: float = 0.1
    #: Seed of the jitter stream (per group+attempt, so concurrent
    #: groups never share a draw).
    seed: int = 0
    #: Supervisor wake-up interval for timeout checks, seconds.
    poll_interval: float = 0.05

    def backoff_s(self, key: GroupKey, attempt: int) -> float:
        """Deterministic backoff before retry ``attempt + 1``."""
        base = self.backoff_base * self.backoff_factor ** (attempt - 1)
        rng = Random(f"{self.seed}:{key[0]}:{key[1]}:{attempt}")
        return base * (1.0 + self.backoff_jitter * rng.random())


class InjectedHarnessError(RuntimeError):
    """The exception :class:`HarnessFaultSpec` raises in a worker."""


@dataclass(frozen=True)
class HarnessFaultSpec:
    """Deterministic fault injection for the *harness* (not the
    simulator — see :class:`repro.conformance.FaultSpec` for that).

    Faults fire inside the worker process, keyed on the group and the
    attempt number the supervisor passes down, so a kill/hang/resume
    test is exactly reproducible.  ``on_attempts`` selects which charged
    attempts trigger (1-based); the empty tuple means *every* attempt —
    the exhaust-the-retries configuration.
    """

    #: Groups whose worker process is SIGKILLed (simulates the OOM
    #: killer; breaks the pool).
    kill: tuple[GroupKey, ...] = ()
    #: Groups that sleep ``hang_s`` before running (simulates a hang;
    #: trips the supervisor's timeout when ``hang_s`` exceeds it).
    hang: tuple[GroupKey, ...] = ()
    #: Groups that raise :class:`InjectedHarnessError`.
    error: tuple[GroupKey, ...] = ()
    #: Attempts the fault fires on; ``()`` = all attempts.
    on_attempts: tuple[int, ...] = (1,)
    #: Injected sleep for ``hang`` groups, seconds.
    hang_s: float = 30.0

    def apply(self, key: GroupKey, attempt: int) -> None:
        """Trigger the configured fault for (``key``, ``attempt``);
        runs in the worker process."""
        if self.on_attempts and attempt not in self.on_attempts:
            return
        if key in self.kill:
            os.kill(os.getpid(), signal.SIGKILL)
        if key in self.error:
            raise InjectedHarnessError(
                f"injected harness error in group {key[0]}@{key[1]} "
                f"(attempt {attempt})"
            )
        if key in self.hang:
            time.sleep(self.hang_s)


@dataclass(frozen=True)
class WorkerError:
    """Picklable stand-in for an exception raised inside a worker."""

    kind: str
    message: str
    #: Deterministic library errors (``ReproError``: deadlocks, memory
    #: misuse, non-executable schedules) re-fail identically on retry,
    #: so the supervisor fails them fast instead of burning attempts.
    retryable: bool


@dataclass(frozen=True)
class CellFailure:
    """Structured record of a group that exhausted its retries.

    :func:`full_sweep` expands one ``CellFailure`` into per-cell
    failure records (the opt-in ``status``/``error``/``attempts``/
    ``elapsed`` CSV columns).
    """

    workload: str
    procs: int
    #: ``"timeout"`` (wall-clock budget exceeded), ``"crashed"``
    #: (worker process died) or ``"error"`` (exception in the group).
    status: str
    error: str
    attempts: int
    #: Wall-clock seconds from first submission to the failure verdict
    #: (includes retries and backoff).
    elapsed: float


class _Group:
    """Supervisor-side state of one submitted group."""

    __slots__ = ("index", "key", "args", "attempts", "deadline", "first_submit")

    def __init__(self, index: int, key: GroupKey, args: tuple):
        self.index = index
        self.key = key
        self.args = args
        #: Charged attempts (successes, attributed crashes/timeouts,
        #: worker exceptions).  Collateral pool deaths are free.
        self.attempts = 0
        self.deadline: Optional[float] = None
        self.first_submit: Optional[float] = None


#: Lazily created per-worker-process tracer (reused across groups so a
#: surviving worker keeps appending to its own shard).
_WORKER_TRACER = None


def _worker_tracer(obs_dir):
    global _WORKER_TRACER
    from ..obs.runtime import RuntimeTracer

    if _WORKER_TRACER is None or str(_WORKER_TRACER.dir) != str(obs_dir):
        _WORKER_TRACER = RuntimeTracer(obs_dir, role="worker")
    return _WORKER_TRACER


def _supervised_entry(payload):
    """Worker-side entry point: apply harness faults, run the group,
    and convert any exception into a picklable :class:`WorkerError`.

    With an ``obs_dir`` the attempt is bracketed by ``attempt_start`` /
    ``attempt_finish`` events in the worker's own shard (the start event
    survives a SIGKILL mid-group), and the per-attempt delta of the
    engine introspection counters is emitted as ``engine_counters``.
    """
    key, attempt, faults, obs_dir, args = payload
    tracer = _worker_tracer(obs_dir) if obs_dir is not None else None
    if tracer is not None:
        tracer.emit("attempt_start", group=key, attempt=attempt)
    if faults is not None:
        faults.apply(key, attempt)
    from ..errors import ReproError
    from .sweep import _worker_engine_counters, _worker_run_group

    t0 = time.monotonic()
    before = _worker_engine_counters() if tracer is not None else {}
    try:
        records = _worker_run_group(args)
    except Exception as err:
        if tracer is not None:
            tracer.emit(
                "attempt_finish", group=key, attempt=attempt,
                status="error", dur=round(time.monotonic() - t0, 6),
                error=f"{type(err).__name__}: {err}",
            )
        return WorkerError(
            kind=type(err).__name__,
            message=str(err),
            retryable=not isinstance(err, ReproError),
        )
    if tracer is not None:
        tracer.emit(
            "attempt_finish", group=key, attempt=attempt,
            status="ok", dur=round(time.monotonic() - t0, 6),
            records=len(records),
        )
        after = _worker_engine_counters()
        delta = {
            k: round(v - before.get(k, 0), 6)
            for k, v in after.items()
            if v - before.get(k, 0)
        }
        if delta:
            tracer.emit(
                "engine_counters", group=key, attempt=attempt,
                counters=delta,
            )
    return records


def _kill_pool(pool: ProcessPoolExecutor) -> None:
    """SIGKILL every worker of ``pool`` and reap the executor."""
    for proc in list(getattr(pool, "_processes", {}).values()):
        try:
            proc.kill()
        except (OSError, ValueError):
            pass  # already gone
    pool.shutdown(wait=True, cancel_futures=True)


def run_supervised(
    tasks: Sequence[tuple[GroupKey, tuple]],
    *,
    jobs: int,
    initializer,
    initargs: tuple,
    policy: Optional[RuntimePolicy] = None,
    faults: Optional[HarnessFaultSpec] = None,
    on_complete: Optional[Callable[[GroupKey, list], None]] = None,
    tracer=None,
    obs_dir=None,
) -> list:
    """Execute ``tasks`` (``(key, worker_args)`` pairs) under
    supervision; returns one entry per task, aligned by index — either
    the group's record list or a :class:`CellFailure`.

    ``on_complete(key, records)`` fires in the supervisor as each group
    finishes successfully (the checkpoint-journal hook).  ``tracer``
    receives the supervisor's decision events (dispatch / retry /
    timeout / pool teardown / quarantine / failure / completion);
    ``obs_dir`` makes the workers write their own attempt shards.
    """
    policy = policy or RuntimePolicy()
    if not tasks:
        return []

    def emit(kind: str, st: Optional[_Group] = None,
             attempt: Optional[int] = None, **fields) -> None:
        if tracer is not None:
            tracer.emit(
                kind,
                group=st.key if st is not None else None,
                attempt=attempt,
                **fields,
            )
    states = [_Group(i, key, args) for i, (key, args) in enumerate(tasks)]
    results: list = [None] * len(states)
    ready = deque(states)
    #: Groups involved in an unattributed pool break; re-run one at a
    #: time so the next break identifies its culprit.
    quarantine: deque[_Group] = deque()
    #: Backoff heap of (wake_time, tiebreak, group).
    sleeping: list[tuple[float, int, _Group]] = []
    seq = 0
    max_workers = max(1, min(jobs, len(states)))

    def new_pool() -> ProcessPoolExecutor:
        return ProcessPoolExecutor(
            max_workers=max_workers, initializer=initializer, initargs=initargs
        )

    def retry_or_fail(st: _Group, status: str, message: str,
                      retryable: bool) -> None:
        nonlocal seq
        if retryable and st.attempts < policy.max_attempts:
            delay = policy.backoff_s(st.key, st.attempts)
            emit("retry", st, attempt=st.attempts, status=status,
                 delay=round(delay, 6), error=message)
            seq += 1
            heapq.heappush(sleeping, (time.monotonic() + delay, seq, st))
            return
        failure = CellFailure(
            workload=st.key[0],
            procs=st.key[1],
            status=status,
            error=message,
            attempts=st.attempts,
            elapsed=round(time.monotonic() - (st.first_submit or 0.0), 3),
        )
        emit("cell_failure", st, attempt=st.attempts, status=status,
             error=message, elapsed=failure.elapsed)
        results[st.index] = failure

    pool = new_pool()
    inflight: dict = {}

    def submit(st: _Group) -> None:
        now = time.monotonic()
        if st.first_submit is None:
            st.first_submit = now
        st.deadline = None if policy.timeout is None else now + policy.timeout
        emit("dispatch", st, attempt=st.attempts + 1,
             timeout=policy.timeout)
        fut = pool.submit(
            _supervised_entry,
            (st.key, st.attempts + 1, faults, obs_dir, st.args),
        )
        inflight[fut] = st

    try:
        while ready or quarantine or sleeping or inflight:
            now = time.monotonic()
            while sleeping and sleeping[0][0] <= now:
                _, _, st = heapq.heappop(sleeping)
                ready.append(st)
            if not inflight and quarantine:
                submit(quarantine.popleft())
            elif not quarantine:
                while ready and len(inflight) < max_workers:
                    submit(ready.popleft())
            if not inflight:
                if sleeping:
                    time.sleep(
                        max(0.0, min(sleeping[0][0] - time.monotonic(),
                                     policy.poll_interval))
                    )
                continue

            done, _ = wait(
                inflight, timeout=policy.poll_interval,
                return_when=FIRST_COMPLETED,
            )
            broken: list[_Group] = []
            for fut in done:
                st = inflight.pop(fut)
                exc = fut.exception()
                if exc is None:
                    payload = fut.result()
                    st.attempts += 1
                    if isinstance(payload, WorkerError):
                        retry_or_fail(
                            st, "error",
                            f"{payload.kind}: {payload.message}",
                            payload.retryable,
                        )
                    else:
                        results[st.index] = payload
                        emit("group_done", st, attempt=st.attempts,
                             records=len(payload))
                        if on_complete is not None:
                            on_complete(st.key, payload)
                elif isinstance(exc, BrokenProcessPool):
                    broken.append(st)
                else:  # pragma: no cover - executor-internal failure
                    st.attempts += 1
                    retry_or_fail(
                        st, "error", f"{type(exc).__name__}: {exc}", True
                    )
            if broken:
                # Everything still in flight dies with the pool.  A
                # single involved group is the culprit and is charged;
                # with several, nobody can be blamed yet — quarantine
                # them uncharged and re-run one at a time so the next
                # break identifies its culprit.
                involved = broken + list(inflight.values())
                inflight.clear()
                emit("pool_broken", involved=len(involved))
                if len(involved) == 1:
                    st = involved[0]
                    st.attempts += 1
                    retry_or_fail(
                        st, "crashed", "worker process died unexpectedly",
                        True,
                    )
                else:
                    for st in involved:
                        emit("crash_quarantine", st, attempt=st.attempts + 1)
                    quarantine.extend(involved)
                pool.shutdown(wait=False, cancel_futures=True)
                pool = new_pool()
                continue

            now = time.monotonic()
            expired = [
                st for st in inflight.values()
                if st.deadline is not None and now >= st.deadline
            ]
            if expired:
                # Kill the pool (futures cannot be cancelled once
                # running); charge the culprits, requeue bystanders
                # for free, and resurrect.
                for st in expired:
                    st.attempts += 1
                    emit("timeout", st, attempt=st.attempts,
                         budget=policy.timeout)
                    retry_or_fail(
                        st, "timeout",
                        f"group exceeded {policy.timeout:g}s wall-clock",
                        True,
                    )
                bystanders = [
                    st for st in inflight.values() if st not in expired
                ]
                emit("pool_kill", expired=len(expired),
                     bystanders=len(bystanders))
                for st in bystanders:
                    emit("requeue", st, attempt=st.attempts + 1)
                ready.extendleft(reversed(bystanders))
                inflight.clear()
                _kill_pool(pool)
                pool = new_pool()
    finally:
        if inflight:  # pragma: no cover - defensive on early exit
            _kill_pool(pool)
        else:
            pool.shutdown(wait=True, cancel_futures=True)
    return results
