"""Shared infrastructure for regenerating the paper's tables and figures.

Conventions (section 5.1 of the paper):

* ``TOT`` — total memory needed by a schedule without any recycling; the
  memory constraints are percentages of TOT.  Cross-heuristic
  comparisons (Tables 4-7) use the *RCP schedule's* TOT as the common
  reference so that a "75%" cell is the same absolute capacity for both
  algorithms (that is what makes the paper's ``*`` entries — one
  algorithm executable, the other not — well defined).
* ``PT increase`` — relative parallel-time increase versus the baseline:
  the RCP schedule with 100% memory and **no** memory-management
  overhead.
* ``#MAPs`` — average number of memory allocation points per processor.
* Non-executable configurations (``MIN_MEM`` above the capacity) are
  reported as ``inf``, printed ``inf`` like the paper's tables.

The :class:`ExperimentContext` caches schedules, profiles and simulation
results so a sweep over memory fractions re-uses its scheduling work.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from ..core.liveness import MemoryProfile, analyze_memory
from ..core.schedule import Schedule
from ..machine.simulator import CompiledSchedule, SimResult, Simulator
from ..machine.spec import CRAY_T3D, MachineSpec
from ..rapid.inspector import order_with
from ..sparse.cholesky import build_cholesky
from ..sparse.lu import build_lu
from ..sparse.matrices import bcsstk15_like, bcsstk24_like, goodwin_like
from ..sparse.treegraph import build_etree_problem

#: Memory fractions of the paper's overhead tables.
FRACTIONS = (1.0, 0.75, 0.5, 0.4)
#: Extended fractions of the heuristic-comparison tables.
FRACTIONS_CMP = (0.75, 0.5, 0.4, 0.25)
#: Processor counts of the paper's tables.
PROCS = (2, 4, 8, 16, 32)

#: Workload keys built into :meth:`ExperimentContext.problem`.
BUILTIN_WORKLOADS = ("chol15", "chol24", "lu-goodwin", "etree15")

INF = float("inf")


@dataclass
class CellMetrics:
    """One (configuration, capacity) measurement.

    The telemetry fields (``map_overhead_frac``, ``max_hwm``,
    ``max_suspq``) are ``None`` unless the cell was measured with
    ``collect_metrics=True``; non-executable cells get ``inf`` like the
    timing fields.
    """

    executable: bool
    pt: float = INF
    pt_increase: float = INF
    avg_maps: float = INF
    capacity: int = 0
    min_mem: int = 0
    tot: int = 0
    map_overhead_frac: Optional[float] = None
    max_hwm: Optional[float] = None
    max_suspq: Optional[float] = None
    #: Invariant violations observed by the conformance checker; ``None``
    #: unless measured with ``collect_check=True`` (``inf`` when
    #: non-executable, matching the timing fields).
    violations: Optional[float] = None
    #: Error-severity findings of the static analyzer; ``None`` unless
    #: measured with ``collect_analysis=True``.  Unlike the dynamic
    #: fields, non-executable cells get a real count (at least the SA101
    #: finding) — the analyzer needs no simulation.
    analysis_errors: Optional[float] = None
    #: Engine introspection (``collect_engine=True``): which engine
    #: actually executed the cell and, for a requested-compiled cell
    #: that ran interpreted, the fallback reason.  Non-executable cells
    #: stay ``None`` — nothing ran.
    engine_used: Optional[str] = None
    fallback_reason: Optional[str] = None
    #: Certified static lower bounds (``collect_bounds=True``; see
    #: :mod:`repro.analysis.bounds`).  Static like ``analysis_errors``:
    #: even a non-executable cell gets real bound values — only the
    #: ``pt_bound_gap`` becomes ``inf`` there (no PT to compare).
    pt_bound: Optional[float] = None
    mem_bound: Optional[float] = None
    #: Relative slack of the cell over its bound, ``value/bound - 1``.
    pt_bound_gap: Optional[float] = None
    mem_bound_gap: Optional[float] = None

    @property
    def pt_increase_pct(self) -> float:
        return self.pt_increase * 100.0


class ExperimentContext:
    """Caches problems, schedules, profiles and baselines per workload."""

    def __init__(self, spec: MachineSpec = CRAY_T3D):
        self.spec = spec
        self._problems: dict[str, object] = {}
        self._registered: dict[str, object] = {}
        self._schedules: dict[tuple, Schedule] = {}
        self._profiles: dict[tuple, MemoryProfile] = {}
        self._compiled: dict[tuple, CompiledSchedule] = {}
        self._baseline_pt: dict[tuple, float] = {}
        self._sims: dict[tuple, tuple[SimResult, Optional[int]]] = {}
        self._analysis: dict[tuple, float] = {}
        self._bounds: dict[tuple, object] = {}

    # -- workloads -------------------------------------------------------

    def problem(self, key: str):
        """Named workload; built lazily.  Keys: ``chol15``, ``chol24``,
        ``lu-goodwin``, ``etree15`` and any registered via
        :meth:`register`."""
        if key not in self._problems:
            flop_time = 1.0 / self.spec.flop_rate
            if key == "chol15":
                self._problems[key] = build_cholesky(
                    bcsstk15_like(scale=0.15), block_size=12, flop_time=flop_time,
                    with_kernels=False,
                )
            elif key == "chol24":
                self._problems[key] = build_cholesky(
                    bcsstk24_like(scale=0.15), block_size=12, flop_time=flop_time,
                    with_kernels=False,
                )
            elif key == "lu-goodwin":
                self._problems[key] = build_lu(
                    goodwin_like(scale=0.07), block_size=12, flop_time=flop_time,
                    with_kernels=False,
                )
            elif key == "etree15":
                self._problems[key] = build_etree_problem(
                    bcsstk15_like(scale=0.15), flop_time=flop_time,
                )
            else:
                known = sorted(
                    set(BUILTIN_WORKLOADS) | set(self._registered)
                )
                raise KeyError(
                    f"unknown workload {key!r}; choose one of {known} "
                    "or register() a custom problem"
                )
        return self._problems[key]

    def register(self, key: str, problem) -> None:
        """Register a custom problem (must expose ``graph``,
        ``placement(p)`` and ``assignment(placement)``).  Registered
        problems must be picklable to take part in a parallel sweep
        (:func:`repro.experiments.sweep.full_sweep` with ``jobs > 1``)."""
        self._problems[key] = problem
        self._registered[key] = problem

    def shipped_problems(self, workloads) -> dict[str, object]:
        """The registered problems a parallel sweep over ``workloads``
        must ship to its workers.

        Only problems actually named in the grid are included — workers
        never pay to unpickle (or choke on) registrations the sweep does
        not use — and each shipped problem is pickled *here*, so an
        unpicklable one fails fast with a clear error instead of a deep
        ``ProcessPoolExecutor`` traceback mid-sweep.
        """
        import pickle

        wanted = set(workloads)
        out: dict[str, object] = {}
        for key, problem in self._registered.items():
            if key not in wanted:
                continue
            try:
                pickle.dumps(problem)
            except Exception as err:
                raise ValueError(
                    f"registered problem {key!r} is not picklable and cannot "
                    f"be shipped to sweep workers: {err!r}. Make the problem "
                    "picklable (module-level classes, no lambdas/closures) "
                    "or run the sweep with jobs=1."
                ) from err
            out[key] = problem
        return out

    # -- schedules ---------------------------------------------------------

    def schedule(self, key: str, p: int, heuristic: str, capacity: Optional[int] = None) -> Schedule:
        ck = (key, p, heuristic, capacity)
        if ck not in self._schedules:
            prob = self.problem(key)
            placement = prob.placement(p)
            assignment = prob.assignment(placement)
            self._schedules[ck] = order_with(
                heuristic,
                prob.graph,
                placement,
                assignment,
                comm=self.spec.comm_model(),
                capacity=capacity,
            )
        return self._schedules[ck]

    def profile(self, key: str, p: int, heuristic: str, capacity: Optional[int] = None) -> MemoryProfile:
        ck = (key, p, heuristic, capacity)
        if ck not in self._profiles:
            self._profiles[ck] = analyze_memory(self.schedule(key, p, heuristic, capacity))
        return self._profiles[ck]

    def compiled(self, key: str, p: int, heuristic: str, capacity: Optional[int] = None) -> CompiledSchedule:
        """Compiled (validated, preprocessed) form of a schedule.

        One compiled schedule serves every capacity of a sweep, so the
        validation / liveness / static-table work is paid once per
        (workload, procs, heuristic) instead of once per cell."""
        ck = (key, p, heuristic, capacity)
        if ck not in self._compiled:
            self._compiled[ck] = CompiledSchedule(
                self.schedule(key, p, heuristic, capacity),
                profile=self.profile(key, p, heuristic, capacity),
            )
        return self._compiled[ck]

    def reference_tot(self, key: str, p: int) -> int:
        """The RCP schedule's TOT — the 100% reference of section 5.1."""
        return self.profile(key, p, "rcp").tot

    def baseline_pt(self, key: str, p: int, engine: str = "interpreted") -> float:
        """Parallel time of the RCP schedule, 100% memory, no memory
        management (the comparison base of Tables 2/3).

        Cached per engine: the engines agree exactly (the differential
        suite asserts it), but keeping the cache keys separate means a
        mixed-engine session never hides a disagreement."""
        ck = (key, p, engine)
        if ck not in self._baseline_pt:
            res = Simulator(
                spec=self.spec,
                memory_managed=False,
                compiled=self.compiled(key, p, "rcp"),
                engine=engine,
            ).run()
            self._baseline_pt[ck] = res.parallel_time
        return self._baseline_pt[ck]

    # -- measurements -------------------------------------------------------

    def analysis_errors(
        self, key: str, p: int, heuristic: str, capacity: int,
        cap_arg: Optional[int] = None,
    ) -> float:
        """Error-severity findings of the static analyzer for one cell
        (cached; O(plan), no simulation)."""
        ak = (key, p, heuristic, cap_arg, capacity)
        if ak not in self._analysis:
            from ..analysis import analyze_schedule

            prof = self.profile(key, p, heuristic, cap_arg)
            # Share the compiled schedule's memoised plan (what the
            # simulator executes); non-executable cells have no plan
            # and are reported via SA101.
            plan = (
                self.compiled(key, p, heuristic, cap_arg).plan_for(capacity)
                if prof.executable_under(capacity) else None
            )
            report = analyze_schedule(
                self.schedule(key, p, heuristic, cap_arg),
                capacity=capacity,
                profile=prof,
                plan=plan,
            )
            self._analysis[ak] = float(len(report.errors))
        return self._analysis[ak]

    def bounds_for(
        self, key: str, p: int, heuristic: str,
        capacity: Optional[int] = None,
    ):
        """Certified PT/MIN_MEM lower bounds for one cell's schedule
        (cached; see :func:`repro.analysis.schedule_bounds`).

        The bounds depend only on the graph, placement and assignment —
        not on the per-processor orders — so every heuristic of one
        (workload, procs) pair shares the same
        :class:`~repro.analysis.BoundSet`; the cache key keeps the
        heuristic anyway because a capacity-merged schedule (DTS) can
        coarsen the graph itself.
        """
        bk = (key, p, heuristic, capacity)
        if bk not in self._bounds:
            from ..analysis import schedule_bounds

            self._bounds[bk] = schedule_bounds(
                self.schedule(key, p, heuristic, capacity),
                comm=self.spec.comm_model(),
            )
        return self._bounds[bk]

    def run_cell(
        self,
        key: str,
        p: int,
        heuristic: str,
        fraction: float,
        reference: str = "self",
        merge_capacity: bool = False,
        collect_metrics: bool = False,
        collect_check: bool = False,
        collect_analysis: bool = False,
        engine: str = "interpreted",
        collect_engine: bool = False,
        collect_bounds: bool = False,
    ) -> CellMetrics:
        """Measure one table cell.

        ``reference`` selects the TOT base for the capacity: ``"self"``
        (the schedule's own TOT, Tables 2/3) or ``"rcp"`` (the RCP
        schedule's TOT, Tables 4-7).  With ``merge_capacity=True`` the
        heuristic receives the capacity (DTS slice merging).  With
        ``collect_metrics=True`` the simulation runs instrumented
        (:mod:`repro.obs`) and the telemetry fields of
        :class:`CellMetrics` are populated; with ``collect_check=True``
        a :class:`~repro.conformance.InvariantChecker` rides along and
        fills the ``violations`` field; with ``collect_analysis=True``
        the static analyzer judges the cell's plan (no extra simulation)
        and fills ``analysis_errors``.  Results of the different modes
        are cached separately so mixing them never reuses the wrong run.

        ``engine`` selects the simulator engine (see
        :class:`~repro.machine.simulator.Simulator`); metric/check cells
        are observed runs and therefore fall back to the interpreted
        engine regardless of the requested value.

        ``collect_engine=True`` records which engine actually executed
        the cell (``engine_used``) and the fallback reason of a
        requested-compiled cell that ran interpreted
        (``fallback_reason``); it reads the cached
        :class:`~repro.machine.simulator.SimResult` and never changes
        what runs.

        ``collect_bounds=True`` fills the certified static lower
        bounds (``pt_bound``/``mem_bound``) and the cell's relative
        slack over them (``*_bound_gap``); purely static, cached per
        (workload, procs, heuristic) via :meth:`bounds_for`.
        """
        tot = (
            self.reference_tot(key, p)
            if reference == "rcp"
            else self.profile(key, p, heuristic).tot
        )
        capacity = int(math.floor(tot * fraction))
        cap_arg = capacity if merge_capacity else None
        prof = self.profile(key, p, heuristic, cap_arg)
        base = self.baseline_pt(key, p, engine)
        pt_bound = mem_bound = mem_bound_gap = None
        if collect_bounds:
            bset = self.bounds_for(key, p, heuristic, cap_arg)
            pt_bound = bset.pt.value
            mem_bound = bset.min_mem.value
            mem_bound_gap = (
                prof.min_mem / mem_bound - 1.0 if mem_bound > 0 else INF
            )
        if prof.min_mem > capacity:
            return CellMetrics(
                executable=False, capacity=capacity, min_mem=prof.min_mem, tot=tot,
                map_overhead_frac=INF if collect_metrics else None,
                max_hwm=INF if collect_metrics else None,
                max_suspq=INF if collect_metrics else None,
                violations=INF if collect_check else None,
                analysis_errors=(
                    self.analysis_errors(key, p, heuristic, capacity, cap_arg)
                    if collect_analysis else None
                ),
                pt_bound=pt_bound,
                mem_bound=mem_bound,
                pt_bound_gap=INF if collect_bounds else None,
                mem_bound_gap=mem_bound_gap,
            )
        sk = (
            key, p, heuristic, cap_arg, capacity, collect_metrics,
            collect_check, engine,
        )
        if sk not in self._sims:
            checker = None
            if collect_check:
                from ..conformance import InvariantChecker

                checker = InvariantChecker(self.compiled(key, p, heuristic, cap_arg))
            res = Simulator(
                spec=self.spec,
                capacity=capacity,
                compiled=self.compiled(key, p, heuristic, cap_arg),
                metrics=collect_metrics,
                instrument=checker,
                engine=engine,
            ).run()
            self._sims[sk] = (
                res,
                len(checker.violations) if checker is not None else None,
            )
        res, nviol = self._sims[sk]
        summary = res.metrics["summary"] if collect_metrics else None
        return CellMetrics(
            executable=True,
            pt=res.parallel_time,
            pt_increase=(res.parallel_time - base) / base,
            avg_maps=res.avg_maps,
            capacity=capacity,
            min_mem=prof.min_mem,
            tot=tot,
            map_overhead_frac=summary["map_overhead_frac"] if summary else None,
            max_hwm=float(summary["max_hwm"]) if summary else None,
            max_suspq=float(summary["max_suspq"]) if summary else None,
            violations=float(nviol) if nviol is not None else None,
            analysis_errors=(
                self.analysis_errors(key, p, heuristic, capacity, cap_arg)
                if collect_analysis else None
            ),
            engine_used=res.engine if collect_engine else None,
            fallback_reason=res.fallback_reason if collect_engine else None,
            pt_bound=pt_bound,
            mem_bound=mem_bound,
            pt_bound_gap=(
                (res.parallel_time / pt_bound - 1.0
                 if pt_bound and pt_bound > 0 else INF)
                if collect_bounds else None
            ),
            mem_bound_gap=mem_bound_gap,
        )

    def engine_counters(self) -> dict:
        """Aggregated engine introspection counters over every compiled
        schedule this context holds (see
        :data:`~repro.machine.simulator.ENGINE_COUNTER_KEYS`): MAP-plan /
        lowering / ExecPlan cache hits and misses, phase timers, run
        counts per engine and ``fallback:<reason>`` tallies."""
        totals: dict = {}
        for cs in self._compiled.values():
            for k, v in cs.counters.items():
                totals[k] = totals.get(k, 0) + v
        return totals


def compare_pt(a: CellMetrics, b: CellMetrics) -> float | str:
    """The paper's 'A vs. B' entry: ``PT_B / PT_A - 1``.

    ``"*"`` when B is executable but A is not; ``"-"`` when neither is.
    """
    if a.executable and b.executable:
        return b.pt / a.pt - 1.0
    if b.executable:
        return "*"
    if a.executable:
        return "!"  # A runs, B does not (no such entries in the paper)
    return "-"
