"""Table 8 — solving previously-unsolvable problems (section 5.3).

The paper fixes the per-node memory (64 MB on the T3D) and shows that
the active memory management scheme raises the largest solvable
BCSSTK33 truncation from n=5600 (3.88M nonzeros) to n=6080 (9.49M after
fill; +145% problem size), then reports absolute performance (PT,
average #MAPs, MFLOPS) of sparse LU on 16/32/64 processors.

The reproduction fixes a scaled per-processor capacity, finds the
largest truncation the *original* scheme (no recycling, capacity must
cover TOT) can run and the largest the *new* scheme (capacity must
cover MIN_MEM) can run, then reports the simulated performance of the
larger problem.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.liveness import analyze_memory
from ..machine.simulator import Simulator
from ..machine.spec import CRAY_T3D, MachineSpec
from ..rapid.inspector import order_with
from ..sparse.lu import build_lu
from ..sparse.matrices import bcsstk33_like, truncate
from .report import render_table


@dataclass
class Table8Row:
    procs: int
    parallel_time: float
    avg_maps: float
    mflops: float


@dataclass
class Table8:
    capacity: int
    n_original: int  # largest size solvable without memory management
    n_new: int  # largest size solvable with the new scheme
    nnz_original: int
    nnz_new: int
    rows: list[Table8Row]

    @property
    def size_increase_pct(self) -> float:
        if self.nnz_original <= 0:
            return float("inf")
        return 100.0 * (self.nnz_new - self.nnz_original) / self.nnz_original

    def render(self) -> str:
        head = (
            f"Table 8: sparse LU under a fixed capacity of {self.capacity} B/processor\n"
            f"  original scheme solves n={self.n_original} ({self.nnz_original} stored entries)\n"
            f"  new scheme      solves n={self.n_new} ({self.nnz_new} stored entries, "
            f"+{self.size_increase_pct:.0f}%)"
        )
        rows = [
            [str(r.procs), f"{r.parallel_time:.4f}", f"{r.avg_maps:.2f}", f"{r.mflops:.1f}"]
            for r in self.rows
        ]
        return head + "\n" + render_table(
            ["#proc", "PT(s)", "Ave. #MAPs", "MFLOPS"], rows
        )


def table8(
    spec: MachineSpec = CRAY_T3D,
    scale: float = 0.10,
    block_size: int = 12,
    procs=(16, 32, 64),
    base_procs: int = 16,
    capacity: int | None = None,
) -> Table8:
    """Regenerate Table 8 on the BCSSTK33 stand-in.

    ``capacity`` defaults to a value chosen so the gap between TOT-bound
    and MIN_MEM-bound sizes is visible: halfway between the full
    problem's TOT and MIN_MEM on ``base_procs`` processors.
    """
    a_full = bcsstk33_like(scale=scale)
    n_full = a_full.shape[0]
    flop_time = 1.0 / spec.flop_rate

    # Candidate truncations, largest first.
    sizes = sorted({int(n_full * f) for f in (1.0, 0.9, 0.8, 0.7, 0.6, 0.5)}, reverse=True)
    probs = {}

    def problem(n: int):
        if n not in probs:
            probs[n] = build_lu(
                truncate(a_full, n), block_size=block_size,
                flop_time=flop_time, with_kernels=False,
            )
        return probs[n]

    def schedule(n: int, p: int):
        prob = problem(n)
        pl = prob.placement(p)
        return order_with("rcp", prob.graph, pl, prob.assignment(pl), spec.comm_model())

    if capacity is None:
        prof = analyze_memory(schedule(n_full, base_procs))
        capacity = (prof.tot + prof.min_mem) // 2

    n_orig = n_new = 0
    nnz_orig = nnz_new = 0
    for n in sizes:
        prof = analyze_memory(schedule(n, base_procs))
        nnz = sum(problem(n).panel_nnz)
        if not n_new and prof.min_mem <= capacity:
            n_new, nnz_new = n, nnz
        if not n_orig and prof.tot <= capacity:
            n_orig, nnz_orig = n, nnz
        if n_orig:
            break

    rows = []
    big = problem(n_new)
    total_flops = big.graph.total_work() * spec.flop_rate
    for p in procs:
        sched = schedule(n_new, p)
        prof = analyze_memory(sched)
        if prof.min_mem > capacity:
            rows.append(Table8Row(p, float("inf"), float("inf"), 0.0))
            continue
        res = Simulator(sched, spec=spec, capacity=capacity, profile=prof).run()
        rows.append(
            Table8Row(
                procs=p,
                parallel_time=res.parallel_time,
                avg_maps=res.avg_maps,
                mflops=total_flops / res.parallel_time / 1e6,
            )
        )
    return Table8(
        capacity=capacity,
        n_original=n_orig,
        n_new=n_new,
        nnz_original=nnz_orig,
        nnz_new=nnz_new,
        rows=rows,
    )
