"""Regeneration of the paper's evaluation (Tables 1-8, Figure 7).

Typical use::

    from repro.experiments import ExperimentContext, tables, figure7, table8
    ctx = ExperimentContext()
    print(tables.table2(ctx).render())
    print(figure7.figure7(ctx, "cholesky").render())
    print(table8.table8().render())
"""

from .common import (
    CellMetrics,
    ExperimentContext,
    FRACTIONS,
    FRACTIONS_CMP,
    PROCS,
    compare_pt,
)
from . import checkpoint, figure7, report, runtime, sweep, table8, tables, validate
from .runtime import CellFailure, HarnessFaultSpec, RuntimePolicy
from .checkpoint import CheckpointJournal, grid_fingerprint
from .sweep import SweepRecord, from_csv, full_sweep, to_csv
from .validate import Claim, render_scorecard
from .validate import validate as run_validation
from .figure7 import figure7 as run_figure7
from .table8 import table8 as run_table8
from .tables import (
    gap_scorecard,
    table1,
    table2,
    table3,
    table4,
    table5,
    table6,
    table7,
)

__all__ = [
    "CellFailure",
    "CellMetrics",
    "CheckpointJournal",
    "ExperimentContext",
    "HarnessFaultSpec",
    "RuntimePolicy",
    "checkpoint",
    "grid_fingerprint",
    "runtime",
    "FRACTIONS",
    "FRACTIONS_CMP",
    "PROCS",
    "compare_pt",
    "figure7",
    "report",
    "Claim",
    "SweepRecord",
    "from_csv",
    "full_sweep",
    "gap_scorecard",
    "render_scorecard",
    "run_figure7",
    "run_table8",
    "run_validation",
    "sweep",
    "to_csv",
    "validate",
    "table1",
    "table2",
    "table3",
    "table4",
    "table5",
    "table6",
    "table7",
    "table8",
    "tables",
]
