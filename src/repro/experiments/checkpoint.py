"""Checkpoint journal for resumable sweeps.

A sweep's unit of progress is the (workload, processors) *group* — the
granule :func:`repro.experiments.sweep.full_sweep` fans out to worker
processes.  As each group completes, the supervisor appends its records
to a JSONL *shard* file and commits the group to an atomically-replaced
``MANIFEST.json``; a later run with ``resume=True`` replays the
committed groups from the shards and executes only the remainder.
Because the simulation is deterministic and records are serialised
losslessly (floats survive the JSON round trip bit-for-bit), a resumed
sweep's CSV is byte-identical to an uninterrupted run's.

The manifest is *content-keyed*: it stores a fingerprint of the grid
and every record-shaping option (workloads, procs, heuristics,
fractions, reference, metrics/check/analyze columns, engine, machine
spec).  A checkpoint written under a different grid is stale — resume
ignores it and starts fresh — so shards can never leak records into a
sweep they do not belong to.

Crash safety: shard files and the manifest are written to a
same-directory temporary file and :func:`os.replace`-d into place
(see :func:`atomic_write_text`, which the sweep CSV writer shares), and
a group enters the manifest only after its shard is fully on disk.  An
interruption at any point leaves either the previous manifest or the
new one — never a torn journal.
"""

from __future__ import annotations

import hashlib
import json
import math
import os
import pathlib
import re
import tempfile
from dataclasses import asdict
from typing import Optional, Sequence

from .sweep import SweepRecord

__all__ = [
    "CheckpointJournal",
    "atomic_write_text",
    "grid_fingerprint",
    "record_from_json",
    "record_to_json",
]

#: Manifest schema identifier; bump when the journal layout changes
#: (a mismatching schema is treated exactly like a stale fingerprint).
SCHEMA = "repro-checkpoint/1"

MANIFEST_NAME = "MANIFEST.json"


def atomic_write_text(path: str | os.PathLike, text: str) -> None:
    """Write ``text`` to ``path`` crash-safely.

    The content goes to a temporary file in the *same* directory (so the
    final rename never crosses filesystems) and is fsync-ed before an
    atomic :func:`os.replace` into place: readers see either the old
    file or the complete new one, never a truncated write.
    """
    path = pathlib.Path(path)
    fd, tmp = tempfile.mkstemp(
        dir=str(path.parent) or ".", prefix=path.name + ".", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "w", newline="") as fh:
            fh.write(text)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


def grid_fingerprint(
    spec,
    workloads: Sequence[str],
    procs: Sequence[int],
    heuristics: Sequence[str],
    fractions: Sequence[float],
    reference: str,
    metrics: bool,
    check: bool,
    analyze: bool,
    engine: str,
    engine_stats: bool = False,
    bounds: bool = False,
    harness_faults=None,
) -> str:
    """Content hash of everything that shapes a sweep's records.

    Two sweeps share a checkpoint iff their fingerprints match; ``jobs``
    and the runtime policy are deliberately excluded (they change how
    the grid is executed, never what a cell's record contains).
    ``engine_stats`` and ``bounds`` shape records (they fill opt-in
    columns), and ``harness_faults`` (a
    :class:`~repro.experiments.runtime.HarnessFaultSpec` or ``None``)
    shapes them too — an injected fault can turn a group into failure
    rows, which must never be replayed into a fault-free run (nor a
    fault-free journal into a faulted one).
    """
    doc = {
        "schema": SCHEMA,
        "spec": repr(spec),
        "workloads": list(workloads),
        "procs": [int(p) for p in procs],
        "heuristics": list(heuristics),
        "fractions": [float(f) for f in fractions],
        "reference": reference,
        "metrics": bool(metrics),
        "check": bool(check),
        "analyze": bool(analyze),
        "engine": engine,
        "engine_stats": bool(engine_stats),
        "bounds": bool(bounds),
        "harness_faults": (
            repr(harness_faults) if harness_faults is not None else None
        ),
    }
    blob = json.dumps(doc, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()


def record_to_json(rec: SweepRecord) -> dict:
    """Lossless JSON form of one record (``inf`` as the string ``"inf"``,
    matching the CSV convention; ``None`` stays ``null``)."""
    row = asdict(rec)
    for k, v in row.items():
        if isinstance(v, float) and math.isinf(v):
            row[k] = "inf"
    return row


def record_from_json(row: dict) -> SweepRecord:
    """Inverse of :func:`record_to_json`."""
    out = dict(row)
    for k, v in out.items():
        if v == "inf":
            out[k] = float("inf")
    return SweepRecord(**out)


def _shard_name(key: str, p: int) -> str:
    safe = re.sub(r"[^A-Za-z0-9._-]", "_", key)
    return f"{safe}_p{p}.jsonl"


class CheckpointJournal:
    """Append-only journal of completed sweep groups.

    ``start(resume=...)`` either adopts a matching manifest (resume) or
    writes a fresh empty one; ``record_group`` commits one completed
    group; ``completed()`` returns the groups the manifest vouches for.
    """

    def __init__(self, directory: str | os.PathLike, fingerprint: str):
        self.dir = pathlib.Path(directory)
        self.fingerprint = fingerprint
        #: True when ``start(resume=True)`` found a manifest for a
        #: different grid (stale shards were discarded).
        self.stale = False

    @property
    def manifest_path(self) -> pathlib.Path:
        return self.dir / MANIFEST_NAME

    def _load_manifest(self) -> Optional[dict]:
        try:
            doc = json.loads(self.manifest_path.read_text())
        except (OSError, ValueError):
            return None
        if not isinstance(doc, dict) or doc.get("schema") != SCHEMA:
            return None
        return doc

    def _write_manifest(self, groups: dict) -> None:
        doc = {
            "schema": SCHEMA,
            "fingerprint": self.fingerprint,
            "groups": groups,
        }
        atomic_write_text(
            self.manifest_path, json.dumps(doc, indent=2, sort_keys=True) + "\n"
        )

    def start(self, resume: bool = False) -> None:
        """Initialise the journal directory.

        With ``resume=False`` any previous manifest is replaced by an
        empty one (old shards become unreachable).  With ``resume=True``
        a manifest for the same fingerprint is kept; a stale one (other
        grid, other schema, unreadable) is replaced and ``self.stale``
        records that shards were discarded.
        """
        self.dir.mkdir(parents=True, exist_ok=True)
        current = self._load_manifest()
        if resume and current is not None:
            if current.get("fingerprint") == self.fingerprint:
                return
            self.stale = True
        self._write_manifest({})

    def record_group(self, key: str, p: int, records: Sequence[SweepRecord]) -> None:
        """Commit one completed group: shard first, then the manifest."""
        manifest = self._load_manifest()
        groups = dict(manifest.get("groups", {})) if manifest else {}
        shard = _shard_name(key, p)
        lines = "".join(
            json.dumps(record_to_json(r), sort_keys=True) + "\n" for r in records
        )
        atomic_write_text(self.dir / shard, lines)
        groups[f"{key}@{p}"] = {"shard": shard, "records": len(records)}
        self._write_manifest(groups)

    def completed(self) -> dict[tuple[str, int], list[SweepRecord]]:
        """Groups the manifest vouches for, as ``(workload, procs) ->
        records``.  Shards that are missing or shorter than the manifest
        promises are skipped (their groups simply re-run)."""
        manifest = self._load_manifest()
        if manifest is None or manifest.get("fingerprint") != self.fingerprint:
            return {}
        out: dict[tuple[str, int], list[SweepRecord]] = {}
        for gk, entry in manifest.get("groups", {}).items():
            key, _, p = gk.rpartition("@")
            try:
                text = (self.dir / entry["shard"]).read_text()
                records = [
                    record_from_json(json.loads(line))
                    for line in text.splitlines()
                    if line.strip()
                ]
            except (OSError, TypeError, ValueError):
                continue
            if len(records) != entry.get("records"):
                continue
            out[(key, int(p))] = records
        return out
