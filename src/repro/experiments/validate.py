"""Replication scorecard: machine-checkable claims from the paper.

``python -m repro validate`` runs every qualitative claim the
reproduction stands on — the exact worked-example numbers and the
directional trends of each table/figure — and prints a PASS/FAIL
checklist.  This is the one-command answer to "did the reproduction
hold up on this machine?".

The checks use reduced configurations (seconds, not minutes); the full
sweeps live in ``benchmarks/``.
"""

from __future__ import annotations

from dataclasses import dataclass

from .common import ExperimentContext
from .figure7 import figure7
from .tables import table1


@dataclass
class Claim:
    name: str
    source: str  # where in the paper
    passed: bool
    detail: str = ""


def _paper_example_claims() -> list[Claim]:
    from ..core import analyze_memory, dts_order, mem_req_of_task, plan_maps
    from ..core.dcg import build_dcg
    from ..graph.paper_example import (
        DCG_SLICE_ORDER,
        paper_assignment,
        paper_example_graph,
        paper_placement,
        schedule_b,
        schedule_c,
    )

    g = paper_example_graph()
    pl = paper_placement()
    asg = paper_assignment(g, pl)
    pb = analyze_memory(schedule_b(g))
    pc = analyze_memory(schedule_c(g))
    dts = analyze_memory(dts_order(g, pl, asg))
    dcg = build_dcg(g)
    slices = tuple(o[0] for o in dcg.comp_objects)
    plan = plan_maps(schedule_c(g), 8)
    extra = plan.points[1][-1]
    claims = [
        Claim("MIN_MEM of Fig 2(b) schedule = 9", "sec. 3.2",
              pb.min_mem == 9, f"got {pb.min_mem}"),
        Claim("MIN_MEM of Fig 2(c) schedule = 8", "sec. 3.2",
              pc.min_mem == 8, f"got {pc.min_mem}"),
        Claim("MEM_REQ(T[8,9], P0) = 7", "sec. 3.2",
              mem_req_of_task(pb, "T[8,9]") == 7, ""),
        Claim("MEM_REQ(T[7,8], P1) = 9", "sec. 3.2",
              mem_req_of_task(pb, "T[7,8]") == 9, ""),
        Claim("DTS schedule MIN_MEM = 7", "Fig. 5",
              dts.min_mem == 7, f"got {dts.min_mem}"),
        Claim("DCG slice order d1,d3,d4,d5,d7,d8,d2", "Fig. 5(a)",
              slices == DCG_SLICE_ORDER, f"got {slices}"),
        Claim("MAP after T[5,10] frees d3,d5 and allocates d7", "Fig. 3(a)",
              set(extra.frees) >= {"d3", "d5"} and "d7" in extra.allocs, ""),
    ]
    return claims


def _trend_claims(ctx: ExperimentContext) -> list[Claim]:
    claims: list[Claim] = []

    # Table 1: ratio grows with p.
    t1 = table1(ctx, procs=(2, 4, 8))
    claims.append(
        Claim(
            "Table 1: memory/(S1/p) ratio grows with p",
            "Table 1",
            t1.ratios[2] < t1.ratios[4] < t1.ratios[8],
            f"{t1.ratios[2]:.2f} < {t1.ratios[4]:.2f} < {t1.ratios[8]:.2f}",
        )
    )

    # Table 2: overhead grows with p at 100%; inf cells exist at low p.
    full = [ctx.run_cell("chol15", p, "rcp", 1.0) for p in (4, 16)]
    tight = ctx.run_cell("chol15", 2, "rcp", 0.5)
    claims.append(
        Claim("Table 2: management overhead grows with p", "Table 2",
              0 <= full[0].pt_increase <= full[1].pt_increase,
              f"{full[0].pt_increase_pct:.1f}% -> {full[1].pt_increase_pct:.1f}%"))
    claims.append(
        Claim("Table 2: non-executable cells at small p / memory", "Table 2",
              not tight.executable, ""))

    # Table 3: LU far less overhead-sensitive at 100%.
    lu16 = ctx.run_cell("lu-goodwin", 16, "rcp", 1.0)
    ch16 = ctx.run_cell("chol15", 16, "rcp", 1.0)
    claims.append(
        Claim("Table 3: LU overhead below Cholesky's at 100%", "sec. 5.1",
              lu16.pt_increase < ch16.pt_increase,
              f"{lu16.pt_increase_pct:.1f}% vs {ch16.pt_increase_pct:.1f}%"))

    # Table 4/5: MPO competitive in time, never more MAPs, >= executability.
    rcp = ctx.run_cell("chol15", 8, "rcp", 0.75, reference="rcp")
    mpo = ctx.run_cell("chol15", 8, "mpo", 0.75, reference="rcp")
    claims.append(
        Claim("Table 4: MPO within ±20% of RCP's time", "Table 4",
              rcp.executable and mpo.executable
              and abs(mpo.pt / rcp.pt - 1.0) < 0.2,
              f"ratio {mpo.pt / rcp.pt - 1.0:+.1%}" if rcp.executable and mpo.executable else ""))
    claims.append(
        Claim("Table 5: MPO needs no more MAPs than RCP", "Table 5",
              mpo.avg_maps <= rcp.avg_maps + 1e-9,
              f"{mpo.avg_maps:.2f} vs {rcp.avg_maps:.2f}"))
    m_rcp = ctx.profile("chol15", 8, "rcp").min_mem
    m_mpo = ctx.profile("chol15", 8, "mpo").min_mem
    claims.append(
        Claim("MPO's MIN_MEM <= RCP's", "Fig. 7",
              m_mpo <= m_rcp, f"{m_mpo} vs {m_rcp}"))

    # Table 6: DTS slower than MPO; LU gap bigger than Cholesky's.
    dts = ctx.run_cell("chol15", 8, "dts", 0.75, reference="rcp")
    claims.append(
        Claim("Table 6: plain DTS slower than MPO", "Table 6",
              dts.executable and mpo.executable and dts.pt > mpo.pt,
              f"+{(dts.pt / mpo.pt - 1):.1%}" if dts.executable and mpo.executable else ""))

    # Table 7: DTS with slice merging close to RCP.
    dtsm = ctx.run_cell("chol15", 8, "dts-merge", 0.75, reference="rcp",
                        merge_capacity=True)
    claims.append(
        Claim("Table 7: DTS+merge within ±20% of RCP", "Table 7",
              dtsm.executable and abs(dtsm.pt / rcp.pt - 1.0) < 0.2,
              f"{dtsm.pt / rcp.pt - 1.0:+.1%}" if dtsm.executable else ""))

    # Figure 7: scalability ordering, RCP flat for LU.
    f7 = figure7(ctx, "lu", procs=(8,))
    claims.append(
        Claim("Figure 7(b): RCP not memory-scalable for LU", "Fig. 7",
              f7.series["RCP"][0] < 0.5 * 8
              and f7.series["MPO"][0] > f7.series["RCP"][0],
              f"RCP {f7.series['RCP'][0]:.2f}, MPO {f7.series['MPO'][0]:.2f} (perfect 8)"))

    # Theorem 2 on both applications.
    from ..core import analyze_memory, dts_order
    from ..core.dts import dts_space_bound

    for key in ("chol15", "lu-goodwin"):
        prob = ctx.problem(key)
        pl = prob.placement(8)
        asg = prob.assignment(pl)
        bound = dts_space_bound(prob.graph, pl, asg)
        mm = analyze_memory(dts_order(prob.graph, pl, asg, ctx.spec.comm_model())).min_mem
        claims.append(
            Claim(f"Theorem 2 bound holds ({key})", "Thm. 2",
                  mm <= bound, f"{mm} <= {bound}"))

    # Exact baseline: the B&B proves the paper's DTS value (7) is the
    # memory optimum of the worked example, and the tree-specialised
    # heuristic is no worse than MPO on the elimination-tree workload.
    from ..core import mpo_order, tree_order
    from ..graph.paper_example import (
        paper_assignment,
        paper_example_graph,
        paper_placement,
    )
    from ..opt.exact import solve

    g = paper_example_graph()
    pl = paper_placement()
    res = solve(g, pl, paper_assignment(g, pl), objective="memory")
    claims.append(
        Claim("Exact solver proves MIN_MEM* = 7 on Fig. 2", "Fig. 5",
              res.proved and res.value == 7,
              f"{res.status} value={res.value} ({res.nodes} nodes)"))
    prob = ctx.problem("etree15")
    pl = prob.placement(4)
    asg = prob.assignment(pl)
    comm = ctx.spec.comm_model()
    tr = analyze_memory(tree_order(prob.graph, pl, asg, comm)).min_mem
    mp = analyze_memory(mpo_order(prob.graph, pl, asg, comm)).min_mem
    claims.append(
        Claim("Tree heuristic peak <= MPO's on etree15", "sec. 4",
              tr <= mp, f"{tr} <= {mp}"))
    return claims


def validate(ctx: ExperimentContext | None = None) -> list[Claim]:
    """Run the whole scorecard; returns the claims with outcomes."""
    ctx = ctx or ExperimentContext()
    return _paper_example_claims() + _trend_claims(ctx)


def render_scorecard(claims: list[Claim]) -> str:
    width = max(len(c.name) for c in claims)
    lines = ["Replication scorecard", "=" * (width + 26)]
    for c in claims:
        mark = "PASS" if c.passed else "FAIL"
        detail = f"  ({c.detail})" if c.detail else ""
        lines.append(f"[{mark}] {c.name.ljust(width)}  {c.source}{detail}")
    n_ok = sum(c.passed for c in claims)
    lines.append(f"{n_ok}/{len(claims)} claims reproduced")
    return "\n".join(lines)
