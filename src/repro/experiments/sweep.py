"""Generic parameter sweeps with CSV export.

The table modules regenerate the paper's exact layouts; downstream users
usually want the raw grid instead.  :func:`full_sweep` runs every
(workload × processors × heuristic × memory fraction) combination
through the cached :class:`~repro.experiments.common.ExperimentContext`
and returns flat records; :func:`to_csv` serialises them (stdlib only).

Grid cells are independent, so :func:`full_sweep` can fan the grid out
over worker processes (``jobs > 1``).  Work is grouped by
(workload, processors): every cell of a group shares the group's
schedules, compiled simulator tables and RCP baseline, so that shared
work is computed once per group rather than once per cell.  Results are
returned in the same deterministic order as the serial sweep — the
simulation itself is deterministic, so ``jobs=N`` produces records (and
CSV bytes) identical to ``jobs=1``.

For long runs the grid can execute under the fault-tolerant supervisor
(:mod:`repro.experiments.runtime`): per-group timeouts, bounded retries,
worker-pool resurrection, structured failure records instead of an
aborted sweep, and a checkpoint journal
(:mod:`repro.experiments.checkpoint`) that makes interrupted sweeps
resumable — see the ``runtime``/``checkpoint``/``resume`` parameters of
:func:`full_sweep` and ``docs/resilience.md``.
"""

from __future__ import annotations

import csv
import io
import math
import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import asdict, dataclass
from typing import Iterable, Optional, Sequence

from .common import ExperimentContext

FIELDS = (
    "workload",
    "procs",
    "heuristic",
    "fraction",
    "executable",
    "capacity",
    "min_mem",
    "tot",
    "parallel_time",
    "pt_increase",
    "avg_maps",
)

#: Telemetry columns appended (in this order) when the sweep ran with
#: ``metrics=True``.  They are omitted entirely otherwise, so a plain
#: sweep's CSV is byte-identical to pre-telemetry output.
METRIC_FIELDS = (
    "map_overhead_frac",
    "max_hwm",
    "max_suspq",
)

#: Conformance column appended when the sweep ran with ``check=True``
#: (opt-in, like the telemetry columns — a plain sweep's CSV is
#: unchanged).
CHECK_FIELDS = ("violations",)

#: Static-analysis column appended when the sweep ran with
#: ``analyze=True`` (opt-in, same contract).
ANALYZE_FIELDS = ("analysis_errors",)

#: Certified-bound columns appended when the sweep ran with
#: ``bounds=True`` (opt-in, same contract): the static lower bounds of
#: :mod:`repro.analysis.bounds` and each cell's relative slack over
#: them.
BOUNDS_FIELDS = ("pt_bound", "mem_bound", "pt_bound_gap", "mem_bound_gap")

#: Engine introspection columns appended when the sweep ran with
#: ``engine_stats=True`` (opt-in, same contract): which engine actually
#: executed each cell and why a requested-compiled cell fell back.
ENGINE_FIELDS = ("engine_used", "fallback_reason")

#: Failure columns appended when a *supervised* sweep recorded at least
#: one :class:`~repro.experiments.runtime.CellFailure` (opt-in, same
#: contract — a fault-free supervised sweep's CSV is byte-identical to
#: a plain one's).
FAILURE_FIELDS = ("status", "error", "attempts", "elapsed")


@dataclass(frozen=True)
class SweepRecord:
    workload: str
    procs: int
    heuristic: str
    fraction: float
    executable: bool
    capacity: int
    min_mem: int
    tot: int
    parallel_time: float
    pt_increase: float
    avg_maps: float
    #: populated only by ``full_sweep(..., metrics=True)``
    map_overhead_frac: Optional[float] = None
    max_hwm: Optional[float] = None
    max_suspq: Optional[float] = None
    #: populated only by ``full_sweep(..., check=True)``
    violations: Optional[float] = None
    #: populated only by ``full_sweep(..., analyze=True)``
    analysis_errors: Optional[float] = None
    #: populated only by ``full_sweep(..., bounds=True)``: certified
    #: static lower bounds and the cell's relative slack over them
    pt_bound: Optional[float] = None
    mem_bound: Optional[float] = None
    pt_bound_gap: Optional[float] = None
    mem_bound_gap: Optional[float] = None
    #: populated only by ``full_sweep(..., engine_stats=True)``:
    #: the engine that executed the cell and the fallback reason of a
    #: requested-compiled cell that ran interpreted (empty otherwise)
    engine_used: Optional[str] = None
    fallback_reason: Optional[str] = None
    #: failure columns, populated only on cells of a group that a
    #: supervised sweep recorded as failed (``"timeout"``/``"crashed"``/
    #: ``"error"``; see :mod:`repro.experiments.runtime`)
    status: Optional[str] = None
    error: Optional[str] = None
    attempts: Optional[int] = None
    elapsed: Optional[float] = None


def _run_group(
    ctx: ExperimentContext,
    key: str,
    p: int,
    heuristics: Sequence[str],
    fractions: Sequence[float],
    reference: str,
    metrics: bool = False,
    check: bool = False,
    analyze: bool = False,
    engine: str = "interpreted",
    engine_stats: bool = False,
    bounds: bool = False,
) -> list[SweepRecord]:
    """All records of one (workload, procs) group, in grid order."""
    out: list[SweepRecord] = []
    for h in heuristics:
        for f in fractions:
            cell = ctx.run_cell(
                key, p, h, f, reference=reference, collect_metrics=metrics,
                collect_check=check, collect_analysis=analyze, engine=engine,
                collect_engine=engine_stats, collect_bounds=bounds,
            )
            out.append(
                SweepRecord(
                    workload=key,
                    procs=p,
                    heuristic=h,
                    fraction=f,
                    executable=cell.executable,
                    capacity=cell.capacity,
                    min_mem=cell.min_mem,
                    tot=cell.tot,
                    parallel_time=cell.pt,
                    pt_increase=cell.pt_increase,
                    avg_maps=cell.avg_maps,
                    map_overhead_frac=cell.map_overhead_frac,
                    max_hwm=cell.max_hwm,
                    max_suspq=cell.max_suspq,
                    violations=cell.violations,
                    analysis_errors=cell.analysis_errors,
                    pt_bound=cell.pt_bound,
                    mem_bound=cell.mem_bound,
                    pt_bound_gap=cell.pt_bound_gap,
                    mem_bound_gap=cell.mem_bound_gap,
                    engine_used=cell.engine_used,
                    fallback_reason=cell.fallback_reason,
                )
            )
    return out


#: Per-worker-process context; built once by :func:`_worker_init` so
#: schedules and baselines are shared across the groups a worker runs.
_WORKER_CTX: Optional[ExperimentContext] = None


def _worker_init(spec, registered) -> None:
    """Build the per-worker context.  ``registered`` holds only the
    custom problems the grid actually names (see
    :meth:`~repro.experiments.common.ExperimentContext.shipped_problems`),
    so workers never re-register workloads the sweep will not run."""
    global _WORKER_CTX
    _WORKER_CTX = ExperimentContext(spec=spec)
    for key, problem in registered.items():
        _WORKER_CTX.register(key, problem)


def _worker_run_group(args) -> list[SweepRecord]:
    (key, p, heuristics, fractions, reference, metrics, check, analyze,
     engine, engine_stats, bounds) = args
    assert _WORKER_CTX is not None
    return _run_group(
        _WORKER_CTX, key, p, heuristics, fractions, reference, metrics, check,
        analyze, engine, engine_stats, bounds,
    )


def _worker_engine_counters() -> dict:
    """Aggregated engine introspection counters of this worker's
    context (empty before :func:`_worker_init` ran); the supervised
    entry point emits per-attempt deltas into the runtime trace."""
    return _WORKER_CTX.engine_counters() if _WORKER_CTX is not None else {}


def _failure_records(
    failure,
    heuristics: Sequence[str],
    fractions: Sequence[float],
) -> list[SweepRecord]:
    """Expand one :class:`~repro.experiments.runtime.CellFailure` into
    per-cell records carrying the failure columns (timing fields are
    ``inf``, like non-executable cells)."""
    inf = float("inf")
    message = " ".join(failure.error.split())
    return [
        SweepRecord(
            workload=failure.workload,
            procs=failure.procs,
            heuristic=h,
            fraction=f,
            executable=False,
            capacity=0,
            min_mem=0,
            tot=0,
            parallel_time=inf,
            pt_increase=inf,
            avg_maps=inf,
            status=failure.status,
            error=message,
            attempts=failure.attempts,
            elapsed=failure.elapsed,
        )
        for h in heuristics
        for f in fractions
    ]


def full_sweep(
    ctx: ExperimentContext,
    workloads: Sequence[str] = ("chol15", "lu-goodwin"),
    procs: Sequence[int] = (2, 4, 8, 16, 32),
    heuristics: Sequence[str] = ("rcp", "mpo", "dts"),
    fractions: Sequence[float] = (1.0, 0.75, 0.5, 0.4, 0.25),
    reference: str = "rcp",
    jobs: Optional[int] = 1,
    metrics: bool = False,
    check: bool = False,
    analyze: bool = False,
    engine: str = "interpreted",
    engine_stats: bool = False,
    bounds: bool = False,
    runtime=None,
    checkpoint: Optional[str] = None,
    resume: bool = False,
    harness_faults=None,
    obs_dir: Optional[str] = None,
    progress: bool = False,
) -> list[SweepRecord]:
    """Run the full grid; non-executable cells get ``inf`` metrics.

    ``jobs`` selects the number of worker processes (``None``/``0`` =
    one per CPU).  Parallel runs return exactly the records of the
    serial run, in the same order; the workers rebuild their own
    :class:`~repro.experiments.common.ExperimentContext` from
    ``ctx.spec``, so custom problems registered on ``ctx`` must be
    picklable to sweep with ``jobs > 1``.

    ``metrics=True`` runs every cell instrumented and fills the
    telemetry fields of each record (``map_overhead_frac``, ``max_hwm``,
    ``max_suspq``); the timing fields are unaffected because the
    simulation is deterministic and instrumentation never changes event
    order.

    ``check=True`` attaches a
    :class:`~repro.conformance.InvariantChecker` to every cell's
    simulation and fills the ``violations`` column (0 everywhere when
    Theorem 1 holds; non-executable cells get ``inf``).

    ``analyze=True`` statically analyzes every cell's plan
    (:func:`repro.analysis.analyze_schedule` — no extra simulation) and
    fills the ``analysis_errors`` column with the count of
    error-severity findings; planner output is clean by construction,
    and non-executable cells count their ``SA101``.

    ``engine`` selects the simulator engine for every cell (see
    :class:`~repro.machine.simulator.Simulator`).  The engines agree
    exactly on all record fields — ``engine="compiled"`` produces CSV
    byte-identical to the interpreted sweep, only faster; cells that
    must run observed (``metrics``/``check``) fall back to the
    interpreted engine per the fallback contract.

    Passing any of ``runtime`` (a
    :class:`~repro.experiments.runtime.RuntimePolicy`), ``checkpoint``
    (a journal directory), ``resume`` or ``harness_faults`` (a
    :class:`~repro.experiments.runtime.HarnessFaultSpec`) runs the grid
    under the *supervised* executor (:mod:`repro.experiments.runtime`):
    per-group wall-clock timeouts, bounded retries with deterministic
    backoff, worker-pool resurrection, streaming checkpoints, and
    structured failure records (the ``status``/``error``/``attempts``/
    ``elapsed`` columns) instead of an aborted sweep.  A fault-free
    supervised sweep returns exactly the plain sweep's records;
    ``resume=True`` replays groups already committed to the
    ``checkpoint`` journal and executes only the remainder, so a resumed
    run's CSV is byte-identical to an uninterrupted one.

    ``engine_stats=True`` fills the opt-in :data:`ENGINE_FIELDS`
    columns (which engine executed each cell and the fallback reason of
    a requested-compiled cell that ran interpreted).

    ``bounds=True`` fills the opt-in :data:`BOUNDS_FIELDS` columns with
    the certified static lower bounds of :mod:`repro.analysis.bounds`
    (``pt_bound``/``mem_bound``) and each cell's relative slack over
    them (``value/bound - 1``; ``pt_bound_gap`` is ``inf`` on
    non-executable cells).  Purely static — no extra simulation — and
    cached per (workload, procs, heuristic), so the fraction axis
    reuses one computation.

    ``obs_dir`` (a directory path) makes the run *observed*: the
    supervisor and every worker append runtime-trace shards there
    (schema ``repro-runtime-trace/1``; see :mod:`repro.obs.runtime`),
    and ``progress=True`` drives a live stderr ticker from the same
    event stream.  Either implies the supervised executor; both default
    off, leaving the plain path untouched.
    """
    from ..rapid.inspector import HEURISTICS

    unknown = [h for h in heuristics if h not in HEURISTICS]
    if unknown:
        raise ValueError(
            f"unknown heuristic(s) {unknown}; choose from {list(HEURISTICS)}"
        )
    if not jobs or jobs < 0:
        jobs = os.cpu_count() or 1
    supervised = (
        runtime is not None or checkpoint is not None or resume
        or harness_faults is not None or obs_dir is not None or progress
    )
    if resume and checkpoint is None:
        raise ValueError("resume=True requires a checkpoint directory")
    groups = [(key, p) for key in workloads for p in procs]
    if not supervised and (jobs == 1 or len(groups) <= 1):
        out: list[SweepRecord] = []
        for key, p in groups:
            out.extend(
                _run_group(
                    ctx, key, p, heuristics, fractions, reference, metrics,
                    check, analyze, engine, engine_stats, bounds,
                )
            )
        return out
    tasks = [
        (key, p, tuple(heuristics), tuple(fractions), reference, metrics,
         check, analyze, engine, engine_stats, bounds)
        for key, p in groups
    ]
    registered = ctx.shipped_problems(workloads)
    if not supervised:
        with ProcessPoolExecutor(
            max_workers=min(jobs, len(groups)),
            initializer=_worker_init,
            initargs=(ctx.spec, registered),
        ) as pool:
            chunks = list(pool.map(_worker_run_group, tasks))
        return [rec for chunk in chunks for rec in chunk]

    from .runtime import CellFailure, run_supervised

    tracer = None
    t_begin = None
    if obs_dir is not None or progress:
        from time import monotonic

        from ..obs.runtime import MultiSink, RuntimeTracer, SweepProgress

        t_begin = monotonic()
        sinks: list = []
        if obs_dir is not None:
            sinks.append(RuntimeTracer(obs_dir, role="supervisor"))
        if progress:
            sinks.append(SweepProgress(total=len(groups)))
        tracer = sinks[0] if len(sinks) == 1 else MultiSink(sinks)

    journal = None
    done: dict[tuple[str, int], list[SweepRecord]] = {}
    if checkpoint is not None:
        from .checkpoint import CheckpointJournal, grid_fingerprint

        journal = CheckpointJournal(
            checkpoint,
            grid_fingerprint(
                ctx.spec, workloads, procs, heuristics, fractions, reference,
                metrics, check, analyze, engine,
                engine_stats=engine_stats, bounds=bounds,
                harness_faults=harness_faults,
            ),
        )
        journal.start(resume=resume)
        if resume:
            done = journal.completed()
    todo = [
        ((key, p), task)
        for (key, p), task in zip(groups, tasks)
        if (key, p) not in done
    ]

    def on_group(key, records) -> None:
        if journal is not None:
            journal.record_group(key[0], key[1], records)
            if tracer is not None:
                tracer.emit("checkpoint_shard", group=key,
                            records=len(records))

    try:
        if tracer is not None:
            tracer.emit("sweep_begin", groups=len(groups), todo=len(todo),
                        resumed=len(done), jobs=jobs)
            for key in done:
                tracer.emit("resume_hit", group=key,
                            records=len(done[key]))
        outcomes = run_supervised(
            todo,
            jobs=jobs,
            initializer=_worker_init,
            initargs=(ctx.spec, registered),
            policy=runtime,
            faults=harness_faults,
            on_complete=on_group if journal is not None else None,
            tracer=tracer,
            obs_dir=obs_dir,
        )
        fresh = {key: outcome for (key, _), outcome in zip(todo, outcomes)}
        out = []
        for key, p in groups:
            result = done.get((key, p))
            if result is None:
                result = fresh[(key, p)]
            if isinstance(result, CellFailure):
                out.extend(_failure_records(result, heuristics, fractions))
            else:
                out.extend(result)
        if tracer is not None:
            from time import monotonic

            from ..obs.runtime import status_counts

            tracer.emit("sweep_end", counts=status_counts(out),
                        elapsed=round(monotonic() - t_begin, 3))
        return out
    finally:
        if tracer is not None:
            tracer.close()


def to_csv(records: Iterable[SweepRecord], path: Optional[str] = None) -> str:
    """Serialise sweep records as CSV; optionally write to ``path``.

    The telemetry columns of :data:`METRIC_FIELDS` appear only when some
    record carries them (i.e. the sweep ran with ``metrics=True``), the
    ``violations`` column only when the sweep ran with ``check=True``,
    the :data:`BOUNDS_FIELDS` only with ``bounds=True``, the
    :data:`ENGINE_FIELDS` only with ``engine_stats=True``, and the
    :data:`FAILURE_FIELDS` only when a supervised sweep recorded a
    failure; without them the output is byte-identical to a plain
    sweep's CSV.

    Writing is crash-safe: the text goes to a same-directory temporary
    file and is atomically renamed into place, so an interrupted sweep
    never leaves a truncated CSV behind.
    """
    records = list(records)
    with_metrics = any(r.map_overhead_frac is not None for r in records)
    fields = FIELDS + METRIC_FIELDS if with_metrics else FIELDS
    if any(r.violations is not None for r in records):
        fields = fields + CHECK_FIELDS
    if any(r.analysis_errors is not None for r in records):
        fields = fields + ANALYZE_FIELDS
    if any(r.pt_bound is not None for r in records):
        fields = fields + BOUNDS_FIELDS
    if any(r.engine_used is not None for r in records):
        fields = fields + ENGINE_FIELDS
    if any(r.status is not None for r in records):
        fields = fields + FAILURE_FIELDS
    buf = io.StringIO()
    writer = csv.DictWriter(buf, fieldnames=fields, extrasaction="ignore")
    writer.writeheader()
    for r in records:
        row = asdict(r)
        for k, v in row.items():
            if isinstance(v, float) and math.isinf(v):
                row[k] = "inf"
            elif v is None:
                row[k] = ""
        writer.writerow(row)
    text = buf.getvalue()
    if path:
        from .checkpoint import atomic_write_text

        atomic_write_text(path, text)
    return text


def from_csv(text: str) -> list[SweepRecord]:
    """Parse CSV produced by :func:`to_csv` (round-trip support),
    with or without the telemetry columns."""
    out: list[SweepRecord] = []
    for row in csv.DictReader(io.StringIO(text)):
        def f(x: str) -> float:
            return float("inf") if x == "inf" else float(x)

        def opt(name: str) -> Optional[float]:
            x = row.get(name)
            return f(x) if x not in (None, "") else None

        def opt_str(name: str) -> Optional[str]:
            x = row.get(name)
            return x if x not in (None, "") else None

        attempts = row.get("attempts")
        out.append(
            SweepRecord(
                workload=row["workload"],
                procs=int(row["procs"]),
                heuristic=row["heuristic"],
                fraction=float(row["fraction"]),
                executable=row["executable"] == "True",
                capacity=int(row["capacity"]),
                min_mem=int(row["min_mem"]),
                tot=int(row["tot"]),
                parallel_time=f(row["parallel_time"]),
                pt_increase=f(row["pt_increase"]),
                avg_maps=f(row["avg_maps"]),
                map_overhead_frac=opt("map_overhead_frac"),
                max_hwm=opt("max_hwm"),
                max_suspq=opt("max_suspq"),
                violations=opt("violations"),
                analysis_errors=opt("analysis_errors"),
                pt_bound=opt("pt_bound"),
                mem_bound=opt("mem_bound"),
                pt_bound_gap=opt("pt_bound_gap"),
                mem_bound_gap=opt("mem_bound_gap"),
                engine_used=opt_str("engine_used"),
                fallback_reason=opt_str("fallback_reason"),
                status=opt_str("status"),
                error=opt_str("error"),
                attempts=int(attempts) if attempts not in (None, "") else None,
                elapsed=opt("elapsed"),
            )
        )
    return out
