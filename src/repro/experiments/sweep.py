"""Generic parameter sweeps with CSV export.

The table modules regenerate the paper's exact layouts; downstream users
usually want the raw grid instead.  :func:`full_sweep` runs every
(workload × processors × heuristic × memory fraction) combination
through the cached :class:`~repro.experiments.common.ExperimentContext`
and returns flat records; :func:`to_csv` serialises them (stdlib only).
"""

from __future__ import annotations

import csv
import io
import math
from dataclasses import asdict, dataclass
from typing import Iterable, Optional, Sequence

from .common import ExperimentContext

FIELDS = (
    "workload",
    "procs",
    "heuristic",
    "fraction",
    "executable",
    "capacity",
    "min_mem",
    "tot",
    "parallel_time",
    "pt_increase",
    "avg_maps",
)


@dataclass(frozen=True)
class SweepRecord:
    workload: str
    procs: int
    heuristic: str
    fraction: float
    executable: bool
    capacity: int
    min_mem: int
    tot: int
    parallel_time: float
    pt_increase: float
    avg_maps: float


def full_sweep(
    ctx: ExperimentContext,
    workloads: Sequence[str] = ("chol15", "lu-goodwin"),
    procs: Sequence[int] = (2, 4, 8, 16, 32),
    heuristics: Sequence[str] = ("rcp", "mpo", "dts"),
    fractions: Sequence[float] = (1.0, 0.75, 0.5, 0.4, 0.25),
    reference: str = "rcp",
) -> list[SweepRecord]:
    """Run the full grid; non-executable cells get ``inf`` metrics."""
    out: list[SweepRecord] = []
    for key in workloads:
        for p in procs:
            for h in heuristics:
                for f in fractions:
                    cell = ctx.run_cell(key, p, h, f, reference=reference)
                    out.append(
                        SweepRecord(
                            workload=key,
                            procs=p,
                            heuristic=h,
                            fraction=f,
                            executable=cell.executable,
                            capacity=cell.capacity,
                            min_mem=cell.min_mem,
                            tot=cell.tot,
                            parallel_time=cell.pt,
                            pt_increase=cell.pt_increase,
                            avg_maps=cell.avg_maps,
                        )
                    )
    return out


def to_csv(records: Iterable[SweepRecord], path: Optional[str] = None) -> str:
    """Serialise sweep records as CSV; optionally write to ``path``."""
    buf = io.StringIO()
    writer = csv.DictWriter(buf, fieldnames=FIELDS)
    writer.writeheader()
    for r in records:
        row = asdict(r)
        for k, v in row.items():
            if isinstance(v, float) and math.isinf(v):
                row[k] = "inf"
        writer.writerow(row)
    text = buf.getvalue()
    if path:
        with open(path, "w", newline="") as fh:
            fh.write(text)
    return text


def from_csv(text: str) -> list[SweepRecord]:
    """Parse CSV produced by :func:`to_csv` (round-trip support)."""
    out: list[SweepRecord] = []
    for row in csv.DictReader(io.StringIO(text)):
        def f(x: str) -> float:
            return float("inf") if x == "inf" else float(x)

        out.append(
            SweepRecord(
                workload=row["workload"],
                procs=int(row["procs"]),
                heuristic=row["heuristic"],
                fraction=float(row["fraction"]),
                executable=row["executable"] == "True",
                capacity=int(row["capacity"]),
                min_mem=int(row["min_mem"]),
                tot=int(row["tot"]),
                parallel_time=f(row["parallel_time"]),
                pt_increase=f(row["pt_increase"]),
                avg_maps=f(row["avg_maps"]),
            )
        )
    return out
