"""Regeneration of Tables 1-7 of the paper's evaluation.

Each ``tableN`` function returns a structured result object with the raw
numbers plus a ``render()`` method producing the paper-style ASCII
table.  Workloads are the synthetic Harwell-Boeing stand-ins (see
EXPERIMENTS.md for the size mapping); the comparisons follow the
conventions of :mod:`repro.experiments.common`.
"""

from __future__ import annotations

from dataclasses import dataclass

from .common import (
    FRACTIONS,
    FRACTIONS_CMP,
    INF,
    ExperimentContext,
    compare_pt,
)
from .report import fmt_maps, fmt_pct, fmt_ratio, render_table

CHOL_KEYS = ("chol15", "chol24")
LU_KEY = "lu-goodwin"
TABLE_PROCS = (2, 4, 8, 16, 32)


# ----------------------------------------------------------------------
# Table 1 — memory usage ratio of the original RAPID (no recycling)
# ----------------------------------------------------------------------


@dataclass
class Table1:
    """Average per-processor memory over ``S1/p``, sparse Cholesky."""

    procs: tuple[int, ...]
    ratios: dict[int, float]

    def render(self) -> str:
        return render_table(
            ["#processor"] + [str(p) for p in self.procs],
            [["ratio"] + [fmt_ratio(self.ratios[p]) for p in self.procs]],
            title="Table 1: per-processor memory usage over S1/p (Cholesky, RCP, no recycling)",
        )


def table1(ctx: ExperimentContext, procs=(2, 4, 8, 16)) -> Table1:
    ratios: dict[int, float] = {}
    for p in procs:
        vals = [
            ctx.profile(k, p, "rcp").usage_ratio_vs_ideal(recycling=False)
            for k in CHOL_KEYS
        ]
        ratios[p] = sum(vals) / len(vals)
    return Table1(procs=tuple(procs), ratios=ratios)


# ----------------------------------------------------------------------
# Tables 2 / 3 — overhead of the active memory management scheme
# ----------------------------------------------------------------------


@dataclass
class OverheadTable:
    """PT increase and #MAPs per (p, memory fraction)."""

    title: str
    procs: tuple[int, ...]
    fractions: tuple[float, ...]
    #: cells[(p, fraction)] -> averaged CellMetrics-like tuple
    pt_increase: dict[tuple[int, float], float]
    maps: dict[tuple[int, float], float]

    def render(self) -> str:
        headers = ["P"]
        for f in self.fractions:
            headers.append(f"{int(f * 100)}% PTinc")
            if f < 1.0:
                headers.append(f"{int(f * 100)}% #MAPs")
        rows = []
        for p in self.procs:
            row = [f"P={p}"]
            for f in self.fractions:
                row.append(fmt_pct(self.pt_increase[(p, f)]))
                if f < 1.0:
                    row.append(fmt_maps(self.maps[(p, f)]))
            rows.append(row)
        return render_table(headers, rows, title=self.title)


def _overhead_table(
    ctx: ExperimentContext, keys: tuple[str, ...], title: str, procs, fractions
) -> OverheadTable:
    pt_inc: dict[tuple[int, float], float] = {}
    maps: dict[tuple[int, float], float] = {}
    for p in procs:
        for f in fractions:
            cells = [ctx.run_cell(k, p, "rcp", f) for k in keys]
            if all(c.executable for c in cells):
                pt_inc[(p, f)] = sum(c.pt_increase for c in cells) / len(cells)
                maps[(p, f)] = sum(c.avg_maps for c in cells) / len(cells)
            else:
                pt_inc[(p, f)] = INF
                maps[(p, f)] = INF
    return OverheadTable(
        title=title,
        procs=tuple(procs),
        fractions=tuple(fractions),
        pt_increase=pt_inc,
        maps=maps,
    )


def table2(ctx: ExperimentContext, procs=TABLE_PROCS, fractions=FRACTIONS) -> OverheadTable:
    """Effectiveness of the run-time execution scheme, sparse Cholesky."""
    return _overhead_table(
        ctx, CHOL_KEYS,
        "Table 2: active memory management overhead (Cholesky, RCP order)",
        procs, fractions,
    )


def table3(ctx: ExperimentContext, procs=TABLE_PROCS, fractions=FRACTIONS) -> OverheadTable:
    """Effectiveness of the run-time execution scheme, sparse LU."""
    return _overhead_table(
        ctx, (LU_KEY,),
        "Table 3: active memory management overhead (LU w/ pivoting, RCP order)",
        procs, fractions,
    )


# ----------------------------------------------------------------------
# Tables 4 / 6 / 7 — pairwise heuristic comparisons
# ----------------------------------------------------------------------


@dataclass
class ComparisonTable:
    """'A vs. B' parallel-time table: entries ``PT_B/PT_A - 1``."""

    title: str
    procs: tuple[int, ...]
    fractions: tuple[float, ...]
    entries: dict[tuple[int, float], float | str]

    def render(self) -> str:
        headers = ["Mem."] + [f"{int(f * 100)}%" for f in self.fractions]
        rows = []
        for p in self.procs:
            rows.append(
                [f"P={p}"] + [fmt_pct(self.entries[(p, f)]) for f in self.fractions]
            )
        return render_table(headers, rows, title=self.title)


def _comparison(
    ctx: ExperimentContext,
    key: str,
    heur_a: str,
    heur_b: str,
    title: str,
    procs,
    fractions,
    merge_b: bool = False,
) -> ComparisonTable:
    entries: dict[tuple[int, float], float | str] = {}
    for p in procs:
        for f in fractions:
            a = ctx.run_cell(key, p, heur_a, f, reference="rcp")
            b = ctx.run_cell(key, p, heur_b, f, reference="rcp", merge_capacity=merge_b)
            entries[(p, f)] = compare_pt(a, b)
    return ComparisonTable(
        title=title, procs=tuple(procs), fractions=tuple(fractions), entries=entries
    )


def table4(
    ctx: ExperimentContext, app: str = "cholesky", procs=TABLE_PROCS, fractions=FRACTIONS_CMP
) -> ComparisonTable:
    """RCP vs MPO parallel times (Table 4a: Cholesky, 4b: LU)."""
    key = "chol15" if app == "cholesky" else LU_KEY
    return _comparison(
        ctx, key, "rcp", "mpo",
        f"Table 4 ({app}): RCP vs MPO (PT_MPO/PT_RCP - 1)",
        procs, fractions,
    )


def table6(
    ctx: ExperimentContext, app: str = "cholesky", procs=TABLE_PROCS, fractions=FRACTIONS_CMP
) -> ComparisonTable:
    """MPO vs DTS parallel times (Table 6)."""
    key = "chol15" if app == "cholesky" else LU_KEY
    return _comparison(
        ctx, key, "mpo", "dts",
        f"Table 6 ({app}): MPO vs DTS (PT_DTS/PT_MPO - 1)",
        procs, fractions,
    )


def table7(
    ctx: ExperimentContext, app: str = "cholesky", procs=TABLE_PROCS, fractions=FRACTIONS_CMP
) -> ComparisonTable:
    """RCP vs DTS-with-slice-merging parallel times (Table 7)."""
    key = "chol15" if app == "cholesky" else LU_KEY
    return _comparison(
        ctx, key, "rcp", "dts-merge",
        f"Table 7 ({app}): RCP vs DTS+merge (PT_DTSm/PT_RCP - 1)",
        procs, fractions, merge_b=True,
    )


# ----------------------------------------------------------------------
# Table 5 — #MAPs, RCP vs MPO
# ----------------------------------------------------------------------


@dataclass
class Table5:
    procs: tuple[int, ...]
    fractions: tuple[float, ...]
    #: entries[(p, f)] = (maps_rcp, maps_mpo)
    entries: dict[tuple[int, float], tuple[float, float]]

    def render(self) -> str:
        headers = ["Mem."] + [f"{int(f * 100)}%" for f in self.fractions]
        rows = []
        for p in self.procs:
            row = [f"P={p}"]
            for f in self.fractions:
                a, b = self.entries[(p, f)]
                row.append(f"{fmt_maps(a)}/{fmt_maps(b)}")
            rows.append(row)
        return render_table(
            headers, rows,
            title="Table 5: average #MAPs for sparse Cholesky, RCP vs MPO",
        )


def table5(
    ctx: ExperimentContext, procs=TABLE_PROCS, fractions=FRACTIONS_CMP
) -> Table5:
    entries: dict[tuple[int, float], tuple[float, float]] = {}
    for p in procs:
        for f in fractions:
            a = ctx.run_cell("chol15", p, "rcp", f, reference="rcp")
            b = ctx.run_cell("chol15", p, "mpo", f, reference="rcp")
            entries[(p, f)] = (
                a.avg_maps if a.executable else INF,
                b.avg_maps if b.executable else INF,
            )
    return Table5(procs=tuple(procs), fractions=tuple(fractions), entries=entries)


# ----------------------------------------------------------------------
# Optimality-gap scorecard — heuristics vs the exact solver (repro.opt)
# ----------------------------------------------------------------------

#: Default scorecard grid: the worked example (fixed 2-processor
#: placement) plus the elimination-tree workload the tree heuristic is
#: specialised for.
SCORECARD_WORKLOADS = ("paper", "etree15")
SCORECARD_PROCS = (2, 4)
#: Node budget per (instance, objective) solve.  Small instances prove
#: optimality in a handful of nodes; on the tree workloads the memory
#: objective still proves instantly (the per-task hold bound is tight)
#: while the time objective typically certifies a lower bound instead.
SCORECARD_NODE_BUDGET = 20_000


@dataclass
class GapScorecard:
    """Per-heuristic optimality gaps against the exact references.

    ``entries`` is one :class:`repro.opt.gaps.WorkloadGaps` per
    (workload, processors) instance.  Gap semantics follow
    :mod:`repro.opt.gaps`: exact against a proved optimum (``=``
    reference rows), an upper bound on the true gap against a certified
    lower bound (``>=`` reference rows).  An unproved reference is the
    stronger of the solver's root bound and the closed-form static
    bound of :mod:`repro.analysis.bounds`; a trailing ``†`` marks
    references the static bound supplied (see ``docs/analysis.md``).
    """

    node_budget: int
    entries: tuple

    def render(self) -> str:
        headers = [
            "workload", "P", "heuristic", "PT", "gap(PT)", "peak", "gap(MEM)",
        ]
        rows = []
        for e in self.entries:
            t_mark = "=" if e.time.proved else ">="
            m_mark = "=" if e.memory.proved else ">="
            t_src = "†" if e.time_ref_source == "static-bound" else ""
            m_src = "†" if e.mem_ref_source == "static-bound" else ""
            rows.append([
                e.workload, str(e.procs), "exact",
                f"{t_mark}{e.time_ref:.4g}{t_src}", "-",
                f"{m_mark}{e.mem_ref:g}{m_src}", "-",
            ])
            for r in e.rows:
                rows.append([
                    e.workload, str(e.procs),
                    r.heuristic + ("*" if r.own_placement else ""),
                    f"{r.pt:.4g}", fmt_pct(r.gap_pt),
                    str(r.peak), fmt_pct(r.gap_peak),
                ])
        table = render_table(
            headers, rows,
            title="Scorecard: heuristic optimality gaps vs the exact solver",
        )
        return table + (
            "\n(reference rows: '=' proved optimal, '>=' certified lower "
            f"bound at {self.node_budget} nodes/objective; "
            "'†' = static bound beat the solver's root bound; "
            "'*' = derives its own placement)"
        )


def gap_scorecard(
    ctx: ExperimentContext,
    workloads=SCORECARD_WORKLOADS,
    procs=SCORECARD_PROCS,
    heuristics=None,
    node_budget=SCORECARD_NODE_BUDGET,
) -> GapScorecard:
    """Run the exact solver on each instance and gap every heuristic.

    ``"paper"`` is the Figure 2 worked example under its fixed
    2-processor placement and unit communication (it appears once,
    whatever ``procs`` says); every other key resolves through
    ``ctx.problem()`` and is swept over ``procs`` with the machine's
    communication model.
    """
    from ..core.schedule import UNIT_COMM
    from ..opt.gaps import GAP_HEURISTICS, optimality_gaps

    if heuristics is None:
        heuristics = GAP_HEURISTICS
    entries = []
    for key in workloads:
        if key == "paper":
            from ..graph.paper_example import (
                paper_assignment,
                paper_example_graph,
                paper_placement,
            )

            g = paper_example_graph()
            pl = paper_placement()
            entries.append(optimality_gaps(
                g, pl, paper_assignment(g, pl), UNIT_COMM,
                workload="paper", heuristics=heuristics,
                node_budget=node_budget,
            ))
            continue
        prob = ctx.problem(key)
        comm = ctx.spec.comm_model()
        for p in procs:
            pl = prob.placement(p)
            entries.append(optimality_gaps(
                prob.graph, pl, prob.assignment(pl), comm,
                workload=key, procs=p, heuristics=heuristics,
                node_budget=node_budget,
            ))
    return GapScorecard(node_budget=node_budget, entries=tuple(entries))
