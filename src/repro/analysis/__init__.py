"""Static schedule sanitizer: prove Definitions 1-6 / Theorem 1
properties from the plan IR, before any simulation.

The conformance layer (:mod:`repro.conformance`) observes one dynamic
execution; this package proves the same catalogue *statically* on the
``Schedule``/``MapPlan`` IR in O(plan) time: memory executability
(``SA1xx``), free/alloc liveness (``SA2xx``), and the one-slot
address-package protocol with Theorem 1's wait-for argument
(``SA3xx``).  Entry points::

    report  = analyze_schedule(schedule, fraction=0.5)
    reports = analyze_batch(seed=7)        # the `repro analyze` batch
    demo    = analyze_overwrite_demo()     # buggy planner, caught

Findings are typed :class:`~repro.analysis.diagnostics.Diagnostic`
values with stable rule codes shared with the dynamic invariant
catalogue, exportable as text, ``repro-analysis/1`` JSON, or SARIF.

Two further static layers close the loop around the compiled engine:
:mod:`repro.analysis.bounds` certifies PT/MIN_MEM *lower bounds* from
the graph + placement alone (``SA4xx``, opt-in via
``analyze_schedule(bounds=True)``), and :mod:`repro.analysis.irverify`
verifies the lowered ``LoweredSchedule``/``ExecPlan`` IR the way
``llvm::verifyModule`` verifies a module (``SA5xx``, automatic behind
``REPRO_VERIFY_IR`` or on demand via ``repro analyze --verify-ir``).
"""

from .bounds import (
    Bound,
    BoundSet,
    bounds_pass,
    certified_bounds,
    memory_bounds,
    schedule_bounds,
    time_bounds,
)
from .diagnostics import Diagnostic, INVARIANT_RULES, RULES, Rule, Severity
from .engine import (
    AnalysisContext,
    AnalysisReport,
    analyze_plan,
    analyze_schedule,
    pick_capacity,
)
from .formats import render_text, to_json, to_sarif
from .harness import analyze_batch, analyze_overwrite_demo
from .irverify import (
    debug_verify,
    verify_exec_plan,
    verify_lowering,
    verify_report,
)

__all__ = [
    "AnalysisContext",
    "AnalysisReport",
    "Bound",
    "BoundSet",
    "Diagnostic",
    "INVARIANT_RULES",
    "RULES",
    "Rule",
    "Severity",
    "analyze_batch",
    "analyze_overwrite_demo",
    "analyze_plan",
    "analyze_schedule",
    "bounds_pass",
    "certified_bounds",
    "debug_verify",
    "memory_bounds",
    "pick_capacity",
    "render_text",
    "schedule_bounds",
    "time_bounds",
    "to_json",
    "to_sarif",
    "verify_exec_plan",
    "verify_lowering",
    "verify_report",
]
