"""Typed diagnostics for the static schedule sanitizer.

Every finding of the analyzer is a :class:`Diagnostic` carrying a stable
rule code from the registry below.  Codes are grouped by the layer of
the paper's correctness story they prove:

* ``SA1xx`` — memory: MEM_REQ/MIN_MEM executability (Definitions 5-6)
  and capacity accounting of the MAP plan;
* ``SA2xx`` — liveness: the free/alloc chains of the MAP plan against
  the volatile life spans (Definitions 3-4);
* ``SA3xx`` — protocol: the one-slot address-package channel and the
  wait-for structure behind Theorem 1's deadlock-freedom argument.

The registry is shared with the dynamic layer: every invariant of
:data:`repro.conformance.invariants.INVARIANTS` maps to the static rule
that proves the same property (:data:`INVARIANT_RULES`), so a dynamic
violation and its static prediction carry the same code in reports.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional

__all__ = [
    "Diagnostic",
    "INVARIANT_RULES",
    "RULES",
    "Rule",
    "Severity",
]


class Severity(enum.IntEnum):
    """Ordered severity; only :attr:`ERROR` findings fail a run."""

    INFO = 0
    WARNING = 1
    ERROR = 2

    @property
    def label(self) -> str:
        return self.name.lower()


@dataclass(frozen=True)
class Rule:
    """One entry of the static rule catalogue."""

    code: str
    #: kebab-case short name, stable like the code.
    name: str
    severity: Severity
    #: paper anchor (Definition / Theorem / section).
    anchor: str
    #: one-line statement of the property the rule checks.
    summary: str
    #: how to fix a finding, phrased for the plan author.
    hint: str


_RULE_TABLE = (
    # -- SA1xx: memory (Definitions 5-6) ------------------------------
    Rule(
        "SA101", "non-executable-schedule", Severity.ERROR,
        "Definitions 5-6",
        "a processor's MIN_MEM exceeds the capacity; no MAP plan exists",
        "raise the capacity to MIN_MEM or re-schedule with a "
        "memory-oriented heuristic (mpo/dts) to lower the peak",
    ),
    Rule(
        "SA102", "plan-over-capacity", Severity.ERROR,
        "Definition 6",
        "replaying the plan's frees/allocs exceeds the capacity",
        "insert an earlier MAP so dead volatiles are freed before the "
        "allocation, or allocate later (closer to first use)",
    ),
    Rule(
        "SA103", "dependence-structure-pressure", Severity.INFO,
        "section 1 / conclusion",
        "capacity leaves no headroom for distributed dependence records",
        "budget the runtime's dependence structures (18-50% of memory in "
        "the paper's runs) on top of MIN_MEM when sizing the capacity",
    ),
    # -- SA2xx: liveness (Definitions 3-4) ----------------------------
    Rule(
        "SA201", "use-after-free", Severity.ERROR,
        "Definition 4",
        "a task accesses a volatile object after a MAP freed it",
        "free the object only at a MAP past its last use (the object's "
        "dead point)",
    ),
    Rule(
        "SA202", "double-free", Severity.ERROR,
        "Definition 4",
        "a MAP frees an object that is not allocated",
        "each volatile object must be freed at most once per allocation, "
        "and only after a MAP allocated it",
    ),
    Rule(
        "SA203", "leaked-volatile", Severity.WARNING,
        "Definition 4",
        "a dead volatile object survives a later MAP without being freed",
        "free dead objects at the next MAP; leaks raise the peak above "
        "the liveness-derived MEM_REQ",
    ),
    Rule(
        "SA204", "dead-allocation", Severity.WARNING,
        "Definition 3",
        "a MAP allocates an object no task on the processor accesses",
        "drop the allocation (and its notification); it wastes capacity "
        "and an address-package entry",
    ),
    Rule(
        "SA205", "use-without-alloc", Severity.ERROR,
        "Definition 3",
        "a task accesses a volatile object no MAP allocated",
        "allocate the object at a MAP at or before its first use so the "
        "owner's put has landing space",
    ),
    Rule(
        "SA206", "double-alloc", Severity.ERROR,
        "Definition 3",
        "a MAP allocates an object that is already allocated",
        "allocate each volatile object once per life span; re-allocation "
        "is only legal after a free",
    ),
    # -- SA3xx: protocol (Definition 4 / Theorem 1) -------------------
    Rule(
        "SA301", "protocol-deadlock", Severity.ERROR,
        "Theorem 1",
        "the static wait-for graph over data and address-slot "
        "dependences has a cycle",
        "break the cycle: restore the lost address package or reorder "
        "the MAPs so every package is consumed before the next send",
    ),
    Rule(
        "SA302", "slot-overwrite-hazard", Severity.ERROR,
        "Definition 4",
        "consecutive packages to one destination with no consuming task "
        "in between; the one-slot channel can be overwritten",
        "a MAP may only notify a destination again after a task consumed "
        "an object of the previous package (self-throttling rule)",
    ),
    Rule(
        "SA303", "missing-notification", Severity.ERROR,
        "Definition 3",
        "an allocated volatile object's owner is never notified of the "
        "address",
        "add the object to a MAP's address package for its owner; "
        "otherwise the owner's put suspends forever",
    ),
    Rule(
        "SA304", "order-cycle", Severity.ERROR,
        "Definition 1",
        "the processor orders conflict with the dependence DAG (the "
        "combined graph has a cycle)",
        "re-topologically-sort the per-processor orders; no task may be "
        "ordered before one of its DAG predecessors' sequence chain",
    ),
    # -- SA4xx: certified static bounds (Defs 5-6) --------------------
    Rule(
        "SA401", "certified-bounds", Severity.INFO,
        "Definitions 5-6",
        "the certified PT/MIN_MEM lower bounds and their certificates",
        "advisory only; compare the schedule's numbers against the "
        "bounds to judge how far a heuristic is from optimal",
    ),
    Rule(
        "SA402", "pt-beats-bound", Severity.ERROR,
        "Definition 1 / section 4.1",
        "the schedule's predicted PT undercuts a certified lower bound",
        "no valid schedule can beat the bound; audit the cost model, "
        "the task weights and the Gantt computation for corruption",
    ),
    Rule(
        "SA403", "min-mem-beats-bound", Severity.ERROR,
        "Definitions 5-6",
        "the profile's MIN_MEM undercuts a certified lower bound",
        "no valid order can run below the residency bound; audit the "
        "liveness analysis and the object sizes for corruption",
    ),
    # -- SA5xx: lowered-IR verification (compiled engine) -------------
    Rule(
        "SA501", "csr-well-formed", Severity.ERROR,
        "ROADMAP item 1",
        "a lowered CSR table has non-monotone pointers or out-of-space "
        "indices",
        "the lowering is structurally corrupt; rebuild it (clear the "
        "CompiledSchedule caches) and report the lowering bug",
    ),
    Rule(
        "SA502", "id-space-bijective", Severity.ERROR,
        "ROADMAP item 1",
        "a lowered id space does not invert to the schedule or graph "
        "entity it encodes",
        "tids/oids/mks must round-trip their index dicts exactly; a "
        "mismatch means the lowering and the schedule disagree",
    ),
    Rule(
        "SA503", "version-table-consistent", Severity.ERROR,
        "section 3 / Definition 4",
        "the static dispatch-version flags or waiter lists disagree "
        "with the schedule's wait-for data",
        "recompute od_ok0/od_ow from the per-processor order scan; a "
        "drift here silently corrupts version-validity verdicts",
    ),
    Rule(
        "SA504", "opcode-stream-valid", Severity.ERROR,
        "ROADMAP item 1",
        "a step program skips/duplicates a task or a SEG run contains "
        "a non-silent task",
        "SEG runs may only cover tasks with no inputs, messages or "
        "consumptions; regenerate the exec plan",
    ),
    Rule(
        "SA505", "cost-table-sane", Severity.ERROR,
        "section 5 cost model",
        "a precomputed cost/weight/size is negative, non-finite or "
        "does not reproduce the machine spec's expression",
        "costs must equal the interpreted engine's exact float "
        "expressions; rebuild the exec plan for this spec",
    ),
)

#: code -> :class:`Rule` for the whole catalogue.
RULES: dict[str, Rule] = {r.code: r for r in _RULE_TABLE}

#: Dynamic invariant key (:data:`repro.conformance.invariants.INVARIANTS`)
#: -> static rule code proving the same paper property.
INVARIANT_RULES: dict[str, str] = {
    "input-residency": "SA201",
    "landing-space": "SA205",
    "slot-overwrite": "SA302",
    "capacity": "SA102",
    "suspended-drain": "SA303",
    "termination": "SA301",
}


@dataclass(frozen=True)
class Diagnostic:
    """One finding of the static analyzer."""

    rule: str
    severity: Severity
    message: str
    proc: Optional[int] = None
    task: Optional[str] = None
    obj: Optional[str] = None
    #: task position within the processor's order the finding anchors to.
    position: Optional[int] = None
    #: processor cycle for deadlock findings, ``(p0, p1, ..., p0)``.
    cycle: tuple[int, ...] = field(default=())
    #: multi-line witness report (wait-for edges + cycle) when available.
    witness: Optional[str] = None

    @classmethod
    def of(cls, code: str, message: str, **kw) -> "Diagnostic":
        """Build a diagnostic with the rule's default severity."""
        return cls(rule=code, severity=RULES[code].severity,
                   message=message, **kw)

    @property
    def rule_info(self) -> Rule:
        return RULES[self.rule]

    @property
    def anchor(self) -> str:
        return self.rule_info.anchor

    @property
    def hint(self) -> str:
        return self.rule_info.hint

    def location(self) -> str:
        parts = []
        if self.proc is not None:
            parts.append(f"P{self.proc}")
        if self.position is not None:
            parts.append(f"pos{self.position}")
        if self.task is not None:
            parts.append(f"task {self.task!r}")
        if self.obj is not None:
            parts.append(f"obj {self.obj!r}")
        return " ".join(parts)

    def __str__(self) -> str:
        loc = self.location()
        loc = f" {loc}" if loc else ""
        return (
            f"[{self.rule} {self.rule_info.name}] "
            f"{self.severity.label}{loc}: {self.message} ({self.anchor})"
        )
