"""Memory pass: MEM_REQ / MIN_MEM executability (Definitions 5-6).

Recomputes the capacity story of a schedule directly from the liveness
profile and — when a plan exists — replays the plan's free/alloc chains
arithmetically, without the simulator:

``SA101``
    ``MIN_MEM > capacity`` on some processor: no MAP plan exists
    (Definition 6's non-executable case, the ``inf`` table entries).
``SA102``
    A hand-built plan whose running footprint exceeds the capacity at
    some MAP.  Plans produced by :func:`repro.core.maps.plan_maps` are
    within budget by construction; this catches edited or foreign plans.
``SA103``
    Informational: the capacity fits the data but leaves no headroom
    for the distributed dependence structures the paper's conclusion
    measures (18-50% of total memory).
"""

from __future__ import annotations

from ..core.depmem import distributed_dependence_memory
from .diagnostics import Diagnostic

__all__ = ["memory_pass"]


def memory_pass(ctx) -> list[Diagnostic]:
    diags: list[Diagnostic] = []
    profile = ctx.profile
    capacity = ctx.capacity
    g = ctx.schedule.graph

    for pp in profile.procs:
        if pp.min_mem > capacity:
            peak = max(range(len(pp.mem_req)), key=pp.mem_req.__getitem__)
            diags.append(Diagnostic.of(
                "SA101",
                f"MIN_MEM {pp.min_mem} exceeds capacity {capacity} "
                f"(peak MEM_REQ at position {peak})",
                proc=pp.proc,
                position=peak,
                task=ctx.schedule.orders[pp.proc][peak],
            ))

    if ctx.plan is not None:
        size = g.object_size
        for p, pts in enumerate(ctx.plan.points):
            pp = profile.procs[p]
            used = pp.perm_bytes
            allocated: set[str] = set()
            for k, mp in enumerate(pts):
                for o in mp.frees:
                    if o in allocated:
                        allocated.discard(o)
                        used -= size[o]
                for o in mp.allocs:
                    if o in allocated:
                        continue  # double-alloc; the sanitizer flags it
                    allocated.add(o)
                    used += size[o]
                    if used > capacity:
                        diags.append(Diagnostic.of(
                            "SA102",
                            f"MAP {k} brings usage to {used} > capacity "
                            f"{capacity} when allocating {o!r}",
                            proc=p,
                            position=mp.position,
                            obj=o,
                        ))

    # Headroom advisory: the capacity was pinned to the MIN_MEM floor
    # even though recycling left slack to give (TOT > MIN_MEM) — zero
    # headroom for the runtime's own dependence records.
    if (profile.procs and capacity == profile.min_mem
            and profile.tot > profile.min_mem):
        dep = distributed_dependence_memory(ctx.schedule)
        q = max(range(len(dep.per_proc)), key=dep.per_proc.__getitem__)
        share = dep.per_proc[q] / (dep.per_proc[q] + max(capacity, 1))
        diags.append(Diagnostic.of(
            "SA103",
            f"capacity equals MIN_MEM {capacity}; distributed dependence "
            f"records would add {dep.per_proc[q]} B on P{q} "
            f"({share:.0%} of the total, cf. the paper's 18-50%)",
            proc=q,
        ))
    return diags
