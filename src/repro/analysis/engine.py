"""The pass pipeline: one static analysis of a schedule + MAP plan.

:func:`analyze_schedule` resolves capacity and plan (mirroring the
conformance harness so static and dynamic verdicts are about the *same*
configuration), runs the three passes in order — memory (Defs 5-6),
liveness sanitizer (Defs 3-4), protocol (Def 4 / Theorem 1) — and
returns an :class:`AnalysisReport`.  Cost is O(plan): no simulator, no
event loop; the benchmark section ``analysis`` of
``benchmarks/bench_sweep_engine.py`` measures the ratio to a checked
simulation.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional

from ..core.liveness import MemoryProfile, analyze_memory
from ..core.maps import MapPlan, plan_maps
from ..core.schedule import CommModel, Schedule
from ..errors import NonExecutableScheduleError
from .bounds import bounds_pass
from .diagnostics import Diagnostic, Severity
from .memory import memory_pass
from .protocol import protocol_pass
from .sanitizer import sanitizer_pass

__all__ = [
    "AnalysisContext",
    "AnalysisReport",
    "analyze_plan",
    "analyze_schedule",
    "pick_capacity",
]


def pick_capacity(profile: MemoryProfile, fraction: Optional[float]) -> int:
    """Capacity between MIN_MEM (0.0) and TOT (1.0); ``None`` = TOT.

    The canonical knob shared by ``repro check`` and ``repro analyze``
    (the conformance harness delegates here), so both layers judge the
    same capacity for a given fraction.
    """
    if fraction is None:
        return max(profile.tot, 1)
    fraction = min(max(fraction, 0.0), 1.0)
    cap = profile.min_mem + fraction * (profile.tot - profile.min_mem)
    return max(int(math.floor(cap)), profile.min_mem, 1)


@dataclass
class AnalysisContext:
    """Shared state handed to every pass."""

    schedule: Schedule
    capacity: int
    profile: MemoryProfile
    #: ``None`` when the schedule is non-executable under the capacity.
    plan: Optional[MapPlan]
    #: Communication model of the SA4xx bound comparisons; ``None``
    #: falls back to the unit-cost model of the worked examples.
    comm: Optional[CommModel] = None


@dataclass
class AnalysisReport:
    """All findings of one static analysis."""

    label: str
    capacity: int
    num_procs: int
    diagnostics: list[Diagnostic] = field(default_factory=list)

    @property
    def errors(self) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.severity == Severity.ERROR]

    @property
    def warnings(self) -> list[Diagnostic]:
        return [d for d in self.diagnostics
                if d.severity == Severity.WARNING]

    @property
    def ok(self) -> bool:
        """No error-severity findings (warnings/infos do not fail)."""
        return not self.errors

    def by_rule(self) -> dict[str, list[Diagnostic]]:
        out: dict[str, list[Diagnostic]] = {}
        for d in self.diagnostics:
            out.setdefault(d.rule, []).append(d)
        return out

    def cycles(self) -> list[tuple[int, ...]]:
        """Processor cycles of the deadlock findings (SA301)."""
        return [d.cycle for d in self.diagnostics if d.cycle]

    def summary(self) -> str:
        if not self.diagnostics:
            return f"{self.label}: OK (capacity={self.capacity})"
        counts = {code: len(ds) for code, ds in sorted(self.by_rule().items())}
        body = ", ".join(f"{c} x{n}" for c, n in counts.items())
        verdict = "OK" if self.ok else "FAIL"
        return f"{self.label}: {verdict} ({body}; capacity={self.capacity})"

    def render(self, hints: bool = False) -> str:
        lines = [self.summary()]
        for d in self.diagnostics:
            lines.append(f"  {d}")
            if hints:
                lines.append(f"    hint: {d.hint}")
            if d.witness:
                lines.extend(f"    {ln}" for ln in d.witness.splitlines())
        return "\n".join(lines)


_PASSES = (memory_pass, sanitizer_pass, protocol_pass)


def analyze_schedule(
    schedule: Schedule,
    *,
    capacity: Optional[int] = None,
    fraction: Optional[float] = None,
    profile: Optional[MemoryProfile] = None,
    plan: Optional[MapPlan] = None,
    label: str = "",
    bounds: bool = False,
    comm: Optional[CommModel] = None,
) -> AnalysisReport:
    """Statically analyze ``schedule`` under a capacity.

    Capacity resolution mirrors :func:`repro.conformance.check.run_check`:
    explicit ``capacity`` wins, else ``fraction`` interpolates between
    MIN_MEM and TOT, else TOT.  When no ``plan`` is supplied one is
    computed with :func:`repro.core.maps.plan_maps`; a non-executable
    schedule yields no plan and is reported via ``SA101`` instead of
    raising.

    ``bounds=True`` additionally runs the certified-bound pass
    (``SA401``-``SA403``, see :mod:`repro.analysis.bounds`) under
    ``comm`` — opt-in because it prices a Gantt evaluation on top of
    the O(plan) core pipeline.
    """
    if profile is None:
        profile = plan.profile if plan is not None else analyze_memory(schedule)
    if capacity is None:
        capacity = (plan.capacity if plan is not None
                    else pick_capacity(profile, fraction))
    if plan is None and profile.executable_under(capacity):
        try:
            plan = plan_maps(schedule, capacity, profile)
        except NonExecutableScheduleError:  # defensive; SA101 covers it
            plan = None
    ctx = AnalysisContext(
        schedule=schedule, capacity=capacity, profile=profile, plan=plan,
        comm=comm,
    )
    report = AnalysisReport(
        label=label or schedule.meta.get("heuristic", "schedule"),
        capacity=capacity,
        num_procs=schedule.num_procs,
    )
    for p in _PASSES:
        report.diagnostics.extend(p(ctx))
    if bounds:
        report.diagnostics.extend(bounds_pass(ctx))
    return report


def analyze_plan(plan: MapPlan, label: str = "") -> AnalysisReport:
    """Analyze an existing plan (its own schedule and capacity)."""
    return analyze_schedule(
        plan.schedule,
        capacity=plan.capacity,
        profile=plan.profile,
        plan=plan,
        label=label,
    )
