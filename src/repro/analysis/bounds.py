"""Certified static lower bounds on PT and MIN_MEM (``SA4xx``).

The paper's premise (Defs 1-6, Theorem 1) is that space and time
feasibility are decidable *before* execution.  This pass closes that
loop: from the task graph, the placement and the assignment alone — no
ordering, no MAP planning, no simulation — it derives lower bounds that
every valid static schedule must respect, each carried as a typed
:class:`Bound` with a provenance certificate naming the witness.

Time bounds (any schedule under this assignment and comm model):

* **critical-path** — the longest mapped path (b-level with
  cross-processor communication charged, exactly the RCP priority
  metric of section 4.1);
* **processor-work** — ``max_p work(p)``: a processor cannot finish
  before serially executing its own tasks;
* **processor-window** — ``min_{t on p} top(t) + work(p) +
  min_{t on p} tail(t)``: the first task of ``p`` cannot start before
  the smallest top level on ``p``, the serial work follows, and after
  ``p``'s last task at least the smallest remaining b-level tail is
  still ahead of the makespan.

Memory bounds (Definitions 3, 5-6; any execution order):

* **residency-hold** — while task ``i`` runs on ``p``, the permanent
  set PERM(p) plus every volatile object ``i`` accesses is resident;
* **forced-span** — on forests (every task has at most one successor,
  e.g. elimination trees, cf. Liu's peak-net bounds), a volatile object
  with two accessors ``u`` ≺ ``w`` on ``p`` spans every ``p``-task the
  DAG forces strictly between them, because the life span (first to
  last access, Definition 4) covers the whole window in *every* valid
  order.

Cost discipline: the assignment-independent shape of the problem (topo
order, weights, edge byte counts, access triples) is memoised per
frozen graph in a weak-keyed :class:`_GraphIndex` — the same
build-once-query-many contract as ``CompiledSchedule.plan_for`` — so a
query pays only for the placement/assignment-dependent part.  Small
graphs run a plain-Python path (numpy call overhead would dominate
them); graphs with ≥ :data:`_NUMPY_MIN_TASKS` tasks vectorise the edge
costs, the per-processor aggregates and the whole residency sweep.
The benchmark section ``bounds`` of ``benchmarks/bench_sweep_engine.py``
gates the pass ≥10x cheaper than a full ``analyze_schedule`` run.
"""

from __future__ import annotations

import weakref
from dataclasses import dataclass
from typing import Mapping, Optional

import numpy as np

from ..core.placement import Placement
from ..core.schedule import CommModel, Schedule, UNIT_COMM, gantt
from ..errors import SchedulingError
from ..graph.taskgraph import TaskGraph
from .diagnostics import Diagnostic

__all__ = [
    "Bound",
    "BoundSet",
    "bounds_pass",
    "certified_bounds",
    "memory_bounds",
    "schedule_bounds",
    "time_bounds",
]

#: Relative slack of the SA402/SA403 comparisons: a reported value must
#: undercut the certified bound by more than this to count as corrupt
#: (absorbs float summation order differences, not real violations).
_REL_EPS = 1e-9

#: Below this many tasks the plain-Python path wins: a query is a few
#: dozen list operations and numpy's per-call overhead would exceed the
#: whole computation.  Tests pin both paths to the same values.
_NUMPY_MIN_TASKS = 128


@dataclass(frozen=True)
class Bound:
    """One certified lower bound with its provenance.

    ``metric`` is ``"pt"`` or ``"min_mem"``; ``method`` names the
    argument that proves the bound; ``certificate`` is a human-readable
    witness (the path end, processor or task the bound is tight on).
    """

    metric: str
    value: float
    method: str
    certificate: str

    def __str__(self) -> str:
        return f"{self.metric} >= {self.value:g} [{self.method}] {self.certificate}"


@dataclass(frozen=True)
class BoundSet:
    """The best certified bound per metric plus every candidate."""

    pt: Bound
    min_mem: Bound
    candidates: tuple[Bound, ...]

    def describe(self) -> str:
        lines = [f"certified: {self.pt}", f"certified: {self.min_mem}"]
        lines.extend(f"candidate: {b}" for b in self.candidates)
        return "\n".join(lines)


# ----------------------------------------------------------------------
# the per-graph index
# ----------------------------------------------------------------------


class _GraphIndex:
    """Assignment-independent shape of one task graph, in index space.

    Everything here is a pure function of the (frozen, immutable) graph:
    the topological numbering, task weights, out-edge rows with data
    byte counts (``-1.0`` marks a synchronisation edge, which is free
    under every mapping), the forest parent vector when each task has
    at most one successor, and the flattened access triples.  A bounds
    query combines this with a placement/assignment, which is the only
    per-call work.
    """

    __slots__ = (
        "topo", "n", "w_l", "rows", "par", "forest",
        "objs", "size", "acc_rows", "acc_triples",
        "w", "esrc", "edst", "enb", "obj_size", "a_src", "a_oid",
    )

    def __init__(self, graph: TaskGraph) -> None:
        topo = graph.topological_order()
        n = len(topo)
        self.topo = topo
        self.n = n
        idx = {name: i for i, name in enumerate(topo)}
        task_of = graph.task
        w = np.empty(n)
        for i, name in enumerate(topo):
            w[i] = task_of(name).weight
        self.w = w
        self.w_l = w.tolist()

        osize = graph.object_size
        self.size = osize
        smap = graph.successor_map()
        esrc: list[int] = []
        edst: list[int] = []
        enb: list[float] = []
        rows: list[tuple[tuple[int, float], ...]] = []
        forest = True
        for i, name in enumerate(topo):
            inner = smap[name]
            if len(inner) > 1:
                forest = False
            row = []
            for v, objs in inner.items():
                j = idx[v]
                nb = float(sum(osize[o] for o in objs)) if objs else -1.0
                esrc.append(i)
                edst.append(j)
                enb.append(nb)
                row.append((j, nb))
            rows.append(tuple(row))
        self.rows = tuple(rows)
        self.forest = forest
        self.esrc = np.array(esrc, dtype=np.int64)
        self.edst = np.array(edst, dtype=np.int64)
        self.enb = np.array(enb)
        if forest:
            # Parent vector with sentinel slot ``n`` for the roots, so
            # the chain recurrences run branch-free.
            par = [n] * n
            for k, i in enumerate(esrc):
                par[i] = edst[k]
            self.par: Optional[list[int]] = par
        else:
            self.par = None

        objs = sorted(osize)
        self.objs = objs
        oidx = {o: k for k, o in enumerate(objs)}
        self.obj_size = np.array([float(osize[o]) for o in objs])
        a_src: list[int] = []
        a_oid: list[int] = []
        acc_rows: list[tuple[str, ...]] = []
        acc_triples: list[tuple[tuple[int, float, str], ...]] = []
        for i, name in enumerate(topo):
            acc = task_of(name).accesses
            acc_rows.append(acc)
            acc_triples.append(
                tuple((oidx[o], float(osize[o]), o) for o in acc))
            for o in acc:
                a_src.append(i)
                a_oid.append(oidx[o])
        self.acc_rows = tuple(acc_rows)
        self.acc_triples = tuple(acc_triples)
        self.a_src = np.array(a_src, dtype=np.int64)
        self.a_oid = np.array(a_oid, dtype=np.int64)


#: frozen graph -> memoised index.  Weak keys: the index dies with the
#: graph.  Unfrozen graphs are never cached (they may still mutate).
_INDEX_CACHE: "weakref.WeakKeyDictionary[TaskGraph, _GraphIndex]" = (
    weakref.WeakKeyDictionary()
)


def _graph_index(graph: TaskGraph) -> _GraphIndex:
    if not graph.frozen:
        return _GraphIndex(graph)
    ix = _INDEX_CACHE.get(graph)
    if ix is None:
        ix = _INDEX_CACHE[graph] = _GraphIndex(graph)
    return ix


# ----------------------------------------------------------------------
# time
# ----------------------------------------------------------------------


def _levels_rows(
    ix: _GraphIndex, proc_l: list[int], lat: float, bt: float
) -> tuple[list[float], list[float]]:
    """b-/t-levels via the generic per-node edge rows (any DAG).

    A data edge between processors costs ``latency + byte_time *
    bytes``; everything else is free.  The cost expression is inlined
    in both sweeps — rebuilding per-edge cost rows costs more than the
    two extra float operations per edge.
    """
    n = ix.n
    w_l = ix.w_l
    rows = ix.rows
    bl = w_l.copy()
    for i in range(n - 1, -1, -1):
        pu = proc_l[i]
        best = 0.0
        for j, nb in rows[i]:
            c = 0.0 if nb < 0.0 or proc_l[j] == pu else lat + bt * nb
            cand = c + bl[j]
            if cand > best:
                best = cand
        bl[i] += best
    tl = [0.0] * n
    for i in range(n):
        pu = proc_l[i]
        base = tl[i] + w_l[i]
        for j, nb in rows[i]:
            c = 0.0 if nb < 0.0 or proc_l[j] == pu else lat + bt * nb
            cand = base + c
            if cand > tl[j]:
                tl[j] = cand
    return bl, tl


def _levels_forest(
    ix: _GraphIndex, proc, lat: float, bt: float
) -> tuple[list[float], list[float]]:
    """b-/t-levels on a forest: one branch-free chain sweep each way.

    Each task has a single successor, so the max over out-edges
    degenerates to one addition along the parent chain; the edge costs
    vectorise because edge ``k`` is the unique out-edge of ``esrc[k]``.
    """
    n = ix.n
    cross = (proc[ix.esrc] != proc[ix.edst]) & (ix.enb >= 0.0)
    cost = np.where(cross, lat + ix.enb * bt, 0.0)
    cnode = np.zeros(n + 1)
    cnode[ix.esrc] = cost
    wc = np.empty(n + 1)
    wc[:n] = ix.w
    wc[:n] += cnode[:n]
    wc[n] = 0.0
    wc_l = wc.tolist()
    par = ix.par
    assert par is not None
    bl = [0.0] * (n + 1)
    for i in range(n - 1, -1, -1):
        bl[i] = wc_l[i] + bl[par[i]]
    tl = [0.0] * (n + 1)
    for i in range(n):
        v = tl[i] + wc_l[i]
        p_ = par[i]
        if v > tl[p_]:
            tl[p_] = v
    return bl[:n], tl[:n]


def _time_candidates(
    ix: _GraphIndex,
    proc_l: list[int],
    proc,  # np.ndarray when the vectorised path is active, else None
    num_procs: int,
    comm: CommModel,
) -> list[Bound]:
    """The three PT bounds given a resolved processor labelling."""
    n = ix.n
    if not n:
        return [Bound("pt", 0.0, "critical-path", "empty graph")]
    lat, bt = comm.latency, comm.byte_time
    inf = float("inf")
    if proc is not None:
        if ix.forest:
            bl, tl = _levels_forest(ix, proc, lat, bt)
        else:
            bl, tl = _levels_rows(ix, proc_l, lat, bt)
        bl_a = np.asarray(bl)
        tl_a = np.asarray(tl)
        top = int(bl_a.argmax())
        bl_top = float(bl_a[top])
        work = np.bincount(proc, weights=ix.w, minlength=num_procs)
        min_top = np.full(num_procs, inf)
        np.minimum.at(min_top, proc, tl_a)
        min_tail = np.full(num_procs, inf)
        np.minimum.at(min_tail, proc, bl_a - ix.w)
        work_l = work.tolist()
        min_top_l = min_top.tolist()
        min_tail_l = min_tail.tolist()
    else:
        bl, tl = _levels_rows(ix, proc_l, lat, bt)
        top = max(range(n), key=bl.__getitem__)
        bl_top = bl[top]
        work_l = [0.0] * num_procs
        min_top_l = [inf] * num_procs
        min_tail_l = [inf] * num_procs
        w_l = ix.w_l
        for i in range(n):
            p = proc_l[i]
            w = w_l[i]
            work_l[p] += w
            if tl[i] < min_top_l[p]:
                min_top_l[p] = tl[i]
            tail = bl[i] - w
            if tail < min_tail_l[p]:
                min_tail_l[p] = tail

    out = [Bound(
        "pt", bl_top, "critical-path",
        f"longest mapped path starts at task {ix.topo[top]!r}",
    )]
    if num_procs:
        busiest = max(range(num_procs), key=work_l.__getitem__)
        out.append(Bound(
            "pt", work_l[busiest], "processor-work",
            f"serial work of P{busiest}",
        ))
    best_win, best_p = -1.0, -1
    for p in range(num_procs):
        if min_top_l[p] == inf:
            continue  # no tasks on p
        win = min_top_l[p] + work_l[p] + min_tail_l[p]
        if win > best_win:
            best_win, best_p = win, p
    if best_p >= 0:
        out.append(Bound(
            "pt", best_win, "processor-window",
            f"P{best_p}: min top {min_top_l[best_p]:g} + work "
            f"{work_l[best_p]:g} + min tail {min_tail_l[best_p]:g}",
        ))
    return out


def time_bounds(
    graph: TaskGraph,
    assignment: Mapping[str, int],
    num_procs: int,
    comm: CommModel = UNIT_COMM,
) -> list[Bound]:
    """All certified PT lower bounds under ``assignment`` + ``comm``.

    Equivalent to b-/t-levels under
    ``mapped_edge_cost(assignment, size_edge_cost(...))`` (the RCP
    priority metric), but computed over the memoised
    :class:`_GraphIndex` — the microseconds-scale budget of the pass
    forbids the per-edge closure stack of :mod:`repro.graph.analysis`.
    """
    ix = _graph_index(graph)
    proc_l = list(map(assignment.__getitem__, ix.topo))
    proc = (np.array(proc_l, dtype=np.int64)
            if ix.n >= _NUMPY_MIN_TASKS else None)
    return _time_candidates(ix, proc_l, proc, num_procs, comm)


# ----------------------------------------------------------------------
# memory
# ----------------------------------------------------------------------


def _forest_parent_names(ix: _GraphIndex) -> dict[str, Optional[str]]:
    """The forest's unique-successor map, by task name."""
    topo, par, n = ix.topo, ix.par, ix.n
    assert par is not None
    return {
        topo[i]: (topo[par[i]] if par[i] < n else None) for i in range(n)
    }


def _forced_objects(
    assignment: Mapping[str, int],
    accessors_of: dict[tuple[int, str], list[str]],
    parent: dict[str, Optional[str]],
) -> dict[str, set[str]]:
    """Forest forced-spanning sets: task -> volatile objects the DAG
    pins resident on the task's processor while it runs.

    In a forest the strict ancestors of ``u`` are exactly its successor
    chain, so an object with processor-``p`` accessors ``u`` ≺ ``w``
    forces every ``p``-task on the chain strictly between them — the
    object's life span (Definition 4) covers the whole window in every
    valid execution order.
    """
    forced: dict[str, set[str]] = {}
    for (p, o), accessors in accessors_of.items():
        if len(accessors) < 2:
            continue
        aset = set(accessors)
        for u in accessors:
            buf: list[str] = []
            c = parent[u]
            while c is not None:
                if c in aset:
                    for b in buf:
                        if assignment[b] == p:
                            forced.setdefault(b, set()).add(o)
                    buf = []
                else:
                    buf.append(c)
                c = parent[c]
    return forced


def _forced_span_bound(
    ix: _GraphIndex,
    assignment: Mapping[str, int],
    accessors_of: dict[tuple[int, str], list[str]],
    procs: list[int],
    volas: list[float],
    perm_bytes: list[float],
) -> Optional[Bound]:
    """The forest refinement, scored on top of the residency holds."""
    size = ix.size
    parent = _forest_parent_names(ix)
    forced = _forced_objects(assignment, accessors_of, parent)
    index = {name: i for i, name in enumerate(ix.topo)}
    fbest, fi = -1.0, -1
    fextra = 0.0
    for name, objs in forced.items():
        i = index[name]
        accessed = set(ix.acc_rows[i])
        extra = sum(size[o] for o in objs if o not in accessed)
        if not extra:
            continue
        val = perm_bytes[procs[i]] + volas[i] + extra
        if val > fbest:
            fbest, fi, fextra = val, i, extra
    if fi < 0:
        return None
    p = procs[fi]
    return Bound(
        "min_mem", float(fbest), "forced-span",
        f"task {ix.topo[fi]!r} on P{p}: permanent "
        f"{perm_bytes[p]:g} + accessed volatiles {volas[fi]:g} + "
        f"forced spans {fextra:g} bytes (forest life spans, "
        "Definition 4)",
    )


def _memory_finish(
    ix: _GraphIndex,
    assignment: Mapping[str, int],
    num_procs: int,
    perm_bytes: list[float],
    volas,  # list[float] | np.ndarray
    procs,  # list[int] | np.ndarray
    multi_accessor: bool,
    accessors_of: Optional[dict[tuple[int, str], list[str]]],
) -> list[Bound]:
    """Turn the residency aggregates into MIN_MEM bounds."""
    out: list[Bound] = []
    if num_procs:
        heavy = max(range(num_procs), key=perm_bytes.__getitem__)
        out.append(Bound(
            "min_mem", float(perm_bytes[heavy]), "permanent-set",
            f"accessed permanent set of P{heavy} (Definition 3)",
        ))
    if isinstance(volas, np.ndarray):
        # Vectorised argmax; ``argmax`` keeps the first maximum, the
        # same tie-break as the strict ``>`` of the scalar loop.
        if len(volas):
            vals = np.asarray(perm_bytes)[procs] + volas
            best_i = int(vals.argmax())
            best = float(vals[best_i])
        else:
            best, best_i = -1.0, -1
    else:
        best, best_i = -1.0, -1
        for i, p in enumerate(procs):
            val = perm_bytes[p] + volas[i]
            if val > best:
                best, best_i = val, i
    if best_i >= 0:
        p = procs[best_i]
        out.append(Bound(
            "min_mem", float(best), "residency-hold",
            f"task {ix.topo[best_i]!r} on P{p}: permanent "
            f"{perm_bytes[p]:g} + accessed volatiles {volas[best_i]:g} "
            "bytes (Definitions 3-4)",
        ))
    if best_i >= 0 and multi_accessor and ix.forest and accessors_of:
        fb = _forced_span_bound(
            ix, assignment, accessors_of, procs, volas, perm_bytes)
        if fb is not None:
            out.append(fb)
    return out


def _memory_candidates(
    ix: _GraphIndex,
    proc_l: list[int],
    proc,  # np.ndarray when the vectorised path is active, else None
    placement: Placement,
    assignment: Mapping[str, int],
) -> list[Bound]:
    """The MIN_MEM bounds given a resolved processor labelling."""
    num_procs = placement.num_procs
    owner = placement.owner
    n = ix.n
    if proc is not None:
        owner_a = np.array(
            list(map(owner.__getitem__, ix.objs)), dtype=np.int64)
        a_src, a_oid = ix.a_src, ix.a_oid
        ap = proc[a_src]
        is_perm = owner_a[a_oid] == ap
        obj_size = ix.obj_size
        vola_pair = np.where(is_perm, 0.0, obj_size[a_oid])
        vola = np.bincount(a_src, weights=vola_pair, minlength=n)
        perm_mask = np.zeros(len(ix.objs), dtype=bool)
        perm_mask[a_oid[is_perm]] = True  # scatter: no sort-based unique
        perm = np.bincount(
            owner_a[perm_mask], weights=obj_size[perm_mask],
            minlength=num_procs)
        multi = False
        accessors_of = None
        vkeys = a_oid[~is_perm] * max(num_procs, 1) + ap[~is_perm]
        if len(vkeys):
            multi = bool((np.bincount(vkeys) >= 2).any())
        if multi and ix.forest:
            accessors_of = {}
            topo, objs = ix.topo, ix.objs
            vmask = (~is_perm).nonzero()[0]
            for k in vmask.tolist():
                key = (int(ap[k]), objs[a_oid[k]])
                accessors_of.setdefault(key, []).append(topo[a_src[k]])
        return _memory_finish(
            ix, assignment, num_procs, perm.tolist(), vola,
            proc, multi, accessors_of)

    #: owner resolved once per *object*, then looked up per access by
    #: integer id — cheaper than a dict probe per access pair.
    own_l = list(map(owner.__getitem__, ix.objs))
    perm_seen: list[set[int]] = [set() for _ in range(num_procs)]
    perm_bytes = [0.0] * num_procs
    volas: list[float] = []
    #: only forests can use the forced-span refinement, so only they
    #: pay for the accessor bookkeeping.
    track = ix.forest
    multi = False
    accessors_of: dict[tuple[int, str], list[str]] = {}
    topo, acc_triples = ix.topo, ix.acc_triples
    for i in range(n):
        p = proc_l[i]
        vb = 0.0
        for oid, sz, o in acc_triples[i]:
            if own_l[oid] == p:
                seen = perm_seen[p]
                if oid not in seen:
                    seen.add(oid)
                    perm_bytes[p] += sz
            else:
                vb += sz
                if track:
                    prev = accessors_of.setdefault((p, o), [])
                    prev.append(topo[i])
                    if len(prev) > 1:
                        multi = True
        volas.append(vb)
    return _memory_finish(
        ix, assignment, num_procs, perm_bytes, volas, proc_l, multi,
        accessors_of)


def memory_bounds(
    graph: TaskGraph,
    placement: Placement,
    assignment: Mapping[str, int],
) -> list[Bound]:
    """All certified MIN_MEM lower bounds under ``placement``.

    One sweep over the access lists derives PERM(p) (Definition 3) and
    each task's volatile residency; the forest refinement only walks
    successor chains for objects that actually have two same-processor
    accessors.
    """
    ix = _graph_index(graph)
    proc_l = list(map(assignment.__getitem__, ix.topo))
    proc = (np.array(proc_l, dtype=np.int64)
            if ix.n >= _NUMPY_MIN_TASKS else None)
    return _memory_candidates(ix, proc_l, proc, placement, assignment)


# ----------------------------------------------------------------------
# combined entry points
# ----------------------------------------------------------------------


def certified_bounds(
    graph: TaskGraph,
    placement: Placement,
    assignment: Mapping[str, int],
    comm: CommModel = UNIT_COMM,
) -> BoundSet:
    """Best certified PT and MIN_MEM lower bounds plus all candidates.

    The graph index and the processor labelling are resolved once and
    shared by the time and memory sides — this combined entry point is
    the one the sweep, the gap scorecard and the benchmark pay for.
    """
    ix = _graph_index(graph)
    proc_l = list(map(assignment.__getitem__, ix.topo))
    proc = (np.array(proc_l, dtype=np.int64)
            if ix.n >= _NUMPY_MIN_TASKS else None)
    t_cands = _time_candidates(ix, proc_l, proc, placement.num_procs, comm)
    m_cands = _memory_candidates(ix, proc_l, proc, placement, assignment)
    pt = t_cands[0]
    for b in t_cands:
        if b.value > pt.value:
            pt = b
    if m_cands:
        mm = m_cands[0]
        for b in m_cands:
            if b.value > mm.value:
                mm = b
    else:
        mm = Bound("min_mem", 0.0, "permanent-set", "empty graph")
    return BoundSet(pt=pt, min_mem=mm, candidates=tuple(t_cands + m_cands))


def schedule_bounds(schedule: Schedule, comm: CommModel = UNIT_COMM) -> BoundSet:
    """Certified bounds for a schedule's graph/placement/assignment
    (the per-processor orders are *not* consulted — the bounds hold for
    every valid ordering of the same assignment)."""
    return certified_bounds(
        schedule.graph, schedule.placement, schedule.assignment, comm
    )


# ----------------------------------------------------------------------
# the SA4xx pass
# ----------------------------------------------------------------------


def bounds_pass(ctx) -> list[Diagnostic]:
    """Certified-bound pass (opt-in; ``analyze_schedule(bounds=True)``).

    Emits one ``SA401`` advisory carrying both certificates, and hard
    errors when the schedule's *reported* numbers undercut a certified
    bound — which can only mean a corrupt cost model or plan:

    * ``SA402`` — predicted PT (same comm model) below the PT bound;
    * ``SA403`` — the profile's MIN_MEM below the memory bound.
    """
    comm = ctx.comm if getattr(ctx, "comm", None) is not None else UNIT_COMM
    bs = schedule_bounds(ctx.schedule, comm)
    diags = [Diagnostic.of(
        "SA401",
        f"certified lower bounds: PT >= {bs.pt.value:g} "
        f"({bs.pt.method}), MIN_MEM >= {bs.min_mem.value:g} "
        f"({bs.min_mem.method})",
        witness=bs.describe(),
    )]

    try:
        reported_pt = gantt(ctx.schedule, comm).makespan
    except SchedulingError:
        reported_pt = None  # order cycle; SA304 owns that finding
    if reported_pt is not None:
        slack = _REL_EPS * max(1.0, abs(bs.pt.value))
        if reported_pt < bs.pt.value - slack:
            diags.append(Diagnostic.of(
                "SA402",
                f"reported PT {reported_pt:g} undercuts the certified "
                f"lower bound {bs.pt.value:g} ({bs.pt.method}); the cost "
                "model or plan is corrupt",
                witness=str(bs.pt),
            ))

    min_mem = ctx.profile.min_mem
    slack = _REL_EPS * max(1.0, abs(bs.min_mem.value))
    if min_mem < bs.min_mem.value - slack:
        diags.append(Diagnostic.of(
            "SA403",
            f"profiled MIN_MEM {min_mem:g} undercuts the certified "
            f"lower bound {bs.min_mem.value:g} ({bs.min_mem.method}); "
            "the memory profile is corrupt",
            witness=str(bs.min_mem),
        ))
    return diags
