"""LLVM-verifier-style pass over the compiled engine's lowered IR.

The array engine (ROADMAP item 1) lowers a ``CompiledSchedule`` in two
layers — :class:`~repro.machine.compiled.LoweredSchedule` (dense CSR
tables, spec/capacity-free) and :class:`~repro.machine.compiled
.ExecPlan` (per-processor SEG/TASK/MAP step programs with precomputed
costs).  Until now those layers were exercised only dynamically by the
differential oracle; a malformed lowering that happens to simulate
correctly on current workloads was invisible.  This module checks the
IR *structurally*, the way ``llvm::verifyModule`` checks a module:

``SA501`` **csr-well-formed**
    every pointer/index array pair is a valid CSR (monotone pointers,
    indices inside their id space) and the entity counts agree.
``SA502`` **id-space-bijective**
    tids/oids/mks/sks/groups invert exactly to the schedule's tasks,
    the graph's objects and the index dicts; the successor CSR matches
    ``TaskGraph.successor_map``.
``SA503`` **version-table-consistent**
    the static dispatch-version flags (``od_ok0``/``od_ow``), stale
    counters (``mk_need0``), pending counts and waiter lists agree with
    an independent recomputation from the schedule's wait-for data.
``SA504`` **opcode-stream-valid**
    each processor's step program covers its tasks exactly once and in
    order, SEG runs are genuinely silent (no remote inputs, no outgoing
    messages, no consumptions), and every step's table ranges are live.
``SA505`` **cost-table-sane**
    weights, sizes and precomputed message/package costs are finite,
    non-negative and reproduce the spec's cost expressions.

The verifier must *never* crash on corrupt IR: the SA501 structural
pass runs first and gates the deeper passes, and every pass is wrapped
so an unexpected exception becomes a diagnostic under that pass's code
instead of an escape.  Findings are capped per pass (:data:`MAX_FINDINGS`)
so a systematically broken table does not flood the report.

Entry points: :func:`verify_lowering` / :func:`verify_exec_plan`
(diagnostic lists), :func:`verify_report` (an
:class:`~repro.analysis.engine.AnalysisReport` for the CLI formats) and
:func:`debug_verify` (raises on errors; hooked into the engine's debug
path behind the ``REPRO_VERIFY_IR`` environment variable).
"""

from __future__ import annotations

import functools
from typing import Optional

from ..errors import SimulationError
from .diagnostics import Diagnostic

__all__ = [
    "MAX_FINDINGS",
    "debug_verify",
    "verify_exec_plan",
    "verify_lowering",
    "verify_report",
]

#: Per-pass finding cap; a corrupt table yields a representative sample,
#: not one diagnostic per row.
MAX_FINDINGS = 25

_NO_OVERWRITE = 1 << 60  # mirrors compiled._NO_OVERWRITE


def _guard(code: str):
    """Convert an unexpected crash of one pass into its own finding."""

    def deco(fn):
        @functools.wraps(fn)
        def run(*args, **kw) -> list[Diagnostic]:
            try:
                return fn(*args, **kw)
            except Exception as err:  # corrupt IR must not escape
                return [Diagnostic.of(
                    code,
                    f"verifier pass {fn.__name__} crashed on corrupt IR: "
                    f"{err!r}",
                )]
        return run

    return deco


# ----------------------------------------------------------------------
# SA501: CSR well-formedness
# ----------------------------------------------------------------------


def _check_csr(diags, name, ptr, idx, rows, space, space_name) -> None:
    if len(diags) >= MAX_FINDINGS:
        return
    ptr = list(ptr)
    idx = list(idx)
    if len(ptr) != rows + 1:
        diags.append(Diagnostic.of(
            "SA501",
            f"{name}: pointer array has {len(ptr)} entries for {rows} rows "
            f"(want {rows + 1})",
        ))
        return
    if ptr and ptr[0] != 0:
        diags.append(Diagnostic.of("SA501", f"{name}: ptr[0] = {ptr[0]} != 0"))
    for i in range(1, len(ptr)):
        if ptr[i] < ptr[i - 1]:
            diags.append(Diagnostic.of(
                "SA501",
                f"{name}: ptr[{i}] = {ptr[i]} < ptr[{i - 1}] = {ptr[i - 1]} "
                "(non-monotone)",
            ))
            return
    if ptr and ptr[-1] != len(idx):
        diags.append(Diagnostic.of(
            "SA501",
            f"{name}: ptr[-1] = {ptr[-1]} but index array holds "
            f"{len(idx)} entries",
        ))
    for j, v in enumerate(idx):
        if not 0 <= v < space:
            diags.append(Diagnostic.of(
                "SA501",
                f"{name}: index[{j}] = {v} outside {space_name} "
                f"[0, {space})",
            ))
            if len(diags) >= MAX_FINDINGS:
                return


@_guard("SA501")
def _csr_pass(lo) -> list[Diagnostic]:
    diags: list[Diagnostic] = []
    nt, nm, nsk = lo.num_tasks, lo.num_mk, lo.num_sk
    _check_csr(diags, "proc_start", lo.proc_start, [0] * nt,
               lo.num_procs, nt + 1, "tid-range")
    _check_csr(diags, "od_ptr/od_mk", lo.od_ptr, lo.od_mk, nt, nm, "mk-space")
    _check_csr(diags, "od_ptr/od_ak", lo.od_ptr, lo.od_ak, nt, lo.num_ak,
               "ak-space")
    _check_csr(diags, "od_ptr/od_dest", lo.od_ptr, lo.od_dest, nt,
               lo.num_procs, "proc-space")
    _check_csr(diags, "od_ptr/od_oid", lo.od_ptr, lo.od_oid, nt,
               lo.num_objects, "object-space")
    _check_csr(diags, "os_ptr/os_sk", lo.os_ptr, lo.os_sk, nt, nsk,
               "sk-space")
    _check_csr(diags, "cons_ptr/cons_mk", lo.cons_ptr, lo.cons_mk, nt, nm,
               "mk-space")
    _check_csr(diags, "wait_ptr/wait_tid", lo.wait_ptr, lo.wait_tid, nm, nt,
               "tid-space")
    _check_csr(diags, "swait_ptr/swait_tid", lo.swait_ptr, lo.swait_tid,
               nsk, nt, "tid-space")
    _check_csr(diags, "grp_ptr/grp_mk", lo.grp_ptr, lo.grp_mk, lo.num_grp,
               nm, "mk-space")
    _check_csr(diags, "succ_ptr/succ_tid", lo.succ_ptr, lo.succ_tid, nt, nt,
               "tid-space")
    return diags[:MAX_FINDINGS]


# ----------------------------------------------------------------------
# SA502: id-space bijectivity back to the schedule / graph
# ----------------------------------------------------------------------


@_guard("SA502")
def _bijection_pass(cs, lo) -> list[Diagnostic]:
    diags: list[Diagnostic] = []
    g, sched = cs.graph, cs.schedule

    def add(msg: str, **kw) -> bool:
        diags.append(Diagnostic.of("SA502", msg, **kw))
        return len(diags) >= MAX_FINDINGS

    if lo.num_tasks != g.num_tasks:
        add(f"{lo.num_tasks} lowered tasks for {g.num_tasks} graph tasks")
    flat = [t for order in sched.orders for t in order]
    if lo.task_name != flat:
        add("task_name does not equal the flattened processor orders")
    elif len(set(lo.task_name)) != len(lo.task_name):
        add("task_name contains duplicate tids")
    for q in range(lo.num_procs):
        lob, hib = int(lo.proc_start[q]), int(lo.proc_start[q + 1])
        if hib - lob != len(sched.orders[q]):
            if add(f"tid range [{lob}, {hib}) disagrees with the order "
                   f"length {len(sched.orders[q])}", proc=q):
                return diags

    if lo.num_objects != g.num_objects:
        add(f"{lo.num_objects} lowered objects for {g.num_objects} "
            "graph objects")
    for name, oid in g.object_index.items():
        if not (0 <= oid < len(lo.obj_name)) or lo.obj_name[oid] != name:
            if add(f"obj_name[{oid}] does not invert object_index[{name!r}]",
                   obj=name):
                return diags

    for (dest, m, unit), mk in lo.mk_index.items():
        if not (0 <= mk < lo.num_mk):
            if add(f"mk_index[{(dest, m, unit)!r}] = {mk} out of range"):
                return diags
            continue
        if (lo.mk_dest_l[mk] != dest
                or lo.mk_oname_l[mk] != m
                or lo.mk_uname_l[mk] != unit
                or lo.mk_oid_l[mk] != g.object_index[m]):
            if add(f"mk {mk} does not round-trip its key "
                   f"{(dest, m, unit)!r}", obj=m, proc=dest):
                return diags
    for (u, dest), sk in lo.sk_index.items():
        if not (0 <= sk < lo.num_sk) or lo.sk_dest_l[sk] != dest:
            if add(f"sk {sk} does not round-trip its key {(u, dest)!r}",
                   proc=dest):
                return diags

    # group partition: every mk appears exactly once, under its group.
    seen = [0] * lo.num_mk
    for gid in range(lo.num_grp):
        for j in range(int(lo.grp_ptr[gid]), int(lo.grp_ptr[gid + 1])):
            mk = int(lo.grp_mk[j])
            seen[mk] += 1
            if lo.grp_of_l[mk] != gid:
                if add(f"mk {mk} listed under group {gid} but grp_of says "
                       f"{lo.grp_of_l[mk]}"):
                    return diags
    bad = [mk for mk, n in enumerate(seen) if n != 1]
    if bad:
        add(f"groups do not partition the mk space (mks {bad[:5]} appear "
            "!= once)")

    # successor CSR == TaskGraph.successor_map.
    tid_of = {name: i for i, name in enumerate(lo.task_name)}
    smap = g.successor_map()
    for tid, name in enumerate(lo.task_name):
        want = {tid_of[v] for v in smap.get(name, {})}
        got = {int(lo.succ_tid[j])
               for j in range(int(lo.succ_ptr[tid]),
                              int(lo.succ_ptr[tid + 1]))}
        if want != got:
            if add(f"successor CSR of task {name!r} disagrees with the "
                   "graph", task=name):
                return diags
    return diags[:MAX_FINDINGS]


# ----------------------------------------------------------------------
# SA503: version tables / wait-for consistency
# ----------------------------------------------------------------------


@_guard("SA503")
def _version_pass(cs, lo) -> list[Diagnostic]:
    diags: list[Diagnostic] = []

    def add(msg: str, **kw) -> bool:
        diags.append(Diagnostic.of("SA503", msg, **kw))
        return len(diags) >= MAX_FINDINGS

    tid_of = {name: i for i, name in enumerate(lo.task_name)}
    for tid, name in enumerate(lo.task_name):
        want = cs.pending0.get(name, 0)
        if lo.pending0_l[tid] != want:
            if add(f"pending0[{tid}] = {lo.pending0_l[tid]} but the "
                   f"schedule needs {want} inputs", task=name):
                return diags
    for (dest, m, unit), mk in lo.mk_index.items():
        want_need = cs.need_count0[dest][(m, unit)]
        if lo.mk_need0_l[mk] != want_need:
            if add(f"mk_need0[{mk}] = {lo.mk_need0_l[mk]} but "
                   f"{want_need} stale copies are outstanding",
                   obj=m, proc=dest):
                return diags
        want_wait = sorted(tid_of[w] for w in cs.data_waiters[dest][(m, unit)])
        got_wait = sorted(
            int(lo.wait_tid[j])
            for j in range(int(lo.wait_ptr[mk]), int(lo.wait_ptr[mk + 1]))
        )
        if want_wait != got_wait:
            if add(f"waiter list of mk {mk} disagrees with data_waiters",
                   obj=m, proc=dest):
                return diags
    for (u, dest), sk in lo.sk_index.items():
        want_wait = sorted(tid_of[w] for w in cs.sync_waiters[dest][u])
        got_wait = sorted(
            int(lo.swait_tid[j])
            for j in range(int(lo.swait_ptr[sk]), int(lo.swait_ptr[sk + 1]))
        )
        if want_wait != got_wait:
            if add(f"waiter list of sk {sk} disagrees with sync_waiters",
                   proc=dest):
                return diags

    # Independent recomputation of the static dispatch-version flags.
    oid_of = cs.graph.object_index
    for q in range(lo.num_procs):
        ver: dict[int, str] = {}
        writes: dict[int, list[tuple[int, str]]] = {}
        lob, hib = int(lo.proc_start[q]), int(lo.proc_start[q + 1])
        for pos, tid in enumerate(range(lob, hib)):
            name = lo.task_name[tid]
            for m, uu in cs.write_version[name]:
                ver[oid_of[m]] = uu
                writes.setdefault(oid_of[m], []).append((pos, uu))
            for od in range(lo.od_ptr_l[tid], lo.od_ptr_l[tid + 1]):
                ok = ver.get(int(lo.od_oid[od])) == lo.od_uname_l[od]
                if bool(lo.od_ok0_l[od]) != ok:
                    if add(f"od_ok0[{od}] = {bool(lo.od_ok0_l[od])} but the "
                           f"order scan proves {ok}",
                           proc=q, task=name, obj=lo.od_oname_l[od]):
                        return diags
        for pos, tid in enumerate(range(lob, hib)):
            for od in range(lo.od_ptr_l[tid], lo.od_ptr_l[tid + 1]):
                req = lo.od_uname_l[od]
                ow = _NO_OVERWRITE
                for wpos, uu in writes.get(int(lo.od_oid[od]), ()):
                    if wpos > pos and uu != req:
                        ow = wpos
                        break
                if lo.od_ow_l[od] != ow:
                    if add(f"od_ow[{od}] = {lo.od_ow_l[od]} but the first "
                           f"invalidating overwrite is at {ow}",
                           proc=q, obj=lo.od_oname_l[od]):
                        return diags
    return diags[:MAX_FINDINGS]


# ----------------------------------------------------------------------
# SA504: opcode-stream validity (ExecPlan)
# ----------------------------------------------------------------------

_SEG_OP, _TASK_OP, _MAP_OP = 0, 1, 2


@_guard("SA504")
def _opcode_pass(lo, ep) -> list[Diagnostic]:
    diags: list[Diagnostic] = []

    def add(msg: str, **kw) -> bool:
        diags.append(Diagnostic.of("SA504", msg, **kw))
        return len(diags) >= MAX_FINDINGS

    def silent(tid: int) -> bool:
        return (lo.pending0_l[tid] == 0
                and lo.od_ptr_l[tid] == lo.od_ptr_l[tid + 1]
                and lo.os_ptr_l[tid] == lo.os_ptr_l[tid + 1]
                and lo.cons_ptr_l[tid] == lo.cons_ptr_l[tid + 1])

    if len(ep.steps) != lo.num_procs:
        add(f"{len(ep.steps)} step programs for {lo.num_procs} processors")
        return diags
    covered = 0
    for q in range(lo.num_procs):
        cursor = int(lo.proc_start[q])
        end = int(lo.proc_start[q + 1])
        for si, step in enumerate(ep.steps[q]):
            op = step[0]
            if op == _MAP_OP:
                _, cost, flo, fhi, alo, ahi, plo, phi = step
                if not (0 <= flo <= fhi <= len(ep.mf_oid_l)
                        and 0 <= alo <= ahi <= len(ep.ma_oid_l)
                        and 0 <= plo <= phi <= len(ep.pkg_dst_l)):
                    if add(f"MAP step {si} references free/alloc/package "
                           "ranges outside their tables", proc=q):
                        return diags
            elif op == _SEG_OP:
                ws, n = step[1], step[4]
                if n != len(ws):
                    if add(f"SEG step {si} claims {n} tasks but carries "
                           f"{len(ws)} weights", proc=q):
                        return diags
                    continue
                for k in range(n):
                    tid = cursor + k
                    if tid >= end:
                        if add(f"SEG step {si} runs past P{q}'s order",
                               proc=q):
                            return diags
                        break
                    if not silent(tid):
                        if add(f"SEG step {si} covers task "
                               f"{lo.task_name[tid]!r} which is not silent "
                               "(it has inputs, messages or consumptions)",
                               proc=q, task=lo.task_name[tid],
                               position=tid - int(lo.proc_start[q])):
                            return diags
                    if ws[k] != lo.weight_l[tid]:
                        if add(f"SEG step {si} weight {ws[k]!r} disagrees "
                               f"with task {lo.task_name[tid]!r}",
                               proc=q, task=lo.task_name[tid]):
                            return diags
                cursor += n
                covered += n
            elif op == _TASK_OP:
                tid = step[1]
                if tid != cursor:
                    if add(f"TASK step {si} executes tid {tid} but the "
                           f"program position expects tid {cursor}", proc=q):
                        return diags
                    cursor = tid  # resync to keep later findings meaningful
                if not (int(lo.proc_start[q]) <= tid < end):
                    if add(f"TASK step {si} tid {tid} outside P{q}'s range",
                           proc=q):
                        return diags
                    continue
                want = (
                    _TASK_OP, tid, lo.weight_l[tid],
                    lo.od_ptr_l[tid], lo.od_ptr_l[tid + 1],
                    lo.os_ptr_l[tid], lo.os_ptr_l[tid + 1],
                    lo.cons_ptr_l[tid], lo.cons_ptr_l[tid + 1],
                )
                if tuple(step) != want:
                    if add(f"TASK step {si} ranges disagree with the "
                           f"lowering of {lo.task_name[tid]!r}",
                           proc=q, task=lo.task_name[tid]):
                        return diags
                cursor += 1
                covered += 1
            else:
                if add(f"step {si} has unknown opcode {op!r}", proc=q):
                    return diags
        if cursor != end:
            if add(f"step program covers tids up to {cursor} but P{q}'s "
                   f"order ends at {end}", proc=q):
                return diags
    if covered != lo.num_tasks and not diags:
        add(f"step programs cover {covered}/{lo.num_tasks} tasks")
    return diags[:MAX_FINDINGS]


# ----------------------------------------------------------------------
# SA505: cost-table sanity
# ----------------------------------------------------------------------


def _finite_nonneg(x) -> bool:
    return x == x and x >= 0.0 and x != float("inf")


@_guard("SA505")
def _cost_pass(lo, ep) -> list[Diagnostic]:
    diags: list[Diagnostic] = []

    def add(msg: str, **kw) -> bool:
        diags.append(Diagnostic.of("SA505", msg, **kw))
        return len(diags) >= MAX_FINDINGS

    for tid, w in enumerate(lo.weight_l):
        if not _finite_nonneg(w):
            if add(f"task weight[{tid}] = {w!r} is not finite non-negative",
                   task=lo.task_name[tid]):
                return diags
    for oid, sz in enumerate(lo.obj_size_l):
        if sz < 0:
            if add(f"obj_size[{oid}] = {sz} is negative",
                   obj=lo.obj_name[oid]):
                return diags
    for q, pb in enumerate(lo.perm_bytes):
        if pb < 0:
            if add(f"perm_bytes[P{q}] = {pb} is negative", proc=q):
                return diags
    for od, nb in enumerate(lo.od_nbytes.tolist()):
        if nb < 0:
            if add(f"od_nbytes[{od}] = {nb} is negative"):
                return diags

    if ep is not None:
        spec = ep.spec
        nbytes = lo.od_nbytes.tolist()
        for od in range(len(nbytes)):
            if ep.od_net_l[od] != spec.message_time(nbytes[od]):
                if add(f"od_net[{od}] = {ep.od_net_l[od]!r} does not "
                       "reproduce spec.message_time"):
                    return diags
            if ep.od_nic_l[od] != nbytes[od] * spec.byte_time:
                if add(f"od_nic[{od}] = {ep.od_nic_l[od]!r} does not "
                       "reproduce spec.byte_time"):
                    return diags
        for k, cost in enumerate(ep.pkg_cost_l):
            want = (spec.package_overhead
                    + len(ep.pkg_objs[k]) * spec.address_cost)
            if cost != want:
                if add(f"pkg_cost[{k}] = {cost!r} != package_overhead + "
                       f"{len(ep.pkg_objs[k])} * address_cost"):
                    return diags
        for q, prog in enumerate(ep.steps):
            for si, step in enumerate(prog):
                if step[0] == _SEG_OP and not _finite_nonneg(step[2]):
                    if add(f"SEG step {si} weight sum {step[2]!r} is not "
                           "finite non-negative", proc=q):
                        return diags
                if step[0] == _MAP_OP and not _finite_nonneg(step[1]):
                    if add(f"MAP step {si} cost {step[1]!r} is not finite "
                           "non-negative", proc=q):
                        return diags
    return diags[:MAX_FINDINGS]


# ----------------------------------------------------------------------
# entry points
# ----------------------------------------------------------------------


def verify_lowering(cs) -> list[Diagnostic]:
    """Verify the spec-free lowering of ``cs`` (SA501-SA503, SA505).

    The structural SA501 pass gates the deeper passes: on a CSR that is
    not even well formed, bijectivity/version walks would chase wild
    indices, so only the structural findings are reported.
    """
    from ..machine.compiled import lower_schedule

    lo = lower_schedule(cs)
    diags = _csr_pass(lo)
    if diags:
        return diags
    diags += _bijection_pass(cs, lo)
    diags += _version_pass(cs, lo)
    diags += _cost_pass(lo, None)
    return diags


def verify_exec_plan(
    cs,
    capacity: int,
    spec,
    memory_managed: bool = True,
    preknown: bool = False,
) -> list[Diagnostic]:
    """Verify the lowering *and* the step programs of one exec plan.

    A capacity below MIN_MEM admits no exec plan at all; the verifier
    then degrades to the lowering-level passes — the non-executability
    verdict itself belongs to the analyzer's ``SA101``, not to SA5xx.
    """
    from ..errors import NonExecutableScheduleError
    from ..machine.compiled import get_exec_plan, lower_schedule

    diags = verify_lowering(cs)
    if any(d.rule == "SA501" for d in diags):
        return diags
    try:
        ep = get_exec_plan(cs, capacity, spec, memory_managed, preknown)
    except NonExecutableScheduleError:
        return diags
    lo = lower_schedule(cs)
    diags += _opcode_pass(lo, ep)
    diags += _cost_pass(lo, ep)
    # the lowering-level cost findings were already collected once
    seen: set[tuple] = set()
    uniq = []
    for d in diags:
        key = (d.rule, d.message)
        if key not in seen:
            seen.add(key)
            uniq.append(d)
    return uniq


def verify_report(
    cs,
    capacity: Optional[int] = None,
    spec=None,
    memory_managed: bool = True,
    preknown: bool = False,
    label: str = "",
):
    """Run the verifier and wrap the findings as an ``AnalysisReport``
    (same rendering/JSON/SARIF surface as ``analyze_schedule``)."""
    from .engine import AnalysisReport

    if capacity is not None and spec is not None:
        diags = verify_exec_plan(cs, capacity, spec, memory_managed, preknown)
        cap = capacity
    else:
        diags = verify_lowering(cs)
        cap = capacity if capacity is not None else 0
    report = AnalysisReport(
        label=label or "irverify",
        capacity=cap,
        num_procs=cs.num_procs,
    )
    report.diagnostics.extend(diags)
    return report


def debug_verify(cs, ep=None) -> None:
    """Raise :class:`~repro.errors.SimulationError` on any IR error.

    Hooked into :func:`repro.machine.compiled.lower_schedule` /
    :func:`~repro.machine.compiled.get_exec_plan` when the
    ``REPRO_VERIFY_IR`` environment variable is set (the engine's debug
    path); ``ep`` skips re-deriving the plan the caller just built.
    """
    from ..machine.compiled import lower_schedule

    lo = lower_schedule(cs)
    diags = _csr_pass(lo)
    if not diags:
        diags += _bijection_pass(cs, lo)
        diags += _version_pass(cs, lo)
        diags += _cost_pass(lo, None)
        if ep is not None:
            diags += _opcode_pass(lo, ep)
            diags += _cost_pass(lo, ep)
    errors = [d for d in diags if d.severity >= 2]
    if errors:
        body = "; ".join(str(d) for d in errors[:5])
        raise SimulationError(
            f"lowered-IR verification failed ({len(errors)} finding(s)): "
            f"{body}"
        )
