"""Liveness sanitizer pass: the MAP plan's free/alloc chains against the
volatile life spans (Definitions 3-4).

Two-tier check per processor.  The fast tier replays only the MAP
points, collecting per-object *residency intervals* (task-position
ranges during which the object is allocated), and verifies every
volatile live span is covered — O(plan + volatile objects), independent
of how many accesses each task makes, and exact for clean processors
because accesses can only happen inside the span.  Only when a span has
a residency gap does the slow tier walk the interleaving of MAPs and
tasks (a MAP at position ``i`` acts immediately before task ``i``),
tracking the allocated set exactly like the machine's
:class:`~repro.machine.memory.ObjectAllocator` would, to anchor each
finding at the first real access that misses its object:

``SA201`` use-after-free, ``SA202`` double-free / free of a
never-allocated object, ``SA203`` leaked volatile (dead but surviving a
later MAP), ``SA204`` dead allocation (never accessed on the
processor), ``SA205`` use without allocation, ``SA206`` double
allocation.

Plans from :func:`repro.core.maps.plan_maps` are clean by construction
(the property tests assert it); the sanitizer exists for hand-built and
mutated plans, and as the static shadow of the dynamic
``input-residency`` / ``landing-space`` invariants.
"""

from __future__ import annotations

from .diagnostics import Diagnostic

__all__ = ["sanitizer_pass"]


def sanitizer_pass(ctx) -> list[Diagnostic]:
    if ctx.plan is None:
        return []
    diags: list[Diagnostic] = []
    for p, order in enumerate(ctx.schedule.orders):
        span = ctx.profile.procs[p].span
        found, covered = _replay_proc(ctx, p, order, span)
        if covered:
            diags.extend(found)
        else:
            diags.extend(_walk_proc(ctx, p, order, span))
    return diags


def _replay_proc(ctx, p: int, order, span) -> tuple[list[Diagnostic], bool]:
    """Fast tier: MAP-only replay plus span-coverage check.

    Returns ``(diagnostics, covered)``; the diagnostics are only valid
    when ``covered`` is True (every live span sits inside its object's
    residency intervals, so no access can miss its object and the
    MAP-chain findings are the complete story).
    """
    diags: list[Diagnostic] = []
    n = len(order)
    allocated: dict[str, int] = {}  # object -> current interval start
    ever_allocated: dict[str, None] = {}  # insertion = plan order
    intervals: dict[str, list[tuple[int, int]]] = {}
    last_map_pos = -1
    pts = ctx.plan.points[p]
    if any(a.position > b.position for a, b in zip(pts, pts[1:])):
        pts = sorted(pts, key=lambda m: m.position)
    for mp in pts:
        pos = min(mp.position, n)
        if mp.position > last_map_pos:
            last_map_pos = mp.position
        for o in mp.frees:
            start = allocated.pop(o, None)
            if start is None:
                why = ("already freed" if o in intervals
                       else "never allocated")
                diags.append(Diagnostic.of(
                    "SA202",
                    f"MAP frees {o!r} which is {why}",
                    proc=p, position=mp.position, obj=o,
                ))
                continue
            intervals.setdefault(o, []).append((start, pos))
        for o in mp.allocs:
            if o in allocated:
                diags.append(Diagnostic.of(
                    "SA206",
                    f"MAP allocates {o!r} which is already allocated",
                    proc=p, position=mp.position, obj=o,
                ))
                continue
            allocated[o] = pos
            ever_allocated[o] = None
    for o, start in allocated.items():
        intervals.setdefault(o, []).append((start, n + 1))

    for o, (first, last) in span.items():
        q = first
        for start, end in intervals.get(o, ()):
            if end <= q:
                continue
            if start > q:
                break  # residency gap at position q
            q = end
            if q > last:
                break
        if q <= last:
            return diags, False

    for o in ever_allocated:
        if o not in span:
            diags.append(Diagnostic.of(
                "SA204",
                f"{o!r} is allocated but no task on P{p} accesses it",
                proc=p, obj=o,
            ))
        elif o in allocated and span[o][1] < last_map_pos:
            diags.append(Diagnostic.of(
                "SA203",
                f"{o!r} died at position {span[o][1]} but survived "
                f"the MAP at position {last_map_pos} unfreed",
                proc=p, position=span[o][1], obj=o,
            ))
    return diags, True


def _walk_proc(ctx, p: int, order, span) -> list[Diagnostic]:
    """Slow tier: the exact MAP/task interleaving, anchoring ``SA201``
    and ``SA205`` at the first access that misses its object."""
    diags: list[Diagnostic] = []
    g = ctx.schedule.graph
    n = len(order)
    maps_at: dict[int, list] = {}
    for mp in ctx.plan.points[p]:
        maps_at.setdefault(min(mp.position, n), []).append(mp)

    allocated: set[str] = set()
    freed: set[str] = set()
    ever_allocated: set[str] = set()
    last_map_pos = -1
    for i in range(n + 1):
        for mp in maps_at.get(i, ()):
            last_map_pos = max(last_map_pos, mp.position)
            for o in mp.frees:
                if o not in allocated:
                    why = ("already freed" if o in freed
                           else "never allocated")
                    diags.append(Diagnostic.of(
                        "SA202",
                        f"MAP frees {o!r} which is {why}",
                        proc=p, position=mp.position, obj=o,
                    ))
                    continue
                allocated.discard(o)
                freed.add(o)
            for o in mp.allocs:
                if o in allocated:
                    diags.append(Diagnostic.of(
                        "SA206",
                        f"MAP allocates {o!r} which is already "
                        "allocated",
                        proc=p, position=mp.position, obj=o,
                    ))
                    continue
                allocated.add(o)
                ever_allocated.add(o)
        if i == n:
            break
        task = order[i]
        for o in g.task(task).accesses:
            if o not in span or o in allocated:
                continue  # permanent, or properly allocated
            if o in freed:
                diags.append(Diagnostic.of(
                    "SA201",
                    f"{task} accesses {o!r} after a MAP freed it "
                    f"(live span {span[o][0]}..{span[o][1]})",
                    proc=p, position=i, task=task, obj=o,
                ))
            else:
                diags.append(Diagnostic.of(
                    "SA205",
                    f"{task} accesses volatile {o!r} but no MAP "
                    "allocated it",
                    proc=p, position=i, task=task, obj=o,
                ))
            # Flag each missing object once, at its first use.
            allocated.add(o)
            ever_allocated.add(o)

    for o in sorted(ever_allocated):
        if o not in span:
            diags.append(Diagnostic.of(
                "SA204",
                f"{o!r} is allocated but no task on P{p} accesses it",
                proc=p, obj=o,
            ))
        elif o in allocated and span[o][1] < last_map_pos:
            diags.append(Diagnostic.of(
                "SA203",
                f"{o!r} died at position {span[o][1]} but survived "
                f"the MAP at position {last_map_pos} unfreed",
                proc=p, position=span[o][1], obj=o,
            ))
    return diags
