"""Batch analysis and the static/dynamic differential contract.

:func:`analyze_batch` statically analyzes exactly the cases
``repro check`` simulates (same seeds, same heuristics, same capacity
resolution), so every :class:`~repro.conformance.check.CheckReport` has
a twin :class:`~repro.analysis.engine.AnalysisReport` with the same
label — the differential suite zips them.

The contract between the verdicts:

* ``SA1xx``/``SA2xx`` errors predict an *unconditional* dynamic
  failure: a non-executable plan raises, a bad free/alloc chain aborts
  the allocator or trips ``input-residency``/``landing-space``.
* ``SA3xx`` hazards predict failure under the *adversarial* regime
  (the ``overwrite`` fault, which makes the one-slot channel lossy as
  Definition 4 warns).  Without the fault the simulator's blocking
  protocol can mask a buggy plan — the hazard is still real, which is
  exactly why the static check exists.
* Timing faults (delay/jitter/consume/slow/tighten) never change the
  plan, so a clean static verdict predicts a clean checked run — the
  golden fault matrix agrees.

Conformance imports are deferred into the functions: ``repro.analysis``
depends only on ``core``, while ``repro.conformance`` may annotate its
violations with this package's rule codes.
"""

from __future__ import annotations

from typing import Optional, Sequence

from .engine import AnalysisReport, analyze_schedule

__all__ = ["analyze_batch", "analyze_overwrite_demo"]


def analyze_batch(
    seed: int,
    *,
    graphs: int = 10,
    procs: int = 3,
    heuristics: Sequence[str] = ("rcp", "mpo", "dts"),
    fraction: Optional[float] = 0.5,
    faults=None,
    tasks: int = 30,
    objects: int = 6,
    include_paper: bool = True,
) -> list[AnalysisReport]:
    """Static twin of :func:`repro.conformance.check.check_batch`.

    ``faults`` only contributes its ``capacity_fraction`` (the *tighten*
    knob): timing faults do not change the schedule or plan, so the
    static verdict is the same with or without them.
    """
    from ..conformance.check import _ORDERINGS, batch_cases

    frac = fraction
    if faults is not None and faults.capacity_fraction is not None:
        frac = faults.capacity_fraction
    reports: list[AnalysisReport] = []
    for name, g, pl, asg in batch_cases(
        seed, graphs=graphs, procs=procs, tasks=tasks, objects=objects,
        include_paper=include_paper,
    ):
        for h in heuristics:
            sched = _ORDERINGS[h](g, pl, asg)
            reports.append(
                analyze_schedule(sched, fraction=frac, label=f"{name}/{h}")
            )
    return reports


def analyze_overwrite_demo() -> AnalysisReport:
    """Static analysis of the buggy-planner scenario behind
    :func:`repro.conformance.check.overwrite_demo`: expects ``SA302``
    (both packages race P1's slot) and ``SA301`` with the same
    ``P0 -> P1 -> P0`` cycle the dynamic witness shows."""
    from ..conformance.check import overwrite_scenario

    sched, plan, capacity = overwrite_scenario()
    return analyze_schedule(
        sched, capacity=capacity, plan=plan, label="overwrite-demo"
    )
