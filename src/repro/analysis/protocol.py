"""Protocol pass: the one-slot address-package channel and Theorem 1.

Builds the *static wait-for graph* over processors from three sources
and runs Tarjan's SCC (the :func:`repro.core.dcg.tarjan_scc` machinery
the DCG slicer uses) to find deadlock cycles:

1. **Order cycles** (``SA304``): the per-processor orders conflict with
   the dependence DAG — the combined graph (dependence plus sequence
   edges, exactly :func:`repro.core.schedule.gantt`'s graph) is cyclic,
   so some task can never become ready.
2. **Missing notifications** (``SA303``): an allocated volatile object
   whose owner is never sent the address.  The owner's RMA put suspends
   forever (it waits on the destination), and the destination's
   consumer tasks wait on the owner's data.
3. **Slot-overwrite hazards** (``SA302``): two consecutive address
   packages from one processor to one destination with no consuming
   task in between.  Under Definition 4's one-package-in-flight rule
   a plan must *self-throttle*: some object of the earlier package has
   its first use before the later MAP's position, which proves the
   destination performed its RA (it deposited the data the consuming
   task ran on) before the next SND.  Without such a witness task the
   unbuffered slot can be overwritten, the earlier addresses are lost,
   and the same two wait-for edges as case 2 appear.

Every hazard contributes directed edges to the wait-for graph; a
strongly connected component of two or more processors is reported as
``SA301`` with a witness in the exact shape of
:func:`repro.conformance.invariants.deadlock_witness` (``wait-for:``
lines plus a ``cycle: P0 -> P1 -> P0`` line), so static and dynamic
reports can be compared textually.
"""

from __future__ import annotations

from ..core.dcg import tarjan_scc
from .diagnostics import Diagnostic

__all__ = ["protocol_pass"]


def protocol_pass(ctx) -> list[Diagnostic]:
    diags: list[Diagnostic] = []
    #: directed wait-for edges: (waiter, holder) -> reasons.
    edges: dict[tuple[int, int], list[str]] = {}

    def wait(a: int, b: int, why: str) -> None:
        if a != b:
            edges.setdefault((a, b), []).append(why)

    _order_cycles(ctx, diags, wait)
    if ctx.plan is not None:
        _package_hazards(ctx, diags, wait)
    _deadlock_cycles(ctx, diags, edges)
    return diags


# ---------------------------------------------------------------------
# 1) combined-graph acyclicity (Definition 1)
# ---------------------------------------------------------------------

def _order_cycles(ctx, diags, wait) -> None:
    """Kahn over dependence + sequence edges; stuck tasks form cycles.

    Runs on the graph's internal adjacency (in-degrees counted from the
    successor map) so the hot loop touches plain dicts instead of
    per-node graph accessors."""
    g = ctx.schedule.graph
    asg = ctx.schedule.assignment
    prev_on_proc: dict[str, str] = {}
    next_on_proc: dict[str, str] = {}
    for order in ctx.schedule.orders:
        for i, t in enumerate(order):
            if i > 0:
                prev_on_proc[t] = order[i - 1]
                next_on_proc[order[i - 1]] = t
    names = g.task_names
    succ = g.successor_map()
    pred = g.predecessor_map()
    indeg = {n: len(pred[n]) for n in names}
    for t, prev in prev_on_proc.items():
        if t not in succ[prev]:
            indeg[t] += 1

    ready = [n for n in names if indeg[n] == 0]
    done = 0
    while ready:
        u = ready.pop()
        done += 1
        for v in succ[u]:
            indeg[v] -= 1
            if indeg[v] == 0:
                ready.append(v)
        nxt = next_on_proc.get(u)
        if nxt is not None and nxt not in succ[u]:
            indeg[nxt] -= 1
            if indeg[nxt] == 0:
                ready.append(nxt)
    if done == g.num_tasks:
        return

    stuck = sorted(n for n in g.task_names if indeg[n] > 0)
    cycle = _task_cycle(g, set(stuck), next_on_proc)
    shown = " -> ".join(cycle) if cycle else ", ".join(stuck[:5])
    diags.append(Diagnostic.of(
        "SA304",
        f"{len(stuck)} task(s) can never become ready; cycle: {shown}",
        task=stuck[0],
        proc=asg.get(stuck[0]),
    ))
    if cycle:
        # Each adjacency t_i -> t_{i+1} means t_{i+1} waits for t_i.
        for a, b in zip(cycle, cycle[1:]):
            wait(asg[b], asg[a], f"task {b!r} ordered after {a!r}")


def _task_cycle(g, stuck: set, next_on_proc) -> list:
    """A cycle inside the stuck subgraph of the combined graph, as
    ``[t0, t1, ..., t0]``; DFS, mirrors ``find_cycle``."""

    def succs(u):
        out = [v for v in g.successors(u) if v in stuck]
        nxt = next_on_proc.get(u)
        if nxt is not None and nxt in stuck and nxt not in out:
            out.append(nxt)
        return out

    grey: set = set()
    black: set = set()
    stack: list = []

    def dfs(u) -> list:
        grey.add(u)
        stack.append(u)
        for v in succs(u):
            if v in grey:
                return stack[stack.index(v):] + [v]
            if v not in black:
                found = dfs(v)
                if found:
                    return found
        stack.pop()
        grey.discard(u)
        black.add(u)
        return []

    for t in sorted(stuck):
        if t not in black:
            found = dfs(t)
            if found:
                return found
    return []


# ---------------------------------------------------------------------
# 2 + 3) address packages on the one-slot channel (Definitions 3-4)
# ---------------------------------------------------------------------

def _package_hazards(ctx, diags, wait) -> None:
    plan = ctx.plan
    owner_map = ctx.schedule.placement.owner
    for p in range(ctx.schedule.num_procs):
        pp = ctx.profile.procs[p]
        pts = plan.points[p]

        # One scan of the plan collects everything both checks need:
        # first-allocation indices, per-destination notified sets and
        # package sequences — all in deterministic plan order.
        alloc_at: dict[str, int] = {}
        notified: dict[int, set[str]] = {}
        by_dest: dict[int, list] = {}
        for k, mp in enumerate(pts):
            for o in mp.allocs:
                alloc_at.setdefault(o, k)
            for dest, objs in mp.notifications.items():
                if objs:
                    notified.setdefault(dest, set()).update(objs)
                    by_dest.setdefault(dest, []).append((mp, tuple(objs)))

        # SA303: every allocated volatile must be notified to its owner.
        for o in alloc_at:
            owner = owner_map[o]
            if owner == p:
                continue
            if o not in notified.get(owner, ()):
                mp = pts[alloc_at[o]]
                diags.append(Diagnostic.of(
                    "SA303",
                    f"{o!r} is allocated but its owner P{owner} is never "
                    "notified of the address",
                    proc=p, position=mp.position, obj=o,
                ))
                wait(owner, p,
                     f"put of {o!r} suspended: address never notified")
                wait(p, owner, f"data {o!r} never deposited")

        # SA302: consecutive packages to one destination need a
        # consuming task between them (the self-throttling witness).
        for dest in sorted(by_dest):
            pkgs = by_dest[dest]
            for (mp_a, objs_a), (mp_b, _objs_b) in zip(pkgs, pkgs[1:]):
                throttled = any(
                    pp.first_use(o) is not None
                    and pp.first_use(o) < mp_b.position
                    for o in objs_a
                )
                if throttled:
                    continue
                lost = ", ".join(repr(o) for o in objs_a)
                diags.append(Diagnostic.of(
                    "SA302",
                    f"package to P{dest} from the MAP at position "
                    f"{mp_a.position} ({lost}) has no consuming task "
                    f"before the next package at position "
                    f"{mp_b.position}; the slot can be overwritten",
                    proc=p, position=mp_b.position, obj=objs_a[0],
                ))
                for o in objs_a:
                    wait(dest, p,
                         f"put of {o!r} suspended: address package "
                         "overwritten")
                    wait(p, dest, f"data {o!r} never deposited")


# ---------------------------------------------------------------------
# SCC over the wait-for graph (Theorem 1)
# ---------------------------------------------------------------------

def _deadlock_cycles(ctx, diags, edges) -> None:
    if not edges:
        return
    nodes: set[int] = set()
    for a, b in edges:
        nodes.update((a, b))
    succ: dict[int, set[int]] = {n: set() for n in nodes}
    for a, b in edges:
        succ[a].add(b)
    comp = tarjan_scc(succ)
    members: dict[int, list[int]] = {}
    for n, c in comp.items():
        members.setdefault(c, []).append(n)
    for c in sorted(members, key=lambda c: min(members[c])):
        group = sorted(members[c])
        if len(group) < 2:
            continue
        cycle = _proc_cycle(succ, group)
        witness = _witness(edges, group, cycle)
        rendered = " -> ".join(f"P{q}" for q in cycle)
        diags.append(Diagnostic.of(
            "SA301",
            f"static wait-for cycle: {rendered}",
            proc=cycle[0],
            cycle=tuple(cycle),
            witness=witness,
        ))


def _proc_cycle(succ, group: list[int]) -> list[int]:
    """A cycle within one SCC, ``[p0, ..., p0]`` starting at the
    smallest member."""
    inside = set(group)
    start = group[0]
    stack = [start]
    seen = {start}
    while True:
        u = stack[-1]
        nxt = sorted(v for v in succ[u] if v in inside)
        target = next((v for v in nxt if v == start), None)
        if target is not None and len(stack) > 1:
            return stack + [start]
        advanced = False
        for v in nxt:
            if v not in seen:
                seen.add(v)
                stack.append(v)
                advanced = True
                break
        if not advanced:
            # All neighbours visited: close on the first repeat.
            v = nxt[0]
            return stack[stack.index(v):] + [v]


def _witness(edges, group: list[int], cycle: list[int]) -> str:
    """Witness report in :func:`deadlock_witness`'s shape."""
    inside = set(group)
    lines = [
        "STATIC DEADLOCK: wait-for cycle over "
        + ", ".join(f"P{q}" for q in group)
    ]
    for (a, b), reasons in sorted(edges.items()):
        if a in inside and b in inside:
            for why in reasons:
                lines.append(f"  P{a}: waits for P{b} ({why})")
    waits: dict[int, set[int]] = {}
    for (a, b) in edges:
        if a in inside and b in inside:
            waits.setdefault(a, set()).add(b)
    for q in sorted(waits):
        deps = ", ".join(f"P{d}" for d in sorted(waits[q]))
        lines.append(f"  wait-for: P{q} -> {{{deps}}}")
    lines.append("  cycle: " + " -> ".join(f"P{q}" for q in cycle))
    return "\n".join(lines)
