"""Exchange formats for analysis reports: text, JSON, SARIF.

The JSON schema is ``repro-analysis/1``; the SARIF export targets the
2.1.0 standard (one run, one result per diagnostic, the rule catalogue
in the tool's driver) so CI systems can annotate findings natively.
Both are deterministic — no timestamps, stable ordering — so golden
files and ``--jobs`` comparisons stay byte-identical.
"""

from __future__ import annotations

from typing import Iterable, Optional

from .diagnostics import RULES, Severity
from .engine import AnalysisReport

__all__ = ["render_text", "to_json", "to_sarif"]

JSON_SCHEMA = "repro-analysis/1"
SARIF_SCHEMA = "https://json.schemastore.org/sarif-2.1.0.json"

_SARIF_LEVEL = {
    Severity.ERROR: "error",
    Severity.WARNING: "warning",
    Severity.INFO: "note",
}


def render_text(reports: Iterable[AnalysisReport], hints: bool = False) -> str:
    return "\n".join(r.render(hints=hints) for r in reports)


def to_json(reports: Iterable[AnalysisReport]) -> dict:
    runs = []
    for r in reports:
        runs.append({
            "label": r.label,
            "capacity": r.capacity,
            "num_procs": r.num_procs,
            "ok": r.ok,
            "findings": [
                {
                    "rule": d.rule,
                    "name": d.rule_info.name,
                    "severity": d.severity.label,
                    "message": d.message,
                    "anchor": d.anchor,
                    "proc": d.proc,
                    "task": d.task,
                    "obj": d.obj,
                    "position": d.position,
                    "cycle": list(d.cycle) if d.cycle else None,
                    "witness": d.witness,
                    "hint": d.hint,
                }
                for d in r.diagnostics
            ],
        })
    return {"schema": JSON_SCHEMA, "runs": runs}


def _logical_location(d) -> Optional[dict]:
    loc = d.location()
    if not loc:
        return None
    return {"logicalLocations": [{"name": loc, "kind": "element"}]}


def to_sarif(reports: Iterable[AnalysisReport]) -> dict:
    """Minimal SARIF 2.1.0 document for CI annotation."""
    results = []
    for r in reports:
        for d in r.diagnostics:
            res = {
                "ruleId": d.rule,
                "level": _SARIF_LEVEL[d.severity],
                "message": {"text": f"{r.label}: {d.message}"},
            }
            loc = _logical_location(d)
            if loc is not None:
                res["locations"] = [loc]
            if d.cycle:
                res["properties"] = {"cycle": list(d.cycle)}
            results.append(res)
    driver = {
        "name": "repro-analyze",
        "informationUri": "https://example.invalid/repro",
        "rules": [
            {
                "id": rule.code,
                "name": rule.name,
                "shortDescription": {"text": rule.summary},
                "help": {"text": rule.hint},
                "properties": {"anchor": rule.anchor},
                "defaultConfiguration": {
                    "level": _SARIF_LEVEL[rule.severity],
                },
            }
            for rule in RULES.values()
        ],
    }
    return {
        "$schema": SARIF_SCHEMA,
        "version": "2.1.0",
        "runs": [{"tool": {"driver": driver}, "results": results}],
    }
