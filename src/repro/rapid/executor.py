"""Executors: serial numeric execution and schedule linearization.

Two layers of execution exist in the reproduction:

* the **timed** executor is :class:`repro.machine.simulator.Simulator`
  (distributed memory, RMA, active memory management);
* the **numeric** executor here runs the tasks' Python kernels against a
  shared object store, in an order consistent with a given schedule —
  used to verify that every schedule the library produces preserves the
  program semantics (the dependence-completeness guarantee of
  section 3.4: any dependence-respecting interleaving computes the same
  values).
"""

from __future__ import annotations

from collections import deque
from typing import Optional, Sequence

from ..core.schedule import Schedule
from ..errors import SchedulingError
from ..graph.taskgraph import TaskGraph


def execute_serial(
    graph: TaskGraph, store: dict, order: Optional[Sequence[str]] = None
) -> dict:
    """Run every task kernel in ``order`` (default: a topological order).

    Tasks without kernels are skipped (pure-timing graphs).  Returns the
    store for chaining.
    """
    seq = list(order) if order is not None else graph.topological_order()
    if len(seq) != graph.num_tasks:
        raise SchedulingError(
            f"order covers {len(seq)} of {graph.num_tasks} tasks"
        )
    for name in seq:
        t = graph.task(name)
        if t.kernel is not None:
            t.kernel(store)
    return store


def global_order(schedule: Schedule) -> list[str]:
    """A single global linearization consistent with a schedule.

    Merges the per-processor orders with the dependence edges (Kahn on
    the combined graph, FIFO among simultaneously-free tasks).  Raises
    when the schedule conflicts with the dependences.
    """
    g = schedule.graph
    indeg: dict[str, int] = {}
    prev: dict[str, str] = {}
    for order in schedule.orders:
        for i, t in enumerate(order):
            if i > 0:
                prev[t] = order[i - 1]
    for t in g.task_names:
        d = g.in_degree(t)
        p = prev.get(t)
        if p is not None and not g.has_edge(p, t):
            d += 1
        indeg[t] = d
    nxt: dict[str, str] = {v: k for k, v in prev.items()}
    ready = deque(t for t in g.task_names if indeg[t] == 0)
    out: list[str] = []
    while ready:
        u = ready.popleft()
        out.append(u)
        succs = list(g.successors(u))
        n = nxt.get(u)
        if n is not None and not g.has_edge(u, n):
            succs.append(n)
        for v in succs:
            indeg[v] -= 1
            if indeg[v] == 0:
                ready.append(v)
    if len(out) != g.num_tasks:
        raise SchedulingError("schedule orders conflict with dependences")
    return out


def execute_schedule(schedule: Schedule, store: dict) -> dict:
    """Numerically execute a schedule's interleaving (kernels only)."""
    return execute_serial(schedule.graph, store, global_order(schedule))
