"""RAPID-style runtime: inspector/executor pipeline behind a small API.

See :class:`~repro.rapid.api.Rapid` for the entry point.
"""

from .api import IterativeResult, ParallelProgram, Rapid
from .executor import execute_schedule, execute_serial, global_order
from .inspector import HEURISTICS, order_with, parallelize

__all__ = [
    "HEURISTICS",
    "IterativeResult",
    "ParallelProgram",
    "Rapid",
    "execute_schedule",
    "execute_serial",
    "global_order",
    "order_with",
    "parallelize",
]
