"""Inspector stage: from task graph to schedule (Figure 1 pipeline).

Given a transformed task graph, the inspector performs the two-stage
mapping of section 4 — clustering/mapping (owner-compute under a data
placement, or DSC + LPT for general graphs) and per-processor ordering
(RCP / MPO / DTS / DTS with slice merging) — and returns a validated
:class:`~repro.core.schedule.Schedule`.
"""

from __future__ import annotations

from typing import Mapping, Optional

from ..core.clustering import dsc_map
from ..core.dts import dts_order
from ..core.dynamic import etf_schedule
from ..core.mpo import mpo_order
from ..core.placement import Placement, cyclic_placement, owner_compute_assignment
from ..core.rcp import rcp_order
from ..core.schedule import CommModel, Schedule, UNIT_COMM
from ..core.treesched import tree_order
from ..errors import SchedulingError
from ..graph.taskgraph import TaskGraph
from ..opt.exact import exact_order

#: Names accepted by :func:`parallelize`.
HEURISTICS = ("rcp", "mpo", "dts", "dts-merge", "etf", "tree", "exact")


def order_with(
    heuristic: str,
    graph: TaskGraph,
    placement: Placement,
    assignment: Mapping[str, int],
    comm: CommModel = UNIT_COMM,
    capacity: Optional[int] = None,
) -> Schedule:
    """Dispatch to the named ordering heuristic."""
    h = heuristic.lower()
    if h == "rcp":
        return rcp_order(graph, placement, assignment, comm)
    if h == "mpo":
        return mpo_order(graph, placement, assignment, comm)
    if h == "dts":
        return dts_order(graph, placement, assignment, comm)
    if h in ("dts-merge", "dts_merge"):
        if capacity is None:
            raise SchedulingError("dts-merge needs the available memory capacity")
        return dts_order(graph, placement, assignment, comm, avail_mem=capacity)
    if h == "etf":
        # Dynamic baseline: derives its own placement/assignment (the
        # given ones only fix the processor count).
        return etf_schedule(graph, placement.num_procs, comm)
    if h == "tree":
        return tree_order(graph, placement, assignment, comm)
    if h == "exact":
        return exact_order(graph, placement, assignment, comm, capacity=capacity)
    raise SchedulingError(f"unknown heuristic {heuristic!r}; use one of {HEURISTICS}")


def parallelize(
    graph: TaskGraph,
    num_procs: int,
    heuristic: str = "mpo",
    placement: Optional[Placement] = None,
    comm: CommModel = UNIT_COMM,
    capacity: Optional[int] = None,
    clustering: str = "owner-compute",
) -> Schedule:
    """Full inspector pipeline: placement -> clustering -> ordering.

    Parameters
    ----------
    placement:
        Data ownership.  ``None`` selects a cyclic placement for
        owner-compute clustering, or the DSC-derived placement when
        ``clustering="dsc"``.
    clustering:
        ``"owner-compute"`` (the sparse-code default) or ``"dsc"``
        (general DAGs; ignores ``placement``).
    """
    if clustering == "dsc":
        assignment, placement = dsc_map(graph, num_procs, comm)
    elif clustering == "owner-compute":
        if placement is None:
            placement = cyclic_placement(graph, num_procs)
        elif placement.num_procs != num_procs:
            raise SchedulingError(
                f"placement is for {placement.num_procs} processors, "
                f"asked for {num_procs}"
            )
        assignment = owner_compute_assignment(graph, placement)
    else:
        raise SchedulingError(
            f"unknown clustering {clustering!r}; use 'owner-compute' or 'dsc'"
        )
    return order_with(heuristic, graph, placement, assignment, comm, capacity)
