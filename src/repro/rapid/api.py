"""The RAPID-style user API.

RAPID's programming model (section 2): the user specifies irregular
data objects and the tasks that access them; the system extracts the
dependence graph from the access patterns, schedules it, and executes it
on a distributed-memory machine.  This module packages the whole
pipeline behind two classes:

>>> r = Rapid()
>>> r.object("x", size=8)
>>> r.object("y", size=8)
>>> r.task("produce", writes=["x"], weight=1.0)
>>> r.task("consume", reads=["x"], writes=["y"], weight=2.0)
>>> prog = r.parallelize(num_procs=2, heuristic="mpo")
>>> result = prog.run(capacity=prog.min_mem)

The returned :class:`ParallelProgram` bundles the schedule with its
memory profile and exposes timed simulation (`run`), numeric execution
(`run_numeric`) and the static predictions (`predicted_time`,
`min_mem`, `tot`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from ..core.liveness import MemoryProfile, analyze_memory
from ..core.maps import MapPlan, plan_maps
from ..core.placement import Placement
from ..core.schedule import Schedule, gantt
from ..graph.builder import GraphBuilder
from ..graph.tasks import Kernel
from ..graph.taskgraph import TaskGraph
from ..machine.simulator import SimResult, Simulator
from ..machine.spec import CRAY_T3D, MachineSpec
from .executor import execute_schedule
from .inspector import parallelize


@dataclass
class ParallelProgram:
    """A scheduled program ready for (simulated) execution."""

    schedule: Schedule
    spec: MachineSpec
    profile: MemoryProfile = field(init=False)

    def __post_init__(self) -> None:
        self.profile = analyze_memory(self.schedule)

    # -- static predictions --------------------------------------------

    @property
    def min_mem(self) -> int:
        """Definition 5's MIN_MEM: smallest executable capacity."""
        return self.profile.min_mem

    @property
    def tot(self) -> int:
        """Memory needed with no recycling (the 100% reference)."""
        return self.profile.tot

    def predicted_time(self) -> float:
        """Macro-dataflow makespan prediction (no overheads)."""
        return gantt(self.schedule, self.spec.comm_model()).makespan

    def plan(self, capacity: int) -> MapPlan:
        """Static MAP plan under a capacity (section 3.3)."""
        return plan_maps(self.schedule, capacity, self.profile)

    # -- execution -------------------------------------------------------

    def run(
        self,
        capacity: Optional[int] = None,
        memory_managed: bool = True,
        spec: Optional[MachineSpec] = None,
    ) -> SimResult:
        """Execute on the simulated machine (active memory management)."""
        return Simulator(
            self.schedule,
            spec=spec or self.spec,
            capacity=capacity,
            memory_managed=memory_managed,
            profile=self.profile,
        ).run()

    def run_numeric(self, store: dict) -> dict:
        """Execute the task kernels in this schedule's interleaving."""
        return execute_schedule(self.schedule, store)

    def run_pipelined(
        self,
        iterations: int,
        capacity: Optional[int] = None,
        spec: Optional[MachineSpec] = None,
    ) -> SimResult:
        """Unroll the program ``iterations`` times (same objects, chained
        versions) and simulate the unrolled schedule in one run —
        capturing cross-iteration pipelining, unlike
        :meth:`run_iterative`'s first+steady decomposition.  Liveness and
        MAPs are recomputed across iteration boundaries."""
        from ..graph.repeat import repeat_schedule

        sched = repeat_schedule(self.schedule, iterations)
        return Simulator(
            sched, spec=spec or self.spec, capacity=capacity
        ).run()

    def run_iterative(
        self,
        iterations: int,
        capacity: Optional[int] = None,
        spec: Optional[MachineSpec] = None,
    ) -> "IterativeResult":
        """Simulate an iterative application (RAPID's target workloads).

        The first iteration pays the full protocol (MAPs allocate and
        notify addresses); subsequent iterations reuse the notified
        addresses — MAPs still recycle space but no address packages
        travel and no send suspends.  Returns per-iteration and total
        times, showing how the management overhead amortizes.
        """
        if iterations < 1:
            raise ValueError("iterations must be >= 1")
        mspec = spec or self.spec
        first = Simulator(
            self.schedule, spec=mspec, capacity=capacity, profile=self.profile
        ).run()
        if iterations == 1:
            return IterativeResult(iterations, first, first, first.parallel_time)
        steady = Simulator(
            self.schedule,
            spec=mspec,
            capacity=capacity,
            profile=self.profile,
            preknown_addresses=True,
        ).run()
        total = first.parallel_time + (iterations - 1) * steady.parallel_time
        return IterativeResult(iterations, first, steady, total)


@dataclass
class IterativeResult:
    """Timing of an iterative execution (first + steady-state)."""

    iterations: int
    first: SimResult
    steady: SimResult
    total_time: float

    @property
    def amortized_time(self) -> float:
        """Average time per iteration."""
        return self.total_time / self.iterations

    @property
    def first_iteration_overhead(self) -> float:
        """Extra time of the address-notification iteration relative to
        the steady state."""
        return self.first.parallel_time - self.steady.parallel_time


class Rapid:
    """Run-time parallelization session (the Figure 1 pipeline).

    Register objects and tasks in sequential program order, then call
    :meth:`parallelize`.
    """

    def __init__(
        self,
        spec: MachineSpec = CRAY_T3D,
        materialize_inputs: bool = True,
        dependence_mode: str = "transform",
    ):
        self.spec = spec
        self._builder = GraphBuilder(
            materialize_inputs=materialize_inputs,
            dependence_mode=dependence_mode,
        )
        self._graph: Optional[TaskGraph] = None

    # -- program specification -------------------------------------------

    def object(self, name: str, size: int = 1) -> None:
        """Declare an irregular data object."""
        self._builder.add_object(name, size)

    def task(
        self,
        name: str,
        reads: Sequence[str] = (),
        writes: Sequence[str] = (),
        weight: float = 1.0,
        commute: Optional[str] = None,
        kernel: Optional[Kernel] = None,
    ) -> None:
        """Append a task to the sequential trace."""
        self._builder.add_task(
            name,
            reads=tuple(reads),
            writes=tuple(writes),
            weight=weight,
            commute=commute,
            kernel=kernel,
        )

    @property
    def graph(self) -> TaskGraph:
        """The transformed task graph (built on first access)."""
        if self._graph is None:
            self._graph = self._builder.build()
        return self._graph

    # -- pipeline ---------------------------------------------------------

    def parallelize(
        self,
        num_procs: int,
        heuristic: str = "mpo",
        placement: Optional[Placement] = None,
        capacity: Optional[int] = None,
        clustering: str = "owner-compute",
    ) -> ParallelProgram:
        """Inspector stage: derive, cluster, map and order the graph."""
        schedule = parallelize(
            self.graph,
            num_procs,
            heuristic=heuristic,
            placement=placement,
            comm=self.spec.comm_model(),
            capacity=capacity,
            clustering=clustering,
        )
        return ParallelProgram(schedule=schedule, spec=self.spec)
