"""Machine cost model — the Cray-T3D stand-in.

Section 5 of the paper characterises the testbed: each T3D node has
64 MB of memory, reaches 103 MFLOPS with BLAS-3 DGEMM, and the
``SHMEM_PUT`` RMA primitive costs 2.7 µs overhead with 128 MB/s
bandwidth.  :data:`CRAY_T3D` packages those numbers; the software
overheads of the active memory management scheme (MAP bookkeeping,
allocation, address packages) are free parameters with defaults in the
microsecond range typical of the era's runtimes.

All times are seconds; sizes are bytes.  The worked examples instead use
:data:`UNIT_MACHINE` (unit task weights, unit message cost, zero
overheads) to match the paper's Figure 2 accounting.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..core.schedule import CommModel


@dataclass(frozen=True)
class MachineSpec:
    """Cost parameters of the simulated distributed-memory machine."""

    #: Number of floating point operations per second per node; used by
    #: the sparse substrates to turn flop counts into task weights.
    flop_rate: float = 103e6
    #: One-way latency of an RMA put (the 2.7 µs SHMEM_PUT overhead).
    put_latency: float = 2.7e-6
    #: Seconds per byte of payload (1 / 128 MB/s).
    byte_time: float = 1.0 / 128e6
    #: CPU time the sender spends issuing one put.
    send_overhead: float = 2.7e-6
    #: Per-processor memory capacity in bytes (64 MB per T3D node).
    memory_capacity: int = 64 * 1024 * 1024
    #: When True, a processor's outgoing transfers serialise on its
    #: network interface (shared injection bandwidth); when False
    #: (default, the paper's Gantt convention) messages overlap freely.
    nic_serialize: bool = False

    # --- active memory management overheads (section 3.3) -------------
    # Software costs of the mid-90s runtime protocol (150 MHz Alpha,
    # list walking, hash lookups); these are free parameters of the
    # reproduction — see the overhead-sensitivity ablation benchmark.
    #: Fixed cost of performing a MAP's actions.
    map_overhead: float = 50e-6
    #: Cost of allocating / freeing one volatile object.
    alloc_cost: float = 5e-6
    free_cost: float = 3e-6
    #: Cost of assembling one address package plus per-address cost.
    package_overhead: float = 25e-6
    address_cost: float = 1e-6
    #: Cost of reading one arrived address package (the RA operation).
    ra_cost: float = 10e-6

    def comm_model(self) -> CommModel:
        """The linear message-cost model used for schedule prediction."""
        return CommModel(latency=self.put_latency, byte_time=self.byte_time)

    def message_time(self, nbytes: int) -> float:
        """End-to-end time of one data put."""
        return self.put_latency + nbytes * self.byte_time

    def task_weight(self, flops: float, floor: float = 1e-6) -> float:
        """Task weight (seconds) for a given flop count."""
        return max(flops / self.flop_rate, floor)

    def with_capacity(self, capacity: int) -> "MachineSpec":
        """Copy of the spec with a different per-processor capacity."""
        return replace(self, memory_capacity=int(capacity))

    def scaled_overheads(self, factor: float) -> "MachineSpec":
        """Copy with all memory-management overheads scaled by
        ``factor`` (used by the overhead-sensitivity ablation)."""
        return replace(
            self,
            map_overhead=self.map_overhead * factor,
            alloc_cost=self.alloc_cost * factor,
            free_cost=self.free_cost * factor,
            package_overhead=self.package_overhead * factor,
            address_cost=self.address_cost * factor,
            ra_cost=self.ra_cost * factor,
        )


#: The paper's evaluation platform (section 5).
CRAY_T3D = MachineSpec()

#: The paper's second implementation platform ("implemented ... on
#: Cray-T3D and Meiko CS-2").  The CS-2's communication is markedly
#: slower relative to compute (~10 us latency, ~40 MB/s through the Elan
#: co-processor; ~90 MFLOPS per dual-SuperSPARC/Fujitsu node), so the
#: same schedules are more latency-bound — the cross-machine ablation
#: quantifies the shift.
MEIKO_CS2 = MachineSpec(
    flop_rate=90e6,
    put_latency=10e-6,
    byte_time=1.0 / 40e6,
    send_overhead=8e-6,
    memory_capacity=128 * 1024 * 1024,
)

#: Unit-cost machine matching the paper's worked examples: every message
#: costs one time unit, overheads are zero.
UNIT_MACHINE = MachineSpec(
    flop_rate=1.0,
    put_latency=1.0,
    byte_time=0.0,
    send_overhead=0.0,
    memory_capacity=1 << 30,
    map_overhead=0.0,
    alloc_cost=0.0,
    free_cost=0.0,
    package_overhead=0.0,
    address_cost=0.0,
    ra_cost=0.0,
)
