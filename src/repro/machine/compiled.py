"""Array-compiled execution engine (ROADMAP item 1).

This module lowers a :class:`~repro.machine.simulator.CompiledSchedule`
— tasks, MAP points, address slots and the five-state protocol of
Definitions 3–6 — into dense int-indexed tables and executes them with
a flat event queue, replacing the per-event Python objects of the
interpreted engine with integer codes and scalar state vectors.

Array layouts
-------------

Lowering (:func:`lower_schedule`, capacity/spec-independent, memoised on
the ``CompiledSchedule``) enumerates every entity as a small integer:

``tid``
    task id = position in the flattened processor orders;
    ``proc_start`` (an int64 offset array, one entry per processor plus
    a sentinel) maps a processor to its contiguous tid range.
``oid`` / ``uid``
    object and producer-unit ids (``TaskGraph.object_index`` order).
``mk``
    a *data message key* ``(dest, object, unit)``; carries a CSR waiter
    list (``wait_ptr``/``wait_tid``), an initial stale-copy counter
    (``need0``) and a group id ``grp`` linking the versions of one
    ``(dest, object)`` pair for the consistency checks.
``sk``
    a *sync key* ``(unit-task, dest)`` with its own waiter CSR.
``ak``
    an *address-knowledge key* ``(owner, object, dest)``; the sender
    side consults a flat byte vector instead of per-processor sets.
``od`` / ``os``
    outgoing data / sync message slots, CSR-indexed per trigger task
    (``od_ptr`` etc.), holding the target ``mk``/``sk``/``ak`` ids and
    per-spec precomputed network times.

Execution plans (:func:`get_exec_plan`) are additionally keyed by
``(capacity, spec, memory_managed, preknown)`` and compile each
processor's order + MAP plan into a *step program*: ``SEG`` steps
(maximal runs of *silent* tasks — no remote inputs, no outgoing
messages, no MAP between), ``TASK`` steps (one message-bearing task)
and ``MAP`` steps (frees/allocs/packages with the exact interpreted
cost expression).  Events are 3-tuples ``(time, seq, code)`` where
``code`` packs ``kind << 44 | arg``.

Exactness contract
------------------

The interpreted :meth:`Simulator._run_interpreted` is the differential
oracle; this engine must agree with it *bit-for-bit* (finish times,
stats, peaks, violation verdicts compared with ``==``).  Three rules
make that possible:

* **Identical float expressions.**  Every time value is produced by the
  same sequential float64 operation sequence as the interpreted engine
  (``start + cost``, ``max(avail, t)``, per-spec cost formulas copied
  verbatim); there is no numpy accumulation in the run loop.
* **Push-only bootstrap.**  The interpreted bootstrap advances every
  processor before the first pop, so each processor's *first* task
  completion must enter the heap (never complete inline) to keep the
  relative ``(time, seq)`` order of later same-timestamp events
  identical.
* **Strict inline rule.**  After the first pop, a task finishing at
  ``f`` completes inline (no heap round-trip) iff ``f`` is *strictly*
  below the earliest queued event; causality (all pushes happen at or
  after the current event time, asserted at push) guarantees the
  interpreted engine would pop exactly that completion next, with no
  intervening seq-bearing pushes.  Ties (``f >= heap-min``) always go
  through the heap.

A silent segment additionally uses an *unchecked* fast path when
``(avail + S) * margin < heap-min`` with ``S`` the segment weight sum
and ``margin = 1 + (16·n + 64)·2⁻⁵³`` — a generous forward-error bound
for ``n`` non-negative sequential additions, so no task in the segment
can cross the horizon; otherwise a per-task checked loop runs.  Both
loops live in ``*_hot`` functions, which ``tools/lint_rules.py``
(``compiled-hot-alloc``) keeps free of per-event Python allocation.

Static dispatch-version flags replace the interpreted engine's dynamic
``current_version`` dict: under the owner-compute rule every writer of
an object runs on the dispatching processor, so an order scan computes
each message's version validity at trigger time (``od_ok0``) plus the
first later overwrite position (``od_ow``) that could invalidate a
*suspended* send drained after more local tasks completed.  Lowering
therefore requires an owner-compute assignment and non-negative task
weights, and raises :class:`~repro.errors.SimulationError` otherwise.

Fallback conditions
-------------------

``Simulator.run`` routes to this engine only for fault-free,
unobserved runs (no metrics/trace/instrument, no fault injection, no
caller-supplied MAP plan, non-negative spec costs) — everything else
falls back to the interpreted oracle explicitly and is recorded in
``SimResult.engine``.

Implementation note: the lowered IR is held in numpy arrays (dense,
mmap-friendly, validated in the tests); the run loop itself indexes
plain Python list mirrors of those arrays, because scalar list indexing
is several times faster than per-element numpy indexing under CPython —
the arrays are the source of truth, the mirrors are derived once per
lowering.
"""

from __future__ import annotations

import heapq
import os
from time import perf_counter
from typing import Optional

import numpy as np

from ..core.placement import validate_owner_compute
from ..errors import (
    DataConsistencyError,
    DeadlockError,
    MemoryError_,
    SimulationError,
)
from .spec import MachineSpec

__all__ = [
    "ExecPlan",
    "LoweredSchedule",
    "get_exec_plan",
    "lower_schedule",
    "run_compiled",
]

# Processor states (ints; same meaning as simulator.ProcState).
_REC, _EXE, _SND, _MAP, _END, _DONE = 0, 1, 2, 3, 4, 5
_STATE_NAMES = ("REC", "EXE", "SND", "MAP", "END", "DONE")

# Step opcodes.
_SEG_OP, _TASK_OP, _MAP_OP = 0, 1, 2

# Event codes: code = kind << 44 | arg (args are entity ids < 2**44).
_SHIFT = 44
_ARG_MASK = (1 << _SHIFT) - 1
_TASK_BASE = 0 << _SHIFT  # arg = processor
_DATA_BASE = 1 << _SHIFT  # arg = mk
_SYNC_BASE = 2 << _SHIFT  # arg = sk
_ADDR_BASE = 3 << _SHIFT  # arg = pkg
_SLOT_BASE = 4 << _SHIFT  # arg = src * P + dst

_INF = float("inf")
_NEG_INF = float("-inf")
_NO_OVERWRITE = 1 << 60  # od_ow sentinel: no later local overwrite
_EPS = 2.0 ** -53


class LoweredSchedule:
    """Dense-array IR of one compiled schedule (spec/capacity-free).

    Built once per :class:`~repro.machine.simulator.CompiledSchedule`
    by :func:`lower_schedule`; every attribute ending in ``_l`` is the
    Python-list mirror of the numpy array of the same stem (see module
    docstring).  Cold-path diagnostics keep the name-level index dicts
    (``mk_index``/``sk_index``) so deadlock reports match the
    interpreted engine verbatim.
    """

    __slots__ = (
        "num_procs", "num_tasks", "num_objects", "num_mk", "num_sk",
        "num_ak", "num_grp",
        "proc_start", "task_name", "weight", "pending0",
        "weight_l", "pending0_l",
        "od_ptr", "od_mk", "od_ak", "od_dest", "od_oid", "od_nbytes",
        "od_ok0", "od_ow",
        "od_ptr_l", "od_mk_l", "od_ak_l", "od_dest_l", "od_ok0_l",
        "od_ow_l", "od_uname_l", "od_oname_l", "od_tuple_l",
        "os_ptr", "os_sk", "os_ptr_l", "os_sk_l",
        "cons_ptr", "cons_mk", "cons_ptr_l", "cons_mk_l",
        "mk_dest", "mk_oid", "mk_need0",
        "mk_dest_l", "mk_oid_l", "mk_need0_l", "mk_oname_l", "mk_uname_l",
        "wait_ptr", "wait_tid", "wait_ptr_l", "wait_tid_l",
        "grp_of", "grp_ptr", "grp_mk", "grp_of_l", "grp_ptr_l", "grp_mk_l",
        "sk_dest", "sk_dest_l", "swait_ptr", "swait_tid",
        "swait_ptr_l", "swait_tid_l",
        "ak_index", "mk_index", "sk_index", "grp_index",
        "obj_name", "obj_size", "obj_size_l",
        "succ_ptr", "succ_tid",
        "span_oids", "perm_bytes", "writes_by_po",
    )


class ExecPlan:
    """Executable step programs for one (capacity, spec, mode) tuple.

    Holds the per-processor ``SEG``/``TASK``/``MAP`` step lists, the
    lowered MAP actions (free/alloc oids, package table) and every
    spec-dependent cost precomputed with the interpreted engine's exact
    float expressions.  Cached on the owning ``CompiledSchedule`` under
    ``(capacity, spec, memory_managed, preknown)``.
    """

    __slots__ = (
        "capacity", "spec", "memory_managed", "preknown", "managed_check",
        "steps",
        "mf_oid_l", "mf_grp_l", "ma_oid_l",
        "pkg_src_l", "pkg_dst_l", "pkg_cost_l", "pkg_objs",
        "pkg_ak_ptr_l", "pkg_ak_l",
        "od_net_l", "od_nic_l",
        "send_oh", "put_lat", "ra_cost", "nic_serialize",
        "known_all",
    )


def lower_schedule(cs) -> LoweredSchedule:
    """Lower ``cs`` to the dense IR; memoised as ``cs._lowered``."""
    cs.check_fresh()
    if cs._lowered is not None:
        cs.counters["lower_hits"] += 1
        return cs._lowered
    cs.counters["lower_misses"] += 1
    _t0_lower = perf_counter()

    g, sched = cs.graph, cs.schedule
    nprocs = cs.num_procs
    try:
        validate_owner_compute(g, sched.placement, sched.assignment)
    except Exception as err:
        raise SimulationError(
            f"compiled engine requires an owner-compute assignment: {err}"
        ) from err

    lo = LoweredSchedule()
    lo.num_procs = nprocs
    lo.num_objects = g.num_objects

    # --- tasks: tid = flattened order position -----------------------
    proc_start = np.zeros(nprocs + 1, dtype=np.int64)
    task_name: list[str] = []
    for q in range(nprocs):
        task_name.extend(sched.orders[q])
        proc_start[q + 1] = len(task_name)
    ntasks = len(task_name)
    tid_of = {name: i for i, name in enumerate(task_name)}
    proc_of = [0] * ntasks
    for q in range(nprocs):
        for i in range(proc_start[q], proc_start[q + 1]):
            proc_of[i] = q
    lo.num_tasks = ntasks
    lo.proc_start = proc_start
    lo.task_name = task_name

    weight = np.fromiter(
        (cs.weight[t] for t in task_name), dtype=np.float64, count=ntasks
    )
    if ntasks and float(weight.min()) < 0.0:
        raise SimulationError(
            "compiled engine requires non-negative task weights"
        )
    pending0 = np.fromiter(
        (cs.pending0.get(t, 0) for t in task_name), dtype=np.int64,
        count=ntasks,
    )
    lo.weight, lo.pending0 = weight, pending0
    lo.weight_l = weight.tolist()
    lo.pending0_l = pending0.tolist()

    # --- objects / units ---------------------------------------------
    nobjects = g.num_objects
    obj_name = [""] * nobjects
    for name, oid in g.object_index.items():
        obj_name[oid] = name
    obj_size = np.zeros(nobjects, dtype=np.int64)
    for name, oid in g.object_index.items():
        obj_size[oid] = cs.obj_size[name]
    lo.obj_name = obj_name
    lo.obj_size = obj_size
    lo.obj_size_l = obj_size.tolist()
    oid_of = g.object_index

    # --- message keys (mk), groups, sync keys (sk) --------------------
    mk_index: dict[tuple, int] = {}
    mk_dest_l: list[int] = []
    mk_oid_l: list[int] = []
    mk_oname_l: list[str] = []
    mk_uname_l: list[str] = []
    mk_need0_l: list[int] = []
    wait_ptr_l = [0]
    wait_tid_l: list[int] = []
    grp_index: dict[tuple, int] = {}
    grp_members: list[list[int]] = []
    grp_of_l: list[int] = []
    for dest in range(nprocs):
        need0 = cs.need_count0[dest]
        for (m, unit), waiters in cs.data_waiters[dest].items():
            mk = len(mk_dest_l)
            mk_index[(dest, m, unit)] = mk
            mk_dest_l.append(dest)
            mk_oid_l.append(oid_of[m])
            mk_oname_l.append(m)
            mk_uname_l.append(unit)
            mk_need0_l.append(need0[(m, unit)])
            wait_tid_l.extend(tid_of[w] for w in waiters)
            wait_ptr_l.append(len(wait_tid_l))
            gkey = (dest, m)
            gid = grp_index.get(gkey)
            if gid is None:
                gid = len(grp_members)
                grp_index[gkey] = gid
                grp_members.append([])
            grp_members[gid].append(mk)
            grp_of_l.append(gid)
    grp_ptr_l = [0]
    grp_mk_l: list[int] = []
    for members in grp_members:
        grp_mk_l.extend(members)
        grp_ptr_l.append(len(grp_mk_l))

    sk_index: dict[tuple, int] = {}
    sk_dest_l: list[int] = []
    swait_ptr_l = [0]
    swait_tid_l: list[int] = []
    for dest in range(nprocs):
        for u, waiters in cs.sync_waiters[dest].items():
            sk_index[(u, dest)] = len(sk_dest_l)
            sk_dest_l.append(dest)
            swait_tid_l.extend(tid_of[w] for w in waiters)
            swait_ptr_l.append(len(swait_tid_l))

    lo.num_mk = len(mk_dest_l)
    lo.num_sk = len(sk_dest_l)
    lo.num_grp = len(grp_members)
    lo.mk_index, lo.sk_index, lo.grp_index = mk_index, sk_index, grp_index
    lo.mk_dest = np.asarray(mk_dest_l, dtype=np.int64)
    lo.mk_oid = np.asarray(mk_oid_l, dtype=np.int64)
    lo.mk_need0 = np.asarray(mk_need0_l, dtype=np.int64)
    lo.mk_dest_l, lo.mk_oid_l = mk_dest_l, mk_oid_l
    lo.mk_oname_l, lo.mk_uname_l = mk_oname_l, mk_uname_l
    lo.mk_need0_l = mk_need0_l
    lo.wait_ptr = np.asarray(wait_ptr_l, dtype=np.int64)
    lo.wait_tid = np.asarray(wait_tid_l, dtype=np.int64)
    lo.wait_ptr_l, lo.wait_tid_l = wait_ptr_l, wait_tid_l
    lo.grp_of = np.asarray(grp_of_l, dtype=np.int64)
    lo.grp_ptr = np.asarray(grp_ptr_l, dtype=np.int64)
    lo.grp_mk = np.asarray(grp_mk_l, dtype=np.int64)
    lo.grp_of_l, lo.grp_ptr_l, lo.grp_mk_l = grp_of_l, grp_ptr_l, grp_mk_l
    lo.sk_dest = np.asarray(sk_dest_l, dtype=np.int64)
    lo.sk_dest_l = sk_dest_l
    lo.swait_ptr = np.asarray(swait_ptr_l, dtype=np.int64)
    lo.swait_tid = np.asarray(swait_tid_l, dtype=np.int64)
    lo.swait_ptr_l, lo.swait_tid_l = swait_ptr_l, swait_tid_l

    # --- outgoing messages (od / os CSR) + address keys (ak) ----------
    ak_index: dict[tuple, int] = {}
    od_ptr_l = [0]
    od_mk_l: list[int] = []
    od_ak_l: list[int] = []
    od_dest_l: list[int] = []
    od_oid_l: list[int] = []
    od_nbytes_l: list[int] = []
    od_uname_l: list[str] = []
    od_oname_l: list[str] = []
    od_tuple_l: list[tuple] = []
    os_ptr_l = [0]
    os_sk_l: list[int] = []
    cons_ptr_l = [0]
    cons_mk_l: list[int] = []
    for tid, name in enumerate(task_name):
        src = proc_of[tid]
        for m, unit, dest, nbytes in cs.out_data.get(name, ()):
            akey = (src, oid_of[m], dest)
            ak = ak_index.get(akey)
            if ak is None:
                ak = len(ak_index)
                ak_index[akey] = ak
            od_mk_l.append(mk_index[(dest, m, unit)])
            od_ak_l.append(ak)
            od_dest_l.append(dest)
            od_oid_l.append(oid_of[m])
            od_nbytes_l.append(nbytes)
            od_uname_l.append(unit)
            od_oname_l.append(m)
            od_tuple_l.append((m, unit, dest, nbytes))
        od_ptr_l.append(len(od_mk_l))
        for u, dest in cs.out_sync.get(name, ()):
            os_sk_l.append(sk_index[(u, dest)])
        os_ptr_l.append(len(os_sk_l))
        for m, unit in cs.consumes[name]:
            cons_mk_l.append(mk_index[(proc_of[tid], m, unit)])
        cons_ptr_l.append(len(cons_mk_l))
    lo.num_ak = len(ak_index)
    lo.ak_index = ak_index
    lo.od_ptr = np.asarray(od_ptr_l, dtype=np.int64)
    lo.od_mk = np.asarray(od_mk_l, dtype=np.int64)
    lo.od_ak = np.asarray(od_ak_l, dtype=np.int64)
    lo.od_dest = np.asarray(od_dest_l, dtype=np.int64)
    lo.od_oid = np.asarray(od_oid_l, dtype=np.int64)
    lo.od_nbytes = np.asarray(od_nbytes_l, dtype=np.int64)
    lo.od_ptr_l, lo.od_mk_l, lo.od_ak_l = od_ptr_l, od_mk_l, od_ak_l
    lo.od_dest_l = od_dest_l
    lo.od_uname_l, lo.od_oname_l = od_uname_l, od_oname_l
    lo.od_tuple_l = od_tuple_l
    lo.os_ptr = np.asarray(os_ptr_l, dtype=np.int64)
    lo.os_sk = np.asarray(os_sk_l, dtype=np.int64)
    lo.os_ptr_l, lo.os_sk_l = os_ptr_l, os_sk_l
    lo.cons_ptr = np.asarray(cons_ptr_l, dtype=np.int64)
    lo.cons_mk = np.asarray(cons_mk_l, dtype=np.int64)
    lo.cons_ptr_l, lo.cons_mk_l = cons_ptr_l, cons_mk_l

    # --- static version timeline (replaces current_version dict) -----
    # writes_by_po[(q, oid)] = ordered (position, unit-name) write list.
    writes_by_po: dict[tuple, list[tuple[int, str]]] = {}
    od_ok0_l = [False] * len(od_mk_l)
    od_ow_l = [_NO_OVERWRITE] * len(od_mk_l)
    for q in range(nprocs):
        ver: dict[int, str] = {}
        for pos, tid in enumerate(range(proc_start[q], proc_start[q + 1])):
            name = task_name[tid]
            for m, uu in cs.write_version[name]:
                oid = oid_of[m]
                ver[oid] = uu
                writes_by_po.setdefault((q, oid), []).append((pos, uu))
            for od in range(od_ptr_l[tid], od_ptr_l[tid + 1]):
                od_ok0_l[od] = ver.get(od_oid_l[od]) == od_uname_l[od]
        for pos, tid in enumerate(range(proc_start[q], proc_start[q + 1])):
            for od in range(od_ptr_l[tid], od_ptr_l[tid + 1]):
                req = od_uname_l[od]
                for wpos, uu in writes_by_po.get((q, od_oid_l[od]), ()):
                    if wpos > pos and uu != req:
                        od_ow_l[od] = wpos
                        break
    lo.od_ok0 = np.asarray(od_ok0_l, dtype=np.bool_)
    lo.od_ow = np.asarray(od_ow_l, dtype=np.int64)
    lo.od_ok0_l, lo.od_ow_l = od_ok0_l, od_ow_l
    lo.writes_by_po = writes_by_po

    # --- task-successor CSR (TaskGraph.successor_map) -----------------
    # Dense successor arrays back the analyzer/debug views and serve as
    # a lowering cross-check: every cross-processor edge must have been
    # lowered to a data-message or sync waiter above.
    succ_ptr_l = [0]
    succ_tid_l: list[int] = []
    smap = g.successor_map()
    assignment = sched.assignment
    for name in task_name:
        inner = smap.get(name, {})
        for v, objs in inner.items():
            succ_tid_l.append(tid_of[v])
            pu, pv = assignment[name], assignment[v]
            if pu == pv:
                continue
            if objs:
                unit = cs.pid(name)
                for m in objs:
                    if (pv, m, unit) not in mk_index:
                        raise SimulationError(
                            f"lowering lost data edge {name}->{v} ({m!r})"
                        )
            elif (name, pv) not in sk_index:
                raise SimulationError(
                    f"lowering lost sync edge {name}->{v}"
                )
        succ_ptr_l.append(len(succ_tid_l))
    lo.succ_ptr = np.asarray(succ_ptr_l, dtype=np.int64)
    lo.succ_tid = np.asarray(succ_tid_l, dtype=np.int64)

    # --- per-processor memory constants -------------------------------
    lo.span_oids = [
        [oid_of[m] for m in cs.profile.procs[q].span] for q in range(nprocs)
    ]
    lo.perm_bytes = list(cs.perm_bytes)

    cs.counters["lower_s"] += perf_counter() - _t0_lower
    cs._lowered = lo
    if os.environ.get("REPRO_VERIFY_IR"):
        # Debug path: verify the fresh lowering like llvm::verifyModule
        # (memoised above, so the verifier's re-entry hits the cache).
        from ..analysis.irverify import debug_verify

        debug_verify(cs)
    return lo


#: Segment length from which the numpy kernels beat the Python loops.
#: ``np.add.accumulate`` is an element-recursive left fold — the exact
#: addition sequence of the Python kernels — so both paths are
#: bit-identical and the switch is purely a speed decision.
_SEG_VEC_MIN = 64


def _make_seg(ws: list[float]) -> tuple:
    n = len(ws)
    arr = np.asarray(ws, dtype=np.float64)
    s = float(np.sum(arr))
    margin = 1.0 + (16.0 * n + 64.0) * _EPS
    if n >= _SEG_VEC_MIN:
        # Weight array plus two scratch accumulators (avail and busy
        # chains use different bases) for the vectorised kernels.
        return (_SEG_OP, ws, s, margin, n, arr, np.empty(n + 1), np.empty(n + 1))
    return (_SEG_OP, ws, s, margin, n, None, None, None)


def get_exec_plan(
    cs,
    capacity: int,
    spec: MachineSpec,
    memory_managed: bool,
    preknown: bool,
) -> ExecPlan:
    """Execution plan for one (capacity, spec, mode); memoised on ``cs``.

    The key includes the full :class:`MachineSpec` (hash-by-value
    frozen dataclass) so sweeps over different machines or scaled
    overheads never share cost tables; :meth:`CompiledSchedule
    .check_fresh` guards against schedule mutation behind the cache.
    """
    cs.check_fresh()
    key = (capacity, spec, memory_managed, preknown)
    ep = cs._exec_plans.get(key)
    if ep is not None:
        cs.counters["exec_plan_hits"] += 1
        return ep
    cs.counters["exec_plan_misses"] += 1
    _t0_plan = perf_counter()
    lo = lower_schedule(cs)
    nprocs = lo.num_procs
    plan = cs.plan_for(capacity) if memory_managed else None

    ep = ExecPlan()
    ep.capacity = capacity
    ep.spec = spec
    ep.memory_managed = memory_managed
    ep.preknown = preknown
    ep.managed_check = memory_managed and not preknown
    ep.known_all = not memory_managed or preknown
    ep.send_oh = spec.send_overhead
    ep.put_lat = spec.put_latency
    ep.ra_cost = spec.ra_cost
    ep.nic_serialize = spec.nic_serialize
    # Exact interpreted cost expressions, per message.
    ep.od_net_l = [spec.message_time(nb) for nb in lo.od_nbytes.tolist()]
    ep.od_nic_l = [nb * spec.byte_time for nb in lo.od_nbytes.tolist()]

    mf_oid_l: list[int] = []
    mf_grp_l: list[int] = []
    ma_oid_l: list[int] = []
    pkg_src_l: list[int] = []
    pkg_dst_l: list[int] = []
    pkg_cost_l: list[float] = []
    pkg_objs: list[list[str]] = []
    pkg_ak_ptr_l = [0]
    pkg_ak_l: list[int] = []
    oid_of = cs.graph.object_index
    grp_index = lo.grp_index
    ak_index = lo.ak_index

    steps: list[list[tuple]] = []
    od_ptr, os_ptr, cons_ptr = lo.od_ptr_l, lo.os_ptr_l, lo.cons_ptr_l
    pending0, weight = lo.pending0_l, lo.weight_l
    # Same MAP placement semantics as Simulator._map_at: one MapPoint
    # per (proc, position), last wins, and positions at or past the end
    # of the order never execute.
    map_at: list[dict[int, object]] = [dict() for _ in range(nprocs)]
    if plan is not None:
        for pts in plan.points:
            for mp in pts:
                map_at[mp.proc][mp.position] = mp
    for q in range(nprocs):
        prog: list[tuple] = []
        cur_ws: list[float] = []
        start = int(lo.proc_start[q])
        n = int(lo.proc_start[q + 1]) - start
        maps_q = map_at[q]
        for i in range(n):
            mp = maps_q.get(i)
            if mp is not None:
                if cur_ws:
                    prog.append(_make_seg(cur_ws))
                    cur_ws = []
                cost = (
                    spec.map_overhead
                    + len(mp.frees) * spec.free_cost
                    + len(mp.allocs) * spec.alloc_cost
                )
                flo = len(mf_oid_l)
                for m in mp.frees:
                    mf_oid_l.append(oid_of[m])
                    mf_grp_l.append(grp_index.get((q, m), -1))
                alo = len(ma_oid_l)
                for m in mp.allocs:
                    ma_oid_l.append(oid_of[m])
                plo = len(pkg_dst_l)
                for dst, objs in sorted(mp.notifications.items()):
                    pkg_src_l.append(q)
                    pkg_dst_l.append(dst)
                    pkg_cost_l.append(
                        spec.package_overhead + len(objs) * spec.address_cost
                    )
                    pkg_objs.append(list(objs))
                    for m in objs:
                        ak = ak_index.get((dst, oid_of[m], q))
                        if ak is not None:
                            pkg_ak_l.append(ak)
                    pkg_ak_ptr_l.append(len(pkg_ak_l))
                prog.append((
                    _MAP_OP, cost, flo, len(mf_oid_l), alo, len(ma_oid_l),
                    plo, len(pkg_dst_l),
                ))
            tid = start + i
            silent = (
                pending0[tid] == 0
                and od_ptr[tid] == od_ptr[tid + 1]
                and os_ptr[tid] == os_ptr[tid + 1]
                and cons_ptr[tid] == cons_ptr[tid + 1]
            )
            if silent:
                cur_ws.append(weight[tid])
            else:
                if cur_ws:
                    prog.append(_make_seg(cur_ws))
                    cur_ws = []
                prog.append((
                    _TASK_OP, tid, weight[tid],
                    od_ptr[tid], od_ptr[tid + 1],
                    os_ptr[tid], os_ptr[tid + 1],
                    cons_ptr[tid], cons_ptr[tid + 1],
                ))
        if cur_ws:
            prog.append(_make_seg(cur_ws))
        steps.append(prog)

    ep.steps = steps
    ep.mf_oid_l, ep.mf_grp_l, ep.ma_oid_l = mf_oid_l, mf_grp_l, ma_oid_l
    ep.pkg_src_l, ep.pkg_dst_l = pkg_src_l, pkg_dst_l
    ep.pkg_cost_l, ep.pkg_objs = pkg_cost_l, pkg_objs
    ep.pkg_ak_ptr_l, ep.pkg_ak_l = pkg_ak_ptr_l, pkg_ak_l
    cs.counters["exec_plan_s"] += perf_counter() - _t0_plan
    cs._exec_plans[key] = ep
    if os.environ.get("REPRO_VERIFY_IR"):
        # Debug path: check the step programs before anything runs them.
        from ..analysis.irverify import debug_verify

        debug_verify(cs, ep)
    return ep


def _seg_all_hot(ws, a, b):
    """Unchecked silent-segment kernel: sequential float adds only."""
    for w in ws:
        a += w
        b += w
    return a, b


def _seg_all_vec(step, a, b):
    """Vectorised :func:`_seg_all_hot` (bit-identical, see _SEG_VEC_MIN)."""
    wsarr, bufa, bufb = step[5], step[6], step[7]
    n = step[4]
    bufa[0] = a
    bufa[1:] = wsarr
    np.add.accumulate(bufa, out=bufa)
    bufb[0] = b
    bufb[1:] = wsarr
    np.add.accumulate(bufb, out=bufb)
    return float(bufa[n]), float(bufb[n])


def _seg_until_vec(step, k, n, a, b, thr):
    """Vectorised :func:`_seg_until_hot` (bit-identical results).

    The finish-time prefix is nondecreasing (weights are validated
    nonnegative, and IEEE addition of a nonnegative term never rounds
    below the base), so the first crossing is a ``searchsorted``: the
    insertion point counts exactly the finishes strictly below ``thr``.
    """
    wsarr, bufa, bufb = step[5], step[6], step[7]
    nk = n - k
    acca = bufa[: nk + 1]
    acca[0] = a
    acca[1:] = wsarr[k:]
    np.add.accumulate(acca, out=acca)
    j = int(np.searchsorted(acca[1:], thr, side="left"))
    e = j + 1 if j < nk else nk  # the crossing task itself executes
    accb = bufb[: e + 1]
    accb[0] = b
    accb[1:] = wsarr[k : k + e]
    np.add.accumulate(accb, out=accb)
    lastf = float(acca[j]) if j > 0 else a
    return float(acca[e]), float(accb[e]), k + j, lastf


def _seg_until_hot(ws, k, n, a, b, thr):
    """Checked silent-segment kernel.

    Executes tasks ``k..n-1`` sequentially from time ``a``; stops after
    executing the first task whose finish crosses ``thr`` (its
    completion must go through the event heap).  Returns the new
    ``(avail, busy, crossing-index, last-inline-finish)``; a crossing
    index of ``n`` means the whole segment completed inline.
    """
    i = k
    lastf = a
    while i < n:
        w = ws[i]
        f = a + w
        b += w
        a = f
        if f >= thr:
            break
        lastf = f
        i += 1
    return a, b, i, lastf


def run_compiled(sim) -> "SimResult":  # noqa: F821 (sphinx-style ref)
    """Execute ``sim`` with the array-compiled engine.

    Mirrors :meth:`Simulator._run_interpreted` action-for-action (see
    the module docstring's exactness contract); returns a
    :class:`~repro.machine.simulator.SimResult` with
    ``engine="compiled"``.
    """
    from .simulator import ProcessorStats, SimResult

    cs = sim.compiled
    spec = sim.spec
    ep = get_exec_plan(
        cs, sim.capacity, spec, sim.memory_managed, sim.preknown_addresses
    )
    lo = cs._lowered
    nprocs = lo.num_procs
    nobjects = lo.num_objects
    capacity = sim.capacity
    preknown = ep.preknown
    managed_check = ep.managed_check

    # Static tables as locals (closure lookups beat attribute lookups).
    steps = ep.steps
    od_mk_l, od_ak_l = lo.od_mk_l, lo.od_ak_l
    od_ok0_l, od_ow_l = lo.od_ok0_l, lo.od_ow_l
    os_sk_l, cons_mk_l = lo.os_sk_l, lo.cons_mk_l
    mk_dest_l, mk_oid_l = lo.mk_dest_l, lo.mk_oid_l
    mk_oname_l, mk_uname_l = lo.mk_oname_l, lo.mk_uname_l
    wait_ptr_l, wait_tid_l = lo.wait_ptr_l, lo.wait_tid_l
    grp_of_l, grp_ptr_l, grp_mk_l = lo.grp_of_l, lo.grp_ptr_l, lo.grp_mk_l
    sk_dest_l = lo.sk_dest_l
    swait_ptr_l, swait_tid_l = lo.swait_ptr_l, lo.swait_tid_l
    mf_oid_l, mf_grp_l, ma_oid_l = ep.mf_oid_l, ep.mf_grp_l, ep.ma_oid_l
    pkg_src_l, pkg_dst_l = ep.pkg_src_l, ep.pkg_dst_l
    pkg_cost_l = ep.pkg_cost_l
    pkg_ak_ptr_l, pkg_ak_l = ep.pkg_ak_ptr_l, ep.pkg_ak_l
    od_net_l, od_nic_l = ep.od_net_l, ep.od_nic_l
    osz = lo.obj_size_l
    obj_name = lo.obj_name
    send_oh, put_lat, ra_cost = ep.send_oh, ep.put_lat, ep.ra_cost
    nic_serialize = ep.nic_serialize
    heappush, heappop = heapq.heappush, heapq.heappop

    # --- mutable run-local state --------------------------------------
    state = [_REC] * nprocs
    sp = [0] * nprocs  # current step index per processor
    so = [0] * nprocs  # offset inside the current SEG step
    nt = [0] * nprocs  # completed tasks per processor (== idx[q])
    avail = [0.0] * nprocs
    busy = [0.0] * nprocs
    over = [0.0] * nprocs
    nmaps = [0] * nprocs
    dmsg = [0] * nprocs
    smsg = [0] * nprocs
    susp_ct = [0] * nprocs
    psent = [0] * nprocs
    pread = [0] * nprocs
    peakmem = [0] * nprocs
    fin = [0.0] * nprocs
    ltf = [0.0] * nprocs  # last task finish per processor
    nic_free = [0.0] * nprocs
    nsteps = [len(s) for s in steps]

    pending = lo.pending0_l.copy()
    need = lo.mk_need0_l.copy()
    arrived = bytearray(lo.num_mk)
    sync_arr = bytearray(lo.num_sk)
    known = (
        bytearray(b"\x01" * lo.num_ak) if ep.known_all
        else bytearray(lo.num_ak)
    )
    allocated = bytearray(nprocs * nobjects)
    used = [0] * nprocs
    apk = [0] * nprocs  # allocator peak per processor
    suspended: list[list[int]] = [[] for _ in range(nprocs)]
    pending_pkgs: list[list[int]] = [[] for _ in range(nprocs)]
    map_pending = [0] * nprocs
    slot = bytearray(nprocs * nprocs)
    inbox_row = [[-1] * nprocs for _ in range(nprocs)]
    inbox_ct = [0] * nprocs
    finished = 0

    # Pre-allocation: permanent footprint, then (baseline) the full
    # volatile span — same order and same error messages as the
    # interpreted engine's ObjectAllocator.
    for q in range(nprocs):
        pb = lo.perm_bytes[q]
        if pb:
            if pb > capacity:
                raise MemoryError_(
                    f"allocating '<permanent>' ({pb} B) exceeds capacity "
                    f"({used[q]}/{capacity} B used)"
                )
            used[q] = pb
            apk[q] = pb
    if not ep.memory_managed:
        for q in range(nprocs):
            u = used[q]
            base = q * nobjects
            for oid in lo.span_oids[q]:
                if allocated[base + oid]:
                    raise MemoryError_(
                        f"object {obj_name[oid]!r} is already allocated"
                    )
                sz = osz[oid]
                if u + sz > capacity:
                    raise MemoryError_(
                        f"allocating {obj_name[oid]!r} ({sz} B) exceeds "
                        f"capacity ({u}/{capacity} B used)"
                    )
                allocated[base + oid] = 1
                u += sz
            used[q] = u
            if u > apk[q]:
                apk[q] = u

    events: list[tuple] = []
    seq = 0
    last_seq = -1
    now = 0.0
    booting = True

    def push(t: float, code: int) -> None:
        # Same (time, seq) contract as the interpreted post() — see the
        # simulator module docstring; asserted for engine parity.
        nonlocal seq, last_seq
        assert seq > last_seq, (
            f"event seq must be strictly monotone ({seq} <= {last_seq})"
        )
        assert t >= now, (
            f"event scheduled in the past (t={t!r} < now={now!r})"
        )
        last_seq = seq
        heappush(events, (t, seq, code))
        seq += 1

    def charge(q: int, t: float, cost: float) -> float:
        a = avail[q]
        if a < t:
            a = t
        end = a + cost
        avail[q] = end
        over[q] += cost
        return end

    def _version_name_at(q: int, oid: int) -> Optional[str]:
        """current_version[m] as the interpreted engine would see it at
        a dispatch on ``q`` after ``nt[q]`` completions (cold path)."""
        last = None
        for pos, uname in lo.writes_by_po.get((q, oid), ()):
            if pos < nt[q]:
                last = uname
            else:
                break
        return last

    def _raise_version(q: int, od: int):
        ver = _version_name_at(q, int(lo.od_oid[od]))
        raise DataConsistencyError(
            f"P{q} sending {lo.od_oname_l[od]!r} version {ver!r} for an "
            f"edge requiring version {lo.od_uname_l[od]!r}"
        )

    def dispatch(q: int, od: int, t: float) -> None:
        if not od_ok0_l[od] or nt[q] > od_ow_l[od]:
            _raise_version(q, od)
        t2 = charge(q, t, send_oh)
        dmsg[q] += 1
        if nic_serialize:
            nf = nic_free[q]
            start = nf if nf >= t2 else t2
            nic_free[q] = start + od_nic_l[od]
            arrive = start + od_net_l[od]
        else:
            arrive = t2 + od_net_l[od]
        push(arrive, _DATA_BASE | od_mk_l[od])

    def ra(q: int, t: float) -> None:
        if inbox_ct[q]:
            row = inbox_row[q]
            for src in range(nprocs):
                k = row[src]
                if k < 0:
                    continue
                row[src] = -1
                i = pkg_ak_ptr_l[k]
                hi = pkg_ak_ptr_l[k + 1]
                while i < hi:
                    known[pkg_ak_l[i]] = 1
                    i += 1
                pread[q] += 1
                charge(q, t, ra_cost)
                a = avail[q]
                start = a if a >= t else t
                push(start + put_lat, _SLOT_BASE | (src * nprocs + q))
            inbox_ct[q] = 0
        if suspended[q]:
            still = []
            ready = []
            for od in suspended[q]:
                if known[od_ak_l[od]]:
                    ready.append(od)
                else:
                    still.append(od)
            suspended[q] = still
            for od in ready:
                a = avail[q]
                dispatch(q, od, a if a >= t else t)

    def try_send(q: int, t: float) -> bool:
        still = []
        for k in pending_pkgs[q]:
            dst = pkg_dst_l[k]
            if slot[q * nprocs + dst]:
                still.append(k)
                continue
            slot[q * nprocs + dst] = 1
            t2 = charge(q, t, pkg_cost_l[k])
            psent[q] += 1
            push(t2 + put_lat, _ADDR_BASE | k)
        pending_pkgs[q] = still
        return not still

    def exec_map(q: int, step: tuple, t: float) -> None:
        nmaps[q] += 1
        charge(q, t, step[1])
        u = used[q]
        base = q * nobjects
        i = step[2]
        hi = step[3]
        while i < hi:
            oid = mf_oid_l[i]
            if not allocated[base + oid]:
                raise MemoryError_(
                    f"freeing unallocated object {obj_name[oid]!r}"
                )
            allocated[base + oid] = 0
            u -= osz[oid]
            gid = mf_grp_l[i]
            if gid >= 0:
                j = grp_ptr_l[gid]
                ghi = grp_ptr_l[gid + 1]
                while j < ghi:
                    arrived[grp_mk_l[j]] = 0
                    j += 1
            i += 1
        i = step[4]
        hi = step[5]
        while i < hi:
            oid = ma_oid_l[i]
            if allocated[base + oid]:
                raise MemoryError_(
                    f"object {obj_name[oid]!r} is already allocated"
                )
            sz = osz[oid]
            if u + sz > capacity:
                raise MemoryError_(
                    f"allocating {obj_name[oid]!r} ({sz} B) exceeds "
                    f"capacity ({u}/{capacity} B used)"
                )
            allocated[base + oid] = 1
            u += sz
            if u > apk[q]:
                apk[q] = u
            i += 1
        used[q] = u
        if apk[q] > peakmem[q]:
            peakmem[q] = apk[q]
        if not preknown:
            pp = pending_pkgs[q]
            k = step[6]
            hi = step[7]
            while k < hi:
                pp.append(k)
                k += 1
            map_pending[q] = 1

    def finish_noisy(q: int, step: tuple, t: float) -> None:
        nt[q] += 1
        ltf[q] = t
        i = step[7]
        hi = step[8]
        while i < hi:
            need[cons_mk_l[i]] -= 1
            i += 1
        i = step[3]
        hi = step[4]
        while i < hi:
            if known[od_ak_l[i]]:
                dispatch(q, i, t)
            else:
                suspended[q].append(i)
                susp_ct[q] += 1
            i += 1
        i = step[5]
        hi = step[6]
        while i < hi:
            t2 = charge(q, t, send_oh)
            smsg[q] += 1
            push(t2 + put_lat, _SYNC_BASE | os_sk_l[i])
            i += 1
        sp[q] += 1

    def advance(q: int, t: float) -> None:
        nonlocal finished
        st = state[q]
        if st == _EXE or st == _DONE:
            return
        if inbox_ct[q] or suspended[q]:
            ra(q, t)
        steps_q = steps[q]
        ns = nsteps[q]
        while True:
            if map_pending[q]:
                a = avail[q]
                if not try_send(q, a if a >= t else t):
                    state[q] = _MAP
                    return
                map_pending[q] = 0
            i = sp[q]
            if i >= ns:
                if suspended[q] or pending_pkgs[q]:
                    state[q] = _END
                    return
                if state[q] != _DONE:
                    state[q] = _DONE
                    a = avail[q]
                    fin[q] = a if a >= t else t
                    finished += 1
                return
            step = steps_q[i]
            op = step[0]
            if op == _MAP_OP:
                exec_map(q, step, t)
                sp[q] = i + 1
                continue
            if op == _SEG_OP:
                ws = step[1]
                n = step[4]
                k = so[q]
                a = avail[q]
                if a < t:
                    a = t
                if booting:
                    thr = _NEG_INF
                else:
                    thr = events[0][0] if events else _INF
                if k == 0 and (a + step[2]) * step[3] < thr:
                    if step[5] is not None:
                        b = _seg_all_vec(step, a, busy[q])
                    else:
                        b = _seg_all_hot(ws, a, busy[q])
                    avail[q] = b[0]
                    busy[q] = b[1]
                    nt[q] += n
                    ltf[q] = b[0]
                    sp[q] = i + 1
                    continue
                if step[5] is not None and n - k >= _SEG_VEC_MIN:
                    a2, b2, j, lastf = _seg_until_vec(step, k, n, a, busy[q], thr)
                else:
                    a2, b2, j, lastf = _seg_until_hot(ws, k, n, a, busy[q], thr)
                busy[q] = b2
                avail[q] = a2
                nc = j - k
                if nc:
                    nt[q] += nc
                    ltf[q] = lastf
                if j < n:
                    # Task j executed; its completion crosses the event
                    # horizon and must pop through the heap.
                    so[q] = j
                    state[q] = _EXE
                    push(a2, _TASK_BASE | q)
                    return
                sp[q] = i + 1
                so[q] = 0
                continue
            # _TASK_OP
            if pending[step[1]] > 0:
                state[q] = _REC
                return
            w = step[2]
            a = avail[q]
            if a < t:
                a = t
            busy[q] += w
            f = a + w
            avail[q] = f
            if booting or (events and f >= events[0][0]):
                state[q] = _EXE
                push(f, _TASK_BASE | q)
                return
            # Inline completion: f is strictly before every queued
            # event, so the interpreted engine would pop exactly this
            # completion next.  The interpreted re-entry ra() is a
            # provable no-op here: no pops happened since advance
            # entry, so the inbox is still empty and any send just
            # suspended has an unknown address by definition.
            finish_noisy(q, step, f)
            a = avail[q]
            t = a if a >= f else f

    # --- bootstrap (push-only: see module docstring) -------------------
    for q in range(nprocs):
        advance(q, 0.0)
    booting = False

    # --- event loop ---------------------------------------------------
    while events:
        ev = heappop(events)
        t = ev[0]
        now = t
        code = ev[2]
        kind = code >> _SHIFT
        arg = code & _ARG_MASK
        if kind == 0:  # TASK_DONE on processor arg
            q = arg
            step = steps[q][sp[q]]
            if step[0] == _SEG_OP:
                nt[q] += 1
                ltf[q] = t
                k = so[q] + 1
                if k >= step[4]:
                    sp[q] += 1
                    so[q] = 0
                else:
                    so[q] = k
            else:
                finish_noisy(q, step, t)
            state[q] = _REC
            a = avail[q]
            advance(q, a if a >= t else t)
        elif kind == 1:  # DATA_ARRIVE of message key arg
            mk = arg
            dest = mk_dest_l[mk]
            if managed_check and not allocated[dest * nobjects + mk_oid_l[mk]]:
                raise SimulationError(
                    f"data for {mk_oname_l[mk]!r} arrived at P{dest} with "
                    "no allocated space (protocol violation)"
                )
            gid = grp_of_l[mk]
            glo = grp_ptr_l[gid]
            ghi = grp_ptr_l[gid + 1]
            if ghi - glo > 1:
                i = glo
                while i < ghi:
                    mk2 = grp_mk_l[i]
                    if mk2 != mk and arrived[mk2]:
                        if need[mk2] > 0:
                            raise DataConsistencyError(
                                f"P{dest} received {mk_oname_l[mk]!r}/"
                                f"{mk_uname_l[mk]!r} while version "
                                f"{mk_uname_l[mk2]!r} is still needed"
                            )
                        arrived[mk2] = 0
                    i += 1
            if not arrived[mk]:
                arrived[mk] = 1
                i = wait_ptr_l[mk]
                hi = wait_ptr_l[mk + 1]
                while i < hi:
                    pending[wait_tid_l[i]] -= 1
                    i += 1
            st = state[dest]
            if st == _REC or st == _MAP or st == _END:
                advance(dest, t)
        elif kind == 2:  # SYNC_ARRIVE of sync key arg
            sk = arg
            dest = sk_dest_l[sk]
            if not sync_arr[sk]:
                sync_arr[sk] = 1
                i = swait_ptr_l[sk]
                hi = swait_ptr_l[sk + 1]
                while i < hi:
                    pending[swait_tid_l[i]] -= 1
                    i += 1
            st = state[dest]
            if st == _REC or st == _MAP or st == _END:
                advance(dest, t)
        elif kind == 3:  # ADDR_ARRIVE of package arg
            k = arg
            dst = pkg_dst_l[k]
            src = pkg_src_l[k]
            row = inbox_row[dst]
            if row[src] < 0:
                inbox_ct[dst] += 1
            row[src] = k
            st = state[dst]
            if st == _REC or st == _MAP or st == _END:
                advance(dst, t)
            elif st == _DONE:
                ra(dst, t)
        else:  # SLOT_FREE: arg = src * P + dst
            slot[arg] = 0
            src = arg // nprocs
            st = state[src]
            if st == _REC or st == _MAP or st == _END:
                advance(src, t)

    # --- verdicts (exact interpreted parity) --------------------------
    completed = 0
    for q in range(nprocs):
        completed += nt[q]
    if finished != nprocs:
        _raise_deadlock(
            sim, lo, ep, state, nt, completed, arrived, sync_arr,
            suspended, pending_pkgs, slot, known,
        )
    if completed != sim.g.num_tasks:
        raise SimulationError(
            f"only {completed}/{sim.g.num_tasks} tasks executed"
        )
    stats = []
    for q in range(nprocs):
        pk = peakmem[q]
        if apk[q] > pk:
            pk = apk[q]
        if pk > capacity:
            raise SimulationError(
                f"P{q} peak memory {pk} exceeds capacity {capacity}"
            )
        stats.append(ProcessorStats(
            busy_time=busy[q],
            overhead_time=over[q],
            num_maps=nmaps[q],
            num_tasks=nt[q],
            data_msgs_sent=dmsg[q],
            sync_msgs_sent=smsg[q],
            suspended_sends=susp_ct[q],
            packages_sent=psent[q],
            packages_read=pread[q],
            peak_memory=pk,
            finish_time=fin[q],
        ))
    pt = max(fin) if fin else 0.0
    return SimResult(
        parallel_time=pt,
        task_finish_time=max(ltf) if ltf else 0.0,
        stats=stats,
        capacity=capacity,
        memory_managed=sim.memory_managed,
        plan=sim.plan,
        trace=None,
        telemetry=None,
        schedule_label=sim.schedule_label,
        engine="compiled",
    )


def _raise_deadlock(
    sim, lo, ep, state, nt, completed, arrived, sync_arr,
    suspended, pending_pkgs, slot, known,
):
    """Reconstruct the interpreted engine's DeadlockError verbatim."""
    cs = sim.compiled
    sched = cs.schedule
    nprocs = lo.num_procs
    blocked = {
        q: _STATE_NAMES[state[q]]
        for q in range(nprocs)
        if state[q] != _DONE
    }
    err = DeadlockError(blocked, completed, sim.g.num_tasks)
    details: dict[int, str] = {}
    wait_for: dict[int, set[int]] = {}
    assignment = sched.assignment
    trigger = cs.trigger
    mk_index, sk_index = lo.mk_index, lo.sk_index
    for q in range(nprocs):
        if state[q] == _DONE:
            continue
        waits = wait_for.setdefault(q, set())
        order = sched.orders[q]
        if nt[q] < len(order):
            task = order[nt[q]]
            missing = []
            for req in cs.needs[task]:
                if req[0] == "data":
                    mk = mk_index[(q, req[1], req[2])]
                    if not arrived[mk]:
                        missing.append(f"data {req[1]}@{req[2]}")
                        waits.add(assignment[trigger[req[2]]])
                elif not sync_arr[sk_index[(req[1], q)]]:
                    missing.append(f"sync {req[1]}")
                    waits.add(assignment[req[1]])
            details[q] = f"next={task} missing={missing}"
        else:
            susp = [lo.od_tuple_l[od] for od in suspended[q]]
            pkgs = [
                (ep.pkg_dst_l[k], list(ep.pkg_objs[k]))
                for k in pending_pkgs[q]
            ]
            details[q] = f"END suspended={susp} pending_pkgs={pkgs}"
        for k in pending_pkgs[q]:
            if slot[q * nprocs + ep.pkg_dst_l[k]]:
                waits.add(ep.pkg_dst_l[k])
        for od in suspended[q]:
            if not known[lo.od_ak_l[od]]:
                waits.add(lo.od_dest_l[od])
        waits.discard(q)
    err.details = details
    err.wait_for = wait_for
    raise err
