"""Discrete-event execution of schedules under active memory management.

This module is the Cray-T3D stand-in: it executes a static schedule on
``p`` simulated processors connected by an RMA network, following the
five-state protocol of section 3.3 (Figure 3(b)):

* **REC** — the processor blocks until every input object of its next
  task is locally available;
* **EXE** — task computation (non-blocking, costs the task weight);
* **SND** — after a task completes, messages for remote readers are
  issued; a data put whose *remote address is unknown* is enqueued on the
  suspended sending queue (worst-case length ``O(e)``, as the paper
  notes);
* **MAP** — a memory allocation point: frees dead volatile objects,
  allocates forward, assembles address packages; blocks while a
  destination has not consumed the previous package (one unbuffered
  address slot per ordered processor pair);
* **END** — all local tasks done; the processor drains its suspended
  queue before terminating.

Blocked states perform **RA** (read arrived address packages, freeing
the sender's slot) and **CQ** (dispatch suspended sends whose addresses
became known) — in the event-driven setting these run at task
boundaries and whenever an event wakes a blocked processor, which is
semantically the "invoke frequently" requirement of the paper.

The simulator *verifies* Theorem 1 as it runs: every data put checks
that the sender's local content version matches the version the edge
requires (no stale copies), arriving data must land in allocated
space, and an empty event queue with unfinished processors raises
:class:`~repro.errors.DeadlockError` (which Theorem 1 proves impossible
when ``capacity >= MIN_MEM``; the property tests exercise this).

Two execution modes:

* ``memory_managed=True`` — the full protocol driven by a
  :class:`~repro.core.maps.MapPlan` (positions from the static liveness
  analysis);
* ``memory_managed=False`` — the *baseline* of Tables 2/3: all volatile
  space pre-allocated, all addresses known a priori, no MAP costs.

Performance architecture
------------------------

The static preprocessing (trigger tasks, message fan-out, receiver
requirement counts) depends only on the schedule, not on the memory
capacity, so it lives in :class:`CompiledSchedule` and is computed once
per schedule.  The experiment sweeps run one schedule under many
capacities; compiling once and passing ``compiled=`` skips the repeated
validation / liveness analysis / table construction.  A
``CompiledSchedule`` also memoises MAP plans per capacity.

Readiness of a task is tracked with countdown counters: every task
starts with the number of distinct remote inputs it waits for, each
arrival decrements the counters of the tasks waiting on that key, and a
task is ready exactly when its counter reaches zero — no per-wake-up
rescan of the requirement list.

All dynamic state of :meth:`Simulator.run` is local to the call: a
``Simulator`` (and the ``MapPlan``/``CompiledSchedule`` it holds) can be
run repeatedly — even concurrently from several threads — and a failed
run (:class:`~repro.errors.DeadlockError`, …) leaves no residue behind.

Event ordering and time arithmetic
----------------------------------

The event queue is a heap of ``(time, seq, kind, payload)`` tuples where
``seq`` is a strictly monotone push counter.  Same-timestamp events are
therefore processed in *push order* (deterministic FIFO tie-breaking);
:func:`post` asserts both invariants at push time — ``seq``
monotonicity, and causality (``time >= now``, the timestamp of the
event currently being processed), which together guarantee the heap
never pops an event "in the past" and that tie order is exactly
creation order.  All event times are plain Python ``float64`` values
produced by *sequential* additions (``start + cost``); there is no
re-association, no compensated summation and no numpy accumulation
anywhere in the loop, so a given schedule produces bit-identical times
on every run.  The array-compiled engine (:mod:`repro.machine.compiled`)
reproduces the same float expressions in the same order and only
completes a task inline when its finish time is *strictly* before the
earliest queued event, which preserves this (time, seq) order exactly —
the differential oracle compares engines with ``==``, not ``allclose``.

Engine selection
----------------

``Simulator(..., engine="compiled")`` routes fault-free, uninstrumented
runs through the array-compiled engine; runs with ``metrics=True``,
``trace=True``, an attached instrument, active fault injection, a
caller-supplied ``plan`` object, or negative spec costs fall back to
this interpreted engine *explicitly* (``SimResult.engine`` records
which engine produced the result).  ``engine="auto"`` is the same
policy spelled as a preference rather than a request.

Telemetry
---------

The run loop drives the :mod:`repro.obs` instrument layer with typed
protocol events (state transitions, puts issued/suspended/drained,
address-package traffic, MAP free/allocate decisions).  Instrumentation
follows the null-object pattern and is gated by a single ``observing``
boolean hoisted out of the loop: with ``trace=False``/``metrics=False``
and no instrument attached, the per-event cost is one local-bool test
and **no allocation** — the disabled engine speed is recorded by
``benchmarks/bench_sweep_engine.py``.  ``metrics=True`` attaches the
standard :class:`~repro.obs.instruments.MetricsSuite` and fills
:attr:`SimResult.metrics` / :attr:`SimResult.telemetry`; ``trace=True``
is now a :class:`~repro.obs.tracelog.TraceLog` instrument.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from enum import Enum
from time import perf_counter
from typing import Optional

from ..core.liveness import MemoryProfile, analyze_memory
from ..core.maps import MapPlan, MapPoint, plan_maps
from ..core.placement import validate_owner_compute
from ..core.schedule import Schedule
from ..errors import DataConsistencyError, DeadlockError, SimulationError
from ..obs.instrument import Instrument, MultiInstrument
from ..obs.instruments import MetricsSuite
from ..obs.metrics import build_metrics
from ..obs.tracelog import TraceEvent, TraceLog
from .memory import ObjectAllocator
from .spec import CRAY_T3D, MachineSpec

__all__ = [
    "CompiledSchedule",
    "ENGINE_COUNTER_KEYS",
    "ProcessorStats",
    "ProcState",
    "SimResult",
    "Simulator",
    "TraceEvent",
    "compile_schedule",
    "simulate",
]


class ProcState(Enum):
    REC = "REC"
    EXE = "EXE"
    SND = "SND"
    MAP = "MAP"
    END = "END"
    DONE = "DONE"


# Event kinds (ordered tuples on a heap).
_TASK_DONE = 0
_DATA_ARRIVE = 1
_ADDR_ARRIVE = 2
_SLOT_FREE = 3

#: Always-present keys of :attr:`CompiledSchedule.counters` (the
#: ``fallback:<reason>`` tallies appear on first use).  ``*_s`` keys
#: are :func:`time.perf_counter` phase timers in seconds; the
#: ``exec_plan_s`` miss timer *includes* any first-call lowering /
#: MAP-planning it triggers (subtract ``lower_s`` / ``plan_s`` for the
#: exclusive cost).
ENGINE_COUNTER_KEYS = (
    "plan_hits", "plan_misses", "plan_s",
    "lower_hits", "lower_misses", "lower_s",
    "exec_plan_hits", "exec_plan_misses", "exec_plan_s",
    "compiled_runs", "exec_s", "interpreted_runs",
)


@dataclass
class ProcessorStats:
    """Per-processor execution statistics."""

    busy_time: float = 0.0
    #: CPU time spent on protocol work: MAP actions, package assembly,
    #: RA reads, send overheads.
    overhead_time: float = 0.0
    num_maps: int = 0
    #: Tasks of the schedule order executed by this processor.
    num_tasks: int = 0
    data_msgs_sent: int = 0
    sync_msgs_sent: int = 0
    suspended_sends: int = 0
    packages_sent: int = 0
    packages_read: int = 0
    peak_memory: int = 0
    finish_time: float = 0.0

    @property
    def idle_time(self) -> float:
        """Time neither computing nor doing protocol work (blocked in
        REC / MAP / END waits)."""
        return max(self.finish_time - self.busy_time - self.overhead_time, 0.0)


@dataclass
class SimResult:
    """Outcome of one simulated execution."""

    parallel_time: float
    task_finish_time: float
    stats: list[ProcessorStats]
    capacity: int
    memory_managed: bool
    plan: Optional[MapPlan] = None
    trace: Optional[list[TraceEvent]] = None
    #: Versioned metrics document (``metrics=True``; see
    #: :func:`repro.obs.metrics.build_metrics`).
    metrics: Optional[dict] = None
    #: The :class:`~repro.obs.instruments.MetricsSuite` that observed the
    #: run (``metrics=True``); feeds the Chrome-trace / HTML exporters.
    telemetry: Optional[MetricsSuite] = None
    #: ``heuristic:pP:Nt`` label of the executed schedule.
    schedule_label: str = ""
    #: Which engine produced this result: ``"interpreted"`` or
    #: ``"compiled"`` (a requested-compiled run that fell back to the
    #: interpreted engine records ``"interpreted"``).
    engine: str = "interpreted"
    #: Why a requested-compiled run fell back to the interpreted engine
    #: (``"metrics"``, ``"trace"``, ``"instrument"``, ``"faults"``,
    #: ``"caller-plan"``, ``"negative-cost"``); ``None`` when no
    #: fallback happened.
    fallback_reason: Optional[str] = None

    def render_trace(self, limit: Optional[int] = 200) -> str:
        """Human-readable event log (requires ``trace=True``).

        ``limit`` caps the number of events shown; ``limit=None`` means
        *all* events.  The first line is a header identifying the run.
        """
        if self.trace is None:
            return "(tracing was not enabled)"
        shown = self.trace if limit is None else self.trace[:limit]
        lines = [
            f"# trace: schedule={self.schedule_label or '?'} "
            f"procs={len(self.stats)} capacity={self.capacity} "
            f"memory_managed={self.memory_managed} "
            f"events={len(self.trace)}"
        ]
        lines += [
            f"{e.time:12.6f}  P{e.proc}  {e.kind:<7} {e.detail}"
            for e in shown
        ]
        if len(self.trace) > len(shown):
            lines.append(f"... ({len(self.trace) - len(shown)} more events)")
        return "\n".join(lines)

    @property
    def avg_maps(self) -> float:
        """Average MAPs over processors that own tasks — the same
        non-empty-order rule as :attr:`repro.core.maps.MapPlan.avg_maps`,
        so the ``#MAPs`` columns of Tables 2/3/5 agree between the
        static plan and the executed result."""
        counts = [s.num_maps for s in self.stats if s.num_tasks]
        return sum(counts) / len(counts) if counts else 0.0

    @property
    def peak_memory(self) -> int:
        return max((s.peak_memory for s in self.stats), default=0)

    @property
    def total_data_msgs(self) -> int:
        return sum(s.data_msgs_sent for s in self.stats)

    @property
    def utilization(self) -> float:
        if self.parallel_time <= 0:
            return 1.0
        p = len(self.stats)
        return sum(s.busy_time for s in self.stats) / (p * self.parallel_time)


class CompiledSchedule:
    """Capacity-independent static tables for simulating one schedule.

    Compiling is the expensive part of constructing a
    :class:`Simulator`: schedule validation, the liveness analysis, the
    producer-unit triggers, message fan-out and the receiver requirement
    counters.  None of it depends on the memory capacity or execution
    mode, so one compiled schedule serves every run of that schedule —
    pass it via ``Simulator(compiled=...)``.

    MAP plans *do* depend on the capacity; :meth:`plan_for` memoises
    them per capacity so a sweep re-running one schedule under a
    capacity it has already planned pays nothing.

    Cache-staleness guard
    ---------------------
    Both memoised caches are guarded against silent staleness:

    * the MAP-plan cache (:meth:`plan_for`) is keyed by capacity only,
      which is sound *because* everything else a plan depends on — the
      schedule orders, the graph shape and the processor count — is
      frozen into this object at ``_compile`` time.  A structural
      fingerprint is captured then, and :meth:`check_fresh` (called on
      every ``plan_for`` / compiled-engine lookup) raises
      :class:`~repro.errors.SimulationError` if the underlying
      ``Schedule``/graph was mutated afterwards, instead of serving a
      plan for a schedule that no longer exists.
    * compiled-engine execution plans additionally depend on the
      :class:`~repro.machine.spec.MachineSpec` (cost parameters) and the
      execution mode, so they are cached under the full key
      ``(capacity, spec, memory_managed, preknown)`` — ``MachineSpec``
      is a frozen dataclass and hashes by value, so two sweeps over
      different machines never share an execution plan.
    """

    def __init__(
        self,
        schedule: Schedule,
        profile: Optional[MemoryProfile] = None,
        validate: bool = True,
    ):
        self.schedule = schedule
        self.graph = schedule.graph
        self.num_procs = schedule.num_procs
        if validate:
            schedule.validate()
            validate_owner_compute(
                self.graph, schedule.placement, schedule.assignment
            )
        self.profile = profile if profile is not None else analyze_memory(schedule)
        self._plans: dict[int, MapPlan] = {}
        #: compiled-engine execution plans, keyed
        #: ``(capacity, spec, memory_managed, preknown)`` — see
        #: :func:`repro.machine.compiled.get_exec_plan`.
        self._exec_plans: dict[tuple, object] = {}
        #: lowered dense-array IR (shared by every execution plan).
        self._lowered: Optional[object] = None
        #: engine introspection counters: cache hits/misses and phase
        #: timers for the MAP-plan / lowering / ExecPlan caches, run
        #: counts per engine and ``fallback:<reason>`` tallies.  Updated
        #: only at cache-lookup boundaries and run entry — never inside
        #: the execution hot loops.
        self.counters: dict = {k: 0.0 if k.endswith("_s") else 0
                               for k in ENGINE_COUNTER_KEYS}
        self._compile()
        self._fingerprint = self._schedule_fingerprint()

    # -- producer units -------------------------------------------------

    def pid(self, task: str) -> str:
        """Producer unit: commuting-group key or the task itself."""
        return self._pid_of[task]

    def _compile(self) -> None:
        g, sched = self.graph, self.schedule
        assignment = sched.assignment
        nprocs = self.num_procs
        pos = sched.position()

        self._pid_of: dict[str, str] = {}
        for name in g.task_names:
            t = g.task(name)
            self._pid_of[name] = t.commute if t.commute is not None else name
        pid_of = self._pid_of

        # Trigger task of each producer unit: the unit's last task in the
        # processor order (commuting groups are co-located).
        trigger: dict[str, str] = {}
        for t in g.task_names:
            u = pid_of[t]
            cur = trigger.get(u)
            if cur is None or pos[t] > pos[cur]:
                trigger[u] = t
        self.trigger = trigger

        # Outgoing messages per trigger task.
        #   data: (obj, unit, dest, nbytes)   sync: (unit, dest)
        out_data: dict[str, list[tuple[str, str, int, int]]] = {}
        out_sync: dict[str, list[tuple[str, int]]] = {}
        seen_data: set[tuple[str, str, int]] = set()
        seen_sync: set[tuple[str, int]] = set()
        # Receiver-side requirements per task:
        #   list of ("data", obj, unit) / ("sync", unit)
        needs: dict[str, list[tuple]] = {t: [] for t in g.task_names}
        # How many unexecuted tasks of each processor still need a given
        # received key (for the stale-copy consistency check).
        need_count: list[dict[tuple, int]] = [dict() for _ in range(nprocs)]
        # Tasks waiting on each received key, per destination processor
        # (drives the readiness countdown counters).
        data_waiters: list[dict[tuple[str, str], list[str]]] = [
            dict() for _ in range(nprocs)
        ]
        sync_waiters: list[dict[str, list[str]]] = [dict() for _ in range(nprocs)]
        # Distinct remote inputs each task waits for.
        pending: dict[str, int] = {}

        for u, v, objs in g.edges():
            pu, pv = assignment[u], assignment[v]
            if pu == pv:
                continue
            unit = pid_of[u]
            trig = trigger[unit]
            if objs:
                # The payload of a commuting group is its accumulated
                # result: one message per (object, group, destination),
                # issued when the group's last local task finishes.  The
                # true graph gives readers edges from *every* member, so
                # waiting for the group adds no false synchronisation.
                for m in sorted(objs):
                    key = (m, unit, pv)
                    if key not in seen_data:
                        seen_data.add(key)
                        out_data.setdefault(trig, []).append(
                            (m, unit, pv, g.object(m).size)
                        )
                    needs[v].append(("data", m, unit))
                    cnt = need_count[pv]
                    cnt[(m, unit)] = cnt.get((m, unit), 0) + 1
                    waiters = data_waiters[pv].setdefault((m, unit), [])
                    if v not in waiters:
                        waiters.append(v)
                        pending[v] = pending.get(v, 0) + 1
            else:
                # Synchronisation edges are member-specific (they encode
                # a transformed anti/output dependence from one task);
                # firing them at group completion instead would create
                # circular waits the true graph does not have.
                key = (u, pv)
                if key not in seen_sync:
                    seen_sync.add(key)
                    out_sync.setdefault(u, []).append((u, pv))
                needs[v].append(("sync", u))
                waiters = sync_waiters[pv].setdefault(u, [])
                if v not in waiters:
                    waiters.append(v)
                    pending[v] = pending.get(v, 0) + 1
        self.out_data = out_data
        self.out_sync = out_sync
        self.needs = needs
        self.need_count0 = need_count
        self.data_waiters = data_waiters
        self.sync_waiters = sync_waiters
        self.pending0 = pending

        # Per-task execution constants for the hot loop.
        self.weight: dict[str, float] = {
            t: g.task(t).weight for t in g.task_names
        }
        #: task -> tuple of (object, producer unit) version updates.
        self.write_version: dict[str, tuple[tuple[str, str], ...]] = {
            t: tuple((m, pid_of[t]) for m in g.task(t).writes)
            for t in g.task_names
        }
        #: task -> received keys it consumes (with multiplicity, matching
        #: ``need_count0``).
        self.consumes: dict[str, tuple[tuple[str, str], ...]] = {
            t: tuple(
                (req[1], req[2]) for req in needs[t] if req[0] == "data"
            )
            for t in g.task_names
        }
        self.obj_size: dict[str, int] = {o.name: o.size for o in g.objects()}

        # Every volatile object a processor reads must have a producer
        # somewhere, otherwise its owner would never send data (and the
        # address-package handshake could block a MAP forever).  Graphs
        # built with ``materialize_inputs=True`` satisfy this by
        # construction.
        produced = {m for t in g.tasks() for m in t.writes}
        for q in range(nprocs):
            for m in self.profile.procs[q].span:
                if m not in produced:
                    raise SimulationError(
                        f"volatile object {m!r} read on P{q} has no producer; "
                        "build the graph with materialize_inputs=True"
                    )

        # Permanent footprint per processor (allocated for the whole run).
        self.perm_bytes = [pp.perm_bytes for pp in self.profile.procs]

    # -- cache-staleness guard ------------------------------------------

    def _schedule_fingerprint(self) -> tuple:
        """Structural identity of the schedule/graph the caches assume.

        Cheap (O(P)) by design so :meth:`check_fresh` can run on every
        memoised lookup: graph shape (task/object/edge counts), the
        processor count and the per-processor order lengths plus their
        final tasks.  Any mutation of ``schedule.orders`` or the graph
        that could invalidate a cached plan changes at least one of
        these."""
        g, sched = self.graph, self.schedule
        return (
            g.num_tasks,
            g.num_objects,
            g.num_edges,
            sched.num_procs,
            tuple(len(o) for o in sched.orders),
            tuple(o[-1] if o else "" for o in sched.orders),
        )

    def check_fresh(self) -> None:
        """Raise :class:`~repro.errors.SimulationError` if the schedule
        or graph was mutated after compilation (the memoised plans and
        execution plans would silently describe a stale schedule)."""
        if self._schedule_fingerprint() != self._fingerprint:
            raise SimulationError(
                "CompiledSchedule is stale: the schedule or graph changed "
                "after compilation; build a new CompiledSchedule instead of "
                "mutating the schedule behind a cached one"
            )

    # -- MAP plans ------------------------------------------------------

    def plan_for(self, capacity: int) -> MapPlan:
        """MAP plan of this schedule under ``capacity``, memoised.

        Raises :class:`~repro.errors.NonExecutableScheduleError` below
        ``MIN_MEM`` (failures are not cached).  The capacity-only key is
        guarded by :meth:`check_fresh`; see the class docstring."""
        self.check_fresh()
        plan = self._plans.get(capacity)
        if plan is None:
            self.counters["plan_misses"] += 1
            t0 = perf_counter()
            plan = plan_maps(self.schedule, capacity, self.profile)
            self.counters["plan_s"] += perf_counter() - t0
            self._plans[capacity] = plan
        else:
            self.counters["plan_hits"] += 1
        return plan


def compile_schedule(
    schedule: Schedule,
    profile: Optional[MemoryProfile] = None,
    validate: bool = True,
) -> CompiledSchedule:
    """Convenience wrapper around :class:`CompiledSchedule`."""
    return CompiledSchedule(schedule, profile=profile, validate=validate)


class Simulator:
    """Execute one schedule on the simulated machine.

    Parameters
    ----------
    schedule:
        A validated static schedule (owner-compute is asserted).  May be
        omitted when ``compiled`` is given.
    spec:
        Machine cost parameters (default: :data:`~repro.machine.spec.CRAY_T3D`).
    capacity:
        Per-processor memory in bytes/units; defaults to
        ``spec.memory_capacity``.  With ``memory_managed=True`` a
        :class:`~repro.errors.NonExecutableScheduleError` propagates from
        the MAP planner when the capacity is below ``MIN_MEM``; the
        baseline mode requires ``capacity >= TOT``.
    memory_managed:
        Toggle the active memory management protocol (see module doc).
    plan / profile:
        Optional precomputed MAP plan and memory profile (re-used by the
        experiment sweeps).
    compiled:
        Optional :class:`CompiledSchedule`; skips validation, liveness
        analysis and static preprocessing entirely.  One compiled
        schedule can back any number of simulators.

    :meth:`run` keeps all mutable execution state local to the call, so
    a simulator can be run repeatedly (and concurrently) and an aborted
    run never corrupts the shared ``plan``/``compiled`` objects.
    """

    def __init__(
        self,
        schedule: Optional[Schedule] = None,
        spec: MachineSpec = CRAY_T3D,
        capacity: Optional[int] = None,
        memory_managed: bool = True,
        plan: Optional[MapPlan] = None,
        profile: Optional[MemoryProfile] = None,
        validate: bool = True,
        preknown_addresses: bool = False,
        trace: bool = False,
        compiled: Optional[CompiledSchedule] = None,
        metrics: bool = False,
        instrument: Optional[Instrument] = None,
        faults: Optional["FaultSpec"] = None,  # noqa: F821
        engine: str = "interpreted",
    ):
        """See class docstring; ``preknown_addresses=True`` models a
        steady-state iteration of an iterative application (RAPID's
        target workloads, Figure 1: "execute tasks iteratively"): the
        volatile addresses notified during the first iteration remain
        valid, so MAPs still pay their allocate/free costs but no
        address packages travel and no send ever suspends.

        ``metrics=True`` attaches a fresh
        :class:`~repro.obs.instruments.MetricsSuite` per run and fills
        ``SimResult.metrics``/``SimResult.telemetry``; ``instrument``
        attaches a custom :class:`~repro.obs.instrument.Instrument`
        (reused across runs — its ``on_run_begin`` must reset state).
        Both compose with ``trace=True``.

        ``faults`` accepts a
        :class:`~repro.conformance.faults.FaultSpec` (duck-typed:
        anything with ``active`` and ``injector()``); each run draws a
        fresh run-local injector, so faulted executions stay
        deterministic and repeatable.  An inactive spec costs one
        ``is None`` test per injection site.

        ``engine`` selects the execution engine: ``"interpreted"`` (the
        reference oracle, default), ``"compiled"`` (the array-compiled
        engine of :mod:`repro.machine.compiled`) or ``"auto"``
        (compiled when eligible).  Observed, fault-injected or
        caller-supplied-plan runs are not supported by the compiled
        engine and fall back to the interpreted one explicitly;
        ``SimResult.engine`` records which engine actually ran."""
        if engine not in ("interpreted", "compiled", "auto"):
            raise SimulationError(
                f"unknown engine {engine!r}; expected 'interpreted', "
                "'compiled' or 'auto'"
            )
        self.engine = engine
        if compiled is None:
            if schedule is None:
                raise SimulationError("Simulator needs a schedule or a compiled schedule")
            compiled = CompiledSchedule(schedule, profile=profile, validate=validate)
        elif schedule is not None and schedule is not compiled.schedule:
            raise SimulationError("schedule does not match compiled.schedule")
        self.compiled = compiled
        self.schedule = compiled.schedule
        self.spec = spec
        self.g = compiled.graph
        self.p = compiled.num_procs
        self.memory_managed = memory_managed
        self.preknown_addresses = preknown_addresses
        self.trace_enabled = trace
        self.metrics_enabled = metrics
        self.instrument = instrument
        self.faults = faults
        self.schedule_label = (
            f"{self.schedule.meta.get('heuristic', '?')}"
            f":p{self.p}:{self.g.num_tasks}t"
        )
        self.profile = compiled.profile
        if capacity is None:
            capacity = (
                spec.memory_capacity if memory_managed else max(self.profile.tot, 1)
            )
        self.capacity = int(capacity)
        if memory_managed:
            self.plan = plan if plan is not None else compiled.plan_for(self.capacity)
        else:
            if self.capacity < self.profile.tot:
                raise SimulationError(
                    "baseline mode needs capacity >= TOT "
                    f"({self.capacity} < {self.profile.tot})"
                )
            self.plan = None
        # MAPs by position per processor (tiny; per-simulator because the
        # plan may be caller-provided).
        self._map_at: list[dict[int, MapPoint]] = [dict() for _ in range(self.p)]
        if self.plan is not None:
            for pts in self.plan.points:
                for mp in pts:
                    self._map_at[mp.proc][mp.position] = mp

    def _pid(self, task: str) -> str:
        """Producer unit: commuting-group key or the task itself."""
        return self.compiled.pid(task)

    # ------------------------------------------------------------------
    # dynamic execution
    # ------------------------------------------------------------------

    def _compiled_fallback_reason(self) -> Optional[str]:
        """Why this run cannot use the array-compiled engine (or None).

        Observation (metrics/trace/instrument) and fault injection hook
        into per-event callbacks the compiled engine deliberately does
        not have; a caller-supplied MAP plan bypasses the memoised
        ``plan_for`` cache the execution plans are lowered from; and
        negative cost parameters break the causality invariant the
        inline-completion rule relies on.  All of these fall back to
        the interpreted oracle explicitly; the reason string is tallied
        in :attr:`CompiledSchedule.counters` (``fallback:<reason>``)
        and recorded on :attr:`SimResult.fallback_reason`."""
        if self.metrics_enabled:
            return "metrics"
        if self.trace_enabled:
            return "trace"
        if self.instrument is not None and self.instrument.enabled:
            return "instrument"
        if self.faults is not None and self.faults.active:
            return "faults"
        if self.memory_managed and self.plan is not self.compiled._plans.get(
            self.capacity
        ):
            return "caller-plan"
        spec = self.spec
        costs = (
            spec.put_latency, spec.byte_time, spec.send_overhead,
            spec.map_overhead, spec.alloc_cost, spec.free_cost,
            spec.package_overhead, spec.address_cost, spec.ra_cost,
        )
        if min(costs) < 0:
            return "negative-cost"
        return None

    def _compiled_engine_eligible(self) -> bool:
        """True when this run can use the array-compiled engine."""
        return self._compiled_fallback_reason() is None

    def run(self) -> SimResult:
        counters = self.compiled.counters
        if self.engine != "interpreted":
            reason = self._compiled_fallback_reason()
            if reason is None:
                from .compiled import run_compiled

                counters["compiled_runs"] += 1
                t0 = perf_counter()
                res = run_compiled(self)
                counters["exec_s"] += perf_counter() - t0
                return res
            key = "fallback:" + reason
            counters[key] = counters.get(key, 0) + 1
            counters["interpreted_runs"] += 1
            res = self._run_interpreted()
            res.fallback_reason = reason
            return res
        counters["interpreted_runs"] += 1
        return self._run_interpreted()

    def _run_interpreted(self) -> SimResult:
        sched, spec = self.schedule, self.spec
        cs = self.compiled
        nprocs = self.p
        # Hot-loop locals (closure lookups beat attribute lookups).
        out_data, out_sync = cs.out_data, cs.out_sync
        weight, write_version, consumes = cs.weight, cs.write_version, cs.consumes
        REC, EXE, SND = ProcState.REC, ProcState.EXE, ProcState.SND
        MAP, END, DONE = ProcState.MAP, ProcState.END, ProcState.DONE
        wake_states = (REC, MAP, END)

        # --- mutable state (all run-local) ---------------------------
        seq = 0
        last_seq = -1
        now = 0.0  # timestamp of the event currently being processed
        events: list[tuple] = []  # (time, seq, kind, payload)

        def post(t: float, kind: int, payload: tuple) -> None:
            # Tie-breaking contract (see module docstring): same-time
            # events pop in push order because ``seq`` increases
            # strictly at every push; causality (t >= now) guarantees
            # nothing is ever scheduled before the event being handled,
            # so heap order == processing order deterministically.  The
            # compiled engine reproduces exactly this (time, seq) order.
            nonlocal seq, last_seq
            assert seq > last_seq, (
                f"event seq must be strictly monotone ({seq} <= {last_seq})"
            )
            assert t >= now, (
                f"event scheduled in the past (t={t!r} < now={now!r})"
            )
            last_seq = seq
            heapq.heappush(events, (t, seq, kind, payload))
            seq += 1

        # --- telemetry (run-local; null-object instruments) -----------
        suite: Optional[MetricsSuite] = None
        tlog: Optional[TraceLog] = None
        insts: list[Instrument] = []
        if self.metrics_enabled:
            suite = MetricsSuite()
            insts.append(suite)
        if self.trace_enabled:
            tlog = TraceLog()
            insts.append(tlog)
        if self.instrument is not None and self.instrument.enabled:
            insts.append(self.instrument)
        obs: Optional[Instrument] = None
        if len(insts) == 1:
            obs = insts[0]
        elif insts:
            obs = MultiInstrument(insts)
        #: Single gate hoisted out of the hot loop: when no instrument is
        #: attached, each call site costs one local-bool test — no event
        #: objects, no detail strings, no allocation (see the
        #: instrumentation section of ``bench_sweep_engine.py``).
        observing = obs is not None
        if observing:
            obs.on_run_begin(0.0, nprocs, self.capacity, self.memory_managed)

        #: Run-local fault injector; ``None`` (the common case) keeps
        #: every injection site at a single local-is-None test.
        fi = None
        if self.faults is not None and self.faults.active:
            fi = self.faults.injector()

        state = [REC] * nprocs
        idx = [0] * nprocs
        avail = [0.0] * nprocs  # earliest time of the next local action
        done: set[str] = set()
        stats = [ProcessorStats() for _ in range(nprocs)]
        alloc = [ObjectAllocator(self.capacity) for _ in range(nprocs)]
        obj_size = cs.obj_size
        for q in range(nprocs):
            if cs.perm_bytes[q]:
                alloc[q].alloc("<permanent>", cs.perm_bytes[q])
                if observing:
                    obs.on_alloc(0.0, q, "<permanent>", cs.perm_bytes[q],
                                 alloc[q].used)
        if not self.memory_managed:
            # Baseline: all volatile space allocated up-front.
            for q in range(nprocs):
                for m in self.profile.procs[q].span:
                    alloc[q].alloc(m, obj_size[m])
                    if observing:
                        obs.on_alloc(0.0, q, m, obj_size[m], alloc[q].used)

        #: received volatile contents: per processor, object -> versions.
        received_data: list[dict[str, set[str]]] = [dict() for _ in range(nprocs)]
        received_sync: list[set[str]] = [set() for _ in range(nprocs)]
        #: countdown of unmet remote inputs per task (0 = ready).
        pending_inputs = dict(cs.pending0)
        data_waiters = cs.data_waiters
        sync_waiters = cs.sync_waiters
        current_version: dict[str, Optional[str]] = dict.fromkeys(obj_size)
        # Sender-side address knowledge: (obj, dest) pairs.
        addr_known: list[set[tuple[str, int]]] = [set() for _ in range(nprocs)]
        if not self.memory_managed or self.preknown_addresses:
            for q in range(nprocs):
                for m in self.profile.procs[q].span:
                    owner = sched.placement[m]
                    addr_known[owner].add((m, q))
        suspended: list[list[tuple[str, str, int, int]]] = [[] for _ in range(nprocs)]
        # Address-package slots: slot_busy[src][dst] from src's viewpoint;
        # inbox[dst][src] holds an unread package's object list.
        slot_busy: list[list[bool]] = [[False] * nprocs for _ in range(nprocs)]
        inbox: list[dict[int, list[str]]] = [dict() for _ in range(nprocs)]
        # Packages a blocked MAP still has to send: (dst, objs).
        pending_pkgs: list[list[tuple[int, list[str]]]] = [[] for _ in range(nprocs)]
        map_pending: list[bool] = [False] * nprocs
        # Position of the last MAP executed per processor (positions are
        # strictly increasing, so this marks a MAP done without mutating
        # the shared plan).
        map_done = [-1] * nprocs
        need_count = [dict(d) for d in cs.need_count0]
        finished_procs = 0
        last_task_finish = 0.0

        # --- helpers ---------------------------------------------------
        def charge(q: int, t: float, cost: float, kind: str) -> float:
            start = max(avail[q], t)
            end = start + cost
            avail[q] = end
            stats[q].overhead_time += cost
            if observing:
                obs.on_overhead(start, end, q, kind)
            return end

        nic_free = [0.0] * nprocs  # injection-link availability (optional)

        def dispatch_data(q: int, m: str, unit: str, dest: int, nbytes: int, t: float) -> None:
            if current_version[m] != unit:
                raise DataConsistencyError(
                    f"P{q} sending {m!r} version {current_version[m]!r} for an "
                    f"edge requiring version {unit!r}"
                )
            t2 = charge(q, t, spec.send_overhead, "send")
            stats[q].data_msgs_sent += 1
            net = spec.message_time(nbytes)
            if spec.nic_serialize:
                start = max(nic_free[q], t2)
                nic_free[q] = start + nbytes * spec.byte_time
                arrive = start + net
            else:
                arrive = t2 + net
            if fi is not None:
                arrive += fi.put_delay(q, dest, net)
            if observing:
                obs.on_put(t2, arrive, q, dest, m, unit, nbytes)
            post(arrive, _DATA_ARRIVE, (dest, m, unit, q))

        def ra(q: int, t: float) -> None:
            """Read arrived address packages, then check the suspended
            queue (the RA + CQ pair of Figure 3(b))."""
            if inbox[q]:
                for src, objs in sorted(inbox[q].items()):
                    for m in objs:
                        addr_known[q].add((m, src))
                    stats[q].packages_read += 1
                    charge(q, t, spec.ra_cost, "ra")
                    if observing:
                        obs.on_package_read(max(avail[q], t), q, src, len(objs))
                    # Consuming frees the sender's slot after one latency.
                    free_at = max(avail[q], t) + spec.put_latency
                    if fi is not None:
                        free_at += fi.consume_delay(q, src, spec.put_latency)
                    post(free_at, _SLOT_FREE, (src, q))
                inbox[q].clear()
            if suspended[q]:
                still: list[tuple[str, str, int, int]] = []
                ready: list[tuple[str, str, int, int]] = []
                for item in suspended[q]:
                    if (item[0], item[2]) in addr_known[q]:
                        ready.append(item)
                    else:
                        still.append(item)
                suspended[q] = still
                for m, unit, dest, nbytes in ready:
                    dispatch_data(q, m, unit, dest, nbytes, max(avail[q], t))
                    if observing:
                        obs.on_put_drain(max(avail[q], t), q, dest, m, len(still))

        def try_send_packages(q: int, t: float) -> bool:
            """Send pending address packages; True when none remain."""
            still: list[tuple[int, list[str]]] = []
            for dst, objs in pending_pkgs[q]:
                if slot_busy[q][dst] and (fi is None or not fi.overwrite_slots):
                    still.append((dst, objs))
                    if observing:
                        obs.on_package_block(max(avail[q], t), q, dst, len(objs))
                    continue
                slot_busy[q][dst] = True
                cost = spec.package_overhead + len(objs) * spec.address_cost
                t2 = charge(q, t, cost, "package")
                stats[q].packages_sent += 1
                if observing:
                    obs.on_package_send(t2, q, dst, len(objs))
                post(t2 + spec.put_latency, _ADDR_ARRIVE, (dst, q, list(objs)))
            pending_pkgs[q] = still
            return not still

        def do_map(q: int, mp: MapPoint, t: float) -> None:
            stats[q].num_maps += 1
            if observing:
                obs.on_map(max(avail[q], t), q, mp.position, mp.frees, mp.allocs)
            cost = (
                spec.map_overhead
                + len(mp.frees) * spec.free_cost
                + len(mp.allocs) * spec.alloc_cost
            )
            charge(q, t, cost, "map")
            t_map = avail[q]  # memory ops take effect at MAP completion
            for m in mp.frees:
                alloc[q].free(m)
                # The content dies with the space; later arrivals of the
                # same object would be protocol violations.
                received_data[q].pop(m, None)
                if observing:
                    obs.on_free(t_map, q, m, obj_size[m], alloc[q].used)
            for m in mp.allocs:
                alloc[q].alloc(m, obj_size[m])
                if observing:
                    obs.on_alloc(t_map, q, m, obj_size[m], alloc[q].used)
            stats[q].peak_memory = max(stats[q].peak_memory, alloc[q].peak)
            if not self.preknown_addresses:
                pending_pkgs[q].extend(
                    (dst, list(objs)) for dst, objs in sorted(mp.notifications.items())
                )
                map_pending[q] = True

        def advance(q: int, t: float) -> None:
            nonlocal finished_procs
            if state[q] is EXE or state[q] is DONE:
                return
            if inbox[q] or suspended[q]:
                ra(q, t)
            order = sched.orders[q]
            map_at = self._map_at[q]
            while True:
                if map_pending[q]:
                    if not try_send_packages(q, max(avail[q], t)):
                        state[q] = MAP
                        if observing:
                            obs.on_state(max(avail[q], t), q, "MAP")
                        return
                    map_pending[q] = False
                if idx[q] >= len(order):
                    if suspended[q] or pending_pkgs[q]:
                        state[q] = END
                        if observing:
                            obs.on_state(max(avail[q], t), q, "END")
                        return
                    if state[q] is not DONE:
                        state[q] = DONE
                        stats[q].finish_time = max(avail[q], t)
                        finished_procs += 1
                        if observing:
                            obs.on_proc_end(stats[q].finish_time, q)
                    return
                mp = map_at.get(idx[q])
                if mp is not None and map_done[q] < idx[q]:
                    map_done[q] = idx[q]
                    do_map(q, mp, t)
                    continue
                task = order[idx[q]]
                if pending_inputs.get(task, 0):
                    state[q] = REC
                    if observing:
                        obs.on_state(max(avail[q], t), q, "REC")
                    return
                # EXE
                state[q] = EXE
                w = weight[task]
                if fi is not None:
                    w *= fi.exe_factor(q)
                start = max(avail[q], t)
                stats[q].busy_time += w
                avail[q] = start + w
                if observing:
                    obs.on_exe(start, start + w, q, task)
                post(start + w, _TASK_DONE, (q, task))
                return

        def complete(q: int, task: str, t: float) -> None:
            nonlocal last_task_finish
            done.add(task)
            if t > last_task_finish:
                last_task_finish = t
            idx[q] += 1
            stats[q].num_tasks += 1
            for m, unit in write_version[task]:
                current_version[m] = unit
            # Account consumed keys (stale-copy bookkeeping).
            nc = need_count[q]
            for key in consumes[task]:
                nc[key] -= 1
            # SND: issue messages triggered by this task.
            state[q] = SND
            if observing:
                obs.on_state(t, q, "SND")
            for m, unit, dest, nbytes in out_data.get(task, ()):
                if (m, dest) in addr_known[q]:
                    dispatch_data(q, m, unit, dest, nbytes, t)
                else:
                    suspended[q].append((m, unit, dest, nbytes))
                    stats[q].suspended_sends += 1
                    if observing:
                        obs.on_put_suspend(t, q, dest, m, unit, len(suspended[q]))
            for unit, dest in out_sync.get(task, ()):
                t2 = charge(q, t, spec.send_overhead, "send")
                stats[q].sync_msgs_sent += 1
                if observing:
                    obs.on_sync(t2, t2 + spec.put_latency, q, dest, unit)
                post(t2 + spec.put_latency, _DATA_ARRIVE, (dest, None, unit, q))
            state[q] = REC
            advance(q, max(avail[q], t))

        # --- bootstrap ---------------------------------------------------
        for q in range(nprocs):
            advance(q, 0.0)

        # --- event loop --------------------------------------------------
        while events:
            t, _s, kind, payload = heapq.heappop(events)
            now = t
            if kind == _TASK_DONE:
                q, task = payload
                complete(q, task, t)
            elif kind == _DATA_ARRIVE:
                dest, m, unit, _src = payload
                if m is None:
                    if unit not in received_sync[dest]:
                        received_sync[dest].add(unit)
                        for w_task in sync_waiters[dest].get(unit, ()):
                            pending_inputs[w_task] -= 1
                else:
                    if (
                        self.memory_managed
                        and not self.preknown_addresses
                        and not alloc[dest].is_allocated(m)
                    ):
                        # In steady-state iterative mode the address slot
                        # persists across MAPs, so early arrival is legal
                        # there; in the first-iteration protocol it is a
                        # violation (data must land in allocated space).
                        raise SimulationError(
                            f"data for {m!r} arrived at P{dest} with no "
                            "allocated space (protocol violation)"
                        )
                    # Stale-copy check: overwrite of an older version must
                    # not be needed by any pending local reader.
                    versions = received_data[dest].setdefault(m, set())
                    for old in [u for u in versions if u != unit]:
                        if need_count[dest].get((m, old), 0) > 0:
                            raise DataConsistencyError(
                                f"P{dest} received {m!r}/{unit!r} while "
                                f"version {old!r} is still needed"
                            )
                        versions.discard(old)
                    if unit not in versions:
                        versions.add(unit)
                        for w_task in data_waiters[dest].get((m, unit), ()):
                            pending_inputs[w_task] -= 1
                    if observing:
                        obs.on_data_arrive(t, dest, m, unit, _src)
                if state[dest] in wake_states:
                    advance(dest, t)
            elif kind == _ADDR_ARRIVE:
                dst, src, objs = payload
                inbox[dst][src] = objs
                if state[dst] in wake_states:
                    advance(dst, t)
                elif state[dst] is DONE:
                    # A finished processor still reads packages so the
                    # sender's slot is released (defensive; should be
                    # unreachable when the graph has producers for every
                    # volatile object).
                    ra(dst, t)
            elif kind == _SLOT_FREE:
                src, dst = payload
                slot_busy[src][dst] = False
                if state[src] in wake_states:
                    advance(src, t)

        if finished_procs != nprocs:
            blocked = {
                q: state[q].value for q in range(nprocs) if state[q] is not DONE
            }
            err = DeadlockError(blocked, len(done), self.g.num_tasks)
            # Attach a per-processor diagnosis (next task + unmet needs)
            # plus the wait-for edges the conformance layer turns into a
            # cycle witness: blocked proc -> procs it waits on.
            details: dict[int, str] = {}
            wait_for: dict[int, set[int]] = {}
            assignment = sched.assignment
            trigger = cs.trigger
            for q in range(nprocs):
                if state[q] is ProcState.DONE:
                    continue
                waits = wait_for.setdefault(q, set())
                order = sched.orders[q]
                if idx[q] < len(order):
                    task = order[idx[q]]
                    missing = []
                    for req in cs.needs[task]:
                        if req[0] == "data" and req[2] not in received_data[q].get(req[1], ()):
                            missing.append(f"data {req[1]}@{req[2]}")
                            waits.add(assignment[trigger[req[2]]])
                        elif req[0] == "sync" and req[1] not in received_sync[q]:
                            missing.append(f"sync {req[1]}")
                            waits.add(assignment[req[1]])
                    details[q] = f"next={task} missing={missing}"
                else:
                    details[q] = (
                        f"END suspended={suspended[q]} pending_pkgs={pending_pkgs[q]}"
                    )
                # A blocked MAP waits on the destination whose slot is
                # busy; a suspended put waits on its destination's MAP
                # (the address package travels dest -> sender).
                for dst, _objs in pending_pkgs[q]:
                    if slot_busy[q][dst]:
                        waits.add(dst)
                for m, _unit, dest, _nbytes in suspended[q]:
                    if (m, dest) not in addr_known[q]:
                        waits.add(dest)
                waits.discard(q)
            err.details = details
            err.wait_for = wait_for
            raise err
        if len(done) != self.g.num_tasks:
            raise SimulationError(
                f"only {len(done)}/{self.g.num_tasks} tasks executed"
            )
        for q in range(nprocs):
            stats[q].peak_memory = max(stats[q].peak_memory, alloc[q].peak)
            if stats[q].peak_memory > self.capacity:
                raise SimulationError(
                    f"P{q} peak memory {stats[q].peak_memory} exceeds "
                    f"capacity {self.capacity}"
                )
        pt = max((s.finish_time for s in stats), default=0.0)
        if observing:
            obs.on_run_end(pt)
        result = SimResult(
            parallel_time=pt,
            task_finish_time=last_task_finish,
            stats=stats,
            capacity=self.capacity,
            memory_managed=self.memory_managed,
            plan=self.plan,
            trace=tlog.events if tlog is not None else None,
            telemetry=suite,
            schedule_label=self.schedule_label,
            engine="interpreted",
        )
        if suite is not None:
            result.metrics = build_metrics(result, suite)
        return result


def simulate(
    schedule: Schedule,
    spec: MachineSpec = CRAY_T3D,
    capacity: Optional[int] = None,
    memory_managed: bool = True,
    **kw,
) -> SimResult:
    """Convenience wrapper: build a :class:`Simulator` and run it."""
    return Simulator(
        schedule, spec=spec, capacity=capacity, memory_managed=memory_managed, **kw
    ).run()
