"""Discrete-event execution of schedules under active memory management.

This module is the Cray-T3D stand-in: it executes a static schedule on
``p`` simulated processors connected by an RMA network, following the
five-state protocol of section 3.3 (Figure 3(b)):

* **REC** — the processor blocks until every input object of its next
  task is locally available;
* **EXE** — task computation (non-blocking, costs the task weight);
* **SND** — after a task completes, messages for remote readers are
  issued; a data put whose *remote address is unknown* is enqueued on the
  suspended sending queue (worst-case length ``O(e)``, as the paper
  notes);
* **MAP** — a memory allocation point: frees dead volatile objects,
  allocates forward, assembles address packages; blocks while a
  destination has not consumed the previous package (one unbuffered
  address slot per ordered processor pair);
* **END** — all local tasks done; the processor drains its suspended
  queue before terminating.

Blocked states perform **RA** (read arrived address packages, freeing
the sender's slot) and **CQ** (dispatch suspended sends whose addresses
became known) — in the event-driven setting these run at task
boundaries and whenever an event wakes a blocked processor, which is
semantically the "invoke frequently" requirement of the paper.

The simulator *verifies* Theorem 1 as it runs: every data put checks
that the sender's local content version matches the version the edge
requires (no stale copies), arriving data must land in allocated
space, and an empty event queue with unfinished processors raises
:class:`~repro.errors.DeadlockError` (which Theorem 1 proves impossible
when ``capacity >= MIN_MEM``; the property tests exercise this).

Two execution modes:

* ``memory_managed=True`` — the full protocol driven by a
  :class:`~repro.core.maps.MapPlan` (positions from the static liveness
  analysis);
* ``memory_managed=False`` — the *baseline* of Tables 2/3: all volatile
  space pre-allocated, all addresses known a priori, no MAP costs.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from enum import Enum
from typing import Optional

from ..core.liveness import MemoryProfile, analyze_memory
from ..core.maps import MapPlan, MapPoint, plan_maps
from ..core.placement import validate_owner_compute
from ..core.schedule import Schedule
from ..errors import DataConsistencyError, DeadlockError, SimulationError
from .memory import ObjectAllocator
from .spec import CRAY_T3D, MachineSpec


class ProcState(Enum):
    REC = "REC"
    EXE = "EXE"
    SND = "SND"
    MAP = "MAP"
    END = "END"
    DONE = "DONE"


# Event kinds (ordered tuples on a heap).
_TASK_DONE = 0
_DATA_ARRIVE = 1
_ADDR_ARRIVE = 2
_SLOT_FREE = 3


@dataclass
class ProcessorStats:
    """Per-processor execution statistics."""

    busy_time: float = 0.0
    #: CPU time spent on protocol work: MAP actions, package assembly,
    #: RA reads, send overheads.
    overhead_time: float = 0.0
    num_maps: int = 0
    data_msgs_sent: int = 0
    sync_msgs_sent: int = 0
    suspended_sends: int = 0
    packages_sent: int = 0
    packages_read: int = 0
    peak_memory: int = 0
    finish_time: float = 0.0

    @property
    def idle_time(self) -> float:
        """Time neither computing nor doing protocol work (blocked in
        REC / MAP / END waits)."""
        return max(self.finish_time - self.busy_time - self.overhead_time, 0.0)


@dataclass(frozen=True)
class TraceEvent:
    """One event of an execution trace (``trace=True``)."""

    time: float
    proc: int
    kind: str  # start | done | map | send | suspend | data | addr | end
    detail: str


@dataclass
class SimResult:
    """Outcome of one simulated execution."""

    parallel_time: float
    task_finish_time: float
    stats: list[ProcessorStats]
    capacity: int
    memory_managed: bool
    plan: Optional[MapPlan] = None
    trace: Optional[list[TraceEvent]] = None

    def render_trace(self, limit: int = 200) -> str:
        """Human-readable event log (requires ``trace=True``)."""
        if self.trace is None:
            return "(tracing was not enabled)"
        lines = [
            f"{e.time:12.6f}  P{e.proc}  {e.kind:<7} {e.detail}"
            for e in self.trace[:limit]
        ]
        if len(self.trace) > limit:
            lines.append(f"... ({len(self.trace) - limit} more events)")
        return "\n".join(lines)

    @property
    def avg_maps(self) -> float:
        counts = [s.num_maps for s in self.stats if s.busy_time > 0 or s.num_maps]
        return sum(counts) / len(counts) if counts else 0.0

    @property
    def peak_memory(self) -> int:
        return max((s.peak_memory for s in self.stats), default=0)

    @property
    def total_data_msgs(self) -> int:
        return sum(s.data_msgs_sent for s in self.stats)

    @property
    def utilization(self) -> float:
        if self.parallel_time <= 0:
            return 1.0
        p = len(self.stats)
        return sum(s.busy_time for s in self.stats) / (p * self.parallel_time)


class Simulator:
    """Execute one schedule on the simulated machine.

    Parameters
    ----------
    schedule:
        A validated static schedule (owner-compute is asserted).
    spec:
        Machine cost parameters (default: :data:`~repro.machine.spec.CRAY_T3D`).
    capacity:
        Per-processor memory in bytes/units; defaults to
        ``spec.memory_capacity``.  With ``memory_managed=True`` a
        :class:`~repro.errors.NonExecutableScheduleError` propagates from
        the MAP planner when the capacity is below ``MIN_MEM``; the
        baseline mode requires ``capacity >= TOT``.
    memory_managed:
        Toggle the active memory management protocol (see module doc).
    plan / profile:
        Optional precomputed MAP plan and memory profile (re-used by the
        experiment sweeps).
    """

    def __init__(
        self,
        schedule: Schedule,
        spec: MachineSpec = CRAY_T3D,
        capacity: Optional[int] = None,
        memory_managed: bool = True,
        plan: Optional[MapPlan] = None,
        profile: Optional[MemoryProfile] = None,
        validate: bool = True,
        preknown_addresses: bool = False,
        trace: bool = False,
    ):
        """See class docstring; ``preknown_addresses=True`` models a
        steady-state iteration of an iterative application (RAPID's
        target workloads, Figure 1: "execute tasks iteratively"): the
        volatile addresses notified during the first iteration remain
        valid, so MAPs still pay their allocate/free costs but no
        address packages travel and no send ever suspends."""
        self.schedule = schedule
        self.spec = spec
        self.g = schedule.graph
        self.p = schedule.num_procs
        self.memory_managed = memory_managed
        self.preknown_addresses = preknown_addresses
        self.trace_enabled = trace
        if validate:
            schedule.validate()
            validate_owner_compute(self.g, schedule.placement, schedule.assignment)
        self.profile = profile if profile is not None else analyze_memory(schedule)
        if capacity is None:
            capacity = (
                spec.memory_capacity if memory_managed else max(self.profile.tot, 1)
            )
        self.capacity = int(capacity)
        if memory_managed:
            self.plan = (
                plan
                if plan is not None
                else plan_maps(schedule, self.capacity, self.profile)
            )
        else:
            if self.capacity < self.profile.tot:
                raise SimulationError(
                    f"baseline mode needs capacity >= TOT "
                    f"({self.capacity} < {self.profile.tot})"
                )
            self.plan = None
        self._build_static()

    # ------------------------------------------------------------------
    # static preprocessing
    # ------------------------------------------------------------------

    def _pid(self, task: str) -> str:
        """Producer unit: commuting-group key or the task itself."""
        t = self.g.task(task)
        return t.commute if t.commute is not None else task

    def _build_static(self) -> None:
        g, sched = self.g, self.schedule
        assignment = sched.assignment
        pos = sched.position()
        # Trigger task of each producer unit: the unit's last task in the
        # processor order (commuting groups are co-located).
        trigger: dict[str, str] = {}
        for t in g.task_names:
            u = self._pid(t)
            cur = trigger.get(u)
            if cur is None or pos[t] > pos[cur]:
                trigger[u] = t
        self._trigger = trigger

        # Outgoing messages per trigger task.
        #   data: (obj, unit, dest, nbytes)   sync: (unit, dest)
        out_data: dict[str, list[tuple[str, str, int, int]]] = {}
        out_sync: dict[str, list[tuple[str, int]]] = {}
        seen_data: set[tuple[str, str, int]] = set()
        seen_sync: set[tuple[str, int]] = set()
        # Receiver-side requirements per task:
        #   list of ("data", obj, unit) / ("sync", unit)
        needs: dict[str, list[tuple]] = {t: [] for t in g.task_names}
        # How many unexecuted tasks of each processor still need a given
        # received key (for the stale-copy consistency check).
        self._need_count: list[dict[tuple, int]] = [dict() for _ in range(self.p)]

        for u, v, objs in g.edges():
            pu, pv = assignment[u], assignment[v]
            if pu == pv:
                continue
            unit = self._pid(u)
            trig = trigger[unit]
            if objs:
                # The payload of a commuting group is its accumulated
                # result: one message per (object, group, destination),
                # issued when the group's last local task finishes.  The
                # true graph gives readers edges from *every* member, so
                # waiting for the group adds no false synchronisation.
                for m in sorted(objs):
                    key = (m, unit, pv)
                    if key not in seen_data:
                        seen_data.add(key)
                        out_data.setdefault(trig, []).append(
                            (m, unit, pv, g.object(m).size)
                        )
                    needs[v].append(("data", m, unit))
                    cnt = self._need_count[pv]
                    cnt[(m, unit)] = cnt.get((m, unit), 0) + 1
            else:
                # Synchronisation edges are member-specific (they encode
                # a transformed anti/output dependence from one task);
                # firing them at group completion instead would create
                # circular waits the true graph does not have.
                key = (u, pv)
                if key not in seen_sync:
                    seen_sync.add(key)
                    out_sync.setdefault(u, []).append((u, pv))
                needs[v].append(("sync", u))
        self._out_data = out_data
        self._out_sync = out_sync
        self._needs = needs

        # Every volatile object a processor reads must have a producer
        # somewhere, otherwise its owner would never send data (and the
        # address-package handshake could block a MAP forever).  Graphs
        # built with ``materialize_inputs=True`` satisfy this by
        # construction.
        produced = {m for t in g.tasks() for m in t.writes}
        for q in range(self.p):
            for m in self.profile.procs[q].span:
                if m not in produced:
                    raise SimulationError(
                        f"volatile object {m!r} read on P{q} has no producer; "
                        f"build the graph with materialize_inputs=True"
                    )

        # MAPs by position per processor.
        self._map_at: list[dict[int, MapPoint]] = [dict() for _ in range(self.p)]
        if self.plan is not None:
            for pts in self.plan.points:
                for mp in pts:
                    self._map_at[mp.proc][mp.position] = mp

        # Permanent footprint per processor (allocated for the whole run).
        self._perm_bytes = [pp.perm_bytes for pp in self.profile.procs]

    # ------------------------------------------------------------------
    # dynamic execution
    # ------------------------------------------------------------------

    def run(self) -> SimResult:
        g, sched, spec = self.g, self.schedule, self.spec
        assignment = sched.assignment
        nprocs = self.p

        # --- mutable state -------------------------------------------
        now = 0.0
        seq = 0
        events: list[tuple] = []  # (time, seq, kind, payload)

        def post(t: float, kind: int, payload: tuple) -> None:
            nonlocal seq
            heapq.heappush(events, (t, seq, kind, payload))
            seq += 1

        state = [ProcState.REC] * nprocs
        idx = [0] * nprocs
        avail = [0.0] * nprocs  # earliest time of the next local action
        done: set[str] = set()
        stats = [ProcessorStats() for _ in range(nprocs)]
        alloc = [ObjectAllocator(self.capacity) for _ in range(nprocs)]
        for q in range(nprocs):
            if self._perm_bytes[q]:
                alloc[q].alloc("<permanent>", self._perm_bytes[q])
        if not self.memory_managed:
            # Baseline: all volatile space allocated up-front.
            for q in range(nprocs):
                for m in self.profile.procs[q].span:
                    alloc[q].alloc(m, g.object(m).size)

        received_data: list[set[tuple[str, str]]] = [set() for _ in range(nprocs)]
        received_sync: list[set[str]] = [set() for _ in range(nprocs)]
        current_version: dict[str, Optional[str]] = {
            o.name: None for o in g.objects()
        }
        # Sender-side address knowledge: (obj, dest) pairs.
        addr_known: list[set[tuple[str, int]]] = [set() for _ in range(nprocs)]
        if not self.memory_managed or self.preknown_addresses:
            for q in range(nprocs):
                for m in self.profile.procs[q].span:
                    owner = sched.placement[m]
                    addr_known[owner].add((m, q))
        suspended: list[list[tuple[str, str, int, int]]] = [[] for _ in range(nprocs)]
        # Address-package slots: slot_busy[src][dst] from src's viewpoint;
        # inbox[dst][src] holds an unread package's object list.
        slot_busy: list[list[bool]] = [[False] * nprocs for _ in range(nprocs)]
        inbox: list[dict[int, list[str]]] = [dict() for _ in range(nprocs)]
        # Packages a blocked MAP still has to send: (dst, objs).
        pending_pkgs: list[list[tuple[int, list[str]]]] = [[] for _ in range(nprocs)]
        map_pending: list[bool] = [False] * nprocs
        need_count = [dict(d) for d in self._need_count]
        finished_procs = 0
        last_task_finish = 0.0

        trace_log: Optional[list[TraceEvent]] = [] if self.trace_enabled else None

        def tr(t: float, q: int, kind: str, detail: str) -> None:
            if trace_log is not None:
                trace_log.append(TraceEvent(t, q, kind, detail))

        # --- helpers ---------------------------------------------------
        def charge(q: int, t: float, cost: float) -> float:
            avail[q] = max(avail[q], t) + cost
            stats[q].overhead_time += cost
            return avail[q]

        nic_free = [0.0] * nprocs  # injection-link availability (optional)

        def dispatch_data(q: int, m: str, unit: str, dest: int, nbytes: int, t: float) -> None:
            if current_version[m] != unit:
                raise DataConsistencyError(
                    f"P{q} sending {m!r} version {current_version[m]!r} for an "
                    f"edge requiring version {unit!r}"
                )
            t2 = charge(q, t, spec.send_overhead)
            stats[q].data_msgs_sent += 1
            tr(t2, q, "send", f"{m}@{unit} -> P{dest} ({nbytes} B)")
            if spec.nic_serialize:
                start = max(nic_free[q], t2)
                nic_free[q] = start + nbytes * spec.byte_time
                arrive = start + spec.message_time(nbytes)
            else:
                arrive = t2 + spec.message_time(nbytes)
            post(arrive, _DATA_ARRIVE, (dest, m, unit, q))

        def ra(q: int, t: float) -> None:
            """Read arrived address packages, then check the suspended
            queue (the RA + CQ pair of Figure 3(b))."""
            if inbox[q]:
                for src, objs in sorted(inbox[q].items()):
                    for m in objs:
                        addr_known[q].add((m, src))
                    stats[q].packages_read += 1
                    charge(q, t, spec.ra_cost)
                    # Consuming frees the sender's slot after one latency.
                    post(max(avail[q], t) + spec.put_latency, _SLOT_FREE, (src, q))
                inbox[q].clear()
            if suspended[q]:
                still: list[tuple[str, str, int, int]] = []
                for m, unit, dest, nbytes in suspended[q]:
                    if (m, dest) in addr_known[q]:
                        dispatch_data(q, m, unit, dest, nbytes, max(avail[q], t))
                    else:
                        still.append((m, unit, dest, nbytes))
                suspended[q] = still

        def try_send_packages(q: int, t: float) -> bool:
            """Send pending address packages; True when none remain."""
            still: list[tuple[int, list[str]]] = []
            for dst, objs in pending_pkgs[q]:
                if slot_busy[q][dst]:
                    still.append((dst, objs))
                    continue
                slot_busy[q][dst] = True
                cost = spec.package_overhead + len(objs) * spec.address_cost
                t2 = charge(q, t, cost)
                stats[q].packages_sent += 1
                post(t2 + spec.put_latency, _ADDR_ARRIVE, (dst, q, list(objs)))
            pending_pkgs[q] = still
            return not still

        def do_map(q: int, mp: MapPoint, t: float) -> None:
            stats[q].num_maps += 1
            tr(
                max(avail[q], t), q, "map",
                f"@pos{mp.position} free={mp.frees} alloc={mp.allocs}",
            )
            cost = (
                spec.map_overhead
                + len(mp.frees) * spec.free_cost
                + len(mp.allocs) * spec.alloc_cost
            )
            charge(q, t, cost)
            for m in mp.frees:
                alloc[q].free(m)
                # The content dies with the space; later arrivals of the
                # same object would be protocol violations.
                received_data[q] = {kv for kv in received_data[q] if kv[0] != m}
            for m in mp.allocs:
                alloc[q].alloc(m, g.object(m).size)
            stats[q].peak_memory = max(stats[q].peak_memory, alloc[q].peak)
            if not self.preknown_addresses:
                pending_pkgs[q].extend(
                    (dst, list(objs)) for dst, objs in sorted(mp.notifications.items())
                )
                map_pending[q] = True

        def inputs_ready(q: int, task: str) -> bool:
            for req in self._needs[task]:
                if req[0] == "data":
                    if (req[1], req[2]) not in received_data[q]:
                        return False
                else:
                    if req[1] not in received_sync[q]:
                        return False
            return True

        def advance(q: int, t: float) -> None:
            nonlocal finished_procs
            if state[q] in (ProcState.EXE, ProcState.DONE):
                return
            ra(q, t)
            order = sched.orders[q]
            while True:
                if map_pending[q]:
                    if not try_send_packages(q, max(avail[q], t)):
                        state[q] = ProcState.MAP
                        return
                    map_pending[q] = False
                if idx[q] >= len(order):
                    if suspended[q] or pending_pkgs[q]:
                        state[q] = ProcState.END
                        return
                    if state[q] != ProcState.DONE:
                        state[q] = ProcState.DONE
                        stats[q].finish_time = max(avail[q], t)
                        finished_procs += 1
                        tr(stats[q].finish_time, q, "end", "all tasks drained")
                    return
                mp = self._map_at[q].get(idx[q])
                if mp is not None and not getattr(mp, "_executed", False):
                    mp._executed = True
                    do_map(q, mp, t)
                    continue
                task = order[idx[q]]
                if not inputs_ready(q, task):
                    state[q] = ProcState.REC
                    return
                # EXE
                state[q] = ProcState.EXE
                w = g.task(task).weight
                start = max(avail[q], t)
                stats[q].busy_time += w
                avail[q] = start + w
                tr(start, q, "start", task)
                post(start + w, _TASK_DONE, (q, task))
                return

        def complete(q: int, task: str, t: float) -> None:
            nonlocal last_task_finish
            done.add(task)
            last_task_finish = max(last_task_finish, t)
            idx[q] += 1
            for m in self.g.task(task).writes:
                current_version[m] = self._pid(task)
            # Account consumed keys (stale-copy bookkeeping).
            for req in self._needs[task]:
                if req[0] == "data":
                    key = (req[1], req[2])
                    need_count[q][key] -= 1
            # SND: issue messages triggered by this task.
            state[q] = ProcState.SND
            for m, unit, dest, nbytes in self._out_data.get(task, ()):
                if (m, dest) in addr_known[q]:
                    dispatch_data(q, m, unit, dest, nbytes, t)
                else:
                    suspended[q].append((m, unit, dest, nbytes))
                    stats[q].suspended_sends += 1
                    tr(t, q, "suspend", f"{m}@{unit} -> P{dest} (no address)")
            for unit, dest in self._out_sync.get(task, ()):
                t2 = charge(q, t, spec.send_overhead)
                stats[q].sync_msgs_sent += 1
                post(t2 + spec.put_latency, _DATA_ARRIVE, (dest, None, unit, q))
            state[q] = ProcState.REC
            advance(q, max(avail[q], t))

        # --- bootstrap ---------------------------------------------------
        for q in range(nprocs):
            advance(q, 0.0)

        # --- event loop --------------------------------------------------
        while events:
            t, _s, kind, payload = heapq.heappop(events)
            now = t
            if kind == _TASK_DONE:
                q, task = payload
                complete(q, task, t)
            elif kind == _DATA_ARRIVE:
                dest, m, unit, _src = payload
                if m is None:
                    received_sync[dest].add(unit)
                else:
                    if (
                        self.memory_managed
                        and not self.preknown_addresses
                        and not alloc[dest].is_allocated(m)
                    ):
                        # In steady-state iterative mode the address slot
                        # persists across MAPs, so early arrival is legal
                        # there; in the first-iteration protocol it is a
                        # violation (data must land in allocated space).
                        raise SimulationError(
                            f"data for {m!r} arrived at P{dest} with no "
                            f"allocated space (protocol violation)"
                        )
                    # Stale-copy check: overwrite of an older version must
                    # not be needed by any pending local reader.
                    for key in list(received_data[dest]):
                        if key[0] == m and key[1] != unit:
                            if need_count[dest].get(key, 0) > 0:
                                raise DataConsistencyError(
                                    f"P{dest} received {m!r}/{unit!r} while "
                                    f"version {key[1]!r} is still needed"
                                )
                            received_data[dest].discard(key)
                    received_data[dest].add((m, unit))
                if state[dest] in (ProcState.REC, ProcState.MAP, ProcState.END):
                    advance(dest, t)
            elif kind == _ADDR_ARRIVE:
                dst, src, objs = payload
                inbox[dst][src] = objs
                if state[dst] in (ProcState.REC, ProcState.MAP, ProcState.END):
                    advance(dst, t)
                elif state[dst] is ProcState.DONE:
                    # A finished processor still reads packages so the
                    # sender's slot is released (defensive; should be
                    # unreachable when the graph has producers for every
                    # volatile object).
                    ra(dst, t)
            elif kind == _SLOT_FREE:
                src, dst = payload
                slot_busy[src][dst] = False
                if state[src] in (ProcState.MAP, ProcState.END, ProcState.REC):
                    advance(src, t)

        if finished_procs != nprocs:
            blocked = {
                q: state[q].value for q in range(nprocs) if state[q] != ProcState.DONE
            }
            err = DeadlockError(blocked, len(done), self.g.num_tasks)
            # Attach a per-processor diagnosis (next task + unmet needs).
            details: dict[int, str] = {}
            for q in range(nprocs):
                if state[q] is ProcState.DONE:
                    continue
                order = sched.orders[q]
                if idx[q] < len(order):
                    task = order[idx[q]]
                    missing = []
                    for req in self._needs[task]:
                        if req[0] == "data" and (req[1], req[2]) not in received_data[q]:
                            missing.append(f"data {req[1]}@{req[2]}")
                        elif req[0] == "sync" and req[1] not in received_sync[q]:
                            missing.append(f"sync {req[1]}")
                    details[q] = f"next={task} missing={missing}"
                else:
                    details[q] = (
                        f"END suspended={suspended[q]} pending_pkgs={pending_pkgs[q]}"
                    )
            err.details = details
            raise err
        if len(done) != self.g.num_tasks:
            raise SimulationError(
                f"only {len(done)}/{self.g.num_tasks} tasks executed"
            )
        for q in range(nprocs):
            stats[q].peak_memory = max(stats[q].peak_memory, alloc[q].peak)
            if stats[q].peak_memory > self.capacity:
                raise SimulationError(
                    f"P{q} peak memory {stats[q].peak_memory} exceeds "
                    f"capacity {self.capacity}"
                )
        pt = max((s.finish_time for s in stats), default=0.0)
        # Clear the per-run MAP execution marks so plans can be re-used.
        if self.plan is not None:
            for pts in self.plan.points:
                for mp in pts:
                    if hasattr(mp, "_executed"):
                        del mp._executed
        if trace_log is not None:
            trace_log.sort(key=lambda e: (e.time, e.proc))
        return SimResult(
            parallel_time=pt,
            task_finish_time=last_task_finish,
            stats=stats,
            capacity=self.capacity,
            memory_managed=self.memory_managed,
            plan=self.plan,
            trace=trace_log,
        )


def simulate(
    schedule: Schedule,
    spec: MachineSpec = CRAY_T3D,
    capacity: Optional[int] = None,
    memory_managed: bool = True,
    **kw,
) -> SimResult:
    """Convenience wrapper: build a :class:`Simulator` and run it."""
    return Simulator(
        schedule, spec=spec, capacity=capacity, memory_managed=memory_managed, **kw
    ).run()
