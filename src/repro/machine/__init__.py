"""Simulated distributed-memory machine with RMA communication.

The Cray-T3D stand-in: :class:`~repro.machine.spec.MachineSpec` holds
the cost model (the :data:`~repro.machine.spec.CRAY_T3D` preset uses the
paper's published numbers), :mod:`repro.machine.memory` the
per-processor allocators, and
:class:`~repro.machine.simulator.Simulator` the discrete-event execution
of schedules under the active memory management protocol of section 3.
"""

from .spec import CRAY_T3D, MEIKO_CS2, UNIT_MACHINE, MachineSpec
from .memory import FreeListAllocator, ObjectAllocator
from .compiled import ExecPlan, LoweredSchedule, get_exec_plan, lower_schedule
from .simulator import (
    CompiledSchedule,
    ProcState,
    ProcessorStats,
    SimResult,
    Simulator,
    TraceEvent,
    compile_schedule,
    simulate,
)

__all__ = [
    "CRAY_T3D",
    "CompiledSchedule",
    "ExecPlan",
    "FreeListAllocator",
    "LoweredSchedule",
    "MEIKO_CS2",
    "MachineSpec",
    "ObjectAllocator",
    "ProcState",
    "ProcessorStats",
    "SimResult",
    "Simulator",
    "TraceEvent",
    "UNIT_MACHINE",
    "compile_schedule",
    "get_exec_plan",
    "lower_schedule",
    "simulate",
]
