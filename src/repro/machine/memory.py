"""Per-processor memory allocators for the simulation.

Two allocators are provided:

* :class:`ObjectAllocator` — the accounting model used by the simulator
  proper: object-granular, capacity-enforcing, fragmentation-free
  (matches the paper's space accounting, where an object either fits or
  does not).
* :class:`FreeListAllocator` — an address-space model with first-fit
  placement and coalescing free lists.  It exists to demonstrate the
  *fragmentation* problem the paper's conclusion raises ("space freed
  from irregular dependence structures usually contains many small
  pieces and is hard to be re-utilized.  To address this fragmentation
  problem, it is necessary to develop a special memory allocator") — see
  the fragmentation ablation benchmark.

Both track peak usage so the simulator can assert it never exceeds the
planned capacity.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field

from ..errors import MemoryError_


@dataclass
class ObjectAllocator:
    """Object-granular allocator with a hard capacity.

    ``alloc``/``free`` work on named objects with fixed sizes; double
    allocation and unknown frees raise — the simulator relies on these
    checks to validate the MAP protocol.
    """

    capacity: int
    used: int = 0
    peak: int = 0
    _sizes: dict[str, int] = field(default_factory=dict)

    def alloc(self, name: str, size: int) -> None:
        if name in self._sizes:
            raise MemoryError_(f"object {name!r} is already allocated")
        if size < 0:
            raise MemoryError_(f"negative size for {name!r}")
        if self.used + size > self.capacity:
            raise MemoryError_(
                f"allocating {name!r} ({size} B) exceeds capacity "
                f"({self.used}/{self.capacity} B used)"
            )
        self._sizes[name] = size
        self.used += size
        if self.used > self.peak:
            self.peak = self.used

    def free(self, name: str) -> int:
        try:
            size = self._sizes.pop(name)
        except KeyError:
            raise MemoryError_(f"freeing unallocated object {name!r}") from None
        self.used -= size
        return size

    def is_allocated(self, name: str) -> bool:
        return name in self._sizes

    def would_fit(self, size: int) -> bool:
        return self.used + size <= self.capacity

    @property
    def free_bytes(self) -> int:
        return self.capacity - self.used

    def __contains__(self, name: str) -> bool:
        return name in self._sizes

    def __len__(self) -> int:
        return len(self._sizes)


class FreeListAllocator:
    """First-fit address-space allocator with coalescing.

    Models a contiguous heap of ``capacity`` bytes.  Unlike
    :class:`ObjectAllocator` an allocation can fail even when enough
    total bytes are free — external fragmentation — which is exactly the
    effect the paper's conclusion discusses for irregular dependence
    structures.
    """

    def __init__(self, capacity: int):
        if capacity < 0:
            raise MemoryError_("negative capacity")
        self.capacity = capacity
        #: sorted list of (start, length) free extents
        self._free: list[tuple[int, int]] = [(0, capacity)] if capacity else []
        self._blocks: dict[str, tuple[int, int]] = {}
        self.used = 0
        self.peak = 0
        self.failed_fragmented = 0  # fits by bytes but not by extent

    def alloc(self, name: str, size: int) -> int:
        """Allocate ``size`` bytes first-fit; returns the start address.

        Raises :class:`~repro.errors.MemoryError_` when no extent fits.
        """
        if name in self._blocks:
            raise MemoryError_(f"object {name!r} is already allocated")
        if size == 0:
            self._blocks[name] = (0, 0)
            return 0
        for i, (start, length) in enumerate(self._free):
            if length >= size:
                if length == size:
                    del self._free[i]
                else:
                    self._free[i] = (start + size, length - size)
                self._blocks[name] = (start, size)
                self.used += size
                self.peak = max(self.peak, self.used)
                return start
        if self.used + size <= self.capacity:
            self.failed_fragmented += 1
            raise MemoryError_(
                f"fragmentation: {size} B requested, {self.capacity - self.used} "
                "B free but no extent large enough"
            )
        raise MemoryError_(f"out of memory allocating {size} B for {name!r}")

    def free(self, name: str) -> None:
        try:
            start, size = self._blocks.pop(name)
        except KeyError:
            raise MemoryError_(f"freeing unallocated object {name!r}") from None
        if size == 0:
            return
        self.used -= size
        i = bisect.bisect_left(self._free, (start, 0))
        self._free.insert(i, (start, size))
        # Coalesce with neighbours.
        if i + 1 < len(self._free):
            s, l = self._free[i]
            s2, l2 = self._free[i + 1]
            if s + l == s2:
                self._free[i : i + 2] = [(s, l + l2)]
        if i > 0:
            s0, l0 = self._free[i - 1]
            s, l = self._free[i]
            if s0 + l0 == s:
                self._free[i - 1 : i + 1] = [(s0, l0 + l)]

    def is_allocated(self, name: str) -> bool:
        return name in self._blocks

    def address_of(self, name: str) -> int:
        return self._blocks[name][0]

    @property
    def free_bytes(self) -> int:
        return self.capacity - self.used

    @property
    def largest_free_extent(self) -> int:
        return max((l for _s, l in self._free), default=0)

    def fragmentation(self) -> float:
        """1 - largest_extent / free_bytes (0 = unfragmented)."""
        if self.free_bytes == 0:
            return 0.0
        return 1.0 - self.largest_free_extent / self.free_bytes
