#!/usr/bin/env python3
"""Walkthrough of the paper's worked example (Figures 2, 3 and 5).

Reconstructs the 20-task / 11-object DAG, prints the Gantt charts of the
Figure 2(b)/(c) schedules, the memory analysis (MEM_REQ / MIN_MEM), the
MAP plan under 8 memory units (Figure 3(a)) and the DCG slice order of
the DTS schedule (Figure 5).

Run:  python examples/paper_example.py
"""

from repro.core import analyze_memory, dts_order, gantt, mem_req_of_task, plan_maps
from repro.core.dcg import build_dcg
from repro.graph.paper_example import (
    paper_assignment,
    paper_example_graph,
    paper_placement,
    schedule_b,
    schedule_c,
)


def main() -> None:
    g = paper_example_graph()
    pl = paper_placement()
    asg = paper_assignment(g, pl)
    print(f"Figure 2(a) DAG: {g.num_tasks} tasks, {g.num_objects} objects, "
          f"{g.num_edges} edges")
    print(f"PERM(P0) = {sorted(pl.owned_by(0))}")
    print(f"PERM(P1) = {sorted(pl.owned_by(1))}")

    for label, sched in (("Figure 2(b) — RCP-style", schedule_b(g)),
                         ("Figure 2(c) — MPO-style", schedule_c(g))):
        prof = analyze_memory(sched)
        print(f"\n{label}:  MIN_MEM = {prof.min_mem}")
        print(gantt(sched).as_ascii(unit=0.12))
        if "2(b)" in label:
            print(f"  MEM_REQ(T[8,9], P0) = {mem_req_of_task(prof, 'T[8,9]')} "
                  f"(paper: 7)")
            print(f"  MEM_REQ(T[7,8], P1) = {mem_req_of_task(prof, 'T[7,8]')} "
                  f"(paper: 9)")

    # Figure 3(a): MAPs when running (c) with 8 units per processor.
    sc = schedule_c(g)
    plan = plan_maps(sc, 8)
    print("\nFigure 3(a) — MAP plan of (c) under capacity 8:")
    for q, points in enumerate(plan.points):
        for mp in points:
            before = sc.orders[q][mp.position]
            print(f"  P{q} MAP before {before}: free {mp.frees or '-'}, "
                  f"alloc {mp.allocs or '-'}, notify {dict(mp.notifications) or '-'}")

    # Figure 5: DCG slices and the DTS schedule.
    dcg = build_dcg(g)
    order = " -> ".join(objs[0] for objs in dcg.comp_objects)
    print(f"\nFigure 5(a) — DCG slice order: {order}")
    sd = dts_order(g, pl, asg)
    prof = analyze_memory(sd)
    print(f"Figure 5(b) — DTS schedule: MIN_MEM = {prof.min_mem} (paper: 7)")
    print(gantt(sd).as_ascii(unit=0.12))


if __name__ == "__main__":
    main()
