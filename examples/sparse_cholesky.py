#!/usr/bin/env python3
"""Sparse Cholesky factorization under memory constraints.

The paper's first application: 2-D block sparse Cholesky on a
structural-engineering-like SPD matrix.  The script

1. builds the block task graph (POTRF / TRSM / commuting GEMM tasks),
2. schedules it with RCP, MPO and DTS on a processor grid,
3. verifies numerically that every schedule computes the true factor,
4. executes each schedule on the simulated Cray-T3D under shrinking
   memory capacities, reporting PT, PT increase and #MAPs.

Run:  python examples/sparse_cholesky.py
"""

import numpy as np

from repro.core import analyze_memory, dts_order, mpo_order, rcp_order
from repro.machine.simulator import Simulator
from repro.machine.spec import CRAY_T3D
from repro.rapid.executor import execute_schedule
from repro.sparse.cholesky import build_cholesky
from repro.sparse.matrices import bcsstk15_like

P = 8
ORDERINGS = {"RCP": rcp_order, "MPO": mpo_order, "DTS": dts_order}


def main() -> None:
    a = bcsstk15_like(scale=0.08)
    prob = build_cholesky(a, block_size=10, flop_time=1.0 / CRAY_T3D.flop_rate)
    g = prob.graph
    print(f"matrix n = {prob.n}, factor task graph: {g.num_tasks} tasks, "
          f"{g.num_edges} edges, {g.num_objects} block objects "
          f"(S1 = {g.total_data()} B)")

    placement = prob.placement(P)
    assignment = prob.assignment(placement)

    schedules = {}
    for name, fn in ORDERINGS.items():
        sched = fn(g, placement, assignment)
        prof = analyze_memory(sched)
        schedules[name] = (sched, prof)

        # numeric verification: the schedule's interleaving must compute
        # the exact Cholesky factor
        store = prob.initial_store()
        execute_schedule(sched, store)
        err = prob.factor_error(store)
        assert err < 1e-10
        print(f"\n[{name}] MIN_MEM = {prof.min_mem} B, TOT = {prof.tot} B, "
              f"numeric |LL^T - A| = {err:.1e}")

    # baseline: RCP, all memory, no memory management
    rcp_sched, rcp_prof = schedules["RCP"]
    base = Simulator(rcp_sched, spec=CRAY_T3D, memory_managed=False,
                     profile=rcp_prof).run()
    print(f"\nbaseline (RCP, no memory management): PT = {base.parallel_time*1e3:.2f} ms")

    print(f"\n{'heuristic':>9} | {'memory':>7} | {'PT (ms)':>8} | "
          f"{'PT incr':>8} | {'#MAPs':>6}")
    for name, (sched, prof) in schedules.items():
        for frac in (1.0, 0.75, 0.5, 0.4):
            cap = int(rcp_prof.tot * frac)
            if prof.min_mem > cap:
                print(f"{name:>9} | {int(frac*100):>6}% | {'inf':>8} | "
                      f"{'inf':>8} | {'inf':>6}")
                continue
            res = Simulator(sched, spec=CRAY_T3D, capacity=cap,
                            profile=prof).run()
            inc = (res.parallel_time - base.parallel_time) / base.parallel_time
            print(f"{name:>9} | {int(frac*100):>6}% | "
                  f"{res.parallel_time*1e3:>8.2f} | {100*inc:>7.1f}% | "
                  f"{res.avg_maps:>6.2f}")


if __name__ == "__main__":
    main()
