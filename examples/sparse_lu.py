#!/usr/bin/env python3
"""Sparse LU with partial pivoting: solving larger problems in fixed memory.

The paper's second application and its section 5.3 demonstration: under a
fixed per-processor memory budget, the active memory management scheme
solves strictly larger problem instances than the original
allocate-everything strategy.

The script builds 1-D column-block LU task graphs for growing
truncations of the BCSSTK33 stand-in, finds the largest instance each
strategy can run, and reports simulated performance (PT, #MAPs, MFLOPS)
of the largest instance — Table 8's experiment.

Run:  python examples/sparse_lu.py
"""

from repro.core import analyze_memory, mpo_order
from repro.machine.simulator import Simulator
from repro.machine.spec import CRAY_T3D
from repro.rapid.executor import execute_schedule
from repro.sparse.lu import build_lu
from repro.sparse.matrices import bcsstk33_like, goodwin_like, truncate

P = 16


def main() -> None:
    # -- numeric sanity on the goodwin stand-in (pivoting happens) ------
    small = build_lu(goodwin_like(scale=0.015), block_size=8)
    pl = small.placement(4)
    sched = mpo_order(small.graph, pl, small.assignment(pl))
    store = small.initial_store()
    execute_schedule(sched, store)
    swaps = sum(
        1
        for k in range(small.num_panels)
        for (gc, r) in store[f"P[{k}]"]["piv"]
        if r != gc
    )
    print(f"goodwin-like n={small.n}: |LU - PA| = {small.factor_error(store):.1e} "
          f"with {swaps} genuine row swaps")

    # -- Table 8-style capacity experiment ------------------------------
    a_full = bcsstk33_like(scale=0.06)
    n_full = a_full.shape[0]
    flop_time = 1.0 / CRAY_T3D.flop_rate

    sizes = sorted({int(n_full * f) for f in (1.0, 0.85, 0.7, 0.55)}, reverse=True)
    stats = {}
    for n in sizes:
        prob = build_lu(truncate(a_full, n), block_size=10,
                        flop_time=flop_time, with_kernels=False)
        pl = prob.placement(P)
        sched = mpo_order(prob.graph, pl, prob.assignment(pl))
        prof = analyze_memory(sched)
        stats[n] = (prob, sched, prof)
        print(f"n={n:5d}: TOT = {prof.tot:9d} B   MIN_MEM = {prof.min_mem:9d} B")

    # capacity between the largest instance's MIN_MEM and TOT
    big_prof = stats[sizes[0]][2]
    capacity = (big_prof.tot + big_prof.min_mem) // 2
    print(f"\nfixed capacity: {capacity} B per processor")

    solvable_old = max((n for n, (_, _, pr) in stats.items() if pr.tot <= capacity),
                       default=None)
    solvable_new = max((n for n, (_, _, pr) in stats.items() if pr.min_mem <= capacity),
                       default=None)
    print(f"original scheme solves up to n = {solvable_old}")
    print(f"new scheme      solves up to n = {solvable_new}")

    if solvable_new:
        prob, sched, prof = stats[solvable_new]
        res = Simulator(sched, spec=CRAY_T3D, capacity=capacity, profile=prof).run()
        flops = prob.graph.total_work() * CRAY_T3D.flop_rate
        print(f"\nlargest instance on P={P}: PT = {res.parallel_time*1e3:.2f} ms, "
              f"{res.avg_maps:.2f} MAPs/proc, "
              f"{flops / res.parallel_time / 1e6:.0f} MFLOPS simulated")


if __name__ == "__main__":
    main()
