#!/usr/bin/env python3
"""Newton's method on the 2-D Bratu problem through RAPID-scheduled LU.

The paper (section 2) lists Newton's method among RAPID's applications:
the Jacobian's sparsity pattern never changes, so the expensive
inspector stage (symbolic factorization, task-graph extraction,
scheduling) runs once, and every Newton step re-executes the same
schedule on fresh numeric values.

Run:  python examples/newton_method.py
"""

import numpy as np

from repro.apps import BratuProblem, newton_solve
from repro.core import analyze_memory, mpo_order
from repro.machine.simulator import Simulator
from repro.machine.spec import CRAY_T3D

P = 8


def main() -> None:
    bratu = BratuProblem(k=12, lam=3.0)
    print(f"Bratu problem: -Δu = λ e^u, {bratu.k}x{bratu.k} grid "
          f"(n = {bratu.n}), λ = {bratu.lam}")

    # inspector: once
    lu = bratu.build_lu(block_size=8, flop_time=1.0 / CRAY_T3D.flop_rate)
    print(f"Jacobian task graph: {lu.graph.num_tasks} tasks, "
          f"{lu.num_panels} panels (structure fixed across iterations)")
    placement = lu.placement(P)
    schedule = mpo_order(lu.graph, placement, lu.assignment(placement),
                         CRAY_T3D.comm_model())
    prof = analyze_memory(schedule)
    print(f"MPO schedule on P={P}: MIN_MEM = {prof.min_mem} B, "
          f"TOT = {prof.tot} B")

    # executor: every Newton step re-runs the same schedule
    res = newton_solve(lu, bratu.f, bratu.jacobian, np.zeros(bratu.n),
                       schedule=schedule)
    print(f"\nNewton iterations ({'converged' if res.converged else 'failed'}):")
    for i, r in enumerate(res.residuals):
        print(f"  step {i}: |F(u)| = {r:.3e}")

    # simulated cost of one step's factorization phase, amortized
    sim = Simulator(schedule, spec=CRAY_T3D, capacity=prof.min_mem,
                    profile=prof, preknown_addresses=True).run()
    total = res.iterations * sim.parallel_time
    print(f"\nsimulated steady-state factorization: "
          f"{sim.parallel_time*1e3:.3f} ms/step -> "
          f"{total*1e3:.2f} ms over {res.iterations} Newton steps")


if __name__ == "__main__":
    main()
