#!/usr/bin/env python3
"""Quickstart: the RAPID-style API end to end.

Registers a small irregular program (objects + tasks in sequential
order), lets the inspector derive and schedule the task graph, then
executes it on the simulated distributed-memory machine under a memory
cap — and numerically, to show schedules preserve semantics.

Run:  python examples/quickstart.py
"""

from repro.machine.spec import UNIT_MACHINE
from repro.rapid import Rapid


def main() -> None:
    r = Rapid(spec=UNIT_MACHINE)

    # -- declare data objects (name, size in abstract units) ----------
    for name in ("a", "b", "c", "d"):
        r.object(name, size=4)
    r.object("sum", size=4)

    # -- declare tasks in sequential program order ---------------------
    # Four producers, four commutative accumulations, one consumer.
    r.task("init", writes=["sum"], weight=1.0,
           kernel=lambda s: s.__setitem__("sum", 0.0))
    for i, name in enumerate(("a", "b", "c", "d")):
        val = float(i + 1)
        r.task(f"produce_{name}", writes=[name], weight=2.0,
               kernel=lambda s, n=name, v=val: s.__setitem__(n, v))
    for name in ("a", "b", "c", "d"):
        r.task(f"add_{name}", reads=[name, "sum"], writes=["sum"],
               weight=1.0, commute="sum-up",
               kernel=lambda s, n=name: s.__setitem__("sum", s["sum"] + s[n]))
    r.task("report", reads=["sum"], weight=0.5)

    print(f"derived task graph: {r.graph.num_tasks} tasks, "
          f"{r.graph.num_edges} edges, {r.graph.num_objects} objects")

    # -- inspector: schedule on 2 processors with each heuristic -------
    for heuristic in ("rcp", "mpo", "dts"):
        prog = r.parallelize(num_procs=2, heuristic=heuristic)
        print(f"\n[{heuristic.upper()}] predicted PT = {prog.predicted_time():g}, "
              f"MIN_MEM = {prog.min_mem}, TOT = {prog.tot}")

        # timed execution under the tightest feasible memory
        res = prog.run(capacity=prog.min_mem)
        print(f"  simulated PT = {res.parallel_time:g} "
              f"(peak memory {res.peak_memory}/{prog.min_mem}, "
              f"{res.avg_maps:.2f} MAPs/processor)")

        # numeric execution of the same schedule
        store = prog.run_numeric({})
        assert store["sum"] == 10.0
        print(f"  numeric result: sum = {store['sum']} (correct)")


if __name__ == "__main__":
    main()
