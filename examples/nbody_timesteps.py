#!/usr/bin/env python3
"""N-body timestepping — RAPID's other motivating irregular workload.

Builds the cell-based N-body force DAG (non-uniform cell occupancy =
mixed granularity; commuting force accumulations), verifies that every
scheduling heuristic reproduces the exact particle trajectory, and shows
the iterative-execution amortization: after the first timestep notifies
the volatile addresses, steady-state steps run with no address traffic.

Run:  python examples/nbody_timesteps.py
"""

import numpy as np

from repro.core import analyze_memory, dts_order, mpo_order, rcp_order
from repro.machine.spec import CRAY_T3D
from repro.nbody import build_nbody
from repro.rapid.api import ParallelProgram
from repro.rapid.executor import execute_schedule

P = 8


def main() -> None:
    prob = build_nbody(k=6, steps=2, mean_particles=8.0, seed=11,
                       flop_time=1.0 / CRAY_T3D.flop_rate)
    g = prob.graph
    print(f"{prob.total_particles} particles in {prob.k}x{prob.k} cells, "
          f"{prob.steps} timesteps -> {g.num_tasks} tasks, {g.num_edges} edges")
    print(f"cell occupancy: min={prob.counts.min()}, max={prob.counts.max()} "
          f"(mixed granularity)")

    placement = prob.placement(P)
    assignment = prob.assignment(placement)
    ref = prob.reference_trajectory()

    for name, fn in (("RCP", rcp_order), ("MPO", mpo_order), ("DTS", dts_order)):
        sched = fn(g, placement, assignment)
        store = prob.initial_store()
        execute_schedule(sched, store)
        err = np.max(np.abs(prob.gather_positions(store) - ref))
        prof = analyze_memory(sched)
        print(f"[{name}] trajectory error {err:.1e}, "
              f"MIN_MEM {prof.min_mem} B, TOT {prof.tot} B")

    # iterative amortization with the MPO schedule
    prog = ParallelProgram(schedule=mpo_order(g, placement, assignment),
                           spec=CRAY_T3D)
    it = prog.run_iterative(50, capacity=prog.min_mem)
    print(f"\niterative execution (50 rounds of the {prob.steps}-step graph):")
    print(f"  first round : {it.first.parallel_time*1e3:.3f} ms "
          f"({sum(s.packages_sent for s in it.first.stats)} address packages)")
    print(f"  steady round: {it.steady.parallel_time*1e3:.3f} ms "
          f"({sum(s.packages_sent for s in it.steady.stats)} address packages)")
    print(f"  amortized   : {it.amortized_time*1e3:.3f} ms/round")


if __name__ == "__main__":
    main()
