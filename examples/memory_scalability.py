#!/usr/bin/env python3
"""Memory scalability of RCP / MPO / DTS (the Figure 7 experiment).

For growing processor counts, report the memory reduction ratio
``S1 / S_p`` of each ordering heuristic against the perfect ``S1/p``
line — on both applications.  DTS should track the perfect curve, MPO
sit in between, and RCP fall behind (dramatically for LU).

Run:  python examples/memory_scalability.py
"""

from repro.core import analyze_memory, dts_order, mpo_order, rcp_order
from repro.machine.spec import CRAY_T3D
from repro.sparse.cholesky import build_cholesky
from repro.sparse.lu import build_lu
from repro.sparse.matrices import bcsstk15_like, goodwin_like

ORDERINGS = {"RCP": rcp_order, "MPO": mpo_order, "DTS": dts_order}
PROCS = (2, 4, 8, 16, 32)


def sweep(name: str, prob) -> None:
    g = prob.graph
    print(f"\n{name}: n={prob.n}, {g.num_tasks} tasks, S1={g.total_data()} B")
    print(f"{'p':>3} | {'perfect':>7} | " + " | ".join(f"{h:>6}" for h in ORDERINGS))
    for p in PROCS:
        pl = prob.placement(p)
        asg = prob.assignment(pl)
        ratios = []
        for fn in ORDERINGS.values():
            prof = analyze_memory(fn(g, pl, asg))
            ratios.append(prof.memory_scalability())
        cells = " | ".join(f"{r:>6.2f}" for r in ratios)
        print(f"{p:>3} | {float(p):>7.2f} | {cells}")


def main() -> None:
    ft = 1.0 / CRAY_T3D.flop_rate
    sweep(
        "sparse Cholesky (bcsstk15-like)",
        build_cholesky(bcsstk15_like(scale=0.1), block_size=10,
                       flop_time=ft, with_kernels=False),
    )
    sweep(
        "sparse LU (goodwin-like)",
        build_lu(goodwin_like(scale=0.05), block_size=10,
                 flop_time=ft, with_kernels=False),
    )


if __name__ == "__main__":
    main()
