"""Tests for the error hierarchy and miscellaneous surfaces."""


from repro import errors


class TestHierarchy:
    def test_all_derive_from_repro_error(self):
        for name in (
            "GraphError",
            "CycleError",
            "DependenceError",
            "SchedulingError",
            "PlacementError",
            "NonExecutableScheduleError",
            "MemoryError_",
            "SimulationError",
            "DeadlockError",
            "DataConsistencyError",
        ):
            cls = getattr(errors, name)
            assert issubclass(cls, errors.ReproError)

    def test_non_executable_message(self):
        e = errors.NonExecutableScheduleError(3, required=100, capacity=80)
        assert "processor 3" in str(e)
        assert e.required == 100 and e.capacity == 80

    def test_cycle_hint(self):
        assert "T1" in str(errors.CycleError("T1"))
        assert "cycle" in str(errors.CycleError())

    def test_deadlock_payload(self):
        e = errors.DeadlockError({0: "REC", 2: "MAP"}, completed=5, total=9)
        s = str(e)
        assert "5/9" in s and "P0:REC" in s and "P2:MAP" in s
        assert e.blocked == {0: "REC", 2: "MAP"}

    def test_simulation_error_is_not_memory_error(self):
        assert not issubclass(errors.SimulationError, errors.MemoryError_)


class TestPackageSurface:
    def test_version(self):
        import repro

        assert repro.__version__

    def test_top_level_exports(self):
        import repro

        for name in repro.__all__:
            assert getattr(repro, name, None) is not None or name == "__version__"

    def test_subpackage_exports_resolve(self):
        import repro.core as core
        import repro.graph as graph
        import repro.machine as machine
        import repro.rapid as rapid
        import repro.sparse as sparse

        for mod in (core, graph, machine, rapid, sparse):
            for name in mod.__all__:
                assert getattr(mod, name) is not None, f"{mod.__name__}.{name}"
