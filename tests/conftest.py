"""Shared fixtures: the seeded-graph factory used across suites.

``seeded_case`` builds a fully scheduled-ready case — graph, cyclic
placement and owner-compute assignment — from a seed, so the scale,
property and conformance suites all draw their random workloads from the
same deterministic factory.
"""

from dataclasses import dataclass

import pytest

from repro.core import cyclic_placement, owner_compute_assignment
from repro.core.placement import Placement
from repro.graph import generators
from repro.graph.taskgraph import TaskGraph


@dataclass(frozen=True)
class GraphCase:
    """One seeded workload, ready for any ordering heuristic."""

    graph: TaskGraph
    placement: Placement
    assignment: dict
    procs: int
    seed: int
    family: str


def make_case(
    seed: int = 0,
    procs: int = 3,
    family: str = "trace",
    tasks: int = 30,
    objects: int = 6,
    layers: int = 6,
    width: int = 5,
    **kw,
) -> GraphCase:
    """Build a :class:`GraphCase`; ``family`` is ``"trace"`` (random
    sequential access trace) or ``"layered"`` (layered random DAG)."""
    if family == "trace":
        g = generators.random_trace(tasks, objects, seed=seed, **kw)
    elif family == "layered":
        g = generators.layered_random(layers, width, seed=seed, **kw)
    else:
        raise ValueError(f"unknown graph family {family!r}")
    pl = cyclic_placement(g, procs)
    return GraphCase(
        graph=g,
        placement=pl,
        assignment=owner_compute_assignment(g, pl),
        procs=procs,
        seed=seed,
        family=family,
    )


@pytest.fixture
def seeded_case():
    """Factory fixture: ``seeded_case(seed=3, procs=4, family="layered")``."""
    return make_case
