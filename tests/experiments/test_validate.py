"""The replication scorecard must pass in full on this machine."""

import pytest

from repro.experiments import ExperimentContext
from repro.experiments.validate import render_scorecard, validate


@pytest.fixture(scope="module")
def claims():
    return validate(ExperimentContext())


class TestScorecard:
    def test_all_claims_pass(self, claims):
        failed = [c for c in claims if not c.passed]
        assert not failed, render_scorecard(failed)

    def test_coverage(self, claims):
        """Every table/figure of the paper appears in the scorecard."""
        sources = " ".join(c.source for c in claims)
        for ref in ("Table 1", "Table 2", "Table 4", "Table 5", "Table 6",
                    "Table 7", "Fig. 7", "Fig. 5", "Fig. 3", "Thm. 2"):
            assert ref in sources

    def test_render(self, claims):
        text = render_scorecard(claims)
        assert "PASS" in text
        assert f"{len(claims)}/{len(claims)} claims reproduced" in text

    def test_cli_exit_code(self, capsys):
        from repro.cli import main

        assert main(["validate"]) == 0
        assert "Replication scorecard" in capsys.readouterr().out
