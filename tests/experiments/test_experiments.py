"""Smoke and shape tests for the table/figure regeneration library.

Full-size sweeps live in ``benchmarks/``; these tests run reduced
configurations and assert the paper's qualitative shapes.
"""

import math

import pytest

from repro.experiments import (
    ExperimentContext,
    compare_pt,
    run_figure7,
    run_table8,
    table1,
    table2,
    table4,
    table5,
    table6,
    table7,
)
from repro.experiments.common import CellMetrics
from repro.experiments.report import fmt_maps, fmt_pct, fmt_ratio, render_table


@pytest.fixture(scope="module")
def ctx():
    return ExperimentContext()


class TestCommon:
    def test_problem_caching(self, ctx):
        assert ctx.problem("chol15") is ctx.problem("chol15")

    def test_unknown_workload(self, ctx):
        with pytest.raises(KeyError):
            ctx.problem("nope")

    def test_schedule_caching(self, ctx):
        s1 = ctx.schedule("chol15", 2, "rcp")
        s2 = ctx.schedule("chol15", 2, "rcp")
        assert s1 is s2

    def test_baseline_pt_positive(self, ctx):
        assert ctx.baseline_pt("chol15", 2) > 0

    def test_run_cell_100pct_executable(self, ctx):
        c = ctx.run_cell("chol15", 4, "rcp", 1.0)
        assert c.executable
        assert c.pt_increase >= 0  # management always costs something
        assert c.avg_maps >= 1.0

    def test_run_cell_non_executable(self, ctx):
        c = ctx.run_cell("chol15", 2, "rcp", 0.4)
        # at p=2 almost everything is permanent; 40% of TOT is below
        # MIN_MEM for this workload (the paper's table 2 shows inf too)
        if not c.executable:
            assert math.isinf(c.pt)

    def test_compare_pt_markers(self):
        ok = CellMetrics(executable=True, pt=2.0)
        ok2 = CellMetrics(executable=True, pt=3.0)
        bad = CellMetrics(executable=False)
        assert compare_pt(ok, ok2) == pytest.approx(0.5)
        assert compare_pt(bad, ok) == "*"
        assert compare_pt(ok, bad) == "!"
        assert compare_pt(bad, bad) == "-"

    def test_reference_tot_is_rcp(self, ctx):
        assert ctx.reference_tot("chol15", 4) == ctx.profile("chol15", 4, "rcp").tot


class TestTables:
    def test_table1_ratio_grows_with_p(self, ctx):
        t = table1(ctx, procs=(2, 4, 8))
        assert t.ratios[2] < t.ratios[4] < t.ratios[8]
        assert t.ratios[2] > 1.0
        assert "Table 1" in t.render()

    def test_table2_shapes(self, ctx):
        t = table2(ctx, procs=(4, 8), fractions=(1.0, 0.75))
        # overhead grows as memory shrinks (when executable)
        for p in (4, 8):
            full = t.pt_increase[(p, 1.0)]
            tight = t.pt_increase[(p, 0.75)]
            assert full >= 0
            if not math.isinf(tight):
                assert tight >= full * 0.5  # same order, usually larger
        assert "PTinc" in t.render()

    def test_table4_mpo_close_to_rcp(self, ctx):
        t = table4(ctx, "cholesky", procs=(4, 8), fractions=(0.75,))
        for key, v in t.entries.items():
            if isinstance(v, float):
                assert abs(v) < 0.5  # within +-50%: "negligible difference"

    def test_table5_mpo_needs_no_more_maps(self, ctx):
        t = table5(ctx, procs=(8,), fractions=(0.75, 0.5))
        for (p, f), (rcp_maps, mpo_maps) in t.entries.items():
            if not math.isinf(rcp_maps) and not math.isinf(mpo_maps):
                assert mpo_maps <= rcp_maps + 1e-9

    def test_table6_dts_slower(self, ctx):
        t = table6(ctx, "cholesky", procs=(8, 16), fractions=(0.75,))
        vals = [v for v in t.entries.values() if isinstance(v, float)]
        assert vals and all(v > -0.05 for v in vals)
        assert sum(vals) / len(vals) > 0  # DTS slower on average

    def test_table7_merge_competitive(self, ctx):
        t = table7(ctx, "cholesky", procs=(8,), fractions=(0.75, 0.5))
        for v in t.entries.values():
            if isinstance(v, float):
                assert abs(v) < 0.6

    def test_render_all(self, ctx):
        t = table2(ctx, procs=(4,), fractions=(1.0, 0.75))
        assert "P=4" in t.render()


class TestFigure7:
    def test_ordering_of_heuristics(self, ctx):
        f = run_figure7(ctx, "cholesky", procs=(4, 8, 16))
        for i in range(3):
            perfect = f.series["perfect"][i]
            rcp = f.series["RCP"][i]
            mpo = f.series["MPO"][i]
            dts = f.series["DTS"][i]
            assert rcp <= mpo + 1e-9  # MPO at least as scalable as RCP
            assert dts <= perfect + 1e-9
            assert mpo <= perfect + 1e-9

    def test_lu_rcp_poor(self, ctx):
        """Figure 7(b): RCP is far from perfect for LU."""
        f = run_figure7(ctx, "lu", procs=(8,))
        assert f.series["RCP"][0] < 0.5 * f.series["perfect"][0]

    def test_render(self, ctx):
        f = run_figure7(ctx, "cholesky", procs=(2, 4))
        assert "Figure 7" in f.render()


class TestTable8:
    def test_new_scheme_solves_larger(self):
        t = run_table8(scale=0.04, block_size=8, procs=(4, 8), base_procs=4)
        assert t.n_new >= t.n_original
        assert t.size_increase_pct >= 0
        ok = [r for r in t.rows if not math.isinf(r.parallel_time)]
        assert ok
        # MFLOPS grows with p in the executable rows
        if len(ok) >= 2:
            assert ok[-1].mflops >= ok[0].mflops * 0.8
        assert "Table 8" in t.render()


class TestReport:
    def test_fmt_pct(self):
        assert fmt_pct(0.123) == "12.3%"
        assert fmt_pct(float("inf")) == "inf"
        assert fmt_pct("*") == "*"

    def test_fmt_maps_ratio(self):
        assert fmt_maps(2.5) == "2.50"
        assert fmt_ratio(float("inf")) == "inf"

    def test_render_table(self):
        s = render_table(["a", "bb"], [["1", "2"], ["3", "4"]], title="T")
        assert s.splitlines()[0] == "T"
        assert "bb" in s
