"""Telemetry columns of the sweep engine.

Two contracts: (1) with ``metrics=False`` (the default) the CSV is
byte-identical to the pre-telemetry format — header and rows carry no
telemetry columns, serial or parallel; (2) with ``metrics=True`` every
record carries ``map_overhead_frac`` / ``max_hwm`` / ``max_suspq``
(``inf`` for non-executable cells) and the CSV round-trips.
"""

import math

import pytest

from repro.experiments import ExperimentContext
from repro.experiments.sweep import (
    FIELDS,
    METRIC_FIELDS,
    from_csv,
    full_sweep,
    to_csv,
)

GRID = dict(
    workloads=("lu-goodwin",),
    procs=(4, 8),
    heuristics=("rcp", "mpo"),
    fractions=(1.0, 0.4),
)


@pytest.fixture(scope="module")
def plain():
    return full_sweep(ExperimentContext(), **GRID)


@pytest.fixture(scope="module")
def instrumented():
    return full_sweep(ExperimentContext(), metrics=True, **GRID)


class TestPlainCsvUnchanged:
    def test_header_has_no_metric_columns(self, plain):
        header = to_csv(plain).splitlines()[0]
        assert header == ",".join(FIELDS)
        for col in METRIC_FIELDS:
            assert col not in header

    def test_records_carry_no_metrics(self, plain):
        for r in plain:
            assert r.map_overhead_frac is None
            assert r.max_hwm is None
            assert r.max_suspq is None

    def test_jobs2_csv_byte_identical(self, plain):
        par = full_sweep(ExperimentContext(), jobs=2, **GRID)
        assert to_csv(par) == to_csv(plain)

    def test_roundtrip(self, plain):
        assert from_csv(to_csv(plain)) == plain


class TestMetricsColumns:
    def test_timing_fields_unchanged_by_instrumentation(self, plain, instrumented):
        """Instrumentation must not perturb the simulation."""
        strip = [
            (r.workload, r.procs, r.heuristic, r.fraction, r.executable,
             r.parallel_time, r.pt_increase, r.avg_maps)
            for r in instrumented
        ]
        base = [
            (r.workload, r.procs, r.heuristic, r.fraction, r.executable,
             r.parallel_time, r.pt_increase, r.avg_maps)
            for r in plain
        ]
        assert strip == base

    def test_header_gains_metric_columns(self, instrumented):
        header = to_csv(instrumented).splitlines()[0]
        assert header == ",".join(FIELDS + METRIC_FIELDS)

    def test_executable_cells_have_finite_metrics(self, instrumented):
        for r in instrumented:
            if r.executable:
                assert 0.0 <= r.map_overhead_frac < 1.0
                assert 0 < r.max_hwm <= r.capacity
                assert r.max_suspq >= 0
            else:
                assert math.isinf(r.map_overhead_frac)
                assert math.isinf(r.max_hwm)
                assert math.isinf(r.max_suspq)

    def test_roundtrip(self, instrumented):
        assert from_csv(to_csv(instrumented)) == instrumented

    def test_jobs2_identical(self, instrumented):
        par = full_sweep(ExperimentContext(), jobs=2, metrics=True, **GRID)
        assert par == instrumented
        assert to_csv(par) == to_csv(instrumented)

    def test_run_cell_cache_does_not_mix_modes(self):
        """A context asked for plain then instrumented cells (or vice
        versa) keeps the two simulation caches apart."""
        ctx = ExperimentContext()
        a = ctx.run_cell("lu-goodwin", 4, "rcp", 1.0, reference="rcp")
        b = ctx.run_cell(
            "lu-goodwin", 4, "rcp", 1.0, reference="rcp", collect_metrics=True
        )
        assert a.map_overhead_frac is None
        assert b.map_overhead_frac is not None
        assert a.pt == b.pt
