"""Unit tests for the sweep checkpoint journal (no worker pools)."""

import json
import math
import os

import pytest

from repro.experiments.checkpoint import (
    CheckpointJournal,
    atomic_write_text,
    grid_fingerprint,
    record_from_json,
    record_to_json,
)
from repro.experiments.sweep import SweepRecord
from repro.machine.spec import CRAY_T3D, UNIT_MACHINE

INF = float("inf")


def rec(**kw) -> SweepRecord:
    base = dict(
        workload="lu-goodwin", procs=4, heuristic="rcp", fraction=0.5,
        executable=True, capacity=100, min_mem=40, tot=200,
        parallel_time=1.25, pt_increase=0.1, avg_maps=2.5,
    )
    base.update(kw)
    return SweepRecord(**base)


GRID = dict(
    workloads=("lu-goodwin",), procs=(2, 4), heuristics=("rcp",),
    fractions=(1.0, 0.5), reference="rcp", metrics=False, check=False,
    analyze=False, engine="interpreted",
)


class TestAtomicWrite:
    def test_writes_and_replaces(self, tmp_path):
        target = tmp_path / "out.csv"
        atomic_write_text(target, "one\n")
        atomic_write_text(target, "two\n")
        assert target.read_text() == "two\n"

    def test_no_temp_files_left_behind(self, tmp_path):
        atomic_write_text(tmp_path / "out.csv", "data\n")
        assert os.listdir(tmp_path) == ["out.csv"]


class TestFingerprint:
    def test_stable(self):
        assert grid_fingerprint(CRAY_T3D, **GRID) == grid_fingerprint(
            CRAY_T3D, **GRID
        )

    @pytest.mark.parametrize(
        "change",
        [
            {"workloads": ("chol15",)},
            {"procs": (2,)},
            {"heuristics": ("mpo",)},
            {"fractions": (1.0,)},
            {"reference": "self"},
            {"metrics": True},
            {"check": True},
            {"analyze": True},
            {"engine": "compiled"},
            {"engine_stats": True},
        ],
    )
    def test_any_record_shaping_knob_changes_it(self, change):
        base = grid_fingerprint(CRAY_T3D, **GRID)
        assert grid_fingerprint(CRAY_T3D, **{**GRID, **change}) != base

    def test_harness_faults_change_it(self):
        # A faulted journal can hold failure rows; replaying it into a
        # fault-free resume (or vice versa) would corrupt the sweep.
        from repro.experiments.runtime import HarnessFaultSpec

        base = grid_fingerprint(CRAY_T3D, **GRID)
        faulted = grid_fingerprint(
            CRAY_T3D, **GRID,
            harness_faults=HarnessFaultSpec(kill=(("lu-goodwin", 4),)),
        )
        assert faulted != base
        # ...and different fault specs are themselves distinct.
        other = grid_fingerprint(
            CRAY_T3D, **GRID,
            harness_faults=HarnessFaultSpec(error=(("lu-goodwin", 4),)),
        )
        assert other != faulted

    def test_machine_spec_changes_it(self):
        assert grid_fingerprint(CRAY_T3D, **GRID) != grid_fingerprint(
            UNIT_MACHINE, **GRID
        )


class TestRecordJson:
    def test_roundtrip_plain(self):
        r = rec()
        assert record_from_json(record_to_json(r)) == r

    def test_roundtrip_inf_and_optionals(self):
        r = rec(
            executable=False, parallel_time=INF, pt_increase=INF,
            avg_maps=INF, violations=INF, max_hwm=3.0,
        )
        back = record_from_json(record_to_json(r))
        assert back == r and math.isinf(back.parallel_time)

    def test_roundtrip_failure_fields(self):
        r = rec(
            executable=False, parallel_time=INF, pt_increase=INF,
            avg_maps=INF, status="timeout", error="group exceeded 1s",
            attempts=3, elapsed=4.25,
        )
        assert record_from_json(record_to_json(r)) == r

    def test_json_is_line_safe(self):
        # One record per JSONL line: the serialised form must not
        # contain newlines.
        assert "\n" not in json.dumps(record_to_json(rec()))


class TestJournal:
    def fp(self, **overrides):
        return grid_fingerprint(CRAY_T3D, **{**GRID, **overrides})

    def test_record_and_complete(self, tmp_path):
        j = CheckpointJournal(tmp_path, self.fp())
        j.start()
        records = [rec(fraction=1.0), rec(fraction=0.5)]
        j.record_group("lu-goodwin", 4, records)
        done = CheckpointJournal(tmp_path, self.fp()).completed()
        assert done == {("lu-goodwin", 4): records}

    def test_stale_fingerprint_invalidates(self, tmp_path):
        j = CheckpointJournal(tmp_path, self.fp())
        j.start()
        j.record_group("lu-goodwin", 4, [rec()])
        other = CheckpointJournal(tmp_path, self.fp(procs=(2,)))
        assert other.completed() == {}
        other.start(resume=True)
        assert other.stale
        # the stale manifest was replaced; the old group is gone
        assert CheckpointJournal(tmp_path, self.fp()).completed() == {}

    def test_resume_keeps_matching_manifest(self, tmp_path):
        j = CheckpointJournal(tmp_path, self.fp())
        j.start()
        j.record_group("lu-goodwin", 4, [rec()])
        j2 = CheckpointJournal(tmp_path, self.fp())
        j2.start(resume=True)
        assert not j2.stale
        assert ("lu-goodwin", 4) in j2.completed()

    def test_fresh_start_resets(self, tmp_path):
        j = CheckpointJournal(tmp_path, self.fp())
        j.start()
        j.record_group("lu-goodwin", 4, [rec()])
        j2 = CheckpointJournal(tmp_path, self.fp())
        j2.start(resume=False)
        assert j2.completed() == {}

    def test_truncated_shard_is_skipped(self, tmp_path):
        j = CheckpointJournal(tmp_path, self.fp())
        j.start()
        j.record_group("lu-goodwin", 2, [rec(procs=2)])
        j.record_group("lu-goodwin", 4, [rec(), rec(fraction=1.0)])
        shard = tmp_path / "lu-goodwin_p4.jsonl"
        shard.write_text(shard.read_text().splitlines()[0] + "\n")
        done = j.completed()
        # the torn group re-runs; the intact one replays
        assert ("lu-goodwin", 4) not in done
        assert ("lu-goodwin", 2) in done

    def test_missing_manifest_is_empty(self, tmp_path):
        assert CheckpointJournal(tmp_path, self.fp()).completed() == {}

    def test_corrupt_manifest_is_empty(self, tmp_path):
        (tmp_path / "MANIFEST.json").write_text("{ not json")
        assert CheckpointJournal(tmp_path, self.fp()).completed() == {}
