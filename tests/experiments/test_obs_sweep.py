"""Integration tests: the observed sweep (``obs_dir=``/``progress=``),
the opt-in engine-stats columns, and the no-cost-when-off contract."""

import json

import pytest

from repro.experiments import ExperimentContext
from repro.experiments.runtime import HarnessFaultSpec, RuntimePolicy
from repro.experiments.sweep import (
    ENGINE_FIELDS,
    full_sweep,
    from_csv,
    to_csv,
)
from repro.obs.runtime import SHARD_GLOB
from repro.obs.sweep_trace import load_runtime_shards, merge_obs_dir

GRID = dict(
    workloads=("lu-goodwin",), procs=(2, 4), heuristics=("rcp",),
    fractions=(1.0, 0.5), reference="rcp",
)

FAST = RuntimePolicy(backoff_base=0.05, backoff_jitter=0.0)


def shard_kinds(directory):
    kinds = set()
    for block in load_runtime_shards(directory):
        kinds.update(e["kind"] for e in block["events"])
    return kinds


class TestEngineStatsColumns:
    def test_columns_are_opt_in(self):
        plain = full_sweep(ExperimentContext(), **GRID)
        assert all(r.engine_used is None for r in plain)
        assert all(r.fallback_reason is None for r in plain)
        header = to_csv(plain).splitlines()[0]
        for field in ENGINE_FIELDS:
            assert field not in header

    def test_stats_fill_engine_used(self):
        records = full_sweep(
            ExperimentContext(), engine="compiled", engine_stats=True, **GRID
        )
        for r in records:
            if r.executable:
                assert r.engine_used == "compiled"
                assert r.fallback_reason is None
            else:
                assert r.engine_used is None
        header = to_csv(records).splitlines()[0]
        for field in ENGINE_FIELDS:
            assert field in header

    def test_csv_roundtrip(self):
        records = full_sweep(
            ExperimentContext(), engine="compiled", engine_stats=True, **GRID
        )
        assert from_csv(to_csv(records)) == records

    def test_stats_do_not_change_core_fields(self):
        plain = full_sweep(ExperimentContext(), **GRID)
        stats = full_sweep(ExperimentContext(), engine_stats=True, **GRID)
        core = [(r.workload, r.procs, r.heuristic, r.fraction,
                 r.parallel_time, r.avg_maps) for r in plain]
        assert core == [(r.workload, r.procs, r.heuristic, r.fraction,
                         r.parallel_time, r.avg_maps) for r in stats]

    def test_parallel_matches_serial(self):
        serial = full_sweep(ExperimentContext(), engine_stats=True, **GRID)
        par = full_sweep(
            ExperimentContext(), engine_stats=True, jobs=2, **GRID
        )
        assert par == serial


class TestObservedSweep:
    def test_traced_sweep_is_byte_identical(self, tmp_path):
        plain = full_sweep(
            ExperimentContext(), jobs=2, runtime=FAST, **GRID
        )
        traced = full_sweep(
            ExperimentContext(), jobs=2, runtime=FAST,
            obs_dir=str(tmp_path), **GRID
        )
        assert traced == plain
        assert to_csv(traced) == to_csv(plain)

    def test_shards_carry_the_sweep_lifecycle(self, tmp_path):
        full_sweep(
            ExperimentContext(), jobs=2, runtime=FAST,
            obs_dir=str(tmp_path), **GRID
        )
        shards = load_runtime_shards(tmp_path)
        roles = {b["role"] for b in shards}
        assert "supervisor" in roles and "worker" in roles
        kinds = shard_kinds(tmp_path)
        assert {"sweep_begin", "dispatch", "attempt_start",
                "attempt_finish", "group_done", "engine_counters",
                "sweep_end"} <= kinds

    def test_merged_trace_is_perfetto_loadable(self, tmp_path):
        full_sweep(
            ExperimentContext(), jobs=2, runtime=FAST,
            obs_dir=str(tmp_path), **GRID
        )
        doc = merge_obs_dir(tmp_path)
        assert doc["traceEvents"]
        json.dumps(doc)  # serialisable
        spans = [e for e in doc["traceEvents"] if e.get("ph") == "X"]
        assert spans  # worker attempts became spans

    def test_no_obs_dir_means_no_shards(self, tmp_path):
        full_sweep(ExperimentContext(), jobs=2, runtime=FAST, **GRID)
        assert list(tmp_path.glob(SHARD_GLOB)) == []

    def test_engine_counters_event_reports_cache_activity(self, tmp_path):
        full_sweep(
            ExperimentContext(), jobs=2, runtime=FAST, engine="compiled",
            obs_dir=str(tmp_path), **GRID
        )
        counters = [
            e for b in load_runtime_shards(tmp_path) for e in b["events"]
            if e["kind"] == "engine_counters"
        ]
        assert counters
        merged: dict = {}
        for e in counters:
            for k, v in e["counters"].items():
                merged[k] = merged.get(k, 0) + v
        assert merged.get("compiled_runs", 0) > 0


class TestObservedFaultySweep:
    def test_injected_error_leaves_retry_events_and_heals(self, tmp_path):
        faults = HarnessFaultSpec(error=(("lu-goodwin", 4),))
        records = full_sweep(
            ExperimentContext(), jobs=2, runtime=FAST,
            harness_faults=faults, obs_dir=str(tmp_path), **GRID
        )
        assert all(r.status is None for r in records)  # retry healed it
        kinds = shard_kinds(tmp_path)
        assert "retry" in kinds

    @pytest.mark.slow
    def test_killed_worker_leaves_crash_evidence(self, tmp_path):
        faults = HarnessFaultSpec(kill=(("lu-goodwin", 4),))
        records = full_sweep(
            ExperimentContext(), jobs=2, runtime=FAST,
            harness_faults=faults, obs_dir=str(tmp_path), **GRID
        )
        assert all(r.status is None for r in records)
        kinds = shard_kinds(tmp_path)
        assert kinds & {"pool_broken", "crash_quarantine"}

    def test_resume_emits_resume_hits(self, tmp_path):
        ckpt = tmp_path / "ckpt"
        obs = tmp_path / "obs"
        full_sweep(
            ExperimentContext(), jobs=2, runtime=FAST,
            checkpoint=str(ckpt), **GRID
        )
        records = full_sweep(
            ExperimentContext(), jobs=2, runtime=FAST,
            checkpoint=str(ckpt), resume=True, obs_dir=str(obs), **GRID
        )
        assert all(r.status is None for r in records)
        kinds = shard_kinds(obs)
        assert "resume_hit" in kinds
        assert "dispatch" not in kinds  # everything came from the journal
