"""Interaction matrix: ``full_sweep`` across jobs x observation flags
x engine.

The sweep contract is that none of the orthogonal features changes the
measured numbers: worker processes return the serial records verbatim,
observation (``metrics``/``check``/``analyze``) only *appends* columns,
and the compiled engine agrees with the interpreted oracle bit for bit.
This suite pins the whole matrix to one baseline — the serial,
flags-off, interpreted sweep — by comparing CSV bytes: directly for
flag-less combinations, and after projecting away the appended optional
columns for observed ones.
"""

import dataclasses
import itertools

import pytest

from repro.experiments import ExperimentContext
from repro.experiments.sweep import full_sweep, to_csv

GRID = dict(
    workloads=("lu-goodwin",),
    procs=(2, 4),
    heuristics=("rcp",),
    fractions=(1.0, 0.5),
    reference="rcp",
)

OPTIONAL = ("map_overhead_frac", "max_hwm", "max_suspq", "violations",
            "analysis_errors")


def core_csv(records) -> str:
    """CSV of the records with every optional (appended) column
    stripped — the exact bytes a flags-off sweep would produce *iff*
    the mandatory fields are untouched."""
    return to_csv([
        dataclasses.replace(r, **dict.fromkeys(OPTIONAL, None))
        for r in records
    ])


@pytest.fixture(scope="module")
def baseline_csv():
    """Serial, flags-off, interpreted-engine sweep."""
    return to_csv(full_sweep(ExperimentContext(), jobs=1, **GRID))


FLAG_SETS = [
    {},
    {"metrics": True},
    {"check": True},
    {"analyze": True},
    {"metrics": True, "check": True, "analyze": True},
]


@pytest.mark.parametrize(
    "jobs,engine,flags",
    [
        pytest.param(jobs, engine, flags,
                     id=f"jobs{jobs}-{engine}-{'+'.join(flags) or 'plain'}")
        for jobs, engine, flags in itertools.product(
            (1, 2), ("interpreted", "compiled"), FLAG_SETS
        )
    ],
)
def test_matrix_cell_matches_baseline(jobs, engine, flags, baseline_csv):
    records = full_sweep(
        ExperimentContext(), jobs=jobs, engine=engine, **GRID, **flags
    )
    if not flags:
        # No observation: the CSV must be byte-identical outright.
        assert to_csv(records) == baseline_csv
    else:
        # Observation appends columns; the mandatory columns must
        # survive untouched (byte-identical after projection).
        assert core_csv(records) == baseline_csv
        header = to_csv(records).splitlines()[0]
        if "metrics" in flags:
            assert "max_hwm" in header
        if "check" in flags:
            assert "violations" in header
        if "analyze" in flags:
            assert "analysis_errors" in header


def test_compiled_engine_cli_csv_identical(tmp_path, capsys):
    """The CLI surface of the same guarantee: ``sweep --engine
    compiled`` writes the same bytes as the interpreted sweep."""
    from repro.cli import main

    outs = {}
    for engine in ("interpreted", "compiled"):
        out = tmp_path / f"{engine}.csv"
        assert main(
            ["sweep", "--procs", "4", "--engine", engine, "--out", str(out)]
        ) == 0
        outs[engine] = out.read_bytes()
    capsys.readouterr()
    assert outs["interpreted"] == outs["compiled"]
