"""Tests for the generic sweep runner and its CSV round trip."""

import math

import pytest

from repro.experiments import ExperimentContext
from repro.experiments.sweep import (
    ANALYZE_FIELDS,
    BOUNDS_FIELDS,
    CHECK_FIELDS,
    FAILURE_FIELDS,
    FIELDS,
    METRIC_FIELDS,
    SweepRecord,
    from_csv,
    full_sweep,
    to_csv,
)


@pytest.fixture(scope="module")
def records():
    ctx = ExperimentContext()
    return full_sweep(
        ctx,
        workloads=("lu-goodwin",),
        procs=(4, 8),
        heuristics=("rcp", "mpo"),
        fractions=(1.0, 0.5),
    )


class TestFullSweep:
    def test_grid_size(self, records):
        assert len(records) == 1 * 2 * 2 * 2

    def test_executable_cells_have_metrics(self, records):
        for r in records:
            if r.executable:
                assert r.parallel_time > 0 and r.avg_maps >= 1.0
            else:
                assert math.isinf(r.parallel_time)

    def test_min_mem_consistency(self, records):
        for r in records:
            assert r.executable == (r.min_mem <= r.capacity)

    def test_mpo_extends_executability(self, records):
        by = {(r.heuristic, r.procs, r.fraction): r for r in records}
        # wherever RCP runs, capacity >= its MIN_MEM; MPO's MIN_MEM never
        # exceeds RCP's on this workload
        for p in (4, 8):
            assert by[("mpo", p, 1.0)].min_mem <= by[("rcp", p, 1.0)].min_mem


class TestBoundsColumns:
    """``bounds=True`` populates the certified-bound columns."""

    @pytest.fixture(scope="class")
    def bounded(self):
        ctx = ExperimentContext()
        return full_sweep(
            ctx,
            workloads=("lu-goodwin",),
            procs=(4,),
            heuristics=("rcp",),
            fractions=(1.0, 0.5),
            bounds=True,
        )

    def test_every_record_carries_the_bounds(self, bounded):
        for r in bounded:
            assert r.pt_bound is not None and r.pt_bound > 0
            assert r.mem_bound is not None and r.mem_bound > 0

    def test_gaps_are_nonnegative(self, bounded):
        # A certified bound is never beaten: value/bound - 1 >= 0.
        for r in bounded:
            if r.executable:
                assert r.pt_bound_gap >= -1e-9
                assert r.mem_bound_gap >= -1e-9
                assert r.parallel_time >= r.pt_bound * (1 - 1e-9)
            else:
                assert math.isinf(r.pt_bound_gap)

    def test_bounds_constant_across_the_fraction_axis(self, bounded):
        # The bounds depend on graph/placement/assignment only, so the
        # fraction axis reuses one cached computation per cell family.
        vals = {(r.pt_bound, r.mem_bound) for r in bounded}
        assert len(vals) == 1

    def test_round_trip_and_header(self, bounded):
        text = to_csv(bounded)
        assert text.splitlines()[0] == ",".join(FIELDS + BOUNDS_FIELDS)
        assert from_csv(text) == bounded


class TestParallelSweep:
    """The process-parallel executor must reproduce the serial sweep
    bit for bit, in the same order."""

    def _grid(self):
        return dict(
            workloads=("lu-goodwin",),
            procs=(4, 8),
            heuristics=("rcp", "mpo"),
            fractions=(1.0, 0.5),
        )

    def test_jobs2_identical_records(self, records):
        par = full_sweep(ExperimentContext(), jobs=2, **self._grid())
        assert par == records

    def test_jobs2_identical_csv_bytes(self, records):
        par = full_sweep(ExperimentContext(), jobs=2, **self._grid())
        assert to_csv(par) == to_csv(records)

    def test_jobs_zero_means_all_cpus(self, records):
        par = full_sweep(ExperimentContext(), jobs=0, **self._grid())
        assert par == records

    def test_single_group_runs_serially(self):
        """One (workload, procs) group short-circuits to the serial
        path even with jobs > 1."""
        ctx = ExperimentContext()
        recs = full_sweep(
            ctx,
            workloads=("lu-goodwin",),
            procs=(4,),
            heuristics=("rcp",),
            fractions=(1.0,),
            jobs=4,
        )
        assert len(recs) == 1
        # The serial path populated this context's own caches.
        assert ctx._sims


class TestCSV:
    def test_header(self, records):
        text = to_csv(records)
        assert text.splitlines()[0] == ",".join(FIELDS)

    def test_roundtrip(self, records):
        text = to_csv(records)
        back = from_csv(text)
        assert len(back) == len(records)
        for a, b in zip(records, back):
            assert a.workload == b.workload and a.procs == b.procs
            assert a.executable == b.executable
            if a.executable:
                assert a.parallel_time == pytest.approx(b.parallel_time)
            else:
                assert math.isinf(b.parallel_time)

    def test_file_output(self, records, tmp_path):
        out = tmp_path / "sweep.csv"
        to_csv(records, path=str(out))
        assert out.exists()
        assert len(from_csv(out.read_text())) == len(records)

    def test_file_output_is_atomic_replace(self, records, tmp_path):
        # Crash-safe writes go through a temp file + os.replace: the
        # target is fully replaced and no droppings are left behind.
        out = tmp_path / "sweep.csv"
        out.write_text("stale partial content")
        text = to_csv(records, path=str(out))
        assert out.read_bytes() == text.encode()
        assert [p.name for p in tmp_path.iterdir()] == ["sweep.csv"]


INF = float("inf")


def make_record(**kw) -> SweepRecord:
    base = dict(
        workload="lu-goodwin", procs=4, heuristic="rcp", fraction=0.5,
        executable=True, capacity=100, min_mem=40, tot=200,
        parallel_time=1.2345678901234567, pt_increase=0.1, avg_maps=2.5,
    )
    base.update(kw)
    return SweepRecord(**base)


#: One record per optional-column family, plus a non-executable row
#: with ``inf`` everywhere — the building blocks of the combinations.
OPTIONAL_VARIANTS = {
    "metrics": dict(map_overhead_frac=0.01, max_hwm=12.0, max_suspq=3.0),
    "metrics-inf": dict(map_overhead_frac=INF, max_hwm=INF, max_suspq=INF,
                        executable=False, parallel_time=INF,
                        pt_increase=INF, avg_maps=INF),
    "check": dict(violations=0.0),
    "analyze": dict(analysis_errors=2.0),
    "bounds": dict(pt_bound=16.0, mem_bound=7.0, pt_bound_gap=0.0,
                   mem_bound_gap=0.0),
    "bounds-inf": dict(pt_bound=16.0, mem_bound=7.0, pt_bound_gap=INF,
                       mem_bound_gap=INF, executable=False,
                       parallel_time=INF, pt_increase=INF, avg_maps=INF),
    "failure": dict(executable=False, parallel_time=INF, pt_increase=INF,
                    avg_maps=INF, capacity=0, min_mem=0, tot=0,
                    status="crashed", error="worker process died, twice",
                    attempts=3, elapsed=12.5),
}


class TestCSVOptionalColumnRoundTrips:
    """Exact ``from_csv(to_csv(x)) == x`` across every optional-column
    combination, including ``inf`` and empty cells."""

    @pytest.mark.parametrize("variant", sorted(OPTIONAL_VARIANTS))
    def test_single_family(self, variant):
        recs = [make_record(), make_record(**OPTIONAL_VARIANTS[variant])]
        assert from_csv(to_csv(recs)) == recs

    def test_plain_records_omit_all_optional_columns(self):
        text = to_csv([make_record()])
        assert text.splitlines()[0] == ",".join(FIELDS)

    @pytest.mark.parametrize(
        ("families", "expected_fields"),
        [
            (("metrics",), FIELDS + METRIC_FIELDS),
            (("check",), FIELDS + CHECK_FIELDS),
            (("analyze",), FIELDS + ANALYZE_FIELDS),
            (("bounds",), FIELDS + BOUNDS_FIELDS),
            (("failure",), FIELDS + FAILURE_FIELDS),
            (("metrics", "check"), FIELDS + METRIC_FIELDS + CHECK_FIELDS),
            (("metrics", "check", "analyze", "failure"),
             FIELDS + METRIC_FIELDS + CHECK_FIELDS + ANALYZE_FIELDS
             + FAILURE_FIELDS),
            (("analyze", "bounds"),
             FIELDS + ANALYZE_FIELDS + BOUNDS_FIELDS),
            (("check", "failure"), FIELDS + CHECK_FIELDS + FAILURE_FIELDS),
        ],
    )
    def test_header_matches_populated_families(self, families, expected_fields):
        recs = [make_record()] + [
            make_record(**OPTIONAL_VARIANTS[f]) for f in families
        ]
        text = to_csv(recs)
        assert text.splitlines()[0] == ",".join(expected_fields)
        assert from_csv(text) == recs

    def test_mixed_rows_leave_empty_cells(self):
        # A failure row in a metrics sweep has empty telemetry cells and
        # vice versa; both sides must come back as None, not 0.
        recs = [
            make_record(**OPTIONAL_VARIANTS["metrics"]),
            make_record(**OPTIONAL_VARIANTS["failure"]),
        ]
        back = from_csv(to_csv(recs))
        assert back == recs
        assert back[0].status is None and back[1].map_overhead_frac is None

    def test_failure_types_survive(self):
        (back,) = from_csv(to_csv([make_record(**OPTIONAL_VARIANTS["failure"])]))
        assert isinstance(back.attempts, int)
        assert isinstance(back.elapsed, float)
        assert back.error == "worker process died, twice"
