"""Tests for the generic sweep runner and its CSV round trip."""

import math

import pytest

from repro.experiments import ExperimentContext
from repro.experiments.sweep import FIELDS, from_csv, full_sweep, to_csv


@pytest.fixture(scope="module")
def records():
    ctx = ExperimentContext()
    return full_sweep(
        ctx,
        workloads=("lu-goodwin",),
        procs=(4, 8),
        heuristics=("rcp", "mpo"),
        fractions=(1.0, 0.5),
    )


class TestFullSweep:
    def test_grid_size(self, records):
        assert len(records) == 1 * 2 * 2 * 2

    def test_executable_cells_have_metrics(self, records):
        for r in records:
            if r.executable:
                assert r.parallel_time > 0 and r.avg_maps >= 1.0
            else:
                assert math.isinf(r.parallel_time)

    def test_min_mem_consistency(self, records):
        for r in records:
            assert r.executable == (r.min_mem <= r.capacity)

    def test_mpo_extends_executability(self, records):
        by = {(r.heuristic, r.procs, r.fraction): r for r in records}
        # wherever RCP runs, capacity >= its MIN_MEM; MPO's MIN_MEM never
        # exceeds RCP's on this workload
        for p in (4, 8):
            assert by[("mpo", p, 1.0)].min_mem <= by[("rcp", p, 1.0)].min_mem


class TestParallelSweep:
    """The process-parallel executor must reproduce the serial sweep
    bit for bit, in the same order."""

    def _grid(self):
        return dict(
            workloads=("lu-goodwin",),
            procs=(4, 8),
            heuristics=("rcp", "mpo"),
            fractions=(1.0, 0.5),
        )

    def test_jobs2_identical_records(self, records):
        par = full_sweep(ExperimentContext(), jobs=2, **self._grid())
        assert par == records

    def test_jobs2_identical_csv_bytes(self, records):
        par = full_sweep(ExperimentContext(), jobs=2, **self._grid())
        assert to_csv(par) == to_csv(records)

    def test_jobs_zero_means_all_cpus(self, records):
        par = full_sweep(ExperimentContext(), jobs=0, **self._grid())
        assert par == records

    def test_single_group_runs_serially(self):
        """One (workload, procs) group short-circuits to the serial
        path even with jobs > 1."""
        ctx = ExperimentContext()
        recs = full_sweep(
            ctx,
            workloads=("lu-goodwin",),
            procs=(4,),
            heuristics=("rcp",),
            fractions=(1.0,),
            jobs=4,
        )
        assert len(recs) == 1
        # The serial path populated this context's own caches.
        assert ctx._sims


class TestCSV:
    def test_header(self, records):
        text = to_csv(records)
        assert text.splitlines()[0] == ",".join(FIELDS)

    def test_roundtrip(self, records):
        text = to_csv(records)
        back = from_csv(text)
        assert len(back) == len(records)
        for a, b in zip(records, back):
            assert a.workload == b.workload and a.procs == b.procs
            assert a.executable == b.executable
            if a.executable:
                assert a.parallel_time == pytest.approx(b.parallel_time)
            else:
                assert math.isinf(b.parallel_time)

    def test_file_output(self, records, tmp_path):
        out = tmp_path / "sweep.csv"
        to_csv(records, path=str(out))
        assert out.exists()
        assert len(from_csv(out.read_text())) == len(records)
