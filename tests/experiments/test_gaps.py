"""The optimality-gap scorecard and its CLI/sweep wiring."""

import pytest

from repro.cli import main
from repro.experiments import ExperimentContext, gap_scorecard
from repro.experiments.sweep import full_sweep
from repro.opt.gaps import GAP_HEURISTICS, optimality_gaps
from repro.graph.paper_example import (
    paper_assignment,
    paper_example_graph,
    paper_placement,
)


@pytest.fixture(scope="module")
def paper_gaps():
    g = paper_example_graph()
    pl = paper_placement()
    return optimality_gaps(
        g, pl, paper_assignment(g, pl), workload="paper"
    )


class TestOptimalityGaps:
    def test_both_objectives_prove_on_the_paper_example(self, paper_gaps):
        assert paper_gaps.time.proved and paper_gaps.memory.proved
        assert paper_gaps.time_ref == pytest.approx(16.0)
        assert paper_gaps.mem_ref == 7

    def test_static_heuristics_have_zero_gaps(self, paper_gaps):
        for name in ("rcp", "mpo", "dts", "tree"):
            row = paper_gaps.row(name)
            assert row.gap_pt == pytest.approx(0.0, abs=1e-9)
            assert row.gap_peak == pytest.approx(0.0, abs=1e-9)
            assert not row.own_placement

    def test_etf_row_shows_the_section1_tradeoff(self, paper_gaps):
        # The dynamic baseline runs faster than the memory-optimal
        # static schedules but uses more memory — the paper's premise.
        row = paper_gaps.row("etf")
        assert row.own_placement
        assert row.gap_pt < 0
        assert row.gap_peak > 0

    def test_row_lookup_raises_on_unknown_name(self, paper_gaps):
        with pytest.raises(KeyError):
            paper_gaps.row("nope")

    def test_unknown_heuristic_rejected(self):
        g = paper_example_graph()
        pl = paper_placement()
        with pytest.raises(ValueError, match="nope"):
            optimality_gaps(
                g, pl, paper_assignment(g, pl), heuristics=("nope",)
            )


class TestScorecard:
    def test_render_lists_every_heuristic(self):
        card = gap_scorecard(
            ExperimentContext(), workloads=("paper",), procs=(2,)
        )
        out = card.render()
        assert "Scorecard" in out
        for name in GAP_HEURISTICS:
            assert name in out
        assert "=16" in out and "=7" in out

    def test_cli_gaps_runs_clean(self, capsys):
        assert main(["gaps", "--workloads", "paper"]) == 0
        out = capsys.readouterr().out
        assert "exact" in out and "proved optimal" in out

    def test_cli_gaps_rejects_unknown_heuristic(self, capsys):
        assert main(["gaps", "--heuristics", "bogus"]) == 2
        err = capsys.readouterr().err
        assert "bogus" in err
        for name in GAP_HEURISTICS:
            assert name in err

    def test_cli_gaps_rejects_unknown_workload(self, capsys):
        assert main(["gaps", "--workloads", "nope"]) == 2
        err = capsys.readouterr().err
        assert "nope" in err and "chol15" in err


class TestSweepWiring:
    def test_sweep_accepts_the_new_heuristics(self):
        records = full_sweep(
            ExperimentContext(),
            workloads=("etree15",),
            procs=(2,),
            heuristics=("rcp", "etf", "tree"),
        )
        seen = {r.heuristic for r in records}
        assert seen == {"rcp", "etf", "tree"}

    def test_sweep_rejects_unknown_heuristic_upfront(self):
        with pytest.raises(ValueError, match="bogus"):
            full_sweep(ExperimentContext(), heuristics=("rcp", "bogus"))

    def test_cli_sweep_exits_2_and_lists_choices(self, tmp_path, capsys):
        rc = main([
            "sweep", "--heuristics", "bogus",
            "--out", str(tmp_path / "s.csv"),
        ])
        assert rc == 2
        err = capsys.readouterr().err
        assert "bogus" in err and "rcp" in err and "tree" in err

    def test_workload_error_names_the_choices(self):
        with pytest.raises(KeyError, match="chol15"):
            ExperimentContext().problem("not-a-workload")
