"""Integration tests for the fault-tolerant sweep runtime.

Real worker pools, deterministic harness faults (kill / hang / error via
:class:`HarnessFaultSpec`), checkpoint + resume.  The grid is tiny (one
workload, two (workload, procs) groups) so each supervised sweep costs
well under a second plus pool startup.
"""

import math

import pytest

from repro.experiments import ExperimentContext
from repro.experiments.runtime import (
    HarnessFaultSpec,
    InjectedHarnessError,
    RuntimePolicy,
)
from repro.experiments.sweep import FAILURE_FIELDS, from_csv, full_sweep, to_csv

GRID = dict(
    workloads=("lu-goodwin",),
    procs=(2, 4),
    heuristics=("rcp",),
    fractions=(1.0, 0.5),
)
#: The group the faults target.
TARGET = ("lu-goodwin", 4)

#: Fast-retry policy for fault tests (no timeout pressure).
FAST = RuntimePolicy(backoff_base=0.05, backoff_jitter=0.0)


@pytest.fixture(scope="module")
def plain():
    return full_sweep(ExperimentContext(), **GRID)


class TestPolicy:
    def test_backoff_is_deterministic(self):
        p = RuntimePolicy(seed=7)
        assert p.backoff_s(TARGET, 1) == p.backoff_s(TARGET, 1)

    def test_backoff_grows_exponentially(self):
        p = RuntimePolicy(backoff_base=1.0, backoff_factor=2.0,
                          backoff_jitter=0.0)
        assert p.backoff_s(TARGET, 2) == 2 * p.backoff_s(TARGET, 1)

    def test_jitter_varies_by_group_and_attempt(self):
        p = RuntimePolicy(backoff_base=1.0, backoff_factor=1.0,
                          backoff_jitter=0.5)
        assert p.backoff_s(TARGET, 1) != p.backoff_s(("other", 4), 1)
        assert p.backoff_s(TARGET, 1) != p.backoff_s(TARGET, 2)


class TestHarnessFaultSpec:
    def test_error_fires_on_selected_attempt(self):
        spec = HarnessFaultSpec(error=(TARGET,), on_attempts=(2,))
        spec.apply(TARGET, 1)  # no-op
        with pytest.raises(InjectedHarnessError):
            spec.apply(TARGET, 2)

    def test_empty_on_attempts_means_every_attempt(self):
        spec = HarnessFaultSpec(error=(TARGET,), on_attempts=())
        for attempt in (1, 2, 5):
            with pytest.raises(InjectedHarnessError):
                spec.apply(TARGET, attempt)

    def test_untargeted_group_is_untouched(self):
        HarnessFaultSpec(error=(TARGET,)).apply(("lu-goodwin", 2), 1)


class TestSupervisedFaultFree:
    def test_identical_records_and_csv(self, plain):
        sup = full_sweep(
            ExperimentContext(), jobs=2, runtime=RuntimePolicy(), **GRID
        )
        assert sup == plain
        assert to_csv(sup) == to_csv(plain)

    def test_supervised_single_job(self, plain):
        # Supervision forces the pool path even for jobs=1.
        sup = full_sweep(
            ExperimentContext(), jobs=1, runtime=RuntimePolicy(), **GRID
        )
        assert sup == plain


class TestKill:
    def test_kill_then_recover(self, plain):
        faults = HarnessFaultSpec(kill=(TARGET,), on_attempts=(1,))
        rec = full_sweep(
            ExperimentContext(), jobs=2, runtime=FAST,
            harness_faults=faults, **GRID,
        )
        assert rec == plain  # retried group converges; no failure columns

    def test_kill_every_attempt_records_cell_failures(self, plain):
        faults = HarnessFaultSpec(kill=(TARGET,), on_attempts=())
        policy = RuntimePolicy(max_attempts=2, backoff_base=0.05,
                               backoff_jitter=0.0)
        rec = full_sweep(
            ExperimentContext(), jobs=2, runtime=policy,
            harness_faults=faults, **GRID,
        )
        assert len(rec) == len(plain)
        failed = [r for r in rec if r.status is not None]
        ok = [r for r in rec if r.status is None]
        # every cell of the killed group failed; the bystander group is
        # bit-identical to the plain sweep
        assert {(r.workload, r.procs) for r in failed} == {TARGET}
        assert all(r.status == "crashed" and r.attempts == 2 for r in failed)
        assert all(not r.executable and math.isinf(r.parallel_time)
                   for r in failed)
        assert ok == [r for r in plain if (r.workload, r.procs) != TARGET]

    def test_failure_columns_roundtrip(self, plain):
        faults = HarnessFaultSpec(kill=(TARGET,), on_attempts=())
        policy = RuntimePolicy(max_attempts=1)
        rec = full_sweep(
            ExperimentContext(), jobs=2, runtime=policy,
            harness_faults=faults, **GRID,
        )
        text = to_csv(rec)
        assert text.splitlines()[0].endswith(",".join(FAILURE_FIELDS))
        assert from_csv(text) == rec


class TestHangAndTimeout:
    def test_hang_then_recover(self, plain):
        faults = HarnessFaultSpec(hang=(TARGET,), on_attempts=(1,),
                                  hang_s=10.0)
        policy = RuntimePolicy(timeout=1.5, backoff_base=0.05,
                               backoff_jitter=0.0)
        rec = full_sweep(
            ExperimentContext(), jobs=2, runtime=policy,
            harness_faults=faults, **GRID,
        )
        assert rec == plain

    def test_persistent_hang_times_out(self):
        faults = HarnessFaultSpec(hang=(TARGET,), on_attempts=(),
                                  hang_s=10.0)
        policy = RuntimePolicy(timeout=1.0, max_attempts=1)
        rec = full_sweep(
            ExperimentContext(), jobs=2, runtime=policy,
            harness_faults=faults, **GRID,
        )
        failed = [r for r in rec if r.status is not None]
        assert failed and all(r.status == "timeout" for r in failed)
        assert {(r.workload, r.procs) for r in failed} == {TARGET}


class TestInjectedError:
    def test_retryable_error_exhausts_attempts(self):
        faults = HarnessFaultSpec(error=(TARGET,), on_attempts=())
        policy = RuntimePolicy(max_attempts=2, backoff_base=0.05,
                               backoff_jitter=0.0)
        rec = full_sweep(
            ExperimentContext(), jobs=2, runtime=policy,
            harness_faults=faults, **GRID,
        )
        failed = [r for r in rec if r.status is not None]
        assert failed
        assert all(
            r.status == "error"
            and r.attempts == 2
            and "InjectedHarnessError" in r.error
            for r in failed
        )

    def test_error_then_recover(self, plain):
        faults = HarnessFaultSpec(error=(TARGET,), on_attempts=(1,))
        rec = full_sweep(
            ExperimentContext(), jobs=2, runtime=FAST,
            harness_faults=faults, **GRID,
        )
        assert rec == plain


class TestCheckpointResume:
    def test_interrupted_then_resumed_is_byte_identical(self, plain, tmp_path):
        ckpt = tmp_path / "ckpt"
        faults = HarnessFaultSpec(kill=(TARGET,), on_attempts=())
        first = full_sweep(
            ExperimentContext(), jobs=2, runtime=RuntimePolicy(max_attempts=1),
            harness_faults=faults, checkpoint=str(ckpt), **GRID,
        )
        assert any(r.status is not None for r in first)
        # resume without faults: journalled group replays, killed group
        # re-runs, output matches an uninterrupted sweep byte for byte
        resumed = full_sweep(
            ExperimentContext(), jobs=2, checkpoint=str(ckpt), resume=True,
            **GRID,
        )
        assert resumed == plain
        assert to_csv(resumed) == to_csv(plain)

    def test_fully_journalled_resume_runs_nothing(self, plain, tmp_path):
        from repro.experiments.checkpoint import (
            CheckpointJournal,
            grid_fingerprint,
        )

        ckpt = tmp_path / "ckpt"
        ctx = ExperimentContext()
        full_sweep(ctx, jobs=2, checkpoint=str(ckpt), **GRID)
        fp = grid_fingerprint(
            ctx.spec, GRID["workloads"], GRID["procs"], GRID["heuristics"],
            GRID["fractions"], "rcp", False, False, False, "interpreted",
        )
        assert len(CheckpointJournal(ckpt, fp).completed()) == 2
        again = full_sweep(
            ExperimentContext(), jobs=2, checkpoint=str(ckpt), resume=True,
            **GRID,
        )
        assert again == plain

    def test_resume_requires_checkpoint(self):
        with pytest.raises(ValueError, match="checkpoint"):
            full_sweep(ExperimentContext(), resume=True, **GRID)


class TestShippedProblems:
    def test_unpicklable_problem_fails_fast(self):
        ctx = ExperimentContext()
        ctx.register("bad", lambda: None)  # lambdas cannot be pickled
        with pytest.raises(ValueError, match="not picklable"):
            full_sweep(ctx, jobs=2, workloads=("bad", "lu-goodwin"),
                       procs=(2, 4), heuristics=("rcp",), fractions=(1.0,))

    def test_unused_registration_is_not_shipped(self, plain):
        # An unpicklable problem outside the grid must not poison the
        # sweep: only workloads named in the grid are shipped.
        ctx = ExperimentContext()
        ctx.register("bad", lambda: None)
        assert full_sweep(ctx, jobs=2, **GRID) == plain

    def test_shipped_problems_filters(self):
        ctx = ExperimentContext()
        ctx.register("extra", "any picklable payload")
        assert ctx.shipped_problems(("lu-goodwin",)) == {}
        assert ctx.shipped_problems(("extra",)) == {"extra": "any picklable payload"}
