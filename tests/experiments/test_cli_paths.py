"""CLI coverage for every experiment dispatch path (tiny configs)."""

import pytest

from repro.cli import main


@pytest.mark.parametrize(
    "name",
    ["table2", "table3", "table5"],
)
def test_table_paths(name, capsys):
    assert main([name, "--procs", "4"]) == 0
    out = capsys.readouterr().out
    assert name.replace("table", "Table ") in out


@pytest.mark.parametrize("name", ["table4", "table6", "table7"])
def test_comparison_paths(name, capsys):
    assert main([name, "--app", "lu", "--procs", "4", "8"]) == 0
    out = capsys.readouterr().out
    assert "(lu)" in out


def test_comparison_both_apps(capsys):
    assert main(["table4", "--procs", "4"]) == 0
    out = capsys.readouterr().out
    assert "(cholesky)" in out and "(lu)" in out


@pytest.mark.slow
def test_table8_path(capsys):
    assert main(["table8"]) == 0
    assert "Table 8" in capsys.readouterr().out


def test_sweep_jobs_identical_output(tmp_path, capsys):
    """`sweep --jobs 2` writes byte-identical CSV to the serial run."""
    serial = tmp_path / "serial.csv"
    parallel = tmp_path / "parallel.csv"
    assert main(["sweep", "--procs", "4", "--out", str(serial)]) == 0
    assert main(["sweep", "--procs", "4", "--jobs", "2", "--out", str(parallel)]) == 0
    capsys.readouterr()
    assert serial.read_bytes() == parallel.read_bytes()
