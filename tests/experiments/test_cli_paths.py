"""CLI coverage for every experiment dispatch path (tiny configs)."""

import pytest

from repro.cli import main


@pytest.mark.parametrize(
    "name",
    ["table2", "table3", "table5"],
)
def test_table_paths(name, capsys):
    assert main([name, "--procs", "4"]) == 0
    out = capsys.readouterr().out
    assert name.replace("table", "Table ") in out


@pytest.mark.parametrize("name", ["table4", "table6", "table7"])
def test_comparison_paths(name, capsys):
    assert main([name, "--app", "lu", "--procs", "4", "8"]) == 0
    out = capsys.readouterr().out
    assert "(lu)" in out


def test_comparison_both_apps(capsys):
    assert main(["table4", "--procs", "4"]) == 0
    out = capsys.readouterr().out
    assert "(cholesky)" in out and "(lu)" in out


@pytest.mark.slow
def test_table8_path(capsys):
    assert main(["table8"]) == 0
    assert "Table 8" in capsys.readouterr().out


def test_sweep_jobs_identical_output(tmp_path, capsys):
    """`sweep --jobs 2` writes byte-identical CSV to the serial run."""
    serial = tmp_path / "serial.csv"
    parallel = tmp_path / "parallel.csv"
    assert main(["sweep", "--procs", "4", "--out", str(serial)]) == 0
    assert main(["sweep", "--procs", "4", "--jobs", "2", "--out", str(parallel)]) == 0
    capsys.readouterr()
    assert serial.read_bytes() == parallel.read_bytes()


def test_trace_paper_exports(tmp_path, capsys):
    """`trace` on the paper example writes all three artifacts."""
    m = tmp_path / "metrics.json"
    t = tmp_path / "trace.json"
    r = tmp_path / "report.html"
    assert main([
        "trace", "--metrics", str(m), "--trace-out", str(t),
        "--report", str(r),
    ]) == 0
    out = capsys.readouterr().out
    assert "map_overhead=" in out
    import json

    doc = json.loads(m.read_text())
    assert doc["schema"] == "repro-metrics/1"
    assert json.loads(t.read_text())["traceEvents"]
    assert "<svg" in r.read_text()


def test_trace_summary_only(capsys):
    assert main(["trace"]) == 0
    out = capsys.readouterr().out
    assert "summary only" in out


def test_trace_workload_not_executable(capsys):
    assert main([
        "trace", "--workload", "lu-goodwin", "--procs", "4",
        "--fraction", "0.01",
    ]) == 2
    assert "not executable" in capsys.readouterr().err


def test_sweep_prints_summary_without_obs(tmp_path, capsys):
    """The stderr summary (elapsed + per-status counts) appears even
    with observability off — satellite of the runtime-trace work."""
    out = tmp_path / "sweep.csv"
    assert main(["sweep", "--procs", "4", "--out", str(out)]) == 0
    err = capsys.readouterr().err
    assert "sweep: " in err and " cells (" in err and " ok" in err


def test_sweep_obs_dir_writes_merged_trace(tmp_path, capsys):
    """`sweep --obs-dir` produces runtime shards plus the auto-merged
    Perfetto trace, and the CSV matches an unobserved run's bytes."""
    import json

    plain = tmp_path / "plain.csv"
    observed = tmp_path / "observed.csv"
    obs = tmp_path / "obs"
    assert main(["sweep", "--procs", "4", "--out", str(plain)]) == 0
    assert main([
        "sweep", "--procs", "4", "--out", str(observed),
        "--obs-dir", str(obs), "--jobs", "2",
    ]) == 0
    capsys.readouterr()
    assert observed.read_bytes() == plain.read_bytes()
    assert list(obs.glob("runtime-*.jsonl"))
    doc = json.loads((obs / "sweep_trace.json").read_text())
    assert doc["traceEvents"]


def test_obs_merge_command(tmp_path, capsys):
    """`repro obs merge --obs-dir` re-merges an existing directory."""
    import json

    obs = tmp_path / "obs"
    assert main([
        "sweep", "--procs", "4", "--out", str(tmp_path / "s.csv"),
        "--obs-dir", str(obs),
    ]) == 0
    (obs / "sweep_trace.json").unlink()
    assert main(["obs", "merge", "--obs-dir", str(obs)]) == 0
    out = capsys.readouterr().out
    assert "sweep_trace.json" in out
    assert json.loads((obs / "sweep_trace.json").read_text())["traceEvents"]


def test_obs_requires_action_and_dir(capsys):
    assert main(["obs"]) == 2
    assert main(["obs", "merge"]) == 2
    capsys.readouterr()


def test_sweep_engine_stats_columns(tmp_path, capsys):
    """`sweep --engine-stats` adds the engine columns; off by default."""
    plain = tmp_path / "plain.csv"
    stats = tmp_path / "stats.csv"
    assert main(["sweep", "--procs", "4", "--out", str(plain)]) == 0
    assert main([
        "sweep", "--procs", "4", "--engine", "compiled",
        "--engine-stats", "--out", str(stats),
    ]) == 0
    capsys.readouterr()
    assert "engine_used" not in plain.read_text()
    header = stats.read_text().splitlines()[0]
    assert "engine_used" in header and "fallback_reason" in header
    assert ",compiled," in stats.read_text()


def test_sweep_metrics_columns(tmp_path, capsys):
    """`sweep --metrics` adds telemetry columns; without it the CSV
    stays in the legacy format."""
    plain = tmp_path / "plain.csv"
    inst = tmp_path / "metrics.csv"
    assert main(["sweep", "--procs", "4", "--out", str(plain)]) == 0
    assert main(["sweep", "--procs", "4", "--metrics", "--out", str(inst)]) == 0
    capsys.readouterr()
    assert "map_overhead_frac" not in plain.read_text()
    header = inst.read_text().splitlines()[0]
    assert header.endswith("map_overhead_frac,max_hwm,max_suspq")
