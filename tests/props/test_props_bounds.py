"""Certified-bound and IR-verifier properties against the exact oracle.

A static bound that is ever beaten is not a bound: on every instance
small enough for :mod:`repro.opt.exact` to prove, the certified PT and
MIN_MEM lower bounds of :mod:`repro.analysis.bounds` must sit at or
below the proved optimum.  The bounds are also pure functions of the
graph *structure*: relabeling tasks/objects or renumbering processors
cannot move them, and repeated evaluation is bit-identical.

The same instances exercise the lowered-IR verifier: every shipped
heuristic's lowering must come back SA5xx-clean (the verifier's false
positives would poison the compiled engine's debug path).
"""

import pytest
from hypothesis import assume, given, settings, strategies as st

from repro.analysis import certified_bounds, verify_exec_plan
from repro.core import (
    UNIT_COMM,
    Placement,
    analyze_memory,
    cyclic_placement,
    dts_order,
    etf_schedule,
    gantt,
    mpo_order,
    owner_compute_assignment,
    rcp_order,
    tree_order,
)
from repro.graph import generators as gen
from repro.graph.objects import DataObject
from repro.graph.taskgraph import TaskGraph
from repro.graph.tasks import Task
from repro.machine.simulator import CompiledSchedule
from repro.machine.spec import UNIT_MACHINE
from repro.opt.exact import solve

OBJECTIVES = ("time", "memory")
TOL = {"time": 1e-9, "memory": 0.0}
HEURISTICS = {
    "rcp": rcp_order,
    "mpo": mpo_order,
    "dts": dts_order,
    "tree": tree_order,
}

#: Random-trace instances small enough to prove within the budget.
dag_params = st.tuples(
    st.integers(4, 7),  # accesses
    st.integers(2, 4),  # objects
    st.integers(0, 10_000),  # seed
    st.integers(2, 3),  # processors
)

#: Reduction trees: the elimination-forest side of the memory bounds.
tree_params = st.tuples(
    st.integers(2, 6),  # leaves
    st.integers(2, 3),  # processors
)


def make_dag(ps):
    n, m, seed, p = ps
    g = gen.random_trace(n, m, seed=seed)
    pl = cyclic_placement(g, p)
    return g, pl, owner_compute_assignment(g, pl)


def make_tree(ps):
    leaves, p = ps
    g = gen.reduction_tree(leaves)
    pl = cyclic_placement(g, p)
    return g, pl, owner_compute_assignment(g, pl)


def relabel(g, tmap, omap):
    """Copy ``g`` with renamed tasks/objects (same program order)."""
    h = TaskGraph()
    for o in g.objects():
        h.add_object(DataObject(omap[o.name], o.size))
    for t in g.tasks():
        h.add_task(Task(
            tmap[t.name],
            tuple(omap[r] for r in t.reads),
            tuple(omap[w] for w in t.writes),
            t.weight,
            t.commute,
        ))
    for u, v, objs in g.edges():
        if objs:
            for ob in objs:
                h.add_edge(tmap[u], tmap[v], omap[ob])
        else:
            h.add_edge(tmap[u], tmap[v])
    return h.freeze()


def optimum(g, pl, asg, objective):
    res = solve(g, pl, asg, objective=objective)
    assume(res.proved)
    return res.value


# ----------------------------------------------------------------------
# Soundness: a certified bound never exceeds a proved optimum
# ----------------------------------------------------------------------


@pytest.mark.parametrize("make", [make_dag], ids=["dag"])
@given(ps=dag_params)
def test_bounds_never_beat_the_proved_optima(ps, make):
    g, pl, asg = make(ps)
    bs = certified_bounds(g, pl, asg)
    assert bs.pt.value <= optimum(g, pl, asg, "time") + TOL["time"]
    assert bs.min_mem.value <= optimum(g, pl, asg, "memory")


@given(ps=tree_params)
def test_tree_bounds_never_beat_the_proved_optima(ps):
    g, pl, asg = make_tree(ps)
    bs = certified_bounds(g, pl, asg)
    assert bs.pt.value <= optimum(g, pl, asg, "time") + TOL["time"]
    assert bs.min_mem.value <= optimum(g, pl, asg, "memory")


@given(ps=dag_params)
def test_every_candidate_is_itself_sound(ps):
    # Not just the winner: every member of the candidate portfolio is
    # a valid lower bound on its metric.
    g, pl, asg = make_dag(ps)
    bs = certified_bounds(g, pl, asg)
    opts = {obj: optimum(g, pl, asg, obj) for obj in OBJECTIVES}
    for c in bs.candidates:
        ceiling = opts["time" if c.metric == "pt" else "memory"]
        assert c.value <= ceiling + TOL["time"]


@pytest.mark.parametrize("name", sorted(HEURISTICS))
@given(ps=dag_params)
def test_no_heuristic_schedule_undercuts_a_bound(ps, name):
    # Cheaper than the oracle and runs on every draw: any real
    # schedule's PT/MIN_MEM respects the static floor.
    g, pl, asg = make_dag(ps)
    bs = certified_bounds(g, pl, asg)
    s = HEURISTICS[name](g, pl, asg)
    assert gantt(s, UNIT_COMM).makespan >= bs.pt.value - TOL["time"]
    assert analyze_memory(s).min_mem >= bs.min_mem.value


# ----------------------------------------------------------------------
# Invariance: structure in, structure out
# ----------------------------------------------------------------------


@given(ps=dag_params, seed=st.integers(0, 2**31 - 1))
def test_bounds_invariant_under_relabeling(ps, seed):
    import random

    g, pl, asg = make_dag(ps)
    rng = random.Random(seed)
    tnames = list(g.task_names)
    onames = [o.name for o in g.objects()]
    tperm = rng.sample(tnames, len(tnames))
    operm = rng.sample(onames, len(onames))
    tmap = {a: f"t{i}_{b}" for i, (a, b) in enumerate(zip(tnames, tperm))}
    omap = {a: f"o{i}_{b}" for i, (a, b) in enumerate(zip(onames, operm))}
    h = relabel(g, tmap, omap)
    pl2 = Placement(pl.num_procs, {omap[o]: p for o, p in pl.owner.items()})
    asg2 = {tmap[t]: p for t, p in asg.items()}
    a, b = certified_bounds(g, pl, asg), certified_bounds(h, pl2, asg2)
    assert a.pt.value == b.pt.value
    assert a.min_mem.value == b.min_mem.value


@given(ps=dag_params)
def test_bounds_invariant_under_processor_renumbering(ps):
    g, pl, asg = make_dag(ps)
    p = pl.num_procs
    perm = {q: (q + 1) % p for q in range(p)}  # cyclic shift
    pl2 = Placement(p, {o: perm[q] for o, q in pl.owner.items()})
    asg2 = {t: perm[q] for t, q in asg.items()}
    a, b = certified_bounds(g, pl, asg), certified_bounds(g, pl2, asg2)
    assert a.pt.value == b.pt.value
    assert a.min_mem.value == b.min_mem.value


@given(ps=dag_params)
def test_bounds_deterministic(ps):
    g, pl, asg = make_dag(ps)
    assert certified_bounds(g, pl, asg) == certified_bounds(g, pl, asg)


# ----------------------------------------------------------------------
# The IR verifier is clean on every shipped lowering
# ----------------------------------------------------------------------


@pytest.mark.parametrize("name", sorted(HEURISTICS))
@settings(max_examples=10)
@given(ps=dag_params)
def test_heuristic_lowerings_verify_clean(ps, name):
    g, pl, asg = make_dag(ps)
    cs = CompiledSchedule(HEURISTICS[name](g, pl, asg))
    assert verify_exec_plan(cs, cs.profile.tot, UNIT_MACHINE) == []


@settings(max_examples=10)
@given(ps=dag_params)
def test_etf_lowering_verifies_clean(ps):
    g, pl, _asg = make_dag(ps)
    cs = CompiledSchedule(etf_schedule(g, pl.num_procs, UNIT_COMM))
    assert verify_exec_plan(cs, cs.profile.tot, UNIT_MACHINE) == []


@settings(max_examples=10)
@given(ps=tree_params)
def test_tree_lowerings_verify_clean(ps):
    g, pl, asg = make_tree(ps)
    cs = CompiledSchedule(tree_order(g, pl, asg))
    assert verify_exec_plan(cs, cs.profile.tot, UNIT_MACHINE) == []
