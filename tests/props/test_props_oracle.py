"""Oracle-driven properties: the heuristics against the exact solver.

The branch-and-bound of :mod:`repro.opt.exact` is the ground truth on
instances small enough to prove; these properties pin every heuristic
(and the solver itself) against it:

* no heuristic ever beats a ``PROVED_OPTIMAL`` value;
* the solver's answer is invariant under task/object relabeling and
  processor renumbering;
* exhausting the node budget degrades to ``BEST_FOUND`` — never to a
  wrong ``PROVED_OPTIMAL`` claim;
* capacity handling is sound (feasible at the optimum, provably
  infeasible below it).

Time comparisons carry a 1e-9 slop: the solver prunes with float lower
bounds that associate additions differently from the Gantt evaluation,
so proved makespans are optimal up to ``repro.opt.exact.TIME_EPS``.
The memory objective is integral and compared exactly.
"""

import pytest
from hypothesis import assume, given, settings, strategies as st

from repro.core import (
    UNIT_COMM,
    Placement,
    analyze_memory,
    cyclic_placement,
    dts_order,
    etf_schedule,
    gantt,
    mpo_order,
    owner_compute_assignment,
    rcp_order,
    tree_order,
)
from repro.errors import SchedulingError
from repro.graph import generators as gen
from repro.graph.objects import DataObject
from repro.graph.taskgraph import TaskGraph
from repro.graph.tasks import Task
from repro.opt.exact import (
    BEST_FOUND,
    PROVED_OPTIMAL,
    exact_order,
    solve,
    solve_over_placements,
)

OBJECTIVES = ("time", "memory")
TOL = {"time": 1e-9, "memory": 0.0}
HEURISTICS = {
    "rcp": rcp_order,
    "mpo": mpo_order,
    "dts": dts_order,
    "tree": tree_order,
}

#: Small instances: every one proves within the default budget (the
#: differential campaign measured a median of ~31 B&B nodes here).
params = st.tuples(
    st.integers(4, 7),  # accesses
    st.integers(2, 4),  # objects
    st.integers(0, 10_000),  # seed
    st.integers(2, 3),  # processors
)


def make(ps):
    n, m, seed, p = ps
    g = gen.random_trace(n, m, seed=seed)
    pl = cyclic_placement(g, p)
    return g, pl, owner_compute_assignment(g, pl)


def value_of(schedule, objective):
    if objective == "time":
        return gantt(schedule, UNIT_COMM).makespan
    return float(analyze_memory(schedule).min_mem)


def relabel(g, tmap, omap):
    """Copy ``g`` with renamed tasks/objects (same program order)."""
    h = TaskGraph()
    for o in g.objects():
        h.add_object(DataObject(omap[o.name], o.size))
    for t in g.tasks():
        h.add_task(Task(
            tmap[t.name],
            tuple(omap[r] for r in t.reads),
            tuple(omap[w] for w in t.writes),
            t.weight,
            t.commute,
        ))
    for u, v, objs in g.edges():
        if objs:
            for ob in objs:
                h.add_edge(tmap[u], tmap[v], omap[ob])
        else:
            h.add_edge(tmap[u], tmap[v])
    return h.freeze()


# ----------------------------------------------------------------------
# The oracle bound: nothing beats a proved optimum
# ----------------------------------------------------------------------


@pytest.mark.parametrize("name", sorted(HEURISTICS))
@pytest.mark.parametrize("objective", OBJECTIVES)
@settings(max_examples=15)
@given(ps=params)
def test_heuristic_never_beats_proved_optimum(ps, name, objective):
    g, pl, asg = make(ps)
    res = solve(g, pl, asg, objective=objective)
    assume(res.proved)
    val = value_of(HEURISTICS[name](g, pl, asg), objective)
    assert val >= res.value - TOL[objective]


@pytest.mark.parametrize("objective", OBJECTIVES)
@settings(max_examples=15)
@given(ps=params)
def test_etf_never_beats_optimum_of_its_own_mapping(ps, objective):
    # ETF picks its own placement, so it is only bounded by the exact
    # optimum *of the mapping it chose* — not by the owner-compute one
    # (which it may legitimately beat on time).
    g, pl, _asg = make(ps)
    sched = etf_schedule(g, pl.num_procs, UNIT_COMM)
    res = solve(g, sched.placement, sched.assignment, objective=objective)
    assume(res.proved)
    assert value_of(sched, objective) >= res.value - TOL[objective]


@pytest.mark.parametrize("objective", OBJECTIVES)
@settings(max_examples=15)
@given(ps=params)
def test_incumbent_never_worse_than_any_seed(ps, objective):
    g, pl, asg = make(ps)
    res = solve(g, pl, asg, objective=objective)
    for fn in HEURISTICS.values():
        assert res.value <= value_of(fn(g, pl, asg), objective) + TOL[objective]


# ----------------------------------------------------------------------
# Solver self-consistency
# ----------------------------------------------------------------------


@pytest.mark.parametrize("objective", OBJECTIVES)
@settings(max_examples=15)
@given(ps=params)
def test_small_instances_always_prove(ps, objective):
    g, pl, asg = make(ps)
    assume(g.num_tasks <= 8)
    res = solve(g, pl, asg, objective=objective)
    assert res.status == PROVED_OPTIMAL


@pytest.mark.parametrize("objective", OBJECTIVES)
@settings(max_examples=15)
@given(ps=params)
def test_result_schedule_realizes_reported_value(ps, objective):
    g, pl, asg = make(ps)
    res = solve(g, pl, asg, objective=objective)
    res.schedule.validate()
    assert abs(value_of(res.schedule, objective) - res.value) <= 1e-9


@pytest.mark.parametrize("objective", OBJECTIVES)
@settings(max_examples=15)
@given(ps=params)
def test_lower_bound_never_exceeds_value(ps, objective):
    g, pl, asg = make(ps)
    res = solve(g, pl, asg, objective=objective)
    assert res.lower_bound <= res.value + TOL["time"]


@pytest.mark.parametrize("objective", OBJECTIVES)
@settings(max_examples=10)
@given(ps=params)
def test_solver_is_deterministic(ps, objective):
    g, pl, asg = make(ps)
    a = solve(g, pl, asg, objective=objective)
    b = solve(g, pl, asg, objective=objective)
    assert (a.value, a.nodes, a.status) == (b.value, b.nodes, b.status)


# ----------------------------------------------------------------------
# Invariance under renaming
# ----------------------------------------------------------------------


@pytest.mark.parametrize("objective", OBJECTIVES)
@settings(max_examples=10)
@given(ps=params)
def test_invariant_under_label_permutation(ps, objective):
    g, pl, asg = make(ps)
    res = solve(g, pl, asg, objective=objective)
    assume(res.proved)
    # Reverse-sorted fresh names: a nontrivial bijection on labels.
    tmap = {t: f"q{i}" for i, t in enumerate(sorted(
        (t.name for t in g.tasks()), reverse=True))}
    omap = {o: f"z{i}" for i, o in enumerate(sorted(
        (o.name for o in g.objects()), reverse=True))}
    g2 = relabel(g, tmap, omap)
    pl2 = Placement(pl.num_procs, {
        omap[o]: pl[o] for o in (o.name for o in g.objects())
    })
    asg2 = {tmap[t]: p for t, p in asg.items()}
    res2 = solve(g2, pl2, asg2, objective=objective)
    assert res2.proved
    assert abs(res2.value - res.value) <= TOL["time"]


@pytest.mark.parametrize("objective", OBJECTIVES)
@settings(max_examples=10)
@given(ps=params)
def test_invariant_under_processor_renumbering(ps, objective):
    g, pl, asg = make(ps)
    res = solve(g, pl, asg, objective=objective)
    assume(res.proved)
    p = pl.num_procs
    pl2 = Placement(p, {
        o.name: (pl[o.name] + 1) % p for o in g.objects()
    })
    asg2 = {t: (q + 1) % p for t, q in asg.items()}
    res2 = solve(g, pl2, asg2, objective=objective)
    assert res2.proved
    assert abs(res2.value - res.value) <= TOL["time"]


# ----------------------------------------------------------------------
# Budget exhaustion and capacity soundness
# ----------------------------------------------------------------------


@pytest.mark.parametrize("objective", OBJECTIVES)
@settings(max_examples=15)
@given(ps=params)
def test_budget_exhaustion_never_claims_wrong_optimum(ps, objective):
    g, pl, asg = make(ps)
    full = solve(g, pl, asg, objective=objective)
    assume(full.proved)
    starved = solve(g, pl, asg, objective=objective, node_budget=1)
    assert starved.status in (PROVED_OPTIMAL, BEST_FOUND)
    assert starved.value >= full.value - TOL[objective]
    assert starved.lower_bound <= full.value + TOL["time"]
    if starved.proved:
        # A proof under starvation (seed met the root bound) must agree.
        assert abs(starved.value - full.value) <= TOL["time"]


@settings(max_examples=15)
@given(ps=params)
def test_capacity_at_memory_optimum_is_feasible(ps):
    g, pl, asg = make(ps)
    full = solve(g, pl, asg, objective="memory")
    assume(full.proved)
    opt = int(full.value)
    res = solve(g, pl, asg, objective="memory", capacity=opt)
    assert res.schedule is not None
    assert analyze_memory(res.schedule).min_mem <= opt


@settings(max_examples=15)
@given(ps=params)
def test_capacity_below_memory_optimum_is_proved_infeasible(ps):
    g, pl, asg = make(ps)
    full = solve(g, pl, asg, objective="memory")
    assume(full.proved)
    opt = int(full.value)
    res = solve(g, pl, asg, objective="memory", capacity=opt - 1)
    if res.proved:
        assert res.schedule is None
        with pytest.raises(SchedulingError):
            exact_order(g, pl, asg, objective="memory", capacity=opt - 1)


# ----------------------------------------------------------------------
# Placement enumeration
# ----------------------------------------------------------------------


@pytest.mark.parametrize("objective", OBJECTIVES)
@settings(max_examples=10)
@given(ps=params)
def test_solve_over_placements_takes_the_best_case(ps, objective):
    g, pl, asg = make(ps)
    p = pl.num_procs
    shifted = Placement(p, {
        o.name: (pl[o.name] + 1) % p for o in g.objects()
    })
    cases = [(pl, asg), (shifted, owner_compute_assignment(g, shifted))]
    best = solve_over_placements(g, cases, objective=objective)
    singles = [
        solve(g, c_pl, c_asg, objective=objective) for c_pl, c_asg in cases
    ]
    assert best.value <= min(s.value for s in singles) + TOL["time"]
    if all(s.proved for s in singles):
        assert best.proved
