"""Property tests of Theorem 1: deadlock freedom and data consistency.

The simulator *verifies* data consistency internally (version checks on
every put, stale-copy checks on every arrival, capacity assertion at the
end); these properties drive it across random graphs, heuristics and
capacities and assert it always completes.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import (
    analyze_memory,
    cyclic_placement,
    dts_order,
    gantt,
    mpo_order,
    owner_compute_assignment,
    rcp_order,
)
from repro.graph import generators as gen
from repro.machine import UNIT_MACHINE, simulate
from repro.machine.spec import MachineSpec

params = st.tuples(
    st.integers(10, 45),
    st.integers(3, 9),
    st.integers(0, 10_000),
    st.integers(2, 5),
)

ORDERINGS = (rcp_order, mpo_order, dts_order)


def make(ps):
    n, m, seed, p = ps
    g = gen.random_trace(n, m, seed=seed)
    pl = cyclic_placement(g, p)
    asg = owner_compute_assignment(g, pl)
    return g, pl, asg


@settings(max_examples=25, deadline=None)
@given(params, st.sampled_from(ORDERINGS), st.floats(0.0, 1.0))
def test_theorem1_no_deadlock_at_any_feasible_capacity(ps, order_fn, frac):
    """Any capacity >= MIN_MEM executes to completion, within capacity,
    with consistent data (internal checks)."""
    g, pl, asg = make(ps)
    s = order_fn(g, pl, asg)
    prof = analyze_memory(s)
    cap = int(prof.min_mem + frac * (prof.tot - prof.min_mem))
    res = simulate(s, spec=UNIT_MACHINE, capacity=cap, profile=prof)
    assert res.peak_memory <= cap
    assert res.parallel_time > 0


@settings(max_examples=25, deadline=None)
@given(params)
def test_baseline_matches_gantt_prediction(ps):
    """Without memory management the simulator equals the macro-dataflow
    model on the unit machine."""
    g, pl, asg = make(ps)
    s = rcp_order(g, pl, asg)
    res = simulate(s, spec=UNIT_MACHINE, memory_managed=False)
    assert res.task_finish_time == pytest.approx(gantt(s).makespan)


@settings(max_examples=20, deadline=None)
@given(params)
def test_memory_management_never_faster_than_baseline(ps):
    g, pl, asg = make(ps)
    s = mpo_order(g, pl, asg)
    prof = analyze_memory(s)
    base = simulate(s, spec=UNIT_MACHINE, memory_managed=False, profile=prof)
    tight = simulate(s, spec=UNIT_MACHINE, capacity=prof.min_mem, profile=prof)
    assert tight.parallel_time >= base.parallel_time - 1e-9


@settings(max_examples=20, deadline=None)
@given(params, st.floats(0.0, 4.0))
def test_overheads_scale_boundedly(ps, factor):
    """Scaling all memory-management overheads up monotonically
    increases the *charged protocol work*; the end-to-end time may show
    small discrete-event anomalies (shifted RA consumption points) but
    never improves materially."""
    g, pl, asg = make(ps)
    s = mpo_order(g, pl, asg)
    prof = analyze_memory(s)
    base_spec = MachineSpec(
        flop_rate=1.0, put_latency=0.05, byte_time=0.0, send_overhead=0.0,
        map_overhead=0.1, alloc_cost=0.01, free_cost=0.01,
        package_overhead=0.05, address_cost=0.01, ra_cost=0.02,
    )
    r1 = simulate(s, spec=base_spec, capacity=prof.min_mem, profile=prof)
    r2 = simulate(
        s, spec=base_spec.scaled_overheads(1.0 + factor),
        capacity=prof.min_mem, profile=prof,
    )
    oh1 = sum(st.overhead_time for st in r1.stats)
    oh2 = sum(st.overhead_time for st in r2.stats)
    assert oh2 >= oh1 * (1.0 + factor) - 1e-9 or oh2 >= oh1 - 1e-9
    assert r2.parallel_time >= 0.9 * r1.parallel_time


@settings(max_examples=15, deadline=None)
@given(st.integers(2, 10), st.integers(0, 500), st.integers(2, 4))
def test_commuting_reduction_consistent(leaves, seed, p):
    """Commuting groups execute in schedule-dependent orders but the
    timed execution always completes (the numeric equivalence is covered
    by the sparse Cholesky tests)."""
    g = gen.reduction_tree(leaves)
    pl = cyclic_placement(g, p)
    asg = owner_compute_assignment(g, pl)
    for fn in ORDERINGS:
        s = fn(g, pl, asg)
        prof = analyze_memory(s)
        res = simulate(s, spec=UNIT_MACHINE, capacity=prof.min_mem, profile=prof)
        assert res.parallel_time > 0
