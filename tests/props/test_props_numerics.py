"""Property tests of the numeric factorization/solve pipelines.

Random matrices, random block sizes, random schedules — the factors and
solutions must always match dense references.  These are the strongest
end-to-end checks in the suite: they exercise builder semantics
(commuting groups, RMW chains, sources), scheduling validity, and the
kernels together.
"""

import numpy as np
import scipy.sparse as sp
from hypothesis import given, settings, strategies as st

from repro.core import dts_order, mpo_order, rcp_order
from repro.rapid.executor import execute_schedule, execute_serial
from repro.sparse.cholesky import build_cholesky
from repro.sparse.lu import build_lu
from repro.sparse.solve import cholesky_solve, lu_solve

ORDERINGS = (rcp_order, mpo_order, dts_order)


def random_spd(n: int, seed: int) -> sp.csr_matrix:
    rng = np.random.default_rng(seed)
    mask = rng.random((n, n)) < 0.25
    b = np.where(mask, rng.uniform(-1, 1, (n, n)), 0.0)
    a = b + b.T
    np.fill_diagonal(a, np.abs(a).sum(axis=1) + 1.0)
    return sp.csr_matrix(a)


def random_unsym(n: int, seed: int) -> sp.csr_matrix:
    rng = np.random.default_rng(seed)
    mask = rng.random((n, n)) < 0.3
    a = np.where(mask, rng.uniform(-2, 2, (n, n)), 0.0)
    np.fill_diagonal(a, rng.uniform(0.5, 1.5, n) * rng.choice([-1, 1], n))
    return sp.csr_matrix(a)


@settings(max_examples=15, deadline=None)
@given(st.integers(6, 24), st.integers(2, 7), st.integers(0, 10_000))
def test_cholesky_factor_always_exact(n, w, seed):
    prob = build_cholesky(random_spd(n, seed), block_size=w)
    store = prob.initial_store()
    execute_serial(prob.graph, store)
    assert prob.factor_error(store) < 1e-9


@settings(max_examples=10, deadline=None)
@given(st.integers(8, 20), st.integers(2, 6), st.integers(0, 10_000), st.integers(2, 4))
def test_cholesky_under_any_heuristic(n, w, seed, p):
    prob = build_cholesky(random_spd(n, seed), block_size=w)
    pl = prob.placement(p)
    asg = prob.assignment(pl)
    fn = ORDERINGS[seed % 3]
    s = fn(prob.graph, pl, asg)
    store = prob.initial_store()
    execute_schedule(s, store)
    assert prob.factor_error(store) < 1e-9


@settings(max_examples=15, deadline=None)
@given(st.integers(6, 22), st.integers(2, 7), st.integers(0, 10_000))
def test_lu_factor_always_exact(n, w, seed):
    prob = build_lu(random_unsym(n, seed), block_size=w, ordering="natural")
    store = prob.initial_store()
    execute_serial(prob.graph, store)
    assert prob.factor_error(store) < 1e-8


@settings(max_examples=10, deadline=None)
@given(st.integers(8, 18), st.integers(2, 6), st.integers(0, 10_000), st.integers(2, 4))
def test_lu_under_any_heuristic(n, w, seed, p):
    prob = build_lu(random_unsym(n, seed), block_size=w, ordering="natural")
    pl = prob.placement(p)
    asg = prob.assignment(pl)
    fn = ORDERINGS[seed % 3]
    s = fn(prob.graph, pl, asg)
    store = prob.initial_store()
    execute_schedule(s, store)
    assert prob.factor_error(store) < 1e-8


@settings(max_examples=10, deadline=None)
@given(st.integers(8, 18), st.integers(0, 10_000))
def test_solvers_match_dense(n, seed):
    rng = np.random.default_rng(seed)
    b = rng.normal(size=n)
    chol = build_cholesky(random_spd(n, seed), block_size=4)
    x = cholesky_solve(chol, b)
    assert np.allclose(x, np.linalg.solve(chol.a.toarray(), b), atol=1e-8)
    lu = build_lu(random_unsym(n, seed + 1), block_size=4, ordering="natural")
    y = lu_solve(lu, b)
    assert np.allclose(y, np.linalg.solve(lu.a.toarray(), b), atol=1e-6)
