"""Hypothesis profiles for the property suites.

``repro-fixed`` (the default) is derandomized: every run draws the same
examples, so CI failures reproduce locally byte-for-byte.  Select the
exploratory profile with ``HYPOTHESIS_PROFILE=repro-dev`` to let
hypothesis hunt with fresh randomness.
"""

import os

from hypothesis import HealthCheck, settings

settings.register_profile(
    "repro-fixed",
    derandomize=True,
    deadline=None,
    max_examples=25,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.register_profile(
    "repro-dev",
    deadline=None,
    max_examples=50,
)
settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "repro-fixed"))
