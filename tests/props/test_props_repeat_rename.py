"""Property tests for graph repetition and renaming transformations."""

from hypothesis import given, settings, strategies as st

from repro.core import analyze_memory, cyclic_placement, mpo_order, owner_compute_assignment
from repro.graph import generators as gen
from repro.graph.analysis import is_topological
from repro.graph.builder import is_source_task
from repro.graph.renaming import rename_versions
from repro.graph.repeat import repeat_graph, repeat_schedule

params = st.tuples(
    st.integers(8, 30),
    st.integers(3, 8),
    st.integers(0, 10_000),
)


def real_tasks(g):
    return [t for t in g.task_names if not is_source_task(t)]


@settings(max_examples=25, deadline=None)
@given(params, st.integers(1, 4))
def test_repeat_task_count_and_dag(ps, n):
    num, m, seed = ps
    g = gen.random_trace(num, m, seed=seed)
    rg = repeat_graph(g, n)
    assert len(real_tasks(rg)) == n * len(real_tasks(g))
    assert rg.num_objects == g.num_objects
    assert is_topological(rg, rg.topological_order())


@settings(max_examples=20, deadline=None)
@given(params, st.integers(2, 4), st.integers(2, 4))
def test_repeat_min_mem_stable(ps, n, p):
    """Unrolling an iteration does not inflate MIN_MEM (volatile
    lifetimes recycle across iteration boundaries)."""
    num, m, seed = ps
    g = gen.random_trace(num, m, seed=seed)
    pl = cyclic_placement(g, p)
    asg = owner_compute_assignment(g, pl)
    s1 = mpo_order(g, pl, asg)
    m2 = analyze_memory(repeat_schedule(s1, 2)).min_mem
    mn = analyze_memory(repeat_schedule(s1, n)).min_mem
    assert mn == m2


@settings(max_examples=25, deadline=None)
@given(params, st.integers(1, 3))
def test_rename_is_dag_with_duplicated_objects(ps, k):
    num, m, seed = ps
    g = gen.random_trace(num, m, seed=seed)
    r = rename_versions(g, buffers=k)
    assert is_topological(r, r.topological_order())
    assert r.num_objects >= g.num_objects
    if k == 1:
        assert r.num_objects == g.num_objects


@settings(max_examples=25, deadline=None)
@given(params)
def test_rename_preserves_real_task_set(ps):
    num, m, seed = ps
    g = gen.random_trace(num, m, seed=seed)
    r = rename_versions(g, buffers=2)
    assert sorted(real_tasks(r)) == sorted(real_tasks(g))
    # weights preserved
    for t in real_tasks(g):
        assert r.task(t).weight == g.task(t).weight
