"""Property tests for the scheduling heuristics and the memory model."""

from hypothesis import given, settings, strategies as st

from repro.core import (
    analyze_memory,
    cyclic_placement,
    dts_order,
    gantt,
    mpo_order,
    owner_compute_assignment,
    plan_maps,
    rcp_order,
)
from repro.core.dts import dts_space_bound
from repro.errors import NonExecutableScheduleError
from repro.graph import generators as gen

params = st.tuples(
    st.integers(10, 50),  # tasks
    st.integers(3, 10),  # objects
    st.integers(0, 10_000),  # seed
    st.integers(2, 5),  # processors
)

ORDERINGS = (rcp_order, mpo_order, dts_order)


def make(params):
    n, m, seed, p = params
    g = gen.random_trace(n, m, seed=seed)
    pl = cyclic_placement(g, p)
    asg = owner_compute_assignment(g, pl)
    return g, pl, asg


@settings(max_examples=30, deadline=None)
@given(params)
def test_all_heuristics_produce_valid_schedules(ps):
    g, pl, asg = make(ps)
    for fn in ORDERINGS:
        s = fn(g, pl, asg)
        s.validate()
        assert gantt(s).makespan > 0  # raises on precedence conflicts


@settings(max_examples=30, deadline=None)
@given(params)
def test_memory_model_invariants(ps):
    """perm <= MIN_MEM <= TOT <= S1 * p (loose); usage sane."""
    g, pl, asg = make(ps)
    for fn in ORDERINGS:
        prof = analyze_memory(fn(g, pl, asg))
        for pp in prof.procs:
            assert pp.perm_bytes <= pp.min_mem <= pp.tot
        assert prof.min_mem <= prof.tot
        # every processor's permanent + volatile <= S1 (objects exist once
        # as permanent, at most once more as a volatile copy).
        assert prof.tot <= 2 * prof.s1


@settings(max_examples=30, deadline=None)
@given(params)
def test_theorem2_dts_bound(ps):
    """Theorem 2: DTS schedules run in perm + h volatile space."""
    g, pl, asg = make(ps)
    s = dts_order(g, pl, asg)
    assert analyze_memory(s).min_mem <= dts_space_bound(g, pl, asg)


@settings(max_examples=30, deadline=None)
@given(params)
def test_map_planner_matches_definition6(ps):
    """plan_maps succeeds exactly when capacity >= MIN_MEM."""
    g, pl, asg = make(ps)
    s = mpo_order(g, pl, asg)
    prof = analyze_memory(s)
    plan = plan_maps(s, prof.min_mem, prof)
    assert plan.avg_maps >= 1.0
    if prof.min_mem > max(pp.perm_bytes for pp in prof.procs):
        try:
            plan_maps(s, prof.min_mem - 1, prof)
            assert False, "expected NonExecutableScheduleError"
        except NonExecutableScheduleError:
            pass


@settings(max_examples=25, deadline=None)
@given(params, st.floats(0.0, 1.0))
def test_map_plan_respects_capacity_everywhere(ps, frac):
    """At any capacity in [MIN_MEM, TOT], walking the plan stays within
    budget and allocates each volatile exactly once."""
    g, pl, asg = make(ps)
    s = rcp_order(g, pl, asg)
    prof = analyze_memory(s)
    cap = int(prof.min_mem + frac * (prof.tot - prof.min_mem))
    plan = plan_maps(s, cap, prof)
    for q, pts in enumerate(plan.points):
        used = prof.procs[q].perm_bytes
        allocated = set()
        for mp in pts:
            for o in mp.frees:
                used -= g.object(o).size
                allocated.discard(o)
            for o in mp.allocs:
                assert o not in allocated  # allocated once
                allocated.add(o)
                used += g.object(o).size
            assert used <= cap
        assert sorted(
            o for mp in pts for o in mp.allocs
        ) == sorted(set(prof.procs[q].span))


@settings(max_examples=25, deadline=None)
@given(params)
def test_maps_monotone_in_capacity(ps):
    """More memory never needs more MAPs."""
    g, pl, asg = make(ps)
    s = rcp_order(g, pl, asg)
    prof = analyze_memory(s)
    caps = sorted({prof.min_mem, (prof.min_mem + prof.tot) // 2, prof.tot})
    counts = [plan_maps(s, c, prof).avg_maps for c in caps]
    assert counts == sorted(counts, reverse=True)
