"""Model-based property tests of the memory allocators."""

from hypothesis import given, settings, strategies as st

from repro.errors import MemoryError_
from repro.machine import FreeListAllocator, ObjectAllocator

#: A random program of alloc/free operations: (op, name index, size).
ops = st.lists(
    st.tuples(st.booleans(), st.integers(0, 9), st.integers(0, 40)),
    min_size=1,
    max_size=60,
)


@settings(max_examples=60, deadline=None)
@given(ops, st.integers(10, 200))
def test_object_allocator_model(program, capacity):
    """used == sum of live sizes, never exceeds capacity, peak is max."""
    a = ObjectAllocator(capacity)
    live: dict[str, int] = {}
    peak = 0
    for is_alloc, idx, size in program:
        name = f"o{idx}"
        if is_alloc:
            try:
                a.alloc(name, size)
            except MemoryError_:
                # must be a double alloc or capacity overflow
                assert name in live or sum(live.values()) + size > capacity
            else:
                assert name not in live
                assert sum(live.values()) + size <= capacity
                live[name] = size
        else:
            try:
                freed = a.free(name)
            except MemoryError_:
                assert name not in live
            else:
                assert freed == live.pop(name)
        peak = max(peak, sum(live.values()))
        assert a.used == sum(live.values())
    assert a.peak == peak


@settings(max_examples=60, deadline=None)
@given(ops, st.integers(10, 200))
def test_freelist_blocks_never_overlap(program, capacity):
    """Live blocks are disjoint; used+free == capacity; coalescing keeps
    the free list consistent."""
    a = FreeListAllocator(capacity)
    live: dict[str, tuple[int, int]] = {}
    for is_alloc, idx, size in program:
        name = f"o{idx}"
        if is_alloc:
            try:
                start = a.alloc(name, size)
            except MemoryError_:
                pass
            else:
                if size > 0:
                    for s2, l2 in live.values():
                        assert start + size <= s2 or s2 + l2 <= start
                    live[name] = (start, size)
        else:
            try:
                a.free(name)
            except MemoryError_:
                assert name not in live
            else:
                live.pop(name, None)
        assert a.used == sum(l for _s, l in live.values())
        assert a.used + a.free_bytes == capacity
        assert a.largest_free_extent <= a.free_bytes


@settings(max_examples=40, deadline=None)
@given(st.lists(st.integers(1, 20), min_size=1, max_size=20), st.integers(50, 400))
def test_freelist_full_free_restores_one_extent(sizes, capacity):
    """Allocating then freeing everything coalesces back to one extent."""
    a = FreeListAllocator(capacity)
    done = []
    for i, s in enumerate(sizes):
        try:
            a.alloc(f"b{i}", s)
            done.append(f"b{i}")
        except MemoryError_:
            break
    for name in done:
        a.free(name)
    assert a.used == 0
    assert a.largest_free_extent == capacity
