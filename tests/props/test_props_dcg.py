"""Property tests of the DCG construction (section 4.2 invariants)."""

from hypothesis import given, settings, strategies as st

from repro.core.dcg import build_dcg, slice_volatile_space, task_association
from repro.core import cyclic_placement, owner_compute_assignment, dts_order, analyze_memory
from repro.core.dts import dts_space_bound
from repro.graph import generators as gen
from repro.graph.builder import is_source_task

params = st.tuples(
    st.integers(10, 50),
    st.integers(3, 10),
    st.integers(0, 10_000),
)


@settings(max_examples=30, deadline=None)
@given(params)
def test_every_task_in_exactly_one_slice(ps):
    n, m, seed = ps
    g = gen.random_trace(n, m, seed=seed)
    dcg = build_dcg(g)
    seen: dict[str, int] = {}
    for s, tasks in enumerate(dcg.comp_tasks):
        for t in tasks:
            assert t not in seen
            seen[t] = s
    assert set(seen) == set(g.task_names)


@settings(max_examples=30, deadline=None)
@given(params)
def test_association_nodes_share_component(ps):
    """All of a task's associated data nodes are in one SCC (the doubly
    directed edge rule)."""
    n, m, seed = ps
    g = gen.random_trace(n, m, seed=seed)
    dcg = build_dcg(g)
    for t in g.task_names:
        assoc = task_association(g, t)
        comps = {dcg.component[o] for o in assoc if o in dcg.component}
        assert len(comps) <= 1


@settings(max_examples=30, deadline=None)
@given(params)
def test_slice_order_respects_dependences(ps):
    """If a dependence edge connects tasks of different slices, the
    source's slice comes first (the topological slice order)."""
    n, m, seed = ps
    g = gen.random_trace(n, m, seed=seed)
    dcg = build_dcg(g)
    slice_of = dcg.slice_of()
    for u, v, _o in g.edges():
        if is_source_task(u) or is_source_task(v):
            continue
        assert slice_of[u] <= slice_of[v]


@settings(max_examples=25, deadline=None)
@given(params, st.integers(2, 5))
def test_h_bounds_actual_dts_volatile_peak(ps, p):
    """Definition 7's H(R, L) upper-bounds the volatile bytes any
    processor holds while executing a DTS schedule."""
    n, m, seed = ps
    g = gen.random_trace(n, m, seed=seed)
    pl = cyclic_placement(g, p)
    asg = owner_compute_assignment(g, pl)
    dcg = build_dcg(g)
    h = max(slice_volatile_space(dcg, pl, asg), default=0)
    sched = dts_order(g, pl, asg, dcg=dcg)
    prof = analyze_memory(sched)
    for pp in prof.procs:
        vola_peak = max(
            (req - pp.perm_bytes for req in pp.mem_req), default=0
        )
        assert vola_peak <= h


@settings(max_examples=25, deadline=None)
@given(params, st.integers(2, 5))
def test_bound_monotone_in_procs(ps, p):
    """More processors never increase the Theorem-2 bound beyond the
    single-processor data footprint."""
    n, m, seed = ps
    g = gen.random_trace(n, m, seed=seed)
    pl = cyclic_placement(g, p)
    asg = owner_compute_assignment(g, pl)
    assert dts_space_bound(g, pl, asg) <= 2 * g.total_data()
