"""Property tests for the graph builder and analyses."""

from hypothesis import given, settings, strategies as st

from repro.graph import generators as gen
from repro.graph.analysis import b_levels, depth, is_topological, t_levels

graph_params = st.tuples(
    st.integers(5, 60),  # tasks
    st.integers(2, 12),  # objects
    st.integers(0, 10_000),  # seed
)


@settings(max_examples=40, deadline=None)
@given(graph_params)
def test_random_trace_is_topological_dag(params):
    """The builder always produces a DAG whose trace order is valid."""
    n, m, seed = params
    g = gen.random_trace(n, m, seed=seed)
    assert is_topological(g, g.topological_order())
    # Among real (non-source) tasks, dependencies only ever point
    # forward in the trace.  (Implicit source tasks are registered
    # lazily, right after their first reader, so the raw insertion order
    # is not topological for them.)
    from repro.graph import is_source_task

    pos = {t: i for i, t in enumerate(g.task_names)}
    for u, v, _ in g.edges():
        if not is_source_task(u) and not is_source_task(v):
            assert pos[u] < pos[v]


@settings(max_examples=40, deadline=None)
@given(graph_params)
def test_every_read_has_producer(params):
    n, m, seed = params
    g = gen.random_trace(n, m, seed=seed)
    produced = {o for t in g.tasks() for o in t.writes}
    for t in g.tasks():
        for o in t.reads:
            assert o in produced


@settings(max_examples=40, deadline=None)
@given(graph_params)
def test_level_identities(params):
    """blevel(t) + tlevel(t) <= critical path; entry tasks have tlevel 0."""
    n, m, seed = params
    g = gen.random_trace(n, m, seed=seed)
    bl = b_levels(g)
    tl = t_levels(g)
    cp = max(bl.values())
    for t in g.tasks():
        assert tl[t.name] + bl[t.name] <= cp + 1e-9
    for e in g.entry_tasks():
        assert tl[e] == 0.0


@settings(max_examples=40, deadline=None)
@given(graph_params)
def test_depth_bounds(params):
    n, m, seed = params
    g = gen.random_trace(n, m, seed=seed)
    d = depth(g)
    assert 1 <= d <= g.num_tasks


@settings(max_examples=30, deadline=None)
@given(st.integers(1, 16), st.integers(0, 1000))
def test_reduction_tree_group_size(leaves, seed):
    g = gen.reduction_tree(leaves)
    groups = g.commute_groups()
    assert len(groups["acc-sum"]) == leaves
    # no edges among members
    members = set(groups["acc-sum"])
    for u, v, _ in g.edges():
        assert not (u in members and v in members)
