"""Static verdict vs dynamic execution: the differential contract.

* Clean seeded plans: statically clean AND the checked run is clean.
* The buggy-planner overwrite demo: flagged statically with the same
  ``P0 -> P1 -> P0`` cycle the dynamic deadlock witness shows.
* Timing faults never change the static verdict (they do not touch the
  plan), matching the golden fault matrix.
* Hypothesis property: on seeded graphs from ``tests/conftest.py`` the
  static deadlock verdict matches the simulator — a statically clean
  plan simulates to completion at the analyzed capacity.
"""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.analysis import INVARIANT_RULES, analyze_schedule
from repro.analysis.harness import analyze_batch, analyze_overwrite_demo
from repro.conformance import fault_preset
from repro.conformance.check import check_batch, overwrite_demo
from repro.conformance.invariants import INVARIANTS
from repro.machine.simulator import CompiledSchedule, Simulator
from repro.machine.spec import UNIT_MACHINE
from repro.rapid.inspector import order_with


def test_clean_batch_agrees_with_checked_runs():
    static = analyze_batch(3, graphs=3)
    dynamic = check_batch(3, graphs=3)
    assert len(static) == len(dynamic) > 0
    for s, d in zip(static, dynamic):
        assert s.label == d.label
        assert s.capacity == d.capacity  # same knob, same resolution
        assert s.ok, s.render()
        assert d.ok, d.summary()


def test_overwrite_demo_static_matches_dynamic():
    static = analyze_overwrite_demo()
    dynamic = overwrite_demo()
    assert not static.ok and not dynamic.ok
    # Same protocol verdict: the slot overwrite and the resulting
    # deadlock, with a textually identical cycle line.
    [deadlock] = [d for d in static.errors if d.rule == "SA301"]
    cycle_line = [ln for ln in deadlock.witness.splitlines()
                  if ln.strip().startswith("cycle:")][0].strip()
    assert cycle_line == "cycle: P0 -> P1 -> P0"
    assert cycle_line in dynamic.deadlock
    # The dynamic violations carry the static rule codes.
    assert {v.rule for v in dynamic.violations} == {"SA302"}
    assert {d.rule for d in static.errors} == {"SA301", "SA302"}


@pytest.mark.parametrize("fault", ["slow", "delay", "jitter", "consume"])
def test_timing_faults_keep_static_verdict(fault):
    """Timing faults do not touch the plan: the static twin of a faulted
    batch is the unfaulted batch, report for report."""
    plain = analyze_batch(5, graphs=2)
    faulted = analyze_batch(5, graphs=2, faults=fault_preset(fault))
    assert [r.summary() for r in plain] == [r.summary() for r in faulted]
    assert all(r.ok for r in faulted)


def test_tighten_fault_shifts_capacity_only():
    """The tighten knob pins the capacity to MIN_MEM; the analysis stays
    clean of errors (the SA103 headroom advisory may appear)."""
    reports = analyze_batch(5, graphs=2, faults=fault_preset("tighten"))
    assert all(r.ok for r in reports)


def test_invariant_rule_bridge_is_total():
    """Every dynamic invariant maps to a static rule and vice versa the
    codes exist in the catalogue."""
    assert set(INVARIANT_RULES) == set(INVARIANTS)


@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.function_scoped_fixture])
@given(
    seed=st.integers(0, 10_000),
    procs=st.integers(2, 4),
    heuristic=st.sampled_from(("rcp", "mpo", "dts")),
    frac=st.floats(0.0, 1.0),
)
def test_static_deadlock_verdict_matches_simulator(
    seeded_case, seed, procs, heuristic, frac
):
    """Statically clean => the simulator completes at that capacity
    (no DeadlockError, no capacity abort)."""
    case = seeded_case(seed=seed, procs=procs)
    s = order_with(heuristic, case.graph, case.placement, case.assignment)
    report = analyze_schedule(s, fraction=frac)
    assert report.ok, report.render()
    compiled = CompiledSchedule(s)
    res = Simulator(
        spec=UNIT_MACHINE, capacity=report.capacity, compiled=compiled
    ).run()
    assert res.parallel_time > 0
