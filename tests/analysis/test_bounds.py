"""Certified static lower bounds (`repro.analysis.bounds`).

The acceptance anchors: on the paper example and `etree15` the static
PT/MIN_MEM bounds equal the branch-and-bound solver's proved optima
(gap 0), the pure-Python and numpy query paths agree exactly, and the
SA4xx pass emits the advisory on clean schedules and hard errors only
on corrupt reported numbers.
"""

import types

import pytest

import repro.analysis.bounds as bounds_mod
from repro.analysis import (
    analyze_schedule,
    bounds_pass,
    certified_bounds,
    memory_bounds,
    schedule_bounds,
    time_bounds,
)
from repro.core.liveness import analyze_memory
from repro.core.schedule import CommModel, UNIT_COMM, gantt
from repro.experiments import ExperimentContext
from repro.graph.paper_example import (
    paper_assignment,
    paper_example_graph,
    paper_placement,
    schedule_b,
    schedule_c,
)


@pytest.fixture(scope="module")
def ctx():
    return ExperimentContext()


@pytest.fixture(scope="module")
def paper_bounds():
    s = schedule_c()
    return certified_bounds(s.graph, s.placement, s.assignment)


class TestPaperOptima:
    """Gap 0 against the PR 9 proved optima (16.0 / 7)."""

    def test_pt_bound_equals_the_proved_optimum(self, paper_bounds):
        assert paper_bounds.pt.value == pytest.approx(16.0)

    def test_mem_bound_equals_the_proved_optimum(self, paper_bounds):
        assert paper_bounds.min_mem.value == pytest.approx(7.0)

    def test_bounds_carry_certificates(self, paper_bounds):
        assert paper_bounds.pt.method == "processor-window"
        assert paper_bounds.min_mem.method == "residency-hold"
        assert "P1" in paper_bounds.pt.certificate
        text = str(paper_bounds.min_mem)
        assert text.startswith("min_mem >= 7 [residency-hold]")
        described = paper_bounds.describe()
        assert "certified:" in described and "candidate:" in described

    def test_every_candidate_is_dominated_by_the_certified_bound(
        self, paper_bounds
    ):
        for c in paper_bounds.candidates:
            best = (
                paper_bounds.pt if c.metric == "pt" else paper_bounds.min_mem
            )
            assert c.value <= best.value + 1e-12


class TestEtreeOptima:
    """etree15 proved MIN_MEM optima: 8224 (P=2) and 4328 (P=4)."""

    @pytest.mark.parametrize("p,opt", [(2, 8224), (4, 4328)])
    def test_mem_bound_matches_the_proved_optimum(self, ctx, p, opt):
        s = ctx.schedule("etree15", p, "rcp")
        bs = certified_bounds(s.graph, s.placement, s.assignment)
        assert bs.min_mem.value == pytest.approx(opt)

    def test_bounds_cached_per_context_cell(self, ctx):
        a = ctx.bounds_for("etree15", 2, "rcp")
        b = ctx.bounds_for("etree15", 2, "rcp")
        assert a is b


class TestSoundness:
    """A certified bound is never beaten by any real schedule."""

    @pytest.mark.parametrize("sched_fn", [schedule_b, schedule_c])
    def test_paper_schedules_respect_both_bounds(self, sched_fn):
        s = sched_fn()
        bs = certified_bounds(s.graph, s.placement, s.assignment)
        assert gantt(s).makespan >= bs.pt.value - 1e-9
        assert analyze_memory(s).min_mem >= bs.min_mem.value - 1e-9

    @pytest.mark.parametrize("h", ["rcp", "mpo", "dts", "tree"])
    def test_etree_heuristics_respect_both_bounds(self, ctx, h):
        s = ctx.schedule("etree15", 2, h)
        comm = ctx.spec.comm_model()
        bs = schedule_bounds(s, comm=comm)
        assert gantt(s, comm).makespan >= bs.pt.value - 1e-9
        assert analyze_memory(s).min_mem >= bs.min_mem.value - 1e-9

    def test_nonunit_comm_raises_the_time_bound(self):
        s = schedule_c()
        slow = CommModel(latency=5.0, byte_time=1.0)
        unit = certified_bounds(s.graph, s.placement, s.assignment, UNIT_COMM)
        heavy = certified_bounds(s.graph, s.placement, s.assignment, slow)
        assert heavy.pt.value >= unit.pt.value
        assert heavy.min_mem.value == unit.min_mem.value  # comm-free


class TestPathAgreement:
    """Pure-Python (< _NUMPY_MIN_TASKS) and numpy paths agree exactly."""

    def _both(self, graph, placement, assignment, monkeypatch):
        monkeypatch.setattr(bounds_mod, "_NUMPY_MIN_TASKS", 0)
        via_numpy = certified_bounds(graph, placement, assignment)
        monkeypatch.setattr(bounds_mod, "_NUMPY_MIN_TASKS", 10**9)
        via_pure = certified_bounds(graph, placement, assignment)
        return via_numpy, via_pure

    def test_paper_example(self, monkeypatch):
        s = schedule_c()
        a, b = self._both(s.graph, s.placement, s.assignment, monkeypatch)
        assert a == b

    @pytest.mark.parametrize("p", [2, 4])
    def test_etree15(self, ctx, p, monkeypatch):
        s = ctx.schedule("etree15", p, "rcp")
        a, b = self._both(s.graph, s.placement, s.assignment, monkeypatch)
        assert a.pt.value == b.pt.value
        assert a.pt.method == b.pt.method
        assert a.min_mem.value == b.min_mem.value
        assert a.min_mem.method == b.min_mem.method

    def test_deterministic(self):
        s = schedule_c()
        runs = [
            certified_bounds(s.graph, s.placement, s.assignment)
            for _ in range(3)
        ]
        assert runs[0] == runs[1] == runs[2]


class TestPublicWrappers:
    def test_time_and_memory_bounds_split_the_set(self):
        s = schedule_c()
        t = time_bounds(s.graph, s.assignment, s.placement.num_procs)
        m = memory_bounds(s.graph, s.placement, s.assignment)
        assert {b.metric for b in t} == {"pt"}
        assert {b.metric for b in m} == {"min_mem"}
        full = certified_bounds(s.graph, s.placement, s.assignment)
        assert max(b.value for b in t) == full.pt.value
        assert max(b.value for b in m) == full.min_mem.value

    def test_empty_graph(self):
        from repro.graph.builder import GraphBuilder
        from repro.core.placement import Placement

        g = GraphBuilder().build()
        bs = certified_bounds(g, Placement(1, {}), {})
        assert bs.pt.value == 0.0
        assert bs.min_mem.value == 0.0


class TestSA4xxPass:
    def test_clean_schedule_gets_the_advisory_only(self):
        report = analyze_schedule(schedule_c(), capacity=8, bounds=True)
        assert report.ok
        codes = [d.rule for d in report.diagnostics]
        assert "SA401" in codes
        assert "SA402" not in codes and "SA403" not in codes

    def test_opt_out_by_default(self):
        report = analyze_schedule(schedule_c(), capacity=8)
        assert all(not d.rule.startswith("SA4") for d in report.diagnostics)

    def test_sa403_fires_on_an_undercutting_profile(self):
        s = schedule_c()
        ctx = types.SimpleNamespace(
            schedule=s,
            profile=types.SimpleNamespace(min_mem=1),
            comm=UNIT_COMM,
        )
        diags = bounds_pass(ctx)
        [d] = [d for d in diags if d.rule == "SA403"]
        assert "undercuts" in d.message
        assert "residency-hold" in d.witness

    def test_sa402_fires_on_a_corrupt_gantt(self, monkeypatch):
        s = schedule_c()
        monkeypatch.setattr(
            bounds_mod, "gantt",
            lambda *a, **kw: types.SimpleNamespace(makespan=1.0),
        )
        ctx = types.SimpleNamespace(
            schedule=s,
            profile=types.SimpleNamespace(min_mem=7),
            comm=UNIT_COMM,
        )
        diags = bounds_pass(ctx)
        [d] = [d for d in diags if d.rule == "SA402"]
        assert "undercuts" in d.message

    def test_exact_equality_does_not_false_positive(self):
        # The paper schedules sit exactly on both bounds; the relative
        # slack must keep SA402/SA403 silent there.
        s = schedule_c()
        ctx = types.SimpleNamespace(
            schedule=s,
            profile=analyze_memory(s),
            comm=UNIT_COMM,
        )
        codes = {d.rule for d in bounds_pass(ctx)}
        assert codes == {"SA401"}
