"""CLI contract of `repro analyze` and `repro sweep --analyze`."""

import json

from repro.cli import main


def test_analyze_clean_exit_zero(capsys):
    assert main(["analyze", "--seed", "7", "--graphs", "2"]) == 0
    out = capsys.readouterr().out
    assert "9/9 plans statically clean" in out
    assert "paper/rcp: OK" in out


def test_analyze_overwrite_fails_with_cycle(capsys):
    code = main(["analyze", "--fault", "overwrite", "--graphs", "1"])
    assert code == 1
    out = capsys.readouterr().out
    assert "overwrite-demo: FAIL" in out
    assert "SA302" in out and "SA301" in out
    assert "cycle: P0 -> P1 -> P0" in out


def test_analyze_timing_fault_stays_clean(capsys):
    assert main(["analyze", "--fault", "slow", "--graphs", "1"]) == 0
    assert "plans statically clean" in capsys.readouterr().out


def test_analyze_json_format(capsys):
    assert main(["analyze", "--graphs", "1", "--format", "json"]) == 0
    doc = json.loads(capsys.readouterr().out)
    assert doc["schema"] == "repro-analysis/1"
    assert all(r["ok"] for r in doc["runs"])


def test_analyze_sarif_out(tmp_path, capsys):
    sarif = tmp_path / "report.sarif"
    code = main([
        "analyze", "--fault", "overwrite", "--graphs", "1",
        "--format", "sarif", "--out", str(sarif),
    ])
    assert code == 1
    capsys.readouterr()
    doc = json.loads(sarif.read_text())
    assert doc["version"] == "2.1.0"
    [run] = doc["runs"]
    assert len(run["tool"]["driver"]["rules"]) == 21
    flagged = {r["ruleId"] for r in run["results"]}
    assert {"SA301", "SA302"} <= flagged


def test_analyze_single_workload(capsys):
    assert main([
        "analyze", "--workload", "paper", "--fraction", "1.0",
    ]) == 0
    assert "statically clean" in capsys.readouterr().out


def test_list_mentions_analyze(capsys):
    assert main(["list"]) == 0
    assert "analyze" in capsys.readouterr().out.split()


def test_sweep_analyze_column(tmp_path, capsys):
    """`sweep --analyze` appends the analysis_errors column; without the
    flag the CSV is byte-identical (same opt-in contract as --check)."""
    plain = tmp_path / "plain.csv"
    analyzed = tmp_path / "analyzed.csv"
    assert main(["sweep", "--procs", "4", "--out", str(plain)]) == 0
    assert main([
        "sweep", "--procs", "4", "--analyze", "--out", str(analyzed),
    ]) == 0
    capsys.readouterr()
    plain_lines = plain.read_text().splitlines()
    analyzed_lines = analyzed.read_text().splitlines()
    assert not plain_lines[0].endswith(",analysis_errors")
    assert analyzed_lines[0] == plain_lines[0] + ",analysis_errors"
    for pl_row, an_row in zip(plain_lines[1:], analyzed_lines[1:]):
        prefix, errs = an_row.rsplit(",", 1)
        assert prefix == pl_row  # timing unchanged by the analyzer
        # Executable cells are clean; non-executable cells count their
        # SA101 findings (a real value, not inf: no simulation needed).
        executable = pl_row.split(",")[4] == "True"
        assert (errs == "0.0") == executable
        assert float(errs) >= 0 and errs != "inf"
