"""One crafted minimal plan per rule code (positive), plus the clean
negative: the planner's own output has zero findings.

The base scenario is a 2-processor producer/consumer pair: ``P1``
produces ``d1``/``d2`` (placed there, hence permanent on P1), ``P0``
consumes them (volatile on P0, so its MAP plan must allocate, notify
and free them).  Each test hand-builds a :class:`MapPlan` with exactly
one defect.
"""

import pytest

from repro.analysis import RULES, Severity, analyze_plan, analyze_schedule
from repro.analysis.harness import analyze_overwrite_demo
from repro.core.liveness import analyze_memory
from repro.core.maps import MapPlan, MapPoint, plan_maps
from repro.core.placement import Placement
from repro.core.schedule import Schedule
from repro.graph.builder import GraphBuilder


def crafted_schedule() -> Schedule:
    b = GraphBuilder()
    b.add_object("a", 1)
    b.add_object("d1", 2)
    b.add_object("d2", 2)
    b.add_task("p1", writes=["d1"], weight=1.0)
    b.add_task("p2", writes=["d2"], weight=1.0)
    b.add_task("u1", reads=["d1"], writes=["a"], weight=1.0)
    b.add_task("u2", reads=["d2"], writes=["a"], weight=1.0)
    g = b.build()
    pl = Placement(2, {"a": 0, "d1": 1, "d2": 1})
    asg = {"p1": 1, "p2": 1, "u1": 0, "u2": 0}
    sched = Schedule(
        graph=g,
        placement=pl,
        assignment=asg,
        orders=[["u1", "u2"], ["p1", "p2"]],
        meta={"heuristic": "crafted"},
    )
    sched.validate()
    return sched


def hand_plan(sched: Schedule, capacity: int, p0_points, p1_points=None) -> MapPlan:
    return MapPlan(
        schedule=sched,
        capacity=capacity,
        points=[p0_points, p1_points or [MapPoint(proc=1, position=0)]],
        profile=analyze_memory(sched),
    )


@pytest.fixture(scope="module")
def sched():
    return crafted_schedule()


def error_codes(report):
    return {d.rule for d in report.errors}


# -- the clean negative -----------------------------------------------


def test_planner_output_is_clean(sched):
    report = analyze_plan(plan_maps(sched, 5), label="clean")
    assert report.ok
    assert report.diagnostics == []
    assert "OK" in report.summary()


# -- SA1xx: memory -----------------------------------------------------


def test_sa101_non_executable(sched):
    report = analyze_schedule(sched, capacity=2)
    assert not report.ok
    assert error_codes(report) == {"SA101"}
    d = report.errors[0]
    assert d.proc is not None and d.task is not None


def test_sa102_plan_over_capacity(sched):
    # min_mem is 4 (P1's permanent d1+d2); a plan allocating both
    # volatiles up-front on P0 peaks at 5 and busts a capacity of 4.
    plan = hand_plan(sched, 4, [
        MapPoint(proc=0, position=0, allocs=["d1", "d2"],
                 notifications={1: ["d1", "d2"]}),
    ])
    report = analyze_plan(plan)
    assert error_codes(report) == {"SA102"}
    assert report.errors[0].obj == "d2"


def test_sa103_zero_headroom_advisory(sched):
    profile = analyze_memory(sched)
    assert profile.tot > profile.min_mem  # headroom was available
    report = analyze_plan(plan_maps(sched, profile.min_mem))
    assert report.ok  # informational only
    assert [d.rule for d in report.diagnostics] == ["SA103"]
    assert report.diagnostics[0].severity == Severity.INFO


# -- SA2xx: liveness sanitizer ----------------------------------------


def test_sa201_use_after_free(sched):
    plan = hand_plan(sched, 5, [
        MapPoint(proc=0, position=0, allocs=["d1", "d2"],
                 notifications={1: ["d1", "d2"]}),
        MapPoint(proc=0, position=1, frees=["d1", "d2"]),  # d2 still live
    ])
    report = analyze_plan(plan)
    assert error_codes(report) == {"SA201"}
    d = report.errors[0]
    assert d.task == "u2" and d.obj == "d2"


def test_sa202_double_free(sched):
    plan = hand_plan(sched, 5, [
        MapPoint(proc=0, position=0, allocs=["d1", "d2"],
                 notifications={1: ["d1", "d2"]}),
        MapPoint(proc=0, position=1, frees=["d1", "d1"]),
    ])
    report = analyze_plan(plan)
    assert error_codes(report) == {"SA202"}
    assert "already freed" in report.errors[0].message


def test_sa202_free_never_allocated(sched):
    plan = hand_plan(sched, 5, [
        MapPoint(proc=0, position=0, frees=["d1"], allocs=["d1", "d2"],
                 notifications={1: ["d1", "d2"]}),
    ])
    report = analyze_plan(plan)
    assert error_codes(report) == {"SA202"}
    assert "never allocated" in report.errors[0].message


def test_sa203_leaked_volatile(sched):
    plan = hand_plan(sched, 5, [
        MapPoint(proc=0, position=0, allocs=["d1", "d2"],
                 notifications={1: ["d1", "d2"]}),
        MapPoint(proc=0, position=1),  # d1 is dead here but never freed
    ])
    report = analyze_plan(plan)
    assert report.ok  # warning only
    assert [d.rule for d in report.diagnostics] == ["SA203"]
    assert report.diagnostics[0].obj == "d1"


def test_sa204_dead_allocation(sched):
    # P1 allocates 'a' (placed on P0, never accessed on P1) and even
    # notifies its owner, so only the dead allocation is wrong.
    plan = hand_plan(
        sched, 5,
        [MapPoint(proc=0, position=0, allocs=["d1", "d2"],
                  notifications={1: ["d1", "d2"]})],
        [MapPoint(proc=1, position=0, allocs=["a"],
                  notifications={0: ["a"]})],
    )
    report = analyze_plan(plan)
    assert report.ok  # warning only
    assert [d.rule for d in report.diagnostics] == ["SA204"]
    assert report.diagnostics[0].proc == 1
    assert report.diagnostics[0].obj == "a"


def test_sa205_use_without_alloc(sched):
    plan = hand_plan(sched, 5, [
        MapPoint(proc=0, position=0, allocs=["d1"],
                 notifications={1: ["d1"]}),
    ])
    report = analyze_plan(plan)
    assert error_codes(report) == {"SA205"}
    d = report.errors[0]
    assert d.task == "u2" and d.obj == "d2"


def test_sa206_double_alloc(sched):
    plan = hand_plan(sched, 5, [
        MapPoint(proc=0, position=0, allocs=["d1", "d2"],
                 notifications={1: ["d1", "d2"]}),
        MapPoint(proc=0, position=1, frees=["d1"], allocs=["d2"]),
    ])
    report = analyze_plan(plan)
    assert error_codes(report) == {"SA206"}
    assert report.errors[0].obj == "d2"


# -- SA3xx: protocol ---------------------------------------------------


def test_sa301_sa302_overwrite_demo_cycle():
    report = analyze_overwrite_demo()
    assert not report.ok
    assert error_codes(report) == {"SA301", "SA302"}
    assert report.cycles() == [(0, 1, 0)]
    [deadlock] = [d for d in report.errors if d.rule == "SA301"]
    assert "cycle: P0 -> P1 -> P0" in deadlock.witness
    assert "wait-for:" in deadlock.witness


def test_sa303_missing_notification(sched):
    plan = hand_plan(sched, 5, [
        MapPoint(proc=0, position=0, allocs=["d1", "d2"],
                 notifications={1: ["d2"]}),  # d1's address never sent
    ])
    report = analyze_plan(plan)
    # The suspended put deadlocks the pair, so SA301 rides along.
    assert error_codes(report) == {"SA303", "SA301"}
    [missing] = [d for d in report.errors if d.rule == "SA303"]
    assert missing.obj == "d1"
    assert report.cycles() == [(0, 1, 0)]


def test_sa304_order_cycle():
    b = GraphBuilder()
    b.add_object("x", 1)
    b.add_object("y", 1)
    b.add_task("t1", writes=["x"])
    b.add_task("t2", reads=["x"], writes=["y"])
    b.add_task("t3", reads=["y"], writes=["x"])
    g = b.build()
    pl = Placement(2, {"x": 0, "y": 1})
    sched = Schedule(
        graph=g,
        placement=pl,
        assignment={"t1": 0, "t2": 1, "t3": 0},
        orders=[["t3", "t1"], ["t2"]],  # t3 before its ancestor t1
        meta={"heuristic": "misordered"},
    )
    report = analyze_schedule(sched)
    assert "SA304" in error_codes(report)
    [oc] = [d for d in report.errors if d.rule == "SA304"]
    assert "t1" in oc.message and "t3" in oc.message
    # The cross-processor cycle surfaces as a static deadlock too.
    assert report.cycles() == [(0, 1, 0)]


# -- registry sanity ---------------------------------------------------


def test_every_rule_has_a_test_or_catalogue_entry():
    assert set(RULES) == {
        "SA101", "SA102", "SA103",
        "SA201", "SA202", "SA203", "SA204", "SA205", "SA206",
        "SA301", "SA302", "SA303", "SA304",
        "SA401", "SA402", "SA403",
        "SA501", "SA502", "SA503", "SA504", "SA505",
    }
