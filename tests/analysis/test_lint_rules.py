"""Unit tests for the repo-specific AST lint (tools/lint_rules.py)."""

import ast
import importlib.util
import pathlib

_TOOLS = pathlib.Path(__file__).resolve().parents[2] / "tools"
_spec = importlib.util.spec_from_file_location(
    "lint_rules", _TOOLS / "lint_rules.py"
)
lint_rules = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(lint_rules)


def private(src: str):
    return lint_rules.check_private_mutation(ast.parse(src), "x.py")


def wallclock(src: str):
    return lint_rules.check_wallclock_in_core(ast.parse(src), "x.py")


class TestPrivateMutation:
    def test_flags_foreign_private_write(self):
        assert private("sim._clock = 5\n")
        assert private("sim._clock += 1\n")
        assert private("del sim._clock\n")

    def test_flags_tuple_unpacking_target(self):
        (finding,) = private("a.x, sim._y = 1, 2\n")
        assert "_y" in finding[1]

    def test_self_cls_and_dunders_are_fine(self):
        assert not private("self._clock = 5\n")
        assert not private("cls._registry = {}\n")
        assert not private("fn.__name__ = 'f'\n")

    def test_public_attributes_are_fine(self):
        assert not private("sim.clock = 5\n")


class TestWallclockInCore:
    def test_flags_time_and_random_imports(self):
        assert wallclock("import time\n")
        assert wallclock("from time import monotonic\n")
        assert wallclock("import random\n")
        assert wallclock("from random import Random\n")

    def test_flags_numpy_random(self):
        assert wallclock("import numpy as np\nx = np.random.rand()\n")

    def test_deterministic_core_code_is_fine(self):
        assert not wallclock("import math\nimport numpy as np\n"
                             "x = np.arange(3)\n")


class TestLintFile:
    def test_machine_package_may_mutate_private_state(self):
        path = lint_rules.REPO / "src/repro/machine/simulator.py"
        assert lint_rules.lint_file(path) == []

    def test_whole_repo_is_clean(self):
        assert lint_rules.main([]) == 0
