"""Unit tests for the repo-specific AST lint (tools/lint_rules.py)."""

import ast
import importlib.util
import pathlib

_TOOLS = pathlib.Path(__file__).resolve().parents[2] / "tools"
_spec = importlib.util.spec_from_file_location(
    "lint_rules", _TOOLS / "lint_rules.py"
)
lint_rules = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(lint_rules)


def private(src: str):
    return lint_rules.check_private_mutation(ast.parse(src), "x.py")


def wallclock(src: str):
    return lint_rules.check_wallclock_in_core(ast.parse(src), "x.py")


def hot_alloc(src: str):
    return lint_rules.check_compiled_hot_alloc(ast.parse(src), "compiled.py")


class TestPrivateMutation:
    def test_flags_foreign_private_write(self):
        assert private("sim._clock = 5\n")
        assert private("sim._clock += 1\n")
        assert private("del sim._clock\n")

    def test_flags_tuple_unpacking_target(self):
        (finding,) = private("a.x, sim._y = 1, 2\n")
        assert "_y" in finding[1]

    def test_self_cls_and_dunders_are_fine(self):
        assert not private("self._clock = 5\n")
        assert not private("cls._registry = {}\n")
        assert not private("fn.__name__ = 'f'\n")

    def test_public_attributes_are_fine(self):
        assert not private("sim.clock = 5\n")


class TestWallclockInCore:
    def test_flags_time_and_random_imports(self):
        assert wallclock("import time\n")
        assert wallclock("from time import monotonic\n")
        assert wallclock("import random\n")
        assert wallclock("from random import Random\n")

    def test_flags_numpy_random(self):
        assert wallclock("import numpy as np\nx = np.random.rand()\n")

    def test_deterministic_core_code_is_fine(self):
        assert not wallclock("import math\nimport numpy as np\n"
                             "x = np.arange(3)\n")


class TestCompiledHotAlloc:
    def test_flags_call_in_hot_loop(self):
        (finding,) = hot_alloc(
            "def _seg_hot(ws):\n"
            "    for w in ws:\n"
            "        print(w)\n"
        )
        assert "Call" in finding[1] and "_seg_hot" in finding[1]

    def test_flags_displays_and_comprehensions(self):
        assert hot_alloc(
            "def k_hot(xs):\n    while xs:\n        y = [1, 2]\n"
        )
        assert hot_alloc(
            "def k_hot(xs):\n    for x in xs:\n        y = (x, x)\n"
        )
        assert hot_alloc(
            "def k_hot(xs):\n    for x in xs:\n        y = {a for a in xs}\n"
        )
        assert hot_alloc(
            "def k_hot(xs):\n    for x in xs:\n        y = f'{x}'\n"
        )

    def test_scalar_arithmetic_loops_are_fine(self):
        assert not hot_alloc(
            "def _seg_all_hot(ws, a, b):\n"
            "    for w in ws:\n"
            "        a += w\n"
            "        b += w\n"
            "    return a, b\n"
        )

    def test_allocation_outside_the_loop_is_fine(self):
        # Setup and return values may allocate; only loop bodies are hot.
        assert not hot_alloc(
            "def k_hot(ws):\n"
            "    acc = list(ws)\n"
            "    s = 0.0\n"
            "    for w in acc:\n"
            "        s += w\n"
            "    return (s, len(acc))\n"
        )

    def test_non_hot_functions_are_ignored(self):
        assert not hot_alloc(
            "def lower(ws):\n    for w in ws:\n        x = [w]\n"
        )

    def test_store_context_tuple_targets_are_fine(self):
        # Store-context tuples (unpack targets) don't allocate; only
        # Load-context displays do.
        assert not hot_alloc(
            "def k_hot(ws):\n    s = 0.0\n    for a, b in ws:\n        s += a\n"
        )
        # ...but a Load-context tuple on the right-hand side does.
        assert hot_alloc(
            "def k_hot(ws):\n    for w in ws:\n        a, b = w, w\n"
        )

    def test_only_compiled_modules_are_scanned(self):
        hot_src = "def k_hot(xs):\n    for x in xs:\n        y = [x]\n"
        scanned = lint_rules._is_compiled_module
        assert scanned("src/repro/machine/compiled.py")
        assert scanned("src/repro/machine/compiled_kernels.py")
        assert not scanned("src/repro/machine/simulator.py")
        assert not scanned("src/repro/core/compiled.py")
        assert hot_alloc(hot_src)  # the checker itself still flags it


def swallowed(src: str):
    return lint_rules.check_swallowed_exception(ast.parse(src), "x.py")


def naked_sleep(src: str):
    return lint_rules.check_naked_sleep(ast.parse(src), "x.py")


class TestSwallowedException:
    def test_flags_bare_except(self):
        (finding,) = swallowed("try:\n    f()\nexcept:\n    g()\n")
        assert "bare" in finding[1]

    def test_flags_except_exception_pass(self):
        assert swallowed("try:\n    f()\nexcept Exception:\n    pass\n")
        assert swallowed("try:\n    f()\nexcept BaseException:\n    ...\n")
        assert swallowed(
            "try:\n    f()\nexcept (ValueError, Exception):\n    pass\n"
        )

    def test_handled_broad_catch_is_fine(self):
        # Converting / re-raising is the sanctioned pattern (the sweep
        # runtime turns worker exceptions into WorkerError records).
        assert not swallowed(
            "try:\n    f()\nexcept Exception as err:\n    raise X() from err\n"
        )
        assert not swallowed(
            "try:\n    f()\nexcept Exception as err:\n    out = str(err)\n"
        )

    def test_narrow_pass_is_fine(self):
        assert not swallowed("try:\n    f()\nexcept OSError:\n    pass\n")


class TestNakedSleep:
    def test_flags_time_sleep_call(self):
        (finding,) = naked_sleep("import time\ntime.sleep(1)\n")
        assert "runtime.py" in finding[1]

    def test_flags_from_import(self):
        assert naked_sleep("from time import sleep\n")

    def test_other_time_uses_are_fine(self):
        assert not naked_sleep("import time\nt = time.perf_counter()\n")
        assert not naked_sleep("from time import perf_counter\n")

    def test_runtime_module_is_exempt(self):
        path = lint_rules.REPO / "src/repro/experiments/runtime.py"
        assert lint_rules.lint_file(path) == []


def wallclock_span(src: str):
    return lint_rules.check_wallclock_span(ast.parse(src), "x.py")


class TestWallclockSpan:
    def test_flags_time_time(self):
        (finding,) = wallclock_span("import time\nt0 = time.time()\n")
        assert "time.time" in finding[1]
        assert wallclock_span("from time import time\n")

    def test_flags_datetime_now_utcnow_today(self):
        assert wallclock_span(
            "from datetime import datetime\nts = datetime.now()\n"
        )
        assert wallclock_span(
            "import datetime\nts = datetime.datetime.utcnow()\n"
        )
        assert wallclock_span(
            "from datetime import datetime\nd = datetime.today()\n"
        )

    def test_monotonic_clocks_are_fine(self):
        assert not wallclock_span(
            "import time\nt = time.monotonic()\ns = time.perf_counter()\n"
        )
        assert not wallclock_span("from time import monotonic, perf_counter\n")

    def test_unrelated_receivers_are_fine(self):
        # ``now``/``today`` on a non-datetime object is not a wall-clock
        # read (e.g. a pandas Timestamp helper or a domain method).
        assert not wallclock_span("obj.now()\n")
        assert not wallclock_span("calendar.today()\n")

    def test_scope_covers_src_only(self):
        # The rule fires only inside src/repro/, and never in obs/ or
        # the supervised runtime (the two sanctioned wall-clock sites).
        obs = lint_rules.REPO / "src/repro/obs/runtime.py"
        assert lint_rules.lint_file(obs) == []
        runtime = lint_rules.REPO / "src/repro/experiments/runtime.py"
        assert lint_rules.lint_file(runtime) == []

    def test_exempt_modules_actually_read_the_wall_clock(self):
        # Guard the guard: obs/runtime.py stamps wall0 via time.time(),
        # so if the exemption list rots the repo-wide run would fail.
        src = (lint_rules.REPO / "src/repro/obs/runtime.py").read_text()
        assert lint_rules.check_wallclock_span(ast.parse(src), "runtime.py")


class TestRuleRegistrySync:
    def test_repo_is_in_sync(self):
        assert lint_rules.check_rule_registry_sync(lint_rules.REPO) == []

    def test_registry_scan_matches_the_importable_rules(self):
        # The textual scan the check relies on sees every real rule.
        from repro.analysis import RULES

        text = (lint_rules.REPO / lint_rules.RULE_REGISTRY).read_text()
        for code in RULES:
            assert f'"{code}"' in text

    @staticmethod
    def _copy_repo(tmp_path):
        import shutil

        for rel in (lint_rules.RULE_REGISTRY, lint_rules.RULE_CATALOGUE):
            target = tmp_path / rel
            target.parent.mkdir(parents=True, exist_ok=True)
            shutil.copy(lint_rules.REPO / rel, target)
        return tmp_path

    def test_undocumented_rule_is_flagged(self, tmp_path):
        repo = self._copy_repo(tmp_path)
        reg = repo / lint_rules.RULE_REGISTRY
        reg.write_text(reg.read_text() + '\n_EXTRA = "SA999"\n')
        findings = lint_rules.check_rule_registry_sync(repo)
        assert len(findings) == 1
        assert "SA999" in findings[0]
        assert "no rule-catalogue table row" in findings[0]

    def test_unregistered_doc_row_is_flagged(self, tmp_path):
        repo = self._copy_repo(tmp_path)
        doc = repo / lint_rules.RULE_CATALOGUE
        doc.write_text(
            doc.read_text()
            + "\n| SA998 | ghost-rule | error | nowhere | never |\n"
        )
        findings = lint_rules.check_rule_registry_sync(repo)
        assert len(findings) == 1
        assert "SA998" in findings[0]
        assert "no registry entry" in findings[0]


class TestLintFile:
    def test_machine_package_may_mutate_private_state(self):
        path = lint_rules.REPO / "src/repro/machine/simulator.py"
        assert lint_rules.lint_file(path) == []

    def test_whole_repo_is_clean(self):
        assert lint_rules.main([]) == 0
