"""Lowered-IR verifier (`repro.analysis.irverify`, SA5xx).

Clean verdicts on every shipped lowering, and one surgical mutation per
rule family: each corrupt IR is rejected with its specific SA5xx
diagnostic — never a crash, never a silent pass.  Every test builds its
own `CompiledSchedule` so mutating the memoised lowering/exec plan
cannot leak into shared caches.
"""

import pytest

from repro.analysis import (
    debug_verify,
    verify_exec_plan,
    verify_lowering,
    verify_report,
)
from repro.errors import SimulationError
from repro.experiments import ExperimentContext
from repro.graph.paper_example import schedule_c
from repro.machine.compiled import get_exec_plan, lower_schedule
from repro.machine.simulator import CompiledSchedule
from repro.machine.spec import UNIT_MACHINE


@pytest.fixture(scope="module")
def ctx():
    return ExperimentContext()


def fresh_paper():
    """A private CompiledSchedule of the worked example."""
    return CompiledSchedule(schedule_c())


def error_codes(diags):
    return {d.rule for d in diags}


class TestCleanVerdicts:
    def test_paper_lowering_is_clean(self):
        assert verify_lowering(fresh_paper()) == []

    def test_paper_exec_plan_is_clean(self):
        cs = fresh_paper()
        assert verify_exec_plan(cs, 8, UNIT_MACHINE) == []

    @pytest.mark.parametrize("h", ["rcp", "mpo", "dts", "tree", "etf"])
    def test_every_shipped_heuristic_lowers_clean(self, ctx, h):
        cs = ctx.compiled("etree15", 2, h)
        prof = cs.profile
        diags = verify_exec_plan(cs, prof.tot, ctx.spec)
        assert diags == []

    def test_report_wrapper_is_ok(self):
        report = verify_report(fresh_paper(), capacity=8, spec=UNIT_MACHINE)
        assert report.ok
        assert report.diagnostics == []
        assert "OK" in report.summary()

    def test_non_executable_capacity_degrades_not_crashes(self):
        # Capacity below MIN_MEM admits no exec plan; the verifier
        # falls back to the lowering passes (SA101 is the analyzer's).
        cs = fresh_paper()
        report = verify_report(cs, capacity=1, spec=UNIT_MACHINE)
        assert report.ok


class TestMutationsAreRejected:
    """One corrupt IR per rule family — specific code, no crash."""

    def test_sa501_non_monotone_csr(self):
        cs = fresh_paper()
        lo = lower_schedule(cs)
        lo.od_ptr[1] = lo.od_ptr[-1] + 5  # pointer row past the table
        diags = verify_lowering(cs)
        assert error_codes(diags) == {"SA501"}
        assert any("od_ptr" in d.message for d in diags)

    def test_sa501_out_of_space_index(self):
        cs = fresh_paper()
        lo = lower_schedule(cs)
        lo.wait_tid[0] = lo.num_tasks + 99
        diags = verify_lowering(cs)
        assert error_codes(diags) == {"SA501"}

    def test_sa501_gates_the_deeper_passes(self):
        # A structurally corrupt CSR must not be chased by the
        # bijection/version walks — only SA501 is reported.
        cs = fresh_paper()
        lo = lower_schedule(cs)
        lo.od_ptr[1] = lo.od_ptr[-1] + 5
        lo.task_name[0] = "impostor"  # would be SA502 if reached
        diags = verify_exec_plan(cs, 8, UNIT_MACHINE)
        assert error_codes(diags) == {"SA501"}

    def test_sa502_broken_task_bijection(self):
        cs = fresh_paper()
        lo = lower_schedule(cs)
        lo.task_name[0] = "impostor"
        diags = verify_lowering(cs)
        assert "SA502" in error_codes(diags)

    def test_sa503_version_flag_drift(self):
        cs = fresh_paper()
        lo = lower_schedule(cs)
        if not lo.od_ok0_l:
            pytest.skip("no outgoing data on this lowering")
        lo.od_ok0_l[0] = not bool(lo.od_ok0_l[0])
        diags = verify_lowering(cs)
        assert "SA503" in error_codes(diags)

    def test_sa504_step_program_drops_a_task(self):
        cs = fresh_paper()
        ep = get_exec_plan(cs, 8, UNIT_MACHINE, True, False)
        for q, steps in enumerate(ep.steps):
            if steps:
                ep.steps[q] = steps[:-1]
                break
        diags = verify_exec_plan(cs, 8, UNIT_MACHINE)
        assert "SA504" in error_codes(diags)

    def test_sa505_negative_weight(self):
        cs = fresh_paper()
        lo = lower_schedule(cs)
        lo.weight_l[0] = -1.0
        diags = verify_lowering(cs)
        assert "SA505" in error_codes(diags)

    def test_mutations_never_raise(self):
        # Even wildly corrupt arrays come back as diagnostics.
        cs = fresh_paper()
        lo = lower_schedule(cs)
        lo.od_ptr[:] = -7
        lo.wait_ptr[:] = 10**6
        diags = verify_exec_plan(cs, 8, UNIT_MACHINE)
        assert diags
        assert all(d.rule.startswith("SA5") for d in diags)


class TestDebugPath:
    def test_debug_verify_clean(self):
        debug_verify(fresh_paper())  # no exception

    def test_debug_verify_raises_on_corruption(self):
        cs = fresh_paper()
        lo = lower_schedule(cs)
        lo.od_ptr[1] = lo.od_ptr[-1] + 5
        with pytest.raises(SimulationError, match="SA501"):
            debug_verify(cs)

    def test_env_hook_verifies_fresh_lowerings(self, monkeypatch):
        monkeypatch.setenv("REPRO_VERIFY_IR", "1")
        cs = fresh_paper()
        lower_schedule(cs)  # would raise via debug_verify on a bad IR
        get_exec_plan(cs, 8, UNIT_MACHINE, True, False)
