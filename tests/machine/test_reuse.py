"""Plan / simulator reuse and compiled-schedule tests.

Regression suite for two state-leakage bugs and for the
:class:`~repro.machine.simulator.CompiledSchedule` layer:

* MAP execution marks used to be stored on the shared
  :class:`~repro.core.maps.MapPoint` objects and were only cleared when
  a run *succeeded* — after a failed run a reused plan silently skipped
  every already-marked MAP.  Execution progress is now run-local.
* ``SimResult.avg_maps`` excluded processors by ``busy_time > 0 or
  num_maps`` while ``MapPlan.avg_maps`` excluded empty task orders; the
  two now share the non-empty-order rule.
"""

from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.core import analyze_memory, cyclic_placement, mpo_order, owner_compute_assignment
from repro.core.maps import plan_maps
from repro.errors import ReproError, SimulationError
from repro.graph.generators import random_trace
from repro.graph.paper_example import paper_example_graph, schedule_c
from repro.machine import CompiledSchedule, ProcessorStats, SimResult, Simulator
from repro.machine.spec import UNIT_MACHINE


def paper_setup():
    g = paper_example_graph()
    return schedule_c(g)


class TestPlanReuse:
    def test_plan_survives_failed_run(self):
        """A plan made for capacity 8, replayed under capacity 7, fails
        mid-run — and must still execute correctly afterwards."""
        sc = paper_setup()
        plan = plan_maps(sc, 8)
        with pytest.raises(ReproError):
            Simulator(sc, spec=UNIT_MACHINE, capacity=7, plan=plan).run()
        # The same plan object, at the capacity it was made for.
        reused = Simulator(sc, spec=UNIT_MACHINE, capacity=8, plan=plan).run()
        fresh = Simulator(sc, spec=UNIT_MACHINE, capacity=8).run()
        assert reused.parallel_time == fresh.parallel_time
        assert [s.num_maps for s in reused.stats] == [
            s.num_maps for s in fresh.stats
        ]

    def test_failure_is_repeatable(self):
        """A failing configuration fails the same way every run — no
        state carries over between attempts."""
        sc = paper_setup()
        plan = plan_maps(sc, 8)
        sim = Simulator(sc, spec=UNIT_MACHINE, capacity=7, plan=plan)
        for _ in range(3):
            with pytest.raises(ReproError):
                sim.run()

    def test_two_simulators_share_one_plan(self):
        sc = paper_setup()
        plan = plan_maps(sc, 8)
        r1 = Simulator(sc, spec=UNIT_MACHINE, capacity=8, plan=plan).run()
        r2 = Simulator(sc, spec=UNIT_MACHINE, capacity=8, plan=plan).run()
        assert r1.parallel_time == r2.parallel_time
        assert r1.avg_maps == r2.avg_maps
        assert [s.num_maps for s in r1.stats] == [s.num_maps for s in r2.stats]
        assert [s.busy_time for s in r1.stats] == [s.busy_time for s in r2.stats]

    def test_one_simulator_runs_repeatedly(self):
        g = random_trace(60, 10, seed=11)
        pl = cyclic_placement(g, 3)
        s = mpo_order(g, pl, owner_compute_assignment(g, pl))
        prof = analyze_memory(s)
        sim = Simulator(s, spec=UNIT_MACHINE, capacity=prof.min_mem, profile=prof)
        results = [sim.run() for _ in range(3)]
        assert len({r.parallel_time for r in results}) == 1
        assert len({r.avg_maps for r in results}) == 1

    def test_concurrent_runs_of_one_simulator(self):
        """run() state is fully run-local: parallel runs of one
        Simulator object all produce the reference result."""
        g = random_trace(80, 12, seed=5)
        pl = cyclic_placement(g, 4)
        s = mpo_order(g, pl, owner_compute_assignment(g, pl))
        prof = analyze_memory(s)
        sim = Simulator(s, spec=UNIT_MACHINE, capacity=prof.min_mem, profile=prof)
        reference = sim.run()
        with ThreadPoolExecutor(max_workers=4) as pool:
            results = list(pool.map(lambda _i: sim.run(), range(8)))
        for r in results:
            assert r.parallel_time == reference.parallel_time
            assert [s.num_maps for s in r.stats] == [
                s.num_maps for s in reference.stats
            ]


class TestCompiledSchedule:
    def test_compiled_matches_direct(self):
        sc = paper_setup()
        cs = CompiledSchedule(sc)
        for cap in (8, 9, 12):
            direct = Simulator(sc, spec=UNIT_MACHINE, capacity=cap).run()
            via = Simulator(spec=UNIT_MACHINE, capacity=cap, compiled=cs).run()
            assert via.parallel_time == direct.parallel_time
            assert via.avg_maps == direct.avg_maps
            assert via.peak_memory == direct.peak_memory

    def test_plan_memoised_per_capacity(self):
        cs = CompiledSchedule(paper_setup())
        assert cs.plan_for(8) is cs.plan_for(8)
        assert cs.plan_for(8) is not cs.plan_for(9)

    def test_mismatched_schedule_rejected(self):
        sc = paper_setup()
        g2 = random_trace(20, 5, seed=3)
        pl = cyclic_placement(g2, 2)
        other = mpo_order(g2, pl, owner_compute_assignment(g2, pl))
        cs = CompiledSchedule(other)
        with pytest.raises(SimulationError):
            Simulator(sc, spec=UNIT_MACHINE, compiled=cs)

    def test_needs_schedule_or_compiled(self):
        with pytest.raises(SimulationError):
            Simulator(spec=UNIT_MACHINE)


class TestAvgMapsRule:
    def test_simresult_uses_nonempty_order_rule(self):
        """A processor whose tasks are all zero-weight (busy_time 0, no
        MAPs in baseline mode) still counts toward the average; only
        task-less processors are excluded — matching MapPlan.avg_maps."""
        stats = [
            ProcessorStats(busy_time=1.0, num_maps=2, num_tasks=3),
            ProcessorStats(busy_time=0.0, num_maps=0, num_tasks=2),  # zero-weight tasks
            ProcessorStats(busy_time=0.0, num_maps=0, num_tasks=0),  # no tasks
        ]
        res = SimResult(
            parallel_time=1.0,
            task_finish_time=1.0,
            stats=stats,
            capacity=10,
            memory_managed=False,
        )
        # Old rule averaged over {P0} -> 2.0; the unified rule averages
        # over {P0, P1} -> 1.0.
        assert res.avg_maps == pytest.approx(1.0)

    def test_simresult_agrees_with_plan(self):
        sc = paper_setup()
        for cap in (8, 9, 12):
            res = Simulator(sc, spec=UNIT_MACHINE, capacity=cap).run()
            assert res.avg_maps == pytest.approx(res.plan.avg_maps)

    def test_zero_task_processor_excluded(self):
        from repro.core import rcp_order
        from repro.graph.generators import chain

        g = chain(3)
        pl = cyclic_placement(g, 4)  # more procs than tasks
        s = rcp_order(g, pl, owner_compute_assignment(g, pl))
        res = Simulator(s, spec=UNIT_MACHINE).run()
        assert res.avg_maps == pytest.approx(res.plan.avg_maps)
        assert all(st.num_tasks == len(o) for st, o in zip(res.stats, s.orders))
