"""Unit and integration tests for the discrete-event simulator."""

import pytest

from repro.core import (
    analyze_memory,
    cyclic_placement,
    dts_order,
    gantt,
    mpo_order,
    owner_compute_assignment,
    rcp_order,
)
from repro.errors import NonExecutableScheduleError, SimulationError
from repro.graph.generators import chain, random_trace, reduction_tree
from repro.graph.paper_example import paper_example_graph, schedule_b, schedule_c
from repro.machine import CRAY_T3D, MachineSpec, UNIT_MACHINE, simulate


def setup(g, p, order=mpo_order):
    pl = cyclic_placement(g, p)
    asg = owner_compute_assignment(g, pl)
    return order(g, pl, asg)


class TestSpec:
    def test_comm_model(self):
        cm = CRAY_T3D.comm_model()
        assert cm.latency == pytest.approx(2.7e-6)

    def test_task_weight(self):
        assert CRAY_T3D.task_weight(103e6) == pytest.approx(1.0)

    def test_message_time(self):
        t = CRAY_T3D.message_time(128)
        assert t == pytest.approx(2.7e-6 + 128 / 128e6)

    def test_with_capacity(self):
        s = CRAY_T3D.with_capacity(1000)
        assert s.memory_capacity == 1000 and s.flop_rate == CRAY_T3D.flop_rate

    def test_scaled_overheads(self):
        s = CRAY_T3D.scaled_overheads(2.0)
        assert s.map_overhead == pytest.approx(2 * CRAY_T3D.map_overhead)
        assert s.put_latency == CRAY_T3D.put_latency  # network untouched


class TestBasicExecution:
    def test_serial_chain_time(self):
        from repro.core import serial_schedule

        g = chain(5)
        res = simulate(serial_schedule(g), spec=UNIT_MACHINE, memory_managed=False)
        assert res.parallel_time == pytest.approx(5.0)

    def test_matches_gantt_in_baseline_mode(self):
        """Without memory management the simulator reproduces the
        macro-dataflow prediction on the unit machine."""
        for seed in range(4):
            g = random_trace(60, 12, seed=seed)
            s = setup(g, 3)
            predicted = gantt(s).makespan
            res = simulate(s, spec=UNIT_MACHINE, memory_managed=False)
            assert res.task_finish_time == pytest.approx(predicted)

    def test_all_tasks_complete(self):
        g = random_trace(40, 8, seed=1)
        s = setup(g, 2)
        res = simulate(s, spec=UNIT_MACHINE)
        assert res.parallel_time > 0
        assert len(res.stats) == 2

    def test_commuting_groups_execute(self):
        g = reduction_tree(6)
        s = setup(g, 2)
        res = simulate(s, spec=UNIT_MACHINE)
        assert res.parallel_time > 0

    def test_zero_task_processor(self):
        g = chain(3)
        pl = cyclic_placement(g, 4)
        asg = owner_compute_assignment(g, pl)
        s = rcp_order(g, pl, asg)
        res = simulate(s, spec=UNIT_MACHINE)
        assert res.parallel_time > 0


class TestMemoryManagement:
    def test_peak_respects_capacity(self):
        g = paper_example_graph()
        sc = schedule_c(g)
        for cap in (8, 9, 12):
            res = simulate(sc, spec=UNIT_MACHINE, capacity=cap)
            assert res.peak_memory <= cap

    def test_non_executable_raises(self):
        g = paper_example_graph()
        with pytest.raises(NonExecutableScheduleError):
            simulate(schedule_b(g), spec=UNIT_MACHINE, capacity=8)

    def test_baseline_needs_tot(self):
        g = paper_example_graph()
        sc = schedule_c(g)
        prof = analyze_memory(sc)
        with pytest.raises(SimulationError):
            simulate(sc, spec=UNIT_MACHINE, capacity=prof.tot - 1, memory_managed=False)

    def test_map_counts_match_plan(self):
        g = paper_example_graph()
        sc = schedule_c(g)
        res = simulate(sc, spec=UNIT_MACHINE, capacity=8)
        assert [s.num_maps for s in res.stats] == [
            len(pts) for pts in res.plan.points
        ]

    def test_overhead_grows_as_memory_shrinks(self):
        g = random_trace(120, 20, seed=6)
        s = setup(g, 4)
        prof = analyze_memory(s)
        pts = []
        for cap in (prof.tot, (prof.tot + prof.min_mem) // 2, prof.min_mem):
            pts.append(simulate(s, spec=UNIT_MACHINE, capacity=cap, profile=prof).parallel_time)
        assert pts[0] <= pts[-1]

    def test_suspended_sends_happen_under_pressure(self):
        g = random_trace(100, 15, seed=3)
        s = setup(g, 4)
        prof = analyze_memory(s)
        res = simulate(s, spec=UNIT_MACHINE, capacity=prof.min_mem, profile=prof)
        assert sum(st.suspended_sends for st in res.stats) > 0

    def test_all_heuristics_run_managed(self):
        g = random_trace(80, 12, seed=9)
        pl = cyclic_placement(g, 3)
        asg = owner_compute_assignment(g, pl)
        for fn in (rcp_order, mpo_order, dts_order):
            s = fn(g, pl, asg)
            prof = analyze_memory(s)
            res = simulate(s, spec=UNIT_MACHINE, capacity=prof.min_mem, profile=prof)
            assert res.peak_memory <= prof.min_mem


class TestOverheadAccounting:
    def test_t3d_overheads_slow_execution(self):
        g = random_trace(80, 12, seed=2)
        s = setup(g, 4)
        # weights are ~1s here, so scale the machine to make overheads
        # visible: run with zero overheads vs large overheads.
        fast = MachineSpec(
            put_latency=0.01, byte_time=0.0, send_overhead=0.0,
            map_overhead=0.0, alloc_cost=0.0, free_cost=0.0,
            package_overhead=0.0, address_cost=0.0, ra_cost=0.0,
        )
        slow = MachineSpec(
            put_latency=0.01, byte_time=0.0, send_overhead=0.0,
            map_overhead=1.0, alloc_cost=0.1, free_cost=0.1,
            package_overhead=0.5, address_cost=0.05, ra_cost=0.1,
        )
        prof = analyze_memory(s)
        t_fast = simulate(s, spec=fast, capacity=prof.min_mem, profile=prof).parallel_time
        t_slow = simulate(s, spec=slow, capacity=prof.min_mem, profile=prof).parallel_time
        assert t_slow > t_fast

    def test_message_counters(self):
        g = paper_example_graph()
        sc = schedule_c(g)
        res = simulate(sc, spec=UNIT_MACHINE, capacity=9)
        # 5 volatile (obj, dest) pairs exist: d1,d3,d5,d7 -> P1; d8 -> P0.
        assert res.total_data_msgs == 5
        assert sum(s.packages_sent for s in res.stats) >= 2

    def test_utilization_bounds(self):
        g = random_trace(60, 10, seed=4)
        s = setup(g, 3)
        res = simulate(s, spec=UNIT_MACHINE)
        assert 0 < res.utilization <= 1.0


class TestRepeatability:
    def test_same_result_twice(self):
        """Plans are reusable; repeated runs give identical times."""
        g = paper_example_graph()
        sc = schedule_c(g)
        r1 = simulate(sc, spec=UNIT_MACHINE, capacity=8)
        r2 = simulate(sc, spec=UNIT_MACHINE, capacity=8)
        assert r1.parallel_time == r2.parallel_time
        assert r1.avg_maps == r2.avg_maps
