"""Engine introspection counters (:attr:`CompiledSchedule.counters`)
and the recorded fallback reason (:attr:`SimResult.fallback_reason`).

The counters are pure bookkeeping: they must never change what a run
computes, only describe the lowering/plan caches and engine selection
so the runtime trace and the ``--engine-stats`` sweep columns can
report them.
"""

from repro.graph.paper_example import paper_example_graph, schedule_b
from repro.machine import UNIT_MACHINE, Simulator
from repro.machine.simulator import ENGINE_COUNTER_KEYS, CompiledSchedule


def make_cs():
    return CompiledSchedule(schedule_b(paper_example_graph()))


def sim(cs, engine="interpreted", **kw):
    return Simulator(
        spec=UNIT_MACHINE, capacity=cs.profile.tot, compiled=cs,
        engine=engine, **kw,
    )


class TestCounterKeys:
    def test_fresh_schedule_has_zeroed_counters(self):
        cs = make_cs()
        assert set(ENGINE_COUNTER_KEYS) <= set(cs.counters)
        assert all(cs.counters[k] == 0 for k in ENGINE_COUNTER_KEYS)

    def test_timer_keys_are_floats(self):
        cs = make_cs()
        for k in ENGINE_COUNTER_KEYS:
            if k.endswith("_s"):
                assert isinstance(cs.counters[k], float)


class TestPlanCacheCounters:
    def test_miss_then_hit(self):
        cs = make_cs()
        cap = cs.profile.tot
        cs.plan_for(cap)
        assert cs.counters["plan_misses"] == 1
        assert cs.counters["plan_hits"] == 0
        cs.plan_for(cap)
        assert cs.counters["plan_misses"] == 1
        assert cs.counters["plan_hits"] == 1
        assert cs.counters["plan_s"] >= 0.0

    def test_distinct_capacities_are_distinct_misses(self):
        cs = make_cs()
        cs.plan_for(cs.profile.tot)
        cs.plan_for(cs.profile.tot + 1)
        assert cs.counters["plan_misses"] == 2


class TestEngineSelectionCounters:
    def test_compiled_run_counts_lowering_and_exec_plans(self):
        cs = make_cs()
        sim(cs, engine="compiled").run()
        assert cs.counters["compiled_runs"] == 1
        assert cs.counters["interpreted_runs"] == 0
        assert cs.counters["lower_misses"] == 1
        assert cs.counters["exec_plan_misses"] == 1
        # Same configuration again: both caches hit.
        sim(cs, engine="compiled").run()
        assert cs.counters["compiled_runs"] == 2
        assert cs.counters["lower_misses"] == 1
        assert cs.counters["exec_plan_hits"] >= 1
        assert cs.counters["exec_s"] > 0.0

    def test_interpreted_run_counts(self):
        cs = make_cs()
        res = sim(cs).run()
        assert res.engine == "interpreted"
        assert res.fallback_reason is None
        assert cs.counters["interpreted_runs"] == 1
        assert cs.counters["compiled_runs"] == 0

    def test_counters_do_not_change_results(self):
        a, b = make_cs(), make_cs()
        ra = sim(a, engine="compiled").run()
        rb = sim(b, engine="compiled").run()
        sim(b, engine="compiled").run()  # extra run only bumps counters
        assert ra.parallel_time == rb.parallel_time


class TestFallbackReasons:
    def test_metrics_fallback_is_tallied_and_recorded(self):
        cs = make_cs()
        res = sim(cs, engine="compiled", metrics=True).run()
        assert res.engine == "interpreted"
        assert res.fallback_reason == "metrics"
        assert cs.counters["fallback:metrics"] == 1
        assert cs.counters["interpreted_runs"] == 1
        assert cs.counters["compiled_runs"] == 0

    def test_trace_fallback(self):
        cs = make_cs()
        res = sim(cs, engine="compiled", trace=True).run()
        assert res.fallback_reason == "trace"
        assert cs.counters["fallback:trace"] == 1

    def test_explicit_interpreted_run_is_not_a_fallback(self):
        cs = make_cs()
        res = sim(cs, metrics=True).run()
        assert res.fallback_reason is None
        assert "fallback:metrics" not in cs.counters
