"""Execution tracing, diagnostics and failure-injection tests.

The simulator carries defensive checks (version mismatches, arrivals
into unallocated space, capacity violations, deadlock detection).  These
tests corrupt inputs deliberately and assert the right error surfaces —
the "failure injection" axis of the suite.
"""

import pytest

from repro.core import analyze_memory, mpo_order, rcp_order
from repro.core.maps import plan_maps
from repro.core.schedule import Schedule
from repro.errors import (
    DeadlockError,
    PlacementError,
    SimulationError,
)
from repro.graph import GraphBuilder
from repro.graph.generators import random_trace
from repro.graph.paper_example import paper_example_graph, schedule_c
from repro.machine import Simulator, UNIT_MACHINE
from repro.core import cyclic_placement, owner_compute_assignment


def small_setup(seed=0, p=2):
    g = random_trace(30, 6, seed=seed)
    pl = cyclic_placement(g, p)
    asg = owner_compute_assignment(g, pl)
    s = mpo_order(g, pl, asg)
    return g, s


class TestTrace:
    def test_trace_collected(self):
        g, s = small_setup()
        res = Simulator(s, spec=UNIT_MACHINE, trace=True).run()
        assert res.trace
        kinds = {e.kind for e in res.trace}
        assert "start" in kinds and "map" in kinds and "end" in kinds

    def test_trace_sorted_by_time(self):
        g, s = small_setup(seed=1)
        res = Simulator(s, spec=UNIT_MACHINE, trace=True).run()
        times = [e.time for e in res.trace]
        assert times == sorted(times)

    def test_trace_contains_every_task_start(self):
        g, s = small_setup(seed=2)
        res = Simulator(s, spec=UNIT_MACHINE, trace=True).run()
        started = {e.detail for e in res.trace if e.kind == "start"}
        assert started == set(g.task_names)

    def test_trace_off_by_default(self):
        g, s = small_setup()
        res = Simulator(s, spec=UNIT_MACHINE).run()
        assert res.trace is None
        assert "not enabled" in res.render_trace()

    def test_render_trace(self):
        g, s = small_setup()
        res = Simulator(s, spec=UNIT_MACHINE, trace=True).run()
        text = res.render_trace(limit=5)
        assert "P0" in text and "more events" in text

    def test_suspend_events_under_pressure(self):
        g = paper_example_graph()
        sc = schedule_c(g)
        res = Simulator(sc, spec=UNIT_MACHINE, capacity=8, trace=True).run()
        assert any(e.kind == "suspend" for e in res.trace)


class TestFailureInjection:
    def test_owner_compute_violation_rejected(self):
        g, s = small_setup()
        # move one writing task to the wrong processor
        victim = next(t.name for t in g.tasks() if t.writes)
        bad = Schedule(
            g, s.placement, dict(s.assignment), [list(o) for o in s.orders]
        )
        wrong = (bad.assignment[victim] + 1) % 2
        bad.orders[bad.assignment[victim]].remove(victim)
        bad.orders[wrong].append(victim)
        bad.assignment[victim] = wrong
        with pytest.raises(PlacementError):
            Simulator(bad, spec=UNIT_MACHINE)

    def test_corrupted_plan_missing_alloc(self):
        """Removing an allocation from the plan trips the allocator or
        the protocol check — never silent corruption."""
        g = paper_example_graph()
        sc = schedule_c(g)
        prof = analyze_memory(sc)
        plan = plan_maps(sc, 9, prof)
        # strip every allocation of P1's first MAP
        stolen = list(plan.points[1][0].allocs)
        assert stolen
        plan.points[1][0].allocs.clear()
        for objs in plan.points[1][0].notifications.values():
            objs.clear()
        with pytest.raises((SimulationError, DeadlockError)):
            Simulator(sc, spec=UNIT_MACHINE, capacity=9, plan=plan, profile=prof).run()

    def test_corrupted_plan_double_alloc(self):
        from repro.errors import MemoryError_

        g = paper_example_graph()
        sc = schedule_c(g)
        prof = analyze_memory(sc)
        plan = plan_maps(sc, 9, prof)
        mp = plan.points[1][0]
        mp.allocs.append(mp.allocs[0])  # duplicate allocation
        with pytest.raises(MemoryError_):
            Simulator(sc, spec=UNIT_MACHINE, capacity=9, plan=plan, profile=prof).run()

    def test_missing_producer_rejected(self):
        """A volatile read with no producer anywhere is caught at build
        time (it would deadlock the address handshake)."""
        b = GraphBuilder(materialize_inputs=False)
        b.add_object("a", 1)
        b.add_object("x", 1)
        b.add_task("r", reads=("a",), writes=("x",))
        g = b.build()
        pl = cyclic_placement(g, 2, order=["a", "x"])
        asg = owner_compute_assignment(g, pl)
        s = rcp_order(g, pl, asg)
        with pytest.raises(SimulationError):
            Simulator(s, spec=UNIT_MACHINE)

    def test_deadlock_error_carries_details(self):
        """(Constructed) deadlocks self-diagnose."""
        g = paper_example_graph()
        sc = schedule_c(g)
        prof = analyze_memory(sc)
        plan = plan_maps(sc, 9, prof)
        # Drop only the notifications: space exists but the owner never
        # learns the addresses -> data never flows -> REC deadlock.
        for pts in plan.points:
            for mp in pts:
                mp.notifications.clear()
        with pytest.raises(DeadlockError) as ei:
            Simulator(sc, spec=UNIT_MACHINE, capacity=9, plan=plan, profile=prof).run()
        assert ei.value.details  # per-processor diagnosis attached

    def test_invalid_order_rejected(self):
        g, s = small_setup()
        # reverse one processor's order: violates dependences
        bad = Schedule(
            g, s.placement, dict(s.assignment),
            [list(reversed(s.orders[0])), list(s.orders[1])],
        )
        from repro.errors import ReproError

        with pytest.raises(ReproError):
            Simulator(bad, spec=UNIT_MACHINE).run()
