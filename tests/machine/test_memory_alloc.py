"""Unit tests for the simulated memory allocators."""

import pytest

from repro.errors import MemoryError_
from repro.machine import FreeListAllocator, ObjectAllocator


class TestObjectAllocator:
    def test_alloc_free(self):
        a = ObjectAllocator(10)
        a.alloc("x", 4)
        assert a.used == 4 and a.is_allocated("x")
        assert a.free("x") == 4
        assert a.used == 0 and not a.is_allocated("x")

    def test_capacity_enforced(self):
        a = ObjectAllocator(10)
        a.alloc("x", 8)
        with pytest.raises(MemoryError_):
            a.alloc("y", 3)

    def test_double_alloc(self):
        a = ObjectAllocator(10)
        a.alloc("x", 1)
        with pytest.raises(MemoryError_):
            a.alloc("x", 1)

    def test_free_unknown(self):
        a = ObjectAllocator(10)
        with pytest.raises(MemoryError_):
            a.free("x")

    def test_peak_tracking(self):
        a = ObjectAllocator(10)
        a.alloc("x", 6)
        a.free("x")
        a.alloc("y", 3)
        assert a.peak == 6

    def test_would_fit(self):
        a = ObjectAllocator(10)
        a.alloc("x", 6)
        assert a.would_fit(4) and not a.would_fit(5)

    def test_contains_len_free_bytes(self):
        a = ObjectAllocator(10)
        a.alloc("x", 6)
        assert "x" in a and len(a) == 1 and a.free_bytes == 4

    def test_negative_size(self):
        a = ObjectAllocator(10)
        with pytest.raises(MemoryError_):
            a.alloc("x", -1)


class TestFreeListAllocator:
    def test_alloc_addresses(self):
        a = FreeListAllocator(100)
        assert a.alloc("x", 10) == 0
        assert a.alloc("y", 10) == 10

    def test_free_and_reuse(self):
        a = FreeListAllocator(100)
        a.alloc("x", 10)
        a.alloc("y", 10)
        a.free("x")
        assert a.alloc("z", 10) == 0  # first fit reuses the hole

    def test_coalescing(self):
        a = FreeListAllocator(30)
        a.alloc("x", 10)
        a.alloc("y", 10)
        a.alloc("z", 10)
        a.free("x")
        a.free("z")
        a.free("y")  # coalesces with both neighbours
        assert a.largest_free_extent == 30

    def test_fragmentation_failure(self):
        """Enough bytes free but no extent large enough — the problem the
        paper's conclusion describes."""
        a = FreeListAllocator(30)
        a.alloc("a", 10)
        a.alloc("b", 10)
        a.alloc("c", 10)
        a.free("a")
        a.free("c")
        with pytest.raises(MemoryError_):
            a.alloc("big", 15)
        assert a.failed_fragmented == 1
        assert a.fragmentation() > 0

    def test_out_of_memory(self):
        a = FreeListAllocator(10)
        with pytest.raises(MemoryError_):
            a.alloc("x", 11)

    def test_zero_size(self):
        a = FreeListAllocator(10)
        a.alloc("x", 0)
        a.free("x")

    def test_double_alloc(self):
        a = FreeListAllocator(10)
        a.alloc("x", 1)
        with pytest.raises(MemoryError_):
            a.alloc("x", 1)

    def test_peak(self):
        a = FreeListAllocator(100)
        a.alloc("x", 60)
        a.free("x")
        a.alloc("y", 30)
        assert a.peak == 60
