"""Differential tests: the array-compiled engine against the
interpreted oracle.

Every comparison here is *exact* — ``==`` on floats, never
``approx``/``allclose`` — because the compiled engine's contract
(:mod:`repro.machine.compiled`) is bit-identical time arithmetic on
fault-free runs, not numerical closeness.  The suite covers:

* the sweep-grid workloads under all three execution modes (managed,
  preknown addresses, unmanaged baseline) and both cost models;
* tie-heavy :data:`UNIT_MACHINE` cases, where many events share a
  timestamp and agreement proves the engines break ties identically;
* error parity — protocol violations and deadlocks must raise the same
  exception type with the same message;
* the fallback contract — observed / fault-injected / caller-plan runs
  report ``engine == "interpreted"``;
* the cache-staleness guards (schedule mutation behind a memoised
  :class:`CompiledSchedule`, and per-:class:`MachineSpec` execution
  plans).
"""

import dataclasses
import math

import pytest

from repro.core import analyze_memory, dts_order, mpo_order, rcp_order
from repro.errors import DeadlockError, SimulationError
from repro.graph.paper_example import paper_example_graph, schedule_b, schedule_c
from repro.machine import CRAY_T3D, MEIKO_CS2, UNIT_MACHINE, Simulator
from repro.machine.simulator import CompiledSchedule, ProcessorStats

STAT_FIELDS = [f.name for f in dataclasses.fields(ProcessorStats)]

ORDERS = {"rcp": rcp_order, "mpo": mpo_order, "dts": dts_order}


def assert_exact_match(make_sim):
    """Run ``make_sim(engine)`` under both engines; either both raise
    the same error with the same message, or every result field is
    exactly equal.  Returns the compiled-engine result (or None)."""
    outcomes = {}
    for engine in ("interpreted", "compiled"):
        try:
            outcomes[engine] = ("ok", make_sim(engine).run())
        except (SimulationError, DeadlockError) as e:
            outcomes[engine] = (type(e).__name__, str(e))
    ka, kb = outcomes["interpreted"], outcomes["compiled"]
    if ka[0] != "ok" or kb[0] != "ok":
        assert (ka[0], ka[1]) == (kb[0], kb[1])
        return None
    ra, rb = ka[1], kb[1]
    assert ra.engine == "interpreted"
    assert rb.engine == "compiled", "compiled run silently fell back"
    assert ra.parallel_time == rb.parallel_time
    assert ra.task_finish_time == rb.task_finish_time
    assert ra.plan is rb.plan
    assert ra.capacity == rb.capacity
    assert ra.memory_managed == rb.memory_managed
    for sa, sb in zip(ra.stats, rb.stats):
        for f in STAT_FIELDS:
            assert getattr(sa, f) == getattr(sb, f), f
    return rb


class TestPaperExample:
    """The worked Figure 2 example: unit costs, many simultaneous
    events — the tie-breaking stress case."""

    @pytest.mark.parametrize("sched_f", [schedule_b, schedule_c])
    @pytest.mark.parametrize("mode", ["managed", "preknown", "baseline"])
    def test_exact(self, sched_f, mode):
        g = paper_example_graph()
        cs = CompiledSchedule(sched_f(g))
        prof = cs.profile
        caps = sorted({prof.min_mem, (prof.min_mem + prof.tot) // 2, prof.tot})
        for cap in caps:
            if mode == "baseline" and cap < prof.tot:
                continue
            kw = (
                dict(memory_managed=False)
                if mode == "baseline"
                else dict(preknown_addresses=(mode == "preknown"))
            )
            assert_exact_match(
                lambda e, cap=cap, kw=kw: Simulator(
                    spec=UNIT_MACHINE, capacity=cap, compiled=cs, engine=e, **kw
                )
            )


class TestSeededGrids:
    """Random trace / layered graphs across heuristics, cost models,
    capacities and modes."""

    @pytest.mark.parametrize("family", ["trace", "layered"])
    @pytest.mark.parametrize("seed", range(4))
    @pytest.mark.parametrize("heuristic", ["rcp", "mpo", "dts"])
    def test_exact(self, family, seed, heuristic, seeded_case):
        case = seeded_case(seed=seed, procs=3, family=family)
        s = ORDERS[heuristic](case.graph, case.placement, case.assignment)
        cs = CompiledSchedule(s)
        prof = cs.profile
        for spec in (UNIT_MACHINE, CRAY_T3D, MEIKO_CS2):
            for cap in sorted({prof.min_mem, prof.tot}):
                for preknown in (False, True):
                    assert_exact_match(
                        lambda e, spec=spec, cap=cap, pk=preknown: Simulator(
                            spec=spec, capacity=cap, compiled=cs, engine=e,
                            preknown_addresses=pk,
                        )
                    )
            assert_exact_match(
                lambda e, spec=spec: Simulator(
                    spec=spec, capacity=prof.tot, compiled=cs,
                    memory_managed=False, engine=e,
                )
            )


class TestSweepWorkloads:
    """The benchmark workloads the sweep grid actually runs."""

    @pytest.mark.parametrize("key,procs", [("lu-goodwin", 4), ("lu-goodwin", 8)])
    @pytest.mark.parametrize("fraction", [1.0, 0.5])
    def test_exact(self, key, procs, fraction):
        from repro.experiments import ExperimentContext

        ctx = ExperimentContext()
        cs = ctx.compiled(key, procs, "rcp")
        prof = ctx.profile(key, procs, "rcp")
        cap = int(math.floor(prof.tot * fraction))
        if prof.min_mem > cap:
            pytest.skip("cell not executable")
        assert_exact_match(
            lambda e: Simulator(spec=ctx.spec, capacity=cap, compiled=cs, engine=e)
        )

    def test_serial_schedule_exact(self):
        """The p=1 gate cell of the engine benchmark: every task is
        silent, the compiled run collapses to segment kernels."""
        from repro.experiments import ExperimentContext

        ctx = ExperimentContext()
        cs = ctx.compiled("lu-goodwin", 1, "rcp")
        prof = ctx.profile("lu-goodwin", 1, "rcp")
        res = assert_exact_match(
            lambda e: Simulator(
                spec=ctx.spec, capacity=prof.tot, compiled=cs, engine=e
            )
        )
        assert res is not None and res.parallel_time > 0


class TestErrorParity:
    def test_deadlock_identical(self):
        """A constructed address-handshake deadlock raises the same
        DeadlockError (type, message, diagnosis) from both engines."""
        g = paper_example_graph()
        cs = CompiledSchedule(schedule_c(g))
        # Strip the notifications from the memoised plan: space exists
        # but owners never learn addresses, so data never flows.  The
        # plan stays the memoised one, so the compiled engine stays
        # eligible and must diagnose the identical deadlock.
        plan = cs.plan_for(9)
        for pts in plan.points:
            for mp in pts:
                mp.notifications.clear()
        errs = {}
        for engine in ("interpreted", "compiled"):
            with pytest.raises(DeadlockError) as ei:
                Simulator(
                    spec=UNIT_MACHINE, capacity=9, compiled=cs, engine=engine
                ).run()
            errs[engine] = ei.value
        a, b = errs["interpreted"], errs["compiled"]
        assert str(a) == str(b)
        assert a.blocked == b.blocked
        assert a.completed == b.completed
        assert a.details == b.details

    def test_corrupted_plan_error_identical(self):
        """A double allocation smuggled into the memoised plan trips
        the same allocator error, with the same message, from both
        engines (the compiled engine replicates the allocator's check
        order exactly)."""
        from repro.errors import MemoryError_

        g = paper_example_graph()
        cs = CompiledSchedule(schedule_c(g))
        plan = cs.plan_for(9)
        mp = plan.points[1][0]
        assert mp.allocs
        mp.allocs.append(mp.allocs[0])  # duplicate allocation
        msgs = {}
        for engine in ("interpreted", "compiled"):
            with pytest.raises(MemoryError_) as ei:
                Simulator(
                    spec=UNIT_MACHINE, capacity=9, compiled=cs, engine=engine
                ).run()
            msgs[engine] = str(ei.value)
        assert msgs["interpreted"] == msgs["compiled"]


class TestFallbacks:
    """Observed, fault-injected and caller-plan runs must fall back to
    the interpreted oracle and say so via ``SimResult.engine``."""

    @pytest.fixture()
    def cs(self):
        g = paper_example_graph()
        return CompiledSchedule(schedule_c(g))

    def test_metrics_falls_back(self, cs):
        res = Simulator(
            spec=UNIT_MACHINE, capacity=9, compiled=cs,
            metrics=True, engine="compiled",
        ).run()
        assert res.engine == "interpreted"
        assert res.metrics is not None

    def test_trace_falls_back(self, cs):
        res = Simulator(
            spec=UNIT_MACHINE, capacity=9, compiled=cs,
            trace=True, engine="compiled",
        ).run()
        assert res.engine == "interpreted"
        assert res.trace

    def test_enabled_instrument_falls_back(self, cs):
        from repro.conformance import InvariantChecker

        checker = InvariantChecker(cs)
        res = Simulator(
            spec=UNIT_MACHINE, capacity=9, compiled=cs,
            instrument=checker, engine="compiled",
        ).run()
        assert res.engine == "interpreted"
        assert checker.ok

    def test_disabled_instrument_stays_compiled(self, cs):
        from repro.obs import NULL_INSTRUMENT

        res = Simulator(
            spec=UNIT_MACHINE, capacity=9, compiled=cs,
            instrument=NULL_INSTRUMENT, engine="compiled",
        ).run()
        assert res.engine == "compiled"

    def test_active_faults_fall_back(self, cs):
        from repro.conformance import FaultSpec

        res = Simulator(
            spec=UNIT_MACHINE, capacity=9, compiled=cs,
            faults=FaultSpec(put_latency_factor=2.0),
            engine="compiled",
        ).run()
        assert res.engine == "interpreted"

    def test_inactive_faults_stay_compiled(self, cs):
        from repro.conformance import FaultSpec

        res = Simulator(
            spec=UNIT_MACHINE, capacity=9, compiled=cs,
            faults=FaultSpec(), engine="compiled",
        ).run()
        assert res.engine == "compiled"

    def test_caller_plan_falls_back(self, cs):
        from repro.core.maps import plan_maps

        plan = plan_maps(cs.schedule, 9, cs.profile)  # fresh, not memoised
        res = Simulator(
            spec=UNIT_MACHINE, capacity=9, compiled=cs,
            plan=plan, engine="compiled",
        ).run()
        assert res.engine == "interpreted"

    def test_unknown_engine_rejected(self, cs):
        with pytest.raises(SimulationError):
            Simulator(spec=UNIT_MACHINE, capacity=9, compiled=cs, engine="jit")


class TestCacheStaleness:
    """Satellite regressions: memoised plans must never survive a
    mutated schedule or leak across machine specs."""

    def _cs(self):
        g = paper_example_graph()
        return CompiledSchedule(schedule_c(g))

    def test_mutated_schedule_detected_by_run(self):
        cs = self._cs()
        sim = Simulator(spec=UNIT_MACHINE, capacity=9, compiled=cs, engine="compiled")
        Simulator(spec=UNIT_MACHINE, capacity=9, compiled=cs, engine="compiled").run()
        cs.schedule.orders[0].pop()  # mutate behind the cache
        with pytest.raises(SimulationError, match="stale"):
            sim.run()

    def test_mutated_schedule_detected_by_plan_for(self):
        cs = self._cs()
        cs.plan_for(9)
        cs.schedule.orders[1].pop()
        with pytest.raises(SimulationError, match="stale"):
            cs.plan_for(9)

    def test_exec_plans_keyed_by_spec(self, seeded_case):
        """Scaling the overhead costs between runs of the *same*
        compiled schedule must produce the scaled-spec result, not a
        stale cost table (regression: the execution-plan cache key
        includes the MachineSpec)."""
        case = seeded_case(seed=0, procs=3)
        s = rcp_order(case.graph, case.placement, case.assignment)
        cs = CompiledSchedule(s)
        cap = cs.profile.tot
        results = {}
        for factor in (1.0, 8.0):
            spec = CRAY_T3D.scaled_overheads(factor)
            rb = assert_exact_match(
                lambda e, spec=spec: Simulator(
                    spec=spec, capacity=cap, compiled=cs, engine=e
                )
            )
            results[factor] = rb.parallel_time
        assert results[8.0] > results[1.0]

    def test_exec_plans_keyed_by_mode(self):
        """preknown and managed runs of one compiled schedule must not
        share lowered state."""
        cs = self._cs()
        for preknown in (False, True, False):
            assert_exact_match(
                lambda e, pk=preknown: Simulator(
                    spec=UNIT_MACHINE, capacity=9, compiled=cs, engine=e,
                    preknown_addresses=pk,
                )
            )


class TestRepeatability:
    def test_compiled_run_is_repeatable(self):
        """Run-local state: the same simulator yields identical results
        across repeated compiled runs (drift-free time arithmetic)."""
        g = paper_example_graph()
        cs = CompiledSchedule(schedule_c(g))
        sim = Simulator(spec=UNIT_MACHINE, capacity=9, compiled=cs, engine="compiled")
        r1, r2 = sim.run(), sim.run()
        assert r1.engine == r2.engine == "compiled"
        assert r1.parallel_time == r2.parallel_time
        for sa, sb in zip(r1.stats, r2.stats):
            assert sa == sb
