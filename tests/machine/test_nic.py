"""Tests for the optional NIC-serialization network model."""

import pytest

from repro.core import analyze_memory, cyclic_placement, owner_compute_assignment, rcp_order
from repro.graph.generators import fork_join, random_trace
from repro.machine import MachineSpec, Simulator


def spec(nic: bool) -> MachineSpec:
    return MachineSpec(
        flop_rate=1.0,
        put_latency=0.5,
        byte_time=0.5,  # transfers are expensive: contention matters
        send_overhead=0.0,
        memory_capacity=1 << 30,
        map_overhead=0.0, alloc_cost=0.0, free_cost=0.0,
        package_overhead=0.0, address_cost=0.0, ra_cost=0.0,
        nic_serialize=nic,
    )


class TestNicSerialization:
    def test_default_off(self):
        assert MachineSpec().nic_serialize is False

    @pytest.mark.parametrize("seed", range(4))
    def test_serialization_never_faster(self, seed):
        g = random_trace(50, 10, seed=seed)
        pl = cyclic_placement(g, 3)
        asg = owner_compute_assignment(g, pl)
        s = rcp_order(g, pl, asg)
        prof = analyze_memory(s)
        free = Simulator(s, spec=spec(False), profile=prof).run().parallel_time
        ser = Simulator(s, spec=spec(True), profile=prof).run().parallel_time
        assert ser >= free - 1e-9

    def test_fanout_contends(self):
        """One producer feeding many remote consumers: with NIC
        serialization the transfers queue and the makespan grows
        strictly."""
        g = fork_join(1, 8, weight=1.0, size=4)
        pl = cyclic_placement(g, 4)
        asg = owner_compute_assignment(g, pl)
        s = rcp_order(g, pl, asg)
        prof = analyze_memory(s)
        free = Simulator(s, spec=spec(False), profile=prof).run().parallel_time
        ser = Simulator(s, spec=spec(True), profile=prof).run().parallel_time
        assert ser > free

    def test_completes_under_memory_pressure(self):
        g = random_trace(60, 10, seed=7)
        pl = cyclic_placement(g, 3)
        asg = owner_compute_assignment(g, pl)
        s = rcp_order(g, pl, asg)
        prof = analyze_memory(s)
        res = Simulator(
            s, spec=spec(True), capacity=prof.min_mem, profile=prof
        ).run()
        assert res.peak_memory <= prof.min_mem
