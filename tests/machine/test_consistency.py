"""Data-consistency verification (the Theorem 1 machinery).

Theorem 1 relies on the transformed graph being *dependence complete*
(section 3.4).  These tests build a graph that deliberately is NOT
(``dependence_mode="ignore"`` drops the anti/output sync edges) and show
the simulator's version checks catching the resulting stale-copy
hazards — and that the default ``"transform"`` mode on the *same trace*
runs cleanly.
"""

import pytest

from repro.core import Schedule, owner_compute_assignment
from repro.core.placement import placement_from_dict
from repro.errors import DataConsistencyError
from repro.graph import GraphBuilder
from repro.machine import Simulator
from repro.machine.spec import UNIT_MACHINE


def racy_trace(mode: str):
    """P0 writes m twice (w1, w2); P1 reads w1's version remotely.

    Without the anti-dependence sync edge (r -> w2), w2 can overwrite
    ``m`` before the suspended send of version w1 leaves — exactly the
    hazard of section 3.1's "Data consistency" bullet.  Zero weights
    make both writes complete before the address package arrives, so the
    race is deterministic.
    """
    b = GraphBuilder(materialize_inputs=False, dependence_mode=mode)
    b.add_object("m", 4)
    b.add_object("out", 4)
    b.add_object("fin", 4)
    b.add_task("w1", writes=("m",), weight=0.0)
    b.add_task("r", reads=("m",), writes=("out",), weight=1.0)
    b.add_task("w2", writes=("m",), weight=0.0)
    b.add_task("fin", reads=("m",), writes=("fin",), weight=1.0)
    g = b.build()
    pl = placement_from_dict(2, {"m": 0, "out": 1, "fin": 0})
    asg = owner_compute_assignment(g, pl)
    return g, pl, asg


class TestStaleCopyDetection:
    def test_ignore_mode_caught(self):
        g, pl, asg = racy_trace("ignore")
        # schedule w2 immediately after w1 on P0; the reader's address
        # package cannot arrive before both complete (zero weights).
        s = Schedule(g, pl, asg, [["w1", "w2", "fin"], ["r"]])
        s.validate()
        with pytest.raises(DataConsistencyError):
            Simulator(s, spec=UNIT_MACHINE, capacity=12).run()

    def test_transform_mode_clean(self):
        """The same trace with the dependence-completeness transform has
        a sync edge r -> w2: even with w2 ordered right after w1 on P0,
        the processor *blocks* in REC until the remote reader finishes,
        so version w1 leaves before w2 overwrites it — no inconsistency,
        exactly Theorem 1's argument."""
        g, pl, asg = racy_trace("transform")
        assert g.has_edge("r", "w2")
        s = Schedule(g, pl, asg, [["w1", "w2", "fin"], ["r"]])
        res = Simulator(s, spec=UNIT_MACHINE, capacity=12, trace=True).run()
        assert res.parallel_time > 0
        # the data send of version w1 precedes w2's start
        t_send = next(
            e.time for e in res.trace if e.kind == "send" and "m@w1" in e.detail
        )
        t_w2 = next(e.time for e in res.trace if e.kind == "start" and e.detail == "w2")
        assert t_send <= t_w2

    def test_version_tags_on_messages(self):
        """Multiple versions of one volatile cross processors under the
        transformed graph without tripping the checks."""
        b = GraphBuilder(materialize_inputs=False, dependence_mode="transform")
        b.add_object("m", 4)
        b.add_object("o1", 4)
        b.add_object("o2", 4)
        b.add_task("w1", writes=("m",), weight=1.0)
        b.add_task("r1", reads=("m",), writes=("o1",), weight=1.0)
        b.add_task("w2", reads=("m",), writes=("m",), weight=1.0)
        b.add_task("r2", reads=("m",), writes=("o2",), weight=1.0)
        g = b.build()
        pl = placement_from_dict(2, {"m": 0, "o1": 1, "o2": 1})
        asg = owner_compute_assignment(g, pl)
        from repro.core import rcp_order

        sched = rcp_order(g, pl, asg)
        res = Simulator(sched, spec=UNIT_MACHINE, trace=True).run()
        sends = [e for e in res.trace if e.kind == "send" and e.detail.startswith("m@")]
        versions = {e.detail.split(" ")[0] for e in sends}
        assert versions == {"m@w1", "m@w2"}
