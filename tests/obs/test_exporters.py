"""Exporters: metrics JSON, Chrome trace_event JSON, HTML report,
and the trace rendering of :class:`~repro.machine.simulator.SimResult`.
"""

import collections
import json

import pytest

from repro.graph.paper_example import schedule_c
from repro.machine import CRAY_T3D, UNIT_MACHINE, simulate
from repro.obs import (
    METRICS_SCHEMA,
    build_metrics,
    chrome_trace,
    from_json,
    html_report,
    to_json,
    write_chrome_trace,
)


@pytest.fixture(scope="module")
def res():
    return simulate(
        schedule_c(), spec=CRAY_T3D, capacity=8, metrics=True, trace=True
    )


# -- metrics JSON -------------------------------------------------------


def test_metrics_doc_schema_and_roundtrip(res):
    m = res.metrics
    assert m["schema"] == METRICS_SCHEMA
    text = to_json(m)
    assert from_json(text) == json.loads(text)
    # every value is JSON-native: a dump/load round-trip is exact
    assert json.loads(text) == m


def test_metrics_rejects_wrong_schema(res):
    bad = dict(res.metrics, schema="repro-metrics/999")
    with pytest.raises(ValueError, match="schema"):
        from_json(json.dumps(bad))
    with pytest.raises(ValueError, match="schema"):
        from_json("{}")


def test_metrics_to_json_writes_file(res, tmp_path):
    p = tmp_path / "metrics.json"
    text = to_json(res.metrics, str(p))
    assert p.read_text() == text
    assert from_json(p.read_text())["parallel_time"] == res.parallel_time


def test_build_metrics_matches_result_metrics(res):
    rebuilt = build_metrics(res, res.telemetry)
    assert rebuilt == res.metrics


def test_per_proc_residency_fields(res):
    for r in res.metrics["per_proc"]:
        assert sum(r["residency"].values()) == pytest.approx(
            res.parallel_time, abs=1e-9
        )
        assert sum(r["residency_frac"].values()) == pytest.approx(1.0, abs=1e-9)
        assert 0.0 <= r["map_overhead_frac"] <= 1.0


# -- Chrome trace -------------------------------------------------------


def test_chrome_trace_required_fields(res):
    doc = chrome_trace(res)
    assert doc["otherData"]["schema"] == "repro-chrome-trace/1"
    events = doc["traceEvents"]
    assert events, "empty trace"
    for e in events:
        assert {"ph", "pid", "tid", "name"} <= set(e)
        if e["ph"] != "M":
            assert "ts" in e and e["ts"] >= 0
        if e["ph"] == "X":
            assert e["dur"] >= 0
    phases = {e["ph"] for e in events}
    assert {"M", "X"} <= phases  # metadata + duration slices always exist


def test_chrome_trace_monotonic_per_track(res):
    events = chrome_trace(res)["traceEvents"]
    by_track = collections.defaultdict(list)
    for e in events:
        if e["ph"] == "M":
            continue
        by_track[(e["pid"], e["tid"])].append(e["ts"])
    assert by_track
    for ts in by_track.values():
        assert ts == sorted(ts)


def test_chrome_trace_tracks_cover_processors(res):
    events = chrome_trace(res)["traceEvents"]
    thread_names = {
        e["tid"]: e["args"]["name"]
        for e in events
        if e["ph"] == "M" and e["name"] == "thread_name"
    }
    nprocs = len(res.stats)
    assert set(thread_names) == set(range(nprocs))
    assert thread_names[0] == "P0"


def test_chrome_trace_flow_events_pair_up(res):
    events = chrome_trace(res)["traceEvents"]
    starts = [e for e in events if e["ph"] == "s"]
    ends = [e for e in events if e["ph"] == "f"]
    assert len(starts) == len(ends)
    assert {e["id"] for e in starts} == {e["id"] for e in ends}
    for e in ends:
        assert e["bp"] == "e"
    # a put flows from the sender's track to the receiver's
    by_id = {e["id"]: e for e in starts}
    for e in ends:
        assert e["ts"] >= by_id[e["id"]]["ts"]


def test_chrome_trace_requires_instrumented_run():
    plain = simulate(schedule_c(), spec=UNIT_MACHINE, capacity=8)
    with pytest.raises(ValueError, match="metrics=True"):
        chrome_trace(plain)


def test_write_chrome_trace_is_valid_json(res, tmp_path):
    p = tmp_path / "trace.json"
    write_chrome_trace(res, str(p))
    doc = json.loads(p.read_text())
    assert doc["traceEvents"]
    assert doc["displayTimeUnit"] == "ms"


# -- HTML report --------------------------------------------------------


def test_html_report_contains_sections(res, tmp_path):
    p = tmp_path / "report.html"
    doc = html_report(res, str(p))
    assert p.read_text() == doc
    for needle in (
        "<!DOCTYPE html>", "State residency", "Memory timeline",
        "Per-processor metrics", "<svg", res.schedule_label,
    ):
        assert needle in doc


def test_html_report_requires_instrumented_run():
    plain = simulate(schedule_c(), spec=UNIT_MACHINE, capacity=8)
    with pytest.raises(ValueError, match="metrics=True"):
        html_report(plain)


# -- SimResult.render_trace --------------------------------------------


def test_render_trace_header_and_limit():
    res = simulate(schedule_c(), spec=UNIT_MACHINE, capacity=8, trace=True)
    full = res.render_trace(limit=None)
    head = full.splitlines()[0]
    assert head.startswith("# trace:")
    assert "capacity=8" in head
    assert "memory_managed=True" in head
    assert f"events={len(res.trace)}" in head
    assert "more events" not in full
    assert len(full.splitlines()) == 1 + len(res.trace)

    cut = res.render_trace(limit=3)
    assert f"({len(res.trace) - 3} more events)" in cut
    assert len(cut.splitlines()) == 1 + 3 + 1  # header + events + ellipsis


def test_render_trace_without_tracing():
    res = simulate(schedule_c(), spec=UNIT_MACHINE, capacity=8)
    assert res.render_trace() == "(tracing was not enabled)"
